module github.com/ioa-lab/boosting

go 1.24

// Static-analysis suite (cmd/boostvet, internal/analysis) builds on
// golang.org/x/tools/go/analysis. The container has no module proxy
// access, so the required subset is vendored from the Go toolchain's
// own cmd/vendor copy into third_party/ and pinned via this replace.
require golang.org/x/tools v0.28.1

replace golang.org/x/tools => ./third_party/golang.org/x/tools
