module github.com/ioa-lab/boosting

go 1.24
