package boosting_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/ioa-lab/boosting"
)

// spillFDs counts this process's open file descriptors that point into
// dir. Linux-only (reads /proc/self/fd); callers skip elsewhere.
func spillFDs(t *testing.T, dir string) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skipf("cannot enumerate descriptors: %v", err)
	}
	n := 0
	for _, e := range ents {
		target, err := os.Readlink(filepath.Join("/proc/self/fd", e.Name()))
		if err != nil {
			continue
		}
		if strings.HasPrefix(target, dir+string(filepath.Separator)) || target == dir {
			n++
		}
	}
	return n
}

// TestCloseNilTolerance pins the contract the graphclose analyzer's
// canonical fix relies on: `defer x.Close()` placed right after the error
// check must be safe when the producer failed and the handle is nil.
func TestCloseNilTolerance(t *testing.T) {
	if err := boosting.CloseGraph(nil); err != nil {
		t.Errorf("CloseGraph(nil) = %v, want nil", err)
	}
	var c *boosting.InitClassification
	if err := c.Close(); err != nil {
		t.Errorf("(*InitClassification)(nil).Close() = %v, want nil", err)
	}
	var r *boosting.Report
	if err := r.Close(); err != nil {
		t.Errorf("(*Report)(nil).Close() = %v, want nil", err)
	}
	if err := (&boosting.Report{}).Close(); err != nil {
		t.Errorf("empty Report Close() = %v, want nil", err)
	}
}

// TestClassificationCloseReleasesDescriptors is the regression test for
// the leak class the graphclose analyzer found in cmd/hookfind and
// examples/impossibility: a spill-backed classification holds open
// descriptors until Close, and Close releases every one of them.
func TestClassificationCloseReleasesDescriptors(t *testing.T) {
	if _, err := os.Stat("/proc/self/fd"); err != nil {
		t.Skip("/proc/self/fd unavailable on this platform")
	}
	dir, err := filepath.EvalSymlinks(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	chk, err := boosting.New("forward", 3, 0,
		boosting.WithWorkers(1), boosting.WithSpillDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	c, err := chk.ClassifyInits()
	if err != nil {
		t.Fatal(err)
	}
	if got := spillFDs(t, dir); got == 0 {
		t.Fatal("spill build holds no descriptors under the spill dir; the test is vacuous")
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := spillFDs(t, dir); got != 0 {
		t.Errorf("after Close, %d descriptors still open under %s", got, dir)
	}
}

// TestReportCloseReleasesDescriptors covers the cmd/boostcheck and
// cmd/experiments shape: the refutation report owns the classification's
// graph, and Report.Close releases the spill descriptors through it.
func TestReportCloseReleasesDescriptors(t *testing.T) {
	if _, err := os.Stat("/proc/self/fd"); err != nil {
		t.Skip("/proc/self/fd unavailable on this platform")
	}
	dir, err := filepath.EvalSymlinks(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	chk, err := boosting.New("forward", 3, 0,
		boosting.WithWorkers(1), boosting.WithSpillDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	report, err := chk.Refute(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := spillFDs(t, dir); got == 0 {
		t.Fatal("spill refutation holds no descriptors under the spill dir; the test is vacuous")
	}
	if err := report.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := spillFDs(t, dir); got != 0 {
		t.Errorf("after Close, %d descriptors still open under %s", got, dir)
	}
}
