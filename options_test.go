package boosting_test

// Façade-level option validation and spill-store plumbing tests: negative
// knob values must clamp to the defaults instead of leaking into the
// engines, WithSpillDir must route graph builds through the disk-spilling
// backend, and an unusable spill directory must surface as an ordinary
// error.

import (
	"errors"
	"testing"

	"github.com/ioa-lab/boosting"
)

// TestNegativeOptionsClamped: WithMaxStates(-1) must behave exactly like
// the default budget — a full exhaustive build, not an immediate
// *LimitError — and WithWorkers(-5) must behave like the worker default,
// on both engines and with the serial reference graph reproduced exactly.
func TestNegativeOptionsClamped(t *testing.T) {
	ref, err := boosting.New("forward", 2, 0, boosting.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.ClassifyInits()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, -5} {
		chk, err := boosting.New("forward", 2, 0,
			boosting.WithWorkers(workers), boosting.WithMaxStates(-1))
		if err != nil {
			t.Fatal(err)
		}
		got, err := chk.ClassifyInits()
		if err != nil {
			var le *boosting.LimitError
			if errors.As(err, &le) {
				t.Fatalf("workers=%d: WithMaxStates(-1) tripped %v; negatives must clamp to the default budget", workers, err)
			}
			t.Fatalf("workers=%d: %v", workers, err)
		}
		assertGraphsIdentical(t, "negative-options", want.Graph, got.Graph)
	}
}

// TestSpillDirOption: WithSpillDir selects the spill backend, produces the
// dense-identical graph, and exposes spill statistics that account for
// every vertex.
func TestSpillDirOption(t *testing.T) {
	ref, err := boosting.New("forward", 3, 0, boosting.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.ClassifyInits()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := boosting.GraphSpillStats(want.Graph); ok {
		t.Fatal("dense graph reported spill stats")
	}
	chk, err := boosting.New("forward", 3, 0,
		boosting.WithWorkers(1), boosting.WithSpillDir(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := chk.ClassifyInits()
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsIdentical(t, "spilldir", want.Graph, got.Graph)
	stats, ok := boosting.GraphSpillStats(got.Graph)
	if !ok {
		t.Fatal("spill graph reported no spill stats")
	}
	if stats.States != got.Graph.Size() {
		t.Errorf("spill stats cover %d states, graph has %d", stats.States, got.Graph.Size())
	}
	if stats.SpillBytes == 0 {
		t.Error("spill store wrote zero bytes")
	}
	if stats.Resident > stats.States {
		t.Errorf("resident %d exceeds states %d", stats.Resident, stats.States)
	}
	// Deterministic release: closing a spill graph frees its descriptor,
	// and closing an in-memory graph is a nil no-op.
	if err := boosting.CloseGraph(got.Graph); err != nil {
		t.Errorf("CloseGraph(spill) = %v", err)
	}
	if err := boosting.CloseGraph(want.Graph); err != nil {
		t.Errorf("CloseGraph(dense) = %v", err)
	}
}

// TestSpillExhaustiveForwardN5 pins the first exhaustive forward n=5
// analysis — the larger-n frontier the spill store opened (ROADMAP/E28):
// 14754 states / 103926 edges from all monotone initializations, 868 / 6180
// under symmetry reduction, built with states living on disk. The CI
// spill job runs this under a low GOMEMLIMIT.
func TestSpillExhaustiveForwardN5(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive n=5 build skipped in -short mode")
	}
	golden := []struct {
		sym           bool
		states, edges int
	}{
		{false, 14754, 103926},
		{true, 868, 6180},
	}
	for _, g := range golden {
		opts := []boosting.Option{boosting.WithSpillDir(t.TempDir())}
		if g.sym {
			opts = append(opts, boosting.WithSymmetry())
		}
		chk, err := boosting.New("forward", 5, 0, opts...)
		if err != nil {
			t.Fatal(err)
		}
		c, err := chk.ClassifyInits()
		if err != nil {
			t.Fatalf("sym=%v: %v", g.sym, err)
		}
		if c.Graph.Size() != g.states || c.Graph.Edges() != g.edges {
			t.Errorf("sym=%v: %d states / %d edges, want %d / %d",
				g.sym, c.Graph.Size(), c.Graph.Edges(), g.states, g.edges)
		}
		if c.BivalentIndex < 0 {
			t.Errorf("sym=%v: no bivalent initialization found", g.sym)
		}
	}
}

// TestSpillExhaustiveForwardN6 pins the exhaustive forward n=6 frontier the
// spilled adjacency opened (ROADMAP/E29): 1764 states / 15084 edges under
// symmetry reduction, with vertices AND edges living on disk, graph-identical
// to the dense build. The CI spill job runs this under GOMEMLIMIT=64MiB;
// witness links off and on must agree on every count and valence.
func TestSpillExhaustiveForwardN6(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive n=6 build skipped in -short mode")
	}
	const wantStates, wantEdges = 1764, 15084
	ref, err := boosting.New("forward", 6, 0, boosting.WithWorkers(1), boosting.WithSymmetry())
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.ClassifyInits()
	if err != nil {
		t.Fatal(err)
	}
	if want.Graph.Size() != wantStates || want.Graph.Edges() != wantEdges {
		t.Fatalf("dense reference: %d states / %d edges, want %d / %d",
			want.Graph.Size(), want.Graph.Edges(), wantStates, wantEdges)
	}
	for _, noWitness := range []bool{false, true} {
		opts := []boosting.Option{boosting.WithSpillDir(t.TempDir()), boosting.WithSymmetry()}
		if noWitness {
			opts = append(opts, boosting.WithoutWitnesses())
		}
		chk, err := boosting.New("forward", 6, 0, opts...)
		if err != nil {
			t.Fatal(err)
		}
		c, err := chk.ClassifyInits()
		if err != nil {
			t.Fatalf("nowitness=%v: %v", noWitness, err)
		}
		assertGraphsIdentical(t, "spill-n6", want.Graph, c.Graph)
		if c.BivalentIndex != want.BivalentIndex {
			t.Errorf("nowitness=%v: bivalent index %d, want %d", noWitness, c.BivalentIndex, want.BivalentIndex)
		}
		stats, ok := boosting.GraphSpillStats(c.Graph)
		if !ok {
			t.Fatal("spill graph reported no spill stats")
		}
		if stats.EdgeBytes == 0 {
			t.Errorf("nowitness=%v: spilled adjacency wrote zero edge bytes", noWitness)
		}
		if err := boosting.CloseGraph(c.Graph); err != nil {
			t.Errorf("nowitness=%v: CloseGraph = %v", noWitness, err)
		}
	}
}

// TestWithoutWitnessesConflicts: WithoutWitnesses keeps counts and valences
// (Explore/ClassifyInits work, WitnessPath is nil), while the
// witness-producing analyses reject the combination with a typed
// *ConflictError instead of returning empty witnesses — unless the graph
// phases are skipped, which makes the combination legitimate.
func TestWithoutWitnessesConflicts(t *testing.T) {
	chk, err := boosting.New("forward", 2, 0,
		boosting.WithWorkers(1), boosting.WithoutWitnesses())
	if err != nil {
		t.Fatal(err)
	}
	c, err := chk.ClassifyInits()
	if err != nil {
		t.Fatalf("ClassifyInits without witnesses: %v", err)
	}
	full, err := boosting.New("forward", 2, 0, boosting.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	want, err := full.ClassifyInits()
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsIdentical(t, "nowitness", want.Graph, c.Graph)
	if got := c.Graph.WitnessPath(boosting.StateID(c.Graph.Size() - 1)); got != nil {
		t.Errorf("WitnessPath on a witness-free graph = %v, want nil", got)
	}
	var ce *boosting.ConflictError
	if _, err := chk.FindHook(c.Graph, c.Roots[c.BivalentIndex]); !errors.As(err, &ce) {
		t.Errorf("FindHook without witnesses: got %v, want *ConflictError", err)
	}
	if _, err := chk.Refute(1); !errors.As(err, &ce) {
		t.Errorf("Refute without witnesses: got %v, want *ConflictError", err)
	} else if ce.Option == "" || ce.With != "Refute" {
		t.Errorf("ConflictError fields not populated: %+v", ce)
	}
	if _, err := chk.RefuteKSet(1, 1); !errors.As(err, &ce) {
		t.Errorf("RefuteKSet without witnesses: got %v, want *ConflictError", err)
	}
	// With the graph phases skipped nothing reconstructs witnesses, so the
	// combination is accepted and the failure scenarios still run.
	skipped, err := boosting.New("forward", 2, 0,
		boosting.WithWorkers(1), boosting.WithoutWitnesses(), boosting.WithoutGraphAnalysis())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := skipped.Refute(1); err != nil {
		t.Errorf("Refute without witnesses + WithoutGraphAnalysis: %v", err)
	}
}

// TestSpillDirUnusable: an unusable spill directory fails the build with an
// ordinary error (not a *LimitError, not a panic) through the façade.
func TestSpillDirUnusable(t *testing.T) {
	chk, err := boosting.New("forward", 2, 0, boosting.WithSpillDir("/nonexistent/spill/dir"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = chk.Explore(map[int]string{0: "0", 1: "1"})
	if err == nil {
		t.Fatal("Explore with unusable spill dir succeeded")
	}
	var le *boosting.LimitError
	if errors.As(err, &le) {
		t.Fatalf("spill-dir failure misreported as a state-budget overflow: %v", err)
	}
}
