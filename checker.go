package boosting

import (
	"github.com/ioa-lab/boosting/internal/codec"
	"github.com/ioa-lab/boosting/internal/explore"
)

// Checker is the façade over the paper's pipeline on one candidate system:
// build the failure-free execution graph G(C) (Section 3.3), classify
// initializations by valence (Lemma 4), run the Fig. 3 hook construction
// (Lemma 5), and refute boosting claims by extracting concrete
// counterexample executions (Theorems 2, 9 and 10). A Checker is cheap; it
// holds the immutable system and the resolved options, and every method is
// safe for concurrent use.
type Checker struct {
	sys       *System
	cfg       config
	skipGraph bool
	// canon is the family's symmetry canonicalizer, resolved eagerly when
	// the registry declares a spec — independent of WithSymmetry, which
	// separately routes it into the exploration engines via cfg.canon. It
	// backs the canonical-identity methods, so renamed-isomorphic states
	// map to one fingerprint even on unreduced checkers. nil for families
	// without a spec and for NewFromSystem checkers.
	canon explore.Canonicalizer
}

// System returns the composed system under analysis.
func (c *Checker) System() *System { return c.sys }

// Explore builds (a finite fragment of) G(C) from the initialization given
// by inputs: the failure-free closure of the initialized state under all
// applicable tasks, with valences computed. Honors the Checker's workers,
// state budget, store backend, progress and context options. On a durable
// checker (WithGraphDir) the graph is committed to — or, when the
// directory already holds this exact build, reopened from — the graph
// directory.
func (c *Checker) Explore(inputs map[int]string) (*Graph, error) {
	if err := c.cfg.validateDurable(); err != nil {
		return nil, err
	}
	root, err := explore.ApplyInputs(c.sys, inputs)
	if err != nil {
		return nil, err
	}
	opt := c.cfg.buildOptions()
	if opt.GraphDir != "" {
		// The full identity of this build: the candidate identity plus the
		// canonicalized root — Explore's root set is the one degree of
		// freedom CanonicalFingerprint's monotone roots do not pin.
		rootFp, err := c.CanonicalRootFingerprint(inputs)
		if err != nil {
			return nil, err
		}
		opt.GraphID = append(c.CanonicalFingerprint(), rootFp...)
	}
	return explore.BuildOrReopenGraph(c.sys, []State{root}, opt)
}

// ClassifyInits performs the Lemma 4 sweep: build G(C) from all n+1
// monotone initializations and classify each root by valence. On a
// durable checker (WithGraphDir) the shared graph is committed to — or
// reopened from — the graph directory; CanonicalFingerprint, which
// already pins the monotone roots, is its recorded identity.
func (c *Checker) ClassifyInits() (*InitClassification, error) {
	if err := c.cfg.validateDurable(); err != nil {
		return nil, err
	}
	opt := c.cfg.buildOptions()
	if opt.GraphDir != "" {
		opt.GraphID = c.CanonicalFingerprint()
	}
	return explore.ClassifyInits(c.sys, opt)
}

// OpenGraph reattaches a committed durable graph directory — one written
// by a WithGraphDir build — as a read-only graph, without exploring a
// state. The Checker's system must be shape-compatible with the system
// the graph was built from (same processes and service structure; the
// programs, resilience and silence policy may differ — those are what
// Recheck revalidates). Validation failures are typed *ManifestError
// values. Close the graph with CloseGraph.
func (c *Checker) OpenGraph(dir string) (*Graph, error) {
	return explore.OpenGraph(c.sys, dir, explore.OpenOptions{})
}

// Recheck revalidates this Checker's candidate against a previously built
// graph — typically one reopened via OpenGraph from a durable directory
// committed by an earlier, slightly different candidate. Only the dirty
// region (base states whose enabled-action sets changed) and the fresh
// frontier growing out of it are re-explored; everything else is reused.
// The result carries the spliced graph, the monotone roots' valences
// (the Lemma 4 sweep on the modified candidate) and the dirty/fresh
// accounting. Close the result, not prev — it owns prev's store.
func (c *Checker) Recheck(prev *Graph) (*RecheckResult, error) {
	n := len(c.sys.ProcessIDs())
	roots := make([]State, 0, n+1)
	for i := 0; i <= n; i++ {
		st, err := explore.ApplyInputs(c.sys, explore.MonotoneAssignment(c.sys, i))
		if err != nil {
			return nil, err
		}
		roots = append(roots, st)
	}
	opt := c.cfg.buildOptions()
	// A recheck never commits: it layers an in-memory delta over the
	// (possibly durable) base graph.
	opt.GraphDir = ""
	return explore.Recheck(c.sys, prev, roots, opt)
}

// FindHook runs the Fig. 3 round-robin construction from a bivalent vertex
// of g (typically a bivalent root from ClassifyInits), yielding a hook or a
// divergence certificate. It honors the Checker's WithContext: a cancelled
// context stops the construction mid-scan. Divergence certificates embed
// witness executions, so a Checker configured WithoutWitnesses returns a
// *ConflictError.
func (c *Checker) FindHook(g *Graph, root StateID) (HookSearchResult, error) {
	if c.cfg.noWitnesses {
		return HookSearchResult{}, &ConflictError{
			Option: "WithoutWitnesses()",
			With:   "FindHook",
			Reason: "divergence certificates reconstruct witness executions from the dropped predecessor links",
		}
	}
	return explore.FindHookCtx(c.cfg.ctx, g, root, c.cfg.workers)
}

// Refute analyses the candidate's claim to tolerate the given number of
// process failures: the exhaustive failure-free safety sweep, the Lemma 4
// classification, the Fig. 3 hook search, and the failure scenarios of the
// impossibility proofs. For registry families with infinite failure-free
// graphs the graph phases are skipped automatically. The graph phases
// build witness certificates, so a Checker configured WithoutWitnesses
// returns a *ConflictError unless those phases are skipped
// (WithoutGraphAnalysis or a SkipsGraphAnalysis family).
func (c *Checker) Refute(claimed int) (*Report, error) {
	if err := c.witnessConflict("Refute"); err != nil {
		return nil, err
	}
	if err := c.durableConflict("Refute"); err != nil {
		return nil, err
	}
	return explore.Refute(c.sys, claimed, c.refuteOptions())
}

// RefuteKSet is the k-set-consensus refuter: at most k distinct decisions
// instead of full agreement (Section 4's boundary). Like Refute, it
// rejects WithoutWitnesses unless the graph phases are skipped.
func (c *Checker) RefuteKSet(k, claimed int) (*Report, error) {
	if err := c.witnessConflict("RefuteKSet"); err != nil {
		return nil, err
	}
	if err := c.durableConflict("RefuteKSet"); err != nil {
		return nil, err
	}
	return explore.RefuteKSet(c.sys, k, claimed, c.refuteOptions())
}

// durableConflict rejects the refuters on a durable checker: a graph
// directory holds exactly one committed graph, and a refutation builds
// several (the classification sweep plus scenario graphs). Durable
// storage composes with Explore and ClassifyInits, which build one.
func (c *Checker) durableConflict(method string) error {
	if c.cfg.graphDir == "" {
		return nil
	}
	if err := c.cfg.validateDurable(); err != nil {
		return err
	}
	return &ConflictError{
		Option: "WithGraphDir(" + c.cfg.graphDir + ")",
		With:   method,
		Reason: "a durable graph directory holds exactly one committed graph; refutations build several — use ClassifyInits or Explore with durable storage",
	}
}

// witnessConflict rejects witness-producing refutations on a Checker
// configured WithoutWitnesses: the safety sweep's certificates embed
// witness paths, and the hook search embeds witness executions. With the
// graph phases skipped the refuter never touches either, so the
// combination is fine.
func (c *Checker) witnessConflict(method string) error {
	if !c.cfg.noWitnesses || c.skipGraph {
		return nil
	}
	return &ConflictError{
		Option: "WithoutWitnesses()",
		With:   method,
		Reason: "safety-sweep certificates and hook search reconstruct witness executions from the dropped predecessor links (skip the graph phases with WithoutGraphAnalysis to combine)",
	}
}

func (c *Checker) refuteOptions() explore.RefuteOptions {
	return explore.RefuteOptions{
		Build:             c.cfg.buildOptions(),
		MaxRounds:         c.cfg.maxRounds,
		SkipGraphAnalysis: c.skipGraph,
	}
}

// CanonicalFingerprint returns the symmetry-aware canonical identity of the
// configured system: a structural encoding of its components — process
// count, and per service (in sorted index order) the index, type name,
// class, initial value, resilience, silence policy and endpoint count —
// followed by the canonicalized fingerprints of the n+1 monotone
// initialization roots. Two checkers over the same candidate collide even
// when they were built with different engine options (workers, shards,
// store backend, symmetry reduction), while distinct n, f, silence policy
// or round parameters produce distinct identities: n changes the component
// count, f the declared resilience, the policy the per-service policy
// field, and the round parameter the round-register set.
//
// For families that declare a symmetry group the root states are
// canonicalized modulo process renaming whether or not WithSymmetry is
// configured, so renamed-but-isomorphic identities collide. This is the
// building block of result caches keyed by candidate identity (the boostd
// server's cache, incremental re-exploration): append the analysis
// parameters that affect the verdict and the key is complete.
func (c *Checker) CanonicalFingerprint() []byte {
	dst := append([]byte(nil), "boosting-id-v1"...)
	dst = append(dst, '[')
	dst = codec.AppendInt(dst, len(c.sys.ProcessIDs()))
	for _, k := range c.sys.ServiceIDs() {
		sv := c.sys.Service(k)
		dst = append(dst, '(')
		dst = codec.AppendAtom(dst, sv.Index())
		dst = codec.AppendAtom(dst, sv.Type().Name)
		dst = codec.AppendInt(dst, int(sv.Type().Class))
		dst = codec.AppendAtom(dst, sv.Type().Initial)
		dst = codec.AppendInt(dst, sv.Resilience())
		dst = codec.AppendInt(dst, int(sv.Policy()))
		dst = codec.AppendInt(dst, len(sv.Endpoints()))
		dst = append(dst, ')')
	}
	dst = append(dst, ']')
	n := len(c.sys.ProcessIDs())
	for i := 0; i <= n; i++ {
		// Init only fails for unknown process ids; the monotone assignments
		// range over the system's own, so the error path is unreachable.
		st, err := explore.ApplyInputs(c.sys, explore.MonotoneAssignment(c.sys, i))
		if err != nil {
			dst = codec.AppendAtom(dst, err.Error())
			continue
		}
		if c.canon != nil {
			st = c.canon.Canonical(st)
		}
		dst = append(dst, '[')
		dst = c.sys.AppendFingerprint(dst, st)
		dst = append(dst, ']')
	}
	return dst
}

// CanonicalRootFingerprint returns the canonical fingerprint of the root
// state reached by delivering the given input assignment to a fresh initial
// state — the identity of one initialized run of the candidate. For
// families with a declared symmetry group the root is canonicalized modulo
// process renaming (independent of WithSymmetry), so input assignments that
// differ only by a renaming of interchangeable processes — isomorphic
// initialized systems — return identical fingerprints. Combine with
// CanonicalFingerprint to key per-initialization results (the boostd
// server's explore jobs) by candidate identity.
func (c *Checker) CanonicalRootFingerprint(inputs map[int]string) ([]byte, error) {
	root, err := explore.ApplyInputs(c.sys, inputs)
	if err != nil {
		return nil, err
	}
	if c.canon != nil {
		root = c.canon.Canonical(root)
	}
	return c.sys.AppendFingerprint(nil, root), nil
}

// Run executes the system under the canonical fair round-robin schedule:
// inputs first, then rounds in which every task gets one turn. The run
// stops at modified termination, at a provable divergence, or at
// RunConfig.MaxRounds.
func (c *Checker) Run(cfg RunConfig) (RunResult, error) {
	return explore.RoundRobin(c.sys, cfg)
}

// RunFrom continues the canonical fair schedule from an arbitrary state
// (inputs and failures already delivered); the inputs map only feeds the
// termination condition. The Checker's WithMaxRounds bounds the run.
func (c *Checker) RunFrom(st State, inputs map[int]string) (RunResult, error) {
	return explore.RoundRobinFrom(c.sys, st, inputs, c.cfg.maxRounds)
}

// RunRandom executes the system under a seeded random schedule for at most
// the given number of steps. Random schedules are not fair in any finite
// prefix; use them for property bashing, not liveness verdicts.
func (c *Checker) RunRandom(cfg RunConfig, seed int64, steps int) (RunResult, error) {
	return explore.Random(c.sys, cfg, seed, steps)
}

// RunBatch executes every configuration under the canonical fair schedule
// across the Checker's workers, honoring its context; results come back in
// input order and are identical to one-by-one runs. Per-step execution
// traces are dropped — use Run when the trace is needed.
func (c *Checker) RunBatch(cfgs []RunConfig) ([]RunResult, error) {
	return explore.RunBatchCtx(c.cfg.ctx, c.sys, cfgs, c.cfg.workers)
}
