package boosting

import (
	"fmt"
	"strings"

	"github.com/ioa-lab/boosting/internal/protocols"
	"github.com/ioa-lab/boosting/internal/symmetry"
	"github.com/ioa-lab/boosting/internal/system"
)

// ProtocolInfo describes one entry of the protocol registry.
type ProtocolInfo struct {
	// Name is the registry key accepted by New.
	Name string
	// Description is a one-line summary of the candidate family.
	Description string
	// SkipsGraphAnalysis reports that the family's failure-free reachable
	// graph is infinite (its failure detectors push suspicion responses
	// unconditionally), so Refute goes straight to the failure scenarios.
	SkipsGraphAnalysis bool
}

// protocolSpec couples registry metadata with a builder. The builder
// receives the resolved option config for the policy and rounds knobs.
// sym, when non-nil, declares the family's process-renaming symmetry for
// WithSymmetry; families whose states embed process ids beyond the
// declared renaming rules leave it nil and always explore unreduced.
type protocolSpec struct {
	info  ProtocolInfo
	build func(n, f int, c *config) (*system.System, error)
	sym   func(n, f int) symmetry.Spec
}

// roundsOr resolves the rounds knob: an explicit WithRounds wins, otherwise
// the protocol's natural default.
func roundsOr(c *config, def int) int {
	if c.rounds > 0 {
		return c.rounds
	}
	return def
}

// registry lists the candidate families, in presentation order.
var registry = []protocolSpec{
	{
		info: ProtocolInfo{
			Name:        "forward",
			Description: "n processes forwarding to one f-resilient consensus object (Theorem 2 family)",
		},
		build: func(n, f int, c *config) (*system.System, error) {
			return protocols.BuildForward(n, f, c.policy)
		},
		sym: func(n, _ int) symmetry.Spec { return protocols.ForwardSymmetry(n) },
	},
	{
		info: ProtocolInfo{
			Name:        "tob",
			Description: "n processes deciding via an f-resilient totally ordered broadcast service (Theorem 9 family)",
		},
		build: func(n, f int, c *config) (*system.System, error) {
			return protocols.BuildTOBConsensus(n, f, c.policy)
		},
		sym: func(n, _ int) symmetry.Spec { return protocols.TOBSymmetry(n) },
	},
	{
		info: ProtocolInfo{
			Name:        "registervote",
			Description: "naive register-only vote; loses safety in the failure-free graph (FLP corner of Theorem 2)",
		},
		build: func(n, _ int, _ *config) (*system.System, error) {
			return protocols.BuildRegisterVote(n)
		},
		sym: func(n, _ int) symmetry.Spec { return protocols.RegisterVoteSymmetry(n) },
	},
	{
		info: ProtocolInfo{
			Name:        "setboost",
			Description: "Section 4 boost: wait-free 2n-process 2-set consensus from two wait-free n-process consensus services (n = group size)",
		},
		build: func(n, _ int, _ *config) (*system.System, error) {
			return protocols.BuildSetBoost(n)
		},
		sym: func(n, _ int) symmetry.Spec { return protocols.SetBoostSymmetry(n) },
	},
	{
		info: ProtocolInfo{
			Name:               "floodset-p",
			Description:        "FloodSet over registers with one f-resilient all-connected perfect failure detector (Theorem 10 family; rounds default n)",
			SkipsGraphAnalysis: true,
		},
		build: func(n, f int, c *config) (*system.System, error) {
			return protocols.BuildFloodSetWithP(n, f, roundsOr(c, n), c.policy)
		},
	},
	{
		info: ProtocolInfo{
			Name:               "fdboost",
			Description:        "Section 6.3 boost: FloodSet with pairwise 1-resilient 2-process perfect failure detectors (rounds default n)",
			SkipsGraphAnalysis: true,
		},
		build: func(n, _ int, c *config) (*system.System, error) {
			return protocols.BuildFDBoost(n, roundsOr(c, n))
		},
	},
	{
		info: ProtocolInfo{
			Name:               "evperfect",
			Description:        "FloodSet guided by a wait-free eventually perfect failure detector: pre-stabilization suspicions break the round simulation (rounds default n)",
			SkipsGraphAnalysis: true,
		},
		build: func(n, _ int, c *config) (*system.System, error) {
			return protocols.BuildFloodSetWithEvP(n, roundsOr(c, n))
		},
	},
	{
		info: ProtocolInfo{
			Name:               "suspectcollector",
			Description:        "Section 6.3 union construction: n collectors accumulating pairwise perfect-detector reports",
			SkipsGraphAnalysis: true,
		},
		build: func(n, _ int, _ *config) (*system.System, error) {
			return protocols.BuildSuspectCollector(n)
		},
	},
}

// Protocols returns the registry of candidate families New accepts, in
// presentation order.
func Protocols() []ProtocolInfo {
	out := make([]ProtocolInfo, len(registry))
	for i, spec := range registry {
		out[i] = spec.info
	}
	return out
}

// lookupProtocol resolves a registry name.
func lookupProtocol(name string) (protocolSpec, bool) {
	for _, spec := range registry {
		if spec.info.Name == name {
			return spec, true
		}
	}
	return protocolSpec{}, false
}

// New builds a Checker for a registered candidate family: name is a
// registry key (see Protocols), n the number of processes (for "setboost",
// the group size), f the service resilience (ignored by families without a
// resilience knob). Options configure both system construction (silence
// policy, rounds) and analysis (workers, state budget, store backend,
// progress, context).
func New(name string, n, f int, opts ...Option) (*Checker, error) {
	spec, ok := lookupProtocol(name)
	if !ok {
		names := make([]string, len(registry))
		for i, s := range registry {
			names[i] = s.info.Name
		}
		return nil, fmt.Errorf("boosting: unknown protocol %q (have: %s)", name, strings.Join(names, ", "))
	}
	cfg := defaultConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	if err := cfg.validateDurable(); err != nil {
		return nil, err
	}
	sys, err := spec.build(n, f, &cfg)
	if err != nil {
		return nil, err
	}
	// Resolve the family's canonicalizer eagerly whenever a symmetry spec is
	// declared: WithSymmetry routes it into the exploration engines, and
	// CanonicalFingerprint uses it either way, so renamed-isomorphic
	// identities collide regardless of whether the quotient graph is
	// requested. Resolution failures (group order beyond the cap at large n)
	// only matter when the reduction was actually asked for.
	var canon *symmetry.Canonicalizer
	if spec.sym != nil {
		canon, err = symmetry.New(sys, spec.sym(n, f))
		if err != nil {
			if cfg.symmetry {
				return nil, fmt.Errorf("boosting: %s symmetry: %w", name, err)
			}
			canon = nil
		}
	}
	chk := &Checker{sys: sys, cfg: cfg, skipGraph: spec.info.SkipsGraphAnalysis || cfg.skipGraph}
	if canon != nil {
		chk.canon = canon
		if cfg.symmetry {
			chk.cfg.canon = canon
		}
	}
	return chk, nil
}

// NewFromSystem wraps an already-composed system in a Checker, for systems
// assembled outside the registry (custom programs and service wirings).
// Pass WithoutGraphAnalysis for detector-bearing systems whose
// failure-free graph is infinite.
func NewFromSystem(sys *System, opts ...Option) *Checker {
	cfg := defaultConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	return &Checker{sys: sys, cfg: cfg, skipGraph: cfg.skipGraph}
}
