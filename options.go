package boosting

import (
	"context"
	"fmt"

	"github.com/ioa-lab/boosting/internal/explore"
	"github.com/ioa-lab/boosting/internal/service"
)

// config is the resolved option set of a Checker.
type config struct {
	workers     int
	shards      int
	maxStates   int
	store       Store
	storeSet    bool
	spillDir    string
	graphDir    string
	noWitnesses bool
	progress    ProgressFunc
	ctx         context.Context
	policy      service.SilencePolicy
	rounds      int
	maxRounds   int
	skipGraph   bool
	symmetry    bool
	// canon is the resolved canonicalizer: non-nil only when symmetry is
	// requested and the protocol declares a symmetry spec.
	canon explore.Canonicalizer
}

// ConflictError reports an option combination that an analysis cannot
// honor — for example WithoutWitnesses with FindHook, whose certificates
// are witness executions. It is returned eagerly, typed, instead of letting
// the analysis produce silently empty witnesses. errors.As recovers it.
type ConflictError struct {
	// Option is the configured option, e.g. "WithoutWitnesses()".
	Option string
	// With is the analysis or option it conflicts with, e.g. "FindHook".
	With string
	// Reason says why the combination cannot work.
	Reason string
}

func (e *ConflictError) Error() string {
	return fmt.Sprintf("boosting: %s conflicts with %s: %s", e.Option, e.With, e.Reason)
}

func defaultConfig() config {
	return config{policy: service.Adversarial}
}

// Option configures a Checker.
type Option func(*config)

// WithWorkers sets the exploration worker count: 0 (the default) means one
// per CPU, 1 forces the serial engines. Results are identical for any
// worker count. Negative values are clamped to 0 (the default) — they never
// reach the pool sizing.
func WithWorkers(n int) Option { return func(c *config) { c.workers = max(n, 0) } }

// WithShards selects the sharded exploration engine with n fingerprint
// partitions (clamped to 64): workers intern freshly discovered states
// immediately into the shard owning their fingerprint-hash range — no
// serial intern pass at the level barriers — and a post-hoc renumber pass
// sorts each BFS level by fingerprint hash into the final dense StateID
// space. The produced graph is identical for every shard count, worker
// count and store backend, and isomorphic to the default engines' graph —
// same states, edge relation, valences, counts and verdicts — but numbered
// differently, so per-ID output is stable within either family, not across
// them. 0 (the default) and negative values keep the default engines. A
// natural pairing is WithShards(runtime.NumCPU()) with the default
// WithWorkers(0).
func WithShards(n int) Option { return func(c *config) { c.shards = max(n, 0) } }

// WithMaxStates caps the number of distinct states explored per graph
// build (0 = the engine default, 200000). Exceeding the cap returns a
// *LimitError. Negative values are clamped to 0 (the default) — they never
// masquerade as an already-exceeded budget.
func WithMaxStates(n int) Option { return func(c *config) { c.maxStates = max(n, 0) } }

// Storage options. They compose freely with each other and with every
// backend: all backends produce identical graphs and reports, differing
// only in resident memory and lookup cost. WithoutWitnesses conflicts with
// the witness-producing analyses (FindHook, Refute's graph phases), which
// return a *ConflictError rather than empty witnesses.

// WithStore selects the storage backend for graph builds: DenseStore
// (default), HashStore64, HashStore128 or SpillStore. See the Store
// constants for what each keeps resident.
func WithStore(s Store) Option {
	return func(c *config) {
		c.store = s
		c.storeSet = true
	}
}

// WithSpillDir selects the SpillStore backend and places its spill files in
// dir ("" keeps the OS temp directory). The spill store keeps only 16 hash
// bytes plus two file offsets per vertex in RAM; canonical fingerprints —
// the serialized representative states — live in an append-only spill file,
// and adjacency lives as delta-varint blocks in a second append-only edge
// file, both decoded back on demand, so state budgets are bounded by disk,
// not resident memory. Spill files are unlinked at creation and reclaimed
// by the kernel when the graph is collected (or closed via CloseGraph).
func WithSpillDir(dir string) Option {
	return func(c *config) {
		c.store = SpillStore
		c.spillDir = dir
	}
}

// WithGraphDir makes every graph the Checker builds durable: the spill
// backend's file set — canonical fingerprints, edge blocks, index,
// valence masks, roots — is committed under dir behind a versioned,
// checksummed manifest instead of living in unlinked temp files. A
// directory holding a committed graph whose identity matches the
// requested build exactly (candidate, roots, symmetry, witnesses) is
// reopened without exploring a state; anything else — empty directory,
// different candidate, damaged files — is rebuilt in place. Reopen the
// directory later with Checker.OpenGraph (any same-shape candidate) and
// revalidate a modified candidate against it with Checker.Recheck.
//
// WithGraphDir selects the SpillStore backend; it conflicts with
// WithSpillDir (a durable graph owns its directory's file set), with an
// explicit non-spill WithStore, and with WithShards (shard-local stores
// cannot commit one durable file set). Conflicts surface as a typed
// *ConflictError from New, or from the first graph-building method on a
// NewFromSystem checker. One directory holds exactly one graph, so
// Refute — which builds several — rejects the combination too.
func WithGraphDir(dir string) Option {
	return func(c *config) {
		c.graphDir = dir
		if dir != "" && !c.storeSet {
			c.store = SpillStore
		}
	}
}

// validateDurable rejects option combinations the durable graph store
// cannot honor. Called from New, and again from the graph-building
// methods so NewFromSystem checkers (whose constructor cannot return an
// error) fail eagerly and typed.
func (c *config) validateDurable() error {
	if c.graphDir == "" {
		return nil
	}
	if c.spillDir != "" {
		return &ConflictError{
			Option: "WithGraphDir(" + c.graphDir + ")",
			With:   "WithSpillDir(" + c.spillDir + ")",
			Reason: "a durable graph owns its directory's file set; the same build cannot also spill into a second directory",
		}
	}
	if c.store != SpillStore {
		return &ConflictError{
			Option: "WithGraphDir(" + c.graphDir + ")",
			With:   "WithStore",
			Reason: "durable graphs are written and reopened by the spill backend",
		}
	}
	if c.shards > 0 {
		return &ConflictError{
			Option: "WithGraphDir(" + c.graphDir + ")",
			With:   "WithShards",
			Reason: "the sharded engine builds into shard-local stores and renumbers afterwards; it cannot commit one durable file set",
		}
	}
	return nil
}

// WithoutWitnesses drops the per-vertex BFS-tree predecessor links from
// every graph the Checker builds: counts, valences and edges are
// unchanged, WitnessPath returns nil, and analyses that must reconstruct
// witness executions — FindHook, and Refute unless the graph phases are
// skipped — return a *ConflictError instead of producing empty witnesses.
// Use it with Explore/ClassifyInits workloads that only need counts and
// valences: on large builds the links are a word-heavy per-vertex cost the
// spill backend cannot move to disk.
func WithoutWitnesses() Option { return func(c *config) { c.noWitnesses = true } }

// WithProgress streams per-level exploration reports (states, edges,
// frontier) to fn during every graph build the Checker performs.
func WithProgress(fn ProgressFunc) Option { return func(c *config) { c.progress = fn } }

// WithContext attaches a cancellation context: long-running exploration,
// refutation and batch runs check it mid-level and return ctx.Err()
// promptly once cancelled.
func WithContext(ctx context.Context) Option { return func(c *config) { c.ctx = ctx } }

// WithSilencePolicy sets whether services past their resilience bound
// exercise the right to fall silent (default Adversarial). Protocols whose
// builders take no policy ignore it.
func WithSilencePolicy(p SilencePolicy) Option { return func(c *config) { c.policy = p } }

// WithRounds sets the round parameter of round-structured protocols
// (floodset-p, fdboost, evperfect): the number of flooding rounds. 0 (the
// default) picks the protocol's natural value (see Protocols).
func WithRounds(r int) Option { return func(c *config) { c.rounds = r } }

// WithMaxRounds caps fair scheduled runs inside Refute/RefuteKSet (0 = the
// engine default, 10000 rounds). Runs started directly via Run take their
// cap from RunConfig.MaxRounds instead.
func WithMaxRounds(r int) Option { return func(c *config) { c.maxRounds = r } }

// WithSymmetry enables symmetry-reduced exploration: every graph build the
// Checker performs canonicalizes states modulo process renaming before
// interning, so isomorphic states — identical up to a permutation of
// interchangeable process identities — collapse into one vertex. The
// quotient graph is smaller by up to n! while preserving every verdict:
// valence classifications, refutation outcomes and hook existence are the
// same as on the full graph (decisions are compared by value, never by
// process identity), and all store backends and worker counts still
// produce identical graphs to each other.
//
// The reduction applies to registry protocols that declare a symmetry
// group (forward, tob, registervote, setboost). Families whose states
// embed process ids beyond the declared renaming rules — the
// failure-detector families, whose graph phases the refuter skips anyway —
// and systems wrapped via NewFromSystem explore unreduced.
func WithSymmetry() Option { return func(c *config) { c.symmetry = true } }

// WithoutGraphAnalysis makes Refute skip the failure-free graph phases
// (safety sweep, Lemma 4, hook search) and go straight to the failure
// scenarios. Required for custom systems (NewFromSystem) whose failure
// detectors push suspicion responses unconditionally: their failure-free
// reachable graph is infinite. Registry families that need this are marked
// SkipsGraphAnalysis and get it automatically.
func WithoutGraphAnalysis() Option { return func(c *config) { c.skipGraph = true } }

// buildOptions lowers the config to engine build options.
func (c *config) buildOptions() explore.BuildOptions {
	return explore.BuildOptions{
		Workers:     c.workers,
		Shards:      c.shards,
		MaxStates:   c.maxStates,
		Store:       c.store,
		SpillDir:    c.spillDir,
		GraphDir:    c.graphDir,
		NoWitnesses: c.noWitnesses,
		Symmetry:    c.canon,
		Progress:    c.progress,
		Ctx:         c.ctx,
	}
}
