package boosting_test

// Façade-level tests of the durable graph store (WithGraphDir,
// Checker.OpenGraph, Checker.Recheck): for EVERY registry protocol with a
// finite failure-free graph, the durable build must be identical to the
// ephemeral reference, the committed directory must reopen — without
// exploring a state — into the identical graph, and identity mismatches
// must rebuild rather than serve a stale graph. Plus the explicit
// conflict matrix of WithGraphDir and the façade recheck path.

import (
	"errors"
	"testing"

	"github.com/ioa-lab/boosting"
)

// durableN picks a per-protocol system size that keeps the failure-free
// graph comfortably finite for the all-protocols sweep.
func durableN(name string) int {
	switch name {
	case "fdboost", "suspectcollector", "evperfect", "floodset-p":
		return 3
	default:
		return 2
	}
}

// TestDurableFacadeParityAllProtocols is the reopen-parity acceptance
// suite over the whole registry: for every protocol family whose
// failure-free graph is finite, (1) the durable ClassifyInits build
// equals the ephemeral reference per ID and per edge, (2) a second
// checker over the same candidate reopens the committed directory
// without exploring — zero progress reports — into the identical graph,
// and (3) OpenGraph reattaches it directly.
func TestDurableFacadeParityAllProtocols(t *testing.T) {
	for _, info := range boosting.Protocols() {
		if info.SkipsGraphAnalysis {
			// Infinite failure-free graphs: there is no finite graph to
			// persist. WithGraphDir composes with these families only
			// through state-capped Explore, not the Lemma 4 sweep.
			continue
		}
		t.Run(info.Name, func(t *testing.T) {
			n := durableN(info.Name)
			ref, err := boosting.New(info.Name, n, 0, boosting.WithWorkers(1))
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref.ClassifyInits()
			if err != nil {
				t.Fatal(err)
			}
			defer want.Close()

			dir := t.TempDir()
			built, err := boosting.New(info.Name, n, 0,
				boosting.WithWorkers(1), boosting.WithGraphDir(dir))
			if err != nil {
				t.Fatal(err)
			}
			got, err := built.ClassifyInits()
			if err != nil {
				t.Fatal(err)
			}
			assertGraphsIdentical(t, "durable build", want.Graph, got.Graph)
			if m, ok := boosting.GraphManifest(got.Graph); !ok {
				t.Error("durable build carries no manifest")
			} else if m.States != want.Graph.Size() || m.Edges != want.Graph.Edges() {
				t.Errorf("manifest records %d/%d, graph has %d/%d",
					m.States, m.Edges, want.Graph.Size(), want.Graph.Edges())
			}
			if err := got.Close(); err != nil {
				t.Fatal(err)
			}
			if !boosting.HasGraph(dir) {
				t.Fatal("no committed manifest after durable build")
			}

			// Same candidate, fresh checker: the sweep must REOPEN, not
			// rebuild — observable as zero per-level progress reports.
			var levels int
			again, err := boosting.New(info.Name, n, 0,
				boosting.WithWorkers(1), boosting.WithGraphDir(dir),
				boosting.WithProgress(func(boosting.Progress) { levels++ }))
			if err != nil {
				t.Fatal(err)
			}
			reGot, err := again.ClassifyInits()
			if err != nil {
				t.Fatal(err)
			}
			if levels != 0 {
				t.Errorf("reopen explored: %d progress reports", levels)
			}
			assertGraphsIdentical(t, "reopened sweep", want.Graph, reGot.Graph)
			if reGot.BivalentIndex != want.BivalentIndex {
				t.Errorf("bivalent index %d, want %d", reGot.BivalentIndex, want.BivalentIndex)
			}
			if err := reGot.Close(); err != nil {
				t.Fatal(err)
			}

			// Direct reattach.
			opened, err := ref.OpenGraph(dir)
			if err != nil {
				t.Fatal(err)
			}
			assertGraphsIdentical(t, "OpenGraph", want.Graph, opened)
			if err := boosting.CloseGraph(opened); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDurableFacadeRebuildOnMismatch: a directory committed by a
// different candidate (same shape, different resilience) is rebuilt in
// place, not served stale.
func TestDurableFacadeRebuildOnMismatch(t *testing.T) {
	dir := t.TempDir()
	first, err := boosting.New("forward", 2, 0,
		boosting.WithWorkers(1), boosting.WithGraphDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	c1, err := first.ClassifyInits()
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	// f=1 has a different canonical identity; the old manifest must lose.
	var levels int
	second, err := boosting.New("forward", 2, 1,
		boosting.WithWorkers(1), boosting.WithGraphDir(dir),
		boosting.WithProgress(func(boosting.Progress) { levels++ }))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := second.ClassifyInits()
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if levels == 0 {
		t.Error("identity mismatch served the stale graph instead of rebuilding")
	}
	ref, err := boosting.New("forward", 2, 1, boosting.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.ClassifyInits()
	if err != nil {
		t.Fatal(err)
	}
	defer want.Close()
	assertGraphsIdentical(t, "rebuilt", want.Graph, c2.Graph)
}

// TestDurableFacadeRecheck drives the incremental path end to end at the
// façade: commit the adversarial forward graph, reopen it, recheck the
// benign-policy variant — whose failure-free graph is provably identical
// (silence never fires without failures) — and require an empty dirty
// region, zero fresh states and the reference verdict.
func TestDurableFacadeRecheck(t *testing.T) {
	dir := t.TempDir()
	base, err := boosting.New("forward", 3, 1,
		boosting.WithWorkers(1), boosting.WithGraphDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	c, err := base.ClassifyInits()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	delta, err := boosting.New("forward", 3, 1,
		boosting.WithWorkers(1), boosting.WithSilencePolicy(boosting.Benign))
	if err != nil {
		t.Fatal(err)
	}
	prev, err := delta.OpenGraph(dir)
	if err != nil {
		t.Fatal(err)
	}
	res, err := delta.Recheck(prev)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if res.Dirty != 0 || res.Fresh != 0 {
		t.Errorf("benign-policy recheck: dirty=%d fresh=%d, want 0/0", res.Dirty, res.Fresh)
	}
	want, err := delta.ClassifyInits()
	if err != nil {
		t.Fatal(err)
	}
	defer want.Close()
	if res.ReachableStates != want.Graph.Size() || res.ReachableEdges != want.Graph.Edges() {
		t.Errorf("reachable %d/%d, want %d/%d",
			res.ReachableStates, res.ReachableEdges, want.Graph.Size(), want.Graph.Edges())
	}
	for i := range want.Valences {
		if res.Valences[i] != want.Valences[i] {
			t.Errorf("root %d: valence %v, want %v", i, res.Valences[i], want.Valences[i])
		}
	}
	if res.BivalentIndex != want.BivalentIndex {
		t.Errorf("bivalent index %d, want %d", res.BivalentIndex, want.BivalentIndex)
	}
}

// TestWithGraphDirConflicts is the explicit conflict matrix: every
// combination the durable store cannot honor surfaces as a typed
// *ConflictError naming both sides, from New for registry checkers and
// from the first graph-building method for NewFromSystem checkers.
func TestWithGraphDirConflicts(t *testing.T) {
	cases := []struct {
		name string
		opts []boosting.Option
		with string
	}{
		{
			name: "spilldir",
			opts: []boosting.Option{boosting.WithGraphDir("/tmp/g"), boosting.WithSpillDir("/tmp/s")},
			with: "WithSpillDir",
		},
		{
			name: "non-spill store",
			opts: []boosting.Option{boosting.WithGraphDir("/tmp/g"), boosting.WithStore(boosting.DenseStore)},
			with: "WithStore",
		},
		{
			name: "shards",
			opts: []boosting.Option{boosting.WithGraphDir("/tmp/g"), boosting.WithShards(2)},
			with: "WithShards",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := boosting.New("forward", 2, 0, tc.opts...)
			var cerr *boosting.ConflictError
			if !errors.As(err, &cerr) {
				t.Fatalf("New: want *ConflictError, got %T: %v", err, err)
			}
			if cerr.With == "" || cerr.Option == "" {
				t.Errorf("conflict does not name both sides: %+v", cerr)
			}

			// NewFromSystem cannot return an error; the first sweep must.
			donor, err := boosting.New("forward", 2, 0)
			if err != nil {
				t.Fatal(err)
			}
			chk := boosting.NewFromSystem(donor.System(), tc.opts...)
			_, err = chk.ClassifyInits()
			if !errors.As(err, &cerr) {
				t.Fatalf("ClassifyInits: want *ConflictError, got %T: %v", err, err)
			}
		})
	}

	// Refutations build several graphs; one durable directory holds one.
	chk, err := boosting.New("forward", 2, 0, boosting.WithGraphDir(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	var cerr *boosting.ConflictError
	if _, err := chk.Refute(1); !errors.As(err, &cerr) {
		t.Fatalf("Refute on durable checker: want *ConflictError, got %v", err)
	}
}
