GO ?= go

.PHONY: all build test race bench bench-allocs bench-symmetry lint vet fmt-check fmt vuln apidiff-baseline apidiff

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race job is what proves the parallel exploration engine correct:
# worker-pool BFS, lock-striped dedup and the atomic valence sweep all run
# under the race detector.
race:
	$(GO) test -race ./...

# Benchmark smoke run: every benchmark once, no timing rigour. Use
# `$(GO) test -bench=. -benchmem ./...` for real measurements.
bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./...

# Allocation accounting for the exploration stack: the E22–E24 engine
# comparisons, the E25 fingerprint-encoder comparison, the E26 state
# store comparison (dense vs hash compaction) and the E27 symmetry
# reduction (quotient vs full graph), with -benchmem. B/op and
# allocs/op are stable at low iteration counts, so a short fixed benchtime
# keeps this cheap enough to run per-PR; CI uploads the output as an
# artifact (bench-allocs.txt) to make allocation regressions visible.
bench-allocs:
	@$(GO) test -bench 'BenchmarkBuildGraphWorkers|BenchmarkRefuteWorkers|BenchmarkRunBatchWorkers|BenchmarkFingerprint|BenchmarkStoreBackends|BenchmarkSymmetry$$' \
		-benchmem -benchtime=2x -run '^$$' . > bench-allocs.txt; \
		status=$$?; cat bench-allocs.txt; exit $$status

# The E27 row on its own: reduced vs unreduced build time, state count and
# retained bytes for the forward n=4 exhaustive analysis.
bench-symmetry:
	$(GO) test -bench 'BenchmarkSymmetry$$' -benchmem -benchtime=2x -run '^$$' .

lint: vet fmt-check

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

fmt:
	gofmt -w .

# Known-vulnerability scan over the module and its (std-only) dependency
# graph. Requires network to fetch the tool + vuln DB, so it runs in CI;
# locally it degrades to a skip message ONLY when the tool itself cannot be
# fetched — a scan that runs and finds vulnerabilities fails the target.
vuln:
	@if $(GO) run golang.org/x/vuln/cmd/govulncheck@latest -version >/dev/null 2>&1; then \
		$(GO) run golang.org/x/vuln/cmd/govulncheck@latest ./...; \
	else \
		echo "govulncheck unavailable (offline?) — skipped"; \
	fi

# API-compatibility gate for the public boosting package: snapshot the
# baseline export data (apidiff-baseline, run on the base revision), then
# diff the working tree against it. Any incompatible change fails.
APIDIFF = $(GO) run golang.org/x/exp/cmd/apidiff@latest

apidiff-baseline:
	$(APIDIFF) -w boosting.baseline.export github.com/ioa-lab/boosting

apidiff:
	@out="$$($(APIDIFF) -incompatible boosting.baseline.export github.com/ioa-lab/boosting)"; \
	if [ -n "$$out" ]; then \
		echo "incompatible API changes in package boosting:"; echo "$$out"; exit 1; \
	else echo "boosting API compatible with baseline"; fi
