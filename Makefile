GO ?= go

.PHONY: all build test race bench bench-allocs lint vet fmt-check fmt

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race job is what proves the parallel exploration engine correct:
# worker-pool BFS, lock-striped dedup and the atomic valence sweep all run
# under the race detector.
race:
	$(GO) test -race ./...

# Benchmark smoke run: every benchmark once, no timing rigour. Use
# `$(GO) test -bench=. -benchmem ./...` for real measurements.
bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./...

# Allocation accounting for the exploration stack: the E22–E24 engine
# comparisons plus the E25 fingerprint-encoder comparison, with -benchmem.
# B/op and allocs/op are stable at low iteration counts, so a short fixed
# benchtime keeps this cheap enough to run per-PR; CI uploads the output as
# an artifact (bench-allocs.txt) to make allocation regressions visible.
bench-allocs:
	@$(GO) test -bench 'BenchmarkBuildGraphWorkers|BenchmarkRefuteWorkers|BenchmarkRunBatchWorkers|BenchmarkFingerprint' \
		-benchmem -benchtime=2x -run '^$$' . > bench-allocs.txt; \
		status=$$?; cat bench-allocs.txt; exit $$status

lint: vet fmt-check

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

fmt:
	gofmt -w .
