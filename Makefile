GO ?= go

.PHONY: all build test race bench lint vet fmt-check fmt

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race job is what proves the parallel exploration engine correct:
# worker-pool BFS, lock-striped dedup and the atomic valence sweep all run
# under the race detector.
race:
	$(GO) test -race ./...

# Benchmark smoke run: every benchmark once, no timing rigour. Use
# `$(GO) test -bench=. -benchmem ./...` for real measurements.
bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./...

lint: vet fmt-check

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

fmt:
	gofmt -w .
