GO ?= go

.PHONY: all build test race bench bench-allocs bench-symmetry bench-spill bench-adjacency bench-shards bench-incremental test-spill test-server run-boostd lint vet analyze fmt-check fmt vuln apidiff-baseline apidiff

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race job is what proves the parallel exploration engine correct:
# worker-pool BFS, lock-striped dedup and the atomic valence sweep all run
# under the race detector.
race:
	$(GO) test -race ./...

# Benchmark smoke run: every benchmark once, no timing rigour. Use
# `$(GO) test -bench=. -benchmem ./...` for real measurements.
bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./...

# Allocation accounting for the exploration stack: the E22–E24 engine
# comparisons, the E25 fingerprint-encoder comparison, the E26 state
# store comparison (dense vs hash compaction), the E27 symmetry
# reduction (quotient vs full graph), the E28 spill store (disk-backed
# fingerprint file, incl. the exhaustive forward n=5 build), the E29
# spilled adjacency (edge file + witness-free builds) and the E30
# sharded engine (partitioned interning + renumber pass vs the legacy
# engines) and the E31 incremental recheck (durable reopen + dirty-region
# recheck vs full rebuild of a policy variant), with -benchmem.
# B/op and allocs/op are stable at low iteration counts, so a short
# fixed benchtime keeps this cheap enough to run per-PR; CI uploads the
# output as an artifact (bench-allocs.txt) to make allocation
# regressions visible.
bench-allocs:
	@$(GO) test -bench 'BenchmarkBuildGraphWorkers|BenchmarkRefuteWorkers|BenchmarkRunBatchWorkers|BenchmarkFingerprint|BenchmarkStoreBackends|BenchmarkSymmetry$$|BenchmarkSpillStore|BenchmarkSpillAdjacency|BenchmarkSharded|BenchmarkIncremental' \
		-benchmem -benchtime=2x -run '^$$' . > bench-allocs.txt; \
		status=$$?; cat bench-allocs.txt; exit $$status

# The E27 row on its own: reduced vs unreduced build time, state count and
# retained bytes for the forward n=4 exhaustive analysis.
bench-symmetry:
	$(GO) test -bench 'BenchmarkSymmetry$$' -benchmem -benchtime=2x -run '^$$' .

# The E28 rows on their own: the disk-spilling store against dense and
# hash compaction (retained bytes/state, spill-file size, read traffic)
# plus the exhaustive forward n=5 build.
bench-spill:
	$(GO) test -bench 'BenchmarkSpillStore' -benchmem -benchtime=2x -run '^$$' .

# The E29 rows on their own: the spilled adjacency (delta-varint edge
# blocks on disk) against dense, with and without witness predecessor
# links — retained bytes/state, edge-file bytes/edge, edge-block reads.
bench-adjacency:
	$(GO) test -bench 'BenchmarkSpillAdjacency' -benchmem -benchtime=2x -run '^$$' .

# The E30 rows on their own: the sharded fingerprint-partitioned engine
# (shard-local interning + post-hoc renumbering) against the serial and
# worker-pool engines on the exhaustive forward n=5 build and the
# forward n=6 quotient. The shards=NumCPU vs shards=1 pair is the
# multi-core speedup measurement; `experiments -only E30` records the
# registervote n=3 workload, which is too slow for a benchmark loop.
bench-shards:
	$(GO) test -bench 'BenchmarkSharded' -benchmem -benchtime=2x -run '^$$' .

# The E31 row on its own: the incremental path on the exhaustive forward
# n=5 graph — commit the adversarial build durably, then answer the
# benign-policy variant by full rebuild vs durable reopen + dirty-region
# recheck. The "explored" metric is the states each leg actually
# re-expanded: 14754 for the rebuild, 0 for the recheck (the benign
# variant's failure-free graph is provably unchanged).
bench-incremental:
	$(GO) test -bench 'BenchmarkIncremental' -benchmem -benchtime=2x -run '^$$' .

# The spill-store slice of the parity suites under a low memory ceiling:
# graph identity (IDs, edges, valences, reports) of the disk-backed store
# against dense, serial and parallel, reduced and unreduced, with the Go
# heap softly capped to prove exploration no longer needs state-sized
# RAM. TestSpill also matches the exhaustive forward n=5 and n=6 frontier
# builds, so both run under the ceiling with vertices AND edges on disk.
# -count=1 matters: GOMEMLIMIT is read by the runtime, not the test
# binary, so it is not part of the test-cache key — without it a warm
# cache would replay passes that never ran under the ceiling.
# TestShard adds the shard-count invariance suite (and TestSpill now
# also matches the sharded exhaustive n=6 rebuild), so the sharded
# engine's spill legs run under the ceiling too. TestDurable and
# TestRecheck add the durable graph store: commit, reopen-parity and
# dirty-region recheck all run under the same ceiling, proving the
# reattached spill store stays disk-backed.
test-spill:
	GOMEMLIMIT=64MiB $(GO) test -count=1 -run 'TestStoreParity|TestGoldenExploration|TestGoldenInfiniteFamilies|TestRefutationReportParity|TestQuotient|TestSpill|TestShard|TestDurable|TestWithGraphDir' .
	GOMEMLIMIT=64MiB $(GO) test -count=1 -run 'TestSpillStore|TestStoreBounds|TestDurable|TestRecheck' ./internal/explore/

# The checking-service suite: the boostd HTTP/SSE/cache end-to-end tests
# (golden counts, single-flight dedup, isomorphic cache hits, cancel and
# drain semantics) plus the shared flag block's lowering tests. -count=1
# because the suite asserts cross-request counters, not pure functions.
test-server:
	$(GO) test -count=1 ./internal/server/ ./internal/cliflags/

# Run the checking service locally (see README for the curl quickstart).
run-boostd:
	$(GO) run ./cmd/boostd

lint: vet analyze fmt-check

vet:
	$(GO) vet ./...

# The repo's own invariant suite (see DESIGN.md "Enforced invariants"):
# five go/analysis analyzers — determinism, graphclose, storebounds,
# typederr, ctxflow — built into a unitchecker binary and run through the
# standard `go vet -vettool` driver, so findings carry file:line positions
# and //lint:boostvet-ignore waivers are honoured.
BOOSTVET = bin/boostvet

analyze:
	@mkdir -p bin
	$(GO) build -o $(BOOSTVET) ./cmd/boostvet
	$(GO) vet -vettool=$(BOOSTVET) ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

fmt:
	gofmt -w .

# Known-vulnerability scan over the module and its (std-only) dependency
# graph. Requires network to fetch the tool + vuln DB, so it runs in CI;
# locally it degrades to a skip message ONLY when the tool itself cannot be
# fetched — a scan that runs and finds vulnerabilities fails the target.
vuln:
	@if $(GO) run golang.org/x/vuln/cmd/govulncheck@latest -version >/dev/null 2>&1; then \
		$(GO) run golang.org/x/vuln/cmd/govulncheck@latest ./...; \
	else \
		echo "govulncheck unavailable (offline?) — skipped"; \
	fi

# API-compatibility gate for the public boosting package: snapshot the
# baseline export data (apidiff-baseline, run on the base revision), then
# diff the working tree against it. Any incompatible change fails.
APIDIFF = $(GO) run golang.org/x/exp/cmd/apidiff@latest

apidiff-baseline:
	$(APIDIFF) -w boosting.baseline.export github.com/ioa-lab/boosting

apidiff:
	@out="$$($(APIDIFF) -incompatible boosting.baseline.export github.com/ioa-lab/boosting)"; \
	if [ -n "$$out" ]; then \
		echo "incompatible API changes in package boosting:"; echo "$$out"; exit 1; \
	else echo "boosting API compatible with baseline"; fi
