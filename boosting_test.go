package boosting_test

// Public-API tests of the boosting façade: the golden exploration table
// (exact state/edge counts per registry protocol, asserted against every
// store backend and both engines), store parity down to IDs and reports,
// and the option plumbing (progress, cancellation, state budgets).

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/ioa-lab/boosting"
)

// stores under test: every backend must produce identical results.
var stores = []struct {
	name  string
	store boosting.Store
}{
	{"dense", boosting.DenseStore},
	{"hash64", boosting.HashStore64},
	{"hash128", boosting.HashStore128},
	{"spill", boosting.SpillStore},
}

// TestGoldenExploration pins the exhaustive state/edge counts of the
// finite registry protocols (G(C) from all monotone initializations,
// Lemma 4's graph). The counts are facts about the paper's model as
// implemented; any engine or store change that shifts them is a
// correctness regression, not a tuning effect.
func TestGoldenExploration(t *testing.T) {
	golden := []struct {
		protocol      string
		n, f          int
		states, edges int
	}{
		{"forward", 2, 0, 66, 186},
		{"forward", 3, 0, 410, 1734},
		{"forward", 4, 0, 2486, 14014},
		{"registervote", 2, 0, 1416, 5574},
		{"tob", 2, 0, 308, 1278},
		{"setboost", 2, 0, 2675, 15040},
	}
	for _, g := range golden {
		for _, s := range stores {
			for _, workers := range []int{1, 4} {
				if testing.Short() && (g.states > 2000 || workers > 1) {
					continue
				}
				chk, err := boosting.New(g.protocol, g.n, g.f,
					boosting.WithStore(s.store), boosting.WithWorkers(workers))
				if err != nil {
					t.Fatal(err)
				}
				c, err := chk.ClassifyInits()
				if err != nil {
					t.Fatalf("%s n=%d %s w=%d: %v", g.protocol, g.n, s.name, workers, err)
				}
				if c.Graph.Size() != g.states || c.Graph.Edges() != g.edges {
					t.Errorf("%s n=%d %s w=%d: %d states / %d edges, want %d / %d",
						g.protocol, g.n, s.name, workers,
						c.Graph.Size(), c.Graph.Edges(), g.states, g.edges)
				}
			}
		}
	}
}

// TestGoldenInfiniteFamilies pins the overflow behaviour of the
// detector-bearing registry families: their failure-free graphs are
// infinite (suspicion responses are pushed unboundedly), so exploration
// must hit the budget at exactly the cap — as a typed *LimitError — on
// every backend.
func TestGoldenInfiniteFamilies(t *testing.T) {
	const budget = 3000
	for _, protocol := range []string{"floodset-p", "evperfect"} {
		for _, s := range stores {
			chk, err := boosting.New(protocol, 3, 0,
				boosting.WithRounds(2), boosting.WithStore(s.store),
				boosting.WithWorkers(1), boosting.WithMaxStates(budget))
			if err != nil {
				t.Fatal(err)
			}
			_, err = chk.Explore(map[int]string{0: "0", 1: "1", 2: "1"})
			var le *boosting.LimitError
			if !errors.As(err, &le) {
				t.Fatalf("%s/%s: want *LimitError, got %v", protocol, s.name, err)
			}
			if !errors.Is(err, boosting.ErrStateExplosion) {
				t.Errorf("%s/%s: LimitError does not match the sentinel", protocol, s.name)
			}
			if le.Limit != budget || le.Explored != budget {
				t.Errorf("%s/%s: LimitError{Limit:%d, Explored:%d}, want %d/%d",
					protocol, s.name, le.Limit, le.Explored, budget, budget)
			}
		}
	}
}

// TestStoreParity asserts the acceptance contract of the StateStore seam:
// dense and hash-compaction backends yield IDENTICAL graphs — same IDs,
// fingerprints, edges, valences, roots — and identical refutation reports,
// serial and parallel, on every finite registry protocol.
func TestStoreParity(t *testing.T) {
	protocols := []struct {
		name string
		n, f int
	}{
		{"forward", 2, 0},
		{"forward", 3, 0},
		{"registervote", 2, 0},
		{"tob", 2, 0},
		{"setboost", 2, 0},
	}
	for _, p := range protocols {
		ref, err := boosting.New(p.name, p.n, p.f, boosting.WithWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.ClassifyInits()
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range stores {
			for _, workers := range []int{1, 4} {
				if s.store == boosting.DenseStore && workers == 1 {
					continue // the reference itself
				}
				chk, err := boosting.New(p.name, p.n, p.f,
					boosting.WithStore(s.store), boosting.WithWorkers(workers))
				if err != nil {
					t.Fatal(err)
				}
				got, err := chk.ClassifyInits()
				if err != nil {
					t.Fatalf("%s/%s w=%d: %v", p.name, s.name, workers, err)
				}
				assertGraphsIdentical(t, p.name+"/"+s.name, want.Graph, got.Graph)
				if got.BivalentIndex != want.BivalentIndex {
					t.Errorf("%s/%s w=%d: bivalent index %d, want %d",
						p.name, s.name, workers, got.BivalentIndex, want.BivalentIndex)
				}
			}
		}
	}
}

// TestRefutationReportParity: the full refuter output (the user-visible
// report string, certificates included) is byte-identical across store
// backends.
func TestRefutationReportParity(t *testing.T) {
	for _, tc := range []struct {
		name string
		n, f int
	}{
		{"forward", 2, 0},
		{"registervote", 2, 0},
	} {
		var want string
		for _, s := range stores {
			chk, err := boosting.New(tc.name, tc.n, tc.f, boosting.WithStore(s.store))
			if err != nil {
				t.Fatal(err)
			}
			report, err := chk.Refute(1)
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.name, s.name, err)
			}
			if !report.Violated() {
				t.Fatalf("%s/%s: expected a refutation", tc.name, s.name)
			}
			if s.store == boosting.DenseStore {
				want = report.String()
			} else if got := report.String(); got != want {
				t.Errorf("%s/%s: report differs from dense store:\n--- dense\n%s\n--- %s\n%s",
					tc.name, s.name, want, s.name, got)
			}
		}
	}
}

func assertGraphsIdentical(t *testing.T, label string, want, got *boosting.Graph) {
	t.Helper()
	if got.Size() != want.Size() || got.Edges() != want.Edges() {
		t.Fatalf("%s: size %d/%d edges %d/%d", label, got.Size(), want.Size(), got.Edges(), want.Edges())
	}
	if len(got.Roots()) != len(want.Roots()) {
		t.Fatalf("%s: root count %d, want %d", label, len(got.Roots()), len(want.Roots()))
	}
	for i, r := range want.Roots() {
		if got.Roots()[i] != r {
			t.Fatalf("%s: root %d is %d, want %d", label, i, got.Roots()[i], r)
		}
	}
	for id := 0; id < want.Size(); id++ {
		sid := boosting.StateID(id)
		if got.Fingerprint(sid) != want.Fingerprint(sid) {
			t.Fatalf("%s: fingerprint of %d differs", label, id)
		}
		if got.Valence(sid) != want.Valence(sid) {
			t.Fatalf("%s: valence of %d is %v, want %v", label, id, got.Valence(sid), want.Valence(sid))
		}
		ge, we := got.Succs(sid), want.Succs(sid)
		if len(ge) != len(we) {
			t.Fatalf("%s: degree of %d is %d, want %d", label, id, len(ge), len(we))
		}
		for j := range we {
			if ge[j] != we[j] {
				t.Fatalf("%s: edge %d/%d is %+v, want %+v", label, id, j, ge[j], we[j])
			}
		}
		// The adjacency iterator must agree with the materialized slice,
		// edge for edge (on the spill backend it decodes a different
		// representation, so this is a real parity check, not a tautology).
		j := 0
		for e := range got.EdgesFrom(sid) {
			if j >= len(we) {
				t.Fatalf("%s: EdgesFrom(%d) yielded more than %d edges", label, id, len(we))
			}
			if e != we[j] {
				t.Fatalf("%s: EdgesFrom(%d)[%d] = %+v, want %+v", label, id, j, e, we[j])
			}
			j++
		}
		if j != len(we) {
			t.Fatalf("%s: EdgesFrom(%d) yielded %d edges, want %d", label, id, j, len(we))
		}
	}
}

// TestHashStoreCollisionsAudited: the public collision counter reads zero
// on the dense backend and reports (typically zero, but well-defined)
// audited collisions on hash backends.
func TestHashStoreCollisionsAudited(t *testing.T) {
	for _, s := range stores {
		chk, err := boosting.New("forward", 3, 0, boosting.WithStore(s.store), boosting.WithWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		c, err := chk.ClassifyInits()
		if err != nil {
			t.Fatal(err)
		}
		n := boosting.StoreCollisions(c.Graph)
		if s.store == boosting.DenseStore && n != 0 {
			t.Errorf("dense store audited %d collisions", n)
		}
		if n < 0 {
			t.Errorf("%s: negative collision count %d", s.name, n)
		}
	}
}

// TestProtocolsRegistry: the registry is non-empty, names are unique, and
// every entry is constructible.
func TestProtocolsRegistry(t *testing.T) {
	infos := boosting.Protocols()
	if len(infos) < 5 {
		t.Fatalf("registry has %d entries", len(infos))
	}
	seen := map[string]bool{}
	for _, info := range infos {
		if info.Name == "" || info.Description == "" {
			t.Errorf("registry entry %+v incomplete", info)
		}
		if seen[info.Name] {
			t.Errorf("duplicate registry name %q", info.Name)
		}
		seen[info.Name] = true
		n := 2
		if info.Name == "fdboost" || info.Name == "suspectcollector" || info.Name == "evperfect" ||
			info.Name == "floodset-p" {
			n = 3
		}
		if _, err := boosting.New(info.Name, n, 0); err != nil {
			t.Errorf("New(%q, %d, 0): %v", info.Name, n, err)
		}
	}
	if _, err := boosting.New("nonsense", 2, 0); err == nil {
		t.Error("want error for unknown protocol")
	} else if !strings.Contains(err.Error(), "nonsense") {
		t.Errorf("unhelpful error %v", err)
	}
}

// TestFacadeProgressAndCancellation: WithProgress streams per-level
// reports through the façade, and WithContext cancels from inside one.
func TestFacadeProgressAndCancellation(t *testing.T) {
	var reports []boosting.Progress
	chk, err := boosting.New("forward", 2, 0,
		boosting.WithWorkers(1),
		boosting.WithProgress(func(p boosting.Progress) { reports = append(reports, p) }))
	if err != nil {
		t.Fatal(err)
	}
	g, err := chk.Explore(map[int]string{0: "0", 1: "1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) == 0 {
		t.Fatal("no progress reports")
	}
	last := reports[len(reports)-1]
	if last.States != g.Size() || last.Edges != g.Edges() || last.Frontier != 0 {
		t.Errorf("final report %+v does not match graph (%d states, %d edges)", last, g.Size(), g.Edges())
	}

	ctx, cancel := context.WithCancel(context.Background())
	chk2, err := boosting.New("forward", 3, 0,
		boosting.WithWorkers(1),
		boosting.WithContext(ctx),
		boosting.WithProgress(func(p boosting.Progress) {
			if p.Level == 1 {
				cancel()
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	if _, err := chk2.ClassifyInits(); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled ClassifyInits: %v", err)
	}
	if _, err := chk2.Refute(1); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled Refute: %v", err)
	}
	if _, err := chk2.RunBatch([]boosting.RunConfig{{Inputs: map[int]string{0: "0"}}}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled RunBatch: %v", err)
	}
}

// TestNewFromSystemWithoutGraphAnalysis: a custom detector-bearing system
// (infinite failure-free graph) is refutable through NewFromSystem when
// the caller opts out of the graph phases; without the option the same
// analysis overflows its state budget.
func TestNewFromSystemWithoutGraphAnalysis(t *testing.T) {
	src, err := boosting.New("floodset-p", 3, 0, boosting.WithRounds(2))
	if err != nil {
		t.Fatal(err)
	}
	sys := src.System()

	chk := boosting.NewFromSystem(sys,
		boosting.WithoutGraphAnalysis(), boosting.WithMaxRounds(500), boosting.WithMaxStates(5000))
	report, err := chk.Refute(1)
	if err != nil {
		t.Fatalf("Refute with WithoutGraphAnalysis: %v", err)
	}
	if !report.Violated() {
		t.Error("expected the Theorem 10 candidate to be refuted")
	}

	plain := boosting.NewFromSystem(sys, boosting.WithMaxRounds(500), boosting.WithMaxStates(5000))
	var le *boosting.LimitError
	if _, err := plain.Refute(1); !errors.As(err, &le) {
		t.Errorf("without the option, want *LimitError from the infinite graph, got %v", err)
	}
}

// TestRunParityAcrossFacade: Run through the façade equals the historical
// engine behaviour (decisions, termination, rounds) on the quickstart
// scenario.
func TestRunParityAcrossFacade(t *testing.T) {
	chk, err := boosting.New("forward", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	inputs := map[int]string{0: "0", 1: "1"}
	res, err := chk.Run(boosting.RunConfig{Inputs: inputs})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatal("quickstart run did not terminate")
	}
	if err := boosting.CheckConsensus(boosting.ConsensusRun{Inputs: inputs, Decisions: res.Decisions, Done: res.Done}); err != nil {
		t.Fatal(err)
	}
}
