package boosting_test

// Benchmarks, one per experiment row of EXPERIMENTS.md (E1–E21): they time
// the machinery that regenerates each paper artifact. Run with
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"runtime"
	"testing"

	"github.com/ioa-lab/boosting"
	"github.com/ioa-lab/boosting/internal/check"
	"github.com/ioa-lab/boosting/internal/codec"
	"github.com/ioa-lab/boosting/internal/explore"
	"github.com/ioa-lab/boosting/internal/ioa"
	"github.com/ioa-lab/boosting/internal/linearize"
	"github.com/ioa-lab/boosting/internal/protocols"
	"github.com/ioa-lab/boosting/internal/seqtype"
	"github.com/ioa-lab/boosting/internal/service"
	"github.com/ioa-lab/boosting/internal/servicetype"
	"github.com/ioa-lab/boosting/internal/system"
)

func mustForward(b *testing.B, n, f int, policy service.SilencePolicy) *system.System {
	b.Helper()
	sys, err := protocols.BuildForward(n, f, policy)
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

// BenchmarkCanonicalAtomicObject (E1) times one invoke→perform→output cycle
// of the canonical atomic object of Fig. 1.
func BenchmarkCanonicalAtomicObject(b *testing.B) {
	obj, err := service.NewWaitFree("k",
		servicetype.FromSequential(seqtype.BinaryConsensus()), []int{0, 1}, service.Adversarial)
	if err != nil {
		b.Fatal(err)
	}
	init := obj.InitialState()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, _ := obj.Invoke(init, 0, seqtype.Init("1"))
		st, _, _ = obj.Apply(st, ioa.PerformTask("k", 0))
		_, _, _ = obj.Apply(st, ioa.OutputTask("k", 0))
	}
}

// BenchmarkApplicability (E2) times the Lemma 1 applicability scan over one
// system state.
func BenchmarkApplicability(b *testing.B) {
	sys := mustForward(b, 3, 1, service.Adversarial)
	st := sys.InitialState()
	st, _, _ = sys.Init(st, 0, "0")
	st, _, _ = sys.Apply(st, ioa.ProcessTask(0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, task := range sys.Tasks() {
			sys.Applicable(st, task)
		}
	}
}

// BenchmarkBivalentInit (E3) times the Lemma 4 classification (building
// G(C) from all monotone initializations and computing valences).
func BenchmarkBivalentInit(b *testing.B) {
	sys := mustForward(b, 2, 0, service.Adversarial)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := explore.ClassifyInits(sys, explore.BuildOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHookSearch (E4) times the Fig. 3 construction on a prebuilt
// graph.
func BenchmarkHookSearch(b *testing.B) {
	sys := mustForward(b, 2, 0, service.Adversarial)
	c, err := explore.ClassifyInits(sys, explore.BuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := explore.FindHook(c.Graph, c.Roots[c.BivalentIndex]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimilarity (E5) times the j-/k-similarity sweep over a pair of
// states.
func BenchmarkSimilarity(b *testing.B) {
	sys := mustForward(b, 2, 0, service.Adversarial)
	c, err := explore.ClassifyInits(sys, explore.BuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	hs, err := explore.FindHook(c.Graph, c.Roots[c.BivalentIndex])
	if err != nil || hs.Hook == nil {
		b.Fatalf("hook: %v", err)
	}
	s0, _ := c.Graph.State(hs.Hook.Alpha0)
	s1, _ := c.Graph.State(hs.Hook.Alpha1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		explore.SomeSimilarity(sys, s0, s1, explore.SimilarityOptions{})
	}
}

// BenchmarkRefuteAtomic (E6) times the full Theorem 2 refutation of the
// forward candidate.
func BenchmarkRefuteAtomic(b *testing.B) {
	sys := mustForward(b, 2, 0, service.Adversarial)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report, err := explore.Refute(sys, 1, explore.RefuteOptions{})
		if err != nil || !report.Violated() {
			b.Fatalf("refutation failed: %v", err)
		}
	}
}

// BenchmarkSetBoost (E7) times one full run of the Section 4 construction.
func BenchmarkSetBoost(b *testing.B) {
	sys, err := protocols.BuildSetBoost(2)
	if err != nil {
		b.Fatal(err)
	}
	inputs := map[int]string{0: "0", 1: "1", 2: "1", 3: "0"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := explore.RoundRobin(sys, explore.RunConfig{Inputs: inputs})
		if err != nil || !res.Done {
			b.Fatalf("run failed: %v", err)
		}
	}
}

// BenchmarkTOB (E8) times a three-broadcast totally-ordered-broadcast run
// including the total-order check.
func BenchmarkTOB(b *testing.B) {
	sys, err := protocols.BuildTOBConsensus(3, 2, service.Adversarial)
	if err != nil {
		b.Fatal(err)
	}
	inputs := map[int]string{0: "a", 1: "b", 2: "c"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := explore.RoundRobin(sys, explore.RunConfig{Inputs: inputs})
		if err != nil {
			b.Fatal(err)
		}
		if err := check.TotalOrder(check.TOBDeliveries(res.Exec, "b0")); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRefuteOblivious (E9) times the Theorem 9 refutation of the TOB
// candidate.
func BenchmarkRefuteOblivious(b *testing.B) {
	sys, err := protocols.BuildTOBConsensus(2, 0, service.Adversarial)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report, err := explore.Refute(sys, 1, explore.RefuteOptions{})
		if err != nil || !report.Violated() {
			b.Fatalf("refutation failed: %v", err)
		}
	}
}

// BenchmarkPerfectFD (E10) times a suspect-collector run with one failure,
// including the accuracy audit.
func BenchmarkPerfectFD(b *testing.B) {
	sys, err := protocols.BuildSuspectCollector(3)
	if err != nil {
		b.Fatal(err)
	}
	cfg := explore.RunConfig{
		Inputs:    map[int]string{0: "x", 1: "x", 2: "x"},
		Failures:  []explore.FailureEvent{{Round: 0, Proc: 1}},
		MaxRounds: 50,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := explore.RoundRobin(sys, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := check.FDAccuracy(res.Exec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEventuallyPerfectFD (E11) times ◇P mode transitions and reports.
func BenchmarkEventuallyPerfectFD(b *testing.B) {
	u := servicetype.EventuallyPerfectFD([]int{0, 1, 2})
	fs := codec.NewIntSet(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, mode := u.Delta2(servicetype.EvPerfectStabilizeTask, servicetype.ModeImperfect, fs)
		u.Delta2("fd0", mode, fs)
	}
}

// BenchmarkFDBoost (E12) times one full FD-boost consensus run with one
// failure.
func BenchmarkFDBoost(b *testing.B) {
	sys, err := protocols.BuildFDBoost(3, 3)
	if err != nil {
		b.Fatal(err)
	}
	cfg := explore.RunConfig{
		Inputs:   map[int]string{0: "1", 1: "0", 2: "1"},
		Failures: []explore.FailureEvent{{Round: 0, Proc: 1}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := explore.RoundRobin(sys, cfg)
		if err != nil || !res.Done {
			b.Fatalf("run failed: done=%v err=%v", res.Done, err)
		}
	}
}

// BenchmarkRefuteGeneral (E13) times the Theorem 10 refutation of FloodSet
// over a weak all-connected perfect detector.
func BenchmarkRefuteGeneral(b *testing.B) {
	sys, err := protocols.BuildFloodSetWithP(3, 0, 2, service.Adversarial)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report, err := explore.Refute(sys, 1, explore.RefuteOptions{SkipGraphAnalysis: true, MaxRounds: 500})
		if err != nil || !report.Violated() {
			b.Fatalf("refutation failed: %v", err)
		}
	}
}

// BenchmarkCanonicalConsensus (E14) times a Theorem 11 scenario: a fair run
// of the canonical consensus object with one failure, plus the three
// condition checks.
func BenchmarkCanonicalConsensus(b *testing.B) {
	sys := mustForward(b, 3, 1, service.Adversarial)
	inputs := map[int]string{0: "1", 1: "0", 2: "0"}
	cfg := explore.RunConfig{
		Inputs:   inputs,
		Failures: []explore.FailureEvent{{Round: 0, Proc: 2}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := explore.RoundRobin(sys, cfg)
		if err != nil {
			b.Fatal(err)
		}
		run := check.ConsensusRun{Inputs: inputs, Failed: []int{2}, Decisions: res.Decisions, Done: res.Done}
		if err := check.Consensus(run); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKSetType (E15) times k-set-consensus δ applications.
func BenchmarkKSetType(b *testing.B) {
	ty := seqtype.KSetConsensus(2, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		val := ty.Initials[0]
		for v := 0; v < 4; v++ {
			r, err := ty.ApplyOne(seqtype.Init(itoa(v)), val)
			if err != nil {
				b.Fatal(err)
			}
			val = r.NewVal
		}
	}
}

func itoa(v int) string {
	return string(rune('0' + v))
}

// BenchmarkLinearizability (E16) times history extraction + Wing–Gong check
// on a random-schedule execution.
func BenchmarkLinearizability(b *testing.B) {
	sys := mustForward(b, 3, 2, service.Adversarial)
	res, err := explore.Random(sys, explore.RunConfig{
		Inputs: map[int]string{0: "0", 1: "1", 2: "1"},
	}, 7, 4000)
	if err != nil {
		b.Fatal(err)
	}
	types := map[string]*seqtype.Type{"k0": seqtype.BinaryConsensus()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := linearize.CheckExecution(res.Exec, types); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRefuteRegisterVote (E17) times the exhaustive safety sweep that
// catches the naive register-only candidate.
func BenchmarkRefuteRegisterVote(b *testing.B) {
	sys, err := protocols.BuildRegisterVote(2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report, err := explore.Refute(sys, 1, explore.RefuteOptions{})
		if err != nil || !report.Violated() {
			b.Fatalf("refutation failed: %v", err)
		}
	}
}

// BenchmarkRefuteSetBoostAsConsensus (E18) times the boundary cross-check.
func BenchmarkRefuteSetBoostAsConsensus(b *testing.B) {
	sys, err := protocols.BuildSetBoost(2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report, err := explore.Refute(sys, 1, explore.RefuteOptions{})
		if err != nil || !report.Violated() {
			b.Fatalf("refutation failed: %v", err)
		}
	}
}

// BenchmarkHookOnTOB (E19) times graph construction + hook search on the
// failure-oblivious candidate.
func BenchmarkHookOnTOB(b *testing.B) {
	sys, err := protocols.BuildTOBConsensus(2, 0, service.Adversarial)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := explore.ClassifyInits(sys, explore.BuildOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := explore.FindHook(c.Graph, c.Roots[c.BivalentIndex]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGraphGrowth reports how G(C) scales with process count for the
// forward candidate (the exhaustive analyses' cost driver).
func BenchmarkGraphGrowth(b *testing.B) {
	for _, n := range []int{2, 3} {
		b.Run("n="+itoa(n), func(b *testing.B) {
			sys := mustForward(b, n, 0, service.Adversarial)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c, err := explore.ClassifyInits(sys, explore.BuildOptions{})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(c.Graph.Size()), "states")
			}
		})
	}
}

// BenchmarkSilencePolicyAblation compares refutation work across the two
// silence policies (E6 vs E6b): the benign object survives, so its phase-3
// scenarios run to completion instead of stopping at the first certificate.
func BenchmarkSilencePolicyAblation(b *testing.B) {
	for _, policy := range []service.SilencePolicy{service.Adversarial, service.Benign} {
		b.Run(policy.String(), func(b *testing.B) {
			sys := mustForward(b, 2, 0, policy)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := explore.Refute(sys, 1, explore.RefuteOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRefuteKSet (E20) times the k-set refuter on the set-boost system
// at its genuine claim (k = 2, wait-free).
func BenchmarkRefuteKSet(b *testing.B) {
	sys, err := protocols.BuildSetBoost(2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report, err := explore.RefuteKSet(sys, 2, 3, explore.RefuteOptions{})
		if err != nil || report.Violated() {
			b.Fatalf("k-set refuter: %v", err)
		}
	}
}

// workerSweep returns the deduplicated worker counts benchmarked by the
// serial-vs-parallel comparisons: serial, a couple of fixed points, and one
// worker per CPU.
func workerSweep() []int {
	counts := []int{1, 2, 4}
	ncpu := runtime.NumCPU()
	for _, c := range counts {
		if c == ncpu {
			return counts
		}
	}
	return append(counts, ncpu)
}

// BenchmarkBuildGraphWorkers (E22) compares the serial exploration engine
// with the worker-pool engine on the two largest completing seed systems:
// the 4-process forward candidate (2486-vertex G(C)) and the 2-process
// register-vote candidate (1416 vertices). The workers=1 rows are the serial
// baseline; higher rows measure the parallel speedup on this machine.
func BenchmarkBuildGraphWorkers(b *testing.B) {
	systems := []struct {
		name  string
		build func() (*system.System, error)
	}{
		{"forward-n4", func() (*system.System, error) { return protocols.BuildForward(4, 0, service.Adversarial) }},
		{"registervote-n2", func() (*system.System, error) { return protocols.BuildRegisterVote(2) }},
	}
	for _, sc := range systems {
		sys, err := sc.build()
		if err != nil {
			b.Fatal(err)
		}
		for _, w := range workerSweep() {
			b.Run(fmt.Sprintf("%s/workers=%d", sc.name, w), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					c, err := explore.ClassifyInits(sys, explore.BuildOptions{Workers: w})
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(c.Graph.Size()), "states")
				}
			})
		}
	}
}

// BenchmarkRefuteWorkers (E23) compares the serial refuter against the
// parallel one (concurrent safety sweep, parallel graph, concurrent failure
// scenarios) on the register-vote candidate, whose 2^n safety sweep
// dominates.
func BenchmarkRefuteWorkers(b *testing.B) {
	sys, err := protocols.BuildRegisterVote(2)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range workerSweep() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				report, err := explore.Refute(sys, 1, explore.RefuteOptions{
					Build: explore.BuildOptions{Workers: w},
				})
				if err != nil || !report.Violated() {
					b.Fatalf("refutation failed: %v", err)
				}
			}
		})
	}
}

// BenchmarkRunBatchWorkers (E24) compares batched fair runs across worker
// counts on the Section 4 construction: all 15 proper failure patterns of
// the 4-process set-boost system, verified concurrently.
func BenchmarkRunBatchWorkers(b *testing.B) {
	sys, err := protocols.BuildSetBoost(2)
	if err != nil {
		b.Fatal(err)
	}
	inputs := map[int]string{0: "0", 1: "1", 2: "1", 3: "0"}
	var cfgs []explore.RunConfig
	for bits := 0; bits < 1<<4; bits++ {
		var failures []explore.FailureEvent
		for idx := 0; idx < 4; idx++ {
			if bits&(1<<idx) != 0 {
				failures = append(failures, explore.FailureEvent{Round: 0, Proc: idx})
			}
		}
		if len(failures) == 4 {
			continue
		}
		cfgs = append(cfgs, explore.RunConfig{Inputs: inputs, Failures: failures})
	}
	for _, w := range workerSweep() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := explore.RunBatch(sys, cfgs, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFingerprint (E25) compares the string fingerprint builder with
// the append-style byte encoder that the interned exploration engines use:
// same bytes, but the append form reuses one buffer and allocates nothing.
func BenchmarkFingerprint(b *testing.B) {
	sys := mustForward(b, 3, 1, service.Adversarial)
	st := sys.InitialState()
	st, _, _ = sys.Init(st, 0, "0")
	st, _, _ = sys.Init(st, 1, "1")
	st, _, _ = sys.Apply(st, ioa.ProcessTask(0))
	b.Run("string", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = sys.Fingerprint(st)
		}
	})
	b.Run("append", func(b *testing.B) {
		b.ReportAllocs()
		buf := make([]byte, 0, 1024)
		for i := 0; i < b.N; i++ {
			buf = sys.AppendFingerprint(buf[:0], st)
		}
	})
}

// BenchmarkSymmetry (E27) compares unreduced exploration against
// symmetry-reduced exploration on the forward n=4 exhaustive build: the
// quotient graph modulo process renaming has 385 vertices instead of 2486
// (a 6.5× reduction at |S_4| = 24), at the cost of canonicalizing every
// discovered successor. The timed loop measures build time and allocation
// churn; retainedB/state shows the per-build live heap the finished graph
// keeps, where the reduction pays off.
func BenchmarkSymmetry(b *testing.B) {
	modes := []struct {
		name string
		opts []boosting.Option
	}{
		{"unreduced", nil},
		{"symmetry", []boosting.Option{boosting.WithSymmetry()}},
	}
	for _, sc := range modes {
		b.Run(sc.name, func(b *testing.B) {
			chk, err := boosting.New("forward", 4, 0,
				append([]boosting.Option{boosting.WithWorkers(1)}, sc.opts...)...)
			if err != nil {
				b.Fatal(err)
			}
			runtime.GC()
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			probe, err := chk.ClassifyInits()
			if err != nil {
				b.Fatal(err)
			}
			runtime.GC()
			runtime.ReadMemStats(&after)
			retained := float64(after.HeapAlloc) - float64(before.HeapAlloc)
			states := probe.Graph.Size()
			runtime.KeepAlive(probe)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c, err := chk.ClassifyInits()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(c.Graph.Size()), "states")
			}
			b.ReportMetric(retained, "retainedB")
			b.ReportMetric(retained/float64(states), "retainedB/state")
		})
	}
}

// BenchmarkSpillStore (E28) measures the disk-spilling backend. The
// forward-n4 rows compare retained bytes/state against dense and hash64 on
// the 2486-vertex exhaustive build — the spill store keeps only 16 hash
// bytes plus a file offset per vertex in RAM, so its retained footprint
// must undercut hash compaction (which still holds every representative
// state). The forward-n5 rows are the first exhaustive forward n=5 build
// (14754 states / 103926 edges from all monotone initializations): state
// counts confirmed identical across dense and spill, with the spill rows
// also reporting spill-file size and on-demand read traffic.
func BenchmarkSpillStore(b *testing.B) {
	bench := func(name string, n int, opts ...boosting.Option) {
		b.Run(name, func(b *testing.B) {
			chk, err := boosting.New("forward", n, 0,
				append([]boosting.Option{boosting.WithWorkers(1)}, opts...)...)
			if err != nil {
				b.Fatal(err)
			}
			runtime.GC()
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			probe, err := chk.ClassifyInits()
			if err != nil {
				b.Fatal(err)
			}
			runtime.GC()
			runtime.ReadMemStats(&after)
			retained := float64(after.HeapAlloc) - float64(before.HeapAlloc)
			states := probe.Graph.Size()
			spillStats, spilled := boosting.GraphSpillStats(probe.Graph)
			runtime.KeepAlive(probe)
			boosting.CloseGraph(probe.Graph)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c, err := chk.ClassifyInits()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(c.Graph.Size()), "states")
				// Release each iteration's spill descriptor; long -benchtime
				// runs would otherwise accumulate fds until GC.
				boosting.CloseGraph(c.Graph)
			}
			// ResetTimer clears extra metrics, so everything reports after
			// the timed loop.
			if spilled {
				b.ReportMetric(float64(spillStats.SpillBytes)/float64(states), "spillB/state")
				b.ReportMetric(float64(spillStats.Reads), "spillreads")
			}
			b.ReportMetric(retained, "retainedB")
			b.ReportMetric(retained/float64(states), "retainedB/state")
		})
	}
	bench("forward-n4/dense", 4)
	bench("forward-n4/hash64", 4, boosting.WithStore(boosting.HashStore64))
	bench("forward-n4/spill", 4, boosting.WithSpillDir(b.TempDir()))
	// The exhaustive n=5 frontier: feasible under the default budget since
	// the interned core + spill store; dense is kept as the reference row so
	// the state/edge counts stay pinned against each other.
	bench("forward-n5/dense", 5)
	bench("forward-n5/spill", 5, boosting.WithSpillDir(b.TempDir()))
}

// BenchmarkSpillAdjacency (E29) measures the spilled-adjacency redesign on
// the exhaustive forward n=5 build (14754 states / 103926 edges): dense as
// the reference, spill with edges delta-varint encoded in the edge file,
// and spill with the witness links dropped on top (WithoutWitnesses) — the
// configuration that carries exhaustive forward n=6 and registervote n=3
// under the 64 MiB ceiling (see cmd/experiments, e29). The retained probe
// is the live heap the finished graph keeps; edgeB/edge is the on-disk
// encoding density of the adjacency blocks.
func BenchmarkSpillAdjacency(b *testing.B) {
	bench := func(name string, opts ...boosting.Option) {
		b.Run(name, func(b *testing.B) {
			chk, err := boosting.New("forward", 5, 0,
				append([]boosting.Option{boosting.WithWorkers(1)}, opts...)...)
			if err != nil {
				b.Fatal(err)
			}
			runtime.GC()
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			probe, err := chk.ClassifyInits()
			if err != nil {
				b.Fatal(err)
			}
			runtime.GC()
			runtime.ReadMemStats(&after)
			retained := float64(after.HeapAlloc) - float64(before.HeapAlloc)
			states, edges := probe.Graph.Size(), probe.Graph.Edges()
			spillStats, spilled := boosting.GraphSpillStats(probe.Graph)
			runtime.KeepAlive(probe)
			boosting.CloseGraph(probe.Graph)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c, err := chk.ClassifyInits()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(c.Graph.Size()), "states")
				boosting.CloseGraph(c.Graph)
			}
			if spilled {
				b.ReportMetric(float64(spillStats.EdgeBytes)/float64(edges), "edgeB/edge")
				b.ReportMetric(float64(spillStats.EdgeReads), "edgereads")
			}
			b.ReportMetric(retained, "retainedB")
			b.ReportMetric(retained/float64(states), "retainedB/state")
		})
	}
	bench("forward-n5/dense")
	bench("forward-n5/spill", boosting.WithSpillDir(b.TempDir()))
	bench("forward-n5/spill-nowitness", boosting.WithSpillDir(b.TempDir()), boosting.WithoutWitnesses())
}

// BenchmarkIncremental (E31) pits the full rebuild of a policy variant
// against the durable reopen + incremental recheck on the exhaustive
// forward n=5 graph: the adversarial build is committed once with
// WithGraphDir, then each iteration answers the benign-policy variant —
// a 1-action delta whose failure-free graph is provably unchanged —
// either by exploring from scratch or by reopening the committed graph
// and rechecking the dirty region. The "explored" metric is the state
// count whose successor sets each leg actually computed: the full graph
// for the rebuild, the dirty-plus-fresh region (0 here) for the recheck.
func BenchmarkIncremental(b *testing.B) {
	dir := b.TempDir()
	base, err := boosting.New("forward", 5, 1,
		boosting.WithWorkers(1), boosting.WithGraphDir(dir))
	if err != nil {
		b.Fatal(err)
	}
	committed, err := base.ClassifyInits()
	if err != nil {
		b.Fatal(err)
	}
	fullStates := committed.Graph.Size()
	if err := committed.Close(); err != nil {
		b.Fatal(err)
	}
	delta, err := boosting.New("forward", 5, 1,
		boosting.WithWorkers(1), boosting.WithSilencePolicy(boosting.Benign),
		boosting.WithStore(boosting.SpillStore))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("full-rebuild", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c, err := delta.ClassifyInits()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(c.Graph.Size()), "explored")
			if err := c.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reopen-recheck", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			prev, err := delta.OpenGraph(dir)
			if err != nil {
				b.Fatal(err)
			}
			res, err := delta.Recheck(prev)
			if err != nil {
				b.Fatal(err)
			}
			if res.ReachableStates != fullStates {
				b.Fatalf("recheck reached %d states, full build %d", res.ReachableStates, fullStates)
			}
			b.ReportMetric(float64(res.Dirty+res.Fresh), "explored")
			if err := res.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFairnessAudit (E21) times the post-hoc fairness audit of a fair
// run.
func BenchmarkFairnessAudit(b *testing.B) {
	sys := mustForward(b, 2, 1, service.Adversarial)
	res, err := explore.RoundRobin(sys, explore.RunConfig{Inputs: map[int]string{0: "0", 1: "1"}})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := explore.AuditFairness(sys, res.Exec, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreBackends (E26) compares the StateStore backends on the
// forward n=4 exhaustive build (2486-vertex G(C)): the dense interned-string
// store against 64- and 128-bit hash compaction. The timed loop measures
// build time and per-build allocation churn (-benchmem); retainedB/state is
// the live heap the finished graph keeps per vertex — the metric hash
// compaction exists to shrink (no interned canonical strings).
func BenchmarkStoreBackends(b *testing.B) {
	backends := []struct {
		name  string
		store boosting.Store
	}{
		{"dense", boosting.DenseStore},
		{"hash64", boosting.HashStore64},
		{"hash128", boosting.HashStore128},
	}
	for _, sc := range backends {
		b.Run(sc.name, func(b *testing.B) {
			chk, err := boosting.New("forward", 4, 0,
				boosting.WithWorkers(1), boosting.WithStore(sc.store))
			if err != nil {
				b.Fatal(err)
			}
			// Retained-memory probe: live heap before vs after one build,
			// with the graph kept alive across the second reading.
			runtime.GC()
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			probe, err := chk.ClassifyInits()
			if err != nil {
				b.Fatal(err)
			}
			runtime.GC()
			runtime.ReadMemStats(&after)
			retained := float64(after.HeapAlloc) - float64(before.HeapAlloc)
			states := probe.Graph.Size()
			runtime.KeepAlive(probe)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c, err := chk.ClassifyInits()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(c.Graph.Size()), "states")
			}
			b.ReportMetric(retained/float64(states), "retainedB/state")
		})
	}
}

// BenchmarkSharded (E30) compares the sharded fingerprint-partitioned
// engine against the legacy engines on the two largest default-path
// exhaustive builds: the forward n=5 G(C) (14754 vertices / 103926 edges)
// and the symmetry-reduced forward n=6 quotient (1764 vertices / 15084
// edges). The legacy rows are the serial engine and the worker-pool engine
// (barrier interning at each level); the sharded rows intern into
// fingerprint-partitioned shards with no global barrier on discovery and
// pay the post-hoc renumber pass. shards=NumCPU vs shards=1 is the row
// pair the >=4-core speedup target is read from; on one core the sharded
// rows price the renumber overhead instead. The register-vote n=3 quotient
// (the third E30 workload) takes minutes per build, so it is recorded by
// `experiments -only E30`, not benchmarked here.
func BenchmarkSharded(b *testing.B) {
	ncpu := runtime.NumCPU()
	type engine struct {
		name            string
		workers, shards int
	}
	engines := []engine{
		{"serial", 1, 0},
		{fmt.Sprintf("parallel-w%d", ncpu), ncpu, 0},
		{"sharded-1", ncpu, 1},
	}
	if ncpu > 1 {
		engines = append(engines, engine{fmt.Sprintf("sharded-%d", ncpu), ncpu, ncpu})
	}
	workloads := []struct {
		name string
		n    int
		opts []boosting.Option
	}{
		{"forward-n5", 5, nil},
		{"forward-n6-sym", 6, []boosting.Option{boosting.WithSymmetry()}},
	}
	for _, wl := range workloads {
		for _, e := range engines {
			b.Run(fmt.Sprintf("%s/%s", wl.name, e.name), func(b *testing.B) {
				opts := append([]boosting.Option{
					boosting.WithWorkers(e.workers), boosting.WithShards(e.shards),
				}, wl.opts...)
				chk, err := boosting.New("forward", wl.n, 0, opts...)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c, err := chk.ClassifyInits()
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(c.Graph.Size()), "states")
				}
			})
		}
	}
}
