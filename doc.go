// Package boosting is an executable framework for Attie, Guerraoui,
// Kuznetsov, Lynch and Rajsbaum, "The Impossibility of Boosting Distributed
// Service Resilience" (ICDCS 2005; Information and Computation 209, 2011).
//
// The framework implements the paper's formal model — I/O automata,
// sequential and service types, canonical f-resilient atomic objects,
// failure-oblivious services and general (failure-aware) services, and the
// composed systems of processes, services and registers — and mechanizes the
// proof machinery: valence classification, bivalent initializations, the
// execution graph G(C), hook search, state similarity, and a refuter that
// extracts concrete counterexample executions from candidate boosting
// protocols. The paper's positive constructions (the Section 4 k-set
// consensus boost and the Section 6.3 failure-detector boost) are
// implemented and verified as well.
//
// This package is the public API: a protocol registry (Protocols, New), a
// Checker façade over the pipeline (Explore, ClassifyInits, FindHook,
// Refute, RefuteKSet, Run) configured by functional options (WithWorkers,
// WithMaxStates, WithStore, WithSymmetry, WithProgress, WithContext, …),
// pluggable
// StateStore backends (dense interning vs audited hash compaction), and
// the engine's result types re-exported under stable names. The runnable
// Example functions in example_test.go show the core loops.
//
// See README.md for an overview, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the reproduced results.
package boosting
