package boosting_test

// Façade-level tests of sharded exploration (WithShards): the shard-count
// invariance suite — identical renumbered graphs and identical
// refutation reports for every shard × store × worker × symmetry
// combination — plus the golden counts and budget behaviour under the
// sharded engine, and the exhaustive spill-backed frontier the CI spill
// job re-verifies under GOMEMLIMIT.

import (
	"errors"
	"testing"

	"github.com/ioa-lab/boosting"
)

// shardSweep is the shard-count axis of the invariance suite.
var shardSweep = []int{1, 2, 8}

// TestShardInvariance: every (shards, store, workers, ±symmetry)
// combination produces the IDENTICAL renumbered graph — IDs, fingerprints,
// edges, valences, roots — and the same classification, with the single
// shard/single worker/dense build as reference.
func TestShardInvariance(t *testing.T) {
	for _, sym := range []bool{false, true} {
		base := []boosting.Option{boosting.WithShards(1), boosting.WithWorkers(1)}
		if sym {
			base = append(base, boosting.WithSymmetry())
		}
		ref, err := boosting.New("forward", 3, 0, base...)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.ClassifyInits()
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range shardSweep {
			for _, s := range stores {
				for _, workers := range []int{1, 4} {
					if testing.Short() && (workers > 1 || s.store == boosting.HashStore128) {
						continue
					}
					opts := []boosting.Option{
						boosting.WithShards(shards), boosting.WithWorkers(workers), boosting.WithStore(s.store),
					}
					if sym {
						opts = append(opts, boosting.WithSymmetry())
					}
					chk, err := boosting.New("forward", 3, 0, opts...)
					if err != nil {
						t.Fatal(err)
					}
					got, err := chk.ClassifyInits()
					if err != nil {
						t.Fatalf("sym=%v shards=%d %s w=%d: %v", sym, shards, s.name, workers, err)
					}
					label := "shards"
					assertGraphsIdentical(t, label, want.Graph, got.Graph)
					if got.BivalentIndex != want.BivalentIndex {
						t.Errorf("sym=%v shards=%d %s w=%d: bivalent index %d, want %d",
							sym, shards, s.name, workers, got.BivalentIndex, want.BivalentIndex)
					}
				}
			}
		}
	}
}

// TestShardedGoldenCounts: state and edge counts are graph facts, so the
// sharded engine must reproduce the golden exploration table exactly.
func TestShardedGoldenCounts(t *testing.T) {
	golden := []struct {
		protocol      string
		n, f          int
		states, edges int
	}{
		{"forward", 2, 0, 66, 186},
		{"forward", 3, 0, 410, 1734},
		{"registervote", 2, 0, 1416, 5574},
		{"tob", 2, 0, 308, 1278},
	}
	for _, g := range golden {
		if testing.Short() && g.states > 500 {
			continue
		}
		chk, err := boosting.New(g.protocol, g.n, g.f, boosting.WithShards(4))
		if err != nil {
			t.Fatal(err)
		}
		c, err := chk.ClassifyInits()
		if err != nil {
			t.Fatalf("%s n=%d: %v", g.protocol, g.n, err)
		}
		if c.Graph.Size() != g.states || c.Graph.Edges() != g.edges {
			t.Errorf("%s n=%d sharded: %d states / %d edges, want %d / %d",
				g.protocol, g.n, c.Graph.Size(), c.Graph.Edges(), g.states, g.edges)
		}
	}
}

// TestShardedRefutationReports: the full refuter and the k-set refuter
// produce byte-identical reports for every shard/worker combination — the
// renumbered IDs, canonical witness paths and verdicts are all
// deterministic — and the verdicts agree with the unsharded engines.
func TestShardedRefutationReports(t *testing.T) {
	t.Run("refute", func(t *testing.T) {
		for _, tc := range []struct {
			name string
			n, f int
		}{
			{"forward", 2, 0},
			{"registervote", 2, 0},
		} {
			serial, err := boosting.New(tc.name, tc.n, tc.f, boosting.WithWorkers(1))
			if err != nil {
				t.Fatal(err)
			}
			unsharded, err := serial.Refute(1)
			if err != nil {
				t.Fatal(err)
			}
			var want string
			for _, shards := range shardSweep {
				for _, workers := range []int{1, 4} {
					chk, err := boosting.New(tc.name, tc.n, tc.f,
						boosting.WithShards(shards), boosting.WithWorkers(workers))
					if err != nil {
						t.Fatal(err)
					}
					report, err := chk.Refute(1)
					if err != nil {
						t.Fatalf("%s shards=%d w=%d: %v", tc.name, shards, workers, err)
					}
					if report.Violated() != unsharded.Violated() {
						t.Fatalf("%s shards=%d w=%d: violated=%v, unsharded says %v",
							tc.name, shards, workers, report.Violated(), unsharded.Violated())
					}
					if want == "" {
						want = report.String()
					} else if got := report.String(); got != want {
						t.Errorf("%s shards=%d w=%d: report differs:\n--- first ---\n%s--- this ---\n%s",
							tc.name, shards, workers, want, got)
					}
				}
			}
		}
	})
	t.Run("refutekset", func(t *testing.T) {
		for _, k := range []int{1, 2} {
			serial, err := boosting.New("setboost", 2, 0, boosting.WithWorkers(1))
			if err != nil {
				t.Fatal(err)
			}
			unsharded, err := serial.RefuteKSet(k, 3)
			if err != nil {
				t.Fatal(err)
			}
			var want string
			for _, shards := range shardSweep {
				if testing.Short() && shards == 2 {
					continue
				}
				chk, err := boosting.New("setboost", 2, 0, boosting.WithShards(shards))
				if err != nil {
					t.Fatal(err)
				}
				report, err := chk.RefuteKSet(k, 3)
				if err != nil {
					t.Fatalf("k=%d shards=%d: %v", k, shards, err)
				}
				if report.Violated() != unsharded.Violated() {
					t.Fatalf("k=%d shards=%d: violated=%v, unsharded says %v",
						k, shards, report.Violated(), unsharded.Violated())
				}
				if want == "" {
					want = report.String()
				} else if got := report.String(); got != want {
					t.Errorf("k=%d shards=%d: report differs:\n--- first ---\n%s--- this ---\n%s",
						k, shards, want, got)
				}
			}
		}
	})
}

// TestShardedGoldenInfiniteFamiliesLimit: the detector-bearing families
// overflow the budget at exactly the cap — the same typed *LimitError,
// with the same pinned Explored count — on the sharded engine.
func TestShardedGoldenInfiniteFamiliesLimit(t *testing.T) {
	const budget = 3000
	chk, err := boosting.New("floodset-p", 3, 0,
		boosting.WithRounds(2), boosting.WithShards(4), boosting.WithMaxStates(budget))
	if err != nil {
		t.Fatal(err)
	}
	_, err = chk.Explore(map[int]string{0: "0", 1: "1", 2: "1"})
	var le *boosting.LimitError
	if !errors.As(err, &le) {
		t.Fatalf("want *LimitError, got %v", err)
	}
	if !errors.Is(err, boosting.ErrStateExplosion) {
		t.Error("LimitError does not match the sentinel")
	}
	if le.Limit != budget || le.Explored != budget {
		t.Errorf("LimitError{Limit:%d, Explored:%d}, want %d/%d", le.Limit, le.Explored, budget, budget)
	}
}

// TestSpillShardedExhaustiveForwardN6: the exhaustive forward n=6 frontier
// (1764 states / 15084 edges under symmetry, E29/E30) rebuilt by the
// sharded engine on the spill backend — per-shard spill files during
// discovery, one renumbered spill-backed graph at the end — identical to
// the dense sharded build for every shard count. The CI spill job runs
// this under GOMEMLIMIT=64MiB.
func TestSpillShardedExhaustiveForwardN6(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive n=6 build skipped in -short mode")
	}
	const wantStates, wantEdges = 1764, 15084
	ref, err := boosting.New("forward", 6, 0,
		boosting.WithShards(1), boosting.WithWorkers(1), boosting.WithSymmetry())
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.ClassifyInits()
	if err != nil {
		t.Fatal(err)
	}
	if want.Graph.Size() != wantStates || want.Graph.Edges() != wantEdges {
		t.Fatalf("sharded dense reference: %d states / %d edges, want %d / %d",
			want.Graph.Size(), want.Graph.Edges(), wantStates, wantEdges)
	}
	for _, shards := range []int{2, 8} {
		chk, err := boosting.New("forward", 6, 0,
			boosting.WithShards(shards), boosting.WithSpillDir(t.TempDir()), boosting.WithSymmetry())
		if err != nil {
			t.Fatal(err)
		}
		c, err := chk.ClassifyInits()
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		assertGraphsIdentical(t, "spill-sharded-n6", want.Graph, c.Graph)
		stats, ok := boosting.GraphSpillStats(c.Graph)
		if !ok {
			t.Fatal("sharded spill graph reported no spill stats")
		}
		if stats.States != wantStates {
			t.Errorf("shards=%d: spill stats count %d states, want %d", shards, stats.States, wantStates)
		}
		if err := boosting.CloseGraph(c.Graph); err != nil {
			t.Errorf("shards=%d: close: %v", shards, err)
		}
	}
}
