// Impossibility walkthrough: the proof of Theorem 2, replayed step by step
// on a concrete system through the public boosting façade.
//
// The candidate is the natural boosting attempt — two processes forwarding
// their inputs through a 0-resilient consensus object, claiming 1-resilient
// consensus. The walkthrough reproduces the proof's acts in order:
//
//  1. Lemma 4:  classify the monotone initializations, exhibit a bivalent one;
//  2. Lemma 5:  run the Fig. 3 round-robin construction, exhibit the hook;
//  3. Lemma 8:  observe that the hook's univalent ends are k-similar at the
//     shared object — the configuration the lemma forbids for systems that
//     actually solve (f+1)-resilient consensus;
//  4. Lemma 7:  fail f+1 = 1 process, silencing the object, and watch the
//     mirrored fair runs from both hook ends diverge identically —
//     the concrete non-termination counterexample.
package main

import (
	"fmt"
	"os"

	"github.com/ioa-lab/boosting"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "impossibility:", err)
		os.Exit(1)
	}
}

func run() error {
	chk, err := boosting.New("forward", 2, 0)
	if err != nil {
		return err
	}
	fmt.Println("candidate: P0, P1 → 0-resilient consensus object k0, claiming 1-resilient consensus")
	fmt.Println("Theorem 2 applies: f = 0 < n−1 = 1, so the claim must fail. Watch how.")

	// Act 1: Lemma 4.
	fmt.Println("\n— Act 1 (Lemma 4): initializations —")
	inits, err := chk.ClassifyInits()
	if err != nil {
		return err
	}
	defer inits.Close()
	fmt.Print(inits)
	if inits.BivalentIndex < 0 {
		return fmt.Errorf("no bivalent initialization")
	}

	// Act 2: Lemma 5 / Fig. 3.
	fmt.Println("\n— Act 2 (Lemma 5): the hook —")
	hs, err := chk.FindHook(inits.Graph, inits.Roots[inits.BivalentIndex])
	if err != nil {
		return err
	}
	if hs.Hook == nil {
		return fmt.Errorf("construction diverged instead of hooking")
	}
	fmt.Println(hs.Hook)

	// Act 3: Lemma 8's forbidden configuration.
	fmt.Println("\n— Act 3 (Lemma 8): similarity of the hook ends —")
	s0, _ := inits.Graph.State(hs.Hook.Alpha0)
	s1, _ := inits.Graph.State(hs.Hook.Alpha1)
	who, similar := boosting.SomeSimilarity(chk.System(), s0, s1, boosting.SimilarityOptions{})
	if !similar {
		return fmt.Errorf("hook ends not similar")
	}
	fmt.Printf("the %v and %v ends differ ONLY in the state of %s —\n",
		inits.Graph.Valence(hs.Hook.Alpha0), inits.Graph.Valence(hs.Hook.Alpha1), who)
	fmt.Println("for a correct system, Lemma 7 says such states must decide alike. They don't.")

	// Act 4: Lemma 7's failure construction.
	fmt.Println("\n— Act 4 (Lemma 7): fail f+1 processes, silence the object —")
	for idx, st := range []boosting.State{s0, s1} {
		cur, _, failErr := chk.System().Fail(st, 0)
		if failErr != nil {
			return failErr
		}
		res, runErr := chk.RunFrom(cur, inits.Assignments[inits.BivalentIndex])
		if runErr != nil {
			return runErr
		}
		fmt.Printf("from α%d + fail_0: diverged=%v, survivor decisions=%v\n",
			idx, res.Diverged, res.Decisions)
	}
	fmt.Println("\nboth sides cycle forever; P1 (live, inited) never decides.")
	fmt.Println("The claimed 1-resilience is refuted — boosting is impossible, as proved.")
	return nil
}
