// Failure-detector boosting (paper Section 6.3): consensus for any number
// of failures from 1-resilient 2-process perfect failure detectors and
// reliable registers.
//
// Theorem 10 forbids boosting when every failure-aware service is connected
// to all processes; with pairwise detectors the connection pattern is
// sparse, and boosting works. This example runs the FloodSet construction
// for n = 3 under every failure pattern through the public boosting façade
// and also audits detector accuracy on the generated executions.
package main

import (
	"fmt"
	"os"

	"github.com/ioa-lab/boosting"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "failuredetector:", err)
		os.Exit(1)
	}
}

func run() error {
	const n = 3
	chk, err := boosting.New("fdboost", n, 0)
	if err != nil {
		return err
	}
	fmt.Printf("FloodSet consensus for %d processes over %d pairwise 1-resilient perfect FDs\n\n",
		n, n*(n-1)/2)

	inputs := map[int]string{0: "1", 1: "0", 2: "1"}
	for bits := 0; bits < 1<<n; bits++ {
		var J []int
		for idx := 0; idx < n; idx++ {
			if bits&(1<<idx) != 0 {
				J = append(J, idx)
			}
		}
		if len(J) == n {
			continue // everyone failed: nothing to decide
		}
		failures := make([]boosting.FailureEvent, len(J))
		for i, p := range J {
			failures[i] = boosting.FailureEvent{Round: 0, Proc: p}
		}
		res, err := chk.Run(boosting.RunConfig{Inputs: inputs, Failures: failures})
		if err != nil {
			return err
		}
		run := boosting.ConsensusRun{Inputs: inputs, Failed: J, Decisions: res.Decisions, Done: res.Done}
		if err := boosting.CheckConsensus(run); err != nil {
			return fmt.Errorf("failure set %v: %w", J, err)
		}
		// The perfect detectors never suspected a live process anywhere in
		// the execution.
		if err := boosting.CheckFDAccuracy(res.Exec); err != nil {
			return fmt.Errorf("failure set %v: %w", J, err)
		}
		fmt.Printf("failed %-7v → decisions %v (accuracy ✓)\n", J, res.Decisions)
	}
	fmt.Println("\nconsensus tolerates any number of failures: 1-resilient detectors, ")
	fmt.Println("(n−1)-resilient consensus — boosting via sparse connection patterns.")
	return nil
}
