// Quickstart: build a small distributed system in the paper's model — two
// processes, a wait-free binary consensus object, a reliable register — run
// it under the fair round-robin schedule, and print the external trace and
// decisions. Everything goes through the public boosting façade.
package main

import (
	"fmt"
	"os"

	"github.com/ioa-lab/boosting"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A system C in the paper's sense: processes P0, P1 forward their
	// inputs to the canonical wait-free consensus object k0 (plus the
	// reliable register r0 the model always allows). "forward" is a
	// registry protocol; boosting.Protocols() lists the rest.
	chk, err := boosting.New("forward", 2, 1)
	if err != nil {
		return err
	}
	sys := chk.System()
	fmt.Println("system: P0, P1 + wait-free consensus object k0 + register r0")
	fmt.Println("tasks :", sys.Tasks())

	// Input-first execution: P0 proposes 0, P1 proposes 1; then run fairly.
	inputs := map[int]string{0: "0", 1: "1"}
	res, err := chk.Run(boosting.RunConfig{Inputs: inputs})
	if err != nil {
		return err
	}

	fmt.Println("\nexternal trace (after hiding, Section 2.2.3):")
	for _, act := range res.Exec.Trace() {
		fmt.Println("  ", act)
	}
	fmt.Println("\ndecisions:", res.Decisions)

	// Verify the consensus conditions of Section 2.2.4.
	verdict := boosting.CheckConsensus(boosting.ConsensusRun{
		Inputs: inputs, Decisions: res.Decisions, Done: res.Done,
	})
	if verdict != nil {
		return verdict
	}
	fmt.Println("agreement ✓  validity ✓  termination ✓")

	// Now the same run with P1 failing at the start: the wait-free object
	// still serves the survivor.
	res, err = chk.Run(boosting.RunConfig{
		Inputs:   inputs,
		Failures: []boosting.FailureEvent{{Round: 0, Proc: 1}},
	})
	if err != nil {
		return err
	}
	fmt.Printf("\nwith fail_1 injected: survivor P0 decides %q after %d fair rounds\n",
		res.Decisions[0], res.Rounds)
	var failTrace []boosting.Action
	for _, act := range res.Exec.Trace() {
		failTrace = append(failTrace, act)
	}
	fmt.Println("trace:", boosting.FormatTrace(failTrace))
	return nil
}
