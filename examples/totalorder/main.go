// Totally ordered broadcast (paper Section 5.2, Figs. 5–7): a replicated
// log built on the failure-oblivious TOB service.
//
// Three processes broadcast updates; the service totally orders them and
// delivers the same sequence to every endpoint. The example prints each
// replica's log and checks the total-order property, with and without
// failures. The system is assembled from custom parts (program + service
// wiring) and handed to the façade via boosting.NewFromSystem — the route
// for protocols outside the registry.
package main

import (
	"fmt"
	"os"
	"strconv"

	"github.com/ioa-lab/boosting"
	"github.com/ioa-lab/boosting/internal/process"
	"github.com/ioa-lab/boosting/internal/service"
	"github.com/ioa-lab/boosting/internal/servicetype"
	"github.com/ioa-lab/boosting/internal/system"
)

// logReplica broadcasts its input as an update and appends every delivery
// to its local log; it decides (terminates) after seeing as many entries as
// there are processes that got inputs.
type logReplica struct {
	expect int
}

func (logReplica) Start(int) map[string]string {
	return map[string]string{"log": "", "count": "0"}
}

func (r logReplica) HandleInit(ctx *process.Context, v string) {
	ctx.Invoke("b0", servicetype.Bcast("update-"+v+"-from-"+strconv.Itoa(ctx.ID())))
}

func (r logReplica) HandleResponse(ctx *process.Context, svc, resp string) {
	m, sender, ok := servicetype.RcvParts(resp)
	if !ok || svc != "b0" {
		return
	}
	log := ctx.Get("log")
	if log != "" {
		log += " | "
	}
	log += fmt.Sprintf("%s (P%d)", m, sender)
	ctx.Set("log", log)
	n := ctx.GetInt("count") + 1
	ctx.SetInt("count", n)
	if n >= r.expect && !ctx.Decided() {
		ctx.Decide(strconv.Itoa(n))
	}
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "totalorder:", err)
		os.Exit(1)
	}
}

func run() error {
	const n = 3
	eps := []int{0, 1, 2}
	procs := make([]*process.Process, n)
	for i := 0; i < n; i++ {
		procs[i] = process.New(i, logReplica{expect: n})
	}
	tob, err := service.NewWaitFree("b0", servicetype.TotallyOrderedBroadcast(eps), eps, service.Adversarial)
	if err != nil {
		return err
	}
	sys, err := system.New(procs, []*service.Service{tob})
	if err != nil {
		return err
	}
	chk := boosting.NewFromSystem(sys)

	inputs := map[int]string{0: "a", 1: "b", 2: "c"}
	res, err := chk.Run(boosting.RunConfig{Inputs: inputs})
	if err != nil {
		return err
	}
	fmt.Println("replicated logs after a fair failure-free run:")
	for i := 0; i < n; i++ {
		fmt.Printf("  P%d: %s\n", i, sys.ProcState(res.Final, i).Get("log"))
	}
	if err := boosting.CheckTotalOrder(boosting.TOBDeliveries(res.Exec, "b0")); err != nil {
		return err
	}
	fmt.Println("total order ✓ (every replica saw the same sequence)")

	// With one failure (f = |J|−1 tolerated): survivors still converge.
	res, err = chk.Run(boosting.RunConfig{
		Inputs:    inputs,
		Failures:  []boosting.FailureEvent{{Round: 1, Proc: 2}},
		MaxRounds: 200,
	})
	if err != nil {
		return err
	}
	fmt.Println("\nwith fail_2 after round 1:")
	for i := 0; i < 2; i++ {
		fmt.Printf("  P%d: %s\n", i, sys.ProcState(res.Final, i).Get("log"))
	}
	if err := boosting.CheckTotalOrder(boosting.TOBDeliveries(res.Exec, "b0")); err != nil {
		return err
	}
	fmt.Println("total order ✓ under failure")
	return nil
}
