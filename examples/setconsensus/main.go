// Set-consensus boosting (paper Section 4): wait-free 2n-process
// 2-set-consensus from two wait-free n-process consensus services.
//
// Consensus resilience cannot be boosted (Theorem 2), but 2-set consensus
// escapes: this example runs the construction for n = 2 (4 processes) under
// a selection of failure patterns, including patterns that silence one
// whole group, and checks k-agreement, validity and termination — all
// through the public boosting façade.
package main

import (
	"fmt"
	"os"

	"github.com/ioa-lab/boosting"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "setconsensus:", err)
		os.Exit(1)
	}
}

func run() error {
	const groupSize = 2
	chk, err := boosting.New("setboost", groupSize, 0)
	if err != nil {
		return err
	}
	total := 2 * groupSize
	fmt.Printf("2-set consensus for %d processes from two wait-free %d-process consensus services\n\n",
		total, groupSize)

	inputs := map[int]string{0: "0", 1: "1", 2: "1", 3: "0"}
	scenarios := [][]int{
		nil,    // failure-free
		{3},    // one failure
		{0, 1}, // group 0 wiped out — its service may fall silent, but
		// those processes are dead anyway
		{1, 2, 3}, // 2n−1 failures: wait-freedom
	}
	for _, J := range scenarios {
		failures := make([]boosting.FailureEvent, len(J))
		for i, p := range J {
			failures[i] = boosting.FailureEvent{Round: 0, Proc: p}
		}
		res, err := chk.Run(boosting.RunConfig{Inputs: inputs, Failures: failures})
		if err != nil {
			return err
		}
		run := boosting.ConsensusRun{Inputs: inputs, Failed: J, Decisions: res.Decisions, Done: res.Done}
		if err := boosting.CheckKSetConsensus(run, 2); err != nil {
			return fmt.Errorf("failure set %v: %w", J, err)
		}
		fmt.Printf("failed %-9v → decisions %v (≤ 2 distinct ✓)\n", J, res.Decisions)
	}
	fmt.Println("\nboosting succeeded: n−1-resilient parts, 2n−1-resilient whole —")
	fmt.Println("exactly the escape hatch Theorem 2 leaves open for k-set consensus.")
	return nil
}
