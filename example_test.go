package boosting_test

import (
	"fmt"

	"github.com/ioa-lab/boosting"
)

// Build a registry candidate, run it under the canonical fair schedule and
// check the consensus conditions — the package's minimal end-to-end loop.
func ExampleNew() {
	chk, err := boosting.New("forward", 2, 1) // wait-free object: a correct system
	if err != nil {
		panic(err)
	}
	inputs := map[int]string{0: "0", 1: "1"}
	res, err := chk.Run(boosting.RunConfig{Inputs: inputs})
	if err != nil {
		panic(err)
	}
	fmt.Println("decisions:", res.Decisions)
	fmt.Println("consensus:", boosting.CheckConsensus(boosting.ConsensusRun{
		Inputs: inputs, Decisions: res.Decisions, Done: res.Done,
	}) == nil)
	// Output:
	// decisions: map[0:0 1:0]
	// consensus: true
}

// The impossibility pipeline: a 0-resilient object claiming 1-resilient
// consensus is refuted with a concrete counterexample execution.
func ExampleChecker_Refute() {
	chk, err := boosting.New("forward", 2, 0)
	if err != nil {
		panic(err)
	}
	report, err := chk.Refute(1)
	if err != nil {
		panic(err)
	}
	fmt.Println("violated:", report.Violated())
	fmt.Println("kind:", report.Primary().Kind)
	// Output:
	// violated: true
	// kind: termination
}

// Lemma 4 on a concrete candidate: the monotone initializations are
// 0-valent, bivalent, 1-valent — the bivalent one seeds the hook search.
func ExampleChecker_ClassifyInits() {
	chk, err := boosting.New("forward", 2, 0)
	if err != nil {
		panic(err)
	}
	inits, err := chk.ClassifyInits()
	if err != nil {
		panic(err)
	}
	for i, v := range inits.Valences {
		fmt.Printf("alpha_%d: %v\n", i, v)
	}
	fmt.Println("bivalent index:", inits.BivalentIndex)
	// Output:
	// alpha_0: 0-valent
	// alpha_1: bivalent
	// alpha_2: 1-valent
	// bivalent index: 1
}

// Streaming progress: every BFS level reports cumulative states and edges
// plus the next frontier — identical for any worker count and store.
func ExampleWithProgress() {
	var last boosting.Progress
	chk, err := boosting.New("forward", 2, 0,
		boosting.WithWorkers(1),
		boosting.WithProgress(func(p boosting.Progress) { last = p }))
	if err != nil {
		panic(err)
	}
	g, err := chk.Explore(map[int]string{0: "0", 1: "1"})
	if err != nil {
		panic(err)
	}
	fmt.Printf("levels: %d\n", last.Level+1)
	fmt.Printf("final: %d states, %d edges (graph: %d, %d)\n",
		last.States, last.Edges, g.Size(), g.Edges())
	// Output:
	// levels: 9
	// final: 34 states, 94 edges (graph: 34, 94)
}

// Hash compaction: the same graph, cheaper vertices. Both stores assign
// identical StateIDs, so results can be compared ID-for-ID.
func ExampleWithStore() {
	inputs := map[int]string{0: "0", 1: "1"}
	dense, err := boosting.New("forward", 2, 0, boosting.WithStore(boosting.DenseStore))
	if err != nil {
		panic(err)
	}
	hashed, err := boosting.New("forward", 2, 0, boosting.WithStore(boosting.HashStore64))
	if err != nil {
		panic(err)
	}
	g1, err := dense.Explore(inputs)
	if err != nil {
		panic(err)
	}
	g2, err := hashed.Explore(inputs)
	if err != nil {
		panic(err)
	}
	fmt.Println("identical sizes:", g1.Size() == g2.Size())
	fmt.Println("identical root fingerprints:", g1.Fingerprint(0) == g2.Fingerprint(0))
	fmt.Println("audited collisions:", boosting.StoreCollisions(g2))
	// Output:
	// identical sizes: true
	// identical root fingerprints: true
	// audited collisions: 0
}

// The registry enumerates every candidate family New accepts.
func ExampleProtocols() {
	for _, p := range boosting.Protocols() {
		fmt.Println(p.Name)
	}
	// Output:
	// forward
	// tob
	// registervote
	// setboost
	// floodset-p
	// fdboost
	// evperfect
	// suspectcollector
}
