package boosting_test

import (
	"bytes"
	"testing"

	"github.com/ioa-lab/boosting"
)

// mustChecker builds a registry checker or fails the test.
func mustChecker(t *testing.T, name string, n, f int, opts ...boosting.Option) *boosting.Checker {
	t.Helper()
	chk, err := boosting.New(name, n, f, opts...)
	if err != nil {
		t.Fatalf("New(%s, %d, %d): %v", name, n, f, err)
	}
	return chk
}

// TestCanonicalFingerprintStable: the identity is a pure function of the
// candidate — two checkers over the same protocol collide even when their
// engine options (workers, store, shards, symmetry) differ, and repeated
// calls return identical bytes.
func TestCanonicalFingerprintStable(t *testing.T) {
	base := mustChecker(t, "forward", 3, 0).CanonicalFingerprint()
	if len(base) == 0 {
		t.Fatal("empty canonical fingerprint")
	}
	variants := []*boosting.Checker{
		mustChecker(t, "forward", 3, 0),
		mustChecker(t, "forward", 3, 0, boosting.WithWorkers(4)),
		mustChecker(t, "forward", 3, 0, boosting.WithShards(4)),
		mustChecker(t, "forward", 3, 0, boosting.WithStore(boosting.HashStore64)),
		mustChecker(t, "forward", 3, 0, boosting.WithSymmetry()),
		mustChecker(t, "forward", 3, 0, boosting.WithoutWitnesses()),
	}
	for i, chk := range variants {
		if got := chk.CanonicalFingerprint(); !bytes.Equal(got, base) {
			t.Errorf("variant %d: engine options changed the canonical identity", i)
		}
	}
	if again := mustChecker(t, "forward", 3, 0).CanonicalFingerprint(); !bytes.Equal(again, base) {
		t.Error("canonical fingerprint not reproducible")
	}
}

// TestCanonicalFingerprintDistinguishes: distinct n, f, silence policy and
// round parameters must not collide — each changes the candidate's verdicts,
// so each must change its identity.
func TestCanonicalFingerprintDistinguishes(t *testing.T) {
	cases := []struct {
		name string
		a, b *boosting.Checker
	}{
		{"n", mustChecker(t, "forward", 3, 0), mustChecker(t, "forward", 4, 0)},
		{"f", mustChecker(t, "forward", 3, 0), mustChecker(t, "forward", 3, 1)},
		{"policy", mustChecker(t, "forward", 3, 0),
			mustChecker(t, "forward", 3, 0, boosting.WithSilencePolicy(boosting.Benign))},
		{"rounds", mustChecker(t, "floodset-p", 3, 0, boosting.WithRounds(2)),
			mustChecker(t, "floodset-p", 3, 0, boosting.WithRounds(3))},
		{"protocol", mustChecker(t, "forward", 3, 0), mustChecker(t, "registervote", 3, 0)},
	}
	for _, c := range cases {
		if bytes.Equal(c.a.CanonicalFingerprint(), c.b.CanonicalFingerprint()) {
			t.Errorf("%s: distinct candidates share a canonical fingerprint", c.name)
		}
	}
}

// TestCanonicalRootFingerprintRenaming: input assignments that differ only
// by a renaming of interchangeable processes are isomorphic initialized
// systems and must collide — with or without WithSymmetry — while
// assignments with a different number of 1-inputs must not.
func TestCanonicalRootFingerprintRenaming(t *testing.T) {
	for _, opts := range [][]boosting.Option{nil, {boosting.WithSymmetry()}} {
		chk := mustChecker(t, "forward", 3, 0, opts...)
		fp := func(inputs map[int]string) []byte {
			t.Helper()
			b, err := chk.CanonicalRootFingerprint(inputs)
			if err != nil {
				t.Fatalf("CanonicalRootFingerprint(%v): %v", inputs, err)
			}
			return b
		}
		first := fp(map[int]string{0: "1", 1: "0", 2: "0"})
		for _, renamed := range []map[int]string{
			{0: "0", 1: "1", 2: "0"},
			{0: "0", 1: "0", 2: "1"},
		} {
			if !bytes.Equal(fp(renamed), first) {
				t.Errorf("opts %v: renamed-isomorphic assignment %v did not collide", opts, renamed)
			}
		}
		for _, distinct := range []map[int]string{
			{0: "0", 1: "0", 2: "0"},
			{0: "1", 1: "1", 2: "0"},
		} {
			if bytes.Equal(fp(distinct), first) {
				t.Errorf("opts %v: non-isomorphic assignment %v collided", opts, distinct)
			}
		}
	}
}

// TestCanonicalRootFingerprintErrors: unknown process ids in the input
// assignment surface as errors, not as silently-wrong identities.
func TestCanonicalRootFingerprintErrors(t *testing.T) {
	chk := mustChecker(t, "forward", 2, 0)
	if _, err := chk.CanonicalRootFingerprint(map[int]string{99: "1"}); err == nil {
		t.Error("CanonicalRootFingerprint accepted an unknown process id")
	}
}
