package main

import "testing"

func TestRunFindsHook(t *testing.T) {
	if err := run([]string{"-n", "2", "-f", "0"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunOnWaitFreeObject(t *testing.T) {
	// Wait-free object: still a bivalent init and a hook (the candidate is
	// correct at its true resilience, but the hook structure exists).
	if err := run([]string{"-n", "2", "-f", "1"}); err != nil {
		t.Fatal(err)
	}
}
