// Command hookfind exhibits the bivalence structure of a candidate
// consensus system: it classifies the monotone initializations (Lemma 4),
// runs the Fig. 3 round-robin construction, and prints the resulting hook
// (Fig. 2) or divergence certificate.
//
// Usage:
//
//	hookfind -n 2 -f 0
//	hookfind -n 4 -f 0 -symmetry   # quotient graph modulo process renaming
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/ioa-lab/boosting"
	"github.com/ioa-lab/boosting/internal/cliflags"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hookfind:", cliflags.Describe(err))
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hookfind", flag.ContinueOnError)
	var (
		n = fs.Int("n", 2, "number of processes")
		f = fs.Int("f", 0, "consensus object resilience")
	)
	common := cliflags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts, err := common.Options()
	if err != nil {
		return err
	}
	chk, err := boosting.New("forward", *n, *f, opts...)
	if err != nil {
		return err
	}
	fmt.Printf("system: %d processes forwarding to a %d-resilient consensus object\n\n", *n, *f)

	inits, err := chk.ClassifyInits()
	if err != nil {
		return err
	}
	defer inits.Close()
	fmt.Printf("Lemma 4 — initialization valences (G(C) has %d vertices):\n%s\n", inits.Graph.Size(), inits)
	if inits.BivalentIndex < 0 {
		fmt.Println("no bivalent initialization: nothing to hook")
		return nil
	}

	res, err := chk.FindHook(inits.Graph, inits.Roots[inits.BivalentIndex])
	if err != nil {
		return err
	}
	switch {
	case res.Hook != nil:
		h := res.Hook
		fmt.Printf("Fig. 3 construction terminated after a %d-edge bivalent path.\n\n", res.PathLen)
		fmt.Printf("%s\n\n", h)
		fmt.Printf("  α   (bivalent) : %.24q...\n", inits.Graph.Fingerprint(h.Alpha))
		fmt.Printf("  e              : %v\n", h.E)
		fmt.Printf("  e'             : %v\n", h.EPrime)
		fmt.Printf("  α0 = e(α)      : %v\n", inits.Graph.Valence(h.Alpha0))
		fmt.Printf("  α1 = e(e'(α))  : %v\n", inits.Graph.Valence(h.Alpha1))
		s0, _ := inits.Graph.State(h.Alpha0)
		s1, _ := inits.Graph.State(h.Alpha1)
		if who, ok := boosting.SomeSimilarity(chk.System(), s0, s1, boosting.SimilarityOptions{}); ok {
			fmt.Printf("\nhook ends are similar at %s — the configuration Lemma 8 forbids\n", who)
			fmt.Println("for correct systems; failing processes to silence that component")
			fmt.Println("turns the hook into a concrete non-termination counterexample.")
		}
	case res.Divergence != nil:
		fmt.Printf("construction diverged: fair bivalent cycle after %d steps\n", res.Divergence.Steps)
		fmt.Println("(an infinite fair failure-free execution in which no process decides)")
	}
	return nil
}
