// Command boostvet is the repo's invariant checker: the five
// internal/analysis/boostvet passes (determinism, graphclose,
// storebounds, typederr, ctxflow) packaged as a `go vet` tool.
//
// It speaks the unitchecker protocol, so the supported invocation is
// through the go command, which supplies package facts and type
// information per compilation unit:
//
//	go build -o bin/boostvet ./cmd/boostvet
//	go vet -vettool=bin/boostvet ./...
//
// `make analyze` does exactly that, and `make lint` includes it.
// Deliberate violations are silenced inline with
// `//lint:boostvet-ignore <analyzer> — justification`; see
// internal/analysis/boostvet and the DESIGN.md "Enforced invariants"
// section for what each pass guards.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"github.com/ioa-lab/boosting/internal/analysis/boostvet"
)

func main() {
	unitchecker.Main(boostvet.Analyzers...)
}
