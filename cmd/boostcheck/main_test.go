package main

import "testing"

func TestRunAllCandidates(t *testing.T) {
	cases := [][]string{
		{"-candidate", "forward", "-n", "2", "-f", "0", "-claim", "1"},
		{"-candidate", "forward", "-n", "2", "-f", "1", "-claim", "1"},
		{"-candidate", "forward", "-n", "2", "-f", "0", "-claim", "1", "-benign"},
		{"-candidate", "tob", "-n", "2", "-f", "0", "-claim", "1"},
		{"-candidate", "floodset-p", "-n", "3", "-f", "0", "-claim", "1"},
		{"-candidate", "fdboost", "-n", "3", "-claim", "2"},
		{"-candidate", "forward", "-n", "2", "-f", "0", "-claim", "1", "-store", "spill"},
		{"-candidate", "forward", "-n", "3", "-f", "0", "-claim", "1", "-store", "spill", "-symmetry", "-workers", "4"},
	}
	for _, args := range cases {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunRejectsUnknownCandidate(t *testing.T) {
	if err := run([]string{"-candidate", "nonsense"}); err == nil {
		t.Error("want error for unknown candidate")
	}
}
