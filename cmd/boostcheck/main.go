// Command boostcheck runs the full impossibility analysis on a candidate
// boosting system: the Lemma 4 initialization classification, the Fig. 3
// hook search, and the failure-scenario refutation of Theorems 2, 9 and 10.
//
// Usage:
//
//	boostcheck -candidate forward -n 2 -f 0 -claim 1
//	boostcheck -candidate forward -n 4 -f 0 -claim 1 -symmetry
//	boostcheck -candidate tob -n 2 -f 0 -claim 1
//	boostcheck -candidate floodset-p -n 3 -f 0 -claim 1
//	boostcheck -candidate fdboost -n 3 -claim 2
//
// Candidates are the registry families of the boosting package (see
// `boosting.Protocols`), most prominently:
//
//	forward     n processes forwarding to one f-resilient consensus object
//	            (Theorem 2 family)
//	tob         n processes deciding via an f-resilient totally ordered
//	            broadcast service (Theorem 9 family)
//	floodset-p  FloodSet over registers with one f-resilient all-connected
//	            perfect failure detector (Theorem 10 family)
//	fdboost     FloodSet with pairwise 1-resilient 2-process perfect
//	            failure detectors (the Section 6.3 boost — not refutable)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/ioa-lab/boosting"
	"github.com/ioa-lab/boosting/internal/cliflags"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "boostcheck:", cliflags.Describe(err))
		os.Exit(1)
	}
}

// candidateUsage lists the registry names in the -candidate usage string.
func candidateUsage() string {
	var names []string
	for _, p := range boosting.Protocols() {
		names = append(names, p.Name)
	}
	return "candidate family: " + strings.Join(names, " | ")
}

func run(args []string) error {
	fs := flag.NewFlagSet("boostcheck", flag.ContinueOnError)
	var (
		candidate = fs.String("candidate", "forward", candidateUsage())
		n         = fs.Int("n", 2, "number of processes")
		f         = fs.Int("f", 0, "service resilience")
		claim     = fs.Int("claim", 1, "claimed tolerated failures")
		benign    = fs.Bool("benign", false, "benign silence policy (services never exercise their right to fall silent)")
	)
	common := cliflags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	policy := boosting.Adversarial
	if *benign {
		policy = boosting.Benign
	}
	opts, err := common.Options()
	if err != nil {
		return err
	}
	opts = append(opts, boosting.WithSilencePolicy(policy), boosting.WithMaxRounds(2000))
	if *candidate == "floodset-p" {
		// The Theorem 10 shape: one more flooding round than the detector's
		// resilience can cover at the claimed tolerance.
		opts = append(opts, boosting.WithRounds(*claim+1))
	}
	chk, err := boosting.New(*candidate, *n, *f, opts...)
	if err != nil {
		return err
	}

	fmt.Printf("candidate: %s (n=%d, f=%d, policy=%s), claiming %d-failure tolerance\n\n",
		*candidate, *n, *f, policy, *claim)
	report, err := chk.Refute(*claim)
	if err != nil {
		return err
	}
	defer report.Close()
	fmt.Print(report.String())
	if report.Violated() {
		fmt.Println("\nverdict: boosting REFUTED — the claimed resilience is not achieved")
	} else {
		fmt.Println("\nverdict: no violation found — the claim survives (boosting not attempted or not needed)")
	}
	return nil
}
