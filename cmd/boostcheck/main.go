// Command boostcheck runs the full impossibility analysis on a candidate
// boosting system: the Lemma 4 initialization classification, the Fig. 3
// hook search, and the failure-scenario refutation of Theorems 2, 9 and 10.
//
// Usage:
//
//	boostcheck -candidate forward -n 2 -f 0 -claim 1
//	boostcheck -candidate tob -n 2 -f 0 -claim 1
//	boostcheck -candidate floodset-p -n 3 -f 0 -claim 1
//	boostcheck -candidate fdboost -n 3 -claim 2
//
// Candidates:
//
//	forward     n processes forwarding to one f-resilient consensus object
//	            (Theorem 2 family)
//	tob         n processes deciding via an f-resilient totally ordered
//	            broadcast service (Theorem 9 family)
//	floodset-p  FloodSet over registers with one f-resilient all-connected
//	            perfect failure detector (Theorem 10 family)
//	fdboost     FloodSet with pairwise 1-resilient 2-process perfect
//	            failure detectors (the Section 6.3 boost — not refutable)
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/ioa-lab/boosting/internal/explore"
	"github.com/ioa-lab/boosting/internal/protocols"
	"github.com/ioa-lab/boosting/internal/service"
	"github.com/ioa-lab/boosting/internal/system"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "boostcheck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("boostcheck", flag.ContinueOnError)
	var (
		candidate = fs.String("candidate", "forward", "candidate family: forward | tob | floodset-p | fdboost")
		n         = fs.Int("n", 2, "number of processes")
		f         = fs.Int("f", 0, "service resilience")
		claim     = fs.Int("claim", 1, "claimed tolerated failures")
		benign    = fs.Bool("benign", false, "benign silence policy (services never exercise their right to fall silent)")
		workers   = fs.Int("workers", 0, "exploration workers (0 = one per CPU, 1 = serial)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	policy := service.Adversarial
	if *benign {
		policy = service.Benign
	}

	var (
		sys       *system.System
		err       error
		skipGraph bool
	)
	switch *candidate {
	case "forward":
		sys, err = protocols.BuildForward(*n, *f, policy)
	case "tob":
		sys, err = protocols.BuildTOBConsensus(*n, *f, policy)
	case "floodset-p":
		sys, err = protocols.BuildFloodSetWithP(*n, *f, *claim+1, policy)
		skipGraph = true
	case "fdboost":
		sys, err = protocols.BuildFDBoost(*n, *n)
		skipGraph = true
	default:
		return fmt.Errorf("unknown candidate %q", *candidate)
	}
	if err != nil {
		return err
	}

	fmt.Printf("candidate: %s (n=%d, f=%d, policy=%s), claiming %d-failure tolerance\n\n",
		*candidate, *n, *f, policy, *claim)
	report, err := explore.Refute(sys, *claim, explore.RefuteOptions{
		Build:             explore.BuildOptions{Workers: *workers},
		SkipGraphAnalysis: skipGraph,
		MaxRounds:         2000,
	})
	if err != nil {
		return err
	}
	fmt.Print(report.String())
	if report.Violated() {
		fmt.Println("\nverdict: boosting REFUTED — the claimed resilience is not achieved")
	} else {
		fmt.Println("\nverdict: no violation found — the claim survives (boosting not attempted or not needed)")
	}
	return nil
}
