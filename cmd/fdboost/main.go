// Command fdboost runs the Section 6.3 positive construction: consensus for
// any number of failures from 1-resilient 2-process perfect failure
// detectors and reliable registers (FloodSet over registers, guarded by the
// pairwise detectors).
//
// Usage:
//
//	fdboost -n 3
//
// fdboost shares the common exploration flags (-workers, -maxstates,
// -store, -spilldir, -symmetry); -symmetry is accepted but a no-op here — the
// detector-bearing families declare no symmetry group and the refuter
// skips their graph phases anyway.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/ioa-lab/boosting"
	"github.com/ioa-lab/boosting/internal/cliflags"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fdboost:", cliflags.Describe(err))
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fdboost", flag.ContinueOnError)
	n := fs.Int("n", 3, "number of processes")
	common := cliflags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts, err := common.Options()
	if err != nil {
		return err
	}
	chk, err := boosting.New("fdboost", *n, 0, opts...)
	if err != nil {
		return err
	}
	fmt.Printf("Section 6.3 construction: %d processes, %d pairwise 1-resilient perfect FDs,\n", *n, (*n)*(*n-1)/2)
	fmt.Printf("%d flooding registers. Claim: consensus tolerating any %d failures.\n\n", (*n)*(*n), *n-1)

	inputs := map[int]string{}
	for i := 0; i < *n; i++ {
		if i%2 == 0 {
			inputs[i] = "1"
		} else {
			inputs[i] = "0"
		}
	}
	var sets [][]int
	var cfgs []boosting.RunConfig
	for bits := 0; bits < 1<<(*n); bits++ {
		var J []int
		for idx := 0; idx < *n; idx++ {
			if bits&(1<<idx) != 0 {
				J = append(J, idx)
			}
		}
		if len(J) == *n {
			continue
		}
		failures := make([]boosting.FailureEvent, len(J))
		for i, p := range J {
			failures[i] = boosting.FailureEvent{Round: 0, Proc: p}
		}
		sets = append(sets, J)
		cfgs = append(cfgs, boosting.RunConfig{Inputs: inputs, Failures: failures})
	}
	results, err := chk.RunBatch(cfgs)
	if err != nil {
		return err
	}
	for i, res := range results {
		run := boosting.ConsensusRun{Inputs: inputs, Failed: sets[i], Decisions: res.Decisions, Done: res.Done}
		if err := boosting.CheckConsensus(run); err != nil {
			return fmt.Errorf("failure set %v: %w", sets[i], err)
		}
		fmt.Printf("  failed %-10v → decisions %v\n", sets[i], res.Decisions)
	}
	fmt.Printf("\nverified agreement, validity and termination under %d failure patterns\n", len(results))
	fmt.Println("verdict: resilience BOOSTED — arbitrary connection patterns escape Theorem 10")
	return nil
}
