package main

import "testing"

func TestRunVerifiesFDBoost(t *testing.T) {
	if err := run([]string{"-n", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadN(t *testing.T) {
	if err := run([]string{"-n", "1"}); err == nil {
		t.Error("want error for n = 1")
	}
}
