// Command boostd serves the boosting checker as a persistent HTTP/JSON
// service: POST a protocol instance to /v1/jobs, tail its per-level
// progress as Server-Sent Events at /v1/jobs/{id}/events, and fetch the
// typed verdict at /v1/jobs/{id}. Results are cached under the canonical
// system fingerprint, so renamed-but-isomorphic resubmissions are answered
// without exploring a single state.
//
// The shared engine flag block (-workers, -shards, -store, …) sets the
// *default* job options; each submission may override them in its JSON
// option block. Server flags:
//
//	-addr  :8080   HTTP listen address
//	-pool  NumCPU  concurrently running jobs (jobs default to serial builds)
//	-cache 1024    result-cache capacity in entries
//	-drain 10s     graceful-shutdown deadline before job contexts cancel
//
// -graphdir names the durable graph root of the delta-match cache tier:
// classify jobs commit their graphs under it, and a submission differing
// from a committed graph only in silence policy reopens that graph and
// rechecks the dirty region instead of rebuilding ("cached": "delta" in
// the acknowledgement, deltaHits on /v1/stats). Unset, boostd uses a
// temporary root removed at exit, so the tier is always on within one
// server lifetime.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"github.com/ioa-lab/boosting/internal/cliflags"
	"github.com/ioa-lab/boosting/internal/server"
)

func main() {
	fs := flag.NewFlagSet("boostd", flag.ExitOnError)
	sf := cliflags.RegisterServer(fs)
	_ = fs.Parse(os.Args[1:])

	// Lower the engine flag block once, up front, so a contradictory
	// combination (-spilldir with -store dense) fails at startup rather
	// than on the first job.
	if _, err := sf.Common.Options(); err != nil {
		fmt.Fprintln(os.Stderr, "boostd:", cliflags.Describe(err))
		os.Exit(2)
	}
	// -graphdir is the server's durable graph root, not a per-job default:
	// jobs must never inherit it (every classify would collide on one
	// directory), so it is peeled off before the flag block lowers into
	// Config.Defaults. Unset, the tier runs on a temporary root removed at
	// exit.
	graphRoot := sf.Common.GraphDir
	sf.Common.GraphDir = ""
	if graphRoot == "" {
		tmp, err := os.MkdirTemp("", "boostd-graphs-")
		if err != nil {
			fmt.Fprintln(os.Stderr, "boostd:", err)
			os.Exit(2)
		}
		defer os.RemoveAll(tmp)
		graphRoot = tmp
	}
	srv := server.New(server.Config{
		Pool:      sf.Pool,
		CacheSize: sf.Cache,
		Defaults:  server.DefaultsFromFlags(sf.Common),
		GraphRoot: graphRoot,
	})
	httpSrv := &http.Server{Addr: sf.Addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("boostd listening on %s (pool=%d, cache=%d, drain=%s)", sf.Addr, sf.Pool, sf.Cache, sf.Drain)

	select {
	case err := <-errc:
		log.Fatalf("boostd: serve: %v", err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("boostd: draining (deadline %s)", sf.Drain)

	drainCtx, cancel := context.WithTimeout(context.Background(), sf.Drain)
	defer cancel()
	// Stop accepting connections first, then drain the job pool: queued and
	// running jobs finish until the deadline, after which their contexts are
	// cancelled and the engines unwind at the next level boundary.
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("boostd: http shutdown: %v", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("boostd: drain: %v", err)
	}
	log.Printf("boostd: stopped")
}
