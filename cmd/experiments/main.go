// Command experiments reproduces every figure/lemma/theorem-level artifact
// of the paper (the experiment index E1–E21 of DESIGN.md, plus the
// E27–E31 engine rows: symmetry quotient, spilled states, spilled
// adjacency, sharded exploration, durable reopen + incremental recheck)
// and emits the results as the markdown report stored in EXPERIMENTS.md.
// -only regenerates a subset of rows.
//
// Usage:
//
//	experiments -workers 8 > EXPERIMENTS.md
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/ioa-lab/boosting"
	"github.com/ioa-lab/boosting/internal/cliflags"
	"github.com/ioa-lab/boosting/internal/codec"
	"github.com/ioa-lab/boosting/internal/ioa"
	"github.com/ioa-lab/boosting/internal/linearize"
	"github.com/ioa-lab/boosting/internal/seqtype"
	"github.com/ioa-lab/boosting/internal/service"
	"github.com/ioa-lab/boosting/internal/servicetype"
)

type result struct {
	id       string
	artifact string
	claim    string
	measured string
	ok       bool
}

// commonOpts is the shared façade option set of every experiment (resolved
// once from the shared flag block before the experiments run).
var commonOpts []boosting.Option

// spillDir is the parsed -spilldir value, honoured by the E28 spill builds
// ("" = the OS temp directory).
var spillDir string

// newChecker builds a registry candidate honouring the shared flags.
func newChecker(name string, n, f int, opts ...boosting.Option) (*boosting.Checker, error) {
	return boosting.New(name, n, f, append(append([]boosting.Option{}, commonOpts...), opts...)...)
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", cliflags.Describe(err))
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	common := cliflags.Register(fs)
	only := fs.String("only", "", "comma-separated experiment ids to run (e.g. E30,E29); default: all")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// The artifact rows reproduce structure of the concrete G(C) — per-id
	// applicability persistence (E2) and positional hook-end similarity
	// (E5) do not transfer verbatim to the quotient modulo renaming — so
	// the shared -symmetry knob is not propagated; E27 measures the
	// quotient explicitly, reduced vs unreduced.
	if common.Symmetry {
		fmt.Fprintln(os.Stderr, "experiments: -symmetry ignored — artifact rows reproduce the concrete G(C); E27 measures the quotient explicitly")
		common.Symmetry = false
	}
	// The artifact rows extract witness executions (hooks, certificates),
	// so dropping the predecessor links would fail most of them; E29
	// measures the witness-free configuration explicitly.
	if common.NoWitness {
		fmt.Fprintln(os.Stderr, "experiments: -nowitness ignored — artifact rows reconstruct witness executions; E29 measures the witness-free configuration explicitly")
		common.NoWitness = false
	}
	// One durable directory holds exactly one graph, and the artifact rows
	// build many; E31 measures the durable commit + reopen + recheck
	// explicitly, in a directory of its own.
	if common.GraphDir != "" {
		fmt.Fprintln(os.Stderr, "experiments: -graphdir ignored — one directory holds one graph and the rows build many; E31 measures the durable reopen + recheck explicitly")
		common.GraphDir = ""
	}
	opts, err := common.Options()
	if err != nil {
		return err
	}
	commonOpts = opts
	spillDir = common.SpillDir
	// -only picks a subset of rows by id (the heavy engine rows — E29,
	// E30 — build million-state frontiers, so regenerating one row
	// without re-running the whole index matters).
	selected := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.ToUpper(strings.TrimSpace(id)); id != "" {
			selected[id] = true
		}
	}
	var results []result
	experiments := []struct {
		id string
		fn func() (result, error)
	}{
		{"E1", e1CanonicalAtomicObject},
		{"E2", e2Applicability},
		{"E3", e3BivalentInit},
		{"E4", e4Hook},
		{"E5", e5Similarity},
		{"E6", e6RefuteAtomic},
		{"E6B", e6bBenignAblation},
		{"E7", e7SetBoost},
		{"E8", e8TOB},
		{"E9", e9RefuteOblivious},
		{"E10", e10PerfectFD},
		{"E11", e11EventuallyPerfectFD},
		{"E12", e12FDBoost},
		{"E13", e13RefuteGeneral},
		{"E14", e14CanonicalConsensus},
		{"E15", e15KSetType},
		{"E16", e16Linearizability},
		{"E17", e17RegisterVote},
		{"E18", e18SetBoostIsNotConsensus},
		{"E19", e19HookOnTOB},
		{"E20", e20KSetBoundary},
		{"E21", e21Lemma3AndFairness},
		{"E27", e27SymmetryReduction},
		{"E28", e28SpillStore},
		{"E29", e29SpillAdjacency},
		{"E30", e30ShardedExploration},
		{"E31", e31IncrementalRecheck},
	}
	if len(selected) > 0 {
		known := map[string]bool{}
		for _, exp := range experiments {
			known[exp.id] = true
		}
		for id := range selected {
			if !known[id] {
				return fmt.Errorf("-only: unknown experiment id %q", id)
			}
		}
	}
	for _, exp := range experiments {
		if len(selected) > 0 && !selected[exp.id] {
			continue
		}
		r, err := exp.fn()
		if err != nil {
			return err
		}
		results = append(results, r)
	}
	printReport(results)
	return nil
}

func printReport(results []result) {
	fmt.Println("# Experiments: paper vs. measured")
	fmt.Println()
	fmt.Println("Generated by `go run ./cmd/experiments`. Every row reproduces one artifact")
	fmt.Println("of the paper (figure, lemma or theorem) on concrete finite systems; the")
	fmt.Println("\"measured\" column is computed by the framework at generation time.")
	fmt.Println("Benchmarks timing each row: `go test -bench=. -benchmem` (see bench_test.go).")
	fmt.Println()
	fmt.Println("| ID | Paper artifact | Paper claim | Measured | Agrees |")
	fmt.Println("|----|----------------|-------------|----------|--------|")
	for _, r := range results {
		mark := "✓"
		if !r.ok {
			mark = "✗"
		}
		fmt.Printf("| %s | %s | %s | %s | %s |\n", r.id, r.artifact, r.claim, r.measured, mark)
	}
	fmt.Println()
	fmt.Println("## Reading the table")
	fmt.Println()
	fmt.Println("The paper proves *shape* statements, not performance numbers; the relevant")
	fmt.Println("reproduction criterion is **who wins and where the boundary falls**:")
	fmt.Println()
	fmt.Println("- consensus over f-resilient services, claiming f+1 failures → refuted")
	fmt.Println("  (E6, E9, E13: Theorems 2, 9, 10);")
	fmt.Println("- 2-set consensus (E7) and sparsely-connected failure detectors (E12) →")
	fmt.Println("  boosting succeeds, exactly at the paper's stated escape hatches;")
	fmt.Println("- the proof artifacts themselves — bivalent initializations (E3), hooks")
	fmt.Println("  (E4), similarity (E5) — are exhibited mechanically on G(C).")
}

// e1: Fig. 1 canonical atomic object conformance.
func e1CanonicalAtomicObject() (result, error) {
	eps := []int{0, 1, 2}
	obj, err := service.New(service.Config{
		Index: "k", Type: servicetype.FromSequential(seqtype.BinaryConsensus()),
		Endpoints: eps, Resilience: 1, Policy: service.Adversarial,
	})
	if err != nil {
		return result{}, err
	}
	st := obj.InitialState()
	st, _ = obj.Invoke(st, 0, seqtype.Init("1"))
	st, _ = obj.Invoke(st, 0, seqtype.Init("0"))
	st, _, _ = obj.Apply(st, ioa.PerformTask("k", 0))
	st, _, _ = obj.Apply(st, ioa.PerformTask("k", 0))
	resp := st.PendingResponses(0)
	fifoOK := len(resp) == 2 && resp[0] == seqtype.Decide("1") && resp[1] == seqtype.Decide("1")
	st = obj.Fail(st, 1)
	st = obj.Fail(st, 2)
	_, silenced := obj.Enabled(st, ioa.OutputTask("k", 0))
	act, _ := obj.Enabled(st, ioa.OutputTask("k", 0))
	silencedOK := silenced && act.Type == ioa.ActDummyOutput
	ok := fifoOK && silencedOK
	return result{
		id: "E1", artifact: "Fig. 1 canonical atomic object",
		claim:    "FIFO per endpoint; first value wins; >f failures permit silence",
		measured: fmt.Sprintf("FIFO+δ ✓; dummy enabled after 2 > f=1 failures: %v", silencedOK),
		ok:       ok,
	}, nil
}

// e2: Lemma 1 applicability persistence.
func e2Applicability() (result, error) {
	chk, err := newChecker("forward", 2, 0)
	if err != nil {
		return result{}, err
	}
	c, err := chk.ClassifyInits()
	if err != nil {
		return result{}, err
	}
	defer boosting.CloseGraph(c.Graph)
	sys := chk.System()
	g := c.Graph
	violations, checked := 0, 0
	for _, root := range c.Roots {
		seen := make([]bool, g.Size())
		queue := []boosting.StateID{root}
		seen[root] = true
		for head := 0; head < len(queue); head++ {
			id := queue[head]
			st, _ := g.State(id)
			for _, task := range sys.Tasks() {
				if !sys.Applicable(st, task) {
					continue
				}
				// Every successor edge not labelled task must preserve
				// applicability of task.
				for e := range g.EdgesFrom(id) {
					if e.Task == task {
						continue
					}
					next, _ := g.State(e.To)
					checked++
					if !sys.Applicable(next, task) {
						violations++
					}
				}
			}
			for e := range g.EdgesFrom(id) {
				if !seen[e.To] {
					seen[e.To] = true
					queue = append(queue, e.To)
				}
			}
		}
	}
	return result{
		id: "E2", artifact: "Lemma 1 (applicability persists)",
		claim:    "applicable tasks stay applicable until scheduled",
		measured: fmt.Sprintf("%d (state, task, other-edge) triples checked, %d violations", checked, violations),
		ok:       violations == 0 && checked > 0,
	}, nil
}

// e3: Lemma 4 bivalent initialization.
func e3BivalentInit() (result, error) {
	chk, err := newChecker("forward", 2, 0)
	if err != nil {
		return result{}, err
	}
	c, err := chk.ClassifyInits()
	if err != nil {
		return result{}, err
	}
	defer boosting.CloseGraph(c.Graph)
	vals := make([]string, len(c.Valences))
	for i, v := range c.Valences {
		vals[i] = v.String()
	}
	ok := c.BivalentIndex >= 0 &&
		c.Valences[0] == boosting.ZeroValent &&
		c.Valences[len(c.Valences)-1] == boosting.OneValent
	return result{
		id: "E3", artifact: "Lemma 4 (bivalent initialization)",
		claim:    "α_0 0-valent, α_n 1-valent, some α_i bivalent",
		measured: strings.Join(vals, ", "),
		ok:       ok,
	}, nil
}

// e4: Fig. 2/3, Lemma 5 hook.
func e4Hook() (result, error) {
	chk, err := newChecker("forward", 2, 0)
	if err != nil {
		return result{}, err
	}
	c, err := chk.ClassifyInits()
	if err != nil {
		return result{}, err
	}
	defer boosting.CloseGraph(c.Graph)
	hs, err := chk.FindHook(c.Graph, c.Roots[c.BivalentIndex])
	if err != nil {
		return result{}, err
	}
	if hs.Hook == nil {
		return result{
			id: "E4", artifact: "Fig. 2/3, Lemma 5 (hook)",
			claim: "round-robin construction yields a hook", measured: "no hook", ok: false,
		}, nil
	}
	return result{
		id: "E4", artifact: "Fig. 2/3, Lemma 5 (hook)",
		claim:    "round-robin construction yields a hook",
		measured: fmt.Sprintf("hook at G(C) (%d vertices): e=%v, e'=%v", c.Graph.Size(), hs.Hook.E, hs.Hook.EPrime),
		ok:       true,
	}, nil
}

// e5: Section 3.5 similarity + Lemma 7 failure construction.
func e5Similarity() (result, error) {
	chk, err := newChecker("forward", 2, 0)
	if err != nil {
		return result{}, err
	}
	c, err := chk.ClassifyInits()
	if err != nil {
		return result{}, err
	}
	defer boosting.CloseGraph(c.Graph)
	hs, err := chk.FindHook(c.Graph, c.Roots[c.BivalentIndex])
	if err != nil || hs.Hook == nil {
		return result{}, fmt.Errorf("hook: %w", err)
	}
	sys := chk.System()
	s0, _ := c.Graph.State(hs.Hook.Alpha0)
	s1, _ := c.Graph.State(hs.Hook.Alpha1)
	who, similar := boosting.SomeSimilarity(sys, s0, s1, boosting.SimilarityOptions{})
	bothDiverge := true
	for _, st := range []boosting.State{s0, s1} {
		cur, _, failErr := sys.Fail(st, 0)
		if failErr != nil {
			return result{}, failErr
		}
		run, runErr := chk.RunFrom(cur, c.Assignments[c.BivalentIndex])
		if runErr != nil {
			return result{}, runErr
		}
		bothDiverge = bothDiverge && run.Diverged && !run.Done
	}
	return result{
		id: "E5", artifact: "Sec. 3.5 similarity / Lemma 7",
		claim:    "hook ends similar at shared component; failing J silences it on both sides identically",
		measured: fmt.Sprintf("ends similar at %s (found=%v); mirrored post-failure runs both diverge: %v", who, similar, bothDiverge),
		ok:       similar && who == "k0" && bothDiverge,
	}, nil
}

// e6: Theorem 2 refutation.
func e6RefuteAtomic() (result, error) {
	chk, err := newChecker("forward", 2, 0)
	if err != nil {
		return result{}, err
	}
	report, err := chk.Refute(1)
	if err != nil {
		return result{}, err
	}
	defer report.Close()
	measured := "no violation"
	if report.Violated() {
		measured = fmt.Sprintf("%s violation, failed=%v", report.Primary().Kind, report.Primary().Failed)
	}
	return result{
		id: "E6", artifact: "Theorem 2 (atomic objects)",
		claim:    "0-resilient consensus object cannot give 1-resilient consensus",
		measured: measured,
		ok:       report.Violated() && report.Primary().Kind == boosting.KindTermination,
	}, nil
}

// e6b: ablation — benign silence policy.
func e6bBenignAblation() (result, error) {
	chk, err := newChecker("forward", 2, 0, boosting.WithSilencePolicy(boosting.Benign))
	if err != nil {
		return result{}, err
	}
	report, err := chk.Refute(1)
	if err != nil {
		return result{}, err
	}
	defer report.Close()
	return result{
		id: "E6b", artifact: "Ablation: silence policy",
		claim:    "impossibility is driven by the *permitted* silencing; a benign object (never silences) behaves wait-free and survives",
		measured: fmt.Sprintf("benign candidate violated: %v", report.Violated()),
		ok:       !report.Violated(),
	}, nil
}

// e7: Section 4 set-consensus boost.
func e7SetBoost() (result, error) {
	chk, err := newChecker("setboost", 2, 0)
	if err != nil {
		return result{}, err
	}
	inputs := map[int]string{0: "0", 1: "1", 2: "1", 3: "0"}
	patterns, failuresOK := 0, true
	for bits := 0; bits < 1<<4; bits++ {
		var J []int
		for idx := 0; idx < 4; idx++ {
			if bits&(1<<idx) != 0 {
				J = append(J, idx)
			}
		}
		if len(J) == 4 {
			continue
		}
		failures := make([]boosting.FailureEvent, len(J))
		for i, p := range J {
			failures[i] = boosting.FailureEvent{Round: 0, Proc: p}
		}
		res, err := chk.Run(boosting.RunConfig{Inputs: inputs, Failures: failures})
		if err != nil {
			return result{}, err
		}
		run := boosting.ConsensusRun{Inputs: inputs, Failed: J, Decisions: res.Decisions, Done: res.Done}
		if boosting.CheckKSetConsensus(run, 2) != nil {
			failuresOK = false
		}
		patterns++
	}
	return result{
		id: "E7", artifact: "Section 4 (k-set boost)",
		claim:    "wait-free 2n-process 2-set consensus from wait-free n-process consensus",
		measured: fmt.Sprintf("k-agreement/validity/termination hold under all %d failure patterns", patterns),
		ok:       failuresOK,
	}, nil
}

// e8: Figs. 5–7 totally ordered broadcast.
func e8TOB() (result, error) {
	chk, err := newChecker("tob", 3, 2)
	if err != nil {
		return result{}, err
	}
	inputs := map[int]string{0: "a", 1: "b", 2: "c"}
	res, err := chk.Run(boosting.RunConfig{Inputs: inputs})
	if err != nil {
		return result{}, err
	}
	orderErr := boosting.CheckTotalOrder(boosting.TOBDeliveries(res.Exec, "b0"))
	return result{
		id: "E8", artifact: "Figs. 5–7 (totally ordered broadcast)",
		claim:    "one invocation, responses at every endpoint, single total order",
		measured: fmt.Sprintf("3 broadcasts, total order check: %v", errString(orderErr)),
		ok:       orderErr == nil && res.Done,
	}, nil
}

// e9: Theorem 9 refutation (failure-oblivious services).
func e9RefuteOblivious() (result, error) {
	chk, err := newChecker("tob", 2, 0)
	if err != nil {
		return result{}, err
	}
	report, err := chk.Refute(1)
	if err != nil {
		return result{}, err
	}
	defer report.Close()
	measured := "no violation"
	if report.Violated() {
		measured = fmt.Sprintf("%s violation via silenced TOB", report.Primary().Kind)
	}
	return result{
		id: "E9", artifact: "Theorem 9 (failure-oblivious)",
		claim:    "0-resilient TOB cannot give 1-resilient consensus",
		measured: measured,
		ok:       report.Violated() && report.Primary().Kind == boosting.KindTermination,
	}, nil
}

// e10: Fig. 9 perfect failure detector.
func e10PerfectFD() (result, error) {
	chk, err := newChecker("suspectcollector", 3, 0)
	if err != nil {
		return result{}, err
	}
	res, err := chk.Run(boosting.RunConfig{
		Inputs:    map[int]string{0: "x", 1: "x", 2: "x"},
		Failures:  []boosting.FailureEvent{{Round: 0, Proc: 1}},
		MaxRounds: 50,
	})
	if err != nil {
		return result{}, err
	}
	accErr := boosting.CheckFDAccuracy(res.Exec)
	sys := chk.System()
	complete := true
	for _, i := range []int{0, 2} {
		got, perr := codec.ParseIntSet(sys.ProcState(res.Final, i).Get(boosting.VarSuspects))
		if perr != nil || !got.Equal(codec.NewIntSet(1)) {
			complete = false
		}
	}
	return result{
		id: "E10", artifact: "Fig. 9 (perfect FD)",
		claim:    "suspicions accurate and complete",
		measured: fmt.Sprintf("accuracy: %v; live collectors converge to failed set: %v", errString(accErr), complete),
		ok:       accErr == nil && complete,
	}, nil
}

// e11: Figs. 10–11 eventually perfect failure detector.
func e11EventuallyPerfectFD() (result, error) {
	u := servicetype.EventuallyPerfectFD([]int{0, 1, 2})
	failed := codec.NewIntSet(2)
	rm, _ := u.Delta2("fd0", servicetype.ModeImperfect, failed)
	wrongBefore, _ := servicetype.SuspectSet(rm.Responses(0)[0])
	_, mode := u.Delta2(servicetype.EvPerfectStabilizeTask, servicetype.ModeImperfect, failed)
	rm, _ = u.Delta2("fd0", mode, failed)
	rightAfter, _ := servicetype.SuspectSet(rm.Responses(0)[0])
	ok := !wrongBefore.Equal(failed) && rightAfter.Equal(failed) && mode == servicetype.ModePerfect
	return result{
		id: "E11", artifact: "Figs. 10–11 (◇P)",
		claim:    "arbitrary suspicions while imperfect; accurate after stabilization",
		measured: fmt.Sprintf("before g: %v; after g: %v (failed %v)", wrongBefore, rightAfter, failed),
		ok:       ok,
	}, nil
}

// e12: Section 6.3 FD boost.
func e12FDBoost() (result, error) {
	chk, err := newChecker("fdboost", 3, 0)
	if err != nil {
		return result{}, err
	}
	inputs := map[int]string{0: "1", 1: "0", 2: "1"}
	patterns, allOK := 0, true
	for bits := 0; bits < 1<<3; bits++ {
		var J []int
		for idx := 0; idx < 3; idx++ {
			if bits&(1<<idx) != 0 {
				J = append(J, idx)
			}
		}
		if len(J) == 3 {
			continue
		}
		failures := make([]boosting.FailureEvent, len(J))
		for i, p := range J {
			failures[i] = boosting.FailureEvent{Round: 0, Proc: p}
		}
		res, err := chk.Run(boosting.RunConfig{Inputs: inputs, Failures: failures})
		if err != nil {
			return result{}, err
		}
		run := boosting.ConsensusRun{Inputs: inputs, Failed: J, Decisions: res.Decisions, Done: res.Done}
		if boosting.CheckConsensus(run) != nil {
			allOK = false
		}
		patterns++
	}
	return result{
		id: "E12", artifact: "Section 6.3 (FD boost)",
		claim:    "consensus for any f from 1-resilient 2-process perfect FDs",
		measured: fmt.Sprintf("consensus holds under all %d failure patterns (0..n−1 failures)", patterns),
		ok:       allOK,
	}, nil
}

// e13: Theorem 10 refutation (general services, all-connected).
func e13RefuteGeneral() (result, error) {
	chk, err := newChecker("floodset-p", 3, 0, boosting.WithRounds(2), boosting.WithMaxRounds(500))
	if err != nil {
		return result{}, err
	}
	report, err := chk.Refute(1)
	if err != nil {
		return result{}, err
	}
	defer report.Close()
	measured := "no violation"
	if report.Violated() {
		measured = fmt.Sprintf("%s violation via silenced all-connected P", report.Primary().Kind)
	}
	return result{
		id: "E13", artifact: "Theorem 10 (general services)",
		claim:    "0-resilient all-connected perfect FD cannot give 1-resilient consensus",
		measured: measured,
		ok:       report.Violated() && report.Primary().Kind == boosting.KindTermination,
	}, nil
}

// e14: Theorem 11 / Appendix B.
func e14CanonicalConsensus() (result, error) {
	chk, err := newChecker("forward", 3, 1)
	if err != nil {
		return result{}, err
	}
	inputs := map[int]string{0: "1", 1: "0", 2: "0"}
	scenarios := [][]int{nil, {0}, {2}}
	allOK := true
	for _, J := range scenarios {
		failures := make([]boosting.FailureEvent, len(J))
		for i, p := range J {
			failures[i] = boosting.FailureEvent{Round: 0, Proc: p}
		}
		res, err := chk.Run(boosting.RunConfig{Inputs: inputs, Failures: failures})
		if err != nil {
			return result{}, err
		}
		run := boosting.ConsensusRun{Inputs: inputs, Failed: J, Decisions: res.Decisions, Done: res.Done}
		if boosting.CheckConsensus(run) != nil {
			allOK = false
		}
	}
	return result{
		id: "E14", artifact: "Theorem 11 / App. B",
		claim:    "canonical f-resilient consensus object satisfies agreement, validity, modified termination with ≤ f failures",
		measured: fmt.Sprintf("all three conditions hold in %d scenarios (≤ f=1 failures)", len(scenarios)),
		ok:       allOK,
	}, nil
}

// e15: k-set-consensus sequential type.
func e15KSetType() (result, error) {
	ty := seqtype.KSetConsensus(2, 4)
	if err := ty.Validate(); err != nil {
		return result{}, err
	}
	results := ty.Apply(seqtype.Init("3"), codec.Set([]string{"0"}))
	nondeterministic := len(results) > 1
	val := ty.Initials[0]
	maxW := 0
	for i := 0; i < 4; i++ {
		r, err := ty.ApplyOne(seqtype.Init(fmt.Sprint(i)), val)
		if err != nil {
			return result{}, err
		}
		val = r.NewVal
		members, _ := codec.ParseSet(val)
		if len(members) > maxW {
			maxW = len(members)
		}
	}
	return result{
		id: "E15", artifact: "Sec. 2.1.2 (k-set type)",
		claim:    "nondeterministic sequential type; remembers first k values",
		measured: fmt.Sprintf("δ multi-valued: %v; max |W| over 4 ops: %d (k = 2)", nondeterministic, maxW),
		ok:       nondeterministic && maxW == 2,
	}, nil
}

func errString(err error) string {
	if err == nil {
		return "pass"
	}
	return err.Error()
}

// e16: linearizability of canonical objects (implements relation, §2.1.4
// clause 2) under random adversarial schedules.
func e16Linearizability() (result, error) {
	chk, err := newChecker("forward", 3, 2)
	if err != nil {
		return result{}, err
	}
	inputs := map[int]string{0: "0", 1: "1", 2: "1"}
	types := map[string]*seqtype.Type{"k0": seqtype.BinaryConsensus()}
	checked := 0
	for seed := int64(1); seed <= 20; seed++ {
		res, err := chk.RunRandom(boosting.RunConfig{Inputs: inputs}, seed, 4000)
		if err != nil {
			return result{}, err
		}
		if err := linearize.CheckExecution(res.Exec, types); err != nil {
			return result{
				id: "E16", artifact: "§2.1.4 implements (linearizability)",
				claim:    "canonical object histories are linearizable",
				measured: err.Error(), ok: false,
			}, nil
		}
		checked++
	}
	return result{
		id: "E16", artifact: "§2.1.4 implements (linearizability)",
		claim:    "canonical object histories are linearizable",
		measured: fmt.Sprintf("%d random-schedule histories linearized (Wing–Gong)", checked),
		ok:       checked == 20,
	}, nil
}

// e17: the FLP corner — a naive register-only candidate loses safety, found
// by the exhaustive failure-free sweep.
func e17RegisterVote() (result, error) {
	chk, err := newChecker("registervote", 2, 0)
	if err != nil {
		return result{}, err
	}
	report, err := chk.Refute(1)
	if err != nil {
		return result{}, err
	}
	defer report.Close()
	measured := "no violation"
	if report.Violated() {
		measured = fmt.Sprintf("%s violation in the failure-free graph", report.Primary().Kind)
	}
	return result{
		id: "E17", artifact: "Theorem 2 ⊇ FLP (registers only)",
		claim:    "registers alone cannot give 1-resilient consensus; the naive vote even loses safety",
		measured: measured,
		ok:       report.Violated() && report.Primary().Kind == boosting.KindAgreement,
	}, nil
}

// e18: boundary cross-check — the Section 4 system solves 2-set consensus
// but NOT consensus.
func e18SetBoostIsNotConsensus() (result, error) {
	chk, err := newChecker("setboost", 2, 0)
	if err != nil {
		return result{}, err
	}
	report, err := chk.Refute(1)
	if err != nil {
		return result{}, err
	}
	defer report.Close()
	measured := "no violation"
	if report.Violated() {
		measured = fmt.Sprintf("%s violation across groups", report.Primary().Kind)
	}
	return result{
		id: "E18", artifact: "§4 boundary (2-set ≠ consensus)",
		claim:    "the boosted system is 2-set consensus only; as consensus it fails agreement",
		measured: measured,
		ok:       report.Violated() && report.Primary().Kind == boosting.KindAgreement,
	}, nil
}

// e19: the hook machinery applies verbatim to failure-oblivious services
// (Theorem 9's proof route).
func e19HookOnTOB() (result, error) {
	chk, err := newChecker("tob", 2, 0)
	if err != nil {
		return result{}, err
	}
	c, err := chk.ClassifyInits()
	if err != nil {
		return result{}, err
	}
	defer boosting.CloseGraph(c.Graph)
	hs, err := chk.FindHook(c.Graph, c.Roots[c.BivalentIndex])
	if err != nil || hs.Hook == nil {
		return result{
			id: "E19", artifact: "Theorem 9 proof route (hook on TOB)",
			claim: "Fig. 3 construction works on failure-oblivious substrates", measured: "no hook", ok: false,
		}, nil
	}
	s0, _ := c.Graph.State(hs.Hook.Alpha0)
	s1, _ := c.Graph.State(hs.Hook.Alpha1)
	who, similar := boosting.SomeSimilarity(chk.System(), s0, s1, boosting.SimilarityOptions{})
	return result{
		id: "E19", artifact: "Theorem 9 proof route (hook on TOB)",
		claim:    "Fig. 3 construction works on failure-oblivious substrates",
		measured: fmt.Sprintf("hook found (e=%v); ends similar at %s=%v", hs.Hook.E, who, similar),
		ok:       similar && who == "b0",
	}, nil
}

// e20: the k-set boundary, measured with the k-set refuter.
func e20KSetBoundary() (result, error) {
	chk, err := newChecker("setboost", 2, 0)
	if err != nil {
		return result{}, err
	}
	asTwoSet, err := chk.RefuteKSet(2, 3)
	if err != nil {
		return result{}, err
	}
	defer asTwoSet.Close()
	asConsensus, err := chk.RefuteKSet(1, 1)
	if err != nil {
		return result{}, err
	}
	defer asConsensus.Close()
	return result{
		id: "E20", artifact: "§4 boundary (k-set refuter)",
		claim:    "boosting possible at k = 2 (wait-free claim survives), impossible at k = 1",
		measured: fmt.Sprintf("k=2 claimed 3 failures: violated=%v; k=1 claimed 1: violated=%v", asTwoSet.Violated(), asConsensus.Violated()),
		ok:       !asTwoSet.Violated() && asConsensus.Violated(),
	}, nil
}

// e27: symmetry-reduced exploration — the quotient of G(C) modulo process
// renaming carries the same verdicts at a fraction of the states. (The id
// matches the E27 benchmark row; E22–E26 are engine benchmarks without
// paper-artifact rows.)
func e27SymmetryReduction() (result, error) {
	full, err := newChecker("forward", 4, 0)
	if err != nil {
		return result{}, err
	}
	unreduced, err := full.ClassifyInits()
	if err != nil {
		return result{}, err
	}
	defer boosting.CloseGraph(unreduced.Graph)
	reduced, err := newChecker("forward", 4, 0, boosting.WithSymmetry())
	if err != nil {
		return result{}, err
	}
	quotient, err := reduced.ClassifyInits()
	if err != nil {
		return result{}, err
	}
	defer boosting.CloseGraph(quotient.Graph)
	same := quotient.BivalentIndex == unreduced.BivalentIndex
	for i := range unreduced.Valences {
		same = same && quotient.Valences[i] == unreduced.Valences[i]
	}
	return result{
		id: "E27", artifact: "symmetry quotient of G(C)",
		claim: "process identities are interchangeable: the quotient modulo renaming preserves all valence verdicts",
		measured: fmt.Sprintf("forward n=4: %d → %d states (%.1f×), %d → %d edges; verdicts preserved=%v",
			unreduced.Graph.Size(), quotient.Graph.Size(),
			float64(unreduced.Graph.Size())/float64(quotient.Graph.Size()),
			unreduced.Graph.Edges(), quotient.Graph.Edges(), same),
		ok: same && quotient.Graph.Size() < unreduced.Graph.Size(),
	}, nil
}

// e28: disk-spilling state store — the spill file holds canonical
// fingerprints that decode back into representative states, the produced
// graph is identical to the dense store's, and the exhaustive forward n=5
// analysis (out of reach for the string-keyed seed engine) completes with
// states living on disk. (The id matches the E28 benchmark row.)
func e28SpillStore() (result, error) {
	// The reference is pinned to the dense backend so the parity check is
	// spill-vs-dense even when the shared -store flag selects spill.
	dense, err := newChecker("forward", 4, 0, boosting.WithStore(boosting.DenseStore))
	if err != nil {
		return result{}, err
	}
	want, err := dense.ClassifyInits()
	if err != nil {
		return result{}, err
	}
	defer boosting.CloseGraph(want.Graph)
	spill, err := newChecker("forward", 4, 0, boosting.WithSpillDir(spillDir))
	if err != nil {
		return result{}, err
	}
	got, err := spill.ClassifyInits()
	if err != nil {
		return result{}, err
	}
	defer boosting.CloseGraph(got.Graph)
	identical := got.Graph.Size() == want.Graph.Size() &&
		got.Graph.Edges() == want.Graph.Edges() &&
		got.BivalentIndex == want.BivalentIndex
	for id := 0; identical && id < want.Graph.Size(); id++ {
		sid := boosting.StateID(id)
		identical = got.Graph.Fingerprint(sid) == want.Graph.Fingerprint(sid) &&
			got.Graph.Valence(sid) == want.Graph.Valence(sid)
	}
	big, err := newChecker("forward", 5, 0, boosting.WithSpillDir(spillDir))
	if err != nil {
		return result{}, err
	}
	n5, err := big.ClassifyInits()
	if err != nil {
		return result{}, err
	}
	defer boosting.CloseGraph(n5.Graph)
	stats, _ := boosting.GraphSpillStats(n5.Graph)
	return result{
		id: "E28", artifact: "disk-spilling state store",
		claim: "fingerprints double as serialized states: exhaustive exploration no longer needs state-sized RAM",
		measured: fmt.Sprintf("forward n=4 spill ≡ dense per-vertex: %v; exhaustive n=5: %d states / %d edges, %.1f MB spilled, %d resident",
			identical, n5.Graph.Size(), n5.Graph.Edges(),
			float64(stats.SpillBytes)/1e6, stats.Resident),
		ok: identical && n5.BivalentIndex >= 0,
	}, nil
}

// e29: spilled adjacency — edges live as delta-varint blocks in the edge
// spill file, read back through the EdgesFrom iterator. The quotient
// forward n=6 build is checked per-vertex (fingerprints, valences, edges)
// against the dense backend; then the exhaustive frontiers the redesign
// opened: unreduced forward n=6, and registervote n=3 under symmetry with
// witness links dropped — the largest build, whose resident footprint is
// the dedup index alone. (The id matches the E29 benchmark row.)
func e29SpillAdjacency() (result, error) {
	dense, err := newChecker("forward", 6, 0, boosting.WithStore(boosting.DenseStore), boosting.WithSymmetry())
	if err != nil {
		return result{}, err
	}
	want, err := dense.ClassifyInits()
	if err != nil {
		return result{}, err
	}
	defer boosting.CloseGraph(want.Graph)
	spill, err := newChecker("forward", 6, 0, boosting.WithSpillDir(spillDir), boosting.WithSymmetry())
	if err != nil {
		return result{}, err
	}
	got, err := spill.ClassifyInits()
	if err != nil {
		return result{}, err
	}
	defer boosting.CloseGraph(got.Graph)
	identical := got.Graph.Size() == want.Graph.Size() &&
		got.Graph.Edges() == want.Graph.Edges() &&
		got.BivalentIndex == want.BivalentIndex
	for id := 0; identical && id < want.Graph.Size(); id++ {
		sid := boosting.StateID(id)
		identical = got.Graph.Fingerprint(sid) == want.Graph.Fingerprint(sid) &&
			got.Graph.Valence(sid) == want.Graph.Valence(sid)
		we := want.Graph.Succs(sid)
		j := 0
		for e := range got.Graph.EdgesFrom(sid) {
			identical = identical && j < len(we) && e == we[j]
			j++
		}
		identical = identical && j == len(we)
	}
	// The frontiers: exhaustive unreduced forward n=6, then the largest
	// build — registervote n=3 on the quotient, witness links dropped.
	full, err := newChecker("forward", 6, 0, boosting.WithSpillDir(spillDir),
		boosting.WithoutWitnesses(), boosting.WithMaxStates(100_000))
	if err != nil {
		return result{}, err
	}
	n6, err := full.ClassifyInits()
	if err != nil {
		return result{}, err
	}
	defer boosting.CloseGraph(n6.Graph)
	rv, err := newChecker("registervote", 3, 0, boosting.WithSpillDir(spillDir),
		boosting.WithSymmetry(), boosting.WithoutWitnesses(), boosting.WithMaxStates(1_200_000))
	if err != nil {
		return result{}, err
	}
	rv3, err := rv.ClassifyInits()
	if err != nil {
		return result{}, err
	}
	defer boosting.CloseGraph(rv3.Graph)
	stats, _ := boosting.GraphSpillStats(rv3.Graph)
	return result{
		id: "E29", artifact: "spilled adjacency (edge file)",
		claim: "edges stream from delta-varint blocks on disk: exhaustive exploration no longer needs edge-sized RAM either",
		measured: fmt.Sprintf("forward n=6 quotient spill ≡ dense per-vertex+edge: %v (%d states / %d edges); unreduced n=6: %d / %d; registervote n=3 quotient: %d / %d, %.1f MB edge file",
			identical, got.Graph.Size(), got.Graph.Edges(),
			n6.Graph.Size(), n6.Graph.Edges(),
			rv3.Graph.Size(), rv3.Graph.Edges(), float64(stats.EdgeBytes)/1e6),
		ok: identical && n6.BivalentIndex >= 0 && rv3.BivalentIndex >= 0,
	}, nil
}

// e30: sharded fingerprint-partitioned exploration — workers intern each
// freshly canonicalized successor directly into the shard owning its
// fingerprint-hash range (no barrier interning at level ends), and the
// post-hoc renumber pass makes the finished graph identical for every
// shard and worker count. The row checks that identity per-id on the
// exhaustive forward n=5 build while timing the shard sweep (the ≥4-core
// speedup target; on fewer cores the sweep prices the renumber overhead
// instead), re-derives the forward n=6 quotient against the legacy
// engine, and rebuilds the largest frontier — registervote n=3 on the
// quotient, witness-free, spilled to disk — under the sharded engine.
func e30ShardedExploration() (result, error) {
	// The shard sweep pairs one shard against one-per-CPU; on a single
	// CPU the pair still compares two shard counts, so the per-id
	// identity check never degenerates to comparing a build with itself.
	ncpu := max(runtime.NumCPU(), 2)
	build := func(shards int) (*boosting.InitClassification, time.Duration, error) {
		chk, err := newChecker("forward", 5, 0, boosting.WithShards(shards))
		if err != nil {
			return nil, 0, err
		}
		start := time.Now()
		c, err := chk.ClassifyInits()
		return c, time.Since(start), err
	}
	one, t1, err := build(1)
	if err != nil {
		return result{}, err
	}
	defer one.Close()
	many, tn, err := build(ncpu)
	if err != nil {
		return result{}, err
	}
	defer many.Close()
	identical := one.Graph.Size() == many.Graph.Size() &&
		one.Graph.Edges() == many.Graph.Edges() &&
		one.BivalentIndex == many.BivalentIndex
	for id := 0; identical && id < one.Graph.Size(); id++ {
		sid := boosting.StateID(id)
		identical = one.Graph.Fingerprint(sid) == many.Graph.Fingerprint(sid) &&
			one.Graph.Valence(sid) == many.Graph.Valence(sid)
	}
	// The n=6 quotient under the sharded engine against the legacy serial
	// engine: renumbered IDs differ between the families, so the
	// comparison is counts and verdict, not per-id.
	legacy, err := newChecker("forward", 6, 0, boosting.WithSymmetry(), boosting.WithWorkers(1), boosting.WithShards(0))
	if err != nil {
		return result{}, err
	}
	want, err := legacy.ClassifyInits()
	if err != nil {
		return result{}, err
	}
	defer want.Close()
	quot, err := newChecker("forward", 6, 0, boosting.WithSymmetry(), boosting.WithShards(ncpu))
	if err != nil {
		return result{}, err
	}
	n6, err := quot.ClassifyInits()
	if err != nil {
		return result{}, err
	}
	defer n6.Close()
	n6ok := n6.Graph.Size() == want.Graph.Size() &&
		n6.Graph.Edges() == want.Graph.Edges() &&
		n6.BivalentIndex == want.BivalentIndex
	rv, err := newChecker("registervote", 3, 0, boosting.WithShards(ncpu),
		boosting.WithSpillDir(spillDir), boosting.WithSymmetry(),
		boosting.WithoutWitnesses(), boosting.WithMaxStates(1_200_000))
	if err != nil {
		return result{}, err
	}
	rv3, err := rv.ClassifyInits()
	if err != nil {
		return result{}, err
	}
	defer boosting.CloseGraph(rv3.Graph)
	return result{
		id: "E30", artifact: "sharded exploration (partitioned interning)",
		claim: "shard-local interning with post-hoc renumbering is deterministic: same graph for any shard/worker count",
		measured: fmt.Sprintf("forward n=5 shards=1 ≡ shards=%d per-id: %v (%d states / %d edges), %.1fs vs %.1fs (%.2fx); sharded n=6 quotient ≡ legacy: %v (%d / %d); sharded registervote n=3 quotient: %d / %d",
			ncpu, identical, one.Graph.Size(), one.Graph.Edges(),
			t1.Seconds(), tn.Seconds(), t1.Seconds()/tn.Seconds(),
			n6ok, n6.Graph.Size(), n6.Graph.Edges(),
			rv3.Graph.Size(), rv3.Graph.Edges()),
		ok: identical && n6ok && rv3.BivalentIndex >= 0,
	}, nil
}

// e31: durable graph store + incremental recheck. The exhaustive forward
// n=5 adversarial build is committed once behind its manifest; the
// benign-policy variant — a one-action delta whose failure-free graph is
// provably unchanged, because silence never fires in failure-free
// executions — is then answered twice: by a full from-scratch build and
// by reopening the committed graph and rechecking the dirty region. The
// verdicts must be identical and the recheck must re-expand only a small
// fraction of the full state count (here: none at all).
func e31IncrementalRecheck() (result, error) {
	dir, err := os.MkdirTemp(spillDir, "e31-graph-")
	if err != nil {
		return result{}, err
	}
	defer os.RemoveAll(dir)
	base, err := newChecker("forward", 5, 1,
		boosting.WithWorkers(1), boosting.WithShards(0),
		boosting.WithStore(boosting.SpillStore), boosting.WithGraphDir(dir))
	if err != nil {
		return result{}, err
	}
	committed, err := base.ClassifyInits()
	if err != nil {
		return result{}, err
	}
	defer committed.Close()
	fullStates, fullEdges := committed.Graph.Size(), committed.Graph.Edges()
	delta, err := newChecker("forward", 5, 1,
		boosting.WithWorkers(1), boosting.WithShards(0),
		boosting.WithSilencePolicy(boosting.Benign), boosting.WithSpillDir(spillDir))
	if err != nil {
		return result{}, err
	}
	start := time.Now()
	full, err := delta.ClassifyInits()
	if err != nil {
		return result{}, err
	}
	tFull := time.Since(start)
	defer full.Close()
	start = time.Now()
	prev, err := delta.OpenGraph(dir)
	if err != nil {
		return result{}, err
	}
	res, err := delta.Recheck(prev)
	if err != nil {
		boosting.CloseGraph(prev)
		return result{}, err
	}
	tRecheck := time.Since(start)
	defer res.Close()
	verdictOK := res.ReachableStates == full.Graph.Size() &&
		res.ReachableEdges == full.Graph.Edges() &&
		res.BivalentIndex == full.BivalentIndex &&
		len(res.Valences) == len(full.Valences)
	for i := 0; verdictOK && i < len(res.Valences); i++ {
		verdictOK = res.Valences[i] == full.Valences[i]
	}
	explored := res.Dirty + res.Fresh
	return result{
		id: "E31", artifact: "durable graph + incremental recheck",
		claim: "a committed graph answers a modified candidate by dirty-region recheck: identical verdict at a fraction of a full exploration",
		measured: fmt.Sprintf("committed forward n=5: %d states / %d edges; benign variant rebuilt %d vs rechecked %d (dirty %d + fresh %d) in %.1fs vs %.1fs; verdicts identical: %v",
			fullStates, fullEdges, full.Graph.Size(), explored,
			res.Dirty, res.Fresh, tFull.Seconds(), tRecheck.Seconds(), verdictOK),
		ok: verdictOK && explored*5 < fullStates,
	}, nil
}

// e21: Lemma 3 (no unvalent reachable states on a correct candidate) plus a
// fairness audit of the canonical scheduler.
func e21Lemma3AndFairness() (result, error) {
	chk, err := newChecker("forward", 2, 1)
	if err != nil {
		return result{}, err
	}
	c, err := chk.ClassifyInits()
	if err != nil {
		return result{}, err
	}
	defer boosting.CloseGraph(c.Graph)
	g := c.Graph
	unvalent, checked := 0, 0
	seen := make([]bool, g.Size())
	var queue []boosting.StateID
	for _, root := range c.Roots {
		if !seen[root] {
			seen[root] = true
			queue = append(queue, root)
		}
	}
	for head := 0; head < len(queue); head++ {
		id := queue[head]
		checked++
		if g.Valence(id) == boosting.Unvalent {
			unvalent++
		}
		for e := range g.EdgesFrom(id) {
			if !seen[e.To] {
				seen[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	res, err := chk.Run(boosting.RunConfig{Inputs: map[int]string{0: "0", 1: "1"}})
	if err != nil {
		return result{}, err
	}
	fairErr := boosting.AuditFairness(chk.System(), res.Exec, 0)
	return result{
		id: "E21", artifact: "Lemma 3 + fairness",
		claim:    "every reachable failure-free state is bi- or univalent; the canonical schedule is fair",
		measured: fmt.Sprintf("%d states checked, %d unvalent; fairness audit: %s", checked, unvalent, errString(fairErr)),
		ok:       unvalent == 0 && fairErr == nil,
	}, nil
}
