package main

import "testing"

func TestRunVerifiesBoost(t *testing.T) {
	if err := run([]string{"-group", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadGroup(t *testing.T) {
	if err := run([]string{"-group", "0"}); err == nil {
		t.Error("want error for group size 0")
	}
}
