// Command setboost runs the Section 4 positive construction: wait-free
// 2n-process 2-set consensus built from two wait-free n-process consensus
// services, verified under every failure pattern.
//
// Usage:
//
//	setboost -group 2
//	setboost -group 2 -symmetry   # quotient exploration within each group
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/ioa-lab/boosting"
	"github.com/ioa-lab/boosting/internal/cliflags"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "setboost:", cliflags.Describe(err))
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("setboost", flag.ContinueOnError)
	group := fs.Int("group", 2, "group size n (total processes = 2n)")
	common := cliflags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts, err := common.Options()
	if err != nil {
		return err
	}
	n := *group
	chk, err := boosting.New("setboost", n, 0, opts...)
	if err != nil {
		return err
	}
	total := 2 * n
	fmt.Printf("Section 4 construction: %d processes, two wait-free %d-process consensus services.\n", total, n)
	fmt.Printf("Claim: wait-free (%d-resilient) 2-set consensus.\n\n", total-1)

	inputs := map[int]string{}
	for i := 0; i < total; i++ {
		if i%2 == 0 {
			inputs[i] = "0"
		} else {
			inputs[i] = "1"
		}
	}
	var sets [][]int
	var cfgs []boosting.RunConfig
	for bits := 0; bits < 1<<total; bits++ {
		var J []int
		for idx := 0; idx < total; idx++ {
			if bits&(1<<idx) != 0 {
				J = append(J, idx)
			}
		}
		if len(J) == total {
			continue
		}
		failures := make([]boosting.FailureEvent, len(J))
		for i, p := range J {
			failures[i] = boosting.FailureEvent{Round: 0, Proc: p}
		}
		sets = append(sets, J)
		cfgs = append(cfgs, boosting.RunConfig{Inputs: inputs, Failures: failures})
	}
	results, err := chk.RunBatch(cfgs)
	if err != nil {
		return err
	}
	for i, res := range results {
		run := boosting.ConsensusRun{Inputs: inputs, Failed: sets[i], Decisions: res.Decisions, Done: res.Done}
		if err := boosting.CheckKSetConsensus(run, 2); err != nil {
			return fmt.Errorf("failure set %v: %w", sets[i], err)
		}
	}
	fmt.Printf("verified k-agreement, validity and termination under %d failure patterns\n", len(results))
	fmt.Println("verdict: resilience BOOSTED — 2-set consensus escapes the impossibility")
	return nil
}
