package boosting_test

// Quotient-parity suite for symmetry-reduced exploration: for every
// registry protocol, the reduced analyses must reach exactly the verdicts
// of the unreduced ones — same refutation outcomes and certificate kinds,
// same initialization valences, same hook-vs-divergence result — and the
// reduced graph itself must stay identical across every store backend and
// worker count, like the unreduced one.

import (
	"testing"

	"github.com/ioa-lab/boosting"
)

// registryUnderTest enumerates every registry protocol with analysis
// parameters small enough for an exhaustive cross-product run.
func registryUnderTest() []struct {
	name    string
	n, f    int
	claimed int
	opts    []boosting.Option
} {
	detector := []boosting.Option{boosting.WithRounds(2), boosting.WithMaxRounds(500), boosting.WithMaxStates(5000)}
	return []struct {
		name    string
		n, f    int
		claimed int
		opts    []boosting.Option
	}{
		{"forward", 2, 0, 1, nil},
		{"forward", 3, 0, 1, nil},
		{"tob", 2, 0, 1, nil},
		{"registervote", 2, 0, 1, nil},
		{"setboost", 2, 0, 1, nil},
		{"floodset-p", 3, 0, 1, detector},
		{"fdboost", 3, 0, 2, detector},
		{"evperfect", 3, 0, 1, detector},
		{"suspectcollector", 3, 0, 1, detector},
	}
}

// verdict compresses a refutation report to its verdict content: violation
// flag, certificate kinds in order, init valences, and the hook outcome.
func verdict(r *boosting.Report) (out struct {
	violated  string
	inits     string
	hook      string
	certKinds string
}) {
	if r.Violated() {
		out.violated = "violated"
	} else {
		out.violated = "survived"
	}
	for _, c := range r.Certificates {
		out.certKinds += c.Kind.String() + ";"
	}
	if r.Inits != nil {
		for _, v := range r.Inits.Valences {
			out.inits += v.String() + ";"
		}
		out.inits += "bivalent=" + itoaTest(r.Inits.BivalentIndex)
	}
	switch {
	case r.HookSearch == nil:
		out.hook = "none"
	case r.HookSearch.Hook != nil:
		out.hook = "hook"
	case r.HookSearch.Divergence != nil:
		out.hook = "divergence"
	}
	return out
}

func itoaTest(v int) string {
	if v < 0 {
		return "-"
	}
	return string(rune('0' + v))
}

// TestQuotientParityVerdicts: Refute (and RefuteKSet on the set-consensus
// family) reaches identical verdicts with and without symmetry reduction,
// for every registry protocol, across store backends and worker counts.
func TestQuotientParityVerdicts(t *testing.T) {
	for _, p := range registryUnderTest() {
		base, err := boosting.New(p.name, p.n, p.f, append([]boosting.Option{boosting.WithWorkers(1)}, p.opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		want, err := base.Refute(p.claimed)
		if err != nil {
			t.Fatalf("%s unreduced: %v", p.name, err)
		}
		for _, s := range stores {
			for _, workers := range []int{1, 4} {
				if testing.Short() && (workers > 1 || s.store != boosting.DenseStore) {
					continue
				}
				opts := append([]boosting.Option{
					boosting.WithWorkers(workers), boosting.WithStore(s.store), boosting.WithSymmetry(),
				}, p.opts...)
				chk, err := boosting.New(p.name, p.n, p.f, opts...)
				if err != nil {
					t.Fatal(err)
				}
				got, err := chk.Refute(p.claimed)
				if err != nil {
					t.Fatalf("%s/%s w=%d reduced: %v", p.name, s.name, workers, err)
				}
				if gv, wv := verdict(got), verdict(want); gv != wv {
					t.Errorf("%s/%s w=%d: reduced verdict %+v, unreduced %+v", p.name, s.name, workers, gv, wv)
				}
			}
		}
	}

	// k-set boundary: the Section 4 construction survives its genuine k = 2
	// claim and loses k = 1, reduced exactly as unreduced.
	for _, k := range []int{1, 2} {
		base, err := boosting.New("setboost", 2, 0, boosting.WithWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		want, err := base.RefuteKSet(k, 3)
		if err != nil {
			t.Fatal(err)
		}
		chk, err := boosting.New("setboost", 2, 0, boosting.WithWorkers(1), boosting.WithSymmetry())
		if err != nil {
			t.Fatal(err)
		}
		got, err := chk.RefuteKSet(k, 3)
		if err != nil {
			t.Fatal(err)
		}
		if got.Violated() != want.Violated() {
			t.Errorf("k=%d: reduced violated=%v, unreduced %v", k, got.Violated(), want.Violated())
		}
	}
}

// TestQuotientGraphGolden pins the quotient sizes and asserts the reduced
// graph is identical — IDs, fingerprints, edges, valences — across every
// store backend and worker count, with init classifications preserved
// against the unreduced run.
func TestQuotientGraphGolden(t *testing.T) {
	golden := []struct {
		protocol      string
		n, f          int
		full          int // unreduced vertex count (the golden table)
		states, edges int // quotient
	}{
		{"forward", 2, 0, 66, 46, 130},
		{"forward", 3, 0, 410, 148, 630},
		{"forward", 4, 0, 2486, 385, 2190},
		{"tob", 2, 0, 308, 208, 862},
		{"registervote", 2, 0, 1416, 966, 3802},
		{"setboost", 2, 0, 2675, 1155, 6504},
	}
	for _, g := range golden {
		if testing.Short() && g.full > 2000 {
			continue
		}
		unred, err := boosting.New(g.protocol, g.n, g.f, boosting.WithWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		full, err := unred.ClassifyInits()
		if err != nil {
			t.Fatal(err)
		}
		if full.Graph.Size() != g.full {
			t.Fatalf("%s n=%d: unreduced %d states, want %d", g.protocol, g.n, full.Graph.Size(), g.full)
		}
		ref, err := boosting.New(g.protocol, g.n, g.f, boosting.WithWorkers(1), boosting.WithSymmetry())
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.ClassifyInits()
		if err != nil {
			t.Fatal(err)
		}
		if want.Graph.Size() != g.states || want.Graph.Edges() != g.edges {
			t.Errorf("%s n=%d reduced: %d states / %d edges, want %d / %d",
				g.protocol, g.n, want.Graph.Size(), want.Graph.Edges(), g.states, g.edges)
		}
		if want.Graph.Size() >= g.full {
			t.Errorf("%s n=%d: quotient (%d) not smaller than full graph (%d)",
				g.protocol, g.n, want.Graph.Size(), g.full)
		}
		// Verdict preservation against the unreduced classification.
		if want.BivalentIndex != full.BivalentIndex {
			t.Errorf("%s n=%d: reduced bivalent index %d, unreduced %d",
				g.protocol, g.n, want.BivalentIndex, full.BivalentIndex)
		}
		for i := range full.Valences {
			if want.Valences[i] != full.Valences[i] {
				t.Errorf("%s n=%d: reduced valence[%d] = %v, unreduced %v",
					g.protocol, g.n, i, want.Valences[i], full.Valences[i])
			}
		}
		// Store × engine identity of the quotient graph itself.
		for _, s := range stores {
			for _, workers := range []int{1, 4} {
				if s.store == boosting.DenseStore && workers == 1 {
					continue
				}
				if testing.Short() {
					continue
				}
				chk, err := boosting.New(g.protocol, g.n, g.f,
					boosting.WithStore(s.store), boosting.WithWorkers(workers), boosting.WithSymmetry())
				if err != nil {
					t.Fatal(err)
				}
				got, err := chk.ClassifyInits()
				if err != nil {
					t.Fatalf("%s/%s w=%d: %v", g.protocol, s.name, workers, err)
				}
				assertGraphsIdentical(t, g.protocol+"/sym/"+s.name, want.Graph, got.Graph)
				if got.BivalentIndex != want.BivalentIndex {
					t.Errorf("%s/sym/%s w=%d: bivalent index %d, want %d",
						g.protocol, s.name, workers, got.BivalentIndex, want.BivalentIndex)
				}
			}
		}
	}
}

// TestQuotientHookParity: the Fig. 3 construction reaches the same outcome
// kind (hook vs divergence) on the quotient graph as on the full graph.
func TestQuotientHookParity(t *testing.T) {
	for _, p := range []struct {
		name string
		n, f int
	}{
		{"forward", 2, 0}, {"forward", 3, 0}, {"tob", 2, 0},
	} {
		outcome := func(sym bool) string {
			opts := []boosting.Option{boosting.WithWorkers(1)}
			if sym {
				opts = append(opts, boosting.WithSymmetry())
			}
			chk, err := boosting.New(p.name, p.n, p.f, opts...)
			if err != nil {
				t.Fatal(err)
			}
			c, err := chk.ClassifyInits()
			if err != nil {
				t.Fatal(err)
			}
			if c.BivalentIndex < 0 {
				return "no-bivalent"
			}
			res, err := chk.FindHook(c.Graph, c.Roots[c.BivalentIndex])
			if err != nil {
				t.Fatal(err)
			}
			switch {
			case res.Hook != nil:
				return "hook"
			case res.Divergence != nil:
				return "divergence"
			}
			return "none"
		}
		if got, want := outcome(true), outcome(false); got != want {
			t.Errorf("%s n=%d: reduced hook outcome %q, unreduced %q", p.name, p.n, got, want)
		}
	}
}
