package process

import (
	"testing"
	"testing/quick"

	"github.com/ioa-lab/boosting/internal/ioa"
)

// echoProgram invokes service "k" with its input, then decides whatever the
// service responds. It is the Section 4 forwarding pattern in miniature.
type echoProgram struct{}

func (echoProgram) Start(id int) map[string]string { return map[string]string{"phase": "idle"} }

func (echoProgram) HandleInit(ctx *Context, v string) {
	ctx.Set("phase", "invoked")
	ctx.Invoke("k", "init("+v+")")
}

func (echoProgram) HandleResponse(ctx *Context, service, resp string) {
	if service != "k" || ctx.Decided() {
		return
	}
	ctx.Set("phase", "done")
	// resp is decide(v); forward v.
	ctx.Decide(resp[len("decide(") : len(resp)-1])
}

func TestInitQueuesInvocation(t *testing.T) {
	p := New(2, echoProgram{})
	st := p.InitialState()
	st = p.OnInit(st, "1")
	if st.Get("phase") != "invoked" {
		t.Errorf("phase: %q", st.Get("phase"))
	}
	act := p.Enabled(st)
	if act.Type != ioa.ActInvoke || act.Service != "k" || act.Payload != "init(1)" || act.Proc != 2 {
		t.Fatalf("enabled: %v", act)
	}
	st2, act2 := p.Step(st)
	if act2 != act {
		t.Errorf("Step action %v != Enabled action %v", act2, act)
	}
	if len(st2.Outbox) != 0 {
		t.Error("outbox not drained")
	}
}

func TestResponseLeadsToDecide(t *testing.T) {
	p := New(0, echoProgram{})
	st := p.InitialState()
	st = p.OnInit(st, "0")
	st, _ = p.Step(st)
	st = p.OnResponse(st, "k", "decide(0)")
	if !st.DecideQueued || st.HasDec {
		t.Fatalf("decide should be queued but not yet recorded: %+v", st)
	}
	st, act := p.Step(st)
	if act.Type != ioa.ActDecide || act.Payload != "0" {
		t.Fatalf("decide action: %v", act)
	}
	// The decision is recorded when the decide action is performed
	// (the paper's convention).
	if !st.HasDec || st.Decided != "0" {
		t.Fatalf("decision not recorded at emission: %+v", st)
	}
}

func TestDecideOnlyOnce(t *testing.T) {
	p := New(0, echoProgram{})
	st := p.InitialState()
	st = p.OnInit(st, "0")
	st, _ = p.Step(st)
	st = p.OnResponse(st, "k", "decide(0)")
	st = p.OnResponse(st, "k", "decide(1)")
	decides := 0
	for len(st.Outbox) > 0 {
		var act ioa.Action
		st, act = p.Step(st)
		if act.Type == ioa.ActDecide {
			decides++
		}
	}
	if decides != 1 {
		t.Errorf("decide emitted %d times", decides)
	}
	if st.Decided != "0" {
		t.Errorf("recorded decision %q, want first", st.Decided)
	}
}

func TestDummyWhenIdle(t *testing.T) {
	p := New(1, echoProgram{})
	st := p.InitialState()
	act := p.Enabled(st)
	if act.Type != ioa.ActProcDummy || act.Proc != 1 {
		t.Fatalf("idle enabled: %v", act)
	}
	st2, act2 := p.Step(st)
	if act2.Type != ioa.ActProcDummy {
		t.Fatalf("idle step: %v", act2)
	}
	if st2.Fingerprint() != st.Fingerprint() {
		t.Error("dummy step changed state")
	}
}

func TestFailDisablesOutputs(t *testing.T) {
	p := New(0, echoProgram{})
	st := p.InitialState()
	st = p.OnInit(st, "1")
	st = p.Fail(st)
	// Outbox non-empty, but failed: only the dummy action is enabled.
	act := p.Enabled(st)
	if act.Type != ioa.ActProcDummy {
		t.Fatalf("failed process enabled: %v", act)
	}
	// Inputs are still accepted (input-enabledness) but handlers do not run.
	before := st.Fingerprint()
	st = p.OnResponse(st, "k", "decide(1)")
	if st.Fingerprint() != before {
		t.Error("failed process ran a handler")
	}
	st = p.OnInit(st, "0")
	if st.Fingerprint() != before {
		t.Error("failed process reacted to init")
	}
}

func TestOutboxFIFO(t *testing.T) {
	prog := &multiInvoker{}
	p := New(0, prog)
	st := p.InitialState()
	st = p.OnInit(st, "x")
	var order []string
	for len(st.Outbox) > 0 {
		var act ioa.Action
		st, act = p.Step(st)
		order = append(order, act.Service)
	}
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Errorf("emission order: %v", order)
	}
}

type multiInvoker struct{}

func (*multiInvoker) Start(int) map[string]string { return nil }
func (*multiInvoker) HandleInit(ctx *Context, v string) {
	ctx.Invoke("a", "init(0)")
	ctx.Invoke("b", "init(0)")
	ctx.Invoke("c", "init(0)")
}
func (*multiInvoker) HandleResponse(*Context, string, string) {}

func TestStateImmutability(t *testing.T) {
	p := New(0, echoProgram{})
	st0 := p.InitialState()
	fp0 := st0.Fingerprint()
	st1 := p.OnInit(st0, "1")
	if st0.Fingerprint() != fp0 {
		t.Error("OnInit mutated source state")
	}
	st2, _ := p.Step(st1)
	if st1.Fingerprint() == st2.Fingerprint() {
		t.Error("Step produced identical state despite pending outbox")
	}
	// Divergent continuations do not interfere.
	st3 := p.OnResponse(st1, "k", "decide(1)")
	if len(st2.Outbox) != 0 {
		t.Errorf("sibling corrupted: %v", st2.Outbox)
	}
	_ = st3
}

func TestFingerprintSensitivity(t *testing.T) {
	p := New(0, echoProgram{})
	st := p.InitialState()
	a := p.OnInit(st, "0")
	b := p.OnInit(st, "1")
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("fingerprints collide for different inputs")
	}
	failed := p.Fail(st)
	if failed.Fingerprint() == st.Fingerprint() {
		t.Error("failure not reflected in fingerprint")
	}
}

func TestContextHelpers(t *testing.T) {
	ctx := &Context{id: 3, vars: map[string]string{}}
	if ctx.ID() != 3 {
		t.Error("ID")
	}
	ctx.SetInt("round", 7)
	if ctx.GetInt("round") != 7 {
		t.Error("SetInt/GetInt")
	}
	if ctx.GetInt("missing") != 0 {
		t.Error("GetInt default")
	}
	ctx.Set("s", "v")
	if ctx.Get("s") != "v" {
		t.Error("Set/Get")
	}
}

func TestVarNamesSorted(t *testing.T) {
	st := State{Vars: map[string]string{"b": "1", "a": "2", "c": "3"}}
	names := st.VarNames()
	if len(names) != 3 || names[0] != "a" || names[2] != "c" {
		t.Errorf("VarNames: %v", names)
	}
}

func TestHandlerReplayDeterminismProperty(t *testing.T) {
	// Property (Section 3.1 determinism): delivering the same event
	// sequence twice yields identical state fingerprints at every step.
	p := New(0, echoProgram{})
	f := func(events []byte) bool {
		if len(events) > 40 {
			events = events[:40]
		}
		run := func() string {
			st := p.InitialState()
			for _, e := range events {
				switch e % 4 {
				case 0:
					st = p.OnInit(st, "0")
				case 1:
					st = p.OnInit(st, "1")
				case 2:
					st = p.OnResponse(st, "k", "decide(1)")
				case 3:
					st, _ = p.Step(st)
				}
			}
			return st.Fingerprint()
		}
		return run() == run()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOutboxDrainsToEmptyProperty(t *testing.T) {
	// Property: stepping repeatedly always drains the outbox (no step can
	// grow it), and dummy steps are fixpoints.
	p := New(0, echoProgram{})
	f := func(nInits uint8) bool {
		st := p.InitialState()
		st = p.OnInit(st, "1")
		for i := 0; i < int(nInits)%5; i++ {
			st = p.OnInit(st, "0") // echoProgram re-invokes per init
		}
		prev := len(st.Outbox)
		for len(st.Outbox) > 0 {
			st, _ = p.Step(st)
			if len(st.Outbox) >= prev && prev != 0 && len(st.Outbox) != prev-1 {
				return false
			}
			prev = len(st.Outbox)
		}
		next, act := p.Step(st)
		return act.Type == ioa.ActProcDummy && next.Fingerprint() == st.Fingerprint()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
