// Package process implements the process automata P_i of the paper
// (Section 2.2.1) as deterministic, single-task I/O automata.
//
// A process receives inputs — init(v)_i from the external world, responses
// b_{i,c} from services, and fail_i — and controls output actions: service
// invocations a_{i,c} and external decide(v)_i actions. Per the paper:
//
//   - each process has exactly one task, comprising all its locally
//     controlled actions, and in every state some action of that task is
//     enabled (possibly a dummy action);
//   - after fail_i, no output action of P_i is ever enabled again, but some
//     locally controlled (dummy) action remains enabled;
//   - when P_i performs decide(v)_i it records v in its state (the technical
//     assumption used by the valence proofs).
//
// Protocol logic is supplied as a Program: pure, deterministic handlers that
// react to inputs by updating named variables and queueing outgoing actions.
// The process's single task drains the outgoing-action queue one action per
// step (or takes a dummy step when idle), which makes the whole automaton
// deterministic in the sense of Section 3.1: one transition per task per
// state.
package process

import (
	"sort"
	"strconv"

	"github.com/ioa-lab/boosting/internal/codec"
	"github.com/ioa-lab/boosting/internal/ioa"
)

// OutKind classifies a queued outgoing action.
type OutKind int

// Outgoing action kinds.
const (
	OutInvoke OutKind = iota + 1
	OutDecide
)

// Outgoing is a pending output action of a process: an invocation on a
// service or an external decide.
type Outgoing struct {
	Kind    OutKind
	Service string // service index for OutInvoke
	Payload string // invocation string, or decide value
}

func (o Outgoing) appendFingerprint(dst []byte) []byte {
	// Same bytes as codec.List([Itoa(Kind), Service, Payload]).
	dst = append(dst, '[')
	dst = codec.AppendInt(dst, int(o.Kind))
	dst = codec.AppendAtom(dst, o.Service)
	dst = codec.AppendAtom(dst, o.Payload)
	return append(dst, ']')
}

// State is a process automaton state: the program's named variables, the
// outgoing-action queue, the recorded decision, and status flags. States are
// immutable; transitions return fresh states.
type State struct {
	Vars    map[string]string
	Outbox  []Outgoing
	Decided string // recorded decision value; "" if none
	// HasDec is set when the decide(v) output action is performed — the
	// paper's convention for recording decisions in process state.
	HasDec bool
	// DecideQueued is set as soon as a decide is queued, so handlers cannot
	// queue a second one while the first awaits emission.
	DecideQueued bool
	Failed       bool
}

// Fingerprint returns the canonical encoding of the state.
func (st State) Fingerprint() string {
	return string(st.AppendFingerprint(nil))
}

// flagStrings indexes the canonical flag encoding by the bit combination
// HasDec | DecideQueued<<1 | Failed<<2, so flag rendering never allocates.
var flagStrings = [8]string{"", "d", "q", "dq", "f", "df", "qf", "dqf"}

func (st State) flags() string {
	i := 0
	if st.HasDec {
		i |= 1
	}
	if st.DecideQueued {
		i |= 2
	}
	if st.Failed {
		i |= 4
	}
	return flagStrings[i]
}

// AppendFingerprint appends the canonical encoding of the state to dst,
// byte-identical to Fingerprint. It is the hot-path form: exploration
// engines reuse one buffer across states and intern the result, so encoding
// a state allocates nothing beyond the variable-map key sort.
func (st State) AppendFingerprint(dst []byte) []byte {
	dst = append(dst, '[')
	dst = codec.AppendWrapped(dst, func(d []byte) []byte {
		return codec.AppendMap(d, st.Vars)
	})
	dst = codec.AppendWrapped(dst, st.appendOutbox)
	// The decision and flag atoms are encoded and then list-wrapped again,
	// matching codec.List over pre-encoded atom items.
	dst = codec.AppendWrapped(dst, func(d []byte) []byte {
		return codec.AppendAtom(d, st.Decided)
	})
	dst = codec.AppendWrapped(dst, func(d []byte) []byte {
		return codec.AppendAtom(d, st.flags())
	})
	return append(dst, ']')
}

func (st State) appendOutbox(dst []byte) []byte {
	dst = append(dst, '[')
	for _, o := range st.Outbox {
		dst = codec.AppendWrapped(dst, o.appendFingerprint)
	}
	return append(dst, ']')
}

// Get returns the value of a variable ("" if unset).
func (st State) Get(name string) string { return st.Vars[name] }

// Program is the protocol logic of a process: deterministic handlers over a
// Context. Handlers must be pure functions of (context state, event): no
// randomness, no shared mutable state, no I/O — this is the determinism
// restriction of Section 3.1, which the paper adopts w.l.o.g.
type Program interface {
	// Start returns the initial variable bindings of process id.
	Start(id int) map[string]string
	// HandleInit reacts to the external init(v) input.
	HandleInit(ctx *Context, v string)
	// HandleResponse reacts to a response from service c.
	HandleResponse(ctx *Context, service, resp string)
}

// Context is the mutable view handlers use to read/update variables and
// queue actions. It accumulates effects; the process applies them
// atomically as the effect of the input action.
type Context struct {
	id      int
	vars    map[string]string
	outbox  []Outgoing
	decided string
	hasDec  bool
}

// ID returns the process index i.
func (c *Context) ID() int { return c.id }

// Get returns the value of a variable ("" if unset).
func (c *Context) Get(name string) string { return c.vars[name] }

// GetInt returns a variable parsed as an int (0 if unset or malformed).
func (c *Context) GetInt(name string) int {
	v, err := strconv.Atoi(c.vars[name])
	if err != nil {
		return 0
	}
	return v
}

// Set assigns a variable.
func (c *Context) Set(name, value string) { c.vars[name] = value }

// SetInt assigns an integer variable.
func (c *Context) SetInt(name string, value int) { c.vars[name] = strconv.Itoa(value) }

// Decided reports whether the process has already recorded a decision.
func (c *Context) Decided() bool { return c.hasDec }

// Invoke queues an invocation on service c. Queued actions are emitted by
// the process task one per step, in FIFO order.
func (c *Context) Invoke(service, inv string) {
	c.outbox = append(c.outbox, Outgoing{Kind: OutInvoke, Service: service, Payload: inv})
}

// Decide queues the external decide(v) output. Only the first decide is
// recorded; later ones are dropped (the consensus interface decides once).
func (c *Context) Decide(v string) {
	if c.hasDec {
		return
	}
	c.outbox = append(c.outbox, Outgoing{Kind: OutDecide, Payload: v})
	c.hasDec = true
	c.decided = v
}

// Process is a deterministic process automaton wrapping a Program.
type Process struct {
	id   int
	prog Program
}

// New builds process P_i running the given program.
func New(id int, prog Program) *Process {
	return &Process{id: id, prog: prog}
}

// ID returns the process index.
func (p *Process) ID() int { return p.id }

// Task returns the process's single task.
func (p *Process) Task() ioa.Task { return ioa.ProcessTask(p.id) }

// InitialState returns the start state with the program's initial variables.
func (p *Process) InitialState() State {
	vars := p.prog.Start(p.id)
	if vars == nil {
		vars = map[string]string{}
	}
	return State{Vars: vars}
}

// context builds a Context seeded from st.
func (p *Process) context(st State) *Context {
	vars := make(map[string]string, len(st.Vars))
	for k, v := range st.Vars {
		vars[k] = v
	}
	outbox := make([]Outgoing, len(st.Outbox))
	copy(outbox, st.Outbox)
	return &Context{id: p.id, vars: vars, outbox: outbox, decided: st.Decided, hasDec: st.DecideQueued || st.HasDec}
}

// commit folds a Context back into a State. Queuing a decide only sets
// DecideQueued; the decision itself is recorded when the decide action is
// performed (the paper's convention, which the valence analyses rely on).
func (p *Process) commit(st State, ctx *Context) State {
	return State{
		Vars:         ctx.vars,
		Outbox:       ctx.outbox,
		Decided:      st.Decided,
		HasDec:       st.HasDec,
		DecideQueued: ctx.hasDec,
		Failed:       st.Failed,
	}
}

// OnInit applies the init(v)_i input action. Failed processes still accept
// inputs (input-enabledness) but their handlers do not run: a stopped
// process takes no protocol steps.
func (p *Process) OnInit(st State, v string) State {
	if st.Failed {
		return st
	}
	ctx := p.context(st)
	p.prog.HandleInit(ctx, v)
	return p.commit(st, ctx)
}

// OnResponse applies the b_{i,c} input action carrying a response from
// service c.
func (p *Process) OnResponse(st State, service, resp string) State {
	if st.Failed {
		return st
	}
	ctx := p.context(st)
	p.prog.HandleResponse(ctx, service, resp)
	return p.commit(st, ctx)
}

// Fail applies the fail_i input action: from here on no output action of the
// process is enabled.
func (p *Process) Fail(st State) State {
	return State{Vars: st.Vars, Outbox: st.Outbox, Decided: st.Decided, HasDec: st.HasDec, DecideQueued: st.DecideQueued, Failed: true}
}

// Enabled returns the action the process's single task would perform in st.
// It is always applicable: a failed or idle process takes a dummy step
// (the paper requires some locally controlled action to be enabled in every
// state).
func (p *Process) Enabled(st State) ioa.Action {
	if st.Failed || len(st.Outbox) == 0 {
		return ioa.Action{Type: ioa.ActProcDummy, Proc: p.id}
	}
	head := st.Outbox[0]
	switch head.Kind {
	case OutInvoke:
		return ioa.Action{Type: ioa.ActInvoke, Proc: p.id, Service: head.Service, Payload: head.Payload}
	case OutDecide:
		return ioa.Action{Type: ioa.ActDecide, Proc: p.id, Payload: head.Payload}
	default:
		return ioa.Action{Type: ioa.ActProcDummy, Proc: p.id}
	}
}

// Step runs the process task: emit the head of the outbox (recording the
// decision when the emitted action is a decide), or take a dummy step.
// The returned action matches Enabled(st).
func (p *Process) Step(st State) (State, ioa.Action) {
	act := p.Enabled(st)
	if act.Type == ioa.ActProcDummy {
		return st, act
	}
	rest := make([]Outgoing, len(st.Outbox)-1)
	copy(rest, st.Outbox[1:])
	next := State{Vars: st.Vars, Outbox: rest, Decided: st.Decided, HasDec: st.HasDec, DecideQueued: st.DecideQueued, Failed: st.Failed}
	if act.Type == ioa.ActDecide && !next.HasDec {
		next.Decided = act.Payload
		next.HasDec = true
	}
	return next, act
}

// VarNames returns the sorted variable names of a state (test helper).
func (st State) VarNames() []string {
	names := make([]string, 0, len(st.Vars))
	for k := range st.Vars {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
