package process

import (
	"fmt"

	"github.com/ioa-lab/boosting/internal/codec"
)

// This file is the decode face of the process state codec: ParseStatePrefix
// reconstructs a State from the canonical encoding AppendFingerprint
// produces. Decoding is strict — only canonical encodings are accepted
// (sorted maps, canonical flag atoms), so every accepted input re-encodes
// byte-identically (asserted by the round-trip and fuzz tests). The
// disk-spilling state store relies on this: spilled vertices are stored as
// their fingerprints and decoded on demand.

// ParseStatePrefix decodes one process state from the front of s, returning
// the state and the remainder of s. It errors (wrapping codec.ErrMalformed)
// on anything that is not a canonical process encoding.
func ParseStatePrefix(s string) (State, string, error) {
	if len(s) == 0 || s[0] != '[' {
		return State{}, "", fmt.Errorf("%w: process state must start with '['", codec.ErrMalformed)
	}
	varsEnc, rest, err := codec.ParseAtom(s[1:])
	if err != nil {
		return State{}, "", fmt.Errorf("process vars: %w", err)
	}
	outboxEnc, rest, err := codec.ParseAtom(rest)
	if err != nil {
		return State{}, "", fmt.Errorf("process outbox: %w", err)
	}
	decidedEnc, rest, err := codec.ParseAtom(rest)
	if err != nil {
		return State{}, "", fmt.Errorf("process decision: %w", err)
	}
	flagsEnc, rest, err := codec.ParseAtom(rest)
	if err != nil {
		return State{}, "", fmt.Errorf("process flags: %w", err)
	}
	if len(rest) == 0 || rest[0] != ']' {
		return State{}, "", fmt.Errorf("%w: process state must end with ']'", codec.ErrMalformed)
	}
	rest = rest[1:]

	vars, err := codec.ParseMapCanonical(varsEnc)
	if err != nil {
		return State{}, "", fmt.Errorf("process vars: %w", err)
	}
	outbox, err := parseOutbox(outboxEnc)
	if err != nil {
		return State{}, "", err
	}
	decided, err := parseAtomFull(decidedEnc)
	if err != nil {
		return State{}, "", fmt.Errorf("process decision: %w", err)
	}
	flags, err := parseAtomFull(flagsEnc)
	if err != nil {
		return State{}, "", fmt.Errorf("process flags: %w", err)
	}
	st := State{Vars: vars, Outbox: outbox, Decided: decided}
	for i := 0; i < len(flags); i++ {
		switch flags[i] {
		case 'd':
			st.HasDec = true
		case 'q':
			st.DecideQueued = true
		case 'f':
			st.Failed = true
		}
	}
	// Strictness: the flag atom must be the canonical rendering of the
	// decoded bits — anything else (unknown letters, wrong order,
	// duplicates) is not an encoding this package produced.
	if st.flags() != flags {
		return State{}, "", fmt.Errorf("%w: non-canonical process flags %q", codec.ErrMalformed, flags)
	}
	return st, rest, nil
}

// parseAtomFull decodes a single atom that must consume its entire input.
func parseAtomFull(s string) (string, error) {
	v, rest, err := codec.ParseAtom(s)
	if err != nil {
		return "", err
	}
	if rest != "" {
		return "", fmt.Errorf("%w: trailing input %q after atom", codec.ErrMalformed, rest)
	}
	return v, nil
}

// parseOutbox decodes the outgoing-action queue: a list whose items are the
// per-action encodings written by Outgoing.appendFingerprint.
func parseOutbox(enc string) ([]Outgoing, error) {
	items, err := codec.ParseList(enc)
	if err != nil {
		return nil, fmt.Errorf("process outbox: %w", err)
	}
	var out []Outgoing
	for _, it := range items {
		o, err := parseOutgoing(it)
		if err != nil {
			return nil, err
		}
		out = append(out, o)
	}
	return out, nil
}

// parseOutgoing decodes one queued action: [kind service payload].
func parseOutgoing(s string) (Outgoing, error) {
	if len(s) == 0 || s[0] != '[' {
		return Outgoing{}, fmt.Errorf("%w: outgoing action must start with '['", codec.ErrMalformed)
	}
	kind, rest, err := codec.ParseInt(s[1:])
	if err != nil {
		return Outgoing{}, fmt.Errorf("outgoing kind: %w", err)
	}
	if k := OutKind(kind); k != OutInvoke && k != OutDecide {
		return Outgoing{}, fmt.Errorf("%w: unknown outgoing kind %d", codec.ErrMalformed, kind)
	}
	service, rest, err := codec.ParseAtom(rest)
	if err != nil {
		return Outgoing{}, fmt.Errorf("outgoing service: %w", err)
	}
	payload, rest, err := codec.ParseAtom(rest)
	if err != nil {
		return Outgoing{}, fmt.Errorf("outgoing payload: %w", err)
	}
	if rest != "]" {
		return Outgoing{}, fmt.Errorf("%w: outgoing action must end with ']'", codec.ErrMalformed)
	}
	return Outgoing{Kind: OutKind(kind), Service: service, Payload: payload}, nil
}
