package process

import (
	"errors"
	"testing"

	"github.com/ioa-lab/boosting/internal/codec"
)

// decodeStates is a spread of process states covering every encoded field:
// empty and populated vars, queued invocations and decides, recorded
// decisions, and all flag combinations.
func decodeStates() []State {
	return []State{
		{Vars: map[string]string{}},
		{Vars: map[string]string{"x": "1", "round": "3", "": "empty-key"}},
		{Vars: map[string]string{"v": ""}, Outbox: []Outgoing{
			{Kind: OutInvoke, Service: "k0", Payload: "init:1"},
			{Kind: OutDecide, Payload: "0"},
		}},
		{Vars: map[string]string{"v": "1"}, Decided: "1", HasDec: true},
		{Vars: map[string]string{}, DecideQueued: true},
		{Vars: map[string]string{}, Failed: true},
		{Vars: map[string]string{"a": "b"}, Decided: "0", HasDec: true, DecideQueued: true, Failed: true},
	}
}

// TestParseStatePrefixRoundTrip: decode(encode(st)) re-encodes
// byte-identically for every field combination, including with trailing
// input left untouched.
func TestParseStatePrefixRoundTrip(t *testing.T) {
	for i, st := range decodeStates() {
		enc := st.Fingerprint()
		got, rest, err := ParseStatePrefix(enc + "TRAILER")
		if err != nil {
			t.Fatalf("state %d: %v", i, err)
		}
		if rest != "TRAILER" {
			t.Fatalf("state %d: remainder %q", i, rest)
		}
		if re := got.Fingerprint(); re != enc {
			t.Errorf("state %d round trip:\n%q\n%q", i, enc, re)
		}
		if got.HasDec != st.HasDec || got.DecideQueued != st.DecideQueued || got.Failed != st.Failed {
			t.Errorf("state %d: flags (%v,%v,%v), want (%v,%v,%v)", i,
				got.HasDec, got.DecideQueued, got.Failed, st.HasDec, st.DecideQueued, st.Failed)
		}
		if got.Decided != st.Decided {
			t.Errorf("state %d: decided %q, want %q", i, got.Decided, st.Decided)
		}
	}
}

// TestParseStatePrefixMalformed: truncations, wrong delimiters, unknown
// outgoing kinds and non-canonical flags all error with codec.ErrMalformed
// instead of panicking or mis-decoding.
func TestParseStatePrefixMalformed(t *testing.T) {
	good := (State{Vars: map[string]string{"x": "1"}, Outbox: []Outgoing{{Kind: OutInvoke, Service: "k0", Payload: "p"}}}).Fingerprint()
	bad := []string{
		"",
		"x" + good,
		good[:1],
		good[:len(good)-1],
		good[1:],
		"[2:<>]",
		// Unknown outgoing kind 9 in an otherwise canonical outbox.
		(func() string {
			st := State{Vars: map[string]string{}, Outbox: []Outgoing{{Kind: OutKind(9), Payload: "p"}}}
			return st.Fingerprint()
		})(),
		// Non-canonical flag atom ("fd" instead of "df").
		"[2:<>2:[]1:02:fd]",
		// Well-formed vars map with keys out of canonical order: b before a.
		"[18:<(1:b1:2)(1:a1:1)>2:[]0:0:]",
		// Well-formed vars map with a duplicate key.
		"[18:<(1:a1:1)(1:a1:2)>2:[]0:0:]",
	}
	for i, s := range bad {
		if _, _, err := ParseStatePrefix(s); !errors.Is(err, codec.ErrMalformed) {
			t.Errorf("input %d (%q): error %v, want ErrMalformed", i, s, err)
		}
	}
}
