package servicetype

import (
	"reflect"
	"testing"
	"testing/quick"

	"github.com/ioa-lab/boosting/internal/codec"
	"github.com/ioa-lab/boosting/internal/seqtype"
)

func TestFromSequentialShape(t *testing.T) {
	u := FromSequential(seqtype.BinaryConsensus())
	if u.Class != Atomic {
		t.Errorf("class: %v", u.Class)
	}
	if len(u.Glob) != 0 {
		t.Errorf("atomic object must have no global tasks, got %v", u.Glob)
	}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	rm, nv := u.Delta1(seqtype.Init("1"), 2, "", codec.NewIntSet())
	if nv != "1" {
		t.Errorf("new value: %q", nv)
	}
	if !reflect.DeepEqual(rm, Single(2, seqtype.Decide("1"))) {
		t.Errorf("response map: %v", rm)
	}
}

func TestFromSequentialRespondsOnlyToInvoker(t *testing.T) {
	u := FromSequential(seqtype.ReadWrite([]string{"a", "b"}, "a"))
	rm, _ := u.Delta1(seqtype.Read, 1, "a", codec.NewIntSet())
	eps := rm.Endpoints()
	if len(eps) != 1 || eps[0] != 1 {
		t.Errorf("endpoints with responses: %v", eps)
	}
}

func TestValidateDetectsFailureAwareness(t *testing.T) {
	u := &Type{
		Name:    "sneaky",
		Class:   FailureOblivious,
		Initial: "",
		IsInv:   func(inv string) bool { return inv == "op" },
		Delta1: func(inv string, endpoint int, val string, failed codec.IntSet) (ResponseMap, string) {
			if failed.Len() > 0 {
				return Single(endpoint, "failures-seen"), val
			}
			return Single(endpoint, "clean"), val
		},
		SampleInvs: []string{"op"},
	}
	if err := u.Validate(); err == nil {
		t.Error("want failure-awareness error")
	}
}

func TestValidateAcceptsGeneralFailureAwareness(t *testing.T) {
	u := PerfectFD([]int{0, 1, 2})
	if err := u.Validate(); err != nil {
		t.Errorf("perfect FD should validate: %v", err)
	}
}

func TestResponseMapHelpers(t *testing.T) {
	m := Broadcast([]int{2, 0, 1}, "x")
	if got := m.Endpoints(); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("Endpoints: %v", got)
	}
	if got := m.Responses(1); !reflect.DeepEqual(got, []string{"x"}) {
		t.Errorf("Responses: %v", got)
	}
	if m.Responses(9) != nil {
		t.Error("Responses for absent endpoint should be nil")
	}
}

func TestTOBDelta1AppendsToMsgs(t *testing.T) {
	u := TotallyOrderedBroadcast([]int{0, 1})
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	rm, nv := u.Delta1(Bcast("hello"), 1, u.Initial, codec.NewIntSet())
	if len(rm) != 0 {
		t.Errorf("bcast must produce no immediate responses, got %v", rm)
	}
	msgs, err := codec.ParseList(nv)
	if err != nil || len(msgs) != 1 {
		t.Fatalf("msgs after bcast: %v %v", msgs, err)
	}
	m, snd, err := codec.ParsePair(msgs[0])
	if err != nil || m != "hello" || snd != "1" {
		t.Errorf("entry: %q %q %v", m, snd, err)
	}
}

func TestTOBDelta2DeliversToAll(t *testing.T) {
	u := TotallyOrderedBroadcast([]int{0, 1, 2})
	_, nv := u.Delta1(Bcast("m"), 0, u.Initial, codec.NewIntSet())
	rm, nv2 := u.Delta2(TOBGlobalTask, nv, codec.NewIntSet())
	if got := rm.Endpoints(); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("delivery endpoints: %v", got)
	}
	for _, i := range []int{0, 1, 2} {
		msg, sender, ok := RcvParts(rm.Responses(i)[0])
		if !ok || msg != "m" || sender != 0 {
			t.Errorf("rcv at %d: %q %d %v", i, msg, sender, ok)
		}
	}
	if msgs, _ := codec.ParseList(nv2); len(msgs) != 0 {
		t.Errorf("msgs not drained: %v", msgs)
	}
}

func TestTOBDelta2EmptyIsNoop(t *testing.T) {
	u := TotallyOrderedBroadcast([]int{0, 1})
	rm, nv := u.Delta2(TOBGlobalTask, u.Initial, codec.NewIntSet())
	if len(rm) != 0 || nv != u.Initial {
		t.Errorf("empty compute must be a no-op: %v %q", rm, nv)
	}
}

func TestTOBPreservesOrder(t *testing.T) {
	u := TotallyOrderedBroadcast([]int{0, 1})
	val := u.Initial
	for _, m := range []string{"a", "b", "c"} {
		_, val = u.Delta1(Bcast(m), 0, val, codec.NewIntSet())
	}
	var delivered []string
	for i := 0; i < 3; i++ {
		rm, nv := u.Delta2(TOBGlobalTask, val, codec.NewIntSet())
		val = nv
		m, _, ok := RcvParts(rm.Responses(1)[0])
		if !ok {
			t.Fatal("bad rcv")
		}
		delivered = append(delivered, m)
	}
	if !reflect.DeepEqual(delivered, []string{"a", "b", "c"}) {
		t.Errorf("delivery order: %v", delivered)
	}
}

func TestTOBIsFailureOblivious(t *testing.T) {
	u := TotallyOrderedBroadcast([]int{0, 1})
	if u.Class != FailureOblivious {
		t.Fatalf("class: %v", u.Class)
	}
	// Same step with and without failures must coincide.
	_, nv1 := u.Delta1(Bcast("m"), 0, u.Initial, codec.NewIntSet())
	_, nv2 := u.Delta1(Bcast("m"), 0, u.Initial, codec.NewIntSet(0, 1))
	if nv1 != nv2 {
		t.Error("TOB δ1 depends on failures")
	}
}

func TestRcvPartsRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"", "rcv", "rcvxx", "suspect{}", Bcast("m")} {
		if _, _, ok := RcvParts(bad); ok {
			t.Errorf("RcvParts accepted %q", bad)
		}
	}
}

func TestPerfectFDReportsExactlyFailed(t *testing.T) {
	u := PerfectFD([]int{0, 1, 2})
	failed := codec.NewIntSet(2)
	rm, nv := u.Delta2("fd0", "", failed)
	if nv != "" {
		t.Errorf("P must keep trivial value, got %q", nv)
	}
	set, ok := SuspectSet(rm.Responses(0)[0])
	if !ok || !set.Equal(failed) {
		t.Errorf("suspected: %v (ok=%v), want %v", set, ok, failed)
	}
	if len(rm.Endpoints()) != 1 {
		t.Errorf("response fan-out: %v", rm.Endpoints())
	}
}

func TestPerfectFDAccuracy(t *testing.T) {
	// Accuracy: the suspect set is always a subset of the failed set.
	u := PerfectFD([]int{0, 1, 2, 3})
	for _, failed := range []codec.IntSet{codec.NewIntSet(), codec.NewIntSet(1), codec.NewIntSet(0, 3)} {
		for _, g := range u.Glob {
			rm, _ := u.Delta2(g, "", failed)
			for _, i := range rm.Endpoints() {
				set, ok := SuspectSet(rm.Responses(i)[0])
				if !ok || !set.SubsetOf(failed) {
					t.Errorf("inaccurate suspicion %v with failed %v", set, failed)
				}
			}
		}
	}
}

func TestPerfectFDHasNoInvocations(t *testing.T) {
	u := PerfectFD([]int{0, 1})
	if u.IsInv("anything") || u.IsInv("") {
		t.Error("failure detectors must have empty invs")
	}
}

func TestEventuallyPerfectFDStabilizes(t *testing.T) {
	u := EventuallyPerfectFD([]int{0, 1, 2})
	failed := codec.NewIntSet(1)

	// Imperfect mode: suspicions are arbitrary (here: everyone else).
	rm, _ := u.Delta2("fd0", ModeImperfect, failed)
	set, ok := SuspectSet(rm.Responses(0)[0])
	if !ok || !set.Equal(codec.NewIntSet(1, 2)) {
		t.Errorf("imperfect suspicion: %v", set)
	}

	// The background task flips the mode.
	_, nv := u.Delta2(EvPerfectStabilizeTask, ModeImperfect, failed)
	if nv != ModePerfect {
		t.Fatalf("mode after g: %q", nv)
	}

	// Perfect mode: suspicions are exactly the failed set.
	rm, _ = u.Delta2("fd2", ModePerfect, failed)
	set, ok = SuspectSet(rm.Responses(2)[0])
	if !ok || !set.Equal(failed) {
		t.Errorf("perfect suspicion: %v", set)
	}
}

func TestEventuallyPerfectFDModeIsSticky(t *testing.T) {
	u := EventuallyPerfectFD([]int{0, 1})
	_, nv := u.Delta2(EvPerfectStabilizeTask, ModePerfect, codec.NewIntSet())
	if nv != ModePerfect {
		t.Errorf("mode regressed: %q", nv)
	}
}

func TestSuspectRoundTrip(t *testing.T) {
	s := codec.NewIntSet(0, 5)
	got, ok := SuspectSet(Suspect(s))
	if !ok || !got.Equal(s) {
		t.Errorf("round trip: %v %v", got, ok)
	}
	if _, ok := SuspectSet("rcv(x)"); ok {
		t.Error("SuspectSet accepted rcv")
	}
}

func TestClassStrings(t *testing.T) {
	if Atomic.String() != "atomic" || FailureOblivious.String() != "failure-oblivious" || General.String() != "general" {
		t.Error("class strings wrong")
	}
}

func TestValidateRejectsBadClass(t *testing.T) {
	u := &Type{Name: "none"}
	if err := u.Validate(); err == nil {
		t.Error("want class error")
	}
}

func TestFromSequentialMatchesSeqTypeProperty(t *testing.T) {
	// Property: the atomic embedding agrees with the sequential type on
	// every (invocation, value) pair — same response (to the invoker only)
	// and same new value.
	seq := seqtype.Counter()
	u := FromSequential(seq)
	f := func(ops []byte, endpoint uint8) bool {
		if len(ops) > 30 {
			ops = ops[:30]
		}
		val := seq.Initials[0]
		for _, b := range ops {
			inv := "inc"
			if b%2 == 0 {
				inv = seqtype.Read
			}
			want, err := seq.ApplyOne(inv, val)
			if err != nil {
				return false
			}
			ep := int(endpoint % 4)
			rm, nv := u.Delta1(inv, ep, val, codec.NewIntSet())
			if nv != want.NewVal {
				return false
			}
			rs := rm.Responses(ep)
			if len(rs) != 1 || rs[0] != want.Resp {
				return false
			}
			if len(rm.Endpoints()) != 1 {
				return false
			}
			val = nv
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTOBBroadcastDeliveryCountProperty(t *testing.T) {
	// Property: after b broadcasts and b compute steps, every endpoint has
	// received exactly b deliveries, in broadcast order.
	u := TotallyOrderedBroadcast([]int{0, 1, 2})
	f := func(msgs []byte) bool {
		if len(msgs) > 15 {
			msgs = msgs[:15]
		}
		val := u.Initial
		for i, m := range msgs {
			_, val = u.Delta1(Bcast(string(rune('a'+m%26))), i%3, val, codec.NewIntSet())
		}
		delivered := map[int][]string{}
		for range msgs {
			rm, nv := u.Delta2(TOBGlobalTask, val, codec.NewIntSet())
			val = nv
			for _, ep := range rm.Endpoints() {
				delivered[ep] = append(delivered[ep], rm.Responses(ep)...)
			}
		}
		for _, ep := range []int{0, 1, 2} {
			if len(delivered[ep]) != len(msgs) {
				return false
			}
			for i := range delivered[ep] {
				if delivered[ep][i] != delivered[0][i] {
					return false
				}
			}
		}
		// Queue fully drained.
		rm, _ := u.Delta2(TOBGlobalTask, val, codec.NewIntSet())
		return len(rm) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
