// Package servicetype implements service types, the behavioural
// specifications behind canonical services (paper Sections 5.1 and 6.1).
//
// A service type U = ⟨V, V0, invs, resps, glob, δ1, δ2⟩ generalizes a
// sequential type: δ1 handles perform steps (an invocation at an endpoint may
// produce responses at any set of endpoints), and δ2 handles spontaneous
// compute steps driven by global tasks. General (failure-aware) service types
// additionally see the current failed set in δ1 and δ2 (Fig. 8); atomic and
// failure-oblivious types must ignore it.
//
// Following the determinism restriction of Section 3.1 (which the paper
// adopts without loss of generality for its proofs), δ1 and δ2 are
// represented as functions and V0 as a single initial value.
package servicetype

import (
	"errors"
	"fmt"
	"sort"
	"strconv"

	"github.com/ioa-lab/boosting/internal/codec"
	"github.com/ioa-lab/boosting/internal/seqtype"
)

// Class places a service type in the paper's hierarchy (Sections 2.1.3, 5.1,
// 6.1). The hierarchy is strict: every atomic object is a failure-oblivious
// service, and every failure-oblivious service is a general service.
type Class int

// Service classes.
const (
	// Atomic: a canonical atomic object (Fig. 1) — derived from a sequential
	// type; one response, to the invoking endpoint; no global tasks.
	Atomic Class = iota + 1
	// FailureOblivious: a canonical failure-oblivious service (Fig. 4) —
	// arbitrary response fan-out and compute steps, but no step may depend
	// on failure events.
	FailureOblivious
	// General: a canonical general, possibly failure-aware, service
	// (Fig. 8) — δ1 and δ2 may consult the failed set.
	General
)

// String renders the class.
func (c Class) String() string {
	switch c {
	case Atomic:
		return "atomic"
	case FailureOblivious:
		return "failure-oblivious"
	case General:
		return "general"
	default:
		return "class(" + strconv.Itoa(int(c)) + ")"
	}
}

// ResponseMap maps endpoints to the finite sequences of responses that a
// perform or compute step appends to the corresponding response buffers.
type ResponseMap map[int][]string

// Responses returns the responses for endpoint i (nil if none).
func (m ResponseMap) Responses(i int) []string { return m[i] }

// Endpoints returns the endpoints with at least one response, ascending.
func (m ResponseMap) Endpoints() []int {
	out := make([]int, 0, len(m))
	for i, rs := range m {
		if len(rs) > 0 {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

// Single returns a ResponseMap carrying one response to one endpoint — the
// shape every atomic-object perform step has.
func Single(endpoint int, resp string) ResponseMap {
	return ResponseMap{endpoint: {resp}}
}

// Broadcast returns a ResponseMap carrying the same response to every
// endpoint in J.
func Broadcast(endpoints []int, resp string) ResponseMap {
	m := make(ResponseMap, len(endpoints))
	for _, i := range endpoints {
		m[i] = []string{resp}
	}
	return m
}

// Type is a (deterministically restricted) service type U.
type Type struct {
	// Name identifies the type.
	Name string

	// Class is the position in the atomic / failure-oblivious / general
	// hierarchy. For Atomic and FailureOblivious types, Delta1 and Delta2
	// must ignore the failed argument.
	Class Class

	// Initial is the single initial value (V0 after the determinism
	// restriction).
	Initial string

	// IsInv reports whether a string is an invocation of the type. Failure
	// detectors have no invocations (IsInv always false).
	IsInv func(inv string) bool

	// Glob lists the global task names.
	Glob []string

	// Delta1 is δ1, applied by perform steps: given the invocation at the
	// head of endpoint's inv-buffer, the current value, and (for General
	// types) the failed set, it returns the responses to append and the new
	// value. It must be total over invocations × values.
	Delta1 func(inv string, endpoint int, val string, failed codec.IntSet) (ResponseMap, string)

	// Delta2 is δ2, applied by compute steps of global task g. It must be
	// total: it always returns a (possibly empty) response map and new value.
	Delta2 func(g string, val string, failed codec.IntSet) (ResponseMap, string)

	// Seq is the originating sequential type when the service type was
	// derived by FromSequential; nil otherwise.
	Seq *seqtype.Type

	// SampleVals and SampleInvs are probes for Validate and property tests.
	SampleVals []string
	SampleInvs []string
}

// Validation errors.
var (
	ErrNoDelta      = errors.New("servicetype: missing transition function")
	ErrFailureAware = errors.New("servicetype: non-general type consults the failed set")
	ErrBadClass     = errors.New("servicetype: invalid class")
)

// Validate checks structural requirements: transition functions present
// where needed, and — for Atomic and FailureOblivious types — failure
// obliviousness, probed by comparing outcomes across different failed sets
// on the sample values and invocations.
func (t *Type) Validate() error {
	switch t.Class {
	case Atomic, FailureOblivious, General:
	default:
		return fmt.Errorf("%w: %d (type %s)", ErrBadClass, int(t.Class), t.Name)
	}
	if t.Delta1 == nil && len(t.SampleInvs) > 0 {
		return fmt.Errorf("%w: δ1 (type %s)", ErrNoDelta, t.Name)
	}
	if t.Delta2 == nil && len(t.Glob) > 0 {
		return fmt.Errorf("%w: δ2 (type %s)", ErrNoDelta, t.Name)
	}
	if t.Class == General {
		return nil
	}
	// Probe failure obliviousness: outcomes must not vary with failed.
	failedSets := []codec.IntSet{codec.NewIntSet(), codec.NewIntSet(0), codec.NewIntSet(0, 1, 2)}
	vals := append([]string{t.Initial}, t.SampleVals...)
	for _, inv := range t.SampleInvs {
		for _, v := range vals {
			rm0, nv0 := t.Delta1(inv, 0, v, failedSets[0])
			for _, fs := range failedSets[1:] {
				rm, nv := t.Delta1(inv, 0, v, fs)
				if nv != nv0 || !responseMapsEqual(rm, rm0) {
					return fmt.Errorf("%w: δ1(%q, %q) (type %s)", ErrFailureAware, inv, v, t.Name)
				}
			}
		}
	}
	for _, g := range t.Glob {
		for _, v := range vals {
			rm0, nv0 := t.Delta2(g, v, failedSets[0])
			for _, fs := range failedSets[1:] {
				rm, nv := t.Delta2(g, v, fs)
				if nv != nv0 || !responseMapsEqual(rm, rm0) {
					return fmt.Errorf("%w: δ2(%q, %q) (type %s)", ErrFailureAware, g, v, t.Name)
				}
			}
		}
	}
	return nil
}

func responseMapsEqual(a, b ResponseMap) bool {
	if len(a) != len(b) {
		// Normalize: empty slices count as absent.
		return normalizedLen(a) == normalizedLen(b) && subsumes(a, b) && subsumes(b, a)
	}
	return subsumes(a, b) && subsumes(b, a)
}

func normalizedLen(m ResponseMap) int {
	n := 0
	for _, rs := range m {
		if len(rs) > 0 {
			n++
		}
	}
	return n
}

func subsumes(a, b ResponseMap) bool {
	for i, rs := range a {
		os := b[i]
		if len(rs) != len(os) {
			return false
		}
		for j := range rs {
			if rs[j] != os[j] {
				return false
			}
		}
	}
	return true
}

// FromSequential embeds a sequential type T as an atomic service type
// (paper Section 5.1): glob = ∅, δ2 empty, and δ1(a, i, v) produces the
// single δ-response to endpoint i. The determinism restriction resolves any
// nondeterminism in T via seqtype.ApplyOne.
func FromSequential(seq *seqtype.Type) *Type {
	return &Type{
		Name:    seq.Name,
		Class:   Atomic,
		Initial: seq.Initials[0],
		IsInv:   seq.IsInv,
		Delta1: func(inv string, endpoint int, val string, _ codec.IntSet) (ResponseMap, string) {
			r, err := seq.ApplyOne(inv, val)
			if err != nil {
				// δ is total on invocations of the type; a miss means the
				// invocation was not validated upstream. Leave the value
				// unchanged and respond with an explicit error marker rather
				// than dropping the operation silently.
				return Single(endpoint, "error(bad-invocation)"), val
			}
			return Single(endpoint, r.Resp), r.NewVal
		},
		Seq:        seq,
		SampleVals: seq.SampleVals,
		SampleInvs: seq.SampleInvs,
	}
}
