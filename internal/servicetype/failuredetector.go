package servicetype

import (
	"strconv"

	"github.com/ioa-lab/boosting/internal/codec"
)

// Failure detectors (paper Section 6.2, Figs. 9–11), modelled as general
// (failure-aware) service types. As the paper notes, these automaton-based
// detectors react only to the *order* of failures, not their timing — the
// "time-independent" subset of realistic failure detectors.
//
// Failure detector types have no invocations: their only inputs are fail
// actions, and their responses are suspect(J′) reports pushed to endpoints
// by global compute tasks.

// Suspect builds a suspect(J′) response carrying the suspected set.
func Suspect(suspected codec.IntSet) string {
	return "suspect" + suspected.Fingerprint()
}

// SuspectSet decodes a suspect response into the suspected set.
func SuspectSet(resp string) (codec.IntSet, bool) {
	const prefix = "suspect"
	if len(resp) < len(prefix) || resp[:len(prefix)] != prefix {
		return codec.IntSet{}, false
	}
	s, err := codec.ParseIntSet(resp[len(prefix):])
	if err != nil {
		return codec.IntSet{}, false
	}
	return s, true
}

// PerfectFD returns the perfect failure detector P for the given endpoint
// set (Fig. 9): V is the trivial singleton; glob contains one task per
// endpoint; δ2(i, v̄, failed) appends suspect(failed) to endpoint i's
// response buffer. Suspicions are therefore always accurate (only failed
// processes are suspected) and, under fairness, complete (each failed
// process is eventually reported to every live endpoint).
func PerfectFD(endpoints []int) *Type {
	glob := make([]string, len(endpoints))
	byTask := make(map[string]int, len(endpoints))
	for idx, i := range endpoints {
		name := "fd" + strconv.Itoa(i)
		glob[idx] = name
		byTask[name] = i
	}
	return &Type{
		Name:    "perfect-fd",
		Class:   General,
		Initial: "",
		IsInv:   func(string) bool { return false },
		Glob:    glob,
		Delta2: func(g string, val string, failed codec.IntSet) (ResponseMap, string) {
			i, ok := byTask[g]
			if !ok {
				return nil, val
			}
			return Single(i, Suspect(failed)), val
		},
	}
}

// Mode values of the eventually perfect failure detector (Fig. 10).
const (
	ModeImperfect = "imperfect"
	ModePerfect   = "perfect"
)

// EvPerfectStabilizeTask is the special global task g of ◇P that flips mode
// from imperfect to perfect (Fig. 11's "background task").
const EvPerfectStabilizeTask = "g"

// EventuallyPerfectFD returns the eventually perfect failure detector ◇P for
// the given endpoint set (Figs. 10–11): V holds a mode ∈ {imperfect,
// perfect}, initially imperfect. While imperfect, per-endpoint tasks may
// report arbitrary suspicions — our deterministic restriction reports the
// maximally wrong "suspect everyone else". After the background task g fires,
// mode is perfect and reports equal the actual failed set. Fairness
// guarantees g eventually fires, so suspicions eventually become recent and
// accurate.
func EventuallyPerfectFD(endpoints []int) *Type {
	glob := make([]string, 0, len(endpoints)+1)
	byTask := make(map[string]int, len(endpoints))
	all := codec.NewIntSet(endpoints...)
	for _, i := range endpoints {
		name := "fd" + strconv.Itoa(i)
		glob = append(glob, name)
		byTask[name] = i
	}
	glob = append(glob, EvPerfectStabilizeTask)
	return &Type{
		Name:    "eventually-perfect-fd",
		Class:   General,
		Initial: ModeImperfect,
		IsInv:   func(string) bool { return false },
		Glob:    glob,
		Delta2: func(g string, val string, failed codec.IntSet) (ResponseMap, string) {
			if g == EvPerfectStabilizeTask {
				return nil, ModePerfect
			}
			i, ok := byTask[g]
			if !ok {
				return nil, val
			}
			if val == ModePerfect {
				return Single(i, Suspect(failed)), val
			}
			// Imperfect mode: arbitrary (here: everyone but the endpoint).
			return Single(i, Suspect(all.Without(i))), val
		},
	}
}
