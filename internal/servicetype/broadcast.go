package servicetype

import (
	"strconv"

	"github.com/ioa-lab/boosting/internal/codec"
)

// Totally ordered broadcast (paper Section 5.2, Figs. 5–7).
//
// The value is the msgs queue of (message, sender) pairs that have been
// totally ordered but not yet delivered. δ1 processes a bcast(m) invocation
// from endpoint i by appending (m, i) to msgs and producing no responses.
// δ2, driven by the single global task g, pops the head of msgs and appends
// rcv(m, i) to the response buffer of every endpoint.

// TOBGlobalTask is the single global task name of the totally ordered
// broadcast type (the paper's glob = {g}).
const TOBGlobalTask = "g"

// Bcast builds a bcast(m) invocation.
func Bcast(m string) string { return "bcast(" + m + ")" }

// Rcv builds an rcv(m, i) response: the receipt of message m from sender i.
func Rcv(m string, sender int) string {
	return "rcv" + codec.Pair(m, strconv.Itoa(sender))
}

// RcvParts decodes an rcv response into message and sender.
func RcvParts(resp string) (m string, sender int, ok bool) {
	const prefix = "rcv"
	if len(resp) <= len(prefix) || resp[:len(prefix)] != prefix {
		return "", 0, false
	}
	a, b, err := codec.ParsePair(resp[len(prefix):])
	if err != nil {
		return "", 0, false
	}
	s, err2 := strconv.Atoi(b)
	if err2 != nil {
		return "", 0, false
	}
	return a, s, true
}

// BcastMessage extracts m from a bcast(m) invocation.
func BcastMessage(inv string) (string, bool) {
	const prefix, suffix = "bcast(", ")"
	if len(inv) < len(prefix)+len(suffix) || inv[:len(prefix)] != prefix || inv[len(inv)-1] != ')' {
		return "", false
	}
	return inv[len(prefix) : len(inv)-1], true
}

// TotallyOrderedBroadcast returns the totally-ordered-broadcast service type
// for the given endpoint set. It is failure-oblivious: neither δ1 nor δ2
// consults the failed set. The paper uses it as the leading example of a
// service that is *not* an atomic object (one invocation triggers many
// responses) yet is covered by Theorem 9.
func TotallyOrderedBroadcast(endpoints []int) *Type {
	eps := append([]int{}, endpoints...)
	return &Type{
		Name:    "totally-ordered-broadcast",
		Class:   FailureOblivious,
		Initial: codec.List(nil),
		IsInv: func(inv string) bool {
			_, ok := BcastMessage(inv)
			return ok
		},
		Glob: []string{TOBGlobalTask},
		// Fig. 6: append (m, i) to msgs; B(j) empty for all j.
		Delta1: func(inv string, endpoint int, val string, _ codec.IntSet) (ResponseMap, string) {
			m, ok := BcastMessage(inv)
			if !ok {
				return nil, val
			}
			msgs, err := codec.ParseList(val)
			if err != nil {
				return nil, val
			}
			entry := codec.Pair(m, strconv.Itoa(endpoint))
			return nil, codec.List(append(append([]string{}, msgs...), entry))
		},
		// Fig. 7: pop the head of msgs and deliver rcv(m, i) to every j ∈ J;
		// if msgs is empty, do nothing.
		Delta2: func(g string, val string, _ codec.IntSet) (ResponseMap, string) {
			if g != TOBGlobalTask {
				return nil, val
			}
			msgs, err := codec.ParseList(val)
			if err != nil || len(msgs) == 0 {
				return nil, val
			}
			m, sender, perr := codec.ParsePair(msgs[0])
			if perr != nil {
				return nil, val
			}
			s, aerr := strconv.Atoi(sender)
			if aerr != nil {
				return nil, val
			}
			return Broadcast(eps, Rcv(m, s)), codec.List(msgs[1:])
		},
		SampleVals: []string{
			codec.List(nil),
			codec.List([]string{codec.Pair("m1", "0")}),
		},
		SampleInvs: []string{Bcast("m1"), Bcast("m2")},
	}
}
