// Package allocpin stabilizes allocation-contract tests built on
// testing.AllocsPerRun. AllocsPerRun pins the measured goroutine to one P,
// but the heap counters it reads are process-wide: GC assists, finalizers
// and goroutines left running by earlier tests all charge allocations to
// the sample. Under a loaded `go test -race ./...` run those strays are
// frequent enough to flake a want-zero pin. Two properties restore
// determinism: stray work can only INFLATE a sample (the contract under
// test never allocates less than it must), so any clean sample proves the
// contract; and serializing all pins through one process-wide mutex keeps
// concurrently-running alloc tests in the same binary from charging each
// other. Check therefore takes a few serialized samples and passes as soon
// as one meets the bound, reporting the best sample only when all fail.
package allocpin

import (
	"sync"
	"testing"
)

// mu serializes every measurement in the process, so parallel alloc pins
// in one test binary never overlap.
var mu sync.Mutex

// attempts bounds the retries; a real contract violation fails every
// sample, so retrying never masks one.
const attempts = 5

// Check asserts that fn performs at most max allocations per call, taking
// up to a few serialized AllocsPerRun samples of runs calls each and
// passing on the first sample within the bound. name labels the failure.
func Check(t *testing.T, name string, runs int, max float64, fn func()) {
	t.Helper()
	mu.Lock()
	defer mu.Unlock()
	best := testing.AllocsPerRun(runs, fn)
	for i := 1; best > max && i < attempts; i++ {
		if n := testing.AllocsPerRun(runs, fn); n < best {
			best = n
		}
	}
	if best > max {
		t.Errorf("%s allocated %.1f times per run, want <= %.1f (best of %d samples)",
			name, best, max, attempts)
	}
}
