// Package codec provides canonical, order-stable string encodings for the
// values that flow through the framework: integers, integer sets, string
// sequences, and string-keyed maps.
//
// Every automaton state in this repository must have a canonical fingerprint
// so that the execution graph G(C) of the paper (Section 3.3) can be memoized
// and searched. The encodings here are the shared substrate for those
// fingerprints: they are injective (distinct values encode distinctly) and
// canonical (equal values encode identically, regardless of construction
// order).
//
// The grammar is deliberately tiny:
//
//	atom   := length ":" bytes        (length-prefixed, so atoms never collide)
//	list   := "[" atom* "]"
//	set    := "{" sorted atoms "}"
//	pair   := "(" atom atom ")"
//
// Length prefixes make the encoding unambiguous without escaping.
package codec

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ErrMalformed is returned by decoders when the input is not a canonical
// encoding produced by this package.
var ErrMalformed = errors.New("codec: malformed encoding")

// Atom encodes a single string as a length-prefixed atom.
func Atom(s string) string {
	return strconv.Itoa(len(s)) + ":" + s
}

// ParseAtom decodes one atom from the front of s, returning the value and the
// remainder of s.
func ParseAtom(s string) (val, rest string, err error) {
	i := strings.IndexByte(s, ':')
	if i < 0 {
		return "", "", fmt.Errorf("%w: missing length separator in %q", ErrMalformed, truncate(s))
	}
	n, err := strconv.Atoi(s[:i])
	if err != nil || n < 0 {
		return "", "", fmt.Errorf("%w: bad length prefix in %q", ErrMalformed, truncate(s))
	}
	body := s[i+1:]
	if len(body) < n {
		return "", "", fmt.Errorf("%w: truncated atom in %q", ErrMalformed, truncate(s))
	}
	return body[:n], body[n:], nil
}

// Int encodes an integer as an atom.
func Int(v int) string { return Atom(strconv.Itoa(v)) }

// ParseInt decodes an integer atom from the front of s.
func ParseInt(s string) (v int, rest string, err error) {
	a, rest, err := ParseAtom(s)
	if err != nil {
		return 0, "", err
	}
	v, err = strconv.Atoi(a)
	if err != nil {
		return 0, "", fmt.Errorf("%w: non-integer atom %q", ErrMalformed, a)
	}
	return v, rest, nil
}

// List encodes a sequence of strings, preserving order.
func List(items []string) string {
	var b strings.Builder
	b.WriteByte('[')
	for _, it := range items {
		b.WriteString(Atom(it))
	}
	b.WriteByte(']')
	return b.String()
}

// ParseList decodes a list encoding in full; it errors on trailing input.
func ParseList(s string) ([]string, error) {
	items, rest, err := parseListPrefix(s)
	if err != nil {
		return nil, err
	}
	if rest != "" {
		return nil, fmt.Errorf("%w: trailing input %q after list", ErrMalformed, truncate(rest))
	}
	return items, nil
}

func parseListPrefix(s string) (items []string, rest string, err error) {
	if len(s) == 0 || s[0] != '[' {
		return nil, "", fmt.Errorf("%w: list must start with '[' in %q", ErrMalformed, truncate(s))
	}
	s = s[1:]
	items = []string{}
	for {
		if len(s) == 0 {
			return nil, "", fmt.Errorf("%w: unterminated list", ErrMalformed)
		}
		if s[0] == ']' {
			return items, s[1:], nil
		}
		var it string
		it, s, err = ParseAtom(s)
		if err != nil {
			return nil, "", err
		}
		items = append(items, it)
	}
}

// Set encodes a set of strings canonically (sorted, deduplicated).
func Set(items []string) string {
	sorted := make([]string, len(items))
	copy(sorted, items)
	sort.Strings(sorted)
	var b strings.Builder
	b.WriteByte('{')
	var prev string
	first := true
	for _, it := range sorted {
		if !first && it == prev {
			continue
		}
		b.WriteString(Atom(it))
		prev, first = it, false
	}
	b.WriteByte('}')
	return b.String()
}

// ParseSet decodes a set encoding in full.
func ParseSet(s string) ([]string, error) {
	if len(s) == 0 || s[0] != '{' {
		return nil, fmt.Errorf("%w: set must start with '{' in %q", ErrMalformed, truncate(s))
	}
	s = s[1:]
	items := []string{}
	for {
		if len(s) == 0 {
			return nil, fmt.Errorf("%w: unterminated set", ErrMalformed)
		}
		if s[0] == '}' {
			if s[1:] != "" {
				return nil, fmt.Errorf("%w: trailing input after set", ErrMalformed)
			}
			return items, nil
		}
		var it string
		var err error
		it, s, err = ParseAtom(s)
		if err != nil {
			return nil, err
		}
		items = append(items, it)
	}
}

// Pair encodes an ordered pair of strings.
func Pair(a, b string) string {
	return "(" + Atom(a) + Atom(b) + ")"
}

// ParsePair decodes a pair encoding in full.
func ParsePair(s string) (a, b string, err error) {
	if len(s) == 0 || s[0] != '(' {
		return "", "", fmt.Errorf("%w: pair must start with '(' in %q", ErrMalformed, truncate(s))
	}
	a, rest, err := ParseAtom(s[1:])
	if err != nil {
		return "", "", err
	}
	b, rest, err = ParseAtom(rest)
	if err != nil {
		return "", "", err
	}
	if rest != ")" {
		return "", "", fmt.Errorf("%w: pair must end with ')'", ErrMalformed)
	}
	return a, b, nil
}

// Map encodes a string-keyed map canonically (entries sorted by key).
func Map(m map[string]string) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('<')
	for _, k := range keys {
		b.WriteString(Pair(k, m[k]))
	}
	b.WriteByte('>')
	return b.String()
}

// ParseMap decodes a map encoding in full.
func ParseMap(s string) (map[string]string, error) {
	return parseMap(s, false)
}

// ParseMapCanonical decodes a map encoding like ParseMap, additionally
// requiring the canonical form Map produces: entry keys strictly increasing
// (sorted, no duplicates). Decoders of canonical fingerprints use it so
// that every accepted input re-encodes byte-identically.
func ParseMapCanonical(s string) (map[string]string, error) {
	return parseMap(s, true)
}

func parseMap(s string, canonicalOrder bool) (map[string]string, error) {
	if len(s) == 0 || s[0] != '<' {
		return nil, fmt.Errorf("%w: map must start with '<' in %q", ErrMalformed, truncate(s))
	}
	s = s[1:]
	m := map[string]string{}
	var prev string
	for {
		if len(s) == 0 {
			return nil, fmt.Errorf("%w: unterminated map", ErrMalformed)
		}
		if s[0] == '>' {
			if s[1:] != "" {
				return nil, fmt.Errorf("%w: trailing input after map", ErrMalformed)
			}
			return m, nil
		}
		end := matchPair(s)
		if end < 0 {
			return nil, fmt.Errorf("%w: bad map entry", ErrMalformed)
		}
		k, v, err := ParsePair(s[:end])
		if err != nil {
			return nil, err
		}
		if canonicalOrder && len(m) > 0 && k <= prev {
			return nil, fmt.Errorf("%w: map keys not in canonical order (%q after %q)", ErrMalformed, k, prev)
		}
		m[k] = v
		prev = k
		s = s[end:]
	}
}

// ParseSetCanonical decodes a set encoding like ParseSet, additionally
// requiring the canonical form Set produces: items strictly increasing
// (sorted, no duplicates).
func ParseSetCanonical(s string) ([]string, error) {
	items, err := ParseSet(s)
	if err != nil {
		return nil, err
	}
	for i := 1; i < len(items); i++ {
		if items[i] <= items[i-1] {
			return nil, fmt.Errorf("%w: set items not in canonical order (%q after %q)", ErrMalformed, items[i], items[i-1])
		}
	}
	return items, nil
}

// matchPair returns the index just past the pair encoding at the front of s,
// or -1 if s does not start with a well-formed pair.
func matchPair(s string) int {
	if len(s) == 0 || s[0] != '(' {
		return -1
	}
	rest := s[1:]
	for range [2]int{} {
		_, r, err := ParseAtom(rest)
		if err != nil {
			return -1
		}
		rest = r
	}
	if len(rest) == 0 || rest[0] != ')' {
		return -1
	}
	return len(s) - len(rest) + 1
}

func truncate(s string) string {
	const max = 32
	if len(s) > max {
		return s[:max] + "..."
	}
	return s
}
