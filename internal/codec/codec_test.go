package codec

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestAtomRoundTrip(t *testing.T) {
	cases := []string{"", "a", "hello world", "with:colon", "with]bracket", "12:34", "héllo"}
	for _, c := range cases {
		enc := Atom(c)
		got, rest, err := ParseAtom(enc)
		if err != nil {
			t.Fatalf("ParseAtom(%q): %v", enc, err)
		}
		if got != c || rest != "" {
			t.Errorf("Atom round trip: got (%q, %q), want (%q, \"\")", got, rest, c)
		}
	}
}

func TestAtomRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		got, rest, err := ParseAtom(Atom(s))
		return err == nil && got == s && rest == ""
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAtomInjective(t *testing.T) {
	f := func(a, b string) bool {
		if a == b {
			return Atom(a) == Atom(b)
		}
		return Atom(a) != Atom(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseAtomMalformed(t *testing.T) {
	for _, bad := range []string{"", "abc", "-1:x", "5:ab", "x:y"} {
		if _, _, err := ParseAtom(bad); err == nil {
			t.Errorf("ParseAtom(%q): want error", bad)
		}
	}
}

func TestIntRoundTrip(t *testing.T) {
	f := func(v int) bool {
		got, rest, err := ParseInt(Int(v))
		return err == nil && got == v && rest == ""
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestListRoundTrip(t *testing.T) {
	cases := [][]string{{}, {""}, {"a"}, {"a", "b", "a"}, {"x:y", "[z]", "{w}"}}
	for _, c := range cases {
		got, err := ParseList(List(c))
		if err != nil {
			t.Fatalf("ParseList(List(%v)): %v", c, err)
		}
		if !reflect.DeepEqual(got, c) {
			t.Errorf("List round trip: got %v, want %v", got, c)
		}
	}
}

func TestListRoundTripProperty(t *testing.T) {
	f := func(items []string) bool {
		if items == nil {
			items = []string{}
		}
		got, err := ParseList(List(items))
		return err == nil && reflect.DeepEqual(got, items)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestListOrderSensitive(t *testing.T) {
	if List([]string{"a", "b"}) == List([]string{"b", "a"}) {
		t.Error("List must preserve order")
	}
}

func TestSetCanonical(t *testing.T) {
	a := Set([]string{"b", "a", "b", "c"})
	b := Set([]string{"c", "b", "a"})
	if a != b {
		t.Errorf("Set not canonical: %q vs %q", a, b)
	}
	got, err := ParseSet(a)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("ParseSet: got %v", got)
	}
}

func TestSetCanonicalProperty(t *testing.T) {
	f := func(items []string, seed int) bool {
		// Any permutation plus duplication encodes identically.
		shuffled := make([]string, 0, 2*len(items))
		shuffled = append(shuffled, items...)
		shuffled = append(shuffled, items...)
		for i := range shuffled {
			j := (i*7 + seed) % len(shuffled)
			if j < 0 {
				j = -j
			}
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		}
		return Set(items) == Set(shuffled)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPairRoundTrip(t *testing.T) {
	f := func(a, b string) bool {
		ga, gb, err := ParsePair(Pair(a, b))
		return err == nil && ga == a && gb == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMapRoundTrip(t *testing.T) {
	cases := []map[string]string{
		{},
		{"a": "1"},
		{"a": "1", "b": "2", "weird:key": "[v]"},
	}
	for _, c := range cases {
		got, err := ParseMap(Map(c))
		if err != nil {
			t.Fatalf("ParseMap: %v", err)
		}
		if !reflect.DeepEqual(got, c) {
			t.Errorf("Map round trip: got %v, want %v", got, c)
		}
	}
}

func TestMapCanonicalProperty(t *testing.T) {
	f := func(m map[string]string) bool {
		if m == nil {
			m = map[string]string{}
		}
		got, err := ParseMap(Map(m))
		return err == nil && reflect.DeepEqual(got, m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNestedEncodings(t *testing.T) {
	inner := List([]string{"x", "y"})
	outer := List([]string{inner, Set([]string{"a"}), Pair("k", "v")})
	got, err := ParseList(outer)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != inner {
		t.Errorf("nested list corrupted: %q", got[0])
	}
}

func TestIntSetBasics(t *testing.T) {
	s := NewIntSet(3, 1, 2, 3)
	if s.Len() != 3 {
		t.Errorf("Len: got %d, want 3", s.Len())
	}
	if !s.Has(1) || s.Has(4) {
		t.Error("Has wrong")
	}
	s2 := s.With(4)
	if s.Has(4) {
		t.Error("With mutated receiver")
	}
	if !s2.Has(4) {
		t.Error("With did not add")
	}
	s3 := s2.Without(1)
	if s2.Has(1) != true || s3.Has(1) {
		t.Error("Without wrong")
	}
	if got := NewIntSet(2, 1).Union(NewIntSet(3)).String(); got != "{1,2,3}" {
		t.Errorf("Union/String: got %s", got)
	}
}

func TestIntSetFingerprintCanonical(t *testing.T) {
	a := NewIntSet(1, 2, 3).Fingerprint()
	b := NewIntSet(3, 2, 1).Fingerprint()
	if a != b {
		t.Errorf("fingerprints differ: %q vs %q", a, b)
	}
	parsed, err := ParseIntSet(a)
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.Equal(NewIntSet(1, 2, 3)) {
		t.Errorf("ParseIntSet: got %s", parsed)
	}
}

func TestIntSetSubsetEqual(t *testing.T) {
	a := NewIntSet(1, 2)
	b := NewIntSet(1, 2, 3)
	if !a.SubsetOf(b) || b.SubsetOf(a) {
		t.Error("SubsetOf wrong")
	}
	if !a.Equal(NewIntSet(2, 1)) || a.Equal(b) {
		t.Error("Equal wrong")
	}
}

func TestIntSetMembersSorted(t *testing.T) {
	got := NewIntSet(5, 1, 9, 0).Members()
	if !reflect.DeepEqual(got, []int{0, 1, 5, 9}) {
		t.Errorf("Members: got %v", got)
	}
}

func TestEncodingsDisjointPrefixes(t *testing.T) {
	// A fingerprint consumer must be able to tell encodings apart by first byte.
	kinds := map[byte]string{
		'[': List(nil), '{': Set(nil), '(': Pair("", ""), '<': Map(nil),
	}
	for b, enc := range kinds {
		if enc[0] != b {
			t.Errorf("encoding %q does not start with %q", enc, string(b))
		}
	}
	if !strings.Contains(Atom("x"), ":") {
		t.Error("atoms must contain the length separator")
	}
}

// TestParseMapCanonical: the strict decoder accepts exactly what Map
// produces and rejects well-formed but non-canonical encodings (unsorted
// or duplicate keys), which the lenient ParseMap tolerates.
func TestParseMapCanonical(t *testing.T) {
	good := Map(map[string]string{"a": "1", "b": "2", "": "z"})
	m, err := ParseMapCanonical(good)
	if err != nil || len(m) != 3 || m["a"] != "1" || m[""] != "z" {
		t.Fatalf("ParseMapCanonical(%q) = %v, %v", good, m, err)
	}
	for _, bad := range []string{
		"<(1:b1:2)(1:a1:1)>", // unsorted
		"<(1:a1:1)(1:a1:2)>", // duplicate
	} {
		if _, err := ParseMap(bad); err != nil {
			t.Fatalf("lenient ParseMap rejected %q: %v", bad, err)
		}
		if _, err := ParseMapCanonical(bad); !errors.Is(err, ErrMalformed) {
			t.Errorf("ParseMapCanonical(%q) = %v, want ErrMalformed", bad, err)
		}
	}
}

// TestParseSetCanonical: same strictness for set encodings.
func TestParseSetCanonical(t *testing.T) {
	good := Set([]string{"b", "a", "a"})
	items, err := ParseSetCanonical(good)
	if err != nil || len(items) != 2 || items[0] != "a" || items[1] != "b" {
		t.Fatalf("ParseSetCanonical(%q) = %v, %v", good, items, err)
	}
	for _, bad := range []string{
		"{1:b1:a}", // unsorted
		"{1:a1:a}", // duplicate
	} {
		if _, err := ParseSet(bad); err != nil {
			t.Fatalf("lenient ParseSet rejected %q: %v", bad, err)
		}
		if _, err := ParseSetCanonical(bad); !errors.Is(err, ErrMalformed) {
			t.Errorf("ParseSetCanonical(%q) = %v, want ErrMalformed", bad, err)
		}
	}
}
