package codec

import (
	"sort"
	"strconv"
	"strings"
)

// IntSet is a small set of non-negative integers (process endpoints in this
// repository). The zero value is the empty set. IntSet values are immutable
// by convention: mutating operations return a new set, which keeps component
// states cheap to snapshot during exploration.
type IntSet struct {
	members map[int]struct{}
}

// NewIntSet builds a set from the given members.
func NewIntSet(members ...int) IntSet {
	s := IntSet{members: make(map[int]struct{}, len(members))}
	for _, m := range members {
		s.members[m] = struct{}{}
	}
	return s
}

// Has reports whether v is in the set.
func (s IntSet) Has(v int) bool {
	_, ok := s.members[v]
	return ok
}

// Len returns the cardinality of the set.
func (s IntSet) Len() int { return len(s.members) }

// With returns a new set that also contains v.
func (s IntSet) With(v int) IntSet {
	out := IntSet{members: make(map[int]struct{}, len(s.members)+1)}
	for m := range s.members {
		out.members[m] = struct{}{}
	}
	out.members[v] = struct{}{}
	return out
}

// Without returns a new set without v.
func (s IntSet) Without(v int) IntSet {
	out := IntSet{members: make(map[int]struct{}, len(s.members))}
	for m := range s.members {
		if m != v {
			out.members[m] = struct{}{}
		}
	}
	return out
}

// Union returns the union of s and t.
func (s IntSet) Union(t IntSet) IntSet {
	out := IntSet{members: make(map[int]struct{}, len(s.members)+len(t.members))}
	for m := range s.members {
		out.members[m] = struct{}{}
	}
	for m := range t.members {
		out.members[m] = struct{}{}
	}
	return out
}

// SubsetOf reports whether every member of s is in t.
func (s IntSet) SubsetOf(t IntSet) bool {
	for m := range s.members {
		if !t.Has(m) {
			return false
		}
	}
	return true
}

// Members returns the members in ascending order.
func (s IntSet) Members() []int {
	out := make([]int, 0, len(s.members))
	for m := range s.members {
		out = append(out, m)
	}
	sort.Ints(out)
	return out
}

// Equal reports whether two sets have the same members.
func (s IntSet) Equal(t IntSet) bool {
	return len(s.members) == len(t.members) && s.SubsetOf(t)
}

// Fingerprint returns the canonical encoding of the set.
func (s IntSet) Fingerprint() string {
	items := make([]string, 0, len(s.members))
	for m := range s.members {
		items = append(items, strconv.Itoa(m))
	}
	return Set(items)
}

// String renders the set for humans, e.g. "{1,3,4}".
func (s IntSet) String() string {
	ms := s.Members()
	parts := make([]string, len(ms))
	for i, m := range ms {
		parts[i] = strconv.Itoa(m)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// ParseIntSet decodes a fingerprint produced by IntSet.Fingerprint.
func ParseIntSet(enc string) (IntSet, error) {
	items, err := ParseSet(enc)
	if err != nil {
		return IntSet{}, err
	}
	s := IntSet{members: make(map[int]struct{}, len(items))}
	for _, it := range items {
		v, err := strconv.Atoi(it)
		if err != nil {
			return IntSet{}, err
		}
		s.members[v] = struct{}{}
	}
	return s, nil
}
