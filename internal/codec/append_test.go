package codec

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/ioa-lab/boosting/internal/allocpin"
)

// TestAppendMatchesStringBuilders pins the core invariant of the two-faced
// codec: every Append* function produces exactly the bytes of its string
// counterpart, so interned fingerprints and the stable external format can
// never drift apart.
func TestAppendMatchesStringBuilders(t *testing.T) {
	atoms := []string{"", "x", "hello world", "12:34", "[{(<", strings.Repeat("a", 300)}
	for _, s := range atoms {
		if got := string(AppendAtom(nil, s)); got != Atom(s) {
			t.Errorf("AppendAtom(%q) = %q, want %q", s, got, Atom(s))
		}
	}
	for _, v := range []int{0, 1, -1, 42, -42, 1 << 30} {
		if got := string(AppendInt(nil, v)); got != Int(v) {
			t.Errorf("AppendInt(%d) = %q, want %q", v, got, Int(v))
		}
	}
	lists := [][]string{{}, {"a"}, {"a", "b", "a"}, {"", "", ""}, atoms}
	for _, items := range lists {
		if got := string(AppendList(nil, items)); got != List(items) {
			t.Errorf("AppendList(%q) = %q, want %q", items, got, List(items))
		}
		if got := string(AppendSet(nil, items)); got != Set(items) {
			t.Errorf("AppendSet(%q) = %q, want %q", items, got, Set(items))
		}
	}
	if got := string(AppendPair(nil, "k", "v")); got != Pair("k", "v") {
		t.Errorf("AppendPair = %q, want %q", got, Pair("k", "v"))
	}
	maps := []map[string]string{
		{},
		{"one": "1"},
		{"b": "2", "a": "1", "c": ""},
		{"": "empty key", "10": "x", "2": "y"},
	}
	for _, m := range maps {
		if got := string(AppendMap(nil, m)); got != Map(m) {
			t.Errorf("AppendMap(%v) = %q, want %q", m, got, Map(m))
		}
	}
}

// TestAppendWrapped checks the splice-in-place length prefix against the
// equivalent Atom-of-encoding composition.
func TestAppendWrapped(t *testing.T) {
	inner := map[string]string{"a": "1", "bb": "22"}
	got := AppendWrapped([]byte("prefix"), func(d []byte) []byte {
		return AppendMap(d, inner)
	})
	want := "prefix" + Atom(Map(inner))
	if string(got) != want {
		t.Errorf("AppendWrapped = %q, want %q", got, want)
	}
	// Nested wrapping: an atom-of-list-of-atoms, reusing one buffer.
	got = AppendWrapped(got[:0], func(d []byte) []byte {
		return AppendList(d, []string{"x", "y"})
	})
	if want := Atom(List([]string{"x", "y"})); string(got) != want {
		t.Errorf("nested AppendWrapped = %q, want %q", got, want)
	}
}

// TestAppendRoundTripRandom is the property test: random values encoded with
// the append API parse back to themselves with the existing parsers.
func TestAppendRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	randAtom := func() string {
		n := rng.Intn(12)
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte(byte(rng.Intn(96) + 32)) // printable ASCII incl. delimiters
		}
		return b.String()
	}
	for trial := 0; trial < 500; trial++ {
		s := randAtom()
		val, rest, err := ParseAtom(string(AppendAtom(nil, s)))
		if err != nil || val != s || rest != "" {
			t.Fatalf("atom round trip: %q → %q, %q, %v", s, val, rest, err)
		}
		v := rng.Intn(1<<20) - 1<<19
		pv, rest, err := ParseInt(string(AppendInt(nil, v)))
		if err != nil || pv != v || rest != "" {
			t.Fatalf("int round trip: %d → %d, %q, %v", v, pv, rest, err)
		}
		items := make([]string, rng.Intn(6))
		for i := range items {
			items[i] = randAtom()
		}
		back, err := ParseList(string(AppendList(nil, items)))
		if err != nil || len(back) != len(items) {
			t.Fatalf("list round trip: %q → %q, %v", items, back, err)
		}
		for i := range items {
			if back[i] != items[i] {
				t.Fatalf("list round trip: %q → %q", items, back)
			}
		}
		setBack, err := ParseSet(string(AppendSet(nil, items)))
		if err != nil {
			t.Fatalf("set round trip: %q: %v", items, err)
		}
		want := map[string]bool{}
		for _, it := range items {
			want[it] = true
		}
		if len(setBack) != len(want) {
			t.Fatalf("set round trip: %q → %q", items, setBack)
		}
		for _, it := range setBack {
			if !want[it] {
				t.Fatalf("set round trip: %q → %q", items, setBack)
			}
		}
		m := map[string]string{}
		for i := 0; i < rng.Intn(5); i++ {
			m[randAtom()] = randAtom()
		}
		mBack, err := ParseMap(string(AppendMap(nil, m)))
		if err != nil || len(mBack) != len(m) {
			t.Fatalf("map round trip: %v → %v, %v", m, mBack, err)
		}
		for k, v := range m {
			if mBack[k] != v {
				t.Fatalf("map round trip: %v → %v", m, mBack)
			}
		}
	}
}

// TestIntSetAppendFingerprint checks byte identity with IntSet.Fingerprint
// across cardinalities, including the lexicographic (not numeric) member
// order at double-digit members.
func TestIntSetAppendFingerprint(t *testing.T) {
	sets := [][]int{{}, {3}, {0, 1, 2}, {2, 10, 1}, {11, 2, 100, 20}}
	for _, members := range sets {
		s := NewIntSet(members...)
		if got, want := string(s.AppendFingerprint(nil)), s.Fingerprint(); got != want {
			t.Errorf("AppendFingerprint(%v) = %q, want %q", members, got, want)
		}
		back, err := ParseIntSet(string(s.AppendFingerprint(nil)))
		if err != nil || !back.Equal(s) {
			t.Errorf("IntSet round trip %v: %v, %v", members, back, err)
		}
	}
}

// TestAppendReusesBuffer ensures the append API does not allocate when the
// destination has capacity (the hot-path contract fingerprinting relies on).
func TestAppendReusesBuffer(t *testing.T) {
	buf := make([]byte, 0, 1024)
	allocpin.Check(t, "append primitives", 100, 0, func() {
		buf = AppendAtom(buf[:0], "payload")
		buf = AppendInt(buf, 12345)
		buf = AppendPair(buf, "a", "b")
	})
}

// FuzzParseAtom bashes the atom decoder with truncated and hostile inputs:
// it must either return a value that re-encodes into a prefix of the input,
// or reject with ErrMalformed — never panic or mis-parse.
func FuzzParseAtom(f *testing.F) {
	f.Add("5:hello")
	f.Add("0:")
	f.Add("5:hell")                 // truncated body
	f.Add("5hello")                 // missing separator
	f.Add(":")                      // empty length
	f.Add("-1:x")                   // negative length
	f.Add("99999999999999999999:x") // overflowing length
	f.Add("07:exactly")             // leading zero
	f.Add("3:[1:x")                 // delimiter bytes inside body
	f.Add("")
	f.Add("2:ab5:extra")
	f.Fuzz(func(t *testing.T, s string) {
		val, rest, err := ParseAtom(s)
		if err != nil {
			return
		}
		if len(val)+len(rest) > len(s) {
			t.Fatalf("ParseAtom(%q) returned more bytes than input: %q + %q", s, val, rest)
		}
		// Canonical re-encoding must reproduce the consumed prefix.
		consumed := s[:len(s)-len(rest)]
		if reenc := Atom(val); reenc != consumed {
			// Non-canonical length prefixes (leading zeros, plus signs) may
			// parse; they must still agree on the value and the remainder.
			val2, rest2, err2 := ParseAtom(reenc + rest)
			if err2 != nil || val2 != val || rest2 != rest {
				t.Fatalf("ParseAtom(%q) = %q, %q: re-encode mismatch %q", s, val, rest, reenc)
			}
		}
	})
}
