package codec

import "testing"

// Nil-vs-empty regression pins for the container encoders: a nil slice,
// an empty slice, a nil map and an empty map must produce the identical
// canonical encoding on both the string and append faces, and the zero
// IntSet must encode like a freshly built empty one. Distinct interned
// state IDs for states differing only in nil-vs-empty containers would
// silently split graph vertices.
func TestNilVsEmptyEncodings(t *testing.T) {
	if List(nil) != List([]string{}) {
		t.Errorf("List: nil %q vs empty %q", List(nil), List([]string{}))
	}
	if Set(nil) != Set([]string{}) {
		t.Errorf("Set: nil %q vs empty %q", Set(nil), Set([]string{}))
	}
	if Map(nil) != Map(map[string]string{}) {
		t.Errorf("Map: nil %q vs empty %q", Map(nil), Map(map[string]string{}))
	}
	if got, want := string(AppendList(nil, nil)), List(nil); got != want {
		t.Errorf("AppendList(nil): %q, want %q", got, want)
	}
	if got, want := string(AppendSet(nil, []string{})), Set(nil); got != want {
		t.Errorf("AppendSet(empty): %q, want %q", got, want)
	}
	if got, want := string(AppendMap(nil, nil)), Map(nil); got != want {
		t.Errorf("AppendMap(nil): %q, want %q", got, want)
	}
	var zero IntSet
	if zero.Fingerprint() != NewIntSet().Fingerprint() {
		t.Errorf("IntSet: zero %q vs fresh %q", zero.Fingerprint(), NewIntSet().Fingerprint())
	}
	if got, want := string(zero.AppendFingerprint(nil)), NewIntSet().Fingerprint(); got != want {
		t.Errorf("IntSet append: zero %q, want %q", got, want)
	}
}
