package codec

import (
	"sort"
	"strconv"
)

// This file is the byte-oriented face of the codec: every Append* function
// writes the exact bytes its string counterpart would produce into dst and
// returns the extended slice, in the style of strconv.AppendInt. Callers that
// reuse a buffer across calls (dst = codec.AppendAtom(dst[:0], v)) encode
// states without allocating on the hot path; the string builders remain the
// stable external format and the two faces are kept byte-identical by the
// round-trip tests in append_test.go.

// AppendAtom appends the length-prefixed atom encoding of s.
func AppendAtom(dst []byte, s string) []byte {
	dst = strconv.AppendInt(dst, int64(len(s)), 10)
	dst = append(dst, ':')
	return append(dst, s...)
}

// AppendInt appends the atom encoding of an integer.
func AppendInt(dst []byte, v int) []byte {
	// The value doubles as its own length-prefixed body:
	// Int(v) == Atom(strconv.Itoa(v)).
	var scratch [24]byte
	body := strconv.AppendInt(scratch[:0], int64(v), 10)
	dst = strconv.AppendInt(dst, int64(len(body)), 10)
	dst = append(dst, ':')
	return append(dst, body...)
}

// AppendList appends the list encoding of items, preserving order.
func AppendList(dst []byte, items []string) []byte {
	dst = append(dst, '[')
	for _, it := range items {
		dst = AppendAtom(dst, it)
	}
	return append(dst, ']')
}

// AppendSet appends the set encoding of items (sorted, deduplicated). The
// input slice is not modified; sorting uses an internal scratch copy only
// when items is not already sorted.
func AppendSet(dst []byte, items []string) []byte {
	if !sort.StringsAreSorted(items) {
		sorted := make([]string, len(items))
		copy(sorted, items)
		sort.Strings(sorted)
		items = sorted
	}
	dst = append(dst, '{')
	var prev string
	first := true
	for _, it := range items {
		if !first && it == prev {
			continue
		}
		dst = AppendAtom(dst, it)
		prev, first = it, false
	}
	return append(dst, '}')
}

// AppendPair appends the ordered-pair encoding of (a, b).
func AppendPair(dst []byte, a, b string) []byte {
	dst = append(dst, '(')
	dst = AppendAtom(dst, a)
	dst = AppendAtom(dst, b)
	return append(dst, ')')
}

// AppendMap appends the canonical map encoding of m (entries sorted by key).
func AppendMap(dst []byte, m map[string]string) []byte {
	switch len(m) {
	case 0:
		return append(dst, '<', '>')
	case 1:
		dst = append(dst, '<')
		for k, v := range m {
			dst = AppendPair(dst, k, v)
		}
		return append(dst, '>')
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	dst = append(dst, '<')
	for _, k := range keys {
		dst = AppendPair(dst, k, m[k])
	}
	return append(dst, '>')
}

// AppendWrapped appends the encoding produced by enc as a single atom: the
// nested encoding is written in place and its length prefix is then spliced
// in front of it, so composite encodings (a map inside a list, say) need no
// intermediate string. enc must append to — and return an extension of — the
// slice it is given.
func AppendWrapped(dst []byte, enc func([]byte) []byte) []byte {
	start := len(dst)
	dst = enc(dst)
	n := len(dst) - start
	var scratch [24]byte
	prefix := strconv.AppendInt(scratch[:0], int64(n), 10)
	prefix = append(prefix, ':')
	dst = append(dst, prefix...)
	// Rotate the prefix in front of the body: [body prefix] → [prefix body].
	copy(dst[start+len(prefix):], dst[start:start+n])
	copy(dst[start:], prefix)
	return dst
}

// AppendFingerprint appends the canonical set encoding of s, identical to
// s.Fingerprint().
func (s IntSet) AppendFingerprint(dst []byte) []byte {
	switch len(s.members) {
	case 0:
		return append(dst, '{', '}')
	case 1:
		dst = append(dst, '{')
		for m := range s.members {
			dst = AppendInt(dst, m)
		}
		return append(dst, '}')
	}
	// Members must appear in the lexicographic order of their decimal
	// encodings (the order Set imposes), not numeric order.
	items := make([]string, 0, len(s.members))
	for m := range s.members {
		items = append(items, strconv.Itoa(m))
	}
	return AppendSet(dst, items)
}
