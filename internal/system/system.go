// Package system implements the complete system C of the paper
// (Section 2.2.3): the parallel composition of process automata P_i,
// canonical resilient services S_k, and canonical reliable registers S_r,
// with the internal communication actions hidden.
//
// Composition follows the I/O-automata rules: an invocation output a_{i,c}
// of P_i is simultaneously an input of S_c; a response output b_{i,c} of S_c
// is simultaneously an input of P_i; fail_i is an input of P_i and of every
// service with i among its endpoints. No two services, and no two processes,
// share an action; every action (except fail) has at most two participants.
//
// Registers are not a separate kind here: a canonical reliable register is a
// wait-free canonical atomic object of the read/write type (Section 2.1.3),
// built with service.NewRegister. The system tracks which services are
// registers only for reporting.
package system

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/ioa-lab/boosting/internal/codec"
	"github.com/ioa-lab/boosting/internal/ioa"
	"github.com/ioa-lab/boosting/internal/process"
	"github.com/ioa-lab/boosting/internal/service"
)

// Errors returned by system operations.
var (
	ErrDuplicateID    = errors.New("system: duplicate component index")
	ErrUnknownProcess = errors.New("system: unknown process")
	ErrUnknownService = errors.New("system: unknown service")
	ErrBadEndpoint    = errors.New("system: service endpoint is not a process")
	ErrNotApplicable  = errors.New("system: task not applicable")
)

// System is the (immutable) structure of a complete system C: its processes
// and services and the derived task list. All mutable data lives in State.
type System struct {
	procs   map[int]*process.Process
	procIDs []int
	svcs    map[string]*service.Service
	svcIDs  []string
	tasks   []ioa.Task
}

// New composes processes and services into a complete system. Every service
// endpoint must be a process of the system.
func New(procs []*process.Process, svcs []*service.Service) (*System, error) {
	s := &System{
		procs: make(map[int]*process.Process, len(procs)),
		svcs:  make(map[string]*service.Service, len(svcs)),
	}
	for _, p := range procs {
		if _, dup := s.procs[p.ID()]; dup {
			return nil, fmt.Errorf("%w: process %d", ErrDuplicateID, p.ID())
		}
		s.procs[p.ID()] = p
		s.procIDs = append(s.procIDs, p.ID())
	}
	sort.Ints(s.procIDs)
	for _, sv := range svcs {
		if _, dup := s.svcs[sv.Index()]; dup {
			return nil, fmt.Errorf("%w: service %s", ErrDuplicateID, sv.Index())
		}
		for _, e := range sv.Endpoints() {
			if _, ok := s.procs[e]; !ok {
				return nil, fmt.Errorf("%w: service %s endpoint %d", ErrBadEndpoint, sv.Index(), e)
			}
		}
		s.svcs[sv.Index()] = sv
		s.svcIDs = append(s.svcIDs, sv.Index())
	}
	sort.Strings(s.svcIDs)

	// Fixed task enumeration: process tasks in id order, then service tasks
	// in index order. This is the round-robin order used by the Fig. 3 hook
	// construction.
	for _, id := range s.procIDs {
		s.tasks = append(s.tasks, ioa.ProcessTask(id))
	}
	for _, k := range s.svcIDs {
		s.tasks = append(s.tasks, s.svcs[k].Tasks()...)
	}
	return s, nil
}

// ProcessIDs returns the process indices (ascending). Shared slice — do not
// modify.
func (s *System) ProcessIDs() []int { return s.procIDs }

// ServiceIDs returns the service indices (sorted). Shared slice — do not
// modify.
func (s *System) ServiceIDs() []string { return s.svcIDs }

// Service returns the service with the given index, or nil.
func (s *System) Service(k string) *service.Service { return s.svcs[k] }

// Process returns the process with the given id, or nil.
func (s *System) Process(i int) *process.Process { return s.procs[i] }

// Tasks returns all tasks of the composed system, in the fixed round-robin
// order. Shared slice — do not modify.
func (s *System) Tasks() []ioa.Task { return s.tasks }

// State is a state of the composed system: one component state per process
// and per service.
type State struct {
	Procs map[int]process.State
	Svcs  map[string]service.State
}

// InitialState returns the start state of C.
func (s *System) InitialState() State {
	st := State{
		Procs: make(map[int]process.State, len(s.procs)),
		Svcs:  make(map[string]service.State, len(s.svcs)),
	}
	for id, p := range s.procs {
		st.Procs[id] = p.InitialState()
	}
	for k, sv := range s.svcs {
		st.Svcs[k] = sv.InitialState()
	}
	return st
}

// Fingerprint returns the canonical encoding of the system state, composed
// from the component fingerprints in fixed component order.
func (s *System) Fingerprint(st State) string {
	var b strings.Builder
	for _, id := range s.procIDs {
		b.WriteString(st.Procs[id].Fingerprint())
	}
	for _, k := range s.svcIDs {
		b.WriteString(st.Svcs[k].Fingerprint())
	}
	return b.String()
}

// withProc returns st with process i's state replaced (copy-on-write).
func (st State) withProc(i int, ps process.State) State {
	procs := make(map[int]process.State, len(st.Procs))
	for k, v := range st.Procs {
		procs[k] = v
	}
	procs[i] = ps
	return State{Procs: procs, Svcs: st.Svcs}
}

// withSvc returns st with service k's state replaced.
func (st State) withSvc(k string, ss service.State) State {
	svcs := make(map[string]service.State, len(st.Svcs))
	for k2, v := range st.Svcs {
		svcs[k2] = v
	}
	svcs[k] = ss
	return State{Procs: st.Procs, Svcs: svcs}
}

// Init delivers the external input init(v)_i.
func (s *System) Init(st State, i int, v string) (State, ioa.Action, error) {
	p, ok := s.procs[i]
	if !ok {
		return st, ioa.Action{}, fmt.Errorf("%w: %d", ErrUnknownProcess, i)
	}
	next := st.withProc(i, p.OnInit(st.Procs[i], v))
	return next, ioa.Action{Type: ioa.ActInit, Proc: i, Payload: v}, nil
}

// Fail delivers the input fail_i: it fails P_i and is simultaneously an
// input of every service with endpoint i (Section 2.2.3).
func (s *System) Fail(st State, i int) (State, ioa.Action, error) {
	p, ok := s.procs[i]
	if !ok {
		return st, ioa.Action{}, fmt.Errorf("%w: %d", ErrUnknownProcess, i)
	}
	next := st.withProc(i, p.Fail(st.Procs[i]))
	svcs := make(map[string]service.State, len(next.Svcs))
	for k, v := range next.Svcs {
		svcs[k] = v
	}
	for k, sv := range s.svcs {
		if sv.HasEndpoint(i) {
			svcs[k] = sv.Fail(svcs[k], i)
		}
	}
	next = State{Procs: next.Procs, Svcs: svcs}
	return next, ioa.Action{Type: ioa.ActFail, Proc: i}, nil
}

// Enabled returns the action the given task would perform in st, with
// ok = false if the task is not applicable.
func (s *System) Enabled(st State, task ioa.Task) (ioa.Action, bool) {
	switch task.Kind {
	case ioa.TaskProcess:
		p, ok := s.procs[task.Proc]
		if !ok {
			return ioa.Action{}, false
		}
		// The process task is always applicable (dummy step at worst).
		return p.Enabled(st.Procs[task.Proc]), true
	case ioa.TaskPerform, ioa.TaskOutput, ioa.TaskCompute:
		sv, ok := s.svcs[task.Service]
		if !ok {
			return ioa.Action{}, false
		}
		return sv.Enabled(st.Svcs[task.Service], task)
	default:
		return ioa.Action{}, false
	}
}

// Applicable reports whether the task has an enabled action in st
// (the applicability notion of Lemma 1).
func (s *System) Applicable(st State, task ioa.Task) bool {
	_, ok := s.Enabled(st, task)
	return ok
}

// Apply runs one task of the composed system, performing the matched
// transitions of all participants of the resulting action.
func (s *System) Apply(st State, task ioa.Task) (State, ioa.Action, error) {
	switch task.Kind {
	case ioa.TaskProcess:
		return s.applyProcess(st, task)
	case ioa.TaskPerform, ioa.TaskCompute:
		sv, ok := s.svcs[task.Service]
		if !ok {
			return st, ioa.Action{}, fmt.Errorf("%w: %s", ErrUnknownService, task.Service)
		}
		ss, act, err := sv.Apply(st.Svcs[task.Service], task)
		if err != nil {
			return st, ioa.Action{}, err
		}
		return st.withSvc(task.Service, ss), act, nil
	case ioa.TaskOutput:
		return s.applyOutput(st, task)
	default:
		return st, ioa.Action{}, fmt.Errorf("%w: %v", ErrNotApplicable, task)
	}
}

// applyProcess runs a process task. If the emitted action is an invocation,
// the target service takes the matching input transition in the same step.
func (s *System) applyProcess(st State, task ioa.Task) (State, ioa.Action, error) {
	p, ok := s.procs[task.Proc]
	if !ok {
		return st, ioa.Action{}, fmt.Errorf("%w: %d", ErrUnknownProcess, task.Proc)
	}
	ps, act := p.Step(st.Procs[task.Proc])
	next := st.withProc(task.Proc, ps)
	if act.Type == ioa.ActInvoke {
		sv, ok := s.svcs[act.Service]
		if !ok {
			return st, ioa.Action{}, fmt.Errorf("%w: %s (invoked by P%d)", ErrUnknownService, act.Service, task.Proc)
		}
		ss, err := sv.Invoke(next.Svcs[act.Service], task.Proc, act.Payload)
		if err != nil {
			return st, ioa.Action{}, fmt.Errorf("P%d invoking %s: %w", task.Proc, act.Service, err)
		}
		next = next.withSvc(act.Service, ss)
	}
	return next, act, nil
}

// applyOutput runs a service i-output task. If the emitted action is a real
// response b_{i,k}, process P_i takes the matching input transition in the
// same step.
func (s *System) applyOutput(st State, task ioa.Task) (State, ioa.Action, error) {
	sv, ok := s.svcs[task.Service]
	if !ok {
		return st, ioa.Action{}, fmt.Errorf("%w: %s", ErrUnknownService, task.Service)
	}
	ss, act, err := sv.Apply(st.Svcs[task.Service], task)
	if err != nil {
		return st, ioa.Action{}, err
	}
	next := st.withSvc(task.Service, ss)
	if act.Type == ioa.ActRespond {
		p, ok := s.procs[act.Proc]
		if !ok {
			return st, ioa.Action{}, fmt.Errorf("%w: %d", ErrUnknownProcess, act.Proc)
		}
		next = next.withProc(act.Proc, p.OnResponse(next.Procs[act.Proc], task.Service, act.Payload))
	}
	return next, act, nil
}

// Participants returns the names of the automata participating in the action
// the task would take from st ("P<i>" for processes, the service index for
// services), or nil if the task is not applicable. Per the paper, every
// non-fail action has at most two participants.
func (s *System) Participants(st State, task ioa.Task) []string {
	act, ok := s.Enabled(st, task)
	if !ok {
		return nil
	}
	switch act.Type {
	case ioa.ActInvoke, ioa.ActRespond:
		return []string{procName(act.Proc), act.Service}
	case ioa.ActPerform, ioa.ActDummyPerform, ioa.ActDummyOutput:
		return []string{act.Service}
	case ioa.ActCompute, ioa.ActDummyCompute:
		return []string{act.Service}
	case ioa.ActDecide, ioa.ActProcStep, ioa.ActProcDummy:
		return []string{procName(act.Proc)}
	default:
		return nil
	}
}

func procName(i int) string { return fmt.Sprintf("P%d", i) }

// Decisions returns the recorded decision value of every process that has
// one, keyed by process id.
func (s *System) Decisions(st State) map[int]string {
	out := map[int]string{}
	for _, id := range s.procIDs {
		if ps := st.Procs[id]; ps.HasDec {
			out[id] = ps.Decided
		}
	}
	return out
}

// FailedProcesses returns the ids of failed processes, ascending.
func (s *System) FailedProcesses(st State) []int {
	var out []int
	for _, id := range s.procIDs {
		if st.Procs[id].Failed {
			out = append(out, id)
		}
	}
	return out
}

// LiveProcesses returns the ids of non-failed processes, ascending.
func (s *System) LiveProcesses(st State) []int {
	out := make([]int, 0, len(s.procIDs))
	for _, id := range s.procIDs {
		if !st.Procs[id].Failed {
			out = append(out, id)
		}
	}
	return out
}

// FailedSet returns the failed processes as an IntSet.
func (s *System) FailedSet(st State) codec.IntSet {
	return codec.NewIntSet(s.FailedProcesses(st)...)
}
