// Package system implements the complete system C of the paper
// (Section 2.2.3): the parallel composition of process automata P_i,
// canonical resilient services S_k, and canonical reliable registers S_r,
// with the internal communication actions hidden.
//
// Composition follows the I/O-automata rules: an invocation output a_{i,c}
// of P_i is simultaneously an input of S_c; a response output b_{i,c} of S_c
// is simultaneously an input of P_i; fail_i is an input of P_i and of every
// service with i among its endpoints. No two services, and no two processes,
// share an action; every action (except fail) has at most two participants.
//
// Registers are not a separate kind here: a canonical reliable register is a
// wait-free canonical atomic object of the read/write type (Section 2.1.3),
// built with service.NewRegister. The system tracks which services are
// registers only for reporting.
package system

import (
	"errors"
	"fmt"
	"sort"

	"github.com/ioa-lab/boosting/internal/codec"
	"github.com/ioa-lab/boosting/internal/ioa"
	"github.com/ioa-lab/boosting/internal/process"
	"github.com/ioa-lab/boosting/internal/service"
)

// Errors returned by system operations.
var (
	ErrDuplicateID    = errors.New("system: duplicate component index")
	ErrUnknownProcess = errors.New("system: unknown process")
	ErrUnknownService = errors.New("system: unknown service")
	ErrBadEndpoint    = errors.New("system: service endpoint is not a process")
	ErrNotApplicable  = errors.New("system: task not applicable")
)

// System is the (immutable) structure of a complete system C: its processes
// and services and the derived task list. All mutable data lives in State.
//
// Component order is fixed at composition: processes in ascending id order,
// services in sorted index order. States store one component state per slot
// of that order, and procIdx/svcIdx translate external ids to slots.
type System struct {
	procs   map[int]*process.Process
	procIDs []int
	procIdx map[int]int
	svcs    map[string]*service.Service
	svcIDs  []string
	svcIdx  map[string]int
	tasks   []ioa.Task
}

// New composes processes and services into a complete system. Every service
// endpoint must be a process of the system.
func New(procs []*process.Process, svcs []*service.Service) (*System, error) {
	s := &System{
		procs: make(map[int]*process.Process, len(procs)),
		svcs:  make(map[string]*service.Service, len(svcs)),
	}
	for _, p := range procs {
		if _, dup := s.procs[p.ID()]; dup {
			return nil, fmt.Errorf("%w: process %d", ErrDuplicateID, p.ID())
		}
		s.procs[p.ID()] = p
		s.procIDs = append(s.procIDs, p.ID())
	}
	sort.Ints(s.procIDs)
	for _, sv := range svcs {
		if _, dup := s.svcs[sv.Index()]; dup {
			return nil, fmt.Errorf("%w: service %s", ErrDuplicateID, sv.Index())
		}
		for _, e := range sv.Endpoints() {
			if _, ok := s.procs[e]; !ok {
				return nil, fmt.Errorf("%w: service %s endpoint %d", ErrBadEndpoint, sv.Index(), e)
			}
		}
		s.svcs[sv.Index()] = sv
		s.svcIDs = append(s.svcIDs, sv.Index())
	}
	sort.Strings(s.svcIDs)
	s.procIdx = make(map[int]int, len(s.procIDs))
	for i, id := range s.procIDs {
		s.procIdx[id] = i
	}
	s.svcIdx = make(map[string]int, len(s.svcIDs))
	for i, k := range s.svcIDs {
		s.svcIdx[k] = i
	}

	// Fixed task enumeration: process tasks in id order, then service tasks
	// in index order. This is the round-robin order used by the Fig. 3 hook
	// construction.
	for _, id := range s.procIDs {
		s.tasks = append(s.tasks, ioa.ProcessTask(id))
	}
	for _, k := range s.svcIDs {
		s.tasks = append(s.tasks, s.svcs[k].Tasks()...)
	}
	return s, nil
}

// ProcessIDs returns the process indices (ascending). Shared slice — do not
// modify.
func (s *System) ProcessIDs() []int { return s.procIDs }

// ServiceIDs returns the service indices (sorted). Shared slice — do not
// modify.
func (s *System) ServiceIDs() []string { return s.svcIDs }

// Service returns the service with the given index, or nil.
func (s *System) Service(k string) *service.Service { return s.svcs[k] }

// Process returns the process with the given id, or nil.
func (s *System) Process(i int) *process.Process { return s.procs[i] }

// Tasks returns all tasks of the composed system, in the fixed round-robin
// order. Shared slice — do not modify.
func (s *System) Tasks() []ioa.Task { return s.tasks }

// State is a state of the composed system: one component state per process
// and per service, index-addressed over the system's fixed component order
// (processes by ascending id, services by sorted index). The flat layout
// keeps states a pair of slice headers — cheap to snapshot during
// exploration — and lets fingerprinting walk components without map lookups.
// States are immutable by convention: transitions return fresh states whose
// slices are copied, while untouched component states are shared.
type State struct {
	procs []process.State
	svcs  []service.State
}

// InitialState returns the start state of C.
func (s *System) InitialState() State {
	st := State{
		procs: make([]process.State, len(s.procIDs)),
		svcs:  make([]service.State, len(s.svcIDs)),
	}
	for i, id := range s.procIDs {
		st.procs[i] = s.procs[id].InitialState()
	}
	for i, k := range s.svcIDs {
		st.svcs[i] = s.svcs[k].InitialState()
	}
	return st
}

// ComponentStates returns the process and service component slices of st in
// the system's fixed component order (processes by ascending id, services by
// sorted index). The slices are shared with st — callers must not modify
// them. This is the read face of StateOf, used by the symmetry layer to
// permute states without going through per-component accessors.
func (s *System) ComponentStates(st State) ([]process.State, []service.State) {
	return st.procs, st.svcs
}

// StateOf assembles a State from component slices in the system's fixed
// component order. The slices are retained (not copied); callers hand over
// ownership. Lengths must match the system's component counts.
func (s *System) StateOf(procs []process.State, svcs []service.State) (State, error) {
	if len(procs) != len(s.procIDs) || len(svcs) != len(s.svcIDs) {
		return State{}, fmt.Errorf("system: StateOf got %d/%d components, want %d/%d",
			len(procs), len(svcs), len(s.procIDs), len(s.svcIDs))
	}
	return State{procs: procs, svcs: svcs}, nil
}

// ProcState returns the component state of process id, or the zero state if
// id is not a process of the system (mirroring map indexing on the old
// map-keyed layout).
func (s *System) ProcState(st State, id int) process.State {
	idx, ok := s.procIdx[id]
	if !ok {
		return process.State{}
	}
	return st.procs[idx]
}

// SvcState returns the component state of service k, or the zero state if k
// is not a service of the system.
func (s *System) SvcState(st State, k string) service.State {
	idx, ok := s.svcIdx[k]
	if !ok {
		return service.State{}
	}
	return st.svcs[idx]
}

// Fingerprint returns the canonical encoding of the system state, composed
// from the component fingerprints in fixed component order.
func (s *System) Fingerprint(st State) string {
	return string(s.AppendFingerprint(nil, st))
}

// AppendFingerprint appends the canonical encoding of st to dst and returns
// the extended buffer — byte-identical to Fingerprint. This is the hot path
// of graph exploration: callers reuse one buffer per goroutine
// (buf = sys.AppendFingerprint(buf[:0], st)) and intern the bytes, so
// fingerprinting a state costs no allocation beyond map-key sorting inside
// component encodings.
func (s *System) AppendFingerprint(dst []byte, st State) []byte {
	for i := range st.procs {
		dst = st.procs[i].AppendFingerprint(dst)
	}
	for i := range st.svcs {
		dst = st.svcs[i].AppendFingerprint(dst)
	}
	return dst
}

// withProc returns st with process i's state replaced (copy-on-write).
func (s *System) withProc(st State, i int, ps process.State) State {
	procs := make([]process.State, len(st.procs))
	copy(procs, st.procs)
	procs[s.procIdx[i]] = ps
	return State{procs: procs, svcs: st.svcs}
}

// withSvc returns st with service k's state replaced.
func (s *System) withSvc(st State, k string, ss service.State) State {
	svcs := make([]service.State, len(st.svcs))
	copy(svcs, st.svcs)
	svcs[s.svcIdx[k]] = ss
	return State{procs: st.procs, svcs: svcs}
}

// Init delivers the external input init(v)_i.
func (s *System) Init(st State, i int, v string) (State, ioa.Action, error) {
	p, ok := s.procs[i]
	if !ok {
		return st, ioa.Action{}, fmt.Errorf("%w: %d", ErrUnknownProcess, i)
	}
	next := s.withProc(st, i, p.OnInit(s.ProcState(st, i), v))
	return next, ioa.Action{Type: ioa.ActInit, Proc: i, Payload: v}, nil
}

// Fail delivers the input fail_i: it fails P_i and is simultaneously an
// input of every service with endpoint i (Section 2.2.3).
func (s *System) Fail(st State, i int) (State, ioa.Action, error) {
	p, ok := s.procs[i]
	if !ok {
		return st, ioa.Action{}, fmt.Errorf("%w: %d", ErrUnknownProcess, i)
	}
	next := s.withProc(st, i, p.Fail(s.ProcState(st, i)))
	svcs := make([]service.State, len(next.svcs))
	copy(svcs, next.svcs)
	for idx, k := range s.svcIDs {
		if sv := s.svcs[k]; sv.HasEndpoint(i) {
			svcs[idx] = sv.Fail(svcs[idx], i)
		}
	}
	next = State{procs: next.procs, svcs: svcs}
	return next, ioa.Action{Type: ioa.ActFail, Proc: i}, nil
}

// Enabled returns the action the given task would perform in st, with
// ok = false if the task is not applicable.
func (s *System) Enabled(st State, task ioa.Task) (ioa.Action, bool) {
	switch task.Kind {
	case ioa.TaskProcess:
		p, ok := s.procs[task.Proc]
		if !ok {
			return ioa.Action{}, false
		}
		// The process task is always applicable (dummy step at worst).
		return p.Enabled(s.ProcState(st, task.Proc)), true
	case ioa.TaskPerform, ioa.TaskOutput, ioa.TaskCompute:
		sv, ok := s.svcs[task.Service]
		if !ok {
			return ioa.Action{}, false
		}
		return sv.Enabled(s.SvcState(st, task.Service), task)
	default:
		return ioa.Action{}, false
	}
}

// Applicable reports whether the task has an enabled action in st
// (the applicability notion of Lemma 1).
func (s *System) Applicable(st State, task ioa.Task) bool {
	_, ok := s.Enabled(st, task)
	return ok
}

// Apply runs one task of the composed system, performing the matched
// transitions of all participants of the resulting action.
func (s *System) Apply(st State, task ioa.Task) (State, ioa.Action, error) {
	switch task.Kind {
	case ioa.TaskProcess:
		return s.applyProcess(st, task)
	case ioa.TaskPerform, ioa.TaskCompute:
		sv, ok := s.svcs[task.Service]
		if !ok {
			return st, ioa.Action{}, fmt.Errorf("%w: %s", ErrUnknownService, task.Service)
		}
		ss, act, err := sv.Apply(s.SvcState(st, task.Service), task)
		if err != nil {
			return st, ioa.Action{}, err
		}
		return s.withSvc(st, task.Service, ss), act, nil
	case ioa.TaskOutput:
		return s.applyOutput(st, task)
	default:
		return st, ioa.Action{}, fmt.Errorf("%w: %v", ErrNotApplicable, task)
	}
}

// applyProcess runs a process task. If the emitted action is an invocation,
// the target service takes the matching input transition in the same step.
func (s *System) applyProcess(st State, task ioa.Task) (State, ioa.Action, error) {
	p, ok := s.procs[task.Proc]
	if !ok {
		return st, ioa.Action{}, fmt.Errorf("%w: %d", ErrUnknownProcess, task.Proc)
	}
	ps, act := p.Step(s.ProcState(st, task.Proc))
	next := s.withProc(st, task.Proc, ps)
	if act.Type == ioa.ActInvoke {
		sv, ok := s.svcs[act.Service]
		if !ok {
			return st, ioa.Action{}, fmt.Errorf("%w: %s (invoked by P%d)", ErrUnknownService, act.Service, task.Proc)
		}
		ss, err := sv.Invoke(s.SvcState(next, act.Service), task.Proc, act.Payload)
		if err != nil {
			return st, ioa.Action{}, fmt.Errorf("P%d invoking %s: %w", task.Proc, act.Service, err)
		}
		next = s.withSvc(next, act.Service, ss)
	}
	return next, act, nil
}

// applyOutput runs a service i-output task. If the emitted action is a real
// response b_{i,k}, process P_i takes the matching input transition in the
// same step.
func (s *System) applyOutput(st State, task ioa.Task) (State, ioa.Action, error) {
	sv, ok := s.svcs[task.Service]
	if !ok {
		return st, ioa.Action{}, fmt.Errorf("%w: %s", ErrUnknownService, task.Service)
	}
	ss, act, err := sv.Apply(s.SvcState(st, task.Service), task)
	if err != nil {
		return st, ioa.Action{}, err
	}
	next := s.withSvc(st, task.Service, ss)
	if act.Type == ioa.ActRespond {
		p, ok := s.procs[act.Proc]
		if !ok {
			return st, ioa.Action{}, fmt.Errorf("%w: %d", ErrUnknownProcess, act.Proc)
		}
		next = s.withProc(next, act.Proc, p.OnResponse(s.ProcState(next, act.Proc), task.Service, act.Payload))
	}
	return next, act, nil
}

// Participants returns the names of the automata participating in the action
// the task would take from st ("P<i>" for processes, the service index for
// services), or nil if the task is not applicable. Per the paper, every
// non-fail action has at most two participants.
func (s *System) Participants(st State, task ioa.Task) []string {
	act, ok := s.Enabled(st, task)
	if !ok {
		return nil
	}
	switch act.Type {
	case ioa.ActInvoke, ioa.ActRespond:
		return []string{procName(act.Proc), act.Service}
	case ioa.ActPerform, ioa.ActDummyPerform, ioa.ActDummyOutput:
		return []string{act.Service}
	case ioa.ActCompute, ioa.ActDummyCompute:
		return []string{act.Service}
	case ioa.ActDecide, ioa.ActProcStep, ioa.ActProcDummy:
		return []string{procName(act.Proc)}
	default:
		return nil
	}
}

func procName(i int) string { return fmt.Sprintf("P%d", i) }

// Decisions returns the recorded decision value of every process that has
// one, keyed by process id.
func (s *System) Decisions(st State) map[int]string {
	out := map[int]string{}
	for i, id := range s.procIDs {
		if ps := st.procs[i]; ps.HasDec {
			out[id] = ps.Decided
		}
	}
	return out
}

// FailedProcesses returns the ids of failed processes, ascending.
func (s *System) FailedProcesses(st State) []int {
	var out []int
	for i, id := range s.procIDs {
		if st.procs[i].Failed {
			out = append(out, id)
		}
	}
	return out
}

// LiveProcesses returns the ids of non-failed processes, ascending.
func (s *System) LiveProcesses(st State) []int {
	out := make([]int, 0, len(s.procIDs))
	for i, id := range s.procIDs {
		if !st.procs[i].Failed {
			out = append(out, id)
		}
	}
	return out
}

// FailedSet returns the failed processes as an IntSet.
func (s *System) FailedSet(st State) codec.IntSet {
	return codec.NewIntSet(s.FailedProcesses(st)...)
}
