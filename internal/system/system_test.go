package system

import (
	"errors"
	"testing"

	"github.com/ioa-lab/boosting/internal/ioa"
	"github.com/ioa-lab/boosting/internal/process"
	"github.com/ioa-lab/boosting/internal/seqtype"
	"github.com/ioa-lab/boosting/internal/service"
	"github.com/ioa-lab/boosting/internal/servicetype"
)

// forwardProgram forwards its init to consensus object "k0" and decides on
// the object's response — the canonical "solve consensus with a consensus
// service" protocol.
type forwardProgram struct{}

func (forwardProgram) Start(int) map[string]string { return nil }
func (forwardProgram) HandleInit(ctx *process.Context, v string) {
	ctx.Invoke("k0", seqtype.Init(v))
}
func (forwardProgram) HandleResponse(ctx *process.Context, svc, resp string) {
	if v, ok := seqtype.DecideValue(resp); ok && svc == "k0" {
		ctx.Decide(v)
	}
}

func newTestSystem(t *testing.T, n, f int, policy service.SilencePolicy) *System {
	t.Helper()
	procs := make([]*process.Process, n)
	eps := make([]int, n)
	for i := 0; i < n; i++ {
		procs[i] = process.New(i, forwardProgram{})
		eps[i] = i
	}
	obj, err := service.New(service.Config{
		Index:      "k0",
		Type:       servicetype.FromSequential(seqtype.BinaryConsensus()),
		Endpoints:  eps,
		Resilience: f,
		Policy:     policy,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := service.NewRegister("r0", []string{"", "0", "1"}, "", eps)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(procs, []*service.Service{obj, reg})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestNewValidation(t *testing.T) {
	p0 := process.New(0, forwardProgram{})
	p0dup := process.New(0, forwardProgram{})
	if _, err := New([]*process.Process{p0, p0dup}, nil); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("dup process: %v", err)
	}
	obj, err := service.NewWaitFree("k0",
		servicetype.FromSequential(seqtype.BinaryConsensus()), []int{0, 7}, service.Adversarial)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New([]*process.Process{p0}, []*service.Service{obj}); !errors.Is(err, ErrBadEndpoint) {
		t.Errorf("bad endpoint: %v", err)
	}
}

func TestTaskEnumerationOrder(t *testing.T) {
	sys := newTestSystem(t, 2, 1, service.Adversarial)
	tasks := sys.Tasks()
	// 2 process tasks + (2 perform + 2 output) per service × 2 services.
	if len(tasks) != 2+4+4 {
		t.Fatalf("task count: %d (%v)", len(tasks), tasks)
	}
	if tasks[0] != ioa.ProcessTask(0) || tasks[1] != ioa.ProcessTask(1) {
		t.Errorf("process tasks first: %v", tasks[:2])
	}
}

func TestEndToEndConsensusRun(t *testing.T) {
	sys := newTestSystem(t, 2, 1, service.Adversarial)
	st := sys.InitialState()

	var err error
	st, _, err = sys.Init(st, 0, "0")
	if err != nil {
		t.Fatal(err)
	}
	st, _, err = sys.Init(st, 1, "1")
	if err != nil {
		t.Fatal(err)
	}

	// Round-robin all tasks until both processes decide.
	for iter := 0; iter < 100; iter++ {
		for _, task := range sys.Tasks() {
			if !sys.Applicable(st, task) {
				continue
			}
			var applyErr error
			st, _, applyErr = sys.Apply(st, task)
			if applyErr != nil {
				t.Fatal(applyErr)
			}
		}
		if len(sys.Decisions(st)) == 2 {
			break
		}
	}
	dec := sys.Decisions(st)
	if len(dec) != 2 {
		t.Fatalf("decisions: %v", dec)
	}
	if dec[0] != dec[1] {
		t.Errorf("agreement violated: %v", dec)
	}
	if dec[0] != "0" && dec[0] != "1" {
		t.Errorf("validity violated: %v", dec)
	}
}

func TestInvokeDeliveredToService(t *testing.T) {
	sys := newTestSystem(t, 2, 1, service.Adversarial)
	st := sys.InitialState()
	st, _, _ = sys.Init(st, 0, "1")
	st2, act, err := sys.Apply(st, ioa.ProcessTask(0))
	if err != nil {
		t.Fatal(err)
	}
	if act.Type != ioa.ActInvoke || act.Service != "k0" {
		t.Fatalf("action: %v", act)
	}
	if got := sys.SvcState(st2, "k0").PendingInvocations(0); len(got) != 1 || got[0] != seqtype.Init("1") {
		t.Errorf("service inv-buffer: %v", got)
	}
}

func TestResponseDeliveredToProcess(t *testing.T) {
	sys := newTestSystem(t, 2, 1, service.Adversarial)
	st := sys.InitialState()
	st, _, _ = sys.Init(st, 0, "1")
	st, _, _ = sys.Apply(st, ioa.ProcessTask(0))           // invoke
	st, _, _ = sys.Apply(st, ioa.PerformTask("k0", 0))     // perform
	st, act, err := sys.Apply(st, ioa.OutputTask("k0", 0)) // respond
	if err != nil || act.Type != ioa.ActRespond {
		t.Fatalf("respond: %v %v", act, err)
	}
	// The process reacted by queueing decide (recorded only at emission).
	if ps := sys.ProcState(st, 0); !ps.DecideQueued || ps.HasDec {
		t.Fatalf("process state after response: %+v", ps)
	}
	st, act, err = sys.Apply(st, ioa.ProcessTask(0))
	if err != nil || act.Type != ioa.ActDecide || act.Payload != "1" {
		t.Fatalf("decide: %v %v", act, err)
	}
	if got := sys.Decisions(st); got[0] != "1" {
		t.Errorf("Decisions: %v", got)
	}
}

func TestFailPropagatesToServices(t *testing.T) {
	sys := newTestSystem(t, 3, 1, service.Adversarial)
	st := sys.InitialState()
	st, act, err := sys.Fail(st, 1)
	if err != nil || act.Type != ioa.ActFail {
		t.Fatal(err)
	}
	if !sys.ProcState(st, 1).Failed {
		t.Error("process not failed")
	}
	for _, k := range sys.ServiceIDs() {
		if !sys.SvcState(st, k).Failed.Has(1) {
			t.Errorf("service %s did not record failure", k)
		}
	}
	if got := sys.FailedProcesses(st); len(got) != 1 || got[0] != 1 {
		t.Errorf("FailedProcesses: %v", got)
	}
	if got := sys.LiveProcesses(st); len(got) != 2 {
		t.Errorf("LiveProcesses: %v", got)
	}
	if !sys.FailedSet(st).Has(1) {
		t.Error("FailedSet")
	}
}

func TestApplicabilityPersistence(t *testing.T) {
	// Lemma 1: an applicable task of C stays applicable along failure-free
	// extensions that do not schedule it.
	sys := newTestSystem(t, 2, 1, service.Adversarial)
	st := sys.InitialState()
	st, _, _ = sys.Init(st, 0, "0")
	st, _, _ = sys.Init(st, 1, "1")
	st, _, _ = sys.Apply(st, ioa.ProcessTask(0)) // makes perform_0@k0 applicable

	target := ioa.PerformTask("k0", 0)
	if !sys.Applicable(st, target) {
		t.Fatal("target task should be applicable")
	}
	// Apply every other applicable task a few times; target must stay
	// applicable throughout.
	for round := 0; round < 3; round++ {
		for _, task := range sys.Tasks() {
			if task == target || !sys.Applicable(st, task) {
				continue
			}
			var err error
			st, _, err = sys.Apply(st, task)
			if err != nil {
				t.Fatal(err)
			}
			if !sys.Applicable(st, target) {
				t.Fatalf("Lemma 1 violated after %v", task)
			}
		}
	}
}

func TestFingerprintDeterminism(t *testing.T) {
	sysA := newTestSystem(t, 2, 1, service.Adversarial)
	sysB := newTestSystem(t, 2, 1, service.Adversarial)
	a, b := sysA.InitialState(), sysB.InitialState()
	if sysA.Fingerprint(a) != sysB.Fingerprint(b) {
		t.Error("initial fingerprints differ across identical systems")
	}
	a2, _, _ := sysA.Init(a, 0, "1")
	if sysA.Fingerprint(a2) == sysA.Fingerprint(a) {
		t.Error("fingerprint insensitive to init")
	}
}

func TestDeterministicReplay(t *testing.T) {
	// The same input+task sequence from the initial state yields the same
	// final fingerprint (Section 3.1: executions are determined by their
	// task sequences).
	sys := newTestSystem(t, 2, 1, service.Adversarial)
	run := func() string {
		st := sys.InitialState()
		st, _, _ = sys.Init(st, 0, "0")
		st, _, _ = sys.Init(st, 1, "1")
		for iter := 0; iter < 20; iter++ {
			for _, task := range sys.Tasks() {
				if sys.Applicable(st, task) {
					st, _, _ = sys.Apply(st, task)
				}
			}
		}
		return sys.Fingerprint(st)
	}
	if run() != run() {
		t.Error("replay diverged")
	}
}

func TestParticipants(t *testing.T) {
	sys := newTestSystem(t, 2, 1, service.Adversarial)
	st := sys.InitialState()
	st, _, _ = sys.Init(st, 0, "0")

	// Process task about to invoke: participants {P0, k0}.
	got := sys.Participants(st, ioa.ProcessTask(0))
	if len(got) != 2 || got[0] != "P0" || got[1] != "k0" {
		t.Errorf("invoke participants: %v", got)
	}
	st, _, _ = sys.Apply(st, ioa.ProcessTask(0))

	// Service perform: participant {k0} only.
	got = sys.Participants(st, ioa.PerformTask("k0", 0))
	if len(got) != 1 || got[0] != "k0" {
		t.Errorf("perform participants: %v", got)
	}
	// Idle process task: dummy step, participant {P1}.
	got = sys.Participants(st, ioa.ProcessTask(1))
	if len(got) != 1 || got[0] != "P1" {
		t.Errorf("dummy participants: %v", got)
	}
	// Non-applicable task: nil.
	if got := sys.Participants(st, ioa.OutputTask("r0", 0)); got != nil {
		t.Errorf("non-applicable participants: %v", got)
	}
}

func TestApplyErrors(t *testing.T) {
	sys := newTestSystem(t, 2, 1, service.Adversarial)
	st := sys.InitialState()
	if _, _, err := sys.Apply(st, ioa.PerformTask("zz", 0)); !errors.Is(err, ErrUnknownService) {
		t.Errorf("unknown service: %v", err)
	}
	if _, _, err := sys.Init(st, 9, "0"); !errors.Is(err, ErrUnknownProcess) {
		t.Errorf("unknown process: %v", err)
	}
	if _, _, err := sys.Fail(st, 9); !errors.Is(err, ErrUnknownProcess) {
		t.Errorf("fail unknown: %v", err)
	}
}

func TestAdversarialObjectSilencedByFailures(t *testing.T) {
	// f = 0 consensus object, 2 processes: after one failure the adversarial
	// object may (and under our policy does) stop serving the survivor.
	sys := newTestSystem(t, 2, 0, service.Adversarial)
	st := sys.InitialState()
	st, _, _ = sys.Init(st, 0, "0")
	st, _, _ = sys.Apply(st, ioa.ProcessTask(0)) // P0 invokes k0
	st, _, _ = sys.Fail(st, 1)

	act, ok := sys.Enabled(st, ioa.PerformTask("k0", 0))
	if !ok || act.Type != ioa.ActDummyPerform {
		t.Fatalf("object not silenced: %v %v", act, ok)
	}
	// The register r0 is wait-free: still serving P0.
	st, _, _ = sys.Init(st, 0, "0") // no-op for protocol; keep st used
	_ = st
}
