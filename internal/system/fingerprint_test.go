package system

import (
	"strconv"
	"testing"

	"github.com/ioa-lab/boosting/internal/allocpin"
	"github.com/ioa-lab/boosting/internal/codec"
	"github.com/ioa-lab/boosting/internal/ioa"
	"github.com/ioa-lab/boosting/internal/process"
	"github.com/ioa-lab/boosting/internal/service"
)

// referenceProcessFingerprint is the original string-builder composition of
// the process state encoding, kept here to pin the append-based hot path to
// the stable external format byte for byte.
func referenceProcessFingerprint(st process.State) string {
	outbox := make([]string, len(st.Outbox))
	for i, o := range st.Outbox {
		outbox[i] = codec.List([]string{strconv.Itoa(int(o.Kind)), o.Service, o.Payload})
	}
	flags := ""
	if st.HasDec {
		flags += "d"
	}
	if st.DecideQueued {
		flags += "q"
	}
	if st.Failed {
		flags += "f"
	}
	return codec.List([]string{
		codec.Map(st.Vars),
		codec.List(outbox),
		codec.Atom(st.Decided),
		codec.Atom(flags),
	})
}

// referenceServiceFingerprint mirrors the original service state encoding.
func referenceServiceFingerprint(st service.State) string {
	buffers := func(buf map[int][]string) string {
		m := make(map[string]string, len(buf))
		for i, items := range buf {
			if len(items) == 0 {
				continue
			}
			m[strconv.Itoa(i)] = codec.List(items)
		}
		return codec.Map(m)
	}
	return codec.List([]string{
		codec.Atom(st.Val),
		buffers(st.Inv),
		buffers(st.Resp),
		st.Failed.Fingerprint(),
	})
}

// TestFingerprintFormatStable walks real states of a composed system through
// inits, steps and failures and checks that every component fingerprint (and
// the system concatenation) matches the legacy string-builder composition.
// The interned graph keys, witness output and on-disk formats all ride on
// this stability.
func TestFingerprintFormatStable(t *testing.T) {
	sys := newTestSystem(t, 3, 1, service.Adversarial)
	st := sys.InitialState()
	check := func(label string) {
		t.Helper()
		want := ""
		for _, id := range sys.ProcessIDs() {
			ps := sys.ProcState(st, id)
			ref := referenceProcessFingerprint(ps)
			if got := ps.Fingerprint(); got != ref {
				t.Fatalf("%s: P%d fingerprint drifted:\n got  %q\n want %q", label, id, got, ref)
			}
			want += ref
		}
		for _, k := range sys.ServiceIDs() {
			ss := sys.SvcState(st, k)
			ref := referenceServiceFingerprint(ss)
			if got := ss.Fingerprint(); got != ref {
				t.Fatalf("%s: %s fingerprint drifted:\n got  %q\n want %q", label, k, got, ref)
			}
			want += ref
		}
		if got := sys.Fingerprint(st); got != want {
			t.Fatalf("%s: system fingerprint is not the component concatenation", label)
		}
		if got := string(sys.AppendFingerprint(nil, st)); got != want {
			t.Fatalf("%s: AppendFingerprint differs from Fingerprint", label)
		}
	}
	check("initial")
	var err error
	st, _, err = sys.Init(st, 0, "1")
	if err != nil {
		t.Fatal(err)
	}
	st, _, err = sys.Init(st, 1, "0")
	if err != nil {
		t.Fatal(err)
	}
	check("after inits")
	for round := 0; round < 4; round++ {
		for _, task := range sys.Tasks() {
			if !sys.Applicable(st, task) {
				continue
			}
			st, _, err = sys.Apply(st, task)
			if err != nil {
				t.Fatal(err)
			}
			check("after " + task.String())
		}
	}
	st, _, err = sys.Fail(st, 2)
	if err != nil {
		t.Fatal(err)
	}
	check("after fail_2")
}

// TestAppendFingerprintReusesBuffer pins the hot-path allocation contract:
// with a warm buffer, re-encoding a state must not allocate per call beyond
// component-internal scratch (map key sorting).
func TestAppendFingerprintReusesBuffer(t *testing.T) {
	sys := newTestSystem(t, 2, 1, service.Adversarial)
	st := sys.InitialState()
	st, _, _ = sys.Init(st, 0, "1")
	st, _, _ = sys.Apply(st, ioa.ProcessTask(0))
	buf := make([]byte, 0, 4096)
	buf = sys.AppendFingerprint(buf, st) // warm up capacity
	// The variable maps of this protocol are empty or tiny, so the whole
	// encoding should be allocation-free once the buffer has capacity.
	allocpin.Check(t, "AppendFingerprint", 100, 0, func() {
		buf = sys.AppendFingerprint(buf[:0], st)
	})
}
