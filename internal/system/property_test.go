package system_test

import (
	"testing"
	"testing/quick"

	"github.com/ioa-lab/boosting/internal/explore"
	"github.com/ioa-lab/boosting/internal/protocols"
	"github.com/ioa-lab/boosting/internal/service"
	"github.com/ioa-lab/boosting/internal/system"
)

// applyScript runs a byte-encoded schedule (task picks modulo applicable
// tasks, with occasional failure injections) and returns the final
// fingerprint.
func applyScript(t testing.TB, sys *system.System, script []byte) string {
	t.Helper()
	st := sys.InitialState()
	st, _, _ = sys.Init(st, 0, "0")
	st, _, _ = sys.Init(st, 1, "1")
	for _, b := range script {
		if b == 0xFF {
			st, _, _ = sys.Fail(st, 1)
			continue
		}
		var applicable []int
		for i, task := range sys.Tasks() {
			if sys.Applicable(st, task) {
				applicable = append(applicable, i)
			}
		}
		if len(applicable) == 0 {
			break
		}
		task := sys.Tasks()[applicable[int(b)%len(applicable)]]
		next, _, err := sys.Apply(st, task)
		if err != nil {
			t.Fatal(err)
		}
		st = next
	}
	return sys.Fingerprint(st)
}

func TestSystemReplayDeterminismProperty(t *testing.T) {
	// Property: the same schedule script always lands in the same state —
	// executions are determined by their input+task sequences (Section 3.1).
	sys, err := protocols.BuildForward(2, 1, service.Adversarial)
	if err != nil {
		t.Fatal(err)
	}
	f := func(script []byte) bool {
		if len(script) > 50 {
			script = script[:50]
		}
		return applyScript(t, sys, script) == applyScript(t, sys, script)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParticipantsAtMostTwoProperty(t *testing.T) {
	// Property (Section 2.2.3): every non-fail action has at most two
	// participants, and a two-participant action pairs a process with a
	// service.
	sys, err := protocols.BuildForward(3, 1, service.Adversarial)
	if err != nil {
		t.Fatal(err)
	}
	f := func(script []byte) bool {
		if len(script) > 40 {
			script = script[:40]
		}
		st := sys.InitialState()
		st, _, _ = sys.Init(st, 0, "0")
		st, _, _ = sys.Init(st, 1, "1")
		st, _, _ = sys.Init(st, 2, "0")
		for _, b := range script {
			for _, task := range sys.Tasks() {
				p := sys.Participants(st, task)
				if len(p) > 2 {
					return false
				}
				if len(p) == 2 && (p[0][0] != 'P' || p[1][0] == 'P') {
					return false
				}
			}
			var applicable []int
			for i, task := range sys.Tasks() {
				if sys.Applicable(st, task) {
					applicable = append(applicable, i)
				}
			}
			if len(applicable) == 0 {
				break
			}
			next, _, err := sys.Apply(st, sys.Tasks()[applicable[int(b)%len(applicable)]])
			if err != nil {
				return false
			}
			st = next
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestRandomRunsNeverViolateSafetyProperty(t *testing.T) {
	// Property: whatever the seed and failure pattern, the wait-free
	// forward system never violates agreement or validity.
	sys, err := protocols.BuildForward(3, 2, service.Adversarial)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, failFirst bool) bool {
		cfg := explore.RunConfig{Inputs: map[int]string{0: "0", 1: "1", 2: "1"}}
		if failFirst {
			cfg.Failures = []explore.FailureEvent{{Proc: 0}}
		}
		res, err := explore.Random(sys, cfg, seed, 3000)
		if err != nil {
			return false
		}
		valid := map[string]bool{"0": true, "1": true}
		var first string
		have := false
		for _, v := range res.Decisions {
			if !valid[v] {
				return false
			}
			if have && v != first {
				return false
			}
			first, have = v, true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
