package system

import (
	"fmt"

	"github.com/ioa-lab/boosting/internal/codec"
	"github.com/ioa-lab/boosting/internal/process"
	"github.com/ioa-lab/boosting/internal/service"
)

// ParseFingerprint reconstructs a system state from its canonical encoding —
// the inverse of Fingerprint/AppendFingerprint. The component encodings are
// self-delimiting, so the concatenated system fingerprint splits back into
// one process state per process (ascending id order) and one service state
// per service (sorted index order) with no separators.
//
// Every fingerprint this system produced decodes, and re-encoding the
// decoded state is byte-identical (the round-trip contract the disk-spilling
// StateStore backend is built on: spilled vertices persist only their
// fingerprints and are decoded on demand). Inputs that are not canonical
// encodings return an error wrapping codec.ErrMalformed.
func (s *System) ParseFingerprint(fp string) (State, error) {
	st := State{
		procs: make([]process.State, len(s.procIDs)),
		svcs:  make([]service.State, len(s.svcIDs)),
	}
	rest := fp
	var err error
	for i := range st.procs {
		st.procs[i], rest, err = process.ParseStatePrefix(rest)
		if err != nil {
			return State{}, fmt.Errorf("system: decode P%d: %w", s.procIDs[i], err)
		}
	}
	for i := range st.svcs {
		st.svcs[i], rest, err = service.ParseStatePrefix(rest)
		if err != nil {
			return State{}, fmt.Errorf("system: decode service %s: %w", s.svcIDs[i], err)
		}
	}
	if rest != "" {
		return State{}, fmt.Errorf("system: %w: %d trailing bytes after state encoding", codec.ErrMalformed, len(rest))
	}
	return st, nil
}
