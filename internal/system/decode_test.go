package system_test

// Round-trip and fuzz coverage for the state decoder: for every registry
// protocol family, the root states and a deep BFS sample of reachable
// states must satisfy decode(encode(st)) == st up to byte-identical
// re-encoding — the contract the disk-spilling StateStore backend depends
// on. (External test package: the protocol builders import system, so these
// tests cannot live in-package.)

import (
	"errors"
	"strings"
	"testing"

	"github.com/ioa-lab/boosting/internal/codec"
	"github.com/ioa-lab/boosting/internal/protocols"
	"github.com/ioa-lab/boosting/internal/service"
	"github.com/ioa-lab/boosting/internal/system"
)

// registrySystems builds one instance of every registry protocol family.
func registrySystems(t testing.TB) map[string]*system.System {
	t.Helper()
	out := map[string]*system.System{}
	add := func(name string, sys *system.System, err error) {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = sys
	}
	{
		sys, err := protocols.BuildForward(3, 0, service.Adversarial)
		add("forward", sys, err)
	}
	{
		sys, err := protocols.BuildTOBConsensus(2, 0, service.Adversarial)
		add("tob", sys, err)
	}
	{
		sys, err := protocols.BuildRegisterVote(2)
		add("registervote", sys, err)
	}
	{
		sys, err := protocols.BuildSetBoost(2)
		add("setboost", sys, err)
	}
	{
		sys, err := protocols.BuildFloodSetWithP(3, 0, 2, service.Adversarial)
		add("floodset-p", sys, err)
	}
	{
		sys, err := protocols.BuildFDBoost(3, 3)
		add("fdboost", sys, err)
	}
	{
		sys, err := protocols.BuildFloodSetWithEvP(3, 2)
		add("evperfect", sys, err)
	}
	{
		sys, err := protocols.BuildSuspectCollector(3)
		add("suspectcollector", sys, err)
	}
	return out
}

// sampleStates returns the protocol's root (all inputs delivered) plus a
// BFS sample of reachable states, capped so the detector families' infinite
// graphs stay bounded.
func sampleStates(t testing.TB, sys *system.System, cap int) []system.State {
	t.Helper()
	root := sys.InitialState()
	for idx, id := range sys.ProcessIDs() {
		v := "0"
		if idx%2 == 1 {
			v = "1"
		}
		next, _, err := sys.Init(root, id, v)
		if err != nil {
			t.Fatal(err)
		}
		root = next
	}
	states := []system.State{sys.InitialState(), root}
	seen := map[string]bool{sys.Fingerprint(sys.InitialState()): true, sys.Fingerprint(root): true}
	for head := 1; head < len(states) && len(states) < cap; head++ {
		for _, task := range sys.Tasks() {
			if !sys.Applicable(states[head], task) {
				continue
			}
			succ, _, err := sys.Apply(states[head], task)
			if err != nil {
				t.Fatal(err)
			}
			fp := sys.Fingerprint(succ)
			if seen[fp] {
				continue
			}
			seen[fp] = true
			states = append(states, succ)
			if len(states) >= cap {
				break
			}
		}
	}
	return states
}

// TestParseFingerprintRoundTrip: every sampled reachable state of every
// registry family decodes from its fingerprint and re-encodes
// byte-identically.
func TestParseFingerprintRoundTrip(t *testing.T) {
	for name, sys := range registrySystems(t) {
		states := sampleStates(t, sys, 400)
		if len(states) < 10 {
			t.Fatalf("%s: BFS sample too small (%d states)", name, len(states))
		}
		for i, st := range states {
			fp := sys.Fingerprint(st)
			dec, err := sys.ParseFingerprint(fp)
			if err != nil {
				t.Fatalf("%s state %d: %v\nfingerprint: %q", name, i, err, fp)
			}
			if re := sys.Fingerprint(dec); re != fp {
				t.Fatalf("%s state %d: round trip not byte-identical:\n%q\n%q", name, i, fp, re)
			}
		}
		t.Logf("%s: %d states round-tripped", name, len(states))
	}
}

// TestParseFingerprintSemantics: a decoded state is behaviourally the
// original — same enabled tasks and fingerprint-identical successors —
// which is what the spill store needs when it re-expands decoded states.
func TestParseFingerprintSemantics(t *testing.T) {
	sys := registrySystems(t)["forward"]
	for i, st := range sampleStates(t, sys, 60) {
		dec, err := sys.ParseFingerprint(sys.Fingerprint(st))
		if err != nil {
			t.Fatal(err)
		}
		for _, task := range sys.Tasks() {
			if app := sys.Applicable(dec, task); app != sys.Applicable(st, task) {
				t.Fatalf("state %d: applicability of %v differs after decode", i, task)
			}
			if !sys.Applicable(st, task) {
				continue
			}
			want, wantAct, err := sys.Apply(st, task)
			if err != nil {
				t.Fatal(err)
			}
			got, gotAct, err := sys.Apply(dec, task)
			if err != nil {
				t.Fatal(err)
			}
			if gotAct != wantAct {
				t.Fatalf("state %d task %v: action %v, want %v", i, task, gotAct, wantAct)
			}
			if sys.Fingerprint(got) != sys.Fingerprint(want) {
				t.Fatalf("state %d task %v: successor differs after decode", i, task)
			}
		}
	}
}

// TestParseFingerprintMalformed: truncated, shuffled and trailing-garbage
// inputs error instead of panicking or decoding silently, and every
// rejection wraps codec.ErrMalformed (the documented classification
// contract, including the trailing-bytes case).
func TestParseFingerprintMalformed(t *testing.T) {
	sys := registrySystems(t)["forward"]
	fp := sys.Fingerprint(sys.InitialState())
	bad := []string{
		"",
		fp[:len(fp)/2],
		fp[1:],
		fp + "tail",
		strings.Replace(fp, "[", "{", 1),
		fp + fp,
	}
	for i, s := range bad {
		_, err := sys.ParseFingerprint(s)
		if err == nil {
			t.Errorf("malformed input %d decoded without error", i)
		} else if !errors.Is(err, codec.ErrMalformed) {
			t.Errorf("malformed input %d: error does not wrap codec.ErrMalformed: %v", i, err)
		}
	}
}

// FuzzParseFingerprint bashes the system state decoder with mutated
// fingerprints: it must never panic, and whenever it accepts an input the
// decoded state must re-encode to a canonical fixed point (decoding the
// re-encoding yields the same bytes again).
func FuzzParseFingerprint(f *testing.F) {
	sys, err := protocols.BuildForward(2, 0, service.Adversarial)
	if err != nil {
		f.Fatal(err)
	}
	for _, st := range sampleStates(f, sys, 40) {
		f.Add(sys.Fingerprint(st))
	}
	f.Add("")
	f.Add("[2:<>2:[]0:0:]")
	f.Add("[999999999:x]")
	f.Add("[-1:]")
	f.Fuzz(func(t *testing.T, s string) {
		st, err := sys.ParseFingerprint(s)
		if err != nil {
			return
		}
		enc := sys.Fingerprint(st)
		st2, err := sys.ParseFingerprint(enc)
		if err != nil {
			t.Fatalf("re-encoding of accepted input does not decode: %v\ninput: %q\nre-encoded: %q", err, s, enc)
		}
		if enc2 := sys.Fingerprint(st2); enc2 != enc {
			t.Fatalf("re-encoding is not a fixed point:\n%q\n%q", enc, enc2)
		}
	})
}
