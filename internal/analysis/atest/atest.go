// Package atest is a minimal analysistest substitute for the boostvet
// golden tests.
//
// The container builds against the Go toolchain's vendored
// golang.org/x/tools subset (see third_party/), which ships the analysis
// framework but not go/packages or go/analysis/analysistest — both assume
// a module-aware loader and a network-reachable proxy. This harness does
// the part those packages would do for us, offline:
//
//   - it parses each testdata package and type-checks it with the pure
//     source importer (stdlib resolves from GOROOT source, no export
//     data, no network);
//   - packages are checked in the order given and may import one another,
//     under arbitrary fabricated import paths — so a testdata package can
//     impersonate github.com/ioa-lab/boosting/internal/explore and the
//     analyzers' type- and path-matching works exactly as on the real
//     tree;
//   - the analyzer's Requires graph runs first (inspect, ctrlflow), with
//     map-backed fact storage for passes that export facts;
//   - diagnostics on the final package are compared against
//     `// want "regexp"` comments, analysistest-style: every expectation
//     must be matched on its line, every diagnostic must be expected.
package atest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Package is one testdata package: the directory holding its .go files
// and the import path to type-check it under. Later packages may import
// earlier ones by that path.
type Package struct {
	Path string
	Dir  string
}

// Run type-checks the packages in order, applies the analyzer (and its
// requirements) to the last one, and compares the diagnostics against the
// `// want` expectations in that package's files.
func Run(t *testing.T, a *analysis.Analyzer, pkgs ...Package) {
	t.Helper()
	if len(pkgs) == 0 {
		t.Fatal("atest.Run: no packages")
	}

	fset := token.NewFileSet()
	checked := make(map[string]*types.Package)
	imp := &chainImporter{
		checked:  checked,
		fallback: importer.ForCompiler(fset, "source", nil),
	}

	var files []*ast.File
	var pkg *types.Package
	var info *types.Info
	for _, p := range pkgs {
		var err error
		files, info, pkg, err = checkPackage(fset, imp, p)
		if err != nil {
			t.Fatalf("atest.Run: type-checking %s (%s): %v", p.Path, p.Dir, err)
		}
		checked[p.Path] = pkg
	}

	var got []analysis.Diagnostic
	results := make(map[*analysis.Analyzer]any)
	facts := newFactStore()
	target := pkgs[len(pkgs)-1]
	var runPass func(a *analysis.Analyzer) error
	runPass = func(a *analysis.Analyzer) error {
		if _, done := results[a]; done {
			return nil
		}
		resultOf := make(map[*analysis.Analyzer]any)
		for _, req := range a.Requires {
			if err := runPass(req); err != nil {
				return err
			}
			resultOf[req] = results[req]
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			TypesSizes: types.SizesFor("gc", runtime.GOARCH),
			ResultOf:   resultOf,
			Report: func(d analysis.Diagnostic) {
				got = append(got, d)
			},
			ReadFile:          os.ReadFile,
			ImportObjectFact:  facts.importObjectFact,
			ExportObjectFact:  facts.exportObjectFact,
			ImportPackageFact: facts.importPackageFact,
			ExportPackageFact: func(analysis.Fact) {},
			AllObjectFacts:    func() []analysis.ObjectFact { return nil },
			AllPackageFacts:   func() []analysis.PackageFact { return nil },
		}
		res, err := a.Run(pass)
		if err != nil {
			return fmt.Errorf("analyzer %s on %s: %w", a.Name, target.Path, err)
		}
		results[a] = res
		return nil
	}
	// Only the target analyzer's diagnostics count; requirement passes
	// (inspect, ctrlflow) report nothing anyway.
	if err := runPass(a); err != nil {
		t.Fatal(err)
	}

	compare(t, fset, files, got)
}

// chainImporter resolves fabricated testdata paths from the already-
// checked set and everything else (the stdlib) from GOROOT source.
type chainImporter struct {
	checked  map[string]*types.Package
	fallback types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.checked[path]; ok {
		return p, nil
	}
	return c.fallback.Import(path)
}

func checkPackage(fset *token.FileSet, imp types.Importer, p Package) ([]*ast.File, *types.Info, *types.Package, error) {
	entries, err := os.ReadDir(p.Dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, nil, fmt.Errorf("no .go files in %s", p.Dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(p.Path, fset, files, info)
	if err != nil {
		return nil, nil, nil, err
	}
	return files, info, pkg, nil
}

// factStore is the map-backed stand-in for the driver's fact
// serialization. Facts flow only within one package's pass graph here,
// which is all ctrlflow needs in these tests.
type factStore struct {
	objFacts map[factKey]analysis.Fact
}

type factKey struct {
	obj types.Object
	typ reflect.Type
}

func newFactStore() *factStore {
	return &factStore{objFacts: make(map[factKey]analysis.Fact)}
}

func (s *factStore) exportObjectFact(obj types.Object, fact analysis.Fact) {
	s.objFacts[factKey{obj, reflect.TypeOf(fact)}] = fact
}

func (s *factStore) importObjectFact(obj types.Object, fact analysis.Fact) bool {
	stored, ok := s.objFacts[factKey{obj, reflect.TypeOf(fact)}]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

func (s *factStore) importPackageFact(*types.Package, analysis.Fact) bool { return false }

// expectation is one `// want "re"` comment.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRe = regexp.MustCompile("(?:\"((?:[^\"\\\\]|\\\\.)*)\")|(?:`([^`]*)`)")

// parseWants extracts expectations from the files' comments. A comment
// `// want "re1" "re2"` expects both regexps to match diagnostics on the
// comment's own line.
func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) []expectation {
	t.Helper()
	var wants []expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(rest, -1) {
					raw := m[2]
					if m[1] != "" {
						unq, err := strconv.Unquote(`"` + m[1] + `"`)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", pos, m[1], err)
						}
						raw = unq
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, raw, err)
					}
					wants = append(wants, expectation{pos.Filename, pos.Line, re})
				}
			}
		}
	}
	return wants
}

func compare(t *testing.T, fset *token.FileSet, files []*ast.File, got []analysis.Diagnostic) {
	t.Helper()
	wants := parseWants(t, fset, files)

	matched := make([]bool, len(got))
	for _, w := range wants {
		found := false
		for i, d := range got {
			if matched[i] {
				continue
			}
			pos := fset.Position(d.Pos)
			if pos.Filename == w.file && pos.Line == w.line && w.re.MatchString(d.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: no diagnostic matching %q", filepath.Base(w.file), w.line, w.re)
		}
	}
	var unexpected []string
	for i, d := range got {
		if !matched[i] {
			pos := fset.Position(d.Pos)
			unexpected = append(unexpected, fmt.Sprintf("%s:%d: unexpected diagnostic: %s", filepath.Base(pos.Filename), pos.Line, d.Message))
		}
	}
	sort.Strings(unexpected)
	for _, u := range unexpected {
		t.Error(u)
	}
}
