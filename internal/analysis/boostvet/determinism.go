package boostvet

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// DeterminismAnalyzer guards the bit-identical-exploration invariant: the
// graph (IDs, edges, valences, reports, progress) must be identical for
// any worker × shard × store configuration, so the engine and its output
// paths must not consume ambient nondeterminism.
//
// In the root package and internal/{explore,intern,symmetry,server} it
// flags:
//
//   - iteration over a map whose loop body feeds an output sink
//     (fmt printing, Write*/Encode*/Marshal* calls) — Go randomizes map
//     order, so anything emitted from inside the range is
//     run-dependent. Collecting keys and sorting first is the sanctioned
//     pattern and is naturally not flagged (append is not a sink);
//   - calls to time.Now/time.Since — wall-clock values must not reach
//     fingerprints, reports, or progress records;
//   - package-level math/rand calls — the global source is unseeded (or
//     process-seeded), so even the explicitly seeded construction site
//     carries an ignore directive documenting why it is exempt
//     (methods on an explicitly constructed *rand.Rand are not flagged:
//     the hazard is the source, not its use).
var DeterminismAnalyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "flag map-order, wall-clock and global-rand nondeterminism in the exploration engine and its output paths " +
		"(root package, internal/{explore,intern,symmetry,server})",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runDeterminism,
}

// determinismScope lists the module-relative package paths the analyzer
// covers: the engine, its keying/reduction layers, and the two places
// that serialize results for users.
var determinismScope = map[string]bool{
	"":                  true, // the root boosting package
	"internal/explore":  true,
	"internal/intern":   true,
	"internal/symmetry": true,
	"internal/server":   true,
}

func runDeterminism(pass *analysis.Pass) (any, error) {
	rel, inModule := pkgRel(pass.Pkg)
	if !inModule || !determinismScope[rel] {
		return nil, nil
	}
	ig := newIgnorer(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil), (*ast.RangeStmt)(nil)}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := funcOf(pass, n)
			if fn == nil || fn.Pkg() == nil {
				return
			}
			sig, _ := fn.Type().(*types.Signature)
			pkgLevel := sig != nil && sig.Recv() == nil
			switch {
			case isPkgFunc(fn, "time", "Now") || isPkgFunc(fn, "time", "Since"):
				ig.report(pass, "determinism", n.Pos(),
					"time.%s in the deterministic-exploration scope: wall-clock values must not reach fingerprints, reports or progress", fn.Name())
			case pkgLevel && (fn.Pkg().Path() == "math/rand" || fn.Pkg().Path() == "math/rand/v2"):
				ig.report(pass, "determinism", n.Pos(),
					"math/rand.%s in the deterministic-exploration scope: randomness is allowed only on the explicitly seeded RunRandom path (document with //lint:boostvet-ignore determinism)", fn.Name())
			}
		case *ast.RangeStmt:
			t := pass.TypesInfo.TypeOf(n.X)
			if t == nil {
				return
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return
			}
			if sink := findOutputSink(pass, n.Body); sink != nil {
				ig.report(pass, "determinism", n.Pos(),
					"map iteration feeds %s: map order is randomized, so emitted output is run-dependent — collect the keys, sort, then iterate", sink.name)
			}
		}
	})
	return nil, nil
}

// outputSink describes the first output call found in a map-range body.
type outputSink struct{ name string }

// findOutputSink looks for a call inside body that emits bytes somewhere a
// user (or a fingerprint) can see: the fmt printing family, or any method
// call named Write*/Encode*/Marshal*/Fprint* (bytes.Buffer, strings.Builder,
// io.Writer, encoders). Plain collection — append, map insert, arithmetic —
// is not a sink, so the collect-keys-then-sort idiom passes untouched.
func findOutputSink(pass *analysis.Pass, body *ast.BlockStmt) *outputSink {
	var found *outputSink
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := funcOf(pass, call)
		if fn == nil {
			return true
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && fn.Name() != "Sprintf" && fn.Name() != "Errorf" {
			// Sprintf/Errorf only matter if their result is emitted, and
			// that emission is itself a sink we will see.
			found = &outputSink{name: "fmt." + fn.Name()}
			return false
		}
		for _, prefix := range []string{"Write", "Encode", "Marshal", "Fprint"} {
			if len(fn.Name()) >= len(prefix) && fn.Name()[:len(prefix)] == prefix {
				found = &outputSink{name: fn.Name()}
				return false
			}
		}
		return true
	})
	return found
}
