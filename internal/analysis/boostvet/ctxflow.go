package boostvet

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// CtxFlowAnalyzer guards cancellation: in internal/{explore,server} — the
// packages whose loops run for minutes on large frontiers and whose jobs
// the boostd pool must be able to abandon — a function that accepts a
// context.Context must actually let it interrupt the work. Concretely:
//
//   - calls must not manufacture a fresh context.Background()/TODO()
//     while a caller's ctx is in scope (that detaches the callee from
//     cancellation); in functions without a ctx parameter a root context
//     is still flagged — a deliberate detachment (a job that must outlive
//     its submitting request) carries an ignore directive saying so.
//     Test files are exempt: tests own their root contexts;
//   - every unbounded loop (`for { ... }` / `for cond { ... }`) in the
//     function must either mention the context — forwarding it to a
//     callee, polling ctx.Err(), or selecting on ctx.Done() — or be
//     provably short some other way. Counted loops (`for i := ...`) and
//     range loops are bounded by their data and are exempt.
//
// The check is intentionally a mention-check, not a dataflow proof: the
// engine's convention (`ctxErr(ctx)` once per level or per item) makes
// any genuine poll or forward syntactically visible in the loop.
var CtxFlowAnalyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "check that context.Context parameters in internal/{explore,server} are threaded into loop-bearing " +
		"callees or polled inside unbounded loops",
	Run: runCtxFlow,
}

var ctxFlowScope = map[string]bool{
	"internal/explore": true,
	"internal/server":  true,
}

func runCtxFlow(pass *analysis.Pass) (any, error) {
	rel, inModule := pkgRel(pass.Pkg)
	if !inModule || !ctxFlowScope[rel] {
		return nil, nil
	}
	ig := newIgnorer(pass)

	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			checkCtxFlow(pass, ig, fn.Body, ctxParam(pass, fn))
			return false
		})
	}
	return nil, nil
}

// ctxParam returns the object of the first context.Context parameter.
func ctxParam(pass *analysis.Pass, fn *ast.FuncDecl) types.Object {
	if fn.Type.Params == nil {
		return nil
	}
	for _, field := range fn.Type.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if !isContextType(t) {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				return pass.TypesInfo.Defs[name]
			}
		}
	}
	return nil
}

func isContextType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

func checkCtxFlow(pass *analysis.Pass, ig *ignorer, body *ast.BlockStmt, ctxObj types.Object) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := funcOf(pass, n)
			if isPkgFunc(fn, "context", "Background") || isPkgFunc(fn, "context", "TODO") {
				if ctxObj != nil {
					ig.report(pass, "ctxflow", n.Pos(),
						"context.%s() while the caller's ctx is in scope detaches this call chain from cancellation: thread ctx instead", fn.Name())
				} else {
					ig.report(pass, "ctxflow", n.Pos(),
						"context.%s() manufactures a root context in the exploration/serving layer: accept a caller ctx, or document the deliberate detachment with an ignore directive", fn.Name())
				}
			}
		case *ast.ForStmt:
			if ctxObj == nil {
				return true
			}
			// Counted loops (`for i := 0; i < n; i++`) terminate with
			// their bound; only condition-less and condition-only loops
			// can spin for the life of a large exploration.
			if n.Init != nil || n.Post != nil {
				return true
			}
			if !usesObject(pass.TypesInfo, n, ctxObj) {
				ig.report(pass, "ctxflow", n.Pos(),
					"unbounded loop never consults ctx: poll ctx.Err()/select on ctx.Done() or forward ctx to the callee doing the work")
			}
		}
		return true
	})
}
