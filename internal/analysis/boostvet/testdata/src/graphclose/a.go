// Positive, suppressed and negative cases for the graphclose analyzer.
// The positives replicate the leak shapes found (and since fixed) on the
// real tree: cmd/hookfind's early return, cmd/boostcheck's fall-off-the-
// end return, and cmd/experiments' derived-read returns.
package a

import (
	"fmt"
	"log"
	"os"

	boosting "github.com/ioa-lab/boosting"
)

// The pre-fix cmd/hookfind shape: one early return leaks while the main
// path closes.
func leakEarlyReturn() error {
	chk, err := boosting.NewChecker()
	if err != nil {
		return err
	}
	inits, err := chk.ClassifyInits()
	if err != nil {
		return err
	}
	fmt.Println(inits.BivalentIndex)
	if inits.BivalentIndex < 0 {
		return nil // want `graph from ClassifyInits is not closed on this path`
	}
	boosting.CloseGraph(inits.Graph)
	return nil
}

// The pre-fix cmd/boostcheck shape: the report falls out of scope at the
// final return.
func leakFinalReturn() error {
	chk, err := boosting.NewChecker()
	if err != nil {
		return err
	}
	report, err := chk.Refute(1)
	if err != nil {
		return err
	}
	fmt.Println(report.Violated())
	return nil // want `graph from Refute is not closed on this path`
}

// The pre-fix cmd/experiments shape: only a derived read survives the
// return; the carrier itself is dropped.
func leakDerivedReturn() (bool, error) {
	chk, err := boosting.NewChecker()
	if err != nil {
		return false, err
	}
	report, err := chk.Refute(1)
	if err != nil {
		return false, err
	}
	return report.Violated(), nil // want `graph from Refute is not closed on this path`
}

func discard() {
	chk, err := boosting.NewChecker()
	if err != nil {
		return
	}
	chk.Explore()        // want `result of Explore carries an open graph but is discarded`
	_, _ = chk.Refute(1) // want `result of Refute carries an open graph but is assigned to _`
}

// A borrowed graph with a documented owner elsewhere.
func suppressed() error {
	chk, err := boosting.NewChecker()
	if err != nil {
		return err
	}
	g, err := chk.Explore()
	if err != nil {
		return err
	}
	fmt.Println(g.Size())
	//lint:boostvet-ignore graphclose — g borrows a store owned by the harness
	return nil
}

// The post-fix shape: a deferred Close right after the error check covers
// every subsequent exit.
func deferClose() error {
	chk, err := boosting.NewChecker()
	if err != nil {
		return err
	}
	report, err := chk.Refute(1)
	if err != nil {
		return err
	}
	defer report.Close()
	fmt.Println(report.Violated())
	return nil
}

// Ownership transfer: returning the carrier makes the caller responsible.
func transfer() (*boosting.Report, error) {
	chk, err := boosting.NewChecker()
	if err != nil {
		return nil, err
	}
	report, err := chk.Refute(1)
	if err != nil {
		return nil, err
	}
	return report, nil
}

type holder struct{ R *boosting.Report }

// Storing the carrier somewhere longer-lived transfers ownership too.
func stash(h *holder) error {
	chk, err := boosting.NewChecker()
	if err != nil {
		return err
	}
	report, err := chk.Refute(1)
	if err != nil {
		return err
	}
	h.R = report
	return nil
}

// A reopened durable graph holds the same descriptors as a fresh build:
// dropping the handle at a return leaks exactly like the build shapes.
func leakReopen() error {
	chk, err := boosting.NewChecker()
	if err != nil {
		return err
	}
	g, err := chk.OpenGraph("graphs/forward")
	if err != nil {
		return err
	}
	fmt.Println(g.Size())
	return nil // want `graph from OpenGraph is not closed on this path`
}

// A recheck result owns the reopened base graph through its exported
// Graph field; falling off the end without Close leaks the base store.
func leakRecheck() error {
	chk, err := boosting.NewChecker()
	if err != nil {
		return err
	}
	prev, err := chk.OpenGraph("graphs/forward")
	if err != nil {
		return err
	}
	res, err := chk.Recheck(prev)
	if err != nil {
		return err
	}
	fmt.Println(res.ReachableStates)
	return nil // want `graph from Recheck is not closed on this path`
}

// The canonical incremental idiom: Recheck takes ownership of the
// reopened base on success, so one deferred Close on the result covers
// both handles on every subsequent exit.
func recheckClose() error {
	chk, err := boosting.NewChecker()
	if err != nil {
		return err
	}
	prev, err := chk.OpenGraph("graphs/forward")
	if err != nil {
		return err
	}
	res, err := chk.Recheck(prev)
	if err != nil {
		return err
	}
	defer res.Close()
	fmt.Println(res.Dirty, res.Fresh)
	return nil
}

// Process exits end paths: descriptors do not outlive the process.
func exits() {
	chk, err := boosting.NewChecker()
	if err != nil {
		return
	}
	g, err := chk.Explore()
	if err != nil {
		log.Fatal(err)
	}
	if g.Size() == 0 {
		os.Exit(1)
	}
	boosting.CloseGraph(g)
}
