// Positive, suppressed and negative cases for the ctxflow analyzer.
// Type-checked as github.com/ioa-lab/boosting/internal/server, which is
// inside the cancellation scope.
package server

import "context"

func work() {}

func step(ctx context.Context) {}

func detached(ctx context.Context) {
	step(context.Background()) // want `detaches this call chain from cancellation`
}

func rootCtx() {
	ctx := context.Background() // want `manufactures a root context`
	step(ctx)
}

// The job-outlives-its-request shape: deliberate detachment, documented.
func rootCtxWaived() {
	ctx := context.Background() //lint:boostvet-ignore ctxflow — job lifetime is owned by the server
	step(ctx)
}

func spin(ctx context.Context, ch chan int) {
	for { // want `unbounded loop never consults ctx`
		select {
		case <-ch:
		}
	}
}

func polls(ctx context.Context, ch chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-ch:
		}
	}
}

func forwards(ctx context.Context, n int) {
	for {
		step(ctx)
		if n == 0 {
			return
		}
		n--
	}
}

// Counted and range loops are bounded by their data.
func counted(ctx context.Context, n int) {
	for i := 0; i < n; i++ {
		work()
	}
}

func ranges(ctx context.Context, xs []int) {
	for range xs {
		work()
	}
}
