// Negative scope case: cmd/ packages are outside the deterministic-
// exploration scope, so wall-clock reads here are fine (the CLIs print
// timings on purpose).
package oos

import "time"

func now() int64 { return time.Now().Unix() }
