// Package explore is a typed stub of the real
// github.com/ioa-lab/boosting/internal/explore for the boostvet golden
// tests: the atest harness type-checks it under that import path so the
// analyzers' type- and path-matching behaves exactly as on the real tree.
package explore

type StateID uint32

type Graph struct {
	size int
}

func (g *Graph) Size() int { return g.size }

func CloseGraphStore(g *Graph) error { return nil }

type InitClassification struct {
	BivalentIndex int
	Roots         []StateID
	Graph         *Graph
}

func (c *InitClassification) Close() error { return CloseGraphStore(c.Graph) }

type Report struct {
	Claimed      int
	Inits        *InitClassification
	Certificates []string
}

func (r *Report) Violated() bool { return len(r.Certificates) > 0 }

func (r *Report) Close() error { return r.Inits.Close() }

func BuildGraph() (*Graph, error) { return &Graph{}, nil }

type RecheckResult struct {
	Graph           *Graph
	Dirty           int
	Fresh           int
	ReachableStates int
}

func (r *RecheckResult) Close() error { return CloseGraphStore(r.Graph) }

func OpenGraph(dir string) (*Graph, error) { return &Graph{}, nil }

func Recheck(prev *Graph) (*RecheckResult, error) { return &RecheckResult{Graph: prev}, nil }
