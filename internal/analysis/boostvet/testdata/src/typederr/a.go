// Positive, suppressed and negative cases for the typederr analyzer.
package t

import (
	"errors"
	"fmt"
)

var ErrMalformed = errors.New("malformed record")

type LimitError struct{ Limit int }

func (e *LimitError) Error() string { return fmt.Sprintf("state limit %d exceeded", e.Limit) }

func stringCompare(err error) bool {
	return err.Error() == "explore: state limit exceeded" // want `comparing err.Error`
}

func stringCompareFlipped(err error) bool {
	return "explore: state limit exceeded" != err.Error() // want `comparing err.Error`
}

func sentinelCompare(err error) bool {
	return err == ErrMalformed // want `direct comparison against sentinel ErrMalformed`
}

func assertion(err error) int {
	if le, ok := err.(*LimitError); ok { // want `type assertion on .*LimitError loses wrapped errors`
		return le.Limit
	}
	return 0
}

func typeSwitch(err error) int {
	switch e := err.(type) {
	case *LimitError: // want `type-switch case on .*LimitError loses wrapped errors`
		return e.Limit
	default:
		return 0
	}
}

func flattenWrap(err error) error {
	return fmt.Errorf("hook search: %v", err) // want `fmt.Errorf formats an error without %w`
}

// The codec layer compares identity on purpose at one site; the waiver
// documents that the sentinel is never wrapped there.
func waived(err error) bool {
	//lint:boostvet-ignore typederr — identity comparison on the unwrapped decode path
	return err == ErrMalformed
}

// The sanctioned forms.
func sentinelIs(err error) bool {
	return errors.Is(err, ErrMalformed)
}

func errorsAs(err error) int {
	var le *LimitError
	if errors.As(err, &le) {
		return le.Limit
	}
	return 0
}

func properWrap(err error) error {
	return fmt.Errorf("hook search: %w", err)
}

func nilCheck(err error) bool {
	return err == nil
}
