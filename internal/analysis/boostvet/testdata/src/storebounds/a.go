// Positive, suppressed and negative cases for the storebounds analyzer.
package storex

import "fmt"

type StateID uint32

type unguarded struct{ xs []string }

// The index runs before any bounds comparison at all.
func (s *unguarded) Fingerprint(id StateID) string {
	return s.xs[id] // want `index expression in store read accessor Fingerprint`
}

type intGuarded struct{ xs []string }

// An int guard does not count: a StateID above MaxInt32 survives the int
// conversion on 32-bit targets and the uint trick is the house style.
func (s *intGuarded) Fingerprint(id StateID) string {
	if int(id) >= len(s.xs) {
		return ""
	}
	return s.xs[id] // want `index expression in store read accessor Fingerprint`
}

type guarded struct{ xs []string }

// The canonical total accessor.
func (s *guarded) Fingerprint(id StateID) string {
	if uint(id) >= uint(len(s.xs)) {
		return ""
	}
	return s.xs[id]
}

type panicking struct{ xs []string }

func (s *panicking) State(id StateID) (string, bool) {
	if uint(id) >= uint(len(s.xs)) {
		return "", false
	}
	if s.xs[id] == "" {
		panic(fmt.Sprintf("corrupt entry %d", id)) // want `panic in store read accessor State`
	}
	return s.xs[id], true
}

type waived struct{ xs []string }

// The spill backend's corruption panics are deliberate and documented.
func (s *waived) State(id StateID) (string, bool) {
	if uint(id) >= uint(len(s.xs)) {
		return "", false
	}
	if s.xs[id] == "" {
		//lint:boostvet-ignore storebounds — corruption of self-written bytes, not a bounds miss
		panic("corrupt entry")
	}
	return s.xs[id], true
}

type outer struct{ inner guarded }

// Pure delegation: the bounds discipline lives at the forwarding target.
func (o *outer) Fingerprint(id StateID) string { return o.inner.Fingerprint(id) }

type writer struct{ xs []string }

// Write-side methods are not read accessors; growth is the caller's
// invariant and indexing freely is fine.
func (w *writer) SetState(id StateID, v string) { w.xs[id] = v }
