// Positive, suppressed and negative cases for the determinism analyzer.
// Type-checked as github.com/ioa-lab/boosting/internal/server, which is
// inside the deterministic-exploration scope.
package server

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

func wallClock() int64 {
	return time.Now().Unix() // want `time.Now in the deterministic-exploration scope`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since in the deterministic-exploration scope`
}

func globalRand() int {
	return rand.Int() // want `math/rand.Int in the deterministic-exploration scope`
}

func seededButUndocumented(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // want `math/rand.New in the deterministic` `math/rand.NewSource in the deterministic`
}

// The sanctioned construction site carries a documented waiver; methods on
// the resulting *rand.Rand are not flagged (the hazard is the source).
func seededDocumented(seed int64) int {
	rng := rand.New(rand.NewSource(seed)) //lint:boostvet-ignore determinism — explicitly seeded replay path
	return rng.Intn(10)
}

func mapOrderEmission(w *strings.Builder, m map[string]int) {
	for k, v := range m { // want `map iteration feeds fmt.Fprintf`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// Collect-then-sort is the sanctioned pattern: append is not a sink, and
// the emitting loop ranges over a sorted slice, not the map.
func sortedEmission(w *strings.Builder, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}
