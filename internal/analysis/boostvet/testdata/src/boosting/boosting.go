// Package boosting is a typed stub of the real façade package for the
// boostvet golden tests, type-checked under the module root import path.
// The aliases mirror the real types.go so analyzers must see through
// them, exactly as on the real tree.
package boosting

import "github.com/ioa-lab/boosting/internal/explore"

type (
	Graph              = explore.Graph
	InitClassification = explore.InitClassification
	Report             = explore.Report
	RecheckResult      = explore.RecheckResult
	StateID            = explore.StateID
)

func CloseGraph(g *Graph) error { return explore.CloseGraphStore(g) }

type Checker struct{}

func NewChecker() (*Checker, error) { return &Checker{}, nil }

func (c *Checker) Explore() (*Graph, error) { return explore.BuildGraph() }

func (c *Checker) ClassifyInits() (*InitClassification, error) {
	g, err := explore.BuildGraph()
	if err != nil {
		return nil, err
	}
	return &InitClassification{Graph: g}, nil
}

func (c *Checker) Refute(claim int) (*Report, error) {
	inits, err := c.ClassifyInits()
	if err != nil {
		return nil, err
	}
	return &Report{Claimed: claim, Inits: inits}, nil
}

func (c *Checker) OpenGraph(dir string) (*Graph, error) { return explore.OpenGraph(dir) }

func (c *Checker) Recheck(prev *Graph) (*RecheckResult, error) { return explore.Recheck(prev) }
