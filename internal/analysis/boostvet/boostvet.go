// Package boostvet is the repo's invariant suite: five go/analysis
// passes that mechanically enforce the engine contracts the parity
// tests otherwise only catch after the fact.
//
// The reproduction's analogue of the paper's exactness claims is
// bit-identical exploration: the FLP-derived bivalence machinery only
// means something if the graph — IDs, edges, valences, reports — is
// deterministic across workers × shards × stores, if spill descriptors
// are released on every exit path, if store reads are total, and if
// typed errors survive the trip across the façade. Each analyzer
// guards one of those contracts; `make analyze` runs them all via
// cmd/boostvet, and CI rejects violations at the diff.
//
// A diagnostic at a deliberate site is silenced with an inline
// directive on the flagged line or the line above it:
//
//	//lint:boostvet-ignore <analyzer> — justification
//
// The justification is mandatory by convention (review rejects bare
// ignores), not by the checker.
package boostvet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Analyzers is the full suite in the order cmd/boostvet registers them.
var Analyzers = []*analysis.Analyzer{
	DeterminismAnalyzer,
	GraphCloseAnalyzer,
	StoreBoundsAnalyzer,
	TypedErrAnalyzer,
	CtxFlowAnalyzer,
}

// modulePath anchors the scope checks. Testdata packages in the golden
// tests are type-checked under fabricated paths below this prefix so the
// same scoping logic applies to them.
const modulePath = "github.com/ioa-lab/boosting"

// pkgRel returns the package path relative to the module root ("" for the
// root package) and whether the package is inside the module at all.
func pkgRel(pkg *types.Package) (string, bool) {
	p := pkg.Path()
	if p == modulePath {
		return "", true
	}
	if rest, ok := strings.CutPrefix(p, modulePath+"/"); ok {
		return rest, true
	}
	return "", false
}

// ignoreDirective is the inline escape hatch prefix.
const ignoreDirective = "lint:boostvet-ignore"

// ignorer answers "is this analyzer suppressed at this position?" for one
// file set. A directive comment suppresses diagnostics on its own line and
// on the line directly below it, so both trailing and preceding placement
// work:
//
//	rng := rand.New(...) //lint:boostvet-ignore determinism — seeded path
//
//	//lint:boostvet-ignore determinism — seeded path
//	rng := rand.New(...)
type ignorer struct {
	fset *token.FileSet
	// lines maps filename → line → analyzer names ignored there.
	lines map[string]map[int][]string
}

func newIgnorer(pass *analysis.Pass) *ignorer {
	ig := &ignorer{fset: pass.Fset, lines: make(map[string]map[int][]string)}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, ignoreDirective)
				if !ok {
					continue
				}
				// Everything up to a justification dash is the
				// analyzer name list.
				for _, sep := range []string{"—", "--", "//"} {
					if i := strings.Index(rest, sep); i >= 0 {
						rest = rest[:i]
					}
				}
				names := strings.Fields(rest)
				if len(names) == 0 {
					continue
				}
				pos := ig.fset.Position(c.Pos())
				m := ig.lines[pos.Filename]
				if m == nil {
					m = make(map[int][]string)
					ig.lines[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], names...)
				m[pos.Line+1] = append(m[pos.Line+1], names...)
			}
		}
	}
	return ig
}

func (ig *ignorer) ignored(analyzer string, pos token.Pos) bool {
	p := ig.fset.Position(pos)
	for _, name := range ig.lines[p.Filename][p.Line] {
		if name == analyzer {
			return true
		}
	}
	return false
}

// report emits a diagnostic unless an ignore directive covers the line.
func (ig *ignorer) report(pass *analysis.Pass, analyzer string, pos token.Pos, format string, args ...any) {
	if ig.ignored(analyzer, pos) {
		return
	}
	pass.Reportf(pos, format, args...)
}

// funcOf resolves the called function, looking through parenthesization.
// Returns nil for calls through function-typed variables, closures, and
// type conversions.
func funcOf(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch f := fun.(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isPkgFunc reports whether fn is the named package-level function of the
// package with the given path (e.g. isPkgFunc(fn, "time", "Now")).
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// exprRootedAt reports whether e is the identifier for obj or a selector
// chain hanging off it (v, v.F, v.F.G, ...).
func exprRootedAt(info *types.Info, e ast.Expr, obj types.Object) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.Uses[x] == obj
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return false
		}
	}
}

// usesObject reports whether the object appears anywhere inside n.
func usesObject(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
