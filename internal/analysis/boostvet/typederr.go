package boostvet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// TypedErrAnalyzer guards the typed-error discipline at the façade:
// *LimitError, *ConflictError, codec.ErrMalformed and friends survive the
// trip to callers only if every intermediate layer wraps with %w and every
// check goes through errors.Is/errors.As. A single string comparison or a
// bare %v in the chain silently breaks `errors.As(err, &limit)` for every
// caller downstream.
//
// Module-wide (the callers in cmd/ and examples/ are exactly where the
// discipline decays), it flags:
//
//   - err.Error() compared against a string literal;
//   - ==/!= against a package-level error sentinel (use errors.Is);
//   - a type assertion or type-switch case on a concrete module error
//     type (use errors.As);
//   - fmt.Errorf with an error argument but no %w verb in the format.
//
// Test files are exempt: golden-message assertions legitimately compare
// rendered strings.
var TypedErrAnalyzer = &analysis.Analyzer{
	Name: "typederr",
	Doc: "check that typed/sentinel errors are wrapped with %w and checked via errors.Is/errors.As, " +
		"never string-compared or type-asserted",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runTypedErr,
}

func runTypedErr(pass *analysis.Pass) (any, error) {
	if _, inModule := pkgRel(pass.Pkg); !inModule {
		return nil, nil
	}
	ig := newIgnorer(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	errorType := types.Universe.Lookup("error").Type()
	errorIface := errorType.Underlying().(*types.Interface)
	isErr := func(t types.Type) bool {
		return t != nil && types.Implements(t, errorIface)
	}

	ins.WithStack([]ast.Node{
		(*ast.BinaryExpr)(nil),
		(*ast.TypeAssertExpr)(nil),
		(*ast.TypeSwitchStmt)(nil),
		(*ast.CallExpr)(nil),
	}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push || isTestFile(pass, stack[0].(*ast.File)) {
			return false
		}
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return true
			}
			checkErrComparison(pass, ig, n, isErr)
		case *ast.TypeAssertExpr:
			if n.Type == nil { // the `x.(type)` of a type switch; handled below
				return true
			}
			if !isErr(pass.TypesInfo.TypeOf(n.X)) {
				return true
			}
			if t := pass.TypesInfo.TypeOf(n.Type); isConcreteModuleError(t, isErr) {
				ig.report(pass, "typederr", n.Pos(),
					"type assertion on %s loses wrapped errors: use errors.As", types.TypeString(t, nil))
			}
		case *ast.TypeSwitchStmt:
			checkErrTypeSwitch(pass, ig, n, isErr)
		case *ast.CallExpr:
			checkErrorfWrap(pass, ig, n, isErr)
		}
		return true
	})
	return nil, nil
}

func checkErrComparison(pass *analysis.Pass, ig *ignorer, n *ast.BinaryExpr, isErr func(types.Type) bool) {
	// err.Error() == "..." in either orientation.
	for _, pair := range [2][2]ast.Expr{{n.X, n.Y}, {n.Y, n.X}} {
		if call, ok := ast.Unparen(pair[0]).(*ast.CallExpr); ok {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Error" && isErr(pass.TypesInfo.TypeOf(sel.X)) {
				if lit, ok := ast.Unparen(pair[1]).(*ast.BasicLit); ok && lit.Kind == token.STRING {
					ig.report(pass, "typederr", n.Pos(),
						"comparing err.Error() against a string breaks on wrapping: use errors.Is against the sentinel")
					return
				}
			}
		}
	}
	// err == ErrSentinel where the sentinel is a module package-level var.
	if !isErr(pass.TypesInfo.TypeOf(n.X)) || !isErr(pass.TypesInfo.TypeOf(n.Y)) {
		return
	}
	for _, side := range []ast.Expr{n.X, n.Y} {
		var obj types.Object
		switch e := ast.Unparen(side).(type) {
		case *ast.Ident:
			obj = pass.TypesInfo.Uses[e]
		case *ast.SelectorExpr:
			obj = pass.TypesInfo.Uses[e.Sel]
		}
		v, ok := obj.(*types.Var)
		if !ok || v.Pkg() == nil || !inModulePkg(v.Pkg()) {
			continue
		}
		// Package-level sentinel: parent scope is the package scope.
		if v.Parent() == v.Pkg().Scope() {
			ig.report(pass, "typederr", n.Pos(),
				"direct comparison against sentinel %s misses wrapped errors: use errors.Is(err, %s)", v.Name(), v.Name())
			return
		}
	}
}

func checkErrTypeSwitch(pass *analysis.Pass, ig *ignorer, n *ast.TypeSwitchStmt, isErr func(types.Type) bool) {
	// Subject: `switch x := err.(type)` or `switch err.(type)`.
	var subject ast.Expr
	switch s := n.Assign.(type) {
	case *ast.ExprStmt:
		subject = s.X.(*ast.TypeAssertExpr).X
	case *ast.AssignStmt:
		subject = s.Rhs[0].(*ast.TypeAssertExpr).X
	}
	if subject == nil || !isErr(pass.TypesInfo.TypeOf(subject)) {
		return
	}
	for _, clause := range n.Body.List {
		for _, texpr := range clause.(*ast.CaseClause).List {
			if t := pass.TypesInfo.TypeOf(texpr); isConcreteModuleError(t, isErr) {
				ig.report(pass, "typederr", texpr.Pos(),
					"type-switch case on %s loses wrapped errors: use errors.As", types.TypeString(t, nil))
			}
		}
	}
}

// isConcreteModuleError reports whether t is a concrete (non-interface)
// error type declared in this module — the shapes errors.As exists for.
func isConcreteModuleError(t types.Type, isErr func(types.Type) bool) bool {
	if t == nil || !isErr(t) {
		return false
	}
	if _, iface := t.Underlying().(*types.Interface); iface {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	return ok && named.Obj().Pkg() != nil && inModulePkg(named.Obj().Pkg())
}

// checkErrorfWrap flags fmt.Errorf calls that format an error value
// without a %w verb: the cause is flattened to text and errors.Is/As stop
// seeing it.
func checkErrorfWrap(pass *analysis.Pass, ig *ignorer, call *ast.CallExpr, isErr func(types.Type) bool) {
	fn := funcOf(pass, call)
	if !isPkgFunc(fn, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING || strings.Contains(lit.Value, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		if isErr(pass.TypesInfo.TypeOf(arg)) {
			ig.report(pass, "typederr", call.Pos(),
				"fmt.Errorf formats an error without %%w: the cause is flattened and errors.Is/errors.As stop matching — wrap it")
			return
		}
	}
}
