package boostvet

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// StoreBoundsAnalyzer guards the store seam's totality contract: the read
// accessors of every VertexStore/AdjacencyStore implementation —
// State, Fingerprint, Pred, EdgesFrom, each taking a StateID — must be
// total over all possible IDs. Out-of-range must be an explicit zero
// answer, never a slice-bounds panic, and the guard must be the uint
// trick (`if uint(id) >= uint(len(s.xs))`), which also rejects IDs that
// would wrap a plain int conversion.
//
// Two diagnostics:
//
//   - an index expression that executes before any uint-vs-uint bounds
//     comparison in the method;
//   - an explicit panic call inside an accessor. The spill backend's
//     corruption panics (failing reads of bytes the store itself wrote)
//     are deliberate and carry ignore directives documenting that.
//
// A pure delegation body — `return x.inner.SameMethod(id)` — is exempt:
// the bounds discipline lives at the implementation it forwards to.
var StoreBoundsAnalyzer = &analysis.Analyzer{
	Name: "storebounds",
	Doc: "check that StateID read accessors of store implementations guard indices with uint comparisons " +
		"and contain no reachable panicking index or panic call",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runStoreBounds,
}

// accessorNames is the read face of the VertexStore/AdjacencyStore seam.
var accessorNames = map[string]bool{
	"State":       true,
	"Fingerprint": true,
	"Pred":        true,
	"EdgesFrom":   true,
}

func runStoreBounds(pass *analysis.Pass) (any, error) {
	if _, inModule := pkgRel(pass.Pkg); !inModule {
		return nil, nil
	}
	ig := newIgnorer(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fn := n.(*ast.FuncDecl)
		if !isStoreAccessor(pass, fn) || fn.Body == nil {
			return
		}
		if isDelegation(fn) {
			return
		}
		checkAccessor(pass, ig, fn)
	})
	return nil, nil
}

// isStoreAccessor reports whether fn is a read accessor of the store seam:
// a method named State/Fingerprint/Pred/EdgesFrom on a pointer-to-struct
// receiver whose first parameter is a StateID.
func isStoreAccessor(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	if fn.Recv == nil || !accessorNames[fn.Name.Name] {
		return false
	}
	if fn.Type.Params == nil || len(fn.Type.Params.List) == 0 {
		return false
	}
	recv := pass.TypesInfo.TypeOf(fn.Recv.List[0].Type)
	if recv == nil {
		return false
	}
	ptr, ok := types.Unalias(recv).(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := types.Unalias(ptr.Elem()).(*types.Named)
	if !ok {
		return false
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return false
	}
	first := pass.TypesInfo.TypeOf(fn.Type.Params.List[0].Type)
	named2, ok := types.Unalias(first).(*types.Named)
	return ok && named2.Obj().Name() == "StateID"
}

// isDelegation reports whether the whole body is `return expr.Method(args)`
// forwarding to a method of the same name.
func isDelegation(fn *ast.FuncDecl) bool {
	if len(fn.Body.List) != 1 {
		return false
	}
	ret, ok := fn.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return false
	}
	call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == fn.Name.Name
}

func checkAccessor(pass *analysis.Pass, ig *ignorer, fn *ast.FuncDecl) {
	// Position of the first uint-vs-uint bounds comparison; indexes before
	// it run unguarded.
	guardPos := fn.Body.End()
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if be, ok := n.(*ast.BinaryExpr); ok && isUintGuard(pass, be) && be.Pos() < guardPos {
			guardPos = be.Pos()
		}
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IndexExpr:
			t := pass.TypesInfo.TypeOf(n.X)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice, *types.Array, *types.Pointer:
				if n.Pos() < guardPos {
					ig.report(pass, "storebounds", n.Pos(),
						"index expression in store read accessor %s before any uint bounds guard: accessors must be total (`if uint(id) >= uint(len(...))` first)", fn.Name.Name)
				}
			}
		case *ast.CallExpr:
			if isBuiltinPanic(pass, n) {
				ig.report(pass, "storebounds", n.Pos(),
					"panic in store read accessor %s: the read face must be total — return the zero answer for out-of-range IDs (corruption panics need an ignore directive explaining why)", fn.Name.Name)
			}
		}
		return true
	})
}

// isUintGuard matches `uint(a) >= uint(b)` and the other comparison
// orientations — both operands explicitly converted to uint.
func isUintGuard(pass *analysis.Pass, be *ast.BinaryExpr) bool {
	switch be.Op.String() {
	case "<", "<=", ">", ">=":
	default:
		return false
	}
	return isUintConv(pass, be.X) && isUintConv(pass, be.Y)
}

func isUintConv(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Uint
}
