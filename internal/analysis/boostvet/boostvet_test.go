package boostvet_test

import (
	"path/filepath"
	"testing"

	"github.com/ioa-lab/boosting/internal/analysis/atest"
	"github.com/ioa-lab/boosting/internal/analysis/boostvet"
)

const mod = "github.com/ioa-lab/boosting"

func td(elem string) string {
	return filepath.Join("testdata", "src", elem)
}

func TestDeterminism(t *testing.T) {
	atest.Run(t, boostvet.DeterminismAnalyzer,
		atest.Package{Path: mod + "/internal/server", Dir: td("determinism")})
}

// A cmd/ package is outside the determinism scope: time.Now there is fine.
func TestDeterminismOutOfScope(t *testing.T) {
	atest.Run(t, boostvet.DeterminismAnalyzer,
		atest.Package{Path: mod + "/cmd/oos", Dir: td("determinism_oos")})
}

// graphclose needs the producer/carrier types: the stub explore and façade
// packages are checked first under their real import paths, then the
// target package exercises the leak shapes against them.
func TestGraphClose(t *testing.T) {
	atest.Run(t, boostvet.GraphCloseAnalyzer,
		atest.Package{Path: mod + "/internal/explore", Dir: td("explore")},
		atest.Package{Path: mod, Dir: td("boosting")},
		atest.Package{Path: mod + "/cmd/a", Dir: td("graphclose")})
}

func TestStoreBounds(t *testing.T) {
	atest.Run(t, boostvet.StoreBoundsAnalyzer,
		atest.Package{Path: mod + "/internal/storex", Dir: td("storebounds")})
}

func TestTypedErr(t *testing.T) {
	atest.Run(t, boostvet.TypedErrAnalyzer,
		atest.Package{Path: mod + "/cmd/t", Dir: td("typederr")})
}

func TestCtxFlow(t *testing.T) {
	atest.Run(t, boostvet.CtxFlowAnalyzer,
		atest.Package{Path: mod + "/internal/server", Dir: td("ctxflow")})
}
