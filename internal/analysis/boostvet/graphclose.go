package boostvet

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/cfg"
)

// GraphCloseAnalyzer guards the CloseGraph protocol: every value flowing
// out of a graph-producing call (explore.BuildGraph, Checker.Explore,
// ClassifyInits, Refute, RefuteKSet — anything whose first result carries
// an open *Graph, directly or through exported fields like
// Report.Inits.Graph) must reach a Close call on every control-flow path,
// including error returns. The spill backend holds two file descriptors
// per open graph; a path that drops the handle leaks them for the life of
// the process.
//
// Variable propagation follows the goexhauerrors pattern over the
// function's CFG: from the producing assignment, every path must hit one
// of
//
//   - a (possibly deferred) call to CloseGraph/CloseGraphStore/closeGraph
//     or a Close method, rooted at the tracked variable
//     (g, report.Inits.Graph, ...);
//   - a return that hands the value to the caller (ownership transfer);
//   - an assignment that stores the value somewhere longer-lived
//     (the new owner is then responsible);
//   - a return lexically guarded by the producing call's error variable —
//     producers return a nil graph alongside a non-nil error, so the
//     `if err != nil { return ... }` arm holds nothing to close;
//   - a process exit (os.Exit, log.Fatal*, panic) — the kernel reclaims
//     descriptors, and panic unwinds through any registered defers.
//
// Discarding the result with `_` is flagged outright.
var GraphCloseAnalyzer = &analysis.Analyzer{
	Name: "graphclose",
	Doc: "check that graphs from BuildGraph/Explore/ClassifyInits/Refute reach CloseGraph on all paths, " +
		"including error returns (spill builds hold two file descriptors per open graph)",
	Requires: []*analysis.Analyzer{ctrlflow.Analyzer},
	Run:      runGraphClose,
}

func runGraphClose(pass *analysis.Pass) (any, error) {
	if _, inModule := pkgRel(pass.Pkg); !inModule {
		return nil, nil
	}
	ig := newIgnorer(pass)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)

	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			var g *cfg.CFG
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body == nil {
					return true
				}
				body, g = fn.Body, cfgs.FuncDecl(fn)
			case *ast.FuncLit:
				body, g = fn.Body, cfgs.FuncLit(fn)
			default:
				return true
			}
			checkGraphClose(pass, ig, body, g)
			return true
		})
	}
	return nil, nil
}

// isTestFile reports whether the file is a _test.go file. Test graphs die
// with the process almost immediately and t.Cleanup idioms would defeat
// the syntactic release detection.
func isTestFile(pass *analysis.Pass, f *ast.File) bool {
	name := pass.Fset.Position(f.Pos()).Filename
	return len(name) >= len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go"
}

func checkGraphClose(pass *analysis.Pass, ig *ignorer, body *ast.BlockStmt, g *cfg.CFG) {
	// Producers assigned inside nested function literals are analyzed when
	// the literal itself is visited, so only look at this body's own
	// statements: skip descending into FuncLits.
	var producers []producerSite
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if p, ok := producerAssign(pass, n); ok {
				producers = append(producers, p)
			}
		case *ast.ExprStmt:
			// A bare producer call discards the graph on the spot.
			if call, ok := n.X.(*ast.CallExpr); ok {
				if fn := producerCallee(pass, call); fn != nil {
					ig.report(pass, "graphclose", call.Pos(),
						"result of %s carries an open graph but is discarded; close it or hand it to an owner", fn.Name())
				}
			}
		}
		return true
	})

	for _, p := range producers {
		if p.obj == nil {
			// `_, err := chk.Explore(...)` — the handle is gone already.
			ig.report(pass, "graphclose", p.call.Pos(),
				"result of %s carries an open graph but is assigned to _; close it or keep the handle", p.fn.Name())
			continue
		}
		// A deferred release anywhere in the function covers every
		// subsequent exit (the canonical fix is `defer CloseGraph(...)`
		// right after the error check; helpers are nil-tolerant).
		deferred := false
		ast.Inspect(body, func(n ast.Node) bool {
			if d, ok := n.(*ast.DeferStmt); ok && isReleaseCall(pass, d.Call, p.obj) {
				deferred = true
			}
			return !deferred
		})
		if deferred {
			continue
		}
		if g == nil {
			continue
		}
		if leak, at := findLeakPath(pass, g, p); leak {
			ig.report(pass, "graphclose", at.Pos(),
				"graph from %s is not closed on this path (spill builds leak two file descriptors); "+
					"add `defer boosting.CloseGraph(...)`/`defer x.Close()` after the error check or return the value", p.fn.Name())
		}
	}
}

// producerSite is one tracked graph-producing assignment.
type producerSite struct {
	stmt *ast.AssignStmt
	call *ast.CallExpr
	fn   *types.Func
	obj  types.Object // the graph-carrying variable; nil if assigned to _
	err  types.Object // the error result variable, if any
}

// producerAssign recognizes `g, err := produce(...)` / `g := produce(...)`.
func producerAssign(pass *analysis.Pass, as *ast.AssignStmt) (producerSite, bool) {
	if len(as.Rhs) != 1 {
		return producerSite{}, false
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return producerSite{}, false
	}
	fn := producerCallee(pass, call)
	if fn == nil {
		return producerSite{}, false
	}
	p := producerSite{stmt: as, call: call, fn: fn}
	if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
		p.obj = pass.TypesInfo.Defs[id]
		if p.obj == nil {
			p.obj = pass.TypesInfo.Uses[id] // plain `=` assignment
		}
	}
	if len(as.Lhs) > 1 {
		if id, ok := as.Lhs[len(as.Lhs)-1].(*ast.Ident); ok && id.Name != "_" {
			p.err = pass.TypesInfo.Defs[id]
			if p.err == nil {
				p.err = pass.TypesInfo.Uses[id]
			}
		}
	}
	return p, true
}

// producerCallee reports whether the call's static callee is an exported
// module function whose first result is a graph carrier. Calls through
// closures and function values are not tracked (the closure body is).
func producerCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	fn := funcOf(pass, call)
	if fn == nil || !fn.Exported() || fn.Pkg() == nil {
		return nil
	}
	if !inModulePkg(fn.Pkg()) {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return nil
	}
	if !carriesGraph(sig.Results().At(0).Type(), 0) {
		return nil
	}
	return fn
}

func inModulePkg(pkg *types.Package) bool {
	_, ok := pkgRel(pkg)
	return ok
}

// carriesGraph reports whether t is *explore.Graph or a pointer to a
// module struct with an exported field path (depth ≤ 3) leading to one —
// *InitClassification via .Graph, *Report via .Inits.Graph. Unexported
// fields are deliberately not followed: internal back-references
// (bfs scratch structs and the like) borrow the graph, they do not own it.
func carriesGraph(t types.Type, depth int) bool {
	if depth > 3 {
		return false
	}
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := types.Unalias(ptr.Elem()).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !inModulePkg(obj.Pkg()) {
		return false
	}
	if obj.Name() == "Graph" {
		return true
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Exported() && carriesGraph(f.Type(), depth+1) {
			return true
		}
	}
	return false
}

// isReleaseCall reports whether the call releases the graph held by obj:
// a close function applied to the variable (or a selector path hanging
// off it), or a Close method invoked on it.
func isReleaseCall(pass *analysis.Pass, call *ast.CallExpr, obj types.Object) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if isCloseName(fun.Name) && len(call.Args) > 0 {
			return exprRootedAt(pass.TypesInfo, call.Args[0], obj)
		}
	case *ast.SelectorExpr:
		if fun.Sel.Name == "Close" {
			return exprRootedAt(pass.TypesInfo, fun.X, obj)
		}
		if isCloseName(fun.Sel.Name) && len(call.Args) > 0 {
			return exprRootedAt(pass.TypesInfo, call.Args[0], obj)
		}
	}
	return false
}

func isCloseName(name string) bool {
	switch name {
	case "CloseGraph", "CloseGraphStore", "closeGraph", "CloseReport":
		return true
	}
	return false
}

// findLeakPath walks the CFG from the producing assignment and reports
// the first function exit the tracked value can reach without a release.
func findLeakPath(pass *analysis.Pass, g *cfg.CFG, p producerSite) (bool, ast.Node) {
	start, idx := blockOf(g, p.stmt)
	if start == nil {
		return false, nil
	}
	allowedReturns := errGuardedReturns(pass, p)

	type item struct {
		b    *cfg.Block
		from int // scan Nodes starting at this index
	}
	seen := make(map[*cfg.Block]bool)
	work := []item{{start, idx + 1}}
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		released, leakAt := scanBlock(pass, it.b, it.from, p, allowedReturns)
		if leakAt != nil {
			return true, leakAt
		}
		if released {
			continue
		}
		for _, s := range it.b.Succs {
			if !seen[s] {
				seen[s] = true
				work = append(work, item{s, 0})
			}
		}
	}
	return false, nil
}

// scanBlock scans one basic block from index `from`. It reports whether
// the path is settled inside the block (released, escaped, or ended by a
// process exit), and a leak site if the block exits the function with the
// handle still open.
func scanBlock(pass *analysis.Pass, b *cfg.Block, from int, p producerSite, allowed map[*ast.ReturnStmt]bool) (settled bool, leakAt ast.Node) {
	for _, n := range b.Nodes[min(from, len(b.Nodes)):] {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
				if isReleaseCall(pass, call, p.obj) {
					return true, nil
				}
				if isProcessExit(pass, call) {
					return true, nil
				}
			}
		case *ast.DeferStmt:
			if isReleaseCall(pass, n.Call, p.obj) {
				return true, nil
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if carrierEscapes(pass, res, p.obj) {
					return true, nil // ownership transferred to the caller
				}
			}
			if allowed[n] {
				return true, nil // error-guarded exit: the handle is nil by contract
			}
			return true, n // function exit with the graph still open
		case *ast.AssignStmt:
			if n == p.stmt {
				continue
			}
			for _, rhs := range n.Rhs {
				if carrierEscapes(pass, rhs, p.obj) {
					return true, nil // stored somewhere longer-lived; new owner's problem
				}
			}
		case ast.Expr:
			// Condition expressions and similar — a call that exits the
			// process can end the path here too (panic(...) is an
			// ExprStmt, handled above; log.Fatal in a condition is not
			// real code).
			continue
		}
	}
	return false, nil
}

// carrierEscapes reports whether expr embeds the graph value held by obj
// into its result: the variable itself, or a selector chain off it whose
// type still carries a graph (report, report.Inits, c.Graph, ...).
// Derived reads — report.Violated(), report.Claimed — do not transfer
// ownership, but passing the carrier to another call as an argument does
// (the callee may be its closer).
func carrierEscapes(pass *analysis.Pass, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		// Method receivers only read: skip the receiver subtree of
		// `x.M(...)` but keep looking at the arguments.
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.MethodVal {
					for _, arg := range call.Args {
						if carrierEscapes(pass, arg, obj) {
							found = true
						}
					}
					return false
				}
			}
			return true
		}
		e, ok := n.(ast.Expr)
		if !ok || !exprRootedAt(pass.TypesInfo, e, obj) {
			return true
		}
		if t := pass.TypesInfo.TypeOf(e); t != nil && carriesGraph(t, 0) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isBuiltinPanic recognizes a call to the predeclared panic.
func isBuiltinPanic(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, builtin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return builtin
}

// isProcessExit recognizes calls after which no user code runs: os.Exit,
// log.Fatal*, runtime.Goexit, and panic. Descriptors do not outlive the
// process, and panic unwinds registered defers.
func isProcessExit(pass *analysis.Pass, call *ast.CallExpr) bool {
	if isBuiltinPanic(pass, call) {
		return true
	}
	fn := funcOf(pass, call)
	if fn == nil {
		return false
	}
	if isPkgFunc(fn, "os", "Exit") || isPkgFunc(fn, "runtime", "Goexit") {
		return true
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "log" {
		switch fn.Name() {
		case "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln":
			return true
		}
	}
	return false
}

// blockOf finds the basic block containing stmt and its index inside it.
func blockOf(g *cfg.CFG, stmt ast.Stmt) (*cfg.Block, int) {
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if n == ast.Node(stmt) {
				return b, i
			}
		}
	}
	return nil, 0
}

// errGuardedReturns collects the return statements lexically inside an
// if-arm whose condition mentions the producer's error variable. Producers
// return a nil graph alongside a non-nil error, so those exits hold
// nothing to close.
func errGuardedReturns(pass *analysis.Pass, p producerSite) map[*ast.ReturnStmt]bool {
	out := make(map[*ast.ReturnStmt]bool)
	if p.err == nil {
		return out
	}
	// Walk outward from the producer: scan the whole enclosing file for
	// if-statements over the error object. The error variable is function-
	// scoped, so matching by object cannot cross functions.
	for _, f := range pass.Files {
		if p.stmt.Pos() < f.Pos() || p.stmt.Pos() > f.End() {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok || !usesObject(pass.TypesInfo, ifs.Cond, p.err) {
				return true
			}
			ast.Inspect(ifs.Body, func(n ast.Node) bool {
				if ret, ok := n.(*ast.ReturnStmt); ok {
					out[ret] = true
				}
				return true
			})
			return true
		})
	}
	return out
}
