package service

import (
	"errors"
	"testing"

	"github.com/ioa-lab/boosting/internal/ioa"
	"github.com/ioa-lab/boosting/internal/seqtype"
	"github.com/ioa-lab/boosting/internal/servicetype"
)

func newConsensusObject(t *testing.T, f int, endpoints []int, policy SilencePolicy) *Service {
	t.Helper()
	s, err := New(Config{
		Index:      "k0",
		Type:       servicetype.FromSequential(seqtype.BinaryConsensus()),
		Endpoints:  endpoints,
		Resilience: f,
		Policy:     policy,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustApply(t *testing.T, s *Service, st State, task ioa.Task) (State, ioa.Action) {
	t.Helper()
	next, act, err := s.Apply(st, task)
	if err != nil {
		t.Fatalf("Apply(%v): %v", task, err)
	}
	return next, act
}

func TestNewValidation(t *testing.T) {
	u := servicetype.FromSequential(seqtype.BinaryConsensus())
	cases := []struct {
		name string
		cfg  Config
	}{
		{"nil type", Config{Index: "k", Endpoints: []int{0}}},
		{"empty endpoints", Config{Index: "k", Type: u}},
		{"negative resilience", Config{Index: "k", Type: u, Endpoints: []int{0}, Resilience: -1}},
	}
	for _, c := range cases {
		if _, err := New(c.cfg); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestInvokePerformOutputCycle(t *testing.T) {
	s := newConsensusObject(t, 0, []int{0, 1}, Adversarial)
	st := s.InitialState()

	st, err := s.Invoke(st, 0, seqtype.Init("1"))
	if err != nil {
		t.Fatal(err)
	}
	if got := st.PendingInvocations(0); len(got) != 1 || got[0] != seqtype.Init("1") {
		t.Fatalf("inv-buffer: %v", got)
	}

	// The 0-perform task applies δ and queues the response.
	st, act := mustApply(t, s, st, ioa.PerformTask("k0", 0))
	if act.Type != ioa.ActPerform {
		t.Fatalf("action: %v", act)
	}
	if st.Val != "1" {
		t.Errorf("val: %q", st.Val)
	}
	if got := st.PendingResponses(0); len(got) != 1 || got[0] != seqtype.Decide("1") {
		t.Fatalf("resp-buffer: %v", got)
	}

	// The 0-output task emits the response.
	st, act = mustApply(t, s, st, ioa.OutputTask("k0", 0))
	if act.Type != ioa.ActRespond || act.Payload != seqtype.Decide("1") || act.Proc != 0 {
		t.Fatalf("respond action: %v", act)
	}
	if len(st.PendingResponses(0)) != 0 {
		t.Error("resp-buffer not drained")
	}
}

func TestInvokeRejectsNonEndpointAndBadInvocation(t *testing.T) {
	s := newConsensusObject(t, 0, []int{0, 1}, Adversarial)
	st := s.InitialState()
	if _, err := s.Invoke(st, 7, seqtype.Init("0")); !errors.Is(err, ErrNotEndpoint) {
		t.Errorf("non-endpoint: %v", err)
	}
	if _, err := s.Invoke(st, 0, "nonsense"); !errors.Is(err, ErrBadInvocation) {
		t.Errorf("bad invocation: %v", err)
	}
}

func TestFIFOOrderPerEndpoint(t *testing.T) {
	rw := servicetype.FromSequential(seqtype.ReadWrite([]string{"a", "b"}, "a"))
	s, err := New(Config{Index: "r0", Type: rw, Endpoints: []int{0}, Resilience: 0, Policy: Adversarial})
	if err != nil {
		t.Fatal(err)
	}
	st := s.InitialState()
	st, _ = s.Invoke(st, 0, seqtype.Write("b"))
	st, _ = s.Invoke(st, 0, seqtype.Read)

	st, _ = mustApply(t, s, st, ioa.PerformTask("r0", 0))
	st, _ = mustApply(t, s, st, ioa.PerformTask("r0", 0))

	// Responses must come back in invocation order: ack then the read of "b".
	resp := st.PendingResponses(0)
	if len(resp) != 2 || resp[0] != seqtype.Ack || resp[1] != "b" {
		t.Fatalf("responses: %v", resp)
	}
}

func TestTaskNotApplicableWhenIdle(t *testing.T) {
	s := newConsensusObject(t, 0, []int{0, 1}, Adversarial)
	st := s.InitialState()
	if _, ok := s.Enabled(st, ioa.PerformTask("k0", 0)); ok {
		t.Error("perform applicable with empty inv-buffer and no failures")
	}
	if _, ok := s.Enabled(st, ioa.OutputTask("k0", 0)); ok {
		t.Error("output applicable with empty resp-buffer and no failures")
	}
	if _, _, err := s.Apply(st, ioa.PerformTask("k0", 0)); !errors.Is(err, ErrTaskNotEnabled) {
		t.Errorf("Apply on idle task: %v", err)
	}
}

func TestDummyEnabledAfterOwnFailure(t *testing.T) {
	s := newConsensusObject(t, 1, []int{0, 1, 2}, Adversarial)
	st := s.InitialState()
	st, _ = s.Invoke(st, 0, seqtype.Init("0"))
	st = s.Fail(st, 0)

	// Adversarial policy: with fail_0 delivered, the 0-perform task takes
	// the dummy action even though an invocation is pending.
	act, ok := s.Enabled(st, ioa.PerformTask("k0", 0))
	if !ok || act.Type != ioa.ActDummyPerform {
		t.Fatalf("enabled action: %v %v", act, ok)
	}
	next, act := mustApply(t, s, st, ioa.PerformTask("k0", 0))
	if act.Type != ioa.ActDummyPerform {
		t.Fatalf("action: %v", act)
	}
	if next.Fingerprint() != st.Fingerprint() {
		t.Error("dummy action changed the state")
	}
	// Endpoint 1 is unaffected: one failure ≤ f = 1.
	if _, ok := s.Enabled(st, ioa.OutputTask("k0", 1)); ok {
		t.Error("output_1 should be idle, not dummy-enabled")
	}
}

func TestBenignPolicyServesFailedEndpointBacklog(t *testing.T) {
	s := newConsensusObject(t, 1, []int{0, 1, 2}, Benign)
	st := s.InitialState()
	st, _ = s.Invoke(st, 0, seqtype.Init("0"))
	st = s.Fail(st, 0)

	// Benign policy: the real perform is preferred over the enabled dummy —
	// also a legal behaviour of the canonical automaton.
	act, ok := s.Enabled(st, ioa.PerformTask("k0", 0))
	if !ok || act.Type != ioa.ActPerform {
		t.Fatalf("enabled action: %v %v", act, ok)
	}
}

func TestResilienceBudget(t *testing.T) {
	// f = 1, |J| = 3: after two failures the whole object may fall silent —
	// dummy actions become enabled for every endpoint, including live ones.
	s := newConsensusObject(t, 1, []int{0, 1, 2}, Adversarial)
	st := s.InitialState()
	st, _ = s.Invoke(st, 2, seqtype.Init("1"))
	st = s.Fail(st, 0)

	// One failure: live endpoint 2 still served.
	act, ok := s.Enabled(st, ioa.PerformTask("k0", 2))
	if !ok || act.Type != ioa.ActPerform {
		t.Fatalf("after 1 failure: %v %v", act, ok)
	}

	st = s.Fail(st, 1)
	// Two failures > f: adversarial service silences endpoint 2 too.
	act, ok = s.Enabled(st, ioa.PerformTask("k0", 2))
	if !ok || act.Type != ioa.ActDummyPerform {
		t.Fatalf("after 2 failures: %v %v", act, ok)
	}
}

func TestWaitFreePredicate(t *testing.T) {
	cases := []struct {
		f, n int
		want bool
	}{{0, 1, true}, {1, 2, true}, {2, 2, true}, {0, 2, false}, {1, 3, false}, {2, 3, true}}
	for _, c := range cases {
		eps := make([]int, c.n)
		for i := range eps {
			eps[i] = i
		}
		s, err := New(Config{
			Index: "k", Type: servicetype.FromSequential(seqtype.BinaryConsensus()),
			Endpoints: eps, Resilience: c.f,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := s.WaitFree(); got != c.want {
			t.Errorf("f=%d n=%d: WaitFree = %v, want %v", c.f, c.n, got, c.want)
		}
	}
}

func TestWaitFreeObjectNeverSilencesLiveEndpoints(t *testing.T) {
	// A wait-free object stays responsive to live endpoints under any number
	// of other failures (only "all failed" or own failure silences).
	s := newConsensusObject(t, 2, []int{0, 1, 2}, Adversarial)
	st := s.InitialState()
	st, _ = s.Invoke(st, 2, seqtype.Init("0"))
	st = s.Fail(st, 0)
	st = s.Fail(st, 1)
	act, ok := s.Enabled(st, ioa.PerformTask("k0", 2))
	if !ok || act.Type != ioa.ActPerform {
		t.Fatalf("wait-free object silenced live endpoint: %v %v", act, ok)
	}
}

func TestFailNonEndpointIsNoop(t *testing.T) {
	s := newConsensusObject(t, 0, []int{0, 1}, Adversarial)
	st := s.InitialState()
	st2 := s.Fail(st, 9)
	if st2.Fingerprint() != st.Fingerprint() {
		t.Error("fail of non-endpoint changed state")
	}
}

func TestApplyForeignTask(t *testing.T) {
	s := newConsensusObject(t, 0, []int{0, 1}, Adversarial)
	if _, _, err := s.Apply(s.InitialState(), ioa.PerformTask("other", 0)); !errors.Is(err, ErrForeignTask) {
		t.Errorf("foreign task: %v", err)
	}
}

func TestStateImmutability(t *testing.T) {
	s := newConsensusObject(t, 0, []int{0, 1}, Adversarial)
	st0 := s.InitialState()
	fp0 := st0.Fingerprint()
	st1, err := s.Invoke(st0, 0, seqtype.Init("0"))
	if err != nil {
		t.Fatal(err)
	}
	if st0.Fingerprint() != fp0 {
		t.Error("Invoke mutated the source state")
	}
	st2, _ := mustApply(t, s, st1, ioa.PerformTask("k0", 0))
	if st1.Fingerprint() == st2.Fingerprint() {
		t.Error("perform did not change state")
	}
	// Divergent extensions from st1 must not interfere.
	st3, _ := s.Invoke(st1, 1, seqtype.Init("1"))
	if got := st2.PendingInvocations(1); len(got) != 0 {
		t.Errorf("sibling state corrupted: %v", got)
	}
	_ = st3
}

func TestTasksEnumeration(t *testing.T) {
	tob, err := NewWaitFree("b0", servicetype.TotallyOrderedBroadcast([]int{0, 1}), []int{0, 1}, Adversarial)
	if err != nil {
		t.Fatal(err)
	}
	tasks := tob.Tasks()
	want := []ioa.Task{
		ioa.PerformTask("b0", 0), ioa.OutputTask("b0", 0),
		ioa.PerformTask("b0", 1), ioa.OutputTask("b0", 1),
		ioa.ComputeTask("b0", servicetype.TOBGlobalTask),
	}
	if len(tasks) != len(want) {
		t.Fatalf("tasks: %v", tasks)
	}
	for i := range want {
		if tasks[i] != want[i] {
			t.Errorf("task %d: got %v, want %v", i, tasks[i], want[i])
		}
	}
}

func TestComputeTaskAlwaysApplicable(t *testing.T) {
	tob, err := NewWaitFree("b0", servicetype.TotallyOrderedBroadcast([]int{0, 1}), []int{0, 1}, Adversarial)
	if err != nil {
		t.Fatal(err)
	}
	st := tob.InitialState()
	act, ok := tob.Enabled(st, ioa.ComputeTask("b0", servicetype.TOBGlobalTask))
	if !ok || act.Type != ioa.ActCompute {
		t.Fatalf("compute: %v %v", act, ok)
	}
	// Empty msgs: compute is a no-op but still a transition.
	next, _ := mustApply(t, tob, st, ioa.ComputeTask("b0", servicetype.TOBGlobalTask))
	if next.Fingerprint() != st.Fingerprint() {
		t.Error("no-op compute changed state")
	}
}

func TestTOBEndToEnd(t *testing.T) {
	tob, err := NewWaitFree("b0", servicetype.TotallyOrderedBroadcast([]int{0, 1, 2}), []int{0, 1, 2}, Adversarial)
	if err != nil {
		t.Fatal(err)
	}
	st := tob.InitialState()
	st, err = tob.Invoke(st, 1, servicetype.Bcast("hello"))
	if err != nil {
		t.Fatal(err)
	}
	st, _ = mustApply(t, tob, st, ioa.PerformTask("b0", 1))
	st, _ = mustApply(t, tob, st, ioa.ComputeTask("b0", servicetype.TOBGlobalTask))
	for _, i := range []int{0, 1, 2} {
		resp := st.PendingResponses(i)
		if len(resp) != 1 {
			t.Fatalf("endpoint %d: responses %v", i, resp)
		}
		m, sender, ok := servicetype.RcvParts(resp[0])
		if !ok || m != "hello" || sender != 1 {
			t.Errorf("endpoint %d: rcv %q %d %v", i, m, sender, ok)
		}
	}
}

func TestDummyComputeWhenAllFailed(t *testing.T) {
	tob, err := NewWaitFree("b0", servicetype.TotallyOrderedBroadcast([]int{0, 1}), []int{0, 1}, Adversarial)
	if err != nil {
		t.Fatal(err)
	}
	st := tob.InitialState()
	st = tob.Fail(st, 0)
	// One failure with f = 1: compute still real (not all failed, not > f).
	act, ok := tob.Enabled(st, ioa.ComputeTask("b0", servicetype.TOBGlobalTask))
	if !ok || act.Type != ioa.ActCompute {
		t.Fatalf("compute after 1 failure: %v", act)
	}
	st = tob.Fail(st, 1)
	act, ok = tob.Enabled(st, ioa.ComputeTask("b0", servicetype.TOBGlobalTask))
	if !ok || act.Type != ioa.ActDummyCompute {
		t.Fatalf("compute after all failed: %v", act)
	}
}

func TestPerfectFDService(t *testing.T) {
	fd, err := New(Config{
		Index: "fd", Type: servicetype.PerfectFD([]int{0, 1}),
		Endpoints: []int{0, 1}, Resilience: 1, Policy: Adversarial,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := fd.InitialState()
	st = fd.Fail(st, 1)
	st, _ = mustApply(t, fd, st, ioa.ComputeTask("fd", "fd0"))
	resp := st.PendingResponses(0)
	if len(resp) != 1 {
		t.Fatalf("responses: %v", resp)
	}
	set, ok := servicetype.SuspectSet(resp[0])
	if !ok || !set.Has(1) || set.Len() != 1 {
		t.Errorf("suspicion: %v %v", set, ok)
	}
}

func TestRegisterHelper(t *testing.T) {
	r, err := NewRegister("r0", []string{"", "x"}, "", []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !r.WaitFree() {
		t.Error("registers must be wait-free")
	}
	st := r.InitialState()
	st, err = r.Invoke(st, 0, seqtype.Write("x"))
	if err != nil {
		t.Fatal(err)
	}
	st, _ = mustApply(t, r, st, ioa.PerformTask("r0", 0))
	st, _ = r.Invoke(st, 1, seqtype.Read)
	st, _ = mustApply(t, r, st, ioa.PerformTask("r0", 1))
	resp := st.PendingResponses(1)
	if len(resp) != 1 || resp[0] != "x" {
		t.Errorf("read response: %v", resp)
	}
}

func TestFingerprintDistinguishesStates(t *testing.T) {
	s := newConsensusObject(t, 0, []int{0, 1}, Adversarial)
	st := s.InitialState()
	st1, _ := s.Invoke(st, 0, seqtype.Init("0"))
	st2, _ := s.Invoke(st, 0, seqtype.Init("1"))
	st3, _ := s.Invoke(st, 1, seqtype.Init("0"))
	fps := map[string]bool{
		st.Fingerprint(): true, st1.Fingerprint(): true,
		st2.Fingerprint(): true, st3.Fingerprint(): true,
	}
	if len(fps) != 4 {
		t.Errorf("fingerprint collision: %d distinct", len(fps))
	}
}

func TestFingerprintCanonicalAcrossPaths(t *testing.T) {
	// Reaching "same logical state" via different orders of independent
	// operations yields identical fingerprints.
	s := newConsensusObject(t, 1, []int{0, 1}, Adversarial)
	a := s.InitialState()
	a, _ = s.Invoke(a, 0, seqtype.Init("0"))
	a, _ = s.Invoke(a, 1, seqtype.Init("1"))
	b := s.InitialState()
	b, _ = s.Invoke(b, 1, seqtype.Init("1"))
	b, _ = s.Invoke(b, 0, seqtype.Init("0"))
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("fingerprints differ for commuting invocations at distinct endpoints")
	}
}
