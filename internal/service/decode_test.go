package service

import (
	"errors"
	"testing"

	"github.com/ioa-lab/boosting/internal/codec"
)

// TestServiceParseStatePrefixRoundTrip: decode(encode(st)) re-encodes
// byte-identically across value, buffer and failed-set shapes, including
// endpoints whose decimal order differs from numeric order (10 < 2
// lexicographically).
func TestServiceParseStatePrefixRoundTrip(t *testing.T) {
	states := []State{
		{Val: "", Inv: map[int][]string{}, Resp: map[int][]string{}, Failed: codec.NewIntSet()},
		{Val: "v0", Inv: map[int][]string{0: {"init:1"}}, Resp: map[int][]string{}, Failed: codec.NewIntSet()},
		{
			Val:    "decided:1",
			Inv:    map[int][]string{2: {"a", "b"}, 10: {"c"}},
			Resp:   map[int][]string{0: {"resp:0", ""}},
			Failed: codec.NewIntSet(1, 10),
		},
	}
	for i, st := range states {
		enc := st.Fingerprint()
		got, rest, err := ParseStatePrefix(enc + "MORE")
		if err != nil {
			t.Fatalf("state %d: %v", i, err)
		}
		if rest != "MORE" {
			t.Fatalf("state %d: remainder %q", i, rest)
		}
		if re := got.Fingerprint(); re != enc {
			t.Errorf("state %d round trip:\n%q\n%q", i, enc, re)
		}
		if !got.Failed.Equal(st.Failed) {
			t.Errorf("state %d: failed set %v, want %v", i, got.Failed, st.Failed)
		}
		if got.Val != st.Val {
			t.Errorf("state %d: val %q, want %q", i, got.Val, st.Val)
		}
	}
}

// TestServiceParseStatePrefixMalformed: truncations, non-canonical endpoint
// keys and empty buffer entries (which the encoder never writes) must error
// with codec.ErrMalformed.
func TestServiceParseStatePrefixMalformed(t *testing.T) {
	good := (State{Val: "v", Inv: map[int][]string{1: {"x"}}, Resp: map[int][]string{}, Failed: codec.NewIntSet(0)}).Fingerprint()
	malformed := []string{
		"",
		"{" + good[1:],
		good[:len(good)-2],
		// Buffer map with a non-canonical endpoint key "01".
		"[3:1:v15:<(2:015:[1:x])>2:<>2:{}]",
		// Buffer map with an empty queue entry for endpoint 1.
		"[3:1:v11:<(1:12:[])>2:<>2:{}]",
		// Buffer map with endpoints out of canonical order (2 before 10).
		"[3:1:v27:<(1:25:[1:a])(2:105:[1:b])>2:<>2:{}]",
		// Failed set out of canonical order.
		"[3:1:v2:<>2:<>8:{1:11:0}]",
	}
	for i, s := range malformed {
		if _, _, err := ParseStatePrefix(s); !errors.Is(err, codec.ErrMalformed) {
			t.Errorf("input %d (%q): error %v, want ErrMalformed", i, s, err)
		}
	}
	// Failed set holding a non-integer atom: rejected, though the codec-level
	// set decoder reports the strconv failure rather than ErrMalformed.
	if _, _, err := ParseStatePrefix("[3:1:v2:<>2:<>5:{1:a}]"); err == nil {
		t.Error("non-integer failed-set member decoded")
	}
}
