package service

// Regression tests for nil-vs-empty buffer handling: a service state with a
// nil buffer map, an empty buffer map, or a map holding only empty queues
// must encode — and therefore intern — identically. The buffer transitions
// (withBuffer deleting emptied queues, appendBuffers skipping empty
// entries) maintain this; these tests pin it against regressions.

import (
	"testing"

	"github.com/ioa-lab/boosting/internal/codec"
	"github.com/ioa-lab/boosting/internal/ioa"
	"github.com/ioa-lab/boosting/internal/seqtype"
	"github.com/ioa-lab/boosting/internal/servicetype"
)

func TestNilVsEmptyBuffersEncodeIdentically(t *testing.T) {
	variants := []State{
		{Val: "v"},
		{Val: "v", Inv: map[int][]string{}, Resp: map[int][]string{}},
		{Val: "v", Inv: map[int][]string{1: nil}, Resp: map[int][]string{2: {}}},
		{Val: "v", Inv: map[int][]string{1: {}, 3: nil}, Resp: nil, Failed: codec.NewIntSet()},
	}
	want := variants[0].Fingerprint()
	for i, st := range variants {
		if got := st.Fingerprint(); got != want {
			t.Errorf("variant %d encodes %q, want %q", i, got, want)
		}
		if got := string(st.AppendFingerprint(nil)); got != want {
			t.Errorf("variant %d append-encodes %q, want %q", i, got, want)
		}
	}
}

// TestEmptiedBufferMatchesFresh: a buffer that was filled and fully drained
// encodes identically to one that was never touched.
func TestEmptiedBufferMatchesFresh(t *testing.T) {
	rw := servicetype.FromSequential(seqtype.ReadWrite([]string{"", "x"}, ""))
	svc, err := NewWaitFree("r", rw, []int{0, 1}, Adversarial)
	if err != nil {
		t.Fatal(err)
	}
	fresh := svc.InitialState()
	st, err := svc.Invoke(fresh, 0, seqtype.Write("x"))
	if err != nil {
		t.Fatal(err)
	}
	// Drain: perform the write, then emit the ack.
	st, _, err = svc.Apply(st, ioa.PerformTask("r", 0))
	if err != nil {
		t.Fatal(err)
	}
	st, _, err = svc.Apply(st, ioa.OutputTask("r", 0))
	if err != nil {
		t.Fatal(err)
	}
	drained := State{Val: st.Val, Inv: st.Inv, Resp: st.Resp, Failed: st.Failed}
	ref := State{Val: "x", Inv: map[int][]string{}, Resp: map[int][]string{}, Failed: codec.NewIntSet()}
	if drained.Fingerprint() != ref.Fingerprint() {
		t.Errorf("drained state %q, fresh-style state %q", drained.Fingerprint(), ref.Fingerprint())
	}
}
