package service

import (
	"fmt"
	"strconv"

	"github.com/ioa-lab/boosting/internal/codec"
)

// This file is the decode face of the service state codec: ParseStatePrefix
// reconstructs a State from the canonical encoding AppendFingerprint
// produces. Decoding is strict — only canonical encodings are accepted
// (sorted buffer maps and failed sets, canonical endpoint keys, no empty
// queues), so every accepted input re-encodes byte-identically (asserted
// by the round-trip and fuzz tests). The disk-spilling state store relies
// on this: spilled vertices are stored as their fingerprints and decoded
// on demand.

// ParseStatePrefix decodes one service state from the front of s, returning
// the state and the remainder of s. It errors (wrapping codec.ErrMalformed)
// on anything that is not a canonical service encoding.
func ParseStatePrefix(s string) (State, string, error) {
	if len(s) == 0 || s[0] != '[' {
		return State{}, "", fmt.Errorf("%w: service state must start with '['", codec.ErrMalformed)
	}
	valEnc, rest, err := codec.ParseAtom(s[1:])
	if err != nil {
		return State{}, "", fmt.Errorf("service value: %w", err)
	}
	invEnc, rest, err := codec.ParseAtom(rest)
	if err != nil {
		return State{}, "", fmt.Errorf("service inv-buffer: %w", err)
	}
	respEnc, rest, err := codec.ParseAtom(rest)
	if err != nil {
		return State{}, "", fmt.Errorf("service resp-buffer: %w", err)
	}
	failedEnc, rest, err := codec.ParseAtom(rest)
	if err != nil {
		return State{}, "", fmt.Errorf("service failed-set: %w", err)
	}
	if len(rest) == 0 || rest[0] != ']' {
		return State{}, "", fmt.Errorf("%w: service state must end with ']'", codec.ErrMalformed)
	}
	rest = rest[1:]

	val, vrest, verr := codec.ParseAtom(valEnc)
	if verr != nil {
		return State{}, "", fmt.Errorf("service value: %w", verr)
	}
	if vrest != "" {
		return State{}, "", fmt.Errorf("%w: trailing input after service value", codec.ErrMalformed)
	}
	inv, err := parseBuffers(invEnc)
	if err != nil {
		return State{}, "", fmt.Errorf("service inv-buffer: %w", err)
	}
	resp, err := parseBuffers(respEnc)
	if err != nil {
		return State{}, "", fmt.Errorf("service resp-buffer: %w", err)
	}
	failed, err := parseFailedSet(failedEnc)
	if err != nil {
		return State{}, "", fmt.Errorf("service failed-set: %w", err)
	}
	return State{Val: val, Inv: inv, Resp: resp, Failed: failed}, rest, nil
}

// parseFailedSet decodes the failed-endpoint set, requiring the canonical
// form IntSet.AppendFingerprint produces: decimal members in strictly
// increasing lexicographic order.
func parseFailedSet(enc string) (codec.IntSet, error) {
	items, err := codec.ParseSetCanonical(enc)
	if err != nil {
		return codec.IntSet{}, err
	}
	members := make([]int, len(items))
	for i, it := range items {
		v, err := strconv.Atoi(it)
		if err != nil || strconv.Itoa(v) != it {
			return codec.IntSet{}, fmt.Errorf("%w: non-canonical failed endpoint %q", codec.ErrMalformed, it)
		}
		members[i] = v
	}
	return codec.NewIntSet(members...), nil
}

// parseBuffers decodes a per-endpoint FIFO buffer map: a map keyed by the
// endpoint's decimal encoding whose values are list-encoded queues. The
// encoder never writes empty queues, so an empty queue entry is malformed.
func parseBuffers(enc string) (map[int][]string, error) {
	m, err := codec.ParseMapCanonical(enc)
	if err != nil {
		return nil, err
	}
	out := make(map[int][]string, len(m))
	for k, v := range m {
		i, err := strconv.Atoi(k)
		if err != nil || strconv.Itoa(i) != k {
			return nil, fmt.Errorf("%w: non-canonical endpoint key %q", codec.ErrMalformed, k)
		}
		items, err := codec.ParseList(v)
		if err != nil {
			return nil, err
		}
		if len(items) == 0 {
			return nil, fmt.Errorf("%w: empty buffer entry for endpoint %d", codec.ErrMalformed, i)
		}
		out[i] = items
	}
	return out, nil
}
