// Package service implements the canonical f-resilient service automata of
// the paper: the canonical atomic object (Fig. 1), the canonical
// failure-oblivious service (Fig. 4) and the canonical general service
// (Fig. 8) are one engine, parameterized by a servicetype.Type whose Class
// selects the variant.
//
// A canonical service for type U, endpoint set J, resilience f and index k
// has, per endpoint i ∈ J, a FIFO invocation buffer and a FIFO response
// buffer, and the value val of the type. Its input actions are invocations
// a_{i,k} and fail_i; its locally controlled actions are grouped into tasks:
//
//   - the i-perform task: perform_{i,k} (apply δ1 to the head of
//     inv-buffer(i)) and dummy_perform_{i,k};
//   - the i-output task: b_{i,k} (emit the head of resp-buffer(i)) and
//     dummy_output_{i,k};
//   - the g-compute task (failure-oblivious and general services only):
//     compute_{g,k} (apply δ2) and dummy_compute_{g,k}.
//
// The dummy actions are enabled exactly when the canonical automaton is
// permitted to stop working on behalf of an endpoint: when that endpoint has
// failed, or when more than f of the service's endpoints have failed (for
// compute: when more than f endpoints have failed or all endpoints have
// failed). Under the I/O-automata fairness assumption this is precisely the
// paper's reading of f-resilience: the service must keep responding while at
// most f connected processes have failed, and may fall silent afterwards —
// but never violates its type.
//
// The engine resolves the canonical automaton's scheduling nondeterminism
// deterministically (Section 3.1's restriction): a SilencePolicy chooses the
// dummy action whenever it is enabled (Adversarial — the behaviour the
// impossibility proofs exercise) or the real action whenever it is enabled
// (Benign — the most helpful behaviour the same automaton permits).
package service

import (
	"errors"
	"fmt"
	"sort"
	"strconv"

	"github.com/ioa-lab/boosting/internal/ioa"
	"github.com/ioa-lab/boosting/internal/servicetype"
)

// SilencePolicy resolves the choice between a real action and an enabled
// dummy action (both fair behaviours of the canonical automaton).
type SilencePolicy int

// Silence policies.
const (
	// Adversarial takes the dummy action whenever it is enabled: the service
	// falls silent for failed endpoints and, once more than f endpoints have
	// failed, for everyone. The impossibility proofs rely on this behaviour
	// being permitted.
	Adversarial SilencePolicy = iota + 1
	// Benign takes the real action whenever one is enabled, i.e. the service
	// keeps working as long as the canonical automaton allows it to.
	Benign
)

// String renders the policy.
func (p SilencePolicy) String() string {
	switch p {
	case Adversarial:
		return "adversarial"
	case Benign:
		return "benign"
	default:
		return "policy(" + strconv.Itoa(int(p)) + ")"
	}
}

// Errors returned by service operations.
var (
	ErrNotEndpoint    = errors.New("service: process is not an endpoint")
	ErrBadInvocation  = errors.New("service: invocation not in the service type")
	ErrTaskNotEnabled = errors.New("service: task has no enabled action")
	ErrForeignTask    = errors.New("service: task does not belong to this service")
)

// Service is a canonical f-resilient service automaton. It is stateless in
// the I/O-automata sense: all mutable data lives in State values, so one
// Service can drive many explorations concurrently.
type Service struct {
	index      string
	typ        *servicetype.Type
	endpoints  []int
	endpointIn map[int]bool
	resilience int
	policy     SilencePolicy
}

// Config assembles the parameters of a canonical service.
type Config struct {
	// Index is the unique service index (the paper's k or r).
	Index string
	// Type is the service type U (or an embedded sequential type).
	Type *servicetype.Type
	// Endpoints is the endpoint set J.
	Endpoints []int
	// Resilience is f, the number of endpoint failures tolerated.
	Resilience int
	// Policy resolves real-vs-dummy choices; zero value means Adversarial.
	Policy SilencePolicy
}

// New builds a canonical service. It validates the service type and the
// endpoint set.
func New(cfg Config) (*Service, error) {
	if cfg.Type == nil {
		return nil, errors.New("service: nil type")
	}
	if err := cfg.Type.Validate(); err != nil {
		return nil, fmt.Errorf("service %s: %w", cfg.Index, err)
	}
	if len(cfg.Endpoints) == 0 {
		return nil, fmt.Errorf("service %s: empty endpoint set", cfg.Index)
	}
	if cfg.Resilience < 0 {
		return nil, fmt.Errorf("service %s: negative resilience", cfg.Index)
	}
	policy := cfg.Policy
	if policy == 0 {
		policy = Adversarial
	}
	eps := append([]int{}, cfg.Endpoints...)
	sort.Ints(eps)
	in := make(map[int]bool, len(eps))
	for _, e := range eps {
		in[e] = true
	}
	return &Service{
		index:      cfg.Index,
		typ:        cfg.Type,
		endpoints:  eps,
		endpointIn: in,
		resilience: cfg.Resilience,
		policy:     policy,
	}, nil
}

// NewWaitFree builds a canonical wait-free (i.e. (|J|−1)-resilient) service.
func NewWaitFree(index string, typ *servicetype.Type, endpoints []int, policy SilencePolicy) (*Service, error) {
	return New(Config{
		Index:      index,
		Type:       typ,
		Endpoints:  endpoints,
		Resilience: len(endpoints) - 1,
		Policy:     policy,
	})
}

// NewRegister builds a canonical reliable (wait-free) multi-writer
// multi-reader register over the given value set (Section 2.1.3): a canonical
// atomic object of the read/write sequential type that never falls silent
// while any endpoint is alive.
func NewRegister(index string, values []string, initial string, endpoints []int) (*Service, error) {
	rw := servicetype.FromSequential(registerSeqType(values, initial))
	return NewWaitFree(index, rw, endpoints, Adversarial)
}

// Index returns the service index (k).
func (s *Service) Index() string { return s.index }

// Type returns the service type.
func (s *Service) Type() *servicetype.Type { return s.typ }

// Endpoints returns the endpoint set J, ascending. The returned slice is
// shared; callers must not modify it.
func (s *Service) Endpoints() []int { return s.endpoints }

// HasEndpoint reports whether i ∈ J.
func (s *Service) HasEndpoint(i int) bool { return s.endpointIn[i] }

// Resilience returns f.
func (s *Service) Resilience() int { return s.resilience }

// WaitFree reports whether the service is wait-free, i.e. f ≥ |J|−1
// (Section 2.1.3's equivalent formulations).
func (s *Service) WaitFree() bool { return s.resilience >= len(s.endpoints)-1 }

// Policy returns the silence policy.
func (s *Service) Policy() SilencePolicy { return s.policy }

// Tasks returns the tasks of the service in a fixed order: i-perform and
// i-output per endpoint (ascending), then g-compute per global task name.
func (s *Service) Tasks() []ioa.Task {
	out := make([]ioa.Task, 0, 2*len(s.endpoints)+len(s.typ.Glob))
	for _, i := range s.endpoints {
		out = append(out, ioa.PerformTask(s.index, i))
		out = append(out, ioa.OutputTask(s.index, i))
	}
	for _, g := range s.typ.Glob {
		out = append(out, ioa.ComputeTask(s.index, g))
	}
	return out
}
