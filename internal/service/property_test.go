package service

import (
	"testing"
	"testing/quick"

	"github.com/ioa-lab/boosting/internal/ioa"
	"github.com/ioa-lab/boosting/internal/seqtype"
	"github.com/ioa-lab/boosting/internal/servicetype"
)

// driveRegister applies a script of operations (encoded as bytes) to a
// canonical register through full invoke→perform→output cycles, returning
// the sequence of responses.
func driveRegister(t testing.TB, script []byte) []string {
	t.Helper()
	reg, err := NewRegister("r", []string{"", "a", "b", "c"}, "", []int{0})
	if err != nil {
		t.Fatal(err)
	}
	st := reg.InitialState()
	var responses []string
	for _, b := range script {
		var inv string
		switch b % 4 {
		case 0:
			inv = seqtype.Read
		case 1:
			inv = seqtype.Write("a")
		case 2:
			inv = seqtype.Write("b")
		case 3:
			inv = seqtype.Write("c")
		}
		var invErr error
		st, invErr = reg.Invoke(st, 0, inv)
		if invErr != nil {
			t.Fatal(invErr)
		}
		st, _, _ = reg.Apply(st, ioa.PerformTask("r", 0))
		var act ioa.Action
		st, act, _ = reg.Apply(st, ioa.OutputTask("r", 0))
		responses = append(responses, act.Payload)
	}
	return responses
}

func TestRegisterReadsReturnLastWrite(t *testing.T) {
	// Property: in a sequential (one-endpoint) usage, every read returns
	// the most recently written value.
	f := func(script []byte) bool {
		if len(script) > 40 {
			script = script[:40]
		}
		responses := driveRegister(t, script)
		last := ""
		for i, b := range script {
			switch b % 4 {
			case 0:
				if responses[i] != last {
					return false
				}
			case 1:
				last = "a"
			case 2:
				last = "b"
			case 3:
				last = "c"
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestServiceDeterministicReplayProperty(t *testing.T) {
	// Property: replaying any script yields identical responses and final
	// fingerprints (Section 3.1 determinism).
	f := func(script []byte) bool {
		if len(script) > 30 {
			script = script[:30]
		}
		a := driveRegister(t, script)
		b := driveRegister(t, script)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFailedSetMonotoneProperty(t *testing.T) {
	// Property: the failed set recorded by a service only grows, in any
	// interleaving of fails and operations.
	obj, err := NewWaitFree("k",
		servicetype.FromSequential(seqtype.BinaryConsensus()), []int{0, 1, 2}, Adversarial)
	if err != nil {
		t.Fatal(err)
	}
	f := func(events []byte) bool {
		if len(events) > 30 {
			events = events[:30]
		}
		st := obj.InitialState()
		prev := st.Failed
		for _, e := range events {
			switch e % 5 {
			case 0, 1, 2:
				st = obj.Fail(st, int(e%5))
			case 3:
				st, _ = obj.Invoke(st, int(e%3), seqtype.Init("0"))
			case 4:
				if _, ok := obj.Enabled(st, ioa.PerformTask("k", int(e%3))); ok {
					st, _, _ = obj.Apply(st, ioa.PerformTask("k", int(e%3)))
				}
			}
			if !prev.SubsetOf(st.Failed) {
				return false
			}
			prev = st.Failed
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConsensusObjectValueStableProperty(t *testing.T) {
	// Property: once the canonical consensus object's value is set, no
	// sequence of performs changes it (the type's stability, preserved by
	// the service engine).
	obj, err := NewWaitFree("k",
		servicetype.FromSequential(seqtype.BinaryConsensus()), []int{0, 1}, Adversarial)
	if err != nil {
		t.Fatal(err)
	}
	f := func(ops []byte) bool {
		if len(ops) > 25 {
			ops = ops[:25]
		}
		st := obj.InitialState()
		fixed := ""
		for _, op := range ops {
			endpoint := int(op % 2)
			v := "0"
			if op%4 >= 2 {
				v = "1"
			}
			st, _ = obj.Invoke(st, endpoint, seqtype.Init(v))
			st, _, _ = obj.Apply(st, ioa.PerformTask("k", endpoint))
			if fixed == "" {
				fixed = st.Val
			}
			if st.Val != fixed {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
