package service

import (
	"strconv"

	"github.com/ioa-lab/boosting/internal/codec"
	"github.com/ioa-lab/boosting/internal/seqtype"
	"github.com/ioa-lab/boosting/internal/servicetype"
)

// State is the state of a canonical service automaton: the value of the
// type, the per-endpoint invocation and response FIFO buffers, and the set
// of endpoints known to have failed (Fig. 1's val, inv-buffer, resp-buffer
// and failed components).
//
// States are treated as immutable: every transition returns a fresh State.
// Buffers of untouched endpoints are shared between the old and new state,
// and mutated buffers are re-allocated, so sharing is safe.
type State struct {
	Val    string
	Inv    map[int][]string
	Resp   map[int][]string
	Failed codec.IntSet
}

// InitialState returns the start state: val = the type's initial value, all
// buffers empty, no failures.
func (s *Service) InitialState() State {
	return State{
		Val:    s.typ.Initial,
		Inv:    map[int][]string{},
		Resp:   map[int][]string{},
		Failed: codec.NewIntSet(),
	}
}

// Fingerprint returns the canonical encoding of the state.
func (st State) Fingerprint() string {
	return string(st.AppendFingerprint(nil))
}

// AppendFingerprint appends the canonical encoding of the state to dst,
// byte-identical to Fingerprint. Exploration engines reuse one buffer across
// states, so the hot-path cost is the encoding itself, not allocation.
func (st State) AppendFingerprint(dst []byte) []byte {
	dst = append(dst, '[')
	dst = codec.AppendWrapped(dst, func(d []byte) []byte {
		return codec.AppendAtom(d, st.Val)
	})
	dst = codec.AppendWrapped(dst, func(d []byte) []byte {
		return appendBuffers(d, st.Inv)
	})
	dst = codec.AppendWrapped(dst, func(d []byte) []byte {
		return appendBuffers(d, st.Resp)
	})
	dst = codec.AppendWrapped(dst, st.Failed.AppendFingerprint)
	return append(dst, ']')
}

// appendBuffers appends the canonical map encoding of the non-empty buffers:
// entries keyed by the endpoint's decimal string, ordered lexicographically
// (the order codec.Map imposes), each value the list encoding of the queue.
func appendBuffers(dst []byte, buf map[int][]string) []byte {
	var scratch [16]int
	ids := scratch[:0]
	for i, items := range buf {
		if len(items) == 0 {
			continue
		}
		ids = append(ids, i)
	}
	// Insertion sort in decimal-string order; endpoint counts are tiny.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && decimalLess(ids[j], ids[j-1]); j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	dst = append(dst, '<')
	for _, i := range ids {
		items := buf[i]
		dst = append(dst, '(')
		dst = codec.AppendInt(dst, i)
		dst = codec.AppendWrapped(dst, func(d []byte) []byte {
			return codec.AppendList(d, items)
		})
		dst = append(dst, ')')
	}
	return append(dst, '>')
}

// decimalLess orders integers by their decimal encodings ("10" < "2").
func decimalLess(a, b int) bool {
	var ba, bb [24]byte
	sa := strconv.AppendInt(ba[:0], int64(a), 10)
	sb := strconv.AppendInt(bb[:0], int64(b), 10)
	return string(sa) < string(sb)
}

// shallowWith returns a copy of the state with the given buffer map entry
// replaced (copy-on-write at the map level).
func withBuffer(buf map[int][]string, i int, items []string) map[int][]string {
	out := make(map[int][]string, len(buf)+1)
	for k, v := range buf {
		out[k] = v
	}
	if len(items) == 0 {
		delete(out, i)
	} else {
		out[i] = items
	}
	return out
}

// pushed returns buf with item appended to endpoint i's queue, without
// mutating buf.
func pushed(buf map[int][]string, i int, item string) map[int][]string {
	old := buf[i]
	items := make([]string, len(old), len(old)+1)
	copy(items, old)
	return withBuffer(buf, i, append(items, item))
}

// pushedAll returns buf with items appended to endpoint i's queue.
func pushedAll(buf map[int][]string, i int, items []string) map[int][]string {
	if len(items) == 0 {
		return buf
	}
	old := buf[i]
	merged := make([]string, len(old), len(old)+len(items))
	copy(merged, old)
	return withBuffer(buf, i, append(merged, items...))
}

// popped returns buf with the head of endpoint i's queue removed, plus the
// removed head. ok is false if the queue is empty.
func popped(buf map[int][]string, i int) (out map[int][]string, head string, ok bool) {
	items := buf[i]
	if len(items) == 0 {
		return buf, "", false
	}
	rest := make([]string, len(items)-1)
	copy(rest, items[1:])
	return withBuffer(buf, i, rest), items[0], true
}

// applyResponses appends every response in rm to the corresponding response
// buffers, returning a fresh buffer map.
func applyResponses(resp map[int][]string, rm servicetype.ResponseMap) map[int][]string {
	out := resp
	for _, i := range rm.Endpoints() {
		out = pushedAll(out, i, rm.Responses(i))
	}
	return out
}

// PendingInvocations returns the invocation buffer of endpoint i (shared
// slice; do not modify).
func (st State) PendingInvocations(i int) []string { return st.Inv[i] }

// PendingResponses returns the response buffer of endpoint i (shared slice;
// do not modify).
func (st State) PendingResponses(i int) []string { return st.Resp[i] }

// registerSeqType builds the read/write sequential type used by canonical
// registers, defaulting the value set when empty.
func registerSeqType(values []string, initial string) *seqtype.Type {
	if len(values) == 0 {
		values = []string{initial}
	}
	return seqtype.ReadWrite(values, initial)
}
