package service

import (
	"fmt"

	"github.com/ioa-lab/boosting/internal/ioa"
)

// Invoke applies the input action a_{i,k}: endpoint i submits invocation inv,
// which is appended to inv-buffer(i). Per the canonical automata (Figs. 1,
// 4, 8), invocations are accepted unconditionally — input-enabledness — even
// from failed endpoints; resilience shows up only in whether the service
// keeps performing.
func (s *Service) Invoke(st State, i int, inv string) (State, error) {
	if !s.HasEndpoint(i) {
		return st, fmt.Errorf("%w: process %d, service %s", ErrNotEndpoint, i, s.index)
	}
	if s.typ.IsInv == nil || !s.typ.IsInv(inv) {
		return st, fmt.Errorf("%w: %q at service %s", ErrBadInvocation, inv, s.index)
	}
	return State{
		Val:    st.Val,
		Inv:    pushed(st.Inv, i, inv),
		Resp:   st.Resp,
		Failed: st.Failed,
	}, nil
}

// Fail applies the input action fail_i. Failing a non-endpoint is a no-op
// (the action is not in this service's signature).
func (s *Service) Fail(st State, i int) State {
	if !s.HasEndpoint(i) {
		return st
	}
	return State{Val: st.Val, Inv: st.Inv, Resp: st.Resp, Failed: st.Failed.With(i)}
}

// dummyEnabled reports whether the dummy action of an i-perform or i-output
// task is enabled: i ∈ failed ∨ |failed| > f (Fig. 1).
func (s *Service) dummyEnabled(st State, i int) bool {
	return st.Failed.Has(i) || st.Failed.Len() > s.resilience
}

// dummyComputeEnabled reports whether a dummy_compute action is enabled:
// |failed| > f ∨ all endpoints failed (Fig. 4).
func (s *Service) dummyComputeEnabled(st State) bool {
	if st.Failed.Len() > s.resilience {
		return true
	}
	for _, i := range s.endpoints {
		if !st.Failed.Has(i) {
			return false
		}
	}
	return true
}

// Enabled returns the unique action that the given task would perform in
// state st, or ok = false if the task has no enabled action (is not
// applicable). Determinism between a real and an enabled dummy action is
// resolved by the service's SilencePolicy.
func (s *Service) Enabled(st State, task ioa.Task) (ioa.Action, bool) {
	if task.Service != s.index {
		return ioa.Action{}, false
	}
	switch task.Kind {
	case ioa.TaskPerform:
		if !s.HasEndpoint(task.Proc) {
			return ioa.Action{}, false
		}
		real := len(st.Inv[task.Proc]) > 0
		dummy := s.dummyEnabled(st, task.Proc)
		return s.choose(
			real, ioa.Action{Type: ioa.ActPerform, Proc: task.Proc, Service: s.index},
			dummy, ioa.Action{Type: ioa.ActDummyPerform, Proc: task.Proc, Service: s.index},
		)
	case ioa.TaskOutput:
		if !s.HasEndpoint(task.Proc) {
			return ioa.Action{}, false
		}
		resp := st.Resp[task.Proc]
		real := len(resp) > 0
		var realAct ioa.Action
		if real {
			realAct = ioa.Action{Type: ioa.ActRespond, Proc: task.Proc, Service: s.index, Payload: resp[0]}
		}
		dummy := s.dummyEnabled(st, task.Proc)
		return s.choose(
			real, realAct,
			dummy, ioa.Action{Type: ioa.ActDummyOutput, Proc: task.Proc, Service: s.index},
		)
	case ioa.TaskCompute:
		if !s.hasGlobal(task.Global) {
			return ioa.Action{}, false
		}
		// δ2 is total, so the real compute action is always enabled.
		return s.choose(
			true, ioa.Action{Type: ioa.ActCompute, Service: s.index, Proc: ioa.NoProc, Payload: task.Global},
			s.dummyComputeEnabled(st), ioa.Action{Type: ioa.ActDummyCompute, Service: s.index, Proc: ioa.NoProc, Payload: task.Global},
		)
	default:
		return ioa.Action{}, false
	}
}

// choose resolves the real/dummy choice per the silence policy.
func (s *Service) choose(real bool, realAct ioa.Action, dummy bool, dummyAct ioa.Action) (ioa.Action, bool) {
	switch {
	case real && dummy:
		if s.policy == Benign {
			return realAct, true
		}
		return dummyAct, true
	case real:
		return realAct, true
	case dummy:
		return dummyAct, true
	default:
		return ioa.Action{}, false
	}
}

func (s *Service) hasGlobal(g string) bool {
	for _, have := range s.typ.Glob {
		if have == g {
			return true
		}
	}
	return false
}

// Apply runs the given task from st, returning the successor state and the
// action taken. It returns ErrTaskNotEnabled if the task is not applicable
// and ErrForeignTask if the task belongs to another automaton.
func (s *Service) Apply(st State, task ioa.Task) (State, ioa.Action, error) {
	if task.Service != s.index {
		return st, ioa.Action{}, fmt.Errorf("%w: %v at service %s", ErrForeignTask, task, s.index)
	}
	act, ok := s.Enabled(st, task)
	if !ok {
		return st, ioa.Action{}, fmt.Errorf("%w: %v", ErrTaskNotEnabled, task)
	}
	switch act.Type {
	case ioa.ActPerform:
		inv, head, popOK := popped(st.Inv, task.Proc)
		if !popOK {
			return st, ioa.Action{}, fmt.Errorf("%w: empty inv-buffer for %v", ErrTaskNotEnabled, task)
		}
		rm, newVal := s.typ.Delta1(head, task.Proc, st.Val, st.Failed)
		return State{
			Val:    newVal,
			Inv:    inv,
			Resp:   applyResponses(st.Resp, rm),
			Failed: st.Failed,
		}, act, nil
	case ioa.ActRespond:
		resp, _, popOK := popped(st.Resp, task.Proc)
		if !popOK {
			return st, ioa.Action{}, fmt.Errorf("%w: empty resp-buffer for %v", ErrTaskNotEnabled, task)
		}
		return State{Val: st.Val, Inv: st.Inv, Resp: resp, Failed: st.Failed}, act, nil
	case ioa.ActCompute:
		rm, newVal := s.typ.Delta2(task.Global, st.Val, st.Failed)
		return State{
			Val:    newVal,
			Inv:    st.Inv,
			Resp:   applyResponses(st.Resp, rm),
			Failed: st.Failed,
		}, act, nil
	case ioa.ActDummyPerform, ioa.ActDummyOutput, ioa.ActDummyCompute:
		// Dummy actions change nothing: they exist so the task stays fair
		// while the service is permitted to be silent.
		return st, act, nil
	default:
		return st, ioa.Action{}, fmt.Errorf("%w: unexpected action %v", ErrTaskNotEnabled, act)
	}
}
