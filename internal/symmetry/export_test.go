package symmetry

import "github.com/ioa-lab/boosting/internal/system"

// PermuteForTest applies the group element given as an id map to st via the
// spec's state action (white-box hook for the orbit-invariance tests).
func (c *Canonicalizer) PermuteForTest(st system.State, idMap map[int]int) system.State {
	p := make([]int, len(c.procIDs))
	for slot, id := range c.procIDs {
		img := id
		if v, ok := idMap[id]; ok {
			img = v
		}
		p[slot] = c.slotOf[img]
	}
	svcMap, err := c.serviceMap(p)
	if err != nil {
		panic(err)
	}
	return c.apply(st, p, svcMap)
}
