package symmetry_test

// Black-box tests of the canonicalizer: spec validation, idempotence, and —
// the property the quotient construction rests on — equivariance: running a
// permuted schedule from a permuted initialization lands in the same orbit,
// so both runs canonicalize to byte-identical representatives.

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"github.com/ioa-lab/boosting/internal/ioa"
	"github.com/ioa-lab/boosting/internal/protocols"
	"github.com/ioa-lab/boosting/internal/service"
	"github.com/ioa-lab/boosting/internal/symmetry"
	"github.com/ioa-lab/boosting/internal/system"
)

// testCase couples a registry system with its declared spec and a process
// permutation to exercise (given as an id map).
type testCase struct {
	name string
	sys  *system.System
	spec symmetry.Spec
	perm map[int]int
}

func cases(t *testing.T) []testCase {
	t.Helper()
	fw, err := protocols.BuildForward(3, 0, service.Adversarial)
	if err != nil {
		t.Fatal(err)
	}
	tob, err := protocols.BuildTOBConsensus(3, 0, service.Adversarial)
	if err != nil {
		t.Fatal(err)
	}
	rv, err := protocols.BuildRegisterVote(3)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := protocols.BuildSetBoost(2)
	if err != nil {
		t.Fatal(err)
	}
	return []testCase{
		{"forward", fw, protocols.ForwardSymmetry(3), map[int]int{0: 2, 1: 0, 2: 1}},
		{"tob", tob, protocols.TOBSymmetry(3), map[int]int{0: 1, 1: 2, 2: 0}},
		{"registervote", rv, protocols.RegisterVoteSymmetry(3), map[int]int{0: 1, 1: 0, 2: 2}},
		// setboost: a within-group swap in each group of the 4-process system.
		{"setboost", sb, protocols.SetBoostSymmetry(2), map[int]int{0: 1, 1: 0, 2: 3, 3: 2}},
	}
}

func permFunc(m map[int]int) func(int) int {
	return func(i int) int {
		if v, ok := m[i]; ok {
			return v
		}
		return i
	}
}

// permTask maps a task under the permutation: process and endpoint indices
// through perm, service indices through the spec's renaming.
func permTask(task ioa.Task, spec symmetry.Spec, perm func(int) int) ioa.Task {
	out := task
	if task.Kind != ioa.TaskCompute {
		out.Proc = perm(task.Proc)
	}
	if task.Service != "" && spec.RenameService != nil {
		out.Service = spec.RenameService(task.Service, perm)
	}
	return out
}

// runSchedule initializes the system with the inputs and applies up to
// steps tasks drawn round-robin (skipping inapplicable ones), returning the
// visited states.
func runSchedule(t *testing.T, sys *system.System, inputs map[int]string, tasks []ioa.Task) []system.State {
	t.Helper()
	st := sys.InitialState()
	ids := sys.ProcessIDs()
	for _, id := range ids {
		if v, ok := inputs[id]; ok {
			next, _, err := sys.Init(st, id, v)
			if err != nil {
				t.Fatal(err)
			}
			st = next
		}
	}
	out := []system.State{st}
	for _, task := range tasks {
		if !sys.Applicable(st, task) {
			continue
		}
		next, _, err := sys.Apply(st, task)
		if err != nil {
			t.Fatal(err)
		}
		st = next
		out = append(out, st)
	}
	return out
}

// TestCanonicalOrbitInvariance is the property canonicalization must have
// to be a quotient map: applying any group element to a state leaves its
// canonical representative unchanged. States are drawn from random
// schedules of each system.
func TestCanonicalOrbitInvariance(t *testing.T) {
	for _, tc := range cases(t) {
		t.Run(tc.name, func(t *testing.T) {
			canon, err := symmetry.New(tc.sys, tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(11))
			all := tc.sys.Tasks()
			inputs := map[int]string{}
			for idx, id := range tc.sys.ProcessIDs() {
				inputs[id] = string(rune('0' + idx%2))
			}
			var sched []ioa.Task
			for i := 0; i < 80; i++ {
				sched = append(sched, all[rng.Intn(len(all))])
			}
			var fa, fb []byte
			for i, st := range runSchedule(t, tc.sys, inputs, sched) {
				permuted := canon.PermuteForTest(st, tc.perm)
				fa = tc.sys.AppendFingerprint(fa[:0], canon.Canonical(st))
				fb = tc.sys.AppendFingerprint(fb[:0], canon.Canonical(permuted))
				if !bytes.Equal(fa, fb) {
					t.Fatalf("step %d: canonical form not orbit-invariant:\n%q\n%q", i, fa, fb)
				}
			}
		})
	}
}

// TestCanonicalEquivariance strengthens the orbit test for the families
// whose program handlers are themselves id-independent: the state reached
// by the permuted schedule from the permuted inputs canonicalizes to the
// same representative as the original. (registervote is excluded: its init
// handler enqueues its read sweep in ascending-id order, so a permuted
// *run* produces a differently-ordered outbox than the permuted *state* —
// initialization happens before canonicalization, so the quotient
// construction never depends on init-handler equivariance.)
func TestCanonicalEquivariance(t *testing.T) {
	for _, tc := range cases(t) {
		if tc.name == "registervote" {
			continue
		}
		t.Run(tc.name, func(t *testing.T) {
			canon, err := symmetry.New(tc.sys, tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			perm := permFunc(tc.perm)
			rng := rand.New(rand.NewSource(7))
			all := tc.sys.Tasks()
			inputs := map[int]string{}
			for idx, id := range tc.sys.ProcessIDs() {
				inputs[id] = string(rune('0' + idx%2))
			}
			permInputs := map[int]string{}
			for id, v := range inputs {
				permInputs[perm(id)] = v
			}
			var sched, permSched []ioa.Task
			for i := 0; i < 60; i++ {
				task := all[rng.Intn(len(all))]
				sched = append(sched, task)
				permSched = append(permSched, permTask(task, tc.spec, perm))
			}
			orig := runSchedule(t, tc.sys, inputs, sched)
			permuted := runSchedule(t, tc.sys, permInputs, permSched)
			if len(orig) != len(permuted) {
				t.Fatalf("schedules diverged: %d vs %d states (permutation is not an automorphism?)",
					len(orig), len(permuted))
			}
			var fa, fb []byte
			for i := range orig {
				fa = tc.sys.AppendFingerprint(fa[:0], canon.Canonical(orig[i]))
				fb = tc.sys.AppendFingerprint(fb[:0], canon.Canonical(permuted[i]))
				if !bytes.Equal(fa, fb) {
					t.Fatalf("step %d: canonical representatives differ:\n%q\n%q", i, fa, fb)
				}
			}
		})
	}
}

// TestCanonicalIdempotent: canonicalizing a canonical representative is the
// identity, and canonicalization never changes a state's orbit-invariant
// observables (decisions by value).
func TestCanonicalIdempotent(t *testing.T) {
	for _, tc := range cases(t) {
		t.Run(tc.name, func(t *testing.T) {
			canon, err := symmetry.New(tc.sys, tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(3))
			all := tc.sys.Tasks()
			inputs := map[int]string{}
			for idx, id := range tc.sys.ProcessIDs() {
				inputs[id] = string(rune('0' + (idx+1)%2))
			}
			var sched []ioa.Task
			for i := 0; i < 80; i++ {
				sched = append(sched, all[rng.Intn(len(all))])
			}
			var f1, f2 []byte
			for _, st := range runSchedule(t, tc.sys, inputs, sched) {
				c1 := canon.Canonical(st)
				f1 = tc.sys.AppendFingerprint(f1[:0], c1)
				f2 = tc.sys.AppendFingerprint(f2[:0], canon.Canonical(c1))
				if !bytes.Equal(f1, f2) {
					t.Fatalf("canonicalization not idempotent:\n%q\n%q", f1, f2)
				}
				want := decisionsByValue(tc.sys, st)
				if got := decisionsByValue(tc.sys, c1); got != want {
					t.Fatalf("canonicalization changed decided values: %q -> %q", want, got)
				}
			}
		})
	}
}

// decisionsByValue renders the multiset of decided values (sorted), the
// observable every verdict is built from.
func decisionsByValue(sys *system.System, st system.State) string {
	var vals []string
	for _, v := range sys.Decisions(st) {
		vals = append(vals, v)
	}
	for i := 0; i < len(vals); i++ {
		for j := i + 1; j < len(vals); j++ {
			if vals[j] < vals[i] {
				vals[i], vals[j] = vals[j], vals[i]
			}
		}
	}
	return strings.Join(vals, ",")
}

// TestSpecValidation: orbit members must be processes, orbits disjoint, the
// group order bounded, and service renaming a bijection.
func TestSpecValidation(t *testing.T) {
	sys, err := protocols.BuildForward(3, 0, service.Adversarial)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := symmetry.New(sys, symmetry.Spec{Orbits: [][]int{{0, 9}}}); err == nil {
		t.Error("want error for unknown orbit member")
	}
	if _, err := symmetry.New(sys, symmetry.Spec{Orbits: [][]int{{0, 1}, {1, 2}}}); err == nil {
		t.Error("want error for overlapping orbits")
	}
	big, err := protocols.BuildRegisterVote(9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := symmetry.New(big, protocols.RegisterVoteSymmetry(9)); err == nil {
		t.Error("want error for group order beyond the bound (9! > 8!)")
	}
	badRename := symmetry.Spec{
		Orbits:        [][]int{{0, 1, 2}},
		RenameService: func(svc string, _ func(int) int) string { return svc + "x" },
	}
	if _, err := symmetry.New(sys, badRename); err == nil {
		t.Error("want error for renaming onto unknown services")
	}

	canon, err := symmetry.New(sys, symmetry.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if canon.Order() != 1 {
		t.Errorf("empty spec order %d, want 1", canon.Order())
	}
	st := sys.InitialState()
	var fa, fb []byte
	fa = sys.AppendFingerprint(fa, canon.Canonical(st))
	fb = sys.AppendFingerprint(fb, st)
	if !bytes.Equal(fa, fb) {
		t.Error("trivial canonicalizer changed the state")
	}
	full, err := symmetry.New(sys, protocols.ForwardSymmetry(3))
	if err != nil {
		t.Fatal(err)
	}
	if full.Order() != 6 {
		t.Errorf("S_3 order %d, want 6", full.Order())
	}
}
