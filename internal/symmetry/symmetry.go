// Package symmetry reduces exploration modulo process renaming.
//
// The seed protocols are symmetric: process identities are interchangeable,
// so the execution graph G(C) of the paper contains up to n! isomorphic
// copies of every orbit — the same symmetry the FLP-style bivalence
// arguments quotient away implicitly. A Canonicalizer maps every system
// state to a canonical representative of its orbit under a declared
// permutation group; exploration engines that intern only canonical
// representatives build the quotient graph, which is smaller by up to the
// group order while preserving every value-based verdict (valences,
// refutation outcomes, hook existence) — decisions are compared by value,
// never by process identity.
//
// The group is declared per system as a Spec: disjoint orbits of
// interchangeable process ids, plus optional hooks describing how service
// indices and id-bearing payloads transform under a permutation. A
// permutation π acts on a state by
//
//   - moving process component states between slots (P_i's state to slot
//     π(i)), renaming service indices inside pending outbox invocations;
//   - moving service component states between slots when service indices
//     rename (a per-process register V_i becomes V_π(i));
//   - re-keying every service's per-endpoint invocation and response
//     buffers (endpoint i's buffers become endpoint π(i)'s), rewriting
//     id-bearing buffered payloads and service values via the Spec hooks;
//   - relabelling the service failed sets.
//
// Soundness requires π to be an automorphism of the transition system:
// programs must be identical up to id and the hooks must cover every place
// a process id is embedded in the state. The quotient-parity test suite
// asserts this empirically for every registry protocol. Systems whose
// states embed ids in ways the hooks cannot express (e.g. the
// failure-detector families, whose graph phases are skipped anyway) simply
// declare no orbits and get no reduction — which is always sound.
//
// Canonicalization is sorted-orbit: per-process invariant keys (the
// process's component fingerprint plus its per-service buffer slices and
// failed bit — the process's entire contribution to a pure-spec state) are
// sorted within each orbit, which pins the canonical slot order outright;
// key ties are between byte-interchangeable processes, so any stable
// assignment is canonical (see canonicalSorted). Specs with rename/rewrite
// hooks make per-process keys id-dependent, so those systems fall back to
// enumerating the whole (declared) group — exact for the small groups this
// repository explores.
package symmetry

import (
	"bytes"
	"fmt"
	"sort"
	"sync"

	"github.com/ioa-lab/boosting/internal/codec"
	"github.com/ioa-lab/boosting/internal/process"
	"github.com/ioa-lab/boosting/internal/service"
	"github.com/ioa-lab/boosting/internal/system"
)

// MaxGroupOrder bounds the declared permutation group: canonicalization work
// per state is linear in the number of candidate permutations, and beyond
// 8! the per-state cost dwarfs the n!-fold state savings.
const MaxGroupOrder = 40320

// Spec declares the symmetry of a composed system.
//
// The zero Spec declares no symmetry (canonicalization is the identity).
// All hooks receive perm, the process-id permutation π as a function; they
// must be pure. A nil hook means the corresponding state component carries
// no process ids and transforms trivially.
type Spec struct {
	// Orbits lists disjoint sets of interchangeable process ids. Processes
	// not listed are fixed by every permutation of the group, which is the
	// product of the symmetric groups of the orbits.
	Orbits [][]int
	// RenameService maps a service index under π (the per-process register
	// V_i of a renamed process becomes V_π(i)). It must be a bijection of
	// the system's service index set for every group element. nil = every
	// service index is fixed.
	RenameService func(svc string, perm func(int) int) string
	// RewriteVal rewrites a service value under π (a totally-ordered
	// broadcast queue of (message, sender) pairs relabels its senders).
	// nil = values carry no process ids.
	RewriteVal func(svc, val string, perm func(int) int) string
	// RewriteResponse rewrites one buffered response under π.
	// nil = responses carry no process ids. (Buffered *invocations* are
	// value-only in every declared spec — the seed protocols invoke with
	// init/write/read/bcast payloads — so there is deliberately no
	// invocation counterpart; add one alongside a spec that needs it.)
	RewriteResponse func(svc, item string, perm func(int) int) string
}

// pure reports whether the spec transforms only component positions —
// no service renaming, no payload rewriting — so per-process content is
// id-independent and the sorted-key fast path applies.
func (sp *Spec) pure() bool {
	return sp.RenameService == nil && sp.RewriteVal == nil && sp.RewriteResponse == nil
}

// Canonicalizer maps system states to canonical orbit representatives. It
// is immutable after New and safe for concurrent use; scratch buffers are
// pooled per call.
type Canonicalizer struct {
	sys     *system.System
	spec    Spec
	procIDs []int
	slotOf  map[int]int
	svcIDs  []string
	svcSlot map[string]int
	// orbits holds the orbit member slots, ascending; slots outside every
	// orbit are fixed points.
	orbits [][]int
	order  int
	pure   bool
	// perms is the whole group as slot-level maps (perm[slot] = image
	// slot), precomputed for the general path. Empty on the pure path.
	perms [][]int
	// svcMaps[i] is the service-slot relabelling of perms[i].
	svcMaps [][]int
	bufs    sync.Pool
}

// scratch is the per-call workspace.
type scratch struct {
	key    [][]byte // per-slot sort keys (pure path)
	perm   []int
	ranked []int // orbit-sort buffer, reused across orbits
	best   []byte
	cand   []byte
}

// New builds a Canonicalizer for sys from a declared symmetry Spec. Orbit
// members must be process ids of sys, orbits must be disjoint, and the
// group order (the product of the orbit factorials) must not exceed
// MaxGroupOrder. Specs with rename/rewrite hooks have the whole group
// enumerated and the service renaming validated here.
func New(sys *system.System, spec Spec) (*Canonicalizer, error) {
	c := &Canonicalizer{
		sys:     sys,
		spec:    spec,
		procIDs: sys.ProcessIDs(),
		svcIDs:  sys.ServiceIDs(),
		order:   1,
		pure:    spec.pure(),
	}
	c.slotOf = make(map[int]int, len(c.procIDs))
	for slot, id := range c.procIDs {
		c.slotOf[id] = slot
	}
	c.svcSlot = make(map[string]int, len(c.svcIDs))
	for slot, k := range c.svcIDs {
		c.svcSlot[k] = slot
	}
	seen := make(map[int]bool)
	for _, orbit := range spec.Orbits {
		var slots []int
		for _, id := range orbit {
			slot, ok := c.slotOf[id]
			if !ok {
				return nil, fmt.Errorf("symmetry: orbit member %d is not a process of the system", id)
			}
			if seen[id] {
				return nil, fmt.Errorf("symmetry: process %d appears in two orbits", id)
			}
			seen[id] = true
			slots = append(slots, slot)
		}
		if len(slots) < 2 {
			continue // a singleton orbit is a fixed point
		}
		sort.Ints(slots)
		for f := 2; f <= len(slots); f++ {
			c.order *= f
			if c.order > MaxGroupOrder {
				return nil, fmt.Errorf("symmetry: group order exceeds %d; run without symmetry reduction", MaxGroupOrder)
			}
		}
		c.orbits = append(c.orbits, slots)
	}
	c.bufs.New = func() any {
		return &scratch{
			key:    make([][]byte, len(c.procIDs)),
			perm:   make([]int, len(c.procIDs)),
			ranked: make([]int, len(c.procIDs)),
		}
	}
	if !c.pure && c.order > 1 {
		if err := c.enumerateGroup(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Order returns the order of the declared permutation group; 1 means
// canonicalization is the identity.
func (c *Canonicalizer) Order() int { return c.order }

// enumerateGroup precomputes every group element as a slot map (identity
// first) and its induced service-slot relabelling, validating that the
// spec's service renaming is a bijection of the service index set.
func (c *Canonicalizer) enumerateGroup() error {
	identity := make([]int, len(c.procIDs))
	for i := range identity {
		identity[i] = i
	}
	perms := [][]int{identity}
	for _, orbit := range c.orbits {
		var next [][]int
		images := append([]int{}, orbit...)
		permute(images, 0, func(img []int) {
			for _, base := range perms {
				p := append([]int{}, base...)
				for j, slot := range orbit {
					p[slot] = img[j]
				}
				next = append(next, p)
			}
		})
		perms = next
	}
	// Move the identity to index 0 (permute emits it first only for the
	// single-orbit case; the product loop preserves that, but be explicit).
	for i, p := range perms {
		if isIdentity(p) {
			perms[0], perms[i] = perms[i], perms[0]
			break
		}
	}
	c.perms = perms
	c.svcMaps = make([][]int, len(perms))
	for i, p := range perms {
		m, err := c.serviceMap(p)
		if err != nil {
			return err
		}
		c.svcMaps[i] = m
	}
	return nil
}

// serviceMap resolves the service-slot relabelling induced by a process
// permutation and checks it is a bijection.
func (c *Canonicalizer) serviceMap(p []int) ([]int, error) {
	m := make([]int, len(c.svcIDs))
	if c.spec.RenameService == nil {
		for i := range m {
			m[i] = i
		}
		return m, nil
	}
	idPerm := c.idPerm(p)
	hit := make([]bool, len(c.svcIDs))
	for slot, k := range c.svcIDs {
		k2 := c.spec.RenameService(k, idPerm)
		target, ok := c.svcSlot[k2]
		if !ok {
			return nil, fmt.Errorf("symmetry: service %q renames to unknown service %q", k, k2)
		}
		if hit[target] {
			return nil, fmt.Errorf("symmetry: service renaming is not a bijection (two services map to %q)", k2)
		}
		hit[target] = true
		m[slot] = target
	}
	return m, nil
}

// permute generates every permutation of items in place, calling f with
// each arrangement (f must not retain the slice).
func permute(items []int, k int, f func([]int)) {
	if k == len(items) {
		f(items)
		return
	}
	for i := k; i < len(items); i++ {
		items[k], items[i] = items[i], items[k]
		permute(items, k+1, f)
		items[k], items[i] = items[i], items[k]
	}
}

func isIdentity(p []int) bool {
	for i, v := range p {
		if i != v {
			return false
		}
	}
	return true
}

// idPerm lifts a slot-level permutation to a process-id permutation.
// Ids outside the system map to themselves.
func (c *Canonicalizer) idPerm(p []int) func(int) int {
	return func(id int) int {
		slot, ok := c.slotOf[id]
		if !ok {
			return id
		}
		return c.procIDs[p[slot]]
	}
}

// Canonical returns the canonical representative of st's orbit: the state
// of the orbit with the lexicographically least canonical fingerprint among
// the candidates the sorted-orbit analysis leaves open. It is a pure
// function and constant on orbits, so interning only canonical
// representatives merges each orbit into one vertex.
func (c *Canonicalizer) Canonical(st system.State) system.State {
	if c.order == 1 {
		return st
	}
	sc := c.bufs.Get().(*scratch)
	defer c.bufs.Put(sc)
	if c.pure {
		return c.canonicalSorted(st, sc)
	}
	return c.canonicalEnumerated(st, sc)
}

// canonicalEnumerated scans the precomputed group for the least permuted
// fingerprint (general path: specs with rename/rewrite hooks).
func (c *Canonicalizer) canonicalEnumerated(st system.State, sc *scratch) system.State {
	best := st
	sc.best = c.sys.AppendFingerprint(sc.best[:0], st)
	for i := 1; i < len(c.perms); i++ {
		cand := c.apply(st, c.perms[i], c.svcMaps[i])
		sc.cand = c.sys.AppendFingerprint(sc.cand[:0], cand)
		if bytes.Compare(sc.cand, sc.best) < 0 {
			best = cand
			sc.best, sc.cand = sc.cand, sc.best
		}
	}
	return best
}

// canonicalSorted is the pure-spec fast path: sort each orbit by invariant
// per-process keys and apply the resulting slot assignment outright.
//
// Canonicity: keys are equivariant — permuting the state permutes the keys
// with it — so the multiset of keys and their sorted order are orbit
// invariants. Key ties need no resolution: under a pure spec the key is a
// concatenation of self-delimiting encodings covering a process's *entire*
// contribution to the state (its component fingerprint, its invocation and
// response buffer in every service, its failed-set membership; service
// values are untouched by pure actions), so equal-key processes are
// interchangeable at the byte level and every assignment of a tie block
// produces the identical state. Any stable assignment is therefore the
// canonical one. If a pure action ever grows a per-process contribution
// outside appendKey, that completeness argument — and this shortcut —
// breaks; extend the key with it.
func (c *Canonicalizer) canonicalSorted(st system.State, sc *scratch) system.State {
	procs, svcs := c.sys.ComponentStates(st)
	for i := range sc.perm {
		sc.perm[i] = i
	}
	identity := true
	for _, orbit := range c.orbits {
		// ranked = orbit slots ordered by key; the slot of rank j moves to
		// canonical position orbit[j].
		ranked := sc.ranked[:len(orbit)]
		copy(ranked, orbit)
		for _, slot := range orbit {
			sc.key[slot] = c.appendKey(sc.key[slot][:0], slot, procs, svcs)
		}
		sort.SliceStable(ranked, func(a, b int) bool {
			return bytes.Compare(sc.key[ranked[a]], sc.key[ranked[b]]) < 0
		})
		for j, slot := range ranked {
			sc.perm[slot] = orbit[j]
			if slot != orbit[j] {
				identity = false
			}
		}
	}
	if identity {
		return st
	}
	return c.apply(st, sc.perm, nil)
}

// appendKey appends slot's invariant sort key: the process component
// fingerprint followed by the process's slice of every service state — its
// invocation and response buffers and failed-set membership, in fixed
// service order. For pure specs none of this content depends on process
// ids, so keys are equivariant under the group action.
func (c *Canonicalizer) appendKey(dst []byte, slot int, procs []process.State, svcs []service.State) []byte {
	dst = procs[slot].AppendFingerprint(dst)
	id := c.procIDs[slot]
	for i := range svcs {
		dst = codec.AppendList(dst, svcs[i].Inv[id])
		dst = codec.AppendList(dst, svcs[i].Resp[id])
		if svcs[i].Failed.Has(id) {
			dst = append(dst, 'F')
		} else {
			dst = append(dst, '.')
		}
	}
	return dst
}

// apply builds π(st) for the slot permutation p. svcMap gives the induced
// service-slot relabelling (nil = all service slots fixed, the pure case).
func (c *Canonicalizer) apply(st system.State, p []int, svcMap []int) system.State {
	procs, svcs := c.sys.ComponentStates(st)
	idPerm := c.idPerm(p)
	newProcs := make([]process.State, len(procs))
	for slot := range procs {
		newProcs[p[slot]] = c.rewriteProc(procs[slot], idPerm)
	}
	newSvcs := make([]service.State, len(svcs))
	for slot := range svcs {
		target := slot
		if svcMap != nil {
			target = svcMap[slot]
		}
		newSvcs[target] = c.rewriteSvc(c.svcIDs[slot], svcs[slot], idPerm)
	}
	out, err := c.sys.StateOf(newProcs, newSvcs)
	if err != nil {
		// Unreachable: the slices are sized from the system's own layout.
		panic(err)
	}
	return out
}

// rewriteProc relabels service indices inside a process's pending outbox.
// Variables, the recorded decision and the flags never carry ids under a
// declared spec, so everything else is shared.
func (c *Canonicalizer) rewriteProc(ps process.State, idPerm func(int) int) process.State {
	if c.spec.RenameService == nil || len(ps.Outbox) == 0 {
		return ps
	}
	out := make([]process.Outgoing, len(ps.Outbox))
	copy(out, ps.Outbox)
	for i := range out {
		if out[i].Kind == process.OutInvoke {
			out[i].Service = c.spec.RenameService(out[i].Service, idPerm)
		}
	}
	ps.Outbox = out
	return ps
}

// rewriteSvc relabels a service state under π: the value via the spec hook,
// the per-endpoint buffers re-keyed (and their items rewritten), and the
// failed set relabelled. Empty buffer entries are dropped rather than
// re-keyed, so nil-vs-empty differences can never leak into a canonical
// representative.
func (c *Canonicalizer) rewriteSvc(k string, ss service.State, idPerm func(int) int) service.State {
	out := service.State{Val: ss.Val, Inv: ss.Inv, Resp: ss.Resp, Failed: ss.Failed}
	if c.spec.RewriteVal != nil {
		out.Val = c.spec.RewriteVal(k, ss.Val, idPerm)
	}
	out.Inv = c.rekeyBuffers(k, ss.Inv, idPerm, nil)
	out.Resp = c.rekeyBuffers(k, ss.Resp, idPerm, c.spec.RewriteResponse)
	if ss.Failed.Len() > 0 {
		members := ss.Failed.Members()
		mapped := make([]int, len(members))
		for i, m := range members {
			mapped[i] = idPerm(m)
		}
		out.Failed = codec.NewIntSet(mapped...)
	}
	return out
}

// rekeyBuffers moves endpoint i's buffer to endpoint π(i), rewriting items
// through the spec hook when present. Buffers without any non-empty entry
// are shared unchanged (nil and empty maps fingerprint identically).
func (c *Canonicalizer) rekeyBuffers(k string, buf map[int][]string, idPerm func(int) int, rewrite func(string, string, func(int) int) string) map[int][]string {
	n := 0
	for _, items := range buf {
		if len(items) > 0 {
			n++
		}
	}
	if n == 0 {
		return buf
	}
	out := make(map[int][]string, n)
	for i, items := range buf {
		if len(items) == 0 {
			continue
		}
		if rewrite != nil {
			rewritten := make([]string, len(items))
			for j, it := range items {
				rewritten[j] = rewrite(k, it, idPerm)
			}
			items = rewritten
		}
		out[idPerm(i)] = items
	}
	return out
}
