package explore

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"github.com/ioa-lab/boosting/internal/codec"
	"github.com/ioa-lab/boosting/internal/system"
)

// The durable graph layout: one directory per graph, holding the two
// append-only data files the spill backend already writes (canonical
// fingerprints and delta-varint edge blocks), the index file with
// everything RAM-resident that reopening needs (per-vertex lengths,
// valence masks, predecessor links, roots, seal offsets, dictionaries),
// and the manifest that commits them. The manifest is written last, via
// write-temp-then-rename, so a directory either holds a complete
// committed graph or no graph at all — partial builds and crashes leave
// no manifest and are rebuilt from scratch.
const (
	manifestName  = "manifest.json"
	fpFileName    = "fingerprints.dat"
	edgeFileName  = "edges.dat"
	indexFileName = "index.dat"

	// manifestFormat is the on-disk format version. Bump on any layout
	// change: stale manifests are rejected, never reinterpreted.
	manifestFormat = 1
)

// ManifestError reports a durable graph directory that cannot be opened:
// missing or unreadable manifest, checksum or length mismatches, a stale
// format version, or an identity (shape / graph-ID / option-tuple)
// mismatch against what the caller expected. It wraps the underlying
// cause, when there is one, for errors.Is/As chains.
type ManifestError struct {
	// Dir is the graph directory.
	Dir string
	// Reason says what failed validation.
	Reason string
	// Err is the underlying cause (nil for pure mismatches).
	Err error
}

func (e *ManifestError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("explore: graph dir %s: %s: %v", e.Dir, e.Reason, e.Err)
	}
	return fmt.Sprintf("explore: graph dir %s: %s", e.Dir, e.Reason)
}

func (e *ManifestError) Unwrap() error { return e.Err }

// Manifest describes one committed durable graph. It records the graph's
// identity (the shape fingerprint of the system that can decode it, and
// the caller-supplied full graph identity), the build-option tuple that
// affects reopened semantics (symmetry reduction, witness links), the
// counts, and the lengths plus checksums that bind the data files to it.
type Manifest struct {
	// Format is the on-disk format version (manifestFormat).
	Format int `json:"format"`
	// Shape is the hex shape fingerprint (see ShapeFingerprint) of the
	// system the graph was built from: any system with an equal shape can
	// decode the stored states.
	Shape string `json:"shape"`
	// GraphID is the hex full identity of the build — the façade records
	// Checker.CanonicalFingerprint plus the root set here — or "" when the
	// builder supplied none.
	GraphID string `json:"graphId"`
	// Symmetry records whether the graph is the symmetry-reduced quotient.
	Symmetry bool `json:"symmetry"`
	// Witnesses records whether BFS-tree predecessor links were persisted.
	Witnesses bool `json:"witnesses"`
	// States, Edges, Roots and Levels are the graph counts.
	States int `json:"states"`
	Edges  int `json:"edges"`
	Roots  int `json:"roots"`
	Levels int `json:"levels"`
	// FingerprintBytes and EdgeBytes are the exact data-file lengths.
	FingerprintBytes int64 `json:"fingerprintBytes"`
	EdgeBytes        int64 `json:"edgeBytes"`
	// IndexBytes and IndexSum bind the index file: exact length and hex
	// 64-bit content hash.
	IndexBytes int64  `json:"indexBytes"`
	IndexSum   string `json:"indexSum"`
	// Checksum is the hex 64-bit hash of the manifest's own JSON encoding
	// with this field empty — tamper and truncation detection for the
	// manifest itself.
	Checksum string `json:"checksum"`
}

// sum64 hashes a byte slice with the store's deterministic fingerprint
// hash (first stream), rendered as the fixed-width hex used in manifests.
func sum64(b []byte) string {
	h, _ := fpHash(b)
	var raw [8]byte
	for i := range raw {
		raw[i] = byte(h >> (56 - 8*i))
	}
	return hex.EncodeToString(raw[:])
}

// seal marks the manifest's checksum: the hash of the encoding with the
// checksum field empty.
func (m *Manifest) seal() error {
	m.Checksum = ""
	body, err := json.Marshal(m)
	if err != nil {
		return err
	}
	m.Checksum = sum64(body)
	return nil
}

// verifyChecksum recomputes the self-checksum and compares.
func (m *Manifest) verifyChecksum() (bool, error) {
	want := m.Checksum
	cp := *m
	cp.Checksum = ""
	body, err := json.Marshal(&cp)
	if err != nil {
		return false, err
	}
	return sum64(body) == want, nil
}

// ShapeFingerprint returns the encoding-compatibility identity of a
// system: process count and, per service in sorted index order, the
// index, type name, class, initial value and endpoint count. Two systems
// with equal shapes produce and parse interchangeable state encodings
// (ParseFingerprint splits on component counts), so a durable graph can
// be reopened and re-evaluated by any same-shape candidate. Deliberately
// excluded are the dynamics-only knobs — resilience, silence policy and
// the process programs — which change the transition relation but not
// the state encoding: those are exactly the deltas incremental recheck
// revalidates.
func ShapeFingerprint(sys *system.System) []byte {
	dst := append([]byte(nil), "boosting-shape-v1"...)
	dst = append(dst, '[')
	dst = codec.AppendInt(dst, len(sys.ProcessIDs()))
	for _, k := range sys.ServiceIDs() {
		sv := sys.Service(k)
		dst = append(dst, '(')
		dst = codec.AppendAtom(dst, sv.Index())
		dst = codec.AppendAtom(dst, sv.Type().Name)
		dst = codec.AppendInt(dst, int(sv.Type().Class))
		dst = codec.AppendAtom(dst, sv.Type().Initial)
		dst = codec.AppendInt(dst, len(sv.Endpoints()))
		dst = append(dst, ')')
	}
	dst = append(dst, ']')
	return dst
}

// ReadManifest reads and validates a durable graph directory's manifest:
// it must parse, carry the current format version, and pass its
// self-checksum. Identity checks (shape, graph ID) are the caller's.
// Every failure is a typed *ManifestError.
func ReadManifest(dir string) (*Manifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, &ManifestError{Dir: dir, Reason: "read manifest", Err: err}
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, &ManifestError{Dir: dir, Reason: "parse manifest", Err: err}
	}
	if m.Format != manifestFormat {
		return nil, &ManifestError{Dir: dir,
			Reason: fmt.Sprintf("unsupported manifest format %d (want %d)", m.Format, manifestFormat)}
	}
	ok, err := m.verifyChecksum()
	if err != nil {
		return nil, &ManifestError{Dir: dir, Reason: "verify manifest checksum", Err: err}
	}
	if !ok {
		return nil, &ManifestError{Dir: dir, Reason: "manifest checksum mismatch"}
	}
	return &m, nil
}

// HasManifest reports whether dir holds a committed manifest file —
// without validating it. Callers distinguishing "nothing here yet, build"
// from "committed graph, open (and surface validation errors)" probe with
// this first.
func HasManifest(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, manifestName))
	return err == nil
}

// writeManifest commits a sealed manifest via write-temp-then-rename: the
// rename is the atomic commit point, so a crash anywhere before it leaves
// the directory without a (complete) manifest and the graph reads as
// absent.
func writeManifest(dir string, m *Manifest) error {
	if err := m.seal(); err != nil {
		return fmt.Errorf("explore: encode manifest: %w", err)
	}
	body, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("explore: encode manifest: %w", err)
	}
	body = append(body, '\n')
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("explore: write manifest: %w", err)
	}
	if _, err := f.Write(body); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("explore: write manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("explore: commit manifest: %w", err)
	}
	return nil
}

// graphFiles owns the file set of one spill-backed graph in one of two
// modes. Ephemeral (dir == ""): the files are created in the spill
// directory and unlinked immediately — today's temp-file discipline, the
// kernel reclaims them when the descriptors close. Durable: the files are
// created under the named graph directory and kept; the build later adds
// the index and commits the manifest (see commitDurable), after which
// OpenGraph reattaches them.
type graphFiles struct {
	dir     string // durable graph directory; "" in ephemeral mode
	durable bool
	fp      *os.File // canonical fingerprints, append-only
	edges   *os.File // delta-varint edge blocks, append-only
}

// newEphemeralGraphFiles creates the unlinked temp-file pair in spillDir
// ("" = the OS temp directory).
func newEphemeralGraphFiles(spillDir string) (*graphFiles, error) {
	if spillDir == "" {
		spillDir = os.TempDir()
	}
	f, err := os.CreateTemp(spillDir, "boosting-spill-*.fp")
	if err != nil {
		return nil, fmt.Errorf("explore: create spill file: %w", err)
	}
	// Unlink immediately: the open descriptor keeps the data alive, and the
	// kernel reclaims the space as soon as it closes. (Best-effort — on
	// filesystems that refuse to unlink open files the temp file simply
	// persists until external cleanup.)
	_ = os.Remove(f.Name())
	ef, err := os.CreateTemp(spillDir, "boosting-spill-*.edges")
	if err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("explore: create edge spill file: %w", err)
	}
	_ = os.Remove(ef.Name())
	return &graphFiles{fp: f, edges: ef}, nil
}

// newDurableGraphFiles creates (or truncates) the named data files under
// dir. Any previously committed manifest is removed first, so a crash
// mid-rebuild cannot leave a valid manifest pointing at half-rewritten
// data — the commit protocol's invariant is "manifest implies complete".
func newDurableGraphFiles(dir string) (*graphFiles, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("explore: create graph dir: %w", err)
	}
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("explore: clear stale manifest: %w", err)
	}
	f, err := os.Create(filepath.Join(dir, fpFileName))
	if err != nil {
		return nil, fmt.Errorf("explore: create fingerprint file: %w", err)
	}
	ef, err := os.Create(filepath.Join(dir, edgeFileName))
	if err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("explore: create edge file: %w", err)
	}
	return &graphFiles{dir: dir, durable: true, fp: f, edges: ef}, nil
}

// openGraphFiles reopens a committed directory's data files read-only and
// checks their lengths against the manifest.
func openGraphFiles(dir string, m *Manifest) (*graphFiles, error) {
	fail := func(reason string, err error) (*graphFiles, error) {
		return nil, &ManifestError{Dir: dir, Reason: reason, Err: err}
	}
	f, err := os.Open(filepath.Join(dir, fpFileName))
	if err != nil {
		return fail("open fingerprint file", err)
	}
	ef, err := os.Open(filepath.Join(dir, edgeFileName))
	if err != nil {
		_ = f.Close()
		return fail("open edge file", err)
	}
	gf := &graphFiles{dir: dir, durable: true, fp: f, edges: ef}
	for _, check := range []struct {
		name string
		f    *os.File
		want int64
	}{
		{fpFileName, f, m.FingerprintBytes},
		{edgeFileName, ef, m.EdgeBytes},
	} {
		info, err := check.f.Stat()
		if err != nil {
			_ = gf.close()
			return fail("stat "+check.name, err)
		}
		if info.Size() != check.want {
			_ = gf.close()
			return fail(fmt.Sprintf("%s is %d bytes, manifest records %d",
				check.name, info.Size(), check.want), nil)
		}
	}
	return gf, nil
}

// close releases both descriptors, reporting the first error.
func (g *graphFiles) close() error {
	err := g.fp.Close()
	if eerr := g.edges.Close(); err == nil {
		err = eerr
	}
	return err
}
