package explore

import (
	"fmt"
	"iter"

	"github.com/ioa-lab/boosting/internal/system"
)

// RecheckResult is the outcome of a delta-revalidation pass (Recheck):
// the patched graph of the modified candidate, root valences in the
// ClassifyInits sense, and the dirty-region accounting that makes the
// incremental cost visible.
type RecheckResult struct {
	// Graph is the modified candidate's graph, layered over the base: base
	// vertices keep their StateIDs, vertices whose successor set changed
	// carry patched adjacency, and freshly discovered states are spliced
	// in after the base ID space. Base vertices unreachable under the new
	// candidate remain addressable (their valences are sound but vacuous);
	// Graph.Edges counts all recorded edges including theirs, while
	// ReachableEdges counts the live graph. Witness predecessor links are
	// not maintained across the splice: WitnessPath returns nil, as on
	// NoWitnesses builds.
	Graph *Graph
	// Roots are the recheck roots' vertices, in input order.
	Roots []StateID
	// Valences are the roots' valences under the modified candidate.
	Valences []Valence
	// BivalentIndex is the first bivalent root index, or -1.
	BivalentIndex int
	// BaseStates is the number of vertices inherited from the base graph.
	BaseStates int
	// Dirty is how many base vertices changed their successor set under
	// the modified candidate.
	Dirty int
	// Fresh is how many states the recheck actually explored — vertices
	// interned beyond the base ID space. This is the incremental work; a
	// from-scratch build would have explored ReachableStates.
	Fresh int
	// ReachableStates and ReachableEdges count the graph reachable from
	// the recheck roots — what a from-scratch build of the modified
	// candidate would report as Size and Edges.
	ReachableStates int
	ReachableEdges  int
}

// Close releases the underlying base graph's store (the reopened spill
// descriptors). Nil-tolerant, like InitClassification.Close.
func (r *RecheckResult) Close() error {
	if r == nil {
		return nil
	}
	return CloseGraphStore(r.Graph)
}

// recheckStore layers a mutable delta over a frozen base store: patched
// successor sets for dirty base vertices, and a dense in-memory fresh
// region spliced after the base ID space. It is the StateStore the
// recheck graph serves reads from; Intern only ever lands in the fresh
// region (the base is complete and read-only).
type recheckStore struct {
	base  StateStore
	baseN int

	// Fresh region, indexed by id − baseN.
	fps        []string
	states     []system.State
	freshSuccs [][]Edge
	index      map[string]StateID

	// patched maps dirty base vertices to their new successor sets.
	patched map[StateID][]Edge
}

func newRecheckStore(base StateStore) *recheckStore {
	return &recheckStore{
		base:    base,
		baseN:   base.Len(),
		index:   make(map[string]StateID),
		patched: make(map[StateID][]Edge),
	}
}

func (s *recheckStore) Len() int { return s.baseN + len(s.fps) }

func (s *recheckStore) Lookup(fp []byte) (StateID, bool) {
	if id, ok := s.base.Lookup(fp); ok {
		return id, true
	}
	id, ok := s.index[string(fp)]
	return id, ok
}

func (s *recheckStore) Intern(fp string, st system.State, _ pred) (StateID, bool) {
	if id, ok := s.Lookup(stringBytes(fp)); ok {
		return id, false
	}
	id := StateID(s.Len())
	s.index[fp] = id
	s.fps = append(s.fps, fp)
	s.states = append(s.states, st)
	return id, true
}

func (s *recheckStore) State(id StateID) (system.State, bool) {
	if uint(id) < uint(s.baseN) {
		return s.base.State(id)
	}
	i := int(id) - s.baseN
	if i >= len(s.states) {
		return system.State{}, false
	}
	return s.states[i], true
}

func (s *recheckStore) Fingerprint(id StateID) string {
	if uint(id) < uint(s.baseN) {
		return s.base.Fingerprint(id)
	}
	i := int(id) - s.baseN
	if i >= len(s.fps) {
		return ""
	}
	return s.fps[i]
}

// Pred is always the zero link: the base's BFS tree predates the delta
// (its edges may no longer exist under the modified candidate), so the
// spliced graph behaves like a NoWitnesses build.
func (s *recheckStore) Pred(StateID) pred { return pred{} }

// SetSuccs records a fresh vertex's successors; dirty base vertices go
// through patch instead.
func (s *recheckStore) SetSuccs(id StateID, edges []Edge) {
	if int(id) != s.baseN+len(s.freshSuccs) {
		panic(fmt.Sprintf("explore: recheck store: SetSuccs(%d) out of order (next fresh vertex is %d)",
			id, s.baseN+len(s.freshSuccs)))
	}
	s.freshSuccs = append(s.freshSuccs, edges)
}

// patch overrides a dirty base vertex's successor set.
func (s *recheckStore) patch(id StateID, edges []Edge) { s.patched[id] = edges }

func (s *recheckStore) EdgesFrom(id StateID) iter.Seq[Edge] {
	if edges, ok := s.patched[id]; ok {
		return sliceSeq(edges)
	}
	if uint(id) < uint(s.baseN) {
		return s.base.EdgesFrom(id)
	}
	i := int(id) - s.baseN
	if i >= len(s.freshSuccs) {
		return sliceSeq(nil)
	}
	return sliceSeq(s.freshSuccs[i])
}

func (s *recheckStore) SealLevel() {}

func sliceSeq(edges []Edge) iter.Seq[Edge] {
	return func(yield func(Edge) bool) {
		for _, e := range edges {
			if !yield(e) {
				return
			}
		}
	}
}

// Recheck revalidates a previously built graph against a modified
// candidate — the incremental counterpart of BuildGraph. prev is the base
// graph (typically reopened via OpenGraph; any store backend works) and
// sys the modified candidate, which must be shape-compatible with the
// system that built prev (equal ShapeFingerprint — same processes and
// service structure; programs, resilience and silence policy are the
// dimensions a delta may vary).
//
// The pass sweeps every base vertex, decodes its state via the strict
// ParseFingerprint inverse, and recomputes its enabled-action set under
// sys: vertices whose successor set changed are patched (the dirty
// region), successors the base never saw are interned into a fresh
// region spliced after the base ID space and explored BFS-style, and the
// descending-ID valence fixpoint is re-run seeded from the recomputed
// per-vertex decision masks. When the dirty region is empty, no state is
// fresh and the persisted fixpoint seeds are unchanged, the base's
// valences are reused verbatim and the fixpoint is skipped.
//
// Honors opt.MaxStates (over the combined ID space), opt.Symmetry (must
// match the base build — a reduced base recheckd without its
// canonicalizer, or vice versa, fails the per-vertex edge comparison
// wholesale) and opt.Ctx. Engine options (Workers, Shards, Store) are
// ignored: the pass is serial and the fresh region lives in memory.
//
// The result's graph shares prev's store; Close the result, not prev.
func Recheck(sys *system.System, prev *Graph, roots []system.State, opt BuildOptions) (*RecheckResult, error) {
	if prev == nil {
		return nil, fmt.Errorf("explore: recheck: nil base graph")
	}
	maxStates := opt.MaxStates
	if maxStates <= 0 {
		maxStates = defaultMaxStates
	}
	rs := newRecheckStore(prev.store)
	g := &Graph{sys: sys, store: rs}
	out := &RecheckResult{Graph: g, BivalentIndex: -1, BaseStates: rs.baseN}

	// Roots resolve against the base first; a root the base never explored
	// is itself fresh (exempt from the vertex budget, like BuildGraph).
	buf := make([]byte, 0, 256)
	for _, r := range roots {
		r = canonical(opt.Symmetry, r)
		buf = sys.AppendFingerprint(buf[:0], r)
		id, ok := rs.Lookup(buf)
		if !ok {
			id, _ = rs.Intern(string(buf), r, pred{})
		}
		g.roots = append(g.roots, id)
	}
	out.Roots = g.roots

	// Dirty-region sweep: recompute every base vertex's enabled-action set
	// under the modified candidate. The decode already pays for reading
	// the state, so the own-decision fixpoint seed is recomputed in the
	// same pass.
	ownMasks := make([]uint8, rs.baseN, rs.baseN+64)
	var edges []Edge
	for next := 0; next < rs.baseN; next++ {
		if next&63 == 0 {
			if err := ctxErr(opt.Ctx); err != nil {
				return nil, err
			}
		}
		st, ok := prev.store.State(StateID(next))
		if !ok {
			return nil, fmt.Errorf("explore: recheck: base state %d unreadable", next)
		}
		ownMasks[next] = ownMask(sys, st)
		edges = edges[:0]
		var err error
		edges, buf, err = expandRecheck(sys, rs, st, edges, buf, maxStates, opt.Symmetry)
		if err != nil {
			return nil, err
		}
		if !edgesEqual(prev.store.EdgesFrom(StateID(next)), edges) {
			out.Dirty++
			rs.patch(StateID(next), append([]Edge(nil), edges...))
		}
		g.edges += len(edges)
	}

	// Splice pass: BFS over the fresh region, exactly the serial engine's
	// implicit-queue loop but resolving against base ∪ fresh.
	for next := rs.baseN; next < rs.Len(); next++ {
		if next&63 == 0 {
			if err := ctxErr(opt.Ctx); err != nil {
				return nil, err
			}
		}
		st, _ := rs.State(StateID(next))
		ownMasks = append(ownMasks, ownMask(sys, st))
		fresh, _, err := expandRecheck(sys, rs, st, nil, buf, maxStates, opt.Symmetry)
		if err != nil {
			return nil, err
		}
		rs.SetSuccs(StateID(next), fresh)
		g.edges += len(fresh)
	}
	if err := ctxErr(opt.Ctx); err != nil {
		return nil, err
	}
	out.Fresh = rs.Len() - rs.baseN

	// Valences. Fast path: nothing dirty, nothing fresh and the persisted
	// fixpoint seeds unchanged means the edge relation and seeds are the
	// base's, whose masks are already the least fixpoint — reuse them.
	// (prev.ownMasks is non-nil only on durable/reopened graphs; without
	// it the full fixpoint runs, which is sound either way.)
	if out.Dirty == 0 && out.Fresh == 0 && masksEqual(prev.ownMasks, ownMasks) {
		g.masks = prev.masks
	} else {
		g.ownMasks = ownMasks
		g.computeMasks()
	}

	for i, id := range g.roots {
		v := g.Valence(id)
		out.Valences = append(out.Valences, v)
		if v == Bivalent && out.BivalentIndex < 0 {
			out.BivalentIndex = i
		}
	}

	out.ReachableStates, out.ReachableEdges = reachable(g, prev, out)
	return out, nil
}

// expandRecheck recomputes one vertex's successor edges under sys,
// resolving targets against the layered store and interning fresh states
// (budget-checked) as it goes.
func expandRecheck(sys *system.System, rs *recheckStore, st system.State,
	edges []Edge, buf []byte, maxStates int, canon Canonicalizer) ([]Edge, []byte, error) {
	for _, task := range sys.Tasks() {
		if !sys.Applicable(st, task) {
			continue
		}
		succ, act, err := sys.Apply(st, task)
		if err != nil {
			return nil, buf, fmt.Errorf("explore: recheck apply %v: %w", task, err)
		}
		succ = canonical(canon, succ)
		buf = sys.AppendFingerprint(buf[:0], succ)
		id, ok := rs.Lookup(buf)
		if !ok {
			if rs.Len() >= maxStates {
				return nil, buf, &LimitError{Limit: maxStates, Explored: rs.Len()}
			}
			id, _ = rs.Intern(string(buf), succ, pred{})
		}
		edges = append(edges, Edge{Task: task, Action: act, To: id})
	}
	return edges, buf, nil
}

// edgesEqual compares a stored successor sequence against a freshly
// computed one, element by element.
func edgesEqual(stored iter.Seq[Edge], edges []Edge) bool {
	i := 0
	for e := range stored {
		if i >= len(edges) || edges[i] != e {
			return false
		}
		i++
	}
	return i == len(edges)
}

func masksEqual(a, b []uint8) bool {
	if a == nil || len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// reachable counts the states and edges reachable from the recheck
// roots — what a from-scratch build would report. When nothing changed
// and the roots are the base's, the base counts carry over without a
// walk (BuildGraph explores only from its roots, so the base graph is
// root-reachable by construction).
func reachable(g *Graph, prev *Graph, out *RecheckResult) (int, int) {
	if out.Dirty == 0 && out.Fresh == 0 && sameRoots(g.roots, prev.roots) {
		return prev.store.Len(), prev.edges
	}
	seen := make([]bool, g.store.Len())
	var queue []StateID
	for _, r := range g.roots {
		if !seen[r] {
			seen[r] = true
			queue = append(queue, r)
		}
	}
	states, edges := 0, 0
	for head := 0; head < len(queue); head++ {
		id := queue[head]
		states++
		for e := range g.store.EdgesFrom(id) {
			edges++
			if !seen[e.To] {
				seen[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	return states, edges
}

// sameRoots reports set equality of two root lists.
func sameRoots(a, b []StateID) bool {
	if len(a) != len(b) {
		return false
	}
	in := make(map[StateID]bool, len(a))
	for _, id := range a {
		in[id] = true
	}
	for _, id := range b {
		if !in[id] {
			return false
		}
	}
	return true
}
