package explore

// In-package tests for the disk-spilling backend and the uniform bounds
// contract of the StateStore surface: every read accessor of every backend
// must be total (zero value / ok == false beyond Len(), never a panic), the
// spill store must keep assigning dense-identical IDs once the pending
// window rotates to disk, and forced hash collisions must be resolved by
// reading fingerprints back from the spill file.

import (
	"errors"
	"testing"

	"github.com/ioa-lab/boosting/internal/protocols"
	"github.com/ioa-lab/boosting/internal/service"
)

// allBackends builds one store of every kind for a system, with the spill
// store's pending window shrunk so small graphs exercise the disk path.
func allBackends(t *testing.T) []struct {
	name  string
	store StateStore
} {
	t.Helper()
	sys, err := protocols.BuildForward(2, 0, service.Adversarial)
	if err != nil {
		t.Fatal(err)
	}
	spill, err := newSpillStore(sys, t.TempDir(), "", true)
	if err != nil {
		t.Fatal(err)
	}
	spill.batch = 4
	return []struct {
		name  string
		store StateStore
	}{
		{"dense", newDenseStore(true)},
		{"hash64", newHashStore(sys.AppendFingerprint, false, true)},
		{"hash128", newHashStore(sys.AppendFingerprint, true, true)},
		{"spill", spill},
	}
}

// TestStoreBoundsUniform probes every read accessor of every backend at
// Len() and beyond: out-of-range IDs must yield zero values, uniformly —
// including the adjacency face, whose EdgesFrom must be total (an empty
// sequence beyond Len(), never a panic).
func TestStoreBoundsUniform(t *testing.T) {
	sys, err := protocols.BuildForward(2, 0, service.Adversarial)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := BuildGraph(sys, []systemState{stateAfterInputs(t, sys)}, BuildOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf []byte
	for _, b := range allBackends(t) {
		// Populate with a real prefix of the graph so in-range behaviour is
		// also checked, then probe past the end. Adjacency is recorded in
		// the contract's order (one SetSuccs per vertex, increasing IDs),
		// with a seal partway through so the spill backend serves blocks
		// from both the edge file and the pending buffer.
		const n = 10
		for id := 0; id < n; id++ {
			st, _ := dense.State(StateID(id))
			buf = sys.AppendFingerprint(buf[:0], st)
			b.store.Intern(string(buf), st, pred{})
		}
		if got := b.store.Len(); got != n {
			t.Fatalf("%s: Len() = %d, want %d", b.name, got, n)
		}
		for id := 0; id < n; id++ {
			b.store.SetSuccs(StateID(id), dense.Succs(StateID(id)))
			if id == n/2 {
				b.store.SealLevel()
			}
		}
		for _, id := range []StateID{StateID(n), StateID(n + 5), ^StateID(0)} {
			if _, ok := b.store.State(id); ok {
				t.Errorf("%s: State(%d) ok beyond Len()", b.name, id)
			}
			if fp := b.store.Fingerprint(id); fp != "" {
				t.Errorf("%s: Fingerprint(%d) = %q beyond Len(), want \"\"", b.name, id, fp)
			}
			for range b.store.EdgesFrom(id) {
				t.Errorf("%s: EdgesFrom(%d) yielded an edge beyond Len()", b.name, id)
			}
			if p := b.store.Pred(id); p.has || p.from != 0 {
				t.Errorf("%s: Pred(%d) non-zero beyond Len()", b.name, id)
			}
		}
		if _, ok := b.store.Lookup([]byte("no such fingerprint")); ok {
			t.Errorf("%s: Lookup of garbage fingerprint succeeded", b.name)
		}
		// In-range accessors still resolve after the probes, and the
		// recorded adjacency reads back exactly, sealed or pending.
		if fp0 := b.store.Fingerprint(0); fp0 != dense.Fingerprint(0) {
			t.Errorf("%s: Fingerprint(0) diverged after out-of-range probes", b.name)
		}
		for id := 0; id < n; id++ {
			want := dense.Succs(StateID(id))
			var got []Edge
			for e := range b.store.EdgesFrom(StateID(id)) {
				got = append(got, e)
			}
			if len(got) != len(want) {
				t.Fatalf("%s: EdgesFrom(%d) yielded %d edges, want %d", b.name, id, len(got), len(want))
			}
			for j := range want {
				if got[j] != want[j] {
					t.Errorf("%s: EdgesFrom(%d)[%d] = %+v, want %+v", b.name, id, j, got[j], want[j])
				}
			}
		}
	}
}

// TestSpillStoreRotation drives the spill store through many window
// rotations (batch = 4) and asserts it keeps assigning exactly the dense
// backend's IDs, that rotated vertices round-trip — State decodes back from
// the spill file and re-encodes byte-identically — and that the stats
// account for the disk traffic.
func TestSpillStoreRotation(t *testing.T) {
	sys, err := protocols.BuildForward(2, 0, service.Adversarial)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := BuildGraph(sys, []systemState{stateAfterInputs(t, sys)}, BuildOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := newSpillStore(sys, t.TempDir(), "", true)
	if err != nil {
		t.Fatal(err)
	}
	sp.batch = 4
	var buf []byte
	var wantBytes int64
	for id := 0; id < dense.Size(); id++ {
		st, _ := dense.State(StateID(id))
		buf = sys.AppendFingerprint(buf[:0], st)
		wantBytes += int64(len(buf))
		got, fresh := sp.Intern(string(buf), st, pred{})
		if !fresh || got != StateID(id) {
			t.Fatalf("spill Intern state %d: got %d fresh=%v", id, got, fresh)
		}
		// Re-interning the same fingerprint must dedup, not reassign.
		if again, fresh := sp.Intern(string(buf), st, pred{}); fresh || again != StateID(id) {
			t.Fatalf("spill re-Intern state %d: got %d fresh=%v", id, again, fresh)
		}
	}
	if sp.Len() != dense.Size() {
		t.Fatalf("spill Len() = %d, want %d", sp.Len(), dense.Size())
	}
	if resident := sp.Len() - sp.pendingBase; resident >= sp.Len() {
		t.Fatalf("pending window never rotated: %d of %d resident", resident, sp.Len())
	}
	for id := 0; id < dense.Size(); id++ {
		want := dense.Fingerprint(StateID(id))
		if got := sp.Fingerprint(StateID(id)); got != want {
			t.Fatalf("spill Fingerprint(%d) differs from dense", id)
		}
		st, ok := sp.State(StateID(id))
		if !ok {
			t.Fatalf("spill State(%d) not ok", id)
		}
		buf = sys.AppendFingerprint(buf[:0], st)
		if string(buf) != want {
			t.Fatalf("state %d did not round-trip through the spill file:\n%q\n%q", id, buf, want)
		}
		if got, ok := sp.Lookup(buf); !ok || got != StateID(id) {
			t.Fatalf("spill Lookup of state %d: got %d ok=%v", id, got, ok)
		}
	}
	stats, ok := GraphSpillStats(&Graph{store: sp})
	if !ok {
		t.Fatal("GraphSpillStats not ok for a spill store")
	}
	if stats.States != dense.Size() || stats.SpillBytes != wantBytes {
		t.Errorf("stats = %+v, want %d states / %d bytes", stats, dense.Size(), wantBytes)
	}
	if stats.Reads == 0 {
		t.Error("rotated spill store served zero reads from disk")
	}
	if stats.Resident != sp.Len()-sp.pendingBase {
		t.Errorf("stats.Resident = %d, want %d", stats.Resident, sp.Len()-sp.pendingBase)
	}
}

// TestSpillAdjacencyRotation drives the edge spill file through forced
// rotations — SealLevel after every few vertices, like many small BFS
// levels — and asserts every successor block round-trips byte-exactly
// through the delta-varint codec, whether served from the pending buffer
// or read back from disk, with the stats accounting for the traffic.
func TestSpillAdjacencyRotation(t *testing.T) {
	sys, err := protocols.BuildForward(2, 0, service.Adversarial)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := BuildGraph(sys, []systemState{stateAfterInputs(t, sys)}, BuildOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := newSpillStore(sys, t.TempDir(), "", true)
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	var buf []byte
	for id := 0; id < dense.Size(); id++ {
		st, _ := dense.State(StateID(id))
		buf = sys.AppendFingerprint(buf[:0], st)
		sp.Intern(string(buf), st, pred{})
	}
	// Record the real graph's adjacency, sealing every 3 vertices so the
	// read-back below crosses the pending/disk boundary many times. The
	// final 2 vertices stay pending (no trailing seal).
	for id := 0; id < dense.Size(); id++ {
		sp.SetSuccs(StateID(id), dense.Succs(StateID(id)))
		if id%3 == 2 && id < dense.Size()-2 {
			sp.SealLevel()
		}
	}
	if sp.flushedOff == 0 {
		t.Fatal("no edge blocks were sealed to disk")
	}
	if len(sp.pending) == 0 {
		t.Fatal("no edge blocks left pending — the test no longer crosses the boundary")
	}
	for id := 0; id < dense.Size(); id++ {
		want := dense.Succs(StateID(id))
		var got []Edge
		for e := range sp.EdgesFrom(StateID(id)) {
			got = append(got, e)
		}
		if len(got) != len(want) {
			t.Fatalf("EdgesFrom(%d): %d edges, want %d", id, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("EdgesFrom(%d)[%d] = %+v, want %+v", id, j, got[j], want[j])
			}
		}
	}
	// Early break must not disturb subsequent full iterations.
	for e := range sp.EdgesFrom(0) {
		_ = e
		break
	}
	n := 0
	for range sp.EdgesFrom(0) {
		n++
	}
	if n != len(dense.Succs(0)) {
		t.Errorf("EdgesFrom(0) after early break yielded %d edges, want %d", n, len(dense.Succs(0)))
	}
	stats, ok := GraphSpillStats(&Graph{store: sp})
	if !ok {
		t.Fatal("GraphSpillStats not ok for a spill store")
	}
	if stats.EdgeBytes != sp.flushedOff+int64(len(sp.pending)) {
		t.Errorf("stats.EdgeBytes = %d, want %d", stats.EdgeBytes, sp.flushedOff+int64(len(sp.pending)))
	}
	if stats.EdgeReads == 0 {
		t.Error("sealed adjacency served zero reads from the edge file")
	}
	// Out-of-order SetSuccs violates the append-only contract and must
	// panic like slice-bounds misuse, not corrupt the offset index.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-order SetSuccs did not panic")
			}
		}()
		sp.SetSuccs(StateID(dense.Size()+3), nil)
	}()
}

// TestSpillStoreCollisionAudit forces every fingerprint into one bucket
// with equal wide hashes: every dedup probe must verify against fingerprints
// read back from the spill file, resolving (and counting) the collisions
// without ever merging distinct states.
func TestSpillStoreCollisionAudit(t *testing.T) {
	sys, err := protocols.BuildForward(2, 0, service.Adversarial)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := BuildGraph(sys, []systemState{stateAfterInputs(t, sys)}, BuildOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := newSpillStore(sys, t.TempDir(), "", true)
	if err != nil {
		t.Fatal(err)
	}
	sp.batch = 4
	sp.hash = func([]byte) (uint64, uint64) { return 0, 0 }
	var buf []byte
	for id := 0; id < dense.Size(); id++ {
		st, _ := dense.State(StateID(id))
		buf = sys.AppendFingerprint(buf[:0], st)
		if got, fresh := sp.Intern(string(buf), st, pred{}); !fresh || got != StateID(id) {
			t.Fatalf("total-collision spill Intern state %d: got %d fresh=%v", id, got, fresh)
		}
	}
	for id := 0; id < dense.Size(); id++ {
		st, _ := dense.State(StateID(id))
		buf = sys.AppendFingerprint(buf[:0], st)
		if got, ok := sp.Lookup(buf); !ok || got != StateID(id) {
			t.Fatalf("total-collision spill Lookup state %d: got %d ok=%v", id, got, ok)
		}
	}
	if sp.collisions.Load() == 0 {
		t.Error("total-collision spill store audited zero collisions")
	}
	if sp.Len() != dense.Size() {
		t.Errorf("spill Len() = %d, want %d", sp.Len(), dense.Size())
	}
}

// TestSpillWriteFailureSurfacesAsError: an environmental write failure
// (simulated by closing the spill file so the rotation flush fails) must
// come out of the recoverSpillWrite boundary as an ordinary error — the
// disk-full path of BuildGraph — not as a process-killing panic.
func TestSpillWriteFailureSurfacesAsError(t *testing.T) {
	sys, err := protocols.BuildForward(2, 0, service.Adversarial)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := newSpillStore(sys, t.TempDir(), "", true)
	if err != nil {
		t.Fatal(err)
	}
	sp.batch = 1 // rotate — and hit the failing flush — on the first intern
	sp.file.Close()
	st := stateAfterInputs(t, sys)
	var g *Graph
	var buildErr error
	func() {
		defer recoverSpillWrite(&g, &buildErr)
		var buf []byte
		buf = sys.AppendFingerprint(buf[:0], st)
		sp.Intern(string(buf), st, pred{})
		g = &Graph{store: sp} // must be dropped by the recovery
	}()
	if buildErr == nil {
		t.Fatal("spill write failure did not surface as an error")
	}
	if g != nil {
		t.Error("recoverSpillWrite kept the partial graph alongside the error")
	}
}

// TestSpillStoreBadDir: an unusable spill directory must surface as a build
// error from BuildGraph (both engines), not a panic.
func TestSpillStoreBadDir(t *testing.T) {
	sys, err := protocols.BuildForward(2, 0, service.Adversarial)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		_, err := BuildGraph(sys, []systemState{stateAfterInputs(t, sys)}, BuildOptions{
			Workers:  workers,
			Store:    StoreSpill,
			SpillDir: "/nonexistent/spill/dir",
		})
		if err == nil {
			t.Fatalf("workers=%d: BuildGraph with unusable spill dir succeeded", workers)
		}
		var le *LimitError
		if errors.As(err, &le) {
			t.Fatalf("workers=%d: spill-dir failure misreported as %v", workers, err)
		}
	}
}
