package explore_test

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"github.com/ioa-lab/boosting/internal/explore"
	"github.com/ioa-lab/boosting/internal/protocols"
	"github.com/ioa-lab/boosting/internal/service"
	"github.com/ioa-lab/boosting/internal/system"
)

// parallelWorkers is the worker count used by the parity tests: high enough
// to force real contention on the sharded fingerprint store even on small
// machines.
const parallelWorkers = 8

// seedSystems enumerates the seed protocols whose failure-free graphs the
// determinism tests compare across engines.
func seedSystems(t *testing.T) map[string]*system.System {
	t.Helper()
	out := map[string]*system.System{
		"forward-2-0": mustForward(t, 2, 0, service.Adversarial),
		"forward-3-1": mustForward(t, 3, 1, service.Adversarial),
	}
	tob, err := protocols.BuildTOBConsensus(2, 0, service.Adversarial)
	if err != nil {
		t.Fatal(err)
	}
	out["tob-2-0"] = tob
	rv, err := protocols.BuildRegisterVote(2)
	if err != nil {
		t.Fatal(err)
	}
	out["registervote-2"] = rv
	return out
}

// TestBuildGraphDeterministicAcrossWorkers asserts the tentpole determinism
// property: the serial engine (Workers: 1) and the worker-pool engine
// (Workers: 8) produce identical graphs — same fingerprint set, same edges,
// same valences — on every seed protocol.
func TestBuildGraphDeterministicAcrossWorkers(t *testing.T) {
	for name, sys := range seedSystems(t) {
		t.Run(name, func(t *testing.T) {
			serial, err := explore.ClassifyInits(sys, explore.BuildOptions{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := explore.ClassifyInits(sys, explore.BuildOptions{Workers: parallelWorkers})
			if err != nil {
				t.Fatal(err)
			}
			gs, gp := serial.Graph, parallel.Graph
			if gs.Size() != gp.Size() {
				t.Fatalf("sizes differ: serial %d, parallel %d", gs.Size(), gp.Size())
			}
			if len(gs.Roots()) != len(gp.Roots()) {
				t.Fatalf("root counts differ: %d vs %d", len(gs.Roots()), len(gp.Roots()))
			}
			for i, r := range gs.Roots() {
				if gp.Roots()[i] != r {
					t.Fatalf("root %d differs", i)
				}
			}
			// The two engines must assign identical StateIDs: same
			// fingerprint, valence, outgoing edges and BFS-tree witness
			// path per ID — the graphs are identical, not merely
			// isomorphic.
			for id := 0; id < gs.Size(); id++ {
				sid := explore.StateID(id)
				if fs, fp2 := gs.Fingerprint(sid), gp.Fingerprint(sid); fs != fp2 {
					t.Fatalf("fingerprint of %d differs: %.24q... vs %.24q...", id, fs, fp2)
				}
				if vs, vp := gs.Valence(sid), gp.Valence(sid); vs != vp {
					t.Fatalf("valence of %d differs: serial %v, parallel %v", id, vs, vp)
				}
				es, ep := gs.Succs(sid), gp.Succs(sid)
				if len(es) != len(ep) {
					t.Fatalf("edge counts of %d differ: %d vs %d", id, len(es), len(ep))
				}
				for i := range es {
					if es[i] != ep[i] {
						t.Fatalf("edge %d of %d differs: %+v vs %+v", i, id, es[i], ep[i])
					}
				}
				ws, wp := gs.WitnessPath(sid), gp.WitnessPath(sid)
				if len(ws) != len(wp) {
					t.Fatalf("witness paths of %d differ in length: %d vs %d", id, len(ws), len(wp))
				}
				for i := range ws {
					if ws[i] != wp[i] {
						t.Fatalf("witness edge %d of %d differs: %+v vs %+v", i, id, ws[i], wp[i])
					}
				}
			}
			// The Lemma 4 classification built on top must agree too.
			if serial.BivalentIndex != parallel.BivalentIndex {
				t.Errorf("bivalent index: serial %d, parallel %d", serial.BivalentIndex, parallel.BivalentIndex)
			}
			for i := range serial.Valences {
				if serial.Valences[i] != parallel.Valences[i] {
					t.Errorf("α_%d valence: serial %v, parallel %v", i, serial.Valences[i], parallel.Valences[i])
				}
			}
		})
	}
}

// walkGraph visits every vertex reachable from start once.
func walkGraph(t *testing.T, g *explore.Graph, start explore.StateID, visit func(id explore.StateID)) {
	t.Helper()
	seen := make([]bool, g.Size())
	queue := []explore.StateID{start}
	seen[start] = true
	for head := 0; head < len(queue); head++ {
		id := queue[head]
		visit(id)
		for _, e := range g.Succs(id) {
			if !seen[e.To] {
				seen[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
}

// TestBuildGraphParallelStateLimit checks that the worker pool honours
// MaxStates with the same error as the serial engine.
func TestBuildGraphParallelStateLimit(t *testing.T) {
	sys := mustForward(t, 2, 0, service.Adversarial)
	root, _, err := initAll(sys)
	if err != nil {
		t.Fatal(err)
	}
	_, err = explore.BuildGraph(sys, []system.State{root},
		explore.BuildOptions{MaxStates: 3, Workers: parallelWorkers})
	if !errors.Is(err, explore.ErrStateExplosion) {
		t.Errorf("want state-explosion error, got %v", err)
	}
	// Boundary parity with the serial engine: a budget of exactly the graph
	// size succeeds, one less must overflow — for any worker count.
	full, err := explore.BuildGraph(sys, []system.State{root}, explore.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, parallelWorkers} {
		g, err := explore.BuildGraph(sys, []system.State{root},
			explore.BuildOptions{MaxStates: full.Size(), Workers: w})
		if err != nil {
			t.Errorf("workers=%d: exact budget %d failed: %v", w, full.Size(), err)
		} else if g.Size() != full.Size() {
			t.Errorf("workers=%d: got %d states under exact budget, want %d", w, g.Size(), full.Size())
		}
		if _, err := explore.BuildGraph(sys, []system.State{root},
			explore.BuildOptions{MaxStates: full.Size() - 1, Workers: w}); !errors.Is(err, explore.ErrStateExplosion) {
			t.Errorf("workers=%d: budget %d should overflow, got %v", w, full.Size()-1, err)
		}
	}
}

// TestParallelWitnessPathsReplay checks that the BFS-tree predecessors
// recorded under concurrent discovery still form valid paths: every vertex's
// witness path must replay edge-by-edge from one of the roots.
func TestParallelWitnessPathsReplay(t *testing.T) {
	sys := mustForward(t, 2, 0, service.Adversarial)
	c, err := explore.ClassifyInits(sys, explore.BuildOptions{Workers: parallelWorkers})
	if err != nil {
		t.Fatal(err)
	}
	g := c.Graph
	checked := 0
	walkGraph(t, g, c.Roots[c.BivalentIndex], func(id explore.StateID) {
		path := g.WitnessPath(id)
		for _, root := range g.Roots() {
			if replays(g, root, path, id) {
				checked++
				return
			}
		}
		t.Fatalf("witness path of %d (len %d) replays from no root", id, len(path))
	})
	if checked < 10 {
		t.Fatalf("suspiciously few vertices checked: %d", checked)
	}
}

// replays walks path from start via Succ and reports whether it ends at want.
func replays(g *explore.Graph, start explore.StateID, path []explore.Edge, want explore.StateID) bool {
	cur := start
	for _, e := range path {
		edge, ok := g.Succ(cur, e.Task)
		if !ok || edge.To != e.To {
			return false
		}
		cur = edge.To
	}
	return cur == want
}

// TestFindHookWorkersMatchesSerial checks the parallel hook search returns
// exactly the serial hook on both graph-analysable candidate families.
func TestFindHookWorkersMatchesSerial(t *testing.T) {
	for name, sys := range seedSystems(t) {
		t.Run(name, func(t *testing.T) {
			c, err := explore.ClassifyInits(sys, explore.BuildOptions{Workers: parallelWorkers})
			if err != nil {
				t.Fatal(err)
			}
			if c.BivalentIndex < 0 {
				t.Skip("no bivalent initialization")
			}
			root := c.Roots[c.BivalentIndex]
			serial, err := explore.FindHook(c.Graph, root)
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := explore.FindHookWorkers(c.Graph, root, parallelWorkers)
			if err != nil {
				t.Fatal(err)
			}
			if serial.PathLen != parallel.PathLen {
				t.Errorf("path lengths differ: %d vs %d", serial.PathLen, parallel.PathLen)
			}
			switch {
			case serial.Hook != nil:
				if parallel.Hook == nil {
					t.Fatalf("serial found a hook, parallel found %+v", parallel)
				}
				if *serial.Hook != *parallel.Hook {
					t.Errorf("hooks differ:\n serial   %+v\n parallel %+v", *serial.Hook, *parallel.Hook)
				}
			case serial.Divergence != nil:
				if parallel.Divergence == nil || *serial.Divergence != *parallel.Divergence {
					t.Errorf("divergences differ: %+v vs %+v", serial.Divergence, parallel.Divergence)
				}
			}
		})
	}
}

// TestRefuteParallelMatchesSerial checks the full refuter produces the same
// report with the worker pool as without, on a refuted candidate (Theorem 2),
// a safety-refuted candidate, and a surviving candidate.
func TestRefuteParallelMatchesSerial(t *testing.T) {
	build := func(name string) (*system.System, error) {
		switch name {
		case "forward-2-0":
			return protocols.BuildForward(2, 0, service.Adversarial)
		case "forward-2-1":
			return protocols.BuildForward(2, 1, service.Adversarial)
		case "registervote-2":
			return protocols.BuildRegisterVote(2)
		}
		return nil, fmt.Errorf("unknown system %q", name)
	}
	for _, name := range []string{"forward-2-0", "forward-2-1", "registervote-2"} {
		t.Run(name, func(t *testing.T) {
			sys, err := build(name)
			if err != nil {
				t.Fatal(err)
			}
			serial, err := explore.Refute(sys, 1, explore.RefuteOptions{})
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := explore.Refute(sys, 1, explore.RefuteOptions{
				Build: explore.BuildOptions{Workers: parallelWorkers},
			})
			if err != nil {
				t.Fatal(err)
			}
			if got, want := parallel.String(), serial.String(); got != want {
				t.Errorf("reports differ:\n--- serial ---\n%s--- parallel ---\n%s", want, got)
			}
		})
	}
}

// TestRunBatchMatchesSerial checks batched fair runs equal one-by-one runs.
func TestRunBatchMatchesSerial(t *testing.T) {
	sys := mustForward(t, 2, 1, service.Adversarial)
	cfgs := []explore.RunConfig{
		{Inputs: map[int]string{0: "0", 1: "1"}},
		{Inputs: map[int]string{0: "1", 1: "1"}},
		{Inputs: map[int]string{0: "0", 1: "1"}, Failures: []explore.FailureEvent{{Round: 0, Proc: 1}}},
		{Inputs: map[int]string{0: "0", 1: "1"}, Failures: []explore.FailureEvent{{Round: 1, Proc: 0}}},
	}
	batch, err := explore.RunBatch(sys, cfgs, parallelWorkers)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(cfgs) {
		t.Fatalf("got %d results for %d configs", len(batch), len(cfgs))
	}
	for i, cfg := range cfgs {
		want, err := explore.RoundRobin(sys, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := batch[i]
		if got.Done != want.Done || got.Diverged != want.Diverged || got.Rounds != want.Rounds {
			t.Errorf("cfg %d: got (done=%v div=%v rounds=%d), want (done=%v div=%v rounds=%d)",
				i, got.Done, got.Diverged, got.Rounds, want.Done, want.Diverged, want.Rounds)
		}
		if sys.Fingerprint(got.Final) != sys.Fingerprint(want.Final) {
			t.Errorf("cfg %d: final states differ", i)
		}
		if len(got.Decisions) != len(want.Decisions) {
			t.Errorf("cfg %d: decisions %v vs %v", i, got.Decisions, want.Decisions)
		}
		for p, v := range want.Decisions {
			if got.Decisions[p] != v {
				t.Errorf("cfg %d: P%d decided %q, want %q", i, p, got.Decisions[p], v)
			}
		}
	}
}

// TestParallelSpeedup measures the wall-clock gain of the worker pool over
// the serial engine on the largest completing seed system (forward, n = 4).
// Only meaningful with real parallel hardware, so it is skipped below 4 CPUs
// and under the race detector's serialization (benchmarks cover the rest).
func TestParallelSpeedup(t *testing.T) {
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs for a speedup measurement, have %d", runtime.NumCPU())
	}
	if raceEnabled {
		t.Skip("race-detector instrumentation invalidates wall-clock measurement")
	}
	if testing.Short() {
		t.Skip("speedup measurement skipped in -short mode")
	}
	sys := mustForward(t, 4, 0, service.Adversarial)
	measure := func(workers int) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			start := time.Now()
			if _, err := explore.ClassifyInits(sys, explore.BuildOptions{Workers: workers}); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	serial := measure(1)
	parallel := measure(runtime.NumCPU())
	speedup := float64(serial) / float64(parallel)
	t.Logf("serial %v, parallel(%d) %v: speedup %.2fx", serial, runtime.NumCPU(), parallel, speedup)
	if speedup < 1.5 {
		t.Errorf("parallel engine too slow: %.2fx speedup on %d CPUs, want >= 1.5x", speedup, runtime.NumCPU())
	}
}
