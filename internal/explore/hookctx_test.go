package explore_test

// Context-cancellation coverage for the Fig. 3 hook construction: the
// refuter's context reaches FindHook, which must stop mid-scan once the
// context is cancelled — including when the cancel comes from inside a
// streaming progress callback earlier in the pipeline.

import (
	"context"
	"errors"
	"testing"

	"github.com/ioa-lab/boosting/internal/explore"
	"github.com/ioa-lab/boosting/internal/protocols"
	"github.com/ioa-lab/boosting/internal/service"
	"github.com/ioa-lab/boosting/internal/system"
)

func TestFindHookHonorsContext(t *testing.T) {
	sys, err := protocols.BuildForward(3, 0, service.Adversarial)
	if err != nil {
		t.Fatal(err)
	}
	c, err := explore.ClassifyInits(sys, explore.BuildOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	root := c.Roots[c.BivalentIndex]

	// A live context does not interfere; a nil context never cancels.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if _, err := explore.FindHookCtx(ctx, c.Graph, root, 1); err != nil {
		t.Fatalf("live context: %v", err)
	}
	if _, err := explore.FindHookCtx(nil, c.Graph, root, 1); err != nil {
		t.Fatalf("nil context: %v", err)
	}

	// Cancel from inside a streaming progress callback — the documented way
	// to stop a long analysis — and verify the cancellation reaches a hook
	// construction run with the same context, mid-scan.
	st, err := explore.ApplyInputs(sys, explore.MonotoneAssignment(sys, 1))
	if err != nil {
		t.Fatal(err)
	}
	_, buildErr := explore.BuildGraph(sys, []system.State{st}, explore.BuildOptions{
		Workers: 1,
		Ctx:     ctx,
		Progress: func(p explore.Progress) {
			if p.Level == 1 {
				cancel()
			}
		},
	})
	if !errors.Is(buildErr, context.Canceled) {
		t.Fatalf("build after in-callback cancel: %v, want context.Canceled", buildErr)
	}
	if _, err := explore.FindHookCtx(ctx, c.Graph, root, 1); !errors.Is(err, context.Canceled) {
		t.Errorf("FindHookCtx after in-callback cancel: %v, want context.Canceled", err)
	}

	// Workers > 1 takes the same mid-scan checks.
	if _, err := explore.FindHookCtx(ctx, c.Graph, root, 4); !errors.Is(err, context.Canceled) {
		t.Errorf("parallel FindHookCtx after cancel: %v, want context.Canceled", err)
	}
}
