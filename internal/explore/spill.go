package explore

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"github.com/ioa-lab/boosting/internal/system"
)

// spillBatch is the default size of the in-RAM pending window: interned
// states stay resident until the window fills, then the whole window
// rotates out to the spill file. On small graphs (levels under the window
// size) a frontier vertex is still resident when the next level expands
// it, so exploration never touches the disk; on the large builds the
// backend targets, levels outgrow the window and most frontier expansions
// decode their state from the spill file (the GraphSpillStats.Reads
// counter makes this visible). The window's job is bounding resident
// bytes, not guaranteeing hot-path hits.
const spillBatch = 1024

// spillStore is the disk-spilling backend (the TLC fingerprint-file move):
// per vertex, RAM keeps only the dedup index entry — two independent 64-bit
// fingerprint hashes and the offset/length of the fingerprint in the spill
// file — plus the optional predecessor link. The canonical fingerprint
// itself, which doubles as the serialized representative state
// (system.ParseFingerprint is its exact inverse), lives in an append-only
// spill file and is read back and decoded on demand. Adjacency spills too:
// successor blocks are delta-varint encoded into a second append-only edge
// file (see spilledges.go), sealed at level barriers and streamed back via
// pread, so neither face of the graph pins O(edges) RAM.
//
// Exactness: like hashStore, candidate matches are verified byte-for-byte
// against the stored fingerprint (read from the pending window or the spill
// file), so hash collisions are audited and resolved, never merged — the
// produced graph is identical to the dense backend's.
//
// Write protocol: Intern appends the fingerprint to the buffered spill
// writer immediately and keeps (fingerprint, state) in the pending window;
// once the window holds spillBatch entries the writer is flushed and the
// window rotates. Intern only runs while the store is mutable (serially, at
// level barriers in the parallel engine), so rotation never races a reader.
// Reads of rotated vertices use pread (os.File.ReadAt), which is safe from
// any number of goroutines while the store is frozen.
//
// The file set lives behind the graphFiles abstraction: in ephemeral
// mode (the default) the files are created in spillDir and unlinked
// immediately, so the kernel reclaims them when the descriptors close —
// at the latest when the store is garbage collected (the os package
// attaches a close finalizer) — and nothing leaks even on a crash. In
// durable mode (BuildOptions.GraphDir) the same files are created under
// a named directory and kept; commitDurable adds the index and manifest
// after the build, and OpenGraph reattaches the store read-only.
type spillStore struct {
	spillEdges
	predTable
	enc func([]byte, system.State) []byte
	dec func(string) (system.State, error)
	// hash is fpHash, replaceable in tests to force collisions and exercise
	// the disk-verification path.
	hash func([]byte) (uint64, uint64)
	// matchB is the matches method bound once at construction, so
	// lookupBucket calls allocate no closures.
	matchB  func(StateID, []byte) bool
	buckets map[uint64][]StateID
	hash2   []uint64 // second hash per vertex (the wide filter)
	offs    []int64  // spill-file offset of each vertex's fingerprint
	lens    []uint32 // fingerprint length in bytes

	files *graphFiles
	file  *os.File // files.fp, the hot-path handle
	w     *bufio.Writer
	wOff  int64 // next append offset

	// readonly marks a store reattached by OpenGraph: the graph is
	// complete, so Intern and SetSuccs must never be called.
	readonly bool

	// Pending window: vertices pendingBase … Len()−1 are still resident.
	// pendingFps/pendingStates are indexed by id − pendingBase.
	batch         int
	pendingBase   int
	pendingFps    []string
	pendingStates []system.State

	collisions atomic.Int64
	reads      atomic.Int64 // fingerprint reads served from the spill file
	bufs       sync.Pool
}

func newSpillStore(sys *system.System, spillDir, graphDir string, witnesses bool) (*spillStore, error) {
	var files *graphFiles
	var err error
	if graphDir != "" {
		files, err = newDurableGraphFiles(graphDir)
	} else {
		files, err = newEphemeralGraphFiles(spillDir)
	}
	if err != nil {
		return nil, err
	}
	s := &spillStore{
		enc:       sys.AppendFingerprint,
		dec:       sys.ParseFingerprint,
		hash:      fpHash,
		buckets:   make(map[uint64][]StateID, 1024),
		predTable: predTable{keep: witnesses},
		files:     files,
		file:      files.fp,
		w:         bufio.NewWriterSize(files.fp, 64<<10),
		batch:     spillBatch,
		bufs:      sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }},
	}
	s.spillEdges.init(files.edges, s)
	s.matchB = s.matches
	return s, nil
}

func (s *spillStore) Len() int { return len(s.offs) }

// spillWriteError carries an environmental spill-file write failure (disk
// full, quota) out of Intern or SealLevel, whose StateStore signatures have
// no error return. BuildGraph recovers it at the engine boundary and returns
// it as an ordinary build error — unlike read failures, which really are
// unrecoverable corruption (the store rereads only bytes it wrote to
// unlinked files nothing else can touch) and stay panics. The failing store
// rides along so the recovery can release its descriptors: the partial
// graph is dropped, and nothing else holds a reference.
type spillWriteError struct {
	err   error
	store *spillStore
}

// recoverSpillWrite converts a spillWriteError panic into the build's error
// return (dropping the partial graph and closing the failed store's
// descriptors); every other panic value is re-raised. Deferred by
// BuildGraph, so both engines (the parallel engine interns on the
// coordinating goroutine) surface disk-full cleanly instead of crashing.
func recoverSpillWrite(g **Graph, err *error) {
	switch r := recover().(type) {
	case nil:
	case spillWriteError:
		_ = r.store.Close()
		*g, *err = nil, r.err
	default:
		panic(r)
	}
}

// readFp reads the fingerprint of a rotated vertex from the spill file into
// buf (grown as needed). The store has no way to surface I/O errors through
// the StateStore interface; a failing read of bytes the store itself wrote
// is unrecoverable corruption, so it panics with context.
func (s *spillStore) readFp(id StateID, buf []byte) []byte {
	n := int(s.lens[id])
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := s.file.ReadAt(buf, s.offs[id]); err != nil {
		panic(fmt.Sprintf("explore: spill store: read fingerprint of state %d: %v", id, err))
	}
	s.reads.Add(1)
	return buf
}

// matches verifies a candidate exactly against its stored fingerprint:
// resident candidates compare in RAM, rotated ones are read back from the
// spill file.
func (s *spillStore) matches(id StateID, fp []byte) bool {
	if int(id) >= s.pendingBase {
		return string(fp) == s.pendingFps[int(id)-s.pendingBase]
	}
	bufp := s.bufs.Get().(*[]byte)
	buf := s.readFp(id, (*bufp)[:0])
	eq := bytes.Equal(buf, fp)
	*bufp = buf
	s.bufs.Put(bufp)
	return eq
}

func (s *spillStore) Lookup(fp []byte) (StateID, bool) {
	h1, h2 := s.hash(fp)
	return lookupBucket(s.buckets, s.hash2, fp, h1, h2, s.matchB, &s.collisions)
}

func (s *spillStore) Intern(fp string, st system.State, p pred) (StateID, bool) {
	if s.readonly {
		panic("explore: spill store: Intern on a reopened read-only graph")
	}
	key := stringBytes(fp)
	h1, h2 := s.hash(key)
	if id, ok := lookupBucket(s.buckets, s.hash2, key, h1, h2, s.matchB, &s.collisions); ok {
		return id, false
	}
	id := StateID(len(s.offs))
	s.buckets[h1] = append(s.buckets[h1], id)
	s.hash2 = append(s.hash2, h2)
	if _, err := s.w.WriteString(fp); err != nil {
		panic(spillWriteError{fmt.Errorf("explore: spill store: append fingerprint of state %d: %w", id, err), s})
	}
	s.offs = append(s.offs, s.wOff)
	s.lens = append(s.lens, uint32(len(fp)))
	s.wOff += int64(len(fp))
	s.add(p)
	s.pendingFps = append(s.pendingFps, fp)
	s.pendingStates = append(s.pendingStates, st)
	if len(s.pendingFps) >= s.batch {
		s.rotate()
	}
	return id, true
}

// rotate flushes the buffered writer and empties the pending window: every
// vertex becomes disk-resident. Only called from Intern, which holds the
// store's exclusive (mutable) phase, so no reader observes a half-rotated
// window.
func (s *spillStore) rotate() {
	if err := s.w.Flush(); err != nil {
		panic(spillWriteError{fmt.Errorf("explore: spill store: flush spill file: %w", err), s})
	}
	s.pendingBase = len(s.offs)
	// Clear before truncating so the backing arrays drop their references
	// and the rotated states/fingerprints become collectable.
	clear(s.pendingFps)
	clear(s.pendingStates)
	s.pendingFps = s.pendingFps[:0]
	s.pendingStates = s.pendingStates[:0]
}

func (s *spillStore) State(id StateID) (system.State, bool) {
	if uint(id) >= uint(len(s.offs)) {
		return system.State{}, false
	}
	if int(id) >= s.pendingBase {
		return s.pendingStates[int(id)-s.pendingBase], true
	}
	st, err := s.dec(s.Fingerprint(id))
	if err != nil {
		// The bounds guard above already answered out-of-range; failing
		// to decode bytes the store itself wrote is unrecoverable
		// corruption, kept as a panic by design.
		//lint:boostvet-ignore storebounds — corruption of self-written spill bytes, not a bounds miss
		panic(fmt.Sprintf("explore: spill store: decode state %d: %v", id, err))
	}
	return st, true
}

func (s *spillStore) Fingerprint(id StateID) string {
	if uint(id) >= uint(len(s.offs)) {
		return ""
	}
	if int(id) >= s.pendingBase {
		return s.pendingFps[int(id)-s.pendingBase]
	}
	bufp := s.bufs.Get().(*[]byte)
	buf := s.readFp(id, (*bufp)[:0])
	fp := string(buf)
	*bufp = buf
	s.bufs.Put(bufp)
	return fp
}

// Close releases both spill-file descriptors (fingerprints and edges). The
// store must not be read afterwards (reads of rotated vertices or sealed
// edge blocks would panic on the closed files). Closing is optional — the
// descriptors are reclaimed by finalizers when the store is collected — but
// deterministic release matters to callers that churn through many
// spill-backed graphs: the store's whole point is a tiny heap footprint, so
// the GC may otherwise let descriptors pile up against the process's fd
// limit. Durable data files stay on disk; only the descriptors close.
func (s *spillStore) Close() error {
	return s.files.close()
}

// CloseGraphStore deterministically releases any external resources held by
// a graph's storage backend — today, the spill backend's two file
// descriptors. A no-op (nil) for the in-memory backends and for a nil
// graph, so error-path cleanup can be an unconditional defer. The graph
// must not be used afterwards.
func CloseGraphStore(g *Graph) error {
	if g == nil {
		return nil
	}
	switch s := g.store.(type) {
	case *spillStore:
		return s.Close()
	case *recheckStore:
		// A recheck graph layers an in-memory delta over the base graph's
		// store; closing it releases the base's backend resources.
		if base, ok := s.base.(*spillStore); ok {
			return base.Close()
		}
	}
	return nil
}

// SpillStats is the observability face of the spill backend.
type SpillStats struct {
	// States is the number of stored vertices.
	States int
	// Resident is how many of them are still in the pending RAM window.
	Resident int
	// SpillBytes is the total bytes appended to the fingerprint spill file,
	// including bytes still buffered ahead of the next rotation flush.
	SpillBytes int64
	// Reads counts fingerprint reads served from the spill file (candidate
	// verification, state decoding and fingerprint reconstruction).
	Reads int64
	// EdgeBytes is the total encoded size of the adjacency blocks appended
	// to the edge spill file, including blocks still pending ahead of the
	// next level seal.
	EdgeBytes int64
	// EdgeReads counts adjacency blocks read back from the edge spill file
	// (EdgesFrom calls served by pread rather than the pending buffer).
	EdgeReads int64
	// Collisions is the audited hash-collision count (see StoreCollisions).
	Collisions int64
}

// GraphSpillStats reports the spill-file statistics of a graph built with
// StoreSpill (ok == false for every other backend).
func GraphSpillStats(g *Graph) (SpillStats, bool) {
	s, ok := g.store.(*spillStore)
	if !ok {
		return SpillStats{}, false
	}
	return SpillStats{
		States:     len(s.offs),
		Resident:   len(s.pendingFps),
		SpillBytes: s.wOff,
		Reads:      s.reads.Load(),
		EdgeBytes:  s.edgeBytes(),
		EdgeReads:  s.edgeReads.Load(),
		Collisions: s.collisions.Load(),
	}, true
}
