package explore

import (
	"encoding/binary"
	"fmt"
	"iter"
	"os"
	"sync"
	"sync/atomic"

	"github.com/ioa-lab/boosting/internal/ioa"
)

// spillEdges is the adjacency face of the spill backend: an append-only
// edge file of per-vertex successor blocks, delta-varint encoded against
// two small in-RAM dictionaries (the distinct tasks and actions of the
// system — a handful each, independent of graph size). Per vertex, RAM
// keeps only the block's offset and length (12 bytes), so the edge
// relation — which outnumbers vertices 7:1 already at forward n=5 — stops
// dominating resident memory.
//
// Block format (one block per vertex, appended in ID order):
//
//	uvarint edgeCount
//	edgeCount × { uvarint taskIdx, uvarint actionIdx, varint ΔTo }
//
// ΔTo is zigzag-encoded To − prev with prev seeded to the source vertex's
// own ID and updated to each decoded To: BFS edges point at nearby IDs
// (the current or next level), so deltas are small and most edges encode
// in 3–5 bytes.
//
// Write protocol (seal-at-barrier): SetSuccs — called exactly once per
// vertex in strictly increasing ID order by both engines — appends the
// encoded block to the pending buffer. SealLevel, called at every level
// barrier while the engine holds the store exclusively, writes the pending
// buffer out at flushedOff and empties it, so a level's blocks leave RAM
// as soon as the level completes. EdgesFrom serves sealed blocks by pread
// (safe for concurrent readers of the frozen store) and still-pending
// blocks straight from the buffer.
type spillEdges struct {
	owner *spillStore // for spillWriteError, so recovery closes all files

	efile      *os.File
	eoffs      []int64  // edge-file offset of each vertex's block
	elens      []uint32 // block length in bytes
	pending    []byte   // encoded blocks since the last seal
	flushedOff int64    // bytes durably written to the edge file
	// seals records every level barrier — cumulative vertex count and
	// edge-file offset at each SealLevel. One small entry per BFS level;
	// persisted by the durable mode so a reopened graph keeps its level
	// structure.
	seals []sealMark

	// Dictionaries: tasks and actions are comparable structs drawn from a
	// small fixed set, so blocks store dense indices instead of strings.
	tasks   []ioa.Task
	taskIdx map[ioa.Task]uint32
	acts    []ioa.Action
	actIdx  map[ioa.Action]uint32

	edgeReads atomic.Int64 // blocks served by pread
	ebufs     sync.Pool
}

func (a *spillEdges) init(f *os.File, owner *spillStore) {
	a.owner = owner
	a.efile = f
	a.taskIdx = make(map[ioa.Task]uint32, 16)
	a.actIdx = make(map[ioa.Action]uint32, 16)
	a.ebufs = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}
}

func (a *spillEdges) close() error { return a.efile.Close() }

// edgeBytes is the total encoded adjacency size, sealed plus pending.
func (a *spillEdges) edgeBytes() int64 { return a.flushedOff + int64(len(a.pending)) }

// SetSuccs encodes a vertex's successor block into the pending buffer.
// The adjacency contract requires strictly increasing, gap-free IDs; both
// engines guarantee it, and the append-only offset index depends on it, so
// violations panic like slice-bounds misuse.
func (a *spillEdges) SetSuccs(id StateID, edges []Edge) {
	if int(id) != len(a.eoffs) {
		panic(fmt.Sprintf("explore: spill store: SetSuccs(%d) out of order (next unrecorded vertex is %d)", id, len(a.eoffs)))
	}
	a.eoffs = append(a.eoffs, a.flushedOff+int64(len(a.pending)))
	start := len(a.pending)
	a.pending = binary.AppendUvarint(a.pending, uint64(len(edges)))
	prev := int64(id)
	for _, e := range edges {
		ti, ok := a.taskIdx[e.Task]
		if !ok {
			ti = uint32(len(a.tasks))
			a.taskIdx[e.Task] = ti
			a.tasks = append(a.tasks, e.Task)
		}
		ai, ok := a.actIdx[e.Action]
		if !ok {
			ai = uint32(len(a.acts))
			a.actIdx[e.Action] = ai
			a.acts = append(a.acts, e.Action)
		}
		a.pending = binary.AppendUvarint(a.pending, uint64(ti))
		a.pending = binary.AppendUvarint(a.pending, uint64(ai))
		a.pending = binary.AppendVarint(a.pending, int64(e.To)-prev)
		prev = int64(e.To)
	}
	a.elens = append(a.elens, uint32(len(a.pending)-start))
}

// sealMark is one recorded level barrier: how many vertices existed and
// how far the edge file reached when the level sealed.
type sealMark struct {
	states  int
	edgeOff int64
}

// SealLevel writes the pending blocks to the edge file, empties the
// buffer and records the barrier. Called at level barriers while the
// engine holds the store exclusively, so no EdgesFrom reader observes
// the hand-off.
func (a *spillEdges) SealLevel() {
	if len(a.pending) > 0 {
		if _, err := a.efile.WriteAt(a.pending, a.flushedOff); err != nil {
			panic(spillWriteError{fmt.Errorf("explore: spill store: seal edge blocks: %w", err), a.owner})
		}
		a.flushedOff += int64(len(a.pending))
		a.pending = a.pending[:0]
	}
	a.seals = append(a.seals, sealMark{states: a.owner.Len(), edgeOff: a.flushedOff})
}

// EdgesFrom streams a vertex's successor block, decoding it from the
// pending buffer or — for sealed blocks — from a pooled pread. Total: an
// out-of-range or not-yet-recorded ID yields an empty sequence. Like the
// fingerprint reads, a failing read of bytes the store itself wrote is
// unrecoverable corruption and panics.
func (a *spillEdges) EdgesFrom(id StateID) iter.Seq[Edge] {
	return func(yield func(Edge) bool) {
		if uint(id) >= uint(len(a.eoffs)) {
			return
		}
		n := int(a.elens[id])
		var block []byte
		var bufp *[]byte
		if off := a.eoffs[id]; off >= a.flushedOff {
			block = a.pending[off-a.flushedOff : off-a.flushedOff+int64(n)]
		} else {
			bufp = a.ebufs.Get().(*[]byte)
			buf := *bufp
			if cap(buf) < n {
				buf = make([]byte, n)
			}
			buf = buf[:n]
			if _, err := a.efile.ReadAt(buf, off); err != nil {
				//lint:boostvet-ignore storebounds — failed pread of self-written bytes is corruption, not a bounds miss
				panic(fmt.Sprintf("explore: spill store: read edge block of state %d: %v", id, err))
			}
			a.edgeReads.Add(1)
			*bufp = buf
			block = buf
		}
		if bufp != nil {
			defer a.ebufs.Put(bufp)
		}
		count, k := binary.Uvarint(block)
		if k <= 0 {
			//lint:boostvet-ignore storebounds — undecodable self-written block is corruption, not a bounds miss
			panic(fmt.Sprintf("explore: spill store: corrupt edge block of state %d", id))
		}
		block = block[k:]
		prev := int64(id)
		for ; count > 0; count-- {
			ti, k1 := binary.Uvarint(block)
			ai, k2 := binary.Uvarint(block[k1:])
			d, k3 := binary.Varint(block[k1+k2:])
			if k1 <= 0 || k2 <= 0 || k3 <= 0 {
				//lint:boostvet-ignore storebounds — undecodable self-written block is corruption, not a bounds miss
				panic(fmt.Sprintf("explore: spill store: corrupt edge block of state %d", id))
			}
			block = block[k1+k2+k3:]
			to := prev + d
			prev = to
			if !yield(Edge{Task: a.tasks[ti], Action: a.acts[ai], To: StateID(to)}) {
				return
			}
		}
	}
}
