package explore

import (
	"bytes"
	"fmt"
	"iter"
	"sync"
	"sync/atomic"
	"unsafe"

	"github.com/ioa-lab/boosting/internal/intern"
	"github.com/ioa-lab/boosting/internal/system"
)

// StoreKind selects the StateStore backend used to hold the vertices of
// G(C) during exploration.
type StoreKind int

// Store backends.
const (
	// StoreDense is the default backend: every canonical fingerprint is
	// interned exactly once (intern.Table) and kept for the lifetime of the
	// graph. Exact, and Fingerprint is a free slice lookup.
	StoreDense StoreKind = iota
	// StoreHash64 keys the dedup index by a 64-bit hash of the canonical
	// fingerprint instead of the fingerprint itself (the SPIN/TLC
	// hash-compaction move). Candidate matches are verified against the
	// stored representative state, so — unlike bitstate hashing — results
	// remain exact; hash collisions are audited (counted and resolved by
	// verification) rather than silently merging distinct states.
	StoreHash64
	// StoreHash128 is StoreHash64 with a second independent 64-bit hash per
	// vertex. The wider filter makes verification misses (true collisions)
	// vanishingly rare at large state counts, at +8 bytes per vertex.
	StoreHash128
	// StoreSpill is the disk-spilling backend (TLC-style fingerprint file):
	// the dedup index keeps 16 hash bytes plus a file offset per vertex in
	// RAM, while the canonical fingerprints — which double as the serialized
	// representative states — live in an append-only spill file and are read
	// back and decoded on demand. Adjacency spills too: successor blocks are
	// delta-varint encoded into a second append-only edge file, sealed at
	// level barriers and streamed back via pread. Exact, like the hash
	// backends; the graph is identical to the dense store's, with MaxStates
	// no longer bounded by resident state or edge memory.
	StoreSpill
)

// String renders the store kind.
func (k StoreKind) String() string {
	switch k {
	case StoreDense:
		return "dense"
	case StoreHash64:
		return "hash64"
	case StoreHash128:
		return "hash128"
	case StoreSpill:
		return "spill"
	default:
		return fmt.Sprintf("store(%d)", int(k))
	}
}

// VertexStore is the vertex face of the storage seam of G(C): the dedup
// index from canonical fingerprints to dense StateIDs, the representative
// states, and the (optional) BFS-tree predecessor links.
//
// IDs are assigned densely in interning order: the i-th distinct state gets
// ID i, so a BFS that interns states in discovery order gets BFS-numbered
// vertices for free.
//
// Bounds contract: every read accessor (State, Fingerprint, Pred) is total —
// an out-of-range ID yields the zero value (ok == false where the signature
// has an ok), never a panic, on every backend.
type VertexStore interface {
	// Len returns the number of stored vertices; valid IDs are 0 … Len()−1.
	Len() int
	// Lookup resolves a canonical fingerprint to its vertex, if stored. It
	// is the single lookup entry point: callers holding a string key pass it
	// through stringBytes without copying.
	Lookup(fp []byte) (StateID, bool)
	// Intern stores a vertex under its canonical fingerprint, assigning the
	// next dense ID if the fingerprint is new; fresh reports a new
	// assignment (the predecessor link is recorded only then, and only on
	// stores built with witnesses). The store takes ownership of fp —
	// callers hand over their one owned copy, so backends that retain the
	// encoding (dense) do not copy again.
	Intern(fp string, st system.State, p pred) (id StateID, fresh bool)
	// State returns the representative state of a vertex.
	State(id StateID) (system.State, bool)
	// Fingerprint returns the canonical string encoding of a vertex
	// ("" for out-of-range IDs — canonical encodings are never empty).
	Fingerprint(id StateID) string
	// Pred returns the BFS-tree predecessor link of a vertex (has == false
	// for roots, for out-of-range IDs, and always on stores built without
	// witnesses).
	Pred(id StateID) pred
}

// AdjacencyStore is the adjacency face of the storage seam: edges are handed
// to the store as they are discovered and read back as an iterator, so
// backends choose their own representation — slices in RAM (dense, hash) or
// delta-varint blocks in an append-only edge file (spill).
//
// Write contract: SetSuccs is called exactly once per vertex, in strictly
// increasing ID order — both exploration engines expand vertices in ID order
// (the serial engine trivially, the parallel engine at its level barriers) —
// and panics on out-of-order or never-interned IDs. SealLevel marks a level
// barrier: every edge handed over so far may be moved out of RAM (the spill
// backend flushes its pending blocks to the edge file). Engines call it
// after each completed BFS level, while they hold the store exclusively.
//
// Read contract: EdgesFrom is total (an out-of-range or not-yet-recorded ID
// yields an empty sequence) and, like the vertex accessors, safe for any
// number of concurrent readers as long as no SetSuccs/SealLevel/Intern call
// overlaps them. The yielded edges are exactly the SetSuccs slice, in order;
// breaking out of the iteration early is allowed and cheap.
type AdjacencyStore interface {
	// SetSuccs records the outgoing edges of a vertex (nil for a sink).
	SetSuccs(id StateID, edges []Edge)
	// EdgesFrom streams the outgoing edges of a vertex in recorded order.
	EdgesFrom(id StateID) iter.Seq[Edge]
	// SealLevel marks a level barrier: edges recorded so far become
	// immutable and may leave RAM. A no-op on in-memory backends.
	SealLevel()
}

// StateStore is the storage seam of G(C): the vertex face plus the adjacency
// face. Graph and both exploration engines talk to storage only through this
// interface, so backends can trade memory for lookup cost (dense interned
// strings vs hash compaction) or spill vertices and edges to disk.
//
// Concurrency contract (inherited from intern.Table): any number of
// goroutines may call the read accessors concurrently as long as no
// Intern/SetSuccs/SealLevel call overlaps them. The level-synchronous
// parallel engine satisfies this by freezing the store while a frontier
// level expands and mutating it only at the level barrier.
//
// All bundled implementations live in this package; the interface
// deliberately uses the unexported pred type, so external implementations go
// through their own StoreKind here.
type StateStore interface {
	VertexStore
	AdjacencyStore
}

// stringBytes reinterprets a string as a read-only byte slice without
// copying, so string-keyed callers reach the single Lookup entry point with
// zero allocations. The returned slice must not be written to or retained
// past the call it is passed to.
func stringBytes(s string) []byte {
	return unsafe.Slice(unsafe.StringData(s), len(s))
}

// newStore builds the backend for a kind. Hash backends re-encode stored
// states (via the system's canonical fingerprint appender) when verifying
// candidate matches; the spill backend additionally decodes states back out
// of their spilled fingerprints, and spillDir overrides where its spill
// files are created ("" = the OS temp directory). graphDir, when non-empty,
// puts the spill backend in durable mode: the files are created under that
// named directory instead of as unlinked temp files (see graphfiles.go).
// witnesses toggles the BFS-tree predecessor links: stores built without
// them record nothing in Intern and report pred{} from Pred.
func newStore(kind StoreKind, sys *system.System, spillDir, graphDir string, witnesses bool) (StateStore, error) {
	switch kind {
	case StoreHash64:
		return newHashStore(sys.AppendFingerprint, false, witnesses), nil
	case StoreHash128:
		return newHashStore(sys.AppendFingerprint, true, witnesses), nil
	case StoreSpill:
		return newSpillStore(sys, spillDir, graphDir, witnesses)
	default:
		return newDenseStore(witnesses), nil
	}
}

// sliceAdjacency is the in-memory adjacency face shared by the dense and
// hash-compaction backends: one edge slice per vertex, grown at intern time.
type sliceAdjacency struct {
	succs [][]Edge
}

func (a *sliceAdjacency) grow() { a.succs = append(a.succs, nil) }

func (a *sliceAdjacency) SetSuccs(id StateID, edges []Edge) { a.succs[id] = edges }

func (a *sliceAdjacency) EdgesFrom(id StateID) iter.Seq[Edge] {
	return func(yield func(Edge) bool) {
		if uint(id) >= uint(len(a.succs)) {
			return
		}
		for _, e := range a.succs[id] {
			if !yield(e) {
				return
			}
		}
	}
}

func (a *sliceAdjacency) SealLevel() {}

// edgeSlice is the materialized fast path behind Graph.Succs: in-memory
// backends hand out their slice directly instead of rebuilding it from the
// iterator.
func (a *sliceAdjacency) edgeSlice(id StateID) []Edge {
	if uint(id) >= uint(len(a.succs)) {
		return nil
	}
	return a.succs[id]
}

// edgeSlices is implemented by backends whose adjacency already lives in
// slices; Graph.Succs uses it to avoid re-materializing.
type edgeSlices interface {
	edgeSlice(id StateID) []Edge
}

// predTable holds the optional BFS-tree predecessor links of a backend: with
// keep == false (WithoutWitnesses) nothing is recorded and every Pred read
// is the zero link.
type predTable struct {
	keep bool
	list []pred
}

func (p *predTable) add(pr pred) {
	if p.keep {
		p.list = append(p.list, pr)
	}
}

func (p *predTable) Pred(id StateID) pred {
	if uint(id) >= uint(len(p.list)) {
		return pred{}
	}
	return p.list[id]
}

// denseStore is the interned-string backend: the intern.Table maps each
// canonical fingerprint (kept once, in full) to its dense ID, and states,
// adjacency and predecessor links are slices indexed by that ID.
type denseStore struct {
	sliceAdjacency
	predTable
	tab    *intern.Table
	states []system.State
}

func newDenseStore(witnesses bool) *denseStore {
	return &denseStore{tab: intern.NewTable(1024), predTable: predTable{keep: witnesses}}
}

func (s *denseStore) Len() int { return s.tab.Len() }

func (s *denseStore) Lookup(fp []byte) (StateID, bool) { return s.tab.LookupBytes(fp) }

func (s *denseStore) Intern(fp string, st system.State, p pred) (StateID, bool) {
	id, fresh := s.tab.Intern(fp)
	if fresh {
		s.states = append(s.states, st)
		s.grow()
		s.add(p)
	}
	return id, fresh
}

func (s *denseStore) State(id StateID) (system.State, bool) {
	if uint(id) >= uint(len(s.states)) {
		return system.State{}, false
	}
	return s.states[id], true
}

func (s *denseStore) Fingerprint(id StateID) string {
	if uint(id) >= uint(s.tab.Len()) {
		return ""
	}
	return s.tab.Key(id)
}

// fpHash returns two independent 64-bit FNV-1a–style hashes of a canonical
// fingerprint, computed in one pass. Deterministic across runs (unlike
// maphash), so collision counts are reproducible. String keys reach it
// zero-copy through stringBytes.
func fpHash(fp []byte) (h1, h2 uint64) {
	const (
		offset1 = 14695981039346656037 // FNV-1a offset basis
		prime1  = 1099511628211        // FNV-1a prime
		offset2 = 0x9e3779b97f4a7c15   // golden-ratio offset for the second stream
		prime2  = 0x100000001b5        // shifted FNV prime
	)
	h1, h2 = offset1, offset2
	for i := 0; i < len(fp); i++ {
		h1 = (h1 ^ uint64(fp[i])) * prime1
		h2 = (h2 ^ uint64(fp[i])) * prime2
	}
	// Finalize the second stream so it is not a linear shadow of the first.
	h2 ^= h2 >> 29
	h2 *= 0xbf58476d1ce4e5b9
	h2 ^= h2 >> 32
	return h1, h2
}

// lookupBucket scans the candidates interned under h1 for an exact match:
// wide backends (hash2 non-nil) pre-filter on the second hash, then each
// surviving candidate is verified byte-for-byte by the backend's matcher;
// candidates the verification refutes are audited in collisions. This is
// the one probe loop shared by the hash-compaction and spill backends.
// Matchers are passed as struct-field funcs bound at construction, so
// probing allocates nothing.
func lookupBucket(buckets map[uint64][]StateID, hash2 []uint64,
	fp []byte, h1, h2 uint64, matches func(StateID, []byte) bool, collisions *atomic.Int64) (StateID, bool) {
	for _, id := range buckets[h1] {
		if hash2 != nil && hash2[id] != h2 {
			continue
		}
		if matches(id, fp) {
			return id, true
		}
		collisions.Add(1)
	}
	return 0, false
}

// hashStore is the hash-compaction backend: the dedup index is keyed by a
// 64-bit fingerprint hash (optionally filtered by a second 64-bit hash),
// and the canonical string itself is never stored — per vertex it keeps
// only the representative state, adjacency, predecessor link and 8–16 hash
// bytes. Candidate matches are verified exactly by re-encoding the stored
// representative state, so distinct states that collide in the hash are
// kept apart (and counted), never merged: the produced graph is identical
// to the dense backend's.
type hashStore struct {
	sliceAdjacency
	predTable
	enc  func([]byte, system.State) []byte
	wide bool
	// hash is fpHash, replaceable in tests to force collisions and exercise
	// the verification path.
	hash func([]byte) (uint64, uint64)
	// matchB is the matches method bound once at construction, so
	// lookupBucket calls allocate no closures.
	matchB  func(StateID, []byte) bool
	buckets map[uint64][]StateID
	hash2   []uint64 // second hash per vertex (wide only)
	states  []system.State
	// collisions counts verification misses: bucket candidates whose
	// fingerprint turned out to differ (atomic — Lookup runs concurrently
	// during frozen-store frontier expansion).
	collisions atomic.Int64
	bufs       sync.Pool
}

func newHashStore(enc func([]byte, system.State) []byte, wide, witnesses bool) *hashStore {
	s := &hashStore{
		enc:       enc,
		wide:      wide,
		hash:      fpHash,
		buckets:   make(map[uint64][]StateID, 1024),
		predTable: predTable{keep: witnesses},
		bufs:      sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }},
	}
	s.matchB = s.matches
	return s
}

func (s *hashStore) Len() int { return len(s.states) }

// matches verifies a candidate exactly: the stored representative state is
// re-encoded and compared byte-for-byte against the probe fingerprint.
func (s *hashStore) matches(id StateID, fp []byte) bool {
	bufp := s.bufs.Get().(*[]byte)
	buf := s.enc((*bufp)[:0], s.states[id])
	eq := bytes.Equal(buf, fp)
	*bufp = buf
	s.bufs.Put(bufp)
	return eq
}

func (s *hashStore) Lookup(fp []byte) (StateID, bool) {
	h1, h2 := s.hash(fp)
	return lookupBucket(s.buckets, s.hash2, fp, h1, h2, s.matchB, &s.collisions)
}

func (s *hashStore) Intern(fp string, st system.State, p pred) (StateID, bool) {
	key := stringBytes(fp)
	h1, h2 := s.hash(key)
	if id, ok := lookupBucket(s.buckets, s.hash2, key, h1, h2, s.matchB, &s.collisions); ok {
		return id, false
	}
	id := StateID(len(s.states))
	s.buckets[h1] = append(s.buckets[h1], id)
	if s.wide {
		s.hash2 = append(s.hash2, h2)
	}
	s.states = append(s.states, st)
	s.grow()
	s.add(p)
	return id, true
}

func (s *hashStore) State(id StateID) (system.State, bool) {
	if uint(id) >= uint(len(s.states)) {
		return system.State{}, false
	}
	return s.states[id], true
}

// Fingerprint re-encodes the representative state: hash compaction does not
// keep canonical strings, it reconstructs them on demand. The encoding goes
// through the pooled buffers, so the only allocation is the returned string.
func (s *hashStore) Fingerprint(id StateID) string {
	if uint(id) >= uint(len(s.states)) {
		return ""
	}
	bufp := s.bufs.Get().(*[]byte)
	buf := s.enc((*bufp)[:0], s.states[id])
	fp := string(buf)
	*bufp = buf
	s.bufs.Put(bufp)
	return fp
}

// Collisions reports how many hash collisions (distinct canonical
// fingerprints sharing a bucket) verification resolved — the collision
// audit of the compaction scheme. Zero on the dense backend by
// construction.
func (s *hashStore) Collisions() int { return int(s.collisions.Load()) }

// releaseDedup drops a store's dedup index — the fingerprint→ID map or
// hash buckets — keeping every read-by-ID accessor (State, Fingerprint,
// EdgesFrom) working. Lookup misses and Intern must not be called
// afterwards. The sharded engine calls it on its shard stores once
// discovery is over, so rebuilding the final store never holds two live
// dedup indices.
func releaseDedup(s StateStore) {
	switch s := s.(type) {
	case *denseStore:
		s.tab.DropIndex()
	case *hashStore:
		s.buckets, s.hash2 = nil, nil
	case *spillStore:
		s.buckets, s.hash2 = nil, nil
	}
}

// StoreCollisions reports the audited hash-collision count of a graph's
// backend (0 for backends that do not hash).
func StoreCollisions(g *Graph) int {
	switch s := g.store.(type) {
	case *hashStore:
		return s.Collisions()
	case *spillStore:
		return int(s.collisions.Load())
	}
	return 0
}
