package explore

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/ioa-lab/boosting/internal/intern"
	"github.com/ioa-lab/boosting/internal/system"
)

// StoreKind selects the StateStore backend used to hold the vertices of
// G(C) during exploration.
type StoreKind int

// Store backends.
const (
	// StoreDense is the default backend: every canonical fingerprint is
	// interned exactly once (intern.Table) and kept for the lifetime of the
	// graph. Exact, and Fingerprint is a free slice lookup.
	StoreDense StoreKind = iota
	// StoreHash64 keys the dedup index by a 64-bit hash of the canonical
	// fingerprint instead of the fingerprint itself (the SPIN/TLC
	// hash-compaction move). Candidate matches are verified against the
	// stored representative state, so — unlike bitstate hashing — results
	// remain exact; hash collisions are audited (counted and resolved by
	// verification) rather than silently merging distinct states.
	StoreHash64
	// StoreHash128 is StoreHash64 with a second independent 64-bit hash per
	// vertex. The wider filter makes verification misses (true collisions)
	// vanishingly rare at large state counts, at +8 bytes per vertex.
	StoreHash128
	// StoreSpill is the disk-spilling backend (TLC-style fingerprint file):
	// the dedup index keeps 16 hash bytes plus a file offset per vertex in
	// RAM, while the canonical fingerprints — which double as the serialized
	// representative states — live in an append-only spill file and are read
	// back and decoded on demand. Exact, like the hash backends; the graph
	// is identical to the dense store's, with MaxStates no longer bounded by
	// resident state memory.
	StoreSpill
)

// String renders the store kind.
func (k StoreKind) String() string {
	switch k {
	case StoreDense:
		return "dense"
	case StoreHash64:
		return "hash64"
	case StoreHash128:
		return "hash128"
	case StoreSpill:
		return "spill"
	default:
		return fmt.Sprintf("store(%d)", int(k))
	}
}

// StateStore is the storage seam of G(C): it owns the vertex set — the
// dedup index from canonical fingerprints to dense StateIDs, the
// representative states, the adjacency, and the BFS-tree predecessor links.
// Graph and both exploration engines talk to storage only through this
// interface, so backends can trade memory for lookup cost (dense interned
// strings vs hash compaction) or, later, spill to disk.
//
// Concurrency contract (inherited from intern.Table): any number of
// goroutines may call Lookup/State/Succs/Fingerprint/Len concurrently as
// long as no Intern/SetSuccs call overlaps them. The level-synchronous
// parallel engine satisfies this by freezing the store while a frontier
// level expands and mutating it only at the level barrier.
//
// IDs are assigned densely in interning order: the i-th distinct state gets
// ID i, so a BFS that interns states in discovery order gets BFS-numbered
// vertices for free. All bundled implementations live in this package; the
// interface deliberately uses the unexported pred type, so external
// implementations go through their own StoreKind here.
//
// Bounds contract: every read accessor (State, Fingerprint, Succs, Pred) is
// total — an out-of-range ID yields the zero value (ok == false where the
// signature has an ok), never a panic, on every backend. SetSuccs is the one
// exception: it is a write API whose callers own ID assignment, and it
// panics on IDs that were never interned, mirroring slice indexing.
type StateStore interface {
	// Len returns the number of stored vertices; valid IDs are 0 … Len()−1.
	Len() int
	// Lookup resolves a canonical fingerprint to its vertex, if stored.
	Lookup(fp []byte) (StateID, bool)
	// LookupString is Lookup for an already-owned string key.
	LookupString(fp string) (StateID, bool)
	// Intern stores a vertex under its canonical fingerprint, assigning the
	// next dense ID if the fingerprint is new; fresh reports a new
	// assignment (the predecessor link is recorded only then). The store
	// takes ownership of fp — callers hand over their one owned copy, so
	// backends that retain the encoding (dense) do not copy again.
	Intern(fp string, st system.State, p pred) (id StateID, fresh bool)
	// State returns the representative state of a vertex.
	State(id StateID) (system.State, bool)
	// Fingerprint returns the canonical string encoding of a vertex
	// ("" for out-of-range IDs — canonical encodings are never empty).
	Fingerprint(id StateID) string
	// Succs returns the outgoing edges of a vertex.
	Succs(id StateID) []Edge
	// SetSuccs records the outgoing edges of a vertex.
	SetSuccs(id StateID, edges []Edge)
	// Pred returns the BFS-tree predecessor link of a vertex (has == false
	// for roots and for out-of-range IDs).
	Pred(id StateID) pred
}

// newStore builds the backend for a kind. Hash backends re-encode stored
// states (via the system's canonical fingerprint appender) when verifying
// candidate matches; the spill backend additionally decodes states back out
// of their spilled fingerprints, and spillDir overrides where its spill
// file is created ("" = the OS temp directory).
func newStore(kind StoreKind, sys *system.System, spillDir string) (StateStore, error) {
	switch kind {
	case StoreHash64:
		return newHashStore(sys.AppendFingerprint, false), nil
	case StoreHash128:
		return newHashStore(sys.AppendFingerprint, true), nil
	case StoreSpill:
		return newSpillStore(sys, spillDir)
	default:
		return newDenseStore(), nil
	}
}

// denseStore is the interned-string backend: the intern.Table maps each
// canonical fingerprint (kept once, in full) to its dense ID, and states,
// adjacency and predecessor links are slices indexed by that ID.
type denseStore struct {
	tab    *intern.Table
	states []system.State
	succs  [][]Edge
	preds  []pred
}

func newDenseStore() *denseStore {
	return &denseStore{tab: intern.NewTable(1024)}
}

func (s *denseStore) Len() int { return s.tab.Len() }

func (s *denseStore) Lookup(fp []byte) (StateID, bool) { return s.tab.LookupBytes(fp) }

func (s *denseStore) LookupString(fp string) (StateID, bool) { return s.tab.Lookup(fp) }

func (s *denseStore) Intern(fp string, st system.State, p pred) (StateID, bool) {
	id, fresh := s.tab.Intern(fp)
	if fresh {
		s.states = append(s.states, st)
		s.succs = append(s.succs, nil)
		s.preds = append(s.preds, p)
	}
	return id, fresh
}

func (s *denseStore) State(id StateID) (system.State, bool) {
	if uint(id) >= uint(len(s.states)) {
		return system.State{}, false
	}
	return s.states[id], true
}

func (s *denseStore) Fingerprint(id StateID) string {
	if uint(id) >= uint(s.tab.Len()) {
		return ""
	}
	return s.tab.Key(id)
}

func (s *denseStore) Succs(id StateID) []Edge {
	if uint(id) >= uint(len(s.succs)) {
		return nil
	}
	return s.succs[id]
}

func (s *denseStore) SetSuccs(id StateID, edges []Edge) { s.succs[id] = edges }

func (s *denseStore) Pred(id StateID) pred {
	if uint(id) >= uint(len(s.preds)) {
		return pred{}
	}
	return s.preds[id]
}

// fpHash returns two independent 64-bit FNV-1a–style hashes of a canonical
// fingerprint, computed in one pass. Deterministic across runs (unlike
// maphash), so collision counts are reproducible. Generic over the two key
// forms so neither call path converts (and copies) its key.
func fpHash[T ~string | ~[]byte](fp T) (h1, h2 uint64) {
	const (
		offset1 = 14695981039346656037 // FNV-1a offset basis
		prime1  = 1099511628211        // FNV-1a prime
		offset2 = 0x9e3779b97f4a7c15   // golden-ratio offset for the second stream
		prime2  = 0x100000001b5        // shifted FNV prime
	)
	h1, h2 = offset1, offset2
	for i := 0; i < len(fp); i++ {
		h1 = (h1 ^ uint64(fp[i])) * prime1
		h2 = (h2 ^ uint64(fp[i])) * prime2
	}
	// Finalize the second stream so it is not a linear shadow of the first.
	h2 ^= h2 >> 29
	h2 *= 0xbf58476d1ce4e5b9
	h2 ^= h2 >> 32
	return h1, h2
}

// lookupBucket scans the candidates interned under h1 for an exact match:
// wide backends (hash2 non-nil) pre-filter on the second hash, then each
// surviving candidate is verified byte-for-byte by the backend's matcher;
// candidates the verification refutes are audited in collisions. This is
// the one probe loop shared by the hash-compaction and spill backends,
// generic over the two probe key forms so neither call path converts (and
// copies) its key. Matchers are passed as struct-field funcs bound at
// construction, so probing allocates nothing.
func lookupBucket[T ~string | ~[]byte](buckets map[uint64][]StateID, hash2 []uint64,
	fp T, h1, h2 uint64, matches func(StateID, T) bool, collisions *atomic.Int64) (StateID, bool) {
	for _, id := range buckets[h1] {
		if hash2 != nil && hash2[id] != h2 {
			continue
		}
		if matches(id, fp) {
			return id, true
		}
		collisions.Add(1)
	}
	return 0, false
}

// hashStore is the hash-compaction backend: the dedup index is keyed by a
// 64-bit fingerprint hash (optionally filtered by a second 64-bit hash),
// and the canonical string itself is never stored — per vertex it keeps
// only the representative state, adjacency, predecessor link and 8–16 hash
// bytes. Candidate matches are verified exactly by re-encoding the stored
// representative state, so distinct states that collide in the hash are
// kept apart (and counted), never merged: the produced graph is identical
// to the dense backend's.
type hashStore struct {
	enc  func([]byte, system.State) []byte
	wide bool
	// hash/hashS are fpHash's two instantiations, replaceable (together)
	// in tests to force collisions and exercise the verification path.
	hash  func([]byte) (uint64, uint64)
	hashS func(string) (uint64, uint64)
	// matchB/matchS are the matches/matchesString methods bound once at
	// construction, so lookupBucket calls allocate no closures.
	matchB  func(StateID, []byte) bool
	matchS  func(StateID, string) bool
	buckets map[uint64][]StateID
	hash2   []uint64 // second hash per vertex (wide only)
	states  []system.State
	succs   [][]Edge
	preds   []pred
	// collisions counts verification misses: bucket candidates whose
	// fingerprint turned out to differ (atomic — Lookup runs concurrently
	// during frozen-store frontier expansion).
	collisions atomic.Int64
	bufs       sync.Pool
}

func newHashStore(enc func([]byte, system.State) []byte, wide bool) *hashStore {
	s := &hashStore{
		enc:     enc,
		wide:    wide,
		hash:    fpHash[[]byte],
		hashS:   fpHash[string],
		buckets: make(map[uint64][]StateID, 1024),
		bufs:    sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }},
	}
	s.matchB = s.matches
	s.matchS = s.matchesString
	return s
}

func (s *hashStore) Len() int { return len(s.states) }

// matches verifies a candidate exactly: the stored representative state is
// re-encoded and compared byte-for-byte against the probe fingerprint.
func (s *hashStore) matches(id StateID, fp []byte) bool {
	bufp := s.bufs.Get().(*[]byte)
	buf := s.enc((*bufp)[:0], s.states[id])
	eq := bytes.Equal(buf, fp)
	*bufp = buf
	s.bufs.Put(bufp)
	return eq
}

// matchesString is matches for a string probe; the byte-slice → string
// conversion inside the comparison does not allocate.
func (s *hashStore) matchesString(id StateID, fp string) bool {
	bufp := s.bufs.Get().(*[]byte)
	buf := s.enc((*bufp)[:0], s.states[id])
	eq := string(buf) == fp
	*bufp = buf
	s.bufs.Put(bufp)
	return eq
}

func (s *hashStore) Lookup(fp []byte) (StateID, bool) {
	h1, h2 := s.hash(fp)
	return lookupBucket(s.buckets, s.hash2, fp, h1, h2, s.matchB, &s.collisions)
}

func (s *hashStore) LookupString(fp string) (StateID, bool) {
	h1, h2 := s.hashS(fp)
	return lookupBucket(s.buckets, s.hash2, fp, h1, h2, s.matchS, &s.collisions)
}

func (s *hashStore) Intern(fp string, st system.State, p pred) (StateID, bool) {
	h1, h2 := s.hashS(fp)
	if id, ok := lookupBucket(s.buckets, s.hash2, fp, h1, h2, s.matchS, &s.collisions); ok {
		return id, false
	}
	id := StateID(len(s.states))
	s.buckets[h1] = append(s.buckets[h1], id)
	if s.wide {
		s.hash2 = append(s.hash2, h2)
	}
	s.states = append(s.states, st)
	s.succs = append(s.succs, nil)
	s.preds = append(s.preds, p)
	return id, true
}

func (s *hashStore) State(id StateID) (system.State, bool) {
	if uint(id) >= uint(len(s.states)) {
		return system.State{}, false
	}
	return s.states[id], true
}

// Fingerprint re-encodes the representative state: hash compaction does not
// keep canonical strings, it reconstructs them on demand. The encoding goes
// through the pooled buffers, so the only allocation is the returned string.
func (s *hashStore) Fingerprint(id StateID) string {
	if uint(id) >= uint(len(s.states)) {
		return ""
	}
	bufp := s.bufs.Get().(*[]byte)
	buf := s.enc((*bufp)[:0], s.states[id])
	fp := string(buf)
	*bufp = buf
	s.bufs.Put(bufp)
	return fp
}

func (s *hashStore) Succs(id StateID) []Edge {
	if uint(id) >= uint(len(s.succs)) {
		return nil
	}
	return s.succs[id]
}

func (s *hashStore) SetSuccs(id StateID, edges []Edge) { s.succs[id] = edges }

func (s *hashStore) Pred(id StateID) pred {
	if uint(id) >= uint(len(s.preds)) {
		return pred{}
	}
	return s.preds[id]
}

// Collisions reports how many hash collisions (distinct canonical
// fingerprints sharing a bucket) verification resolved — the collision
// audit of the compaction scheme. Zero on the dense backend by
// construction.
func (s *hashStore) Collisions() int { return int(s.collisions.Load()) }

// StoreCollisions reports the audited hash-collision count of a graph's
// backend (0 for backends that do not hash).
func StoreCollisions(g *Graph) int {
	switch s := g.store.(type) {
	case *hashStore:
		return s.Collisions()
	case *spillStore:
		return int(s.collisions.Load())
	}
	return 0
}
