//go:build race

package explore_test

// raceEnabled reports that this binary was built with the race detector,
// whose instrumentation overhead invalidates wall-clock speedup
// measurements.
const raceEnabled = true
