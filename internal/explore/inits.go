package explore

import (
	"fmt"
	"strings"

	"github.com/ioa-lab/boosting/internal/system"
)

// InitClassification reports the Lemma 4 analysis: the n+1 monotone
// initializations α_0 … α_n (in α_i, processes P_1 … P_i receive 1 and the
// rest receive 0), their valences, and the index of a bivalent one if any.
type InitClassification struct {
	// Assignments[i] is the input map of α_i.
	Assignments []map[int]string
	// Roots[i] is the vertex of the state after α_i.
	Roots []StateID
	// Valences[i] is the valence of α_i.
	Valences []Valence
	// BivalentIndex is the first i with bivalent α_i, or -1.
	BivalentIndex int
	// Graph is the shared failure-free graph from all roots.
	Graph *Graph
}

// Close releases the classification's graph (the spill backend holds two
// file descriptors per open graph). Nil-tolerant on the receiver and the
// graph, so `defer c.Close()` is safe straight after the error check.
func (c *InitClassification) Close() error {
	if c == nil {
		return nil
	}
	return CloseGraphStore(c.Graph)
}

// MonotoneAssignment returns the input assignment of α_i: the first i
// processes (in id order) receive "1", the rest "0".
func MonotoneAssignment(sys *system.System, i int) map[int]string {
	out := map[int]string{}
	for idx, id := range sys.ProcessIDs() {
		if idx < i {
			out[id] = "1"
		} else {
			out[id] = "0"
		}
	}
	return out
}

// ApplyInputs delivers an input assignment to a fresh initial state (an
// initialization in the paper's sense: exactly one init per process, no
// other actions), yielding the root the input-first executions grow from.
func ApplyInputs(sys *system.System, inputs map[int]string) (system.State, error) {
	return applyInputs(sys, inputs)
}

// applyInputs delivers an input assignment to a fresh initial state
// (an initialization in the paper's sense: exactly one init per process,
// no other actions).
func applyInputs(sys *system.System, inputs map[int]string) (system.State, error) {
	st := sys.InitialState()
	for _, i := range sortedInputKeys(inputs) {
		next, _, err := sys.Init(st, i, inputs[i])
		if err != nil {
			return system.State{}, err
		}
		st = next
	}
	return st, nil
}

// ClassifyInits performs the Lemma 4 sweep over the monotone
// initializations and classifies each by valence.
func ClassifyInits(sys *system.System, opt BuildOptions) (*InitClassification, error) {
	n := len(sys.ProcessIDs())
	out := &InitClassification{BivalentIndex: -1}
	var roots []system.State
	for i := 0; i <= n; i++ {
		inputs := MonotoneAssignment(sys, i)
		st, err := applyInputs(sys, inputs)
		if err != nil {
			return nil, err
		}
		out.Assignments = append(out.Assignments, inputs)
		roots = append(roots, st)
	}
	g, err := BuildOrReopenGraph(sys, roots, opt)
	if err != nil {
		return nil, err
	}
	out.Graph = g
	out.Roots = g.Roots()
	for i, id := range out.Roots {
		v := g.Valence(id)
		out.Valences = append(out.Valences, v)
		if v == Bivalent && out.BivalentIndex < 0 {
			out.BivalentIndex = i
		}
	}
	return out, nil
}

// String renders the classification as a small table.
func (c *InitClassification) String() string {
	var b strings.Builder
	for i, v := range c.Valences {
		fmt.Fprintf(&b, "α_%d (%s): %s\n", i, fmtAssignment(c.Assignments[i]), v)
	}
	if c.BivalentIndex >= 0 {
		fmt.Fprintf(&b, "bivalent initialization: α_%d\n", c.BivalentIndex)
	} else {
		b.WriteString("no bivalent initialization\n")
	}
	return b.String()
}

// AllAssignments enumerates every input assignment in {0,1}^n (used by the
// exhaustive safety sweep; n is small in exploration systems).
func AllAssignments(sys *system.System) []map[int]string {
	ids := sys.ProcessIDs()
	n := len(ids)
	out := make([]map[int]string, 0, 1<<n)
	for bits := 0; bits < 1<<n; bits++ {
		m := make(map[int]string, n)
		for idx, id := range ids {
			if bits&(1<<idx) != 0 {
				m[id] = "1"
			} else {
				m[id] = "0"
			}
		}
		out = append(out, m)
	}
	return out
}
