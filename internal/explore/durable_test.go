package explore_test

// Durable graph store acceptance suite: a graph built with
// BuildOptions.GraphDir and reopened with OpenGraph must be per-ID and
// per-edge IDENTICAL to the freshly built graph — same StateIDs,
// fingerprints, edges, valences, roots and witness links — across
// ±symmetry and ±witnesses; every way a committed directory can be
// damaged or mismatched must surface as a typed *ManifestError.

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/ioa-lab/boosting/internal/explore"
	"github.com/ioa-lab/boosting/internal/service"
	"github.com/ioa-lab/boosting/internal/system"
)

// monotoneRoots builds the α_0 … α_n monotone input roots ClassifyInits
// explores from.
func monotoneRoots(t testing.TB, sys *system.System) []system.State {
	t.Helper()
	n := len(sys.ProcessIDs())
	roots := make([]system.State, 0, n+1)
	for i := 0; i <= n; i++ {
		st, err := explore.ApplyInputs(sys, explore.MonotoneAssignment(sys, i))
		if err != nil {
			t.Fatal(err)
		}
		roots = append(roots, st)
	}
	return roots
}

// requireIdentical asserts got is the same graph as ref, per ID and per
// edge: sizes, roots, fingerprints, successor sequences and valences.
func requireIdentical(t *testing.T, ref, got *explore.Graph, witnesses bool) {
	t.Helper()
	if got.Size() != ref.Size() || got.Edges() != ref.Edges() {
		t.Fatalf("size/edges: got %d/%d, want %d/%d", got.Size(), got.Edges(), ref.Size(), ref.Edges())
	}
	refRoots, gotRoots := ref.Roots(), got.Roots()
	if len(refRoots) != len(gotRoots) {
		t.Fatalf("roots: got %v, want %v", gotRoots, refRoots)
	}
	for i := range refRoots {
		if refRoots[i] != gotRoots[i] {
			t.Fatalf("root %d: got %d, want %d", i, gotRoots[i], refRoots[i])
		}
	}
	for id := 0; id < ref.Size(); id++ {
		sid := explore.StateID(id)
		if rf, gf := ref.Fingerprint(sid), got.Fingerprint(sid); rf != gf {
			t.Fatalf("state %d: fingerprint %q != %q", id, gf, rf)
		}
		re, ge := ref.Succs(sid), got.Succs(sid)
		if len(re) != len(ge) {
			t.Fatalf("state %d: %d succs, want %d", id, len(ge), len(re))
		}
		for j := range re {
			if re[j] != ge[j] {
				t.Fatalf("state %d edge %d: got %+v, want %+v", id, j, ge[j], re[j])
			}
		}
		if rv, gv := ref.Valence(sid), got.Valence(sid); rv != gv {
			t.Fatalf("state %d: valence %v, want %v", id, gv, rv)
		}
		if witnesses {
			rp, gp := ref.WitnessPath(sid), got.WitnessPath(sid)
			if len(rp) != len(gp) {
				t.Fatalf("state %d: witness path length %d, want %d", id, len(gp), len(rp))
			}
			for j := range rp {
				if rp[j] != gp[j] {
					t.Fatalf("state %d witness edge %d: got %+v, want %+v", id, j, gp[j], rp[j])
				}
			}
		}
	}
}

// TestDurableReopenParity is the tentpole acceptance test of the durable
// store: for ±symmetry × ±witnesses, the durable spill build equals the
// dense reference build, and the graph reopened from the committed
// directory equals both — without exploring a state.
func TestDurableReopenParity(t *testing.T) {
	sys := mustForward(t, 3, 1, service.Adversarial)
	roots := monotoneRoots(t, sys)
	for _, canon := range []explore.Canonicalizer{nil, forwardCanon(t, sys, 3)} {
		for _, noWit := range []bool{false, true} {
			label := "plain"
			if canon != nil {
				label = "symmetry"
			}
			if noWit {
				label += "-nowitness"
			}
			t.Run(label, func(t *testing.T) {
				ref, err := explore.BuildGraph(sys, roots, explore.BuildOptions{
					Workers: 1, Symmetry: canon, NoWitnesses: noWit})
				if err != nil {
					t.Fatal(err)
				}
				defer explore.CloseGraphStore(ref)

				dir := t.TempDir()
				id := []byte("test-graph-id-" + label)
				built, err := explore.BuildGraph(sys, roots, explore.BuildOptions{
					Workers: 1, Store: explore.StoreSpill, Symmetry: canon,
					NoWitnesses: noWit, GraphDir: dir, GraphID: id})
				if err != nil {
					t.Fatal(err)
				}
				requireIdentical(t, ref, built, !noWit)
				if err := explore.CloseGraphStore(built); err != nil {
					t.Fatal(err)
				}

				reopened, err := explore.OpenGraph(sys, dir, explore.OpenOptions{GraphID: id})
				if err != nil {
					t.Fatal(err)
				}
				defer explore.CloseGraphStore(reopened)
				requireIdentical(t, ref, reopened, !noWit)

				m, ok := explore.GraphManifest(reopened)
				if !ok {
					t.Fatal("reopened graph has no manifest")
				}
				if m.States != ref.Size() || m.Edges != ref.Edges() || m.Witnesses == noWit {
					t.Errorf("manifest %+v disagrees with graph %d/%d", m, ref.Size(), ref.Edges())
				}
			})
		}
	}
}

// TestDurableParallelBuildCommits checks the worker-pool engine commits
// the same durable directory as the serial engine: reopening a parallel
// durable build equals the serial reference.
func TestDurableParallelBuildCommits(t *testing.T) {
	sys := mustForward(t, 3, 1, service.Adversarial)
	roots := monotoneRoots(t, sys)
	ref, err := explore.BuildGraph(sys, roots, explore.BuildOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer explore.CloseGraphStore(ref)
	dir := t.TempDir()
	built, err := explore.BuildGraph(sys, roots, explore.BuildOptions{
		Workers: 4, Store: explore.StoreSpill, GraphDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := explore.CloseGraphStore(built); err != nil {
		t.Fatal(err)
	}
	reopened, err := explore.OpenGraph(sys, dir, explore.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer explore.CloseGraphStore(reopened)
	requireIdentical(t, ref, reopened, true)
}

// TestDurableOpenErrors drives OpenGraph through the open-time failure
// table: identity mismatches and damaged data files are all typed
// *ManifestError values.
func TestDurableOpenErrors(t *testing.T) {
	sys := mustForward(t, 2, 1, service.Adversarial)
	roots := monotoneRoots(t, sys)
	build := func(t *testing.T, opt explore.BuildOptions) string {
		t.Helper()
		dir := t.TempDir()
		opt.Store = explore.StoreSpill
		opt.Workers = 1
		opt.GraphDir = dir
		opt.GraphID = []byte("id-1")
		g, err := explore.BuildGraph(sys, roots, opt)
		if err != nil {
			t.Fatal(err)
		}
		if err := explore.CloseGraphStore(g); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	cases := []struct {
		name string
		opt  explore.BuildOptions
		open func(t *testing.T, dir string) error
	}{
		{
			name: "graph identity mismatch",
			open: func(t *testing.T, dir string) error {
				_, err := explore.OpenGraph(sys, dir, explore.OpenOptions{GraphID: []byte("id-2")})
				return err
			},
		},
		{
			name: "shape mismatch",
			open: func(t *testing.T, dir string) error {
				other := mustForward(t, 3, 1, service.Adversarial)
				_, err := explore.OpenGraph(other, dir, explore.OpenOptions{})
				return err
			},
		},
		{
			name: "witnesses required but absent",
			opt:  explore.BuildOptions{NoWitnesses: true},
			open: func(t *testing.T, dir string) error {
				_, err := explore.OpenGraph(sys, dir, explore.OpenOptions{RequireWitnesses: true})
				return err
			},
		},
		{
			name: "truncated fingerprint file",
			open: func(t *testing.T, dir string) error {
				truncateTail(t, filepath.Join(dir, "fingerprints.dat"))
				_, err := explore.OpenGraph(sys, dir, explore.OpenOptions{})
				return err
			},
		},
		{
			name: "truncated edge file",
			open: func(t *testing.T, dir string) error {
				truncateTail(t, filepath.Join(dir, "edges.dat"))
				_, err := explore.OpenGraph(sys, dir, explore.OpenOptions{})
				return err
			},
		},
		{
			name: "corrupted index",
			open: func(t *testing.T, dir string) error {
				flipByte(t, filepath.Join(dir, "index.dat"))
				_, err := explore.OpenGraph(sys, dir, explore.OpenOptions{})
				return err
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := build(t, tc.opt)
			err := tc.open(t, dir)
			var merr *explore.ManifestError
			if !errors.As(err, &merr) {
				t.Fatalf("want *ManifestError, got %T: %v", err, err)
			}
		})
	}
}

func truncateTail(t *testing.T, path string) {
	t.Helper()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()/2); err != nil {
		t.Fatal(err)
	}
}

func flipByte(t *testing.T, path string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o666); err != nil {
		t.Fatal(err)
	}
}
