package explore

import (
	"bytes"
	"sync"

	"github.com/ioa-lab/boosting/internal/ioa"
	"github.com/ioa-lab/boosting/internal/servicetype"
	"github.com/ioa-lab/boosting/internal/system"
)

// fpPair is a pooled pair of fingerprint scratch buffers: the similarity
// predicates run inside refutation inner loops (once per process pair per
// hook candidate), so component comparisons encode into reused buffers
// instead of materializing a fingerprint string per component per call.
type fpPair struct{ a, b []byte }

var fpPairs = sync.Pool{New: func() any { return &fpPair{a: make([]byte, 0, 512), b: make([]byte, 0, 512)} }}

// SimilarityOptions configures the similarity notions. The Theorem 10
// variant ignores general (failure-aware) services entirely: their states
// may differ arbitrarily between similar states (Section 6.3).
type SimilarityOptions struct {
	IgnoreGeneralServices bool
}

// JSimilar reports whether two system states are j-similar (Section 3.5):
// every process other than P_j has the same state, and every service has the
// same value and, for endpoints other than j, the same buffers. Under the
// Theorem 10 variant, general services are unconstrained.
func JSimilar(sys *system.System, s0, s1 system.State, j int, opt SimilarityOptions) bool {
	bufs := fpPairs.Get().(*fpPair)
	defer fpPairs.Put(bufs)
	for _, i := range sys.ProcessIDs() {
		if i == j {
			continue
		}
		bufs.a = sys.ProcState(s0, i).AppendFingerprint(bufs.a[:0])
		bufs.b = sys.ProcState(s1, i).AppendFingerprint(bufs.b[:0])
		if !bytes.Equal(bufs.a, bufs.b) {
			return false
		}
	}
	for _, c := range sys.ServiceIDs() {
		sv := sys.Service(c)
		if opt.IgnoreGeneralServices && sv.Type().Class == servicetype.General {
			continue
		}
		st0, st1 := sys.SvcState(s0, c), sys.SvcState(s1, c)
		if st0.Val != st1.Val {
			return false
		}
		for _, i := range sv.Endpoints() {
			if i == j {
				continue
			}
			if !stringSlicesEqual(st0.Inv[i], st1.Inv[i]) || !stringSlicesEqual(st0.Resp[i], st1.Resp[i]) {
				return false
			}
		}
	}
	return true
}

// KSimilar reports whether two system states are k-similar (Section 3.5):
// every process has the same state, and every service other than S_k has the
// same state. Under the Theorem 10 variant, general services are
// unconstrained.
func KSimilar(sys *system.System, s0, s1 system.State, k string, opt SimilarityOptions) bool {
	bufs := fpPairs.Get().(*fpPair)
	defer fpPairs.Put(bufs)
	for _, i := range sys.ProcessIDs() {
		bufs.a = sys.ProcState(s0, i).AppendFingerprint(bufs.a[:0])
		bufs.b = sys.ProcState(s1, i).AppendFingerprint(bufs.b[:0])
		if !bytes.Equal(bufs.a, bufs.b) {
			return false
		}
	}
	for _, c := range sys.ServiceIDs() {
		if c == k {
			continue
		}
		sv := sys.Service(c)
		if opt.IgnoreGeneralServices && sv.Type().Class == servicetype.General {
			continue
		}
		bufs.a = sys.SvcState(s0, c).AppendFingerprint(bufs.a[:0])
		bufs.b = sys.SvcState(s1, c).AppendFingerprint(bufs.b[:0])
		if !bytes.Equal(bufs.a, bufs.b) {
			return false
		}
	}
	return true
}

// SomeSimilarity searches for any j ∈ I or k ∈ K making the two states
// similar, returning a description of the first found ("P<j>" or the
// service index) and whether one exists. Lemma 8's argument starts from the
// observation that the two univalent ends of a hook can be similar in *no*
// way.
func SomeSimilarity(sys *system.System, s0, s1 system.State, opt SimilarityOptions) (string, bool) {
	for _, j := range sys.ProcessIDs() {
		if JSimilar(sys, s0, s1, j, opt) {
			return procLabel(j), true
		}
	}
	for _, k := range sys.ServiceIDs() {
		if KSimilar(sys, s0, s1, k, opt) {
			return k, true
		}
	}
	return "", false
}

func procLabel(j int) string {
	return ioa.ProcessTask(j).String()
}

// TasksCommute checks whether applying e then e′ from st reaches the same
// state as e′ then e (the commutativity used throughout Lemma 8's claims).
// It returns false if either order is not applicable.
func TasksCommute(sys *system.System, st system.State, e, ePrime ioa.Task) bool {
	a1, _, err1 := sys.Apply(st, e)
	if err1 != nil {
		return false
	}
	a2, _, err2 := sys.Apply(a1, ePrime)
	if err2 != nil {
		return false
	}
	b1, _, err3 := sys.Apply(st, ePrime)
	if err3 != nil {
		return false
	}
	b2, _, err4 := sys.Apply(b1, e)
	if err4 != nil {
		return false
	}
	bufs := fpPairs.Get().(*fpPair)
	defer fpPairs.Put(bufs)
	bufs.a = sys.AppendFingerprint(bufs.a[:0], a2)
	bufs.b = sys.AppendFingerprint(bufs.b[:0], b2)
	return bytes.Equal(bufs.a, bufs.b)
}

// ParticipantsDisjoint reports whether the participant sets of the actions
// that e and e′ would take from st are disjoint (Claim 2 of Lemma 8: tasks
// with disjoint participants commute).
func ParticipantsDisjoint(sys *system.System, st system.State, e, ePrime ioa.Task) bool {
	pa := sys.Participants(st, e)
	pb := sys.Participants(st, ePrime)
	if pa == nil || pb == nil {
		return false
	}
	in := make(map[string]bool, len(pa))
	for _, p := range pa {
		in[p] = true
	}
	for _, p := range pb {
		if in[p] {
			return false
		}
	}
	return true
}

func stringSlicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
