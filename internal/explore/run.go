// Package explore mechanizes the proof machinery of the paper on concrete
// finite systems: fair schedulers, the execution graph G(C) of Section 3.3,
// valence classification and bivalent initializations (Section 3.2, Lemma 4),
// the hook construction of Fig. 3 (Lemma 5), state similarity (Section 3.5),
// and a refuter that extracts concrete counterexample executions from
// candidate boosting protocols (the executable content of Theorems 2, 9
// and 10).
package explore

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"github.com/ioa-lab/boosting/internal/intern"
	"github.com/ioa-lab/boosting/internal/ioa"
	"github.com/ioa-lab/boosting/internal/system"
)

// Errors returned by exploration.
var (
	ErrStateExplosion = errors.New("explore: state limit exceeded")
	ErrNotBivalent    = errors.New("explore: root execution is not bivalent")
	ErrNoDecision     = errors.New("explore: no decision reachable")
)

// LimitError reports that graph construction hit its vertex budget. It
// wraps ErrStateExplosion, so errors.Is(err, ErrStateExplosion) keeps
// working; errors.As gives callers the partial exploration count for
// surfacing ("explored N states before the limit").
type LimitError struct {
	// Limit is the MaxStates budget that was exceeded.
	Limit int
	// Explored is the number of distinct states stored when construction
	// stopped.
	Explored int
}

// Error keeps the historical sentinel-wrapped message.
func (e *LimitError) Error() string {
	return fmt.Sprintf("%v: > %d states", ErrStateExplosion, e.Limit)
}

// Unwrap ties the typed error to the ErrStateExplosion sentinel.
func (e *LimitError) Unwrap() error { return ErrStateExplosion }

// FailureEvent schedules the fail_i input before the given round-robin
// round of a run (round 0 = immediately after the initializations).
type FailureEvent struct {
	Round int
	Proc  int
}

// RunConfig configures a scheduled run of the system.
type RunConfig struct {
	// Inputs assigns init values per process; processes absent from the map
	// receive no input (the paper's modified termination condition only
	// covers processes that received inputs).
	Inputs map[int]string
	// Failures injects fail inputs before given rounds.
	Failures []FailureEvent
	// MaxRounds caps the number of fair round-robin rounds (a round gives
	// every task one turn). Zero means a generous default.
	MaxRounds int
}

// RunResult reports a scheduled run.
type RunResult struct {
	Exec      ioa.Execution
	Final     system.State
	Decisions map[int]string
	// Done reports that every live process that received an input decided —
	// the modified termination condition of Section 2.2.4.
	Done bool
	// Diverged reports that the run revisited a state at a round boundary
	// without reaching Done: the deterministic fair schedule cycles forever
	// and no further decision will ever happen.
	Diverged bool
	Rounds   int
}

const defaultMaxRounds = 10_000

// RoundRobin runs the system under the canonical fair schedule: inputs
// first (input-first executions, Section 3.2), then rounds in which every
// task of C gets one turn, skipping inapplicable tasks. The I/O-automata
// fairness condition is satisfied in the limit: every task gets infinitely
// many turns.
//
// The run stops when modified termination is met, when the state repeats at
// a round boundary (divergence: the schedule is deterministic, so the run
// cycles), or at MaxRounds.
func RoundRobin(sys *system.System, cfg RunConfig) (RunResult, error) {
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = defaultMaxRounds
	}
	st := sys.InitialState()
	var exec ioa.Execution

	// Input-first: deliver all init actions.
	for _, i := range sortedInputKeys(cfg.Inputs) {
		next, act, err := sys.Init(st, i, cfg.Inputs[i])
		if err != nil {
			return RunResult{}, err
		}
		st = next
		exec = exec.Append(ioa.Step{Action: act, After: sys.Fingerprint(st)})
	}

	failuresByRound := map[int][]int{}
	for _, f := range cfg.Failures {
		failuresByRound[f.Round] = append(failuresByRound[f.Round], f.Proc)
	}
	for _, procs := range failuresByRound {
		sort.Ints(procs)
	}

	seen := intern.NewTable(64)
	var buf []byte
	res := RunResult{}
	for round := 0; round < maxRounds; round++ {
		for _, p := range failuresByRound[round] {
			next, act, err := sys.Fail(st, p)
			if err != nil {
				return RunResult{}, err
			}
			st = next
			exec = exec.Append(ioa.Step{Action: act, After: sys.Fingerprint(st)})
		}
		if terminated(sys, st, cfg.Inputs) {
			res.Done = true
			break
		}
		// Divergence detection is only sound once all failures are injected
		// (the schedule is deterministic from here on).
		if round >= maxFailureRound(failuresByRound) {
			buf = sys.AppendFingerprint(buf[:0], st)
			if _, fresh := seen.InternBytes(buf); !fresh {
				res.Diverged = true
				break
			}
		}
		for _, task := range sys.Tasks() {
			if !sys.Applicable(st, task) {
				continue
			}
			next, act, err := sys.Apply(st, task)
			if err != nil {
				return RunResult{}, err
			}
			st = next
			exec = exec.Append(ioa.Step{HasTask: true, Task: task, Action: act, After: sys.Fingerprint(st)})
		}
		res.Rounds = round + 1
		if terminated(sys, st, cfg.Inputs) {
			res.Done = true
			break
		}
	}
	res.Exec = exec
	res.Final = st
	res.Decisions = sys.Decisions(st)
	return res, nil
}

func maxFailureRound(byRound map[int][]int) int {
	max := 0
	for r := range byRound {
		if r+1 > max {
			max = r + 1
		}
	}
	return max
}

// terminated reports the modified termination condition: every live process
// that received an input has decided.
func terminated(sys *system.System, st system.State, inputs map[int]string) bool {
	dec := sys.Decisions(st)
	for _, i := range sys.LiveProcesses(st) {
		if _, gotInput := inputs[i]; !gotInput {
			continue
		}
		if _, decided := dec[i]; !decided {
			return false
		}
	}
	return true
}

// Random runs the system under a seeded random schedule for the given
// number of steps (or until modified termination). Random schedules are not
// fair in any finite prefix; they are used for property bashing, not for
// liveness verdicts.
func Random(sys *system.System, cfg RunConfig, seed int64, steps int) (RunResult, error) {
	// The one sanctioned randomness in the engine: the schedule is drawn
	// from a caller-provided seed, so a run is reproducible by quoting
	// (seed, steps) — nondeterminism across runs is the caller's choice,
	// never ambient.
	rng := rand.New(rand.NewSource(seed)) //lint:boostvet-ignore determinism — explicitly seeded RunRandom path
	st := sys.InitialState()
	var exec ioa.Execution
	for _, i := range sortedInputKeys(cfg.Inputs) {
		next, act, err := sys.Init(st, i, cfg.Inputs[i])
		if err != nil {
			return RunResult{}, err
		}
		st = next
		exec = exec.Append(ioa.Step{Action: act, After: sys.Fingerprint(st)})
	}
	// Random runs inject the configured failures at random points; the
	// FailureEvent round is ignored.
	failed := map[int]bool{}
	pendingFailures := make([]int, 0, len(cfg.Failures))
	for _, f := range cfg.Failures {
		pendingFailures = append(pendingFailures, f.Proc)
	}
	res := RunResult{}
	for step := 0; step < steps; step++ {
		if terminated(sys, st, cfg.Inputs) {
			res.Done = true
			break
		}
		// With small probability, deliver a pending failure.
		if len(pendingFailures) > 0 && rng.Intn(10) == 0 {
			p := pendingFailures[0]
			pendingFailures = pendingFailures[1:]
			if !failed[p] {
				next, act, err := sys.Fail(st, p)
				if err != nil {
					return RunResult{}, err
				}
				failed[p] = true
				st = next
				exec = exec.Append(ioa.Step{Action: act, After: sys.Fingerprint(st)})
			}
			continue
		}
		var applicable []ioa.Task
		for _, task := range sys.Tasks() {
			if sys.Applicable(st, task) {
				applicable = append(applicable, task)
			}
		}
		if len(applicable) == 0 {
			break
		}
		task := applicable[rng.Intn(len(applicable))]
		next, act, err := sys.Apply(st, task)
		if err != nil {
			return RunResult{}, err
		}
		st = next
		exec = exec.Append(ioa.Step{HasTask: true, Task: task, Action: act, After: sys.Fingerprint(st)})
	}
	res.Exec = exec
	res.Final = st
	res.Decisions = sys.Decisions(st)
	if !res.Done {
		res.Done = terminated(sys, st, cfg.Inputs)
	}
	return res, nil
}

// RunBatch runs every configuration under the canonical fair schedule,
// spread across the given number of workers (0 = runtime.NumCPU(), 1 =
// serial), and returns the results in input order. Runs are independent —
// the system structure is immutable and states are copy-on-write — so the
// batch result is identical to running the configurations one by one; on
// error the first failing configuration's error (in input order) is
// returned.
//
// RunBatch is a bulk-verification primitive: the per-step execution traces
// are dropped (a batch of thousands of configurations would otherwise pin
// every trace in memory at once). Run RoundRobin directly when Exec is
// needed.
func RunBatch(sys *system.System, cfgs []RunConfig, workers int) ([]RunResult, error) {
	return RunBatchCtx(nil, sys, cfgs, workers)
}

// RunBatchCtx is RunBatch with cancellation: each worker checks the context
// before starting its next configuration, so a cancelled batch returns
// ctx.Err() promptly instead of draining the remaining runs. A nil context
// never cancels.
func RunBatchCtx(ctx context.Context, sys *system.System, cfgs []RunConfig, workers int) ([]RunResult, error) {
	results := make([]RunResult, len(cfgs))
	errs := make([]error, len(cfgs))
	parallelFor(effectiveWorkers(workers), len(cfgs), func(i int) {
		if err := ctxErr(ctx); err != nil {
			errs[i] = err
			return
		}
		results[i], errs[i] = RoundRobin(sys, cfgs[i])
		results[i].Exec = ioa.Execution{}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

func sortedInputKeys(inputs map[int]string) []int {
	keys := make([]int, 0, len(inputs))
	for k := range inputs {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// fmtAssignment renders an input assignment for reports.
func fmtAssignment(inputs map[int]string) string {
	keys := sortedInputKeys(inputs)
	s := ""
	for _, k := range keys {
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("P%d←%s", k, inputs[k])
	}
	return s
}
