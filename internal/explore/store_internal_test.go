package explore

// In-package tests for the StateStore seam: the hash-compaction backend's
// collision audit (forced via a degenerate hash function) and the
// equivalence of all backends at the store level. The public behaviour —
// identical graphs, valences and reports — is covered by the external
// store/progress/cancellation tests and the root-level parity suite.

import (
	"testing"

	"github.com/ioa-lab/boosting/internal/allocpin"
	"github.com/ioa-lab/boosting/internal/protocols"
	"github.com/ioa-lab/boosting/internal/service"
	"github.com/ioa-lab/boosting/internal/system"
)

// TestHashStoreCollisionAudit drives a hash store whose hash function maps
// every fingerprint to the same bucket: every distinct state is a hash
// collision, and the store must still assign the exact same dense IDs as
// the dense backend, resolving each collision by verification and counting
// it.
func TestHashStoreCollisionAudit(t *testing.T) {
	sys, err := protocols.BuildForward(2, 0, service.Adversarial)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := BuildGraph(sys, []systemState{stateAfterInputs(t, sys)}, BuildOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	hs := newHashStore(sys.AppendFingerprint, false, true)
	hs.hash = func([]byte) (uint64, uint64) { return 0, 0 }
	var buf []byte
	for id := 0; id < dense.Size(); id++ {
		st, _ := dense.State(StateID(id))
		buf = sys.AppendFingerprint(buf[:0], st)
		got, fresh := hs.Intern(string(buf), st, pred{})
		if !fresh || got != StateID(id) {
			t.Fatalf("degenerate hash store assigned id %d (fresh=%v), want fresh id %d", got, fresh, id)
		}
	}
	// Every re-lookup must resolve through the single shared bucket.
	for id := 0; id < dense.Size(); id++ {
		st, _ := dense.State(StateID(id))
		buf = sys.AppendFingerprint(buf[:0], st)
		got, ok := hs.Lookup(buf)
		if !ok || got != StateID(id) {
			t.Fatalf("lookup of state %d under total collision: got %d, ok=%v", id, got, ok)
		}
	}
	if hs.Collisions() == 0 {
		t.Error("total-collision store audited zero collisions")
	}
	if n := hs.Len(); n != dense.Size() {
		t.Errorf("store length %d, want %d", n, dense.Size())
	}
}

// TestRealHashNoFalseMerges interns every state of a real graph into a
// normally-hashed store and checks IDs survive a round trip.
func TestRealHashNoFalseMerges(t *testing.T) {
	sys, err := protocols.BuildForward(2, 0, service.Adversarial)
	if err != nil {
		t.Fatal(err)
	}
	for _, wide := range []bool{false, true} {
		dense, err := BuildGraph(sys, []systemState{stateAfterInputs(t, sys)}, BuildOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		hs := newHashStore(sys.AppendFingerprint, wide, true)
		var buf []byte
		for id := 0; id < dense.Size(); id++ {
			st, _ := dense.State(StateID(id))
			buf = sys.AppendFingerprint(buf[:0], st)
			if got, fresh := hs.Intern(string(buf), st, pred{}); !fresh || got != StateID(id) {
				t.Fatalf("wide=%v: intern state %d: got %d fresh=%v", wide, id, got, fresh)
			}
		}
		if fp0, fp1 := dense.Fingerprint(0), hs.Fingerprint(0); fp0 != fp1 {
			t.Errorf("wide=%v: reconstructed fingerprint mismatch:\n%q\n%q", wide, fp0, fp1)
		}
	}
}

// TestHashFingerprintAllocs pins the pooled-buffer discipline of the
// hash-compaction Fingerprint reconstruction: with a warm pool the only
// allocation per call is the returned string itself (it used to burn a
// second allocation on a fresh encode buffer every call).
func TestHashFingerprintAllocs(t *testing.T) {
	sys, err := protocols.BuildForward(2, 0, service.Adversarial)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := BuildGraph(sys, []systemState{stateAfterInputs(t, sys)}, BuildOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, wide := range []bool{false, true} {
		hs := newHashStore(sys.AppendFingerprint, wide, true)
		var buf []byte
		for id := 0; id < dense.Size(); id++ {
			st, _ := dense.State(StateID(id))
			buf = sys.AppendFingerprint(buf[:0], st)
			hs.Intern(string(buf), st, pred{})
		}
		hs.Fingerprint(0) // warm the buffer pool
		label := "wide=false Fingerprint"
		if wide {
			label = "wide=true Fingerprint"
		}
		allocpin.Check(t, label, 100, 1, func() { hs.Fingerprint(0) })
	}
}

// TestStoreWithoutWitnesses: stores built without witnesses must record no
// predecessor links — Pred is the zero link for every vertex, in range or
// not — while IDs, states and fingerprints stay identical.
func TestStoreWithoutWitnesses(t *testing.T) {
	sys, err := protocols.BuildForward(2, 0, service.Adversarial)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := BuildGraph(sys, []systemState{stateAfterInputs(t, sys)}, BuildOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	spill, err := newSpillStore(sys, t.TempDir(), "", false)
	if err != nil {
		t.Fatal(err)
	}
	backends := []struct {
		name  string
		store StateStore
	}{
		{"dense", newDenseStore(false)},
		{"hash64", newHashStore(sys.AppendFingerprint, false, false)},
		{"spill", spill},
	}
	var buf []byte
	for _, b := range backends {
		for id := 0; id < 10; id++ {
			st, _ := dense.State(StateID(id))
			buf = sys.AppendFingerprint(buf[:0], st)
			got, fresh := b.store.Intern(string(buf), st, pred{from: 1, has: true})
			if !fresh || got != StateID(id) {
				t.Fatalf("%s: witness-free Intern state %d: got %d fresh=%v", b.name, id, got, fresh)
			}
		}
		for id := 0; id < 12; id++ {
			if p := b.store.Pred(StateID(id)); p.has || p.from != 0 {
				t.Errorf("%s: Pred(%d) = %+v on a witness-free store, want zero", b.name, id, p)
			}
		}
		if fp := b.store.Fingerprint(3); fp != dense.Fingerprint(3) {
			t.Errorf("%s: witness-free store diverged on Fingerprint(3)", b.name)
		}
	}
}

type systemState = system.State

func stateAfterInputs(t *testing.T, sys *system.System) system.State {
	t.Helper()
	st, err := applyInputs(sys, MonotoneAssignment(sys, 1))
	if err != nil {
		t.Fatal(err)
	}
	return st
}
