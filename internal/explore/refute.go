package explore

import (
	"fmt"
	"sort"
	"strings"

	"github.com/ioa-lab/boosting/internal/intern"
	"github.com/ioa-lab/boosting/internal/ioa"
	"github.com/ioa-lab/boosting/internal/system"
)

// ViolationKind classifies a refutation certificate by which consensus
// property the witness execution violates (Section 2.2.4).
type ViolationKind int

// Violation kinds.
const (
	KindNone ViolationKind = iota
	KindAgreement
	KindValidity
	KindTermination
)

// String renders the kind.
func (k ViolationKind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindAgreement:
		return "agreement"
	case KindValidity:
		return "validity"
	case KindTermination:
		return "termination"
	default:
		return fmt.Sprintf("violation(%d)", int(k))
	}
}

// Certificate is a concrete counterexample: an input assignment, a failure
// pattern of at most the claimed tolerance, and a fair execution violating
// one of the consensus conditions.
type Certificate struct {
	Kind        ViolationKind
	Description string
	Inputs      map[int]string
	Failed      []int
	Decisions   map[int]string
	// Diverged marks termination certificates obtained from a provably
	// cycling fair schedule (not a mere step bound).
	Diverged bool
}

// String renders the certificate.
func (c Certificate) String() string {
	return fmt.Sprintf("%s violation [inputs: %s; failed: %v]: %s",
		c.Kind, fmtAssignment(c.Inputs), c.Failed, c.Description)
}

// Report is the outcome of Refute: the Lemma 4 initialization analysis, the
// Fig. 3 hook-search outcome, and every certificate found.
type Report struct {
	// Claimed is the number of failures the candidate claims to tolerate
	// (the paper's f+1 when boosting f-resilient services).
	Claimed int
	// Inits is the Lemma 4 classification (nil if the safety sweep already
	// refuted the candidate).
	Inits *InitClassification
	// HookSearch is the Fig. 3 outcome from the bivalent initialization
	// (nil if there was none).
	HookSearch *HookSearchResult
	// Certificates lists every violation found; empty means the candidate
	// survived refutation at the claimed resilience.
	Certificates []Certificate
}

// Violated reports whether any certificate was found.
func (r *Report) Violated() bool { return len(r.Certificates) > 0 }

// Close releases the graph behind the report's initialization analysis
// (nil-tolerant throughout: a safety-sweep refutation carries no graph).
// Spill-backed refutations hold two file descriptors until closed, so
// callers that churn through candidates should `defer report.Close()`.
func (r *Report) Close() error {
	if r == nil {
		return nil
	}
	return r.Inits.Close()
}

// Primary returns the first (most informative) certificate.
func (r *Report) Primary() *Certificate {
	if len(r.Certificates) == 0 {
		return nil
	}
	return &r.Certificates[0]
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "refutation report (claimed tolerance: %d failures)\n", r.Claimed)
	if r.Inits != nil {
		b.WriteString(r.Inits.String())
	}
	if r.HookSearch != nil {
		switch {
		case r.HookSearch.Hook != nil:
			fmt.Fprintf(&b, "%s\n", r.HookSearch.Hook)
		case r.HookSearch.Divergence != nil:
			fmt.Fprintf(&b, "divergence: fair bivalent cycle after %d steps\n", r.HookSearch.Divergence.Steps)
		}
	}
	if !r.Violated() {
		b.WriteString("no violation found at claimed resilience\n")
		return b.String()
	}
	for _, c := range r.Certificates {
		fmt.Fprintf(&b, "%s\n", c)
	}
	return b.String()
}

// RefuteOptions configures the refuter.
type RefuteOptions struct {
	Build BuildOptions
	// MaxRounds bounds fair runs in failure scenarios.
	MaxRounds int
	// SkipExhaustiveSafety skips the 2^n safety sweep (for larger n).
	SkipExhaustiveSafety bool
	// SkipGraphAnalysis skips the failure-free graph phases (safety sweep,
	// Lemma 4, hook search) and goes straight to the failure scenarios.
	// Required for systems with failure detectors: detector compute steps
	// push suspicion responses unconditionally, so their failure-free
	// reachable graph is infinite.
	SkipGraphAnalysis bool
}

// Refute analyses a candidate system claiming to solve consensus while
// tolerating `claimed` process failures. It is the executable counterpart of
// the impossibility theorems: for a candidate built from f-resilient
// services with claimed = f+1 (and f < n−1), the theorems guarantee some
// certificate exists; Refute finds one.
//
// The analysis follows the proofs' structure:
//
//  1. exhaustive safety sweep over all {0,1}^n input assignments in the
//     failure-free graph (agreement, validity);
//  2. the Lemma 4 initialization classification, then the Fig. 3 hook
//     construction from a bivalent initialization — divergence yields a
//     failure-free termination certificate;
//  3. failure scenarios: every failure set of size ≤ claimed, injected both
//     at the start and at the hook vertices, run under the adversarially
//     silencing fair schedule with cycle detection.
func Refute(sys *system.System, claimed int, opt RefuteOptions) (*Report, error) {
	report := &Report{Claimed: claimed}
	if err := ctxErr(opt.Build.Ctx); err != nil {
		return nil, err
	}

	// Phase 1: exhaustive failure-free safety sweep. The 2^n assignments are
	// independent, so they are swept across the configured workers, with the
	// pool divided between the sweep and the per-assignment graph builds so
	// the total goroutine count stays near the knob. Certificates are
	// collected in assignment order, so the report matches the serial sweep.
	if !opt.SkipExhaustiveSafety && !opt.SkipGraphAnalysis {
		assignments := AllAssignments(sys)
		workers := effectiveWorkers(opt.Build.Workers)
		inner := opt.Build
		if workers > 1 {
			// Split the pool: when there are fewer assignments than workers
			// the spare cores go to the per-assignment graph builds.
			inner.Workers = max(1, workers/len(assignments))
		}
		certs := make([]*Certificate, len(assignments))
		errs := make([]error, len(assignments))
		parallelFor(workers, len(assignments), func(i int) {
			certs[i], errs[i] = safetySweep(sys, assignments[i], inner)
		})
		for i := range assignments {
			if errs[i] != nil {
				return nil, errs[i]
			}
			if certs[i] != nil {
				report.Certificates = append(report.Certificates, *certs[i])
			}
		}
		if report.Violated() {
			return report, nil
		}
	}

	// Phase 2: Lemma 4 + Fig. 3.
	var hookStates []system.State
	var hookInputs map[int]string
	if opt.SkipGraphAnalysis {
		hookInputs = MonotoneAssignment(sys, len(sys.ProcessIDs())/2)
		return refuteScenarios(sys, report, hookInputs, hookStates, opt)
	}
	inits, err := ClassifyInits(sys, opt.Build)
	if err != nil {
		return nil, err
	}
	report.Inits = inits
	if inits.BivalentIndex >= 0 {
		hookInputs = inits.Assignments[inits.BivalentIndex]
		hs, err := FindHookCtx(opt.Build.Ctx, inits.Graph, inits.Roots[inits.BivalentIndex], opt.Build.Workers)
		if err != nil {
			return nil, err
		}
		report.HookSearch = &hs
		if hs.Divergence != nil {
			report.Certificates = append(report.Certificates, Certificate{
				Kind: KindTermination,
				Description: fmt.Sprintf(
					"fair failure-free execution cycles through bivalent states (cycle after %d steps); no process ever decides",
					hs.Divergence.Steps),
				Inputs:   hookInputs,
				Diverged: true,
			})
			return report, nil
		}
		if hs.Hook != nil {
			for _, id := range []StateID{hs.Hook.Alpha0, hs.Hook.Alpha1} {
				if st, ok := inits.Graph.State(id); ok {
					hookStates = append(hookStates, st)
				}
			}
		}
	} else {
		// The termination requirement for univalent-only candidates is
		// checked by the failure scenarios below; a missing bivalent
		// initialization with intact safety usually signals a trivial or
		// schedule-insensitive candidate.
		hookInputs = MonotoneAssignment(sys, len(sys.ProcessIDs())/2)
	}
	return refuteScenarios(sys, report, hookInputs, hookStates, opt)
}

// refuteScenarios is phase 3: failure scenarios at the start and at the
// hook vertices, for every failure set of the claimed size. The scenarios of
// one failure set are independent fair runs, so they execute across the
// configured workers; certificates are collected in scenario order and the
// early stop after the first violated failure set is preserved, so the
// report matches the serial refuter.
func refuteScenarios(sys *system.System, report *Report, hookInputs map[int]string, hookStates []system.State, opt RefuteOptions) (*Report, error) {
	assignments := []map[int]string{
		hookInputs,
		MonotoneAssignment(sys, 0),
		MonotoneAssignment(sys, len(sys.ProcessIDs())),
	}
	workers := effectiveWorkers(opt.Build.Workers)
	for _, J := range failureSets(sys.ProcessIDs(), report.Claimed) {
		if err := ctxErr(opt.Build.Ctx); err != nil {
			return nil, err
		}
		scenarios := make([]func() (*Certificate, error), 0, len(assignments)+len(hookStates))
		for _, inputs := range assignments {
			scenarios = append(scenarios, func() (*Certificate, error) {
				return failureScenario(sys, inputs, J, opt)
			})
		}
		// Hook-anchored: fail J at the univalent ends of the hook.
		for _, st := range hookStates {
			scenarios = append(scenarios, func() (*Certificate, error) {
				return failureScenarioFrom(sys, st, hookInputs, J, opt)
			})
		}
		certs := make([]*Certificate, len(scenarios))
		errs := make([]error, len(scenarios))
		parallelFor(workers, len(scenarios), func(i int) {
			certs[i], errs[i] = scenarios[i]()
		})
		for i := range scenarios {
			if errs[i] != nil {
				return nil, errs[i]
			}
			if certs[i] != nil {
				report.Certificates = append(report.Certificates, *certs[i])
			}
		}
		if report.Violated() {
			// One certificate per failure set is plenty; stop early.
			break
		}
	}
	return report, nil
}

// safetySweep explores the failure-free graph from one input assignment and
// checks agreement and validity in every reachable state.
func safetySweep(sys *system.System, inputs map[int]string, opt BuildOptions) (*Certificate, error) {
	root, err := applyInputs(sys, inputs)
	if err != nil {
		return nil, err
	}
	g, err := BuildGraph(sys, []system.State{root}, opt)
	if err != nil {
		return nil, err
	}
	// The per-assignment graph never escapes (certificates copy what they
	// need), so release backend resources — the spill store's descriptor —
	// deterministically instead of waiting for the GC.
	defer CloseGraphStore(g)
	validValues := map[string]bool{}
	for _, v := range inputs {
		validValues[v] = true
	}
	// Iterate vertices in lexicographic fingerprint order — the historical
	// witness-selection order, kept so reports stay byte-identical across
	// the ID refactor.
	order := make([]StateID, g.Size())
	for i := range order {
		order[i] = StateID(i)
	}
	if _, spill := GraphSpillStats(g); spill {
		// Spill-backed graphs compare fingerprints on demand through the
		// pooled read path: materializing them up front would re-resident
		// the entire spill file, defeating the backend's memory ceiling.
		// Both branches sort by the same key, so the order is identical.
		sort.Slice(order, func(i, j int) bool {
			return g.Fingerprint(order[i]) < g.Fingerprint(order[j])
		})
	} else {
		// In-memory backends materialize once up front: hash stores
		// reconstruct fingerprints by re-encoding, which would otherwise
		// run O(n log n) times inside the comparator.
		fps := make([]string, g.Size())
		for i := range fps {
			fps[i] = g.Fingerprint(StateID(i))
		}
		sort.Slice(order, func(i, j int) bool {
			return fps[order[i]] < fps[order[j]]
		})
	}
	for _, id := range order {
		st, _ := g.State(id)
		dec := sys.Decisions(st)
		var values []string
		for _, v := range dec {
			values = append(values, v)
		}
		sort.Strings(values)
		for _, v := range values {
			if !validValues[v] {
				return &Certificate{
					Kind:        KindValidity,
					Description: fmt.Sprintf("decision %q is not any process's input (reachable in %d steps)", v, len(g.WitnessPath(id))),
					Inputs:      inputs,
					Decisions:   dec,
				}, nil
			}
		}
		if len(values) > 1 && values[0] != values[len(values)-1] {
			return &Certificate{
				Kind:        KindAgreement,
				Description: fmt.Sprintf("processes decided %v in one failure-free execution (reachable in %d steps)", dec, len(g.WitnessPath(id))),
				Inputs:      inputs,
				Decisions:   dec,
			}, nil
		}
	}
	return nil, nil
}

// failureScenario fails J and runs the fair schedule. Failures are tried at
// several injection rounds (all at the start, and staggered a few rounds
// in), since some candidates survive early crashes but not late ones.
func failureScenario(sys *system.System, inputs map[int]string, J []int, opt RefuteOptions) (*Certificate, error) {
	for _, baseRound := range []int{0, 1, 2} {
		failures := make([]FailureEvent, len(J))
		for i, p := range J {
			failures[i] = FailureEvent{Round: baseRound + i, Proc: p}
		}
		res, err := RoundRobin(sys, RunConfig{Inputs: inputs, Failures: failures, MaxRounds: opt.MaxRounds})
		if err != nil {
			return nil, err
		}
		if cert := classifyRun(sys, inputs, J, res); cert != nil {
			return cert, nil
		}
	}
	return nil, nil
}

// failureScenarioFrom fails J in the given (already initialized) state and
// runs the fair schedule from there.
func failureScenarioFrom(sys *system.System, st system.State, inputs map[int]string, J []int, opt RefuteOptions) (*Certificate, error) {
	cur := st
	for _, p := range J {
		next, _, err := sys.Fail(cur, p)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	res, err := RoundRobinFrom(sys, cur, inputs, opt.MaxRounds)
	if err != nil {
		return nil, err
	}
	return classifyRun(sys, inputs, J, res), nil
}

// classifyRun turns a finished run into a certificate if it violates a
// consensus condition at the given failure pattern.
func classifyRun(sys *system.System, inputs map[int]string, J []int, res RunResult) *Certificate {
	dec := res.Decisions
	validValues := map[string]bool{}
	for _, v := range inputs {
		validValues[v] = true
	}
	var values []string
	for _, v := range dec {
		values = append(values, v)
	}
	sort.Strings(values)
	for _, v := range values {
		if !validValues[v] {
			return &Certificate{
				Kind:        KindValidity,
				Description: fmt.Sprintf("decision %q is not any process's input", v),
				Inputs:      inputs, Failed: J, Decisions: dec,
			}
		}
	}
	if len(values) > 1 && values[0] != values[len(values)-1] {
		return &Certificate{
			Kind:        KindAgreement,
			Description: fmt.Sprintf("processes decided %v under failure pattern %v", dec, J),
			Inputs:      inputs, Failed: J, Decisions: dec,
		}
	}
	if res.Diverged && !res.Done {
		var undecided []int
		failed := map[int]bool{}
		for _, p := range J {
			failed[p] = true
		}
		for i := range inputs {
			if _, ok := dec[i]; !ok && !failed[i] {
				undecided = append(undecided, i)
			}
		}
		sort.Ints(undecided)
		return &Certificate{
			Kind: KindTermination,
			Description: fmt.Sprintf(
				"fair execution with %d ≤ claimed failures cycles forever; live inited processes %v never decide",
				len(J), undecided),
			Inputs: inputs, Failed: J, Decisions: dec, Diverged: true,
		}
	}
	return nil
}

// RoundRobinFrom runs the fair round-robin schedule from an arbitrary state
// (inputs and failures already delivered). The inputs map is used only for
// the modified-termination stop condition.
func RoundRobinFrom(sys *system.System, st system.State, inputs map[int]string, maxRounds int) (RunResult, error) {
	if maxRounds <= 0 {
		maxRounds = defaultMaxRounds
	}
	var exec ioa.Execution
	res := RunResult{}
	seen := intern.NewTable(64)
	var buf []byte
	for round := 0; round < maxRounds; round++ {
		if terminated(sys, st, inputs) {
			res.Done = true
			break
		}
		buf = sys.AppendFingerprint(buf[:0], st)
		if _, fresh := seen.InternBytes(buf); !fresh {
			res.Diverged = true
			break
		}
		for _, task := range sys.Tasks() {
			if !sys.Applicable(st, task) {
				continue
			}
			next, act, err := sys.Apply(st, task)
			if err != nil {
				return RunResult{}, err
			}
			st = next
			exec = exec.Append(ioa.Step{HasTask: true, Task: task, Action: act, After: sys.Fingerprint(st)})
		}
		res.Rounds = round + 1
		if terminated(sys, st, inputs) {
			res.Done = true
			break
		}
	}
	res.Exec = exec
	res.Final = st
	res.Decisions = sys.Decisions(st)
	return res, nil
}

// failureSets enumerates the subsets of ids of exactly the given size
// (and, when size exceeds len(ids), the full set).
func failureSets(ids []int, size int) [][]int {
	if size <= 0 {
		return [][]int{{}}
	}
	if size > len(ids) {
		size = len(ids)
	}
	var out [][]int
	var rec func(start int, cur []int)
	rec = func(start int, cur []int) {
		if len(cur) == size {
			out = append(out, append([]int{}, cur...))
			return
		}
		for i := start; i < len(ids); i++ {
			rec(i+1, append(cur, ids[i]))
		}
	}
	rec(0, nil)
	return out
}

// RefuteKSet is the k-set-consensus variant of Refute: it checks validity,
// modified termination and k-agreement (at most k distinct decisions)
// instead of full agreement. Section 4 shows the boosting boundary runs
// between k = 1 (impossible) and k = 2 (possible); this refuter measures it:
// the Section 4 construction survives RefuteKSet with k = 2 at full claimed
// resilience and is refuted with k = 1.
func RefuteKSet(sys *system.System, k, claimed int, opt RefuteOptions) (*Report, error) {
	report := &Report{Claimed: claimed}
	assignments := []map[int]string{
		MonotoneAssignment(sys, len(sys.ProcessIDs())/2),
		MonotoneAssignment(sys, 0),
		MonotoneAssignment(sys, len(sys.ProcessIDs())),
		alternatingAssignment(sys),
	}
	workers := effectiveWorkers(opt.Build.Workers)
	for _, J := range failureSets(sys.ProcessIDs(), claimed) {
		if err := ctxErr(opt.Build.Ctx); err != nil {
			return nil, err
		}
		certs := make([]*Certificate, len(assignments))
		errs := make([]error, len(assignments))
		parallelFor(workers, len(assignments), func(i int) {
			certs[i], errs[i] = kSetScenario(sys, assignments[i], J, k, opt)
		})
		for i := range assignments {
			if errs[i] != nil {
				return nil, errs[i]
			}
			if certs[i] != nil {
				report.Certificates = append(report.Certificates, *certs[i])
			}
		}
		if report.Violated() {
			break
		}
	}
	return report, nil
}

// alternatingAssignment gives processes alternating 0/1 inputs — the
// assignment that maximizes distinct decisions in grouped constructions.
func alternatingAssignment(sys *system.System) map[int]string {
	out := map[int]string{}
	for idx, id := range sys.ProcessIDs() {
		if idx%2 == 0 {
			out[id] = "0"
		} else {
			out[id] = "1"
		}
	}
	return out
}

// kSetScenario runs one failure scenario and classifies it against the
// k-set-consensus conditions.
func kSetScenario(sys *system.System, inputs map[int]string, J []int, k int, opt RefuteOptions) (*Certificate, error) {
	failures := make([]FailureEvent, len(J))
	for i, p := range J {
		failures[i] = FailureEvent{Round: 0, Proc: p}
	}
	res, err := RoundRobin(sys, RunConfig{Inputs: inputs, Failures: failures, MaxRounds: opt.MaxRounds})
	if err != nil {
		return nil, err
	}
	validValues := map[string]bool{}
	for _, v := range inputs {
		validValues[v] = true
	}
	distinct := map[string]bool{}
	for _, v := range res.Decisions {
		if !validValues[v] {
			return &Certificate{
				Kind:        KindValidity,
				Description: fmt.Sprintf("decision %q is not any process's input", v),
				Inputs:      inputs, Failed: J, Decisions: res.Decisions,
			}, nil
		}
		distinct[v] = true
	}
	if len(distinct) > k {
		return &Certificate{
			Kind:        KindAgreement,
			Description: fmt.Sprintf("%d distinct decisions exceed k = %d", len(distinct), k),
			Inputs:      inputs, Failed: J, Decisions: res.Decisions,
		}, nil
	}
	if res.Diverged && !res.Done {
		return &Certificate{
			Kind:        KindTermination,
			Description: fmt.Sprintf("fair execution with %d ≤ claimed failures cycles; live inited processes never decide", len(J)),
			Inputs:      inputs, Failed: J, Decisions: res.Decisions, Diverged: true,
		}, nil
	}
	return nil, nil
}
