package explore_test

import (
	"errors"
	"testing"

	"github.com/ioa-lab/boosting/internal/explore"
	"github.com/ioa-lab/boosting/internal/protocols"
	"github.com/ioa-lab/boosting/internal/service"
	"github.com/ioa-lab/boosting/internal/system"
)

// mustForward builds the forward candidate: n processes, one f-resilient
// consensus object, one register.
func mustForward(t testing.TB, n, f int, policy service.SilencePolicy) *system.System {
	t.Helper()
	sys, err := protocols.BuildForward(n, f, policy)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestRoundRobinWaitFreeObjectDecides(t *testing.T) {
	sys := mustForward(t, 2, 1, service.Adversarial)
	res, err := explore.RoundRobin(sys, explore.RunConfig{Inputs: map[int]string{0: "0", 1: "1"}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatalf("run did not terminate: %+v", res)
	}
	if len(res.Decisions) != 2 || res.Decisions[0] != res.Decisions[1] {
		t.Errorf("decisions: %v", res.Decisions)
	}
}

func TestRoundRobinSurvivorDecidesWithWaitFreeObject(t *testing.T) {
	sys := mustForward(t, 2, 1, service.Adversarial)
	res, err := explore.RoundRobin(sys, explore.RunConfig{
		Inputs:   map[int]string{0: "0", 1: "1"},
		Failures: []explore.FailureEvent{{Round: 0, Proc: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatalf("survivor did not decide: %+v", res)
	}
	if v, ok := res.Decisions[0]; !ok || (v != "0" && v != "1") {
		t.Errorf("survivor decision: %v", res.Decisions)
	}
}

func TestRoundRobinZeroResilientObjectDiverges(t *testing.T) {
	// f = 0 object + 1 failure: the adversarially silenced object never
	// answers, the survivor polls forever — a provable cycle.
	sys := mustForward(t, 2, 0, service.Adversarial)
	res, err := explore.RoundRobin(sys, explore.RunConfig{
		Inputs:   map[int]string{0: "0", 1: "1"},
		Failures: []explore.FailureEvent{{Round: 0, Proc: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Done {
		t.Fatalf("run terminated despite silenced object: %v", res.Decisions)
	}
	if !res.Diverged {
		t.Fatal("divergence not detected")
	}
	if _, decided := res.Decisions[0]; decided {
		t.Errorf("survivor decided without the object: %v", res.Decisions)
	}
}

func TestClassifyInitsLemma4(t *testing.T) {
	sys := mustForward(t, 2, 0, service.Adversarial)
	c, err := explore.ClassifyInits(sys, explore.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Validity forces the all-0 initialization 0-valent and the all-1
	// initialization 1-valent (paper Lemma 4's endpoints).
	if got := c.Valences[0]; got != explore.ZeroValent {
		t.Errorf("α_0: %v", got)
	}
	if got := c.Valences[len(c.Valences)-1]; got != explore.OneValent {
		t.Errorf("α_n: %v", got)
	}
	if c.BivalentIndex < 0 {
		t.Fatal("no bivalent initialization found (Lemma 4 exhibits one)")
	}
	if got := c.Valences[c.BivalentIndex]; got != explore.Bivalent {
		t.Errorf("bivalent index has valence %v", got)
	}
}

func TestFindHookOnForwardCandidate(t *testing.T) {
	// The mixed-input initialization of the forward candidate is bivalent
	// (the object's perform order decides the winner), and the Fig. 3
	// construction terminates with a hook at the object.
	sys := mustForward(t, 2, 0, service.Adversarial)
	c, err := explore.ClassifyInits(sys, explore.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c.BivalentIndex < 0 {
		t.Fatal("no bivalent init")
	}
	res, err := explore.FindHook(c.Graph, c.Roots[c.BivalentIndex])
	if err != nil {
		t.Fatal(err)
	}
	if res.Hook == nil {
		t.Fatalf("expected a hook, got %+v", res)
	}
	h := res.Hook
	g := c.Graph
	// Check the hook's defining valences.
	v0, v1 := g.Valence(h.Alpha0), g.Valence(h.Alpha1)
	if v0 == v1 || v0 == explore.Bivalent || v1 == explore.Bivalent {
		t.Errorf("hook ends: %v vs %v", v0, v1)
	}
	if g.Valence(h.Alpha) != explore.Bivalent {
		t.Errorf("hook base valence: %v", g.Valence(h.Alpha))
	}
	if h.E == h.EPrime {
		t.Error("hook tasks must differ (Claim 1)")
	}
	// Structural identities: α0 = e(α), α' = e'(α), α1 = e(α').
	if e0, ok := g.Succ(h.Alpha, h.E); !ok || e0.To != h.Alpha0 {
		t.Error("α0 ≠ e(α)")
	}
	if ep, ok := g.Succ(h.Alpha, h.EPrime); !ok || ep.To != h.AlphaPrime {
		t.Error("α' ≠ e'(α)")
	}
	if e1, ok := g.Succ(h.AlphaPrime, h.E); !ok || e1.To != h.Alpha1 {
		t.Error("α1 ≠ e(α')")
	}
}

func TestHookEndsSimilarOnlyBecauseCandidateIsBroken(t *testing.T) {
	// For the broken forward candidate the hook ends ARE k-similar at the
	// shared object: this is precisely the configuration Lemma 8 rules out
	// for correct systems, and Lemma 7's failure construction turns it into
	// the non-termination certificate.
	sys := mustForward(t, 2, 0, service.Adversarial)
	c, err := explore.ClassifyInits(sys, explore.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := explore.FindHook(c.Graph, c.Roots[c.BivalentIndex])
	if err != nil || res.Hook == nil {
		t.Fatalf("hook: %+v err %v", res, err)
	}
	s0, ok0 := c.Graph.State(res.Hook.Alpha0)
	s1, ok1 := c.Graph.State(res.Hook.Alpha1)
	if !ok0 || !ok1 {
		t.Fatal("hook states missing from graph")
	}
	who, similar := explore.SomeSimilarity(sys, s0, s1, explore.SimilarityOptions{})
	if !similar {
		t.Fatal("hook ends of the broken candidate should be similar in some way")
	}
	if who != "k0" {
		t.Errorf("similarity at %s, want the shared consensus object k0", who)
	}
}

func TestLemma7FailureConstructionOnHookEnds(t *testing.T) {
	// The mechanical content of Lemma 7: from two k-similar states, failing
	// a set J of f+1 processes chosen to silence S_k yields executions that
	// the remaining components cannot tell apart — so the survivors behave
	// identically on both sides. On the broken forward candidate (f = 0
	// object claiming 1-resilient consensus) the hook ends are k0-similar
	// with *different* valences, and the mirrored runs expose the
	// contradiction: both sides diverge identically, so the claimed
	// termination under 1 failure is violated.
	//
	// (The lemma's hypotheses — a system actually solving (f+1)-resilient
	// consensus — are unsatisfiable by Theorem 2, so the lemma can only be
	// exercised this way: as the engine that turns a hook into a concrete
	// counterexample.)
	sys := mustForward(t, 2, 0, service.Adversarial)
	c, err := explore.ClassifyInits(sys, explore.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := explore.FindHook(c.Graph, c.Roots[c.BivalentIndex])
	if err != nil || res.Hook == nil {
		t.Fatalf("hook: %+v err %v", res, err)
	}
	s0, _ := c.Graph.State(res.Hook.Alpha0)
	s1, _ := c.Graph.State(res.Hook.Alpha1)
	if !explore.KSimilar(sys, s0, s1, "k0", explore.SimilarityOptions{}) {
		t.Fatal("hook ends not k0-similar")
	}
	if c.Graph.Valence(res.Hook.Alpha0) == c.Graph.Valence(res.Hook.Alpha1) {
		t.Fatal("hook ends must have opposite valences")
	}
	// Fail J = {0} (f+1 = 1 failure silences the 0-resilient object) at
	// both ends and run the fair schedule.
	inputs := c.Assignments[c.BivalentIndex]
	outcomes := make([]map[int]string, 2)
	for idx, st := range []system.State{s0, s1} {
		cur, _, failErr := sys.Fail(st, 0)
		if failErr != nil {
			t.Fatal(failErr)
		}
		run, runErr := explore.RoundRobinFrom(sys, cur, inputs, 0)
		if runErr != nil {
			t.Fatal(runErr)
		}
		if run.Done {
			t.Fatalf("side %d terminated despite silenced object: %v", idx, run.Decisions)
		}
		if !run.Diverged {
			t.Fatalf("side %d did not provably diverge", idx)
		}
		outcomes[idx] = run.Decisions
	}
	// The survivors' observable outcomes match on both sides, as the
	// similarity argument predicts (here: no survivor ever decides).
	if len(outcomes[0]) != len(outcomes[1]) {
		t.Errorf("survivor outcomes differ: %v vs %v", outcomes[0], outcomes[1])
	}
}

func TestTasksCommuteWithDisjointParticipants(t *testing.T) {
	// Claim 2 of Lemma 8: tasks with disjoint participants commute. Sample
	// over the reachable graph of the forward candidate.
	sys := mustForward(t, 2, 1, service.Adversarial)
	c, err := explore.ClassifyInits(sys, explore.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	g := c.Graph
	tasks := sys.Tasks()
	checked := 0
	// Scan the whole reachable graph from all roots for applicable disjoint
	// pairs.
	seen := make([]bool, g.Size())
	queue := append([]explore.StateID{}, c.Roots...)
	for head := 0; head < len(queue); head++ {
		id := queue[head]
		if seen[id] {
			continue
		}
		seen[id] = true
		st, ok := g.State(id)
		if !ok {
			continue
		}
		for i := 0; i < len(tasks); i++ {
			for j := i + 1; j < len(tasks); j++ {
				if !sys.Applicable(st, tasks[i]) || !sys.Applicable(st, tasks[j]) {
					continue
				}
				if explore.ParticipantsDisjoint(sys, st, tasks[i], tasks[j]) {
					checked++
					if !explore.TasksCommute(sys, st, tasks[i], tasks[j]) {
						t.Fatalf("disjoint tasks %v, %v do not commute at %q", tasks[i], tasks[j], g.Fingerprint(id))
					}
				}
			}
		}
		for _, e := range g.Succs(id) {
			queue = append(queue, e.To)
		}
	}
	if checked == 0 {
		t.Error("no disjoint applicable task pairs found anywhere in the graph")
	}
}

func TestRefuteForwardCandidateTheorem2(t *testing.T) {
	// Theorem 2 instance: 0-resilient consensus object cannot implement
	// 1-resilient consensus (n = 2, f = 0 < n−1 = 1).
	sys := mustForward(t, 2, 0, service.Adversarial)
	report, err := explore.Refute(sys, 1, explore.RefuteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Violated() {
		t.Fatalf("expected refutation:\n%s", report)
	}
	if report.Primary().Kind != explore.KindTermination {
		t.Errorf("primary violation: %v (want termination)", report.Primary().Kind)
	}
	if !report.Primary().Diverged {
		t.Error("termination certificate should come from a provable cycle")
	}
	if report.HookSearch == nil || report.HookSearch.Hook == nil {
		t.Error("expected the hook to be exhibited on the way")
	}
}

func TestRefuteAcceptsTrueResilience(t *testing.T) {
	// The same protocol with a wait-free object genuinely solves
	// 1-resilient consensus for 2 processes (f = |J|−1 = 1 is not < n−1,
	// so Theorem 2 does not apply): no violation is found.
	sys := mustForward(t, 2, 1, service.Adversarial)
	report, err := explore.Refute(sys, 1, explore.RefuteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if report.Violated() {
		t.Fatalf("false refutation:\n%s", report)
	}
}

func TestRefuteTOBCandidateTheorem9(t *testing.T) {
	// Theorem 9 instance: a 0-resilient failure-oblivious service (totally
	// ordered broadcast) cannot implement 1-resilient consensus.
	sys, err := protocols.BuildTOBConsensus(2, 0, service.Adversarial)
	if err != nil {
		t.Fatal(err)
	}
	report, err := explore.Refute(sys, 1, explore.RefuteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Violated() {
		t.Fatalf("expected refutation:\n%s", report)
	}
	if report.Primary().Kind != explore.KindTermination {
		t.Errorf("primary violation: %v", report.Primary().Kind)
	}
}

func TestRefuteThreeProcesses(t *testing.T) {
	// Theorem 2 at n = 3, f = 1 < n−1 = 2: a 1-resilient object cannot
	// give 2-resilient consensus.
	sys := mustForward(t, 3, 1, service.Adversarial)
	report, err := explore.Refute(sys, 2, explore.RefuteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Violated() {
		t.Fatalf("expected refutation:\n%s", report)
	}
}

func TestBuildGraphStateLimit(t *testing.T) {
	sys := mustForward(t, 2, 0, service.Adversarial)
	root, _, err := initAll(sys)
	if err != nil {
		t.Fatal(err)
	}
	_, err = explore.BuildGraph(sys, []system.State{root}, explore.BuildOptions{MaxStates: 3})
	if !errors.Is(err, explore.ErrStateExplosion) {
		t.Errorf("want state-explosion error, got %v", err)
	}
}

func TestFindHookRequiresBivalentRoot(t *testing.T) {
	sys := mustForward(t, 2, 0, service.Adversarial)
	c, err := explore.ClassifyInits(sys, explore.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Root 0 is 0-valent.
	if _, err := explore.FindHook(c.Graph, c.Roots[0]); !errors.Is(err, explore.ErrNotBivalent) {
		t.Errorf("want ErrNotBivalent, got %v", err)
	}
}

func TestRandomScheduleSafety(t *testing.T) {
	sys := mustForward(t, 3, 2, service.Adversarial)
	for seed := int64(0); seed < 20; seed++ {
		res, err := explore.Random(sys, explore.RunConfig{
			Inputs: map[int]string{0: "1", 1: "0", 2: "1"},
		}, seed, 2000)
		if err != nil {
			t.Fatal(err)
		}
		var vals []string
		for _, v := range res.Decisions {
			vals = append(vals, v)
		}
		for _, v := range vals {
			if v != "0" && v != "1" {
				t.Fatalf("seed %d: invalid decision %q", seed, v)
			}
		}
		for i := 1; i < len(vals); i++ {
			if vals[i] != vals[0] {
				t.Fatalf("seed %d: agreement violated: %v", seed, res.Decisions)
			}
		}
	}
}

// initAll delivers mixed inputs to all processes of sys.
func initAll(sys *system.System) (system.State, map[int]string, error) {
	inputs := map[int]string{}
	for idx, id := range sys.ProcessIDs() {
		if idx%2 == 0 {
			inputs[id] = "0"
		} else {
			inputs[id] = "1"
		}
	}
	st := sys.InitialState()
	for _, id := range sys.ProcessIDs() {
		next, _, err := sys.Init(st, id, inputs[id])
		if err != nil {
			return system.State{}, nil, err
		}
		st = next
	}
	return st, inputs, nil
}

func TestRefuteFloodSetWithWeakPTheorem10(t *testing.T) {
	// Theorem 10 instance: an f-resilient general service (perfect failure
	// detector) connected to ALL processes cannot give (f+1)-resilient
	// consensus. FloodSet with a 0-resilient all-connected P, claiming
	// tolerance 1 (rounds = 2): one failure silences P, the survivor polls
	// forever. Graph analysis is skipped (detector pushes make the
	// failure-free graph infinite); the scenario phase finds the
	// certificate.
	sys, err := protocols.BuildFloodSetWithP(3, 0, 2, service.Adversarial)
	if err != nil {
		t.Fatal(err)
	}
	report, err := explore.Refute(sys, 1, explore.RefuteOptions{SkipGraphAnalysis: true, MaxRounds: 500})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Violated() {
		t.Fatalf("expected Theorem 10 refutation:\n%s", report)
	}
	if report.Primary().Kind != explore.KindTermination {
		t.Errorf("primary violation: %v", report.Primary().Kind)
	}
}

func TestRefuteAcceptsFDBoost(t *testing.T) {
	// The Section 6.3 boost (pairwise 1-resilient detectors, arbitrary
	// connection pattern) escapes Theorem 10: claiming n−1 = 2 tolerated
	// failures survives refutation.
	sys, err := protocols.BuildFDBoost(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	report, err := explore.Refute(sys, 2, explore.RefuteOptions{SkipGraphAnalysis: true, MaxRounds: 500})
	if err != nil {
		t.Fatal(err)
	}
	if report.Violated() {
		t.Fatalf("false refutation of the FD boost:\n%s", report)
	}
}

func TestRefuteRegisterVoteSafety(t *testing.T) {
	// The naive register-only candidate loses *safety*: the exhaustive
	// failure-free sweep finds an agreement violation (a reachable state in
	// which two processes decided differently).
	sys, err := protocols.BuildRegisterVote(2)
	if err != nil {
		t.Fatal(err)
	}
	report, err := explore.Refute(sys, 1, explore.RefuteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Violated() {
		t.Fatalf("expected refutation:\n%s", report)
	}
	if report.Primary().Kind != explore.KindAgreement {
		t.Errorf("primary violation: %v (want agreement, from the safety sweep)", report.Primary().Kind)
	}
}

func TestSetBoostIsNotConsensus(t *testing.T) {
	// Cross-check of the Section 4 boundary: the set-boost system solves
	// 2-set consensus but NOT consensus — the two groups can decide
	// different values, and the refuter's failure-free sweep finds the
	// disagreement.
	sys, err := protocols.BuildSetBoost(2)
	if err != nil {
		t.Fatal(err)
	}
	report, err := explore.Refute(sys, 1, explore.RefuteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Violated() {
		t.Fatalf("set-boost passed as consensus:\n%s", report)
	}
	if report.Primary().Kind != explore.KindAgreement {
		t.Errorf("primary violation: %v (want agreement across groups)", report.Primary().Kind)
	}
}

func TestFindHookOnTOBCandidateTheorem9(t *testing.T) {
	// Theorem 9's proof reuses the hook machinery on failure-oblivious
	// services: the TOB candidate's mixed initialization is bivalent (the
	// global compute task's pick of the first ordered message decides the
	// winner), and the Fig. 3 construction exhibits a hook whose univalent
	// ends are similar at the broadcast service.
	sys, err := protocols.BuildTOBConsensus(2, 0, service.Adversarial)
	if err != nil {
		t.Fatal(err)
	}
	c, err := explore.ClassifyInits(sys, explore.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c.BivalentIndex < 0 {
		t.Fatal("no bivalent init for the TOB candidate")
	}
	res, err := explore.FindHook(c.Graph, c.Roots[c.BivalentIndex])
	if err != nil {
		t.Fatal(err)
	}
	if res.Hook == nil {
		t.Fatalf("expected a hook, got %+v", res)
	}
	s0, _ := c.Graph.State(res.Hook.Alpha0)
	s1, _ := c.Graph.State(res.Hook.Alpha1)
	who, similar := explore.SomeSimilarity(sys, s0, s1, explore.SimilarityOptions{})
	if !similar || who != "b0" {
		t.Errorf("hook-end similarity: %q %v (want b0)", who, similar)
	}
}

func TestRefuteKSetBoundary(t *testing.T) {
	// The Section 4 boundary, measured: the set-boost system survives the
	// k-set refuter at k = 2 with the full wait-free claim (2n−1 = 3
	// failures), and is refuted at k = 1 (consensus).
	sys, err := protocols.BuildSetBoost(2)
	if err != nil {
		t.Fatal(err)
	}
	asTwoSet, err := explore.RefuteKSet(sys, 2, 3, explore.RefuteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if asTwoSet.Violated() {
		t.Fatalf("2-set claim refuted:\n%s", asTwoSet)
	}
	asConsensus, err := explore.RefuteKSet(sys, 1, 1, explore.RefuteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !asConsensus.Violated() {
		t.Fatal("1-set (consensus) claim not refuted")
	}
	if asConsensus.Primary().Kind != explore.KindAgreement {
		t.Errorf("violation kind: %v", asConsensus.Primary().Kind)
	}
}

func TestLemma3NoUnvalentStates(t *testing.T) {
	// Lemma 3: every finite failure-free input-first execution of a correct
	// candidate is bivalent or univalent — equivalently, no reachable
	// vertex of G(C) is unvalent (decision-free in all extensions).
	sys := mustForward(t, 2, 1, service.Adversarial)
	c, err := explore.ClassifyInits(sys, explore.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	g := c.Graph
	seen := make([]bool, g.Size())
	queue := append([]explore.StateID{}, c.Roots...)
	checked := 0
	for head := 0; head < len(queue); head++ {
		id := queue[head]
		if seen[id] {
			continue
		}
		seen[id] = true
		checked++
		if g.Valence(id) == explore.Unvalent {
			t.Fatalf("unvalent reachable state found (Lemma 3 violated for a correct candidate)")
		}
		for _, e := range g.Succs(id) {
			queue = append(queue, e.To)
		}
	}
	if checked < 10 {
		t.Fatalf("suspiciously few states checked: %d", checked)
	}
}

func TestRefuteClaimZeroIsFailureFreeOnly(t *testing.T) {
	// claimed = 0: only failure-free behaviour is demanded (the f = 0 end
	// of the paper's spectrum). The forward candidate with a 0-resilient
	// object genuinely solves 0-resilient consensus, so no certificate.
	sys := mustForward(t, 2, 0, service.Adversarial)
	report, err := explore.Refute(sys, 0, explore.RefuteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if report.Violated() {
		t.Fatalf("false refutation at claimed 0:\n%s", report)
	}
}

func TestRefuteClaimBeyondProcessCount(t *testing.T) {
	// Claiming more failures than processes: every failure set has all
	// processes dead, so termination is vacuous; with safety intact, no
	// violation for the wait-free candidate.
	sys := mustForward(t, 2, 1, service.Adversarial)
	report, err := explore.Refute(sys, 5, explore.RefuteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if report.Violated() {
		t.Fatalf("false refutation at claimed 5:\n%s", report)
	}
}
