package explore

import (
	"encoding/json"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDurableManifestRoundTrip is the manifest round-trip property:
// seal → writeManifest → ReadManifest is the identity on every field,
// for a deterministic sweep of pseudo-random manifests.
func TestDurableManifestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5eed)) //lint:boostvet-ignore determinism — fixed-seed property sweep, identical on every run
	hexdig := "0123456789abcdef"
	randHex := func(n int) string {
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte(hexdig[rng.Intn(16)])
		}
		return b.String()
	}
	dir := t.TempDir()
	for i := 0; i < 50; i++ {
		in := Manifest{
			Format:           manifestFormat,
			Shape:            randHex(2 * rng.Intn(40)),
			GraphID:          randHex(2 * rng.Intn(40)),
			Symmetry:         rng.Intn(2) == 1,
			Witnesses:        rng.Intn(2) == 1,
			States:           rng.Intn(1 << 20),
			Edges:            rng.Intn(1 << 22),
			Roots:            rng.Intn(16),
			Levels:           rng.Intn(64),
			FingerprintBytes: rng.Int63n(1 << 40),
			EdgeBytes:        rng.Int63n(1 << 40),
			IndexBytes:       rng.Int63n(1 << 30),
			IndexSum:         randHex(16),
		}
		if err := writeManifest(dir, &in); err != nil {
			t.Fatalf("write #%d: %v", i, err)
		}
		out, err := ReadManifest(dir)
		if err != nil {
			t.Fatalf("read #%d: %v", i, err)
		}
		if *out != in {
			t.Fatalf("round trip #%d:\n  wrote %+v\n  read  %+v", i, in, *out)
		}
	}
}

// TestDurableManifestCorruption drives ReadManifest through the failure
// table: every corruption is reported as a typed *ManifestError with a
// recognizable reason, never a silent success or an untyped error.
func TestDurableManifestCorruption(t *testing.T) {
	valid := func(t *testing.T) (string, *Manifest) {
		t.Helper()
		dir := t.TempDir()
		m := &Manifest{Format: manifestFormat, Shape: "ab", GraphID: "cd",
			States: 7, Edges: 9, Roots: 1, IndexSum: "00"}
		if err := writeManifest(dir, m); err != nil {
			t.Fatal(err)
		}
		return dir, m
	}
	cases := []struct {
		name    string
		corrupt func(t *testing.T, dir string, m *Manifest)
		reason  string
	}{
		{
			name:    "missing",
			corrupt: func(t *testing.T, dir string, _ *Manifest) { mustRemove(t, filepath.Join(dir, manifestName)) },
			reason:  "read manifest",
		},
		{
			name: "truncated",
			corrupt: func(t *testing.T, dir string, _ *Manifest) {
				path := filepath.Join(dir, manifestName)
				raw, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, raw[:len(raw)/2], 0o666); err != nil {
					t.Fatal(err)
				}
			},
			reason: "parse manifest",
		},
		{
			name: "checksum mismatch",
			corrupt: func(t *testing.T, dir string, m *Manifest) {
				// Re-marshal with a tampered field but the original
				// checksum: valid JSON, wrong self-hash.
				m.States++
				raw, err := json.Marshal(m)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join(dir, manifestName), raw, 0o666); err != nil {
					t.Fatal(err)
				}
			},
			reason: "manifest checksum mismatch",
		},
		{
			name: "stale format",
			corrupt: func(t *testing.T, dir string, m *Manifest) {
				// A future format version, correctly self-checksummed:
				// rejected on version, not on integrity.
				m.Format = manifestFormat + 1
				if err := m.seal(); err != nil {
					t.Fatal(err)
				}
				raw, err := json.Marshal(m)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join(dir, manifestName), raw, 0o666); err != nil {
					t.Fatal(err)
				}
			},
			reason: "unsupported manifest format",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir, m := valid(t)
			if _, err := ReadManifest(dir); err != nil {
				t.Fatalf("pristine manifest rejected: %v", err)
			}
			tc.corrupt(t, dir, m)
			_, err := ReadManifest(dir)
			var merr *ManifestError
			if !errors.As(err, &merr) {
				t.Fatalf("want *ManifestError, got %T: %v", err, err)
			}
			if !strings.Contains(merr.Reason, tc.reason) {
				t.Errorf("reason %q does not mention %q", merr.Reason, tc.reason)
			}
			if merr.Dir != dir {
				t.Errorf("Dir = %q, want %q", merr.Dir, dir)
			}
		})
	}
}

func mustRemove(t *testing.T, path string) {
	t.Helper()
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
}
