package explore

import (
	"bufio"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/ioa-lab/boosting/internal/ioa"
	"github.com/ioa-lab/boosting/internal/system"
)

// indexMagic heads the index file; it shares the manifest's format
// version, so a layout change invalidates both together.
const indexMagic = "boosting-graph-index"

// appendString encodes a length-prefixed string.
func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// appendTask encodes one dictionary task.
func appendTask(dst []byte, t ioa.Task) []byte {
	dst = binary.AppendUvarint(dst, uint64(t.Kind))
	dst = binary.AppendVarint(dst, int64(t.Proc))
	dst = appendString(dst, t.Service)
	return appendString(dst, t.Global)
}

// appendAction encodes one dictionary action.
func appendAction(dst []byte, a ioa.Action) []byte {
	dst = binary.AppendUvarint(dst, uint64(a.Type))
	dst = binary.AppendVarint(dst, int64(a.Proc))
	dst = appendString(dst, a.Service)
	return appendString(dst, a.Payload)
}

// encodeIndex serializes everything a reopen needs beyond the two data
// files: the task/action dictionaries the edge blocks reference, the
// per-vertex fingerprint and edge-block lengths (offsets are cumulative —
// both files are append-only in ID order), the final valence masks, the
// optional predecessor links (dictionary-indexed), the roots and the
// per-level seal offsets.
func encodeIndex(g *Graph, s *spillStore) []byte {
	n := s.Len()
	buf := make([]byte, 0, 64+8*n)
	buf = append(buf, indexMagic...)
	buf = binary.AppendUvarint(buf, manifestFormat)

	// Predecessor links may reference task/action values that only occur
	// on BFS-tree edges; make sure the dictionaries cover them before the
	// dictionaries are written.
	for _, p := range s.predTable.list {
		if !p.has {
			continue
		}
		s.dictTask(p.task)
		s.dictAction(p.act)
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.tasks)))
	for _, t := range s.tasks {
		buf = appendTask(buf, t)
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.acts)))
	for _, a := range s.acts {
		buf = appendAction(buf, a)
	}

	buf = binary.AppendUvarint(buf, uint64(n))
	for i := 0; i < n; i++ {
		buf = binary.AppendUvarint(buf, uint64(s.lens[i]))
		buf = binary.AppendUvarint(buf, uint64(s.elens[i]))
		// Final valence mask plus the intern-time own-decision mask: the
		// own mask is the fixpoint seed, persisted so incremental recheck
		// can prove "nothing changed" without re-running the fixpoint.
		buf = append(buf, g.masks[i], g.ownMasks[i])
	}

	if s.predTable.keep {
		buf = append(buf, 1)
		for i := 0; i < n; i++ {
			p := s.predTable.Pred(StateID(i))
			if !p.has {
				buf = append(buf, 0)
				continue
			}
			buf = append(buf, 1)
			buf = binary.AppendUvarint(buf, uint64(p.from))
			buf = binary.AppendUvarint(buf, uint64(s.dictTask(p.task)))
			buf = binary.AppendUvarint(buf, uint64(s.dictAction(p.act)))
		}
	} else {
		buf = append(buf, 0)
	}

	buf = binary.AppendUvarint(buf, uint64(len(g.roots)))
	for _, r := range g.roots {
		buf = binary.AppendUvarint(buf, uint64(r))
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.seals)))
	for _, m := range s.seals {
		buf = binary.AppendUvarint(buf, uint64(m.states))
		buf = binary.AppendUvarint(buf, uint64(m.edgeOff))
	}
	return buf
}

// indexReader decodes the index buffer with positioned errors.
type indexReader struct {
	buf []byte
	pos int
	err error
}

func (r *indexReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("corrupt index at byte %d: %s", r.pos, what)
	}
}

func (r *indexReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, k := binary.Uvarint(r.buf[r.pos:])
	if k <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.pos += k
	return v
}

func (r *indexReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, k := binary.Varint(r.buf[r.pos:])
	if k <= 0 {
		r.fail("bad varint")
		return 0
	}
	r.pos += k
	return v
}

func (r *indexReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.pos >= len(r.buf) {
		r.fail("truncated")
		return 0
	}
	b := r.buf[r.pos]
	r.pos++
	return b
}

func (r *indexReader) string() string {
	n := int(r.uvarint())
	if r.err != nil {
		return ""
	}
	if n < 0 || r.pos+n > len(r.buf) {
		r.fail("string past end")
		return ""
	}
	s := string(r.buf[r.pos : r.pos+n])
	r.pos += n
	return s
}

// count validates a decoded element count against the bytes that remain:
// every element occupies at least min bytes, so a count the buffer cannot
// possibly hold is corruption, caught before it sizes an allocation.
func (r *indexReader) count(min int) int {
	n := r.uvarint()
	if r.err != nil {
		return 0
	}
	if min < 1 {
		min = 1
	}
	if n > uint64((len(r.buf)-r.pos)/min+1) {
		r.fail(fmt.Sprintf("implausible count %d", n))
		return 0
	}
	return int(n)
}

// decodedIndex is the parsed index file.
type decodedIndex struct {
	tasks []ioa.Task
	acts  []ioa.Action
	lens  []uint32
	elens []uint32
	masks []uint8
	own   []uint8
	preds []pred // nil when witnesses were not persisted
	roots []StateID
	seals []sealMark
}

func decodeIndex(buf []byte) (*decodedIndex, error) {
	if len(buf) < len(indexMagic) || string(buf[:len(indexMagic)]) != indexMagic {
		return nil, fmt.Errorf("index magic missing")
	}
	r := &indexReader{buf: buf, pos: len(indexMagic)}
	if v := r.uvarint(); r.err == nil && v != manifestFormat {
		return nil, fmt.Errorf("index format %d (want %d)", v, manifestFormat)
	}
	out := &decodedIndex{}
	nt := r.count(4)
	out.tasks = make([]ioa.Task, 0, nt)
	for i := 0; i < nt && r.err == nil; i++ {
		t := ioa.Task{Kind: ioa.TaskKind(r.uvarint()), Proc: int(r.varint())}
		t.Service = r.string()
		t.Global = r.string()
		out.tasks = append(out.tasks, t)
	}
	na := r.count(4)
	out.acts = make([]ioa.Action, 0, na)
	for i := 0; i < na && r.err == nil; i++ {
		a := ioa.Action{Type: ioa.ActionType(r.uvarint()), Proc: int(r.varint())}
		a.Service = r.string()
		a.Payload = r.string()
		out.acts = append(out.acts, a)
	}
	n := r.count(4)
	out.lens = make([]uint32, 0, n)
	out.elens = make([]uint32, 0, n)
	out.masks = make([]uint8, 0, n)
	out.own = make([]uint8, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out.lens = append(out.lens, uint32(r.uvarint()))
		out.elens = append(out.elens, uint32(r.uvarint()))
		out.masks = append(out.masks, r.byte())
		out.own = append(out.own, r.byte())
	}
	if r.byte() == 1 {
		out.preds = make([]pred, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			if r.byte() == 0 {
				out.preds = append(out.preds, pred{})
				continue
			}
			p := pred{has: true, from: StateID(r.uvarint())}
			ti, ai := r.uvarint(), r.uvarint()
			if r.err == nil && (ti >= uint64(len(out.tasks)) || ai >= uint64(len(out.acts))) {
				r.fail("predecessor dictionary index out of range")
				break
			}
			if r.err == nil {
				p.task, p.act = out.tasks[ti], out.acts[ai]
			}
			out.preds = append(out.preds, p)
		}
	}
	nr := r.count(1)
	out.roots = make([]StateID, 0, nr)
	for i := 0; i < nr && r.err == nil; i++ {
		id := r.uvarint()
		if r.err == nil && id >= uint64(n) {
			r.fail("root id out of range")
			break
		}
		out.roots = append(out.roots, StateID(id))
	}
	ns := r.count(2)
	out.seals = make([]sealMark, 0, ns)
	for i := 0; i < ns && r.err == nil; i++ {
		out.seals = append(out.seals, sealMark{states: int(r.uvarint()), edgeOff: int64(r.uvarint())})
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.pos != len(buf) {
		return nil, fmt.Errorf("%d trailing bytes after index", len(buf)-r.pos)
	}
	return out, nil
}

// dictTask resolves (inserting if needed) a task's dictionary index.
func (s *spillStore) dictTask(t ioa.Task) uint32 {
	ti, ok := s.taskIdx[t]
	if !ok {
		ti = uint32(len(s.tasks))
		s.taskIdx[t] = ti
		s.tasks = append(s.tasks, t)
	}
	return ti
}

// dictAction resolves (inserting if needed) an action's dictionary index.
func (s *spillStore) dictAction(a ioa.Action) uint32 {
	ai, ok := s.actIdx[a]
	if !ok {
		ai = uint32(len(s.acts))
		s.actIdx[a] = ai
		s.acts = append(s.acts, a)
	}
	return ai
}

// commitDurable finishes a durable build: flush and sync the data files,
// write the index, then commit the manifest via write-temp-then-rename.
// A no-op for ephemeral builds. Called after the valence fixpoint, so the
// persisted masks are final.
func commitDurable(g *Graph, opt BuildOptions) error {
	if opt.GraphDir == "" {
		return nil
	}
	s, ok := g.store.(*spillStore)
	if !ok {
		return fmt.Errorf("explore: durable commit: store is not the spill backend")
	}
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("explore: durable commit: flush fingerprints: %w", err)
	}
	if err := s.file.Sync(); err != nil {
		return fmt.Errorf("explore: durable commit: sync fingerprints: %w", err)
	}
	if err := s.efile.Sync(); err != nil {
		return fmt.Errorf("explore: durable commit: sync edges: %w", err)
	}
	idx := encodeIndex(g, s)
	idxPath := filepath.Join(opt.GraphDir, indexFileName)
	if err := writeFileSync(idxPath, idx); err != nil {
		return fmt.Errorf("explore: durable commit: write index: %w", err)
	}
	m := &Manifest{
		Format:           manifestFormat,
		Shape:            hex.EncodeToString(ShapeFingerprint(g.sys)),
		GraphID:          hex.EncodeToString(opt.GraphID),
		Symmetry:         opt.Symmetry != nil,
		Witnesses:        !opt.NoWitnesses,
		States:           s.Len(),
		Edges:            g.edges,
		Roots:            len(g.roots),
		Levels:           len(s.seals),
		FingerprintBytes: s.wOff,
		EdgeBytes:        s.flushedOff,
		IndexBytes:       int64(len(idx)),
		IndexSum:         sum64(idx),
	}
	if err := writeManifest(opt.GraphDir, m); err != nil {
		return err
	}
	g.manifest = m
	g.graphDir = opt.GraphDir
	return nil
}

// writeFileSync writes a file and fsyncs it before closing.
func writeFileSync(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err = f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// OpenOptions constrains OpenGraph's manifest validation beyond the
// always-on checks (format version, checksums, file lengths, shape).
type OpenOptions struct {
	// GraphID, when non-nil, must match the manifest's recorded full
	// identity byte-for-byte — the exact-reopen mode. nil skips the check
	// (shape-validated open, the incremental-recheck mode).
	GraphID []byte
	// RequireWitnesses rejects graphs persisted without predecessor links.
	RequireWitnesses bool
}

// OpenGraph validates a committed durable graph directory and reattaches
// it as a read-only graph without exploring a state: manifest format and
// self-checksum, data-file lengths, index checksum, and the shape
// fingerprint of sys against the manifest's. The returned graph is
// per-ID and per-edge identical to the one the durable build produced —
// same StateIDs, fingerprints, edges, valences, roots and witness links —
// and its states decode under sys (any same-shape candidate). Close it
// with CloseGraphStore like any spill-backed graph. All validation
// failures are typed *ManifestError values.
func OpenGraph(sys *system.System, dir string, opt OpenOptions) (*Graph, error) {
	m, err := ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	if want := hex.EncodeToString(ShapeFingerprint(sys)); m.Shape != want {
		return nil, &ManifestError{Dir: dir,
			Reason: "shape mismatch: the graph was built for a structurally different system"}
	}
	if opt.GraphID != nil && m.GraphID != hex.EncodeToString(opt.GraphID) {
		return nil, &ManifestError{Dir: dir,
			Reason: "graph identity mismatch: the directory holds a different candidate's graph (build-option tuple or roots differ)"}
	}
	if opt.RequireWitnesses && !m.Witnesses {
		return nil, &ManifestError{Dir: dir,
			Reason: "graph was persisted without witness predecessor links"}
	}
	idx, err := os.ReadFile(filepath.Join(dir, indexFileName))
	if err != nil {
		return nil, &ManifestError{Dir: dir, Reason: "read index", Err: err}
	}
	if int64(len(idx)) != m.IndexBytes {
		return nil, &ManifestError{Dir: dir,
			Reason: fmt.Sprintf("index is %d bytes, manifest records %d", len(idx), m.IndexBytes)}
	}
	if got := sum64(idx); got != m.IndexSum {
		return nil, &ManifestError{Dir: dir, Reason: "index checksum mismatch"}
	}
	dec, err := decodeIndex(idx)
	if err != nil {
		return nil, &ManifestError{Dir: dir, Reason: "decode index", Err: err}
	}
	if len(dec.lens) != m.States || len(dec.roots) != m.Roots {
		return nil, &ManifestError{Dir: dir, Reason: "index counts disagree with manifest"}
	}
	files, err := openGraphFiles(dir, m)
	if err != nil {
		return nil, err
	}
	s, err := reattachSpillStore(sys, files, m, dec)
	if err != nil {
		_ = files.close()
		return nil, &ManifestError{Dir: dir, Reason: "reattach store", Err: err}
	}
	return &Graph{
		sys:      sys,
		store:    s,
		roots:    dec.roots,
		edges:    m.Edges,
		masks:    dec.masks,
		ownMasks: dec.own,
		keepOwn:  true,
		manifest: m,
		graphDir: dir,
	}, nil
}

// reattachSpillStore rebuilds a read-only spillStore over a committed
// file set: offsets are reconstructed from the per-vertex lengths (both
// data files are append-only in ID order), and the dedup index — hash
// buckets plus second-stream hashes — is rebuilt by streaming the
// fingerprint file once, which doubles as an integrity pass over every
// stored byte.
func reattachSpillStore(sys *system.System, files *graphFiles, m *Manifest, dec *decodedIndex) (*spillStore, error) {
	n := len(dec.lens)
	s := &spillStore{
		enc:       sys.AppendFingerprint,
		dec:       sys.ParseFingerprint,
		hash:      fpHash,
		buckets:   make(map[uint64][]StateID, n),
		hash2:     make([]uint64, 0, n),
		offs:      make([]int64, n),
		lens:      dec.lens,
		predTable: predTable{keep: dec.preds != nil, list: dec.preds},
		files:     files,
		file:      files.fp,
		readonly:  true,
		batch:     spillBatch,
		// pendingBase at Len(): no vertex is resident, every read preads.
		pendingBase: n,
	}
	s.bufs.New = func() any { b := make([]byte, 0, 256); return &b }
	s.matchB = s.matches
	var off int64
	for i, l := range dec.lens {
		s.offs[i] = off
		off += int64(l)
	}
	if off != m.FingerprintBytes {
		return nil, fmt.Errorf("fingerprint lengths sum to %d, file has %d", off, m.FingerprintBytes)
	}
	// Adjacency face: sealed throughout, EdgesFrom always preads.
	s.spillEdges.owner = s
	s.spillEdges.efile = files.edges
	s.spillEdges.eoffs = make([]int64, n)
	s.spillEdges.elens = dec.elens
	s.spillEdges.tasks = dec.tasks
	s.spillEdges.acts = dec.acts
	s.spillEdges.seals = dec.seals
	s.spillEdges.ebufs.New = func() any { b := make([]byte, 0, 256); return &b }
	var eoff int64
	for i, l := range dec.elens {
		s.spillEdges.eoffs[i] = eoff
		eoff += int64(l)
	}
	if eoff != m.EdgeBytes {
		return nil, fmt.Errorf("edge-block lengths sum to %d, file has %d", eoff, m.EdgeBytes)
	}
	s.spillEdges.flushedOff = eoff
	s.wOff = off

	// Rebuild the dedup index: one sequential pass over the fingerprint
	// file. Recheck resolves candidate states against this graph through
	// Lookup, so the buckets must be live, not dropped like releaseDedup
	// leaves them.
	br := bufio.NewReaderSize(files.fp, 256<<10)
	buf := make([]byte, 0, 256)
	for i := 0; i < n; i++ {
		l := int(dec.lens[i])
		if cap(buf) < l {
			buf = make([]byte, l)
		}
		buf = buf[:l]
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("read fingerprint of state %d: %w", i, err)
		}
		h1, h2 := fpHash(buf)
		s.buckets[h1] = append(s.buckets[h1], StateID(i))
		s.hash2 = append(s.hash2, h2)
	}
	return s, nil
}

// BuildOrReopenGraph is BuildGraph with the durable fast path: when the
// graph directory already holds a committed graph whose full identity
// (GraphID), symmetry flag and witness flag all match the requested
// build exactly, the graph is reopened without exploring a state;
// otherwise — no manifest, identity mismatch, damaged files — it is
// rebuilt from scratch into the directory, replacing whatever was there.
// A reopen is attempted only when opt.GraphID is non-nil: without a full
// identity there is no sound way to tell a matching graph from a stale
// one. Ephemeral builds (GraphDir == "") pass straight through.
func BuildOrReopenGraph(sys *system.System, roots []system.State, opt BuildOptions) (*Graph, error) {
	if g := tryReopen(sys, opt); g != nil {
		return g, nil
	}
	return BuildGraph(sys, roots, opt)
}

// tryReopen attempts the durable fast path, returning nil on any
// mismatch or damage so the caller falls back to a full build.
func tryReopen(sys *system.System, opt BuildOptions) *Graph {
	if opt.GraphDir == "" || opt.GraphID == nil || !HasManifest(opt.GraphDir) {
		return nil
	}
	// The symmetry and witness flags are compared against the manifest
	// rather than folded into GraphID: the canonical identity is
	// deliberately invariant under engine options, but a quotient graph
	// is not the full graph and a witness-less graph cannot serve
	// witness paths, so either mismatch forces a rebuild.
	m, err := ReadManifest(opt.GraphDir)
	if err != nil || m.Symmetry != (opt.Symmetry != nil) || m.Witnesses != !opt.NoWitnesses {
		return nil
	}
	g, err := OpenGraph(sys, opt.GraphDir, OpenOptions{GraphID: opt.GraphID})
	if err != nil {
		return nil
	}
	return g
}

// GraphManifest returns the manifest of a durable graph — one built with
// GraphDir or reopened via OpenGraph — with ok == false for ephemeral
// graphs. The returned manifest is shared, not copied; treat it as
// read-only.
func GraphManifest(g *Graph) (*Manifest, bool) {
	if g == nil || g.manifest == nil {
		return nil, false
	}
	return g.manifest, true
}

// GraphDirOf returns the durable directory a graph was built into or
// reopened from ("" for ephemeral graphs).
func GraphDirOf(g *Graph) string {
	if g == nil {
		return ""
	}
	return g.graphDir
}
