package explore_test

// Tests of the sharded exploration engine (BuildOptions.Shards >= 1): the
// renumbered graph must be IDENTICAL — IDs, edges, valences, witness
// paths — for every shard count, worker count and store backend, and
// isomorphic to the legacy engines' graph; budget overflow, progress
// streaming and cancellation must mirror the legacy engines.

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"github.com/ioa-lab/boosting/internal/explore"
	"github.com/ioa-lab/boosting/internal/protocols"
	"github.com/ioa-lab/boosting/internal/service"
	"github.com/ioa-lab/boosting/internal/symmetry"
	"github.com/ioa-lab/boosting/internal/system"
)

// shardCounts is the shard sweep of the invariance suite; 1 exercises the
// degenerate single-partition engine (still renumbered), 8 exceeds the
// worker count so routing is denser than scheduling.
var shardCounts = []int{1, 2, 8}

// shardStores is the store sweep: dense (interned strings), hash64
// (compaction) and spill (disk-resident vertices and edges) cover all
// three store families behind the VertexStore/AdjacencyStore faces.
var shardStores = []explore.StoreKind{explore.StoreDense, explore.StoreHash64, explore.StoreSpill}

// forwardCanon builds the process-renaming canonicalizer of the forward
// protocol, for the ±symmetry legs of the invariance suite.
func forwardCanon(t *testing.T, sys *system.System, n int) explore.Canonicalizer {
	t.Helper()
	c, err := symmetry.New(sys, protocols.ForwardSymmetry(n))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestShardedInvariance is the acceptance suite of the renumber pass: for
// shards ∈ {1, 2, 8} × stores {dense, hash64, spill} × workers {1, 4} ×
// ±symmetry, every build of the same system yields the IDENTICAL graph —
// same StateIDs, fingerprints, edges, valences, roots and witness paths —
// as the reference build (1 shard, 1 worker, dense store).
func TestShardedInvariance(t *testing.T) {
	sys := mustForward(t, 3, 1, service.Adversarial)
	for _, canon := range []explore.Canonicalizer{nil, forwardCanon(t, sys, 3)} {
		label := "plain"
		if canon != nil {
			label = "symmetry"
		}
		ref, err := explore.ClassifyInits(sys, explore.BuildOptions{Shards: 1, Workers: 1, Symmetry: canon})
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range shardCounts {
			for _, store := range shardStores {
				for _, workers := range []int{1, 4} {
					if testing.Short() && workers == 1 && shards > 1 {
						continue
					}
					got, err := explore.ClassifyInits(sys, explore.BuildOptions{
						Shards: shards, Workers: workers, Store: store, Symmetry: canon})
					if err != nil {
						t.Fatalf("%s shards=%d store=%v workers=%d: %v", label, shards, store, workers, err)
					}
					assertExploreGraphsIdentical(t, label, ref.Graph, got.Graph)
					if got.BivalentIndex != ref.BivalentIndex {
						t.Errorf("%s shards=%d store=%v workers=%d: bivalent index %d, want %d",
							label, shards, store, workers, got.BivalentIndex, ref.BivalentIndex)
					}
				}
			}
		}
	}
}

// assertExploreGraphsIdentical is the per-ID identity check of the
// invariance suite: fingerprints, valences, edges, roots and witness paths
// must match exactly.
func assertExploreGraphsIdentical(t *testing.T, label string, want, got *explore.Graph) {
	t.Helper()
	if got.Size() != want.Size() || got.Edges() != want.Edges() {
		t.Fatalf("%s: size %d/%d edges %d/%d", label, got.Size(), want.Size(), got.Edges(), want.Edges())
	}
	if len(got.Roots()) != len(want.Roots()) {
		t.Fatalf("%s: root count %d, want %d", label, len(got.Roots()), len(want.Roots()))
	}
	for i, r := range want.Roots() {
		if got.Roots()[i] != r {
			t.Fatalf("%s: root %d is %d, want %d", label, i, got.Roots()[i], r)
		}
	}
	for id := 0; id < want.Size(); id++ {
		sid := explore.StateID(id)
		if got.Fingerprint(sid) != want.Fingerprint(sid) {
			t.Fatalf("%s: fingerprint of %d differs", label, id)
		}
		if got.Valence(sid) != want.Valence(sid) {
			t.Fatalf("%s: valence of %d is %v, want %v", label, id, got.Valence(sid), want.Valence(sid))
		}
		ge, we := got.Succs(sid), want.Succs(sid)
		if len(ge) != len(we) {
			t.Fatalf("%s: degree of %d is %d, want %d", label, id, len(ge), len(we))
		}
		for j := range we {
			if ge[j] != we[j] {
				t.Fatalf("%s: edge %d/%d is %+v, want %+v", label, id, j, ge[j], we[j])
			}
		}
		gw, ww := got.WitnessPath(sid), want.WitnessPath(sid)
		if len(gw) != len(ww) {
			t.Fatalf("%s: witness path of %d has length %d, want %d", label, id, len(gw), len(ww))
		}
		for j := range ww {
			if gw[j] != ww[j] {
				t.Fatalf("%s: witness edge %d of %d is %+v, want %+v", label, id, j, gw[j], ww[j])
			}
		}
	}
}

// TestShardedIsomorphicToSerial checks the sharded graph against the
// legacy serial engine's: the ID orders differ by design (discovery order
// vs per-level fingerprint-hash order), but the vertex sets, per-state
// valences and the edge relation — matched through fingerprints — must be
// the same graph, on every seed protocol.
func TestShardedIsomorphicToSerial(t *testing.T) {
	for name, sys := range seedSystems(t) {
		t.Run(name, func(t *testing.T) {
			serial, err := explore.ClassifyInits(sys, explore.BuildOptions{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			sharded, err := explore.ClassifyInits(sys, explore.BuildOptions{Shards: 4, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			gs, gh := serial.Graph, sharded.Graph
			if gs.Size() != gh.Size() || gs.Edges() != gh.Edges() {
				t.Fatalf("counts differ: serial %d/%d, sharded %d/%d",
					gs.Size(), gs.Edges(), gh.Size(), gh.Edges())
			}
			// Fingerprint-matched vertex bijection: every serial vertex
			// exists in the sharded graph with the same valence and the
			// same out-edges (task, action, target fingerprint).
			for id := 0; id < gs.Size(); id++ {
				sid := explore.StateID(id)
				fp := gs.Fingerprint(sid)
				hid, ok := gh.Lookup(fp)
				if !ok {
					t.Fatalf("serial vertex %d missing from the sharded graph", id)
				}
				if gs.Valence(sid) != gh.Valence(hid) {
					t.Fatalf("valence of %q: serial %v, sharded %v", fp, gs.Valence(sid), gh.Valence(hid))
				}
				se, he := gs.Succs(sid), gh.Succs(hid)
				if len(se) != len(he) {
					t.Fatalf("degree of %q: serial %d, sharded %d", fp, len(se), len(he))
				}
				// Both engines expand tasks in sys.Tasks() order, so the
				// edge lists align index by index.
				for j := range se {
					if se[j].Task != he[j].Task || se[j].Action != he[j].Action ||
						gs.Fingerprint(se[j].To) != gh.Fingerprint(he[j].To) {
						t.Fatalf("edge %d of %q differs: %+v vs %+v", j, fp, se[j], he[j])
					}
				}
			}
			// Roots map to the same states, in input order.
			if len(gs.Roots()) != len(gh.Roots()) {
				t.Fatalf("root counts differ")
			}
			for i, r := range gs.Roots() {
				if gs.Fingerprint(r) != gh.Fingerprint(gh.Roots()[i]) {
					t.Fatalf("root %d maps to a different state", i)
				}
			}
			if serial.BivalentIndex != sharded.BivalentIndex {
				t.Errorf("bivalent index: serial %d, sharded %d", serial.BivalentIndex, sharded.BivalentIndex)
			}
		})
	}
}

// TestShardedStateLimit mirrors TestBuildGraphParallelStateLimit on the
// sharded engine: the budget boundary — exact size succeeds, one less
// overflows — and the typed LimitError with its pinned Explored count must
// match the legacy engines for any shard and worker count.
func TestShardedStateLimit(t *testing.T) {
	sys := mustForward(t, 2, 0, service.Adversarial)
	root, _, err := initAll(sys)
	if err != nil {
		t.Fatal(err)
	}
	full, err := explore.BuildGraph(sys, []system.State{root}, explore.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range shardCounts {
		for _, w := range []int{1, parallelWorkers} {
			g, err := explore.BuildGraph(sys, []system.State{root},
				explore.BuildOptions{MaxStates: full.Size(), Shards: shards, Workers: w})
			if err != nil {
				t.Errorf("shards=%d workers=%d: exact budget %d failed: %v", shards, w, full.Size(), err)
			} else if g.Size() != full.Size() {
				t.Errorf("shards=%d workers=%d: got %d states under exact budget, want %d", shards, w, g.Size(), full.Size())
			}
			_, err = explore.BuildGraph(sys, []system.State{root},
				explore.BuildOptions{MaxStates: full.Size() - 1, Shards: shards, Workers: w})
			if !errors.Is(err, explore.ErrStateExplosion) {
				t.Fatalf("shards=%d workers=%d: budget %d should overflow, got %v", shards, w, full.Size()-1, err)
			}
			var le *explore.LimitError
			if !errors.As(err, &le) {
				t.Fatalf("shards=%d workers=%d: not a *LimitError: %v", shards, w, err)
			}
			// The CAS reservation caps the explored count at the budget
			// regardless of scheduling, so the error is deterministic.
			if le.Limit != full.Size()-1 || le.Explored != full.Size()-1 {
				t.Errorf("shards=%d workers=%d: LimitError{Limit:%d, Explored:%d}, want %d/%d",
					shards, w, le.Limit, le.Explored, full.Size()-1, full.Size()-1)
			}
		}
	}
}

// TestShardedProgress: the sharded engine aggregates per-level reports
// across shards, and the resulting sequence is EXACTLY the serial engine's
// (level membership and cumulative counts are graph properties) — hence
// monotonic in levels, states and edges — for every shard/worker count.
func TestShardedProgress(t *testing.T) {
	sys, root := forwardRoot(t, 3, 0)
	var want []explore.Progress
	if _, err := explore.BuildGraph(sys, []system.State{root}, explore.BuildOptions{
		Workers: 1, Progress: func(p explore.Progress) { want = append(want, p) },
	}); err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("serial engine emitted no progress")
	}
	for _, shards := range shardCounts {
		for _, workers := range []int{1, 4} {
			var got []explore.Progress
			if _, err := explore.BuildGraph(sys, []system.State{root}, explore.BuildOptions{
				Shards: shards, Workers: workers,
				Progress: func(p explore.Progress) { got = append(got, p) },
			}); err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("shards=%d workers=%d: %d reports, want %d", shards, workers, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("shards=%d workers=%d: report %d = %+v, want %+v", shards, workers, i, got[i], want[i])
				}
			}
			// Monotonicity, asserted independently of the serial
			// reference: levels advance by one, totals never decrease.
			for i := range got {
				if got[i].Level != i {
					t.Errorf("shards=%d workers=%d: report %d has level %d", shards, workers, i, got[i].Level)
				}
				if i > 0 && (got[i].States < got[i-1].States || got[i].Edges < got[i-1].Edges) {
					t.Errorf("shards=%d workers=%d: totals regressed at report %d: %+v after %+v",
						shards, workers, i, got[i], got[i-1])
				}
			}
		}
	}
}

// TestShardedWitnessPathsReplay: the canonically recomputed predecessor
// links must form valid executions — every vertex's witness path replays
// edge-by-edge from a root — just like the engines' first-discovery links.
func TestShardedWitnessPathsReplay(t *testing.T) {
	sys := mustForward(t, 2, 0, service.Adversarial)
	c, err := explore.ClassifyInits(sys, explore.BuildOptions{Shards: 4, Workers: parallelWorkers})
	if err != nil {
		t.Fatal(err)
	}
	g := c.Graph
	checked := 0
	walkGraph(t, g, c.Roots[c.BivalentIndex], func(id explore.StateID) {
		path := g.WitnessPath(id)
		for _, root := range g.Roots() {
			if replays(g, root, path, id) {
				checked++
				return
			}
		}
		t.Fatalf("witness path of %d (len %d) replays from no root", id, len(path))
	})
	if checked < 10 {
		t.Fatalf("suspiciously few vertices checked: %d", checked)
	}
}

// TestShardedNoWitnesses: the witness-free mode drops predecessor links on
// the sharded engine too — the renumber pass skips its pred recomputation —
// while counts and valences stay identical.
func TestShardedNoWitnesses(t *testing.T) {
	sys, root := forwardRoot(t, 2, 0)
	ref, err := explore.BuildGraph(sys, []system.State{root}, explore.BuildOptions{Shards: 2, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	g, err := explore.BuildGraph(sys, []system.State{root},
		explore.BuildOptions{Shards: 2, Workers: 4, NoWitnesses: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != ref.Size() || g.Edges() != ref.Edges() {
		t.Fatalf("witness-free counts differ: %d/%d vs %d/%d", g.Size(), g.Edges(), ref.Size(), ref.Edges())
	}
	for id := 0; id < g.Size(); id++ {
		sid := explore.StateID(id)
		if g.Fingerprint(sid) != ref.Fingerprint(sid) || g.Valence(sid) != ref.Valence(sid) {
			t.Fatalf("witness-free vertex %d differs from the witnessed build", id)
		}
		if p := g.WitnessPath(sid); p != nil {
			t.Fatalf("vertex %d has a witness path (%d edges) on a witness-free build", id, len(p))
		}
	}
}

// TestShardedCancellation: a cancelled context surfaces promptly as
// ctx.Err() from inside a sharded build, like the legacy engines.
func TestShardedCancellation(t *testing.T) {
	sys, root := forwardRoot(t, 3, 0)
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	_, err := explore.BuildGraph(sys, []system.State{root}, explore.BuildOptions{
		Shards: 2, Workers: 4, Ctx: ctx,
		Progress: func(explore.Progress) {
			calls++
			if calls == 2 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestShardedSpillStats: sharded spill builds end with the final store's
// own spill files (per-shard scaffolding files are closed by the engine),
// so GraphSpillStats reports the renumbered graph and CloseGraphStore
// releases it deterministically.
func TestShardedSpillStats(t *testing.T) {
	sys, root := forwardRoot(t, 3, 0)
	g, err := explore.BuildGraph(sys, []system.State{root}, explore.BuildOptions{
		Shards: 4, Workers: 4, Store: explore.StoreSpill, SpillDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	stats, ok := explore.GraphSpillStats(g)
	if !ok {
		t.Fatal("sharded spill build did not produce a spill-backed graph")
	}
	if stats.States != g.Size() {
		t.Errorf("spill stats count %d states, graph has %d", stats.States, g.Size())
	}
	if stats.SpillBytes <= 0 || stats.EdgeBytes <= 0 {
		t.Errorf("spill files empty: %+v", stats)
	}
	if err := explore.CloseGraphStore(g); err != nil {
		t.Errorf("close: %v", err)
	}
}

// TestShardedRepeatBuildsIdentical: two builds under maximum scheduling
// freedom (8 shards, 8 workers) are identical per ID — the determinism is
// a property of the renumber pass, not of lucky scheduling.
func TestShardedRepeatBuildsIdentical(t *testing.T) {
	sys := mustForward(t, 3, 0, service.Adversarial)
	a, err := explore.ClassifyInits(sys, explore.BuildOptions{Shards: 8, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := explore.ClassifyInits(sys, explore.BuildOptions{Shards: 8, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	assertExploreGraphsIdentical(t, "repeat", a.Graph, b.Graph)
}

// TestShardedSpeedup measures the point of the engine: on real parallel
// hardware, partitioned interning (shards = workers = NumCPU) must not be
// slower than funneling every discovery through a single shard's lock.
// Mirrors TestParallelSpeedup's gating: meaningless below 4 CPUs, under
// the race detector, and in -short mode.
func TestShardedSpeedup(t *testing.T) {
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs for a speedup measurement, have %d", runtime.NumCPU())
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("need GOMAXPROCS >= 4 for a speedup measurement, have %d", runtime.GOMAXPROCS(0))
	}
	if raceEnabled {
		t.Skip("race-detector instrumentation invalidates wall-clock measurement")
	}
	if testing.Short() {
		t.Skip("speedup measurement skipped in -short mode")
	}
	sys := mustForward(t, 4, 0, service.Adversarial)
	measure := func(shards int) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			start := time.Now()
			if _, err := explore.ClassifyInits(sys, explore.BuildOptions{Shards: shards, Workers: runtime.NumCPU()}); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	single := measure(1)
	multi := measure(runtime.NumCPU())
	speedup := float64(single) / float64(multi)
	t.Logf("1 shard %v, %d shards %v: speedup %.2fx", single, runtime.NumCPU(), multi, speedup)
	if speedup < 1.0 {
		t.Errorf("sharded interning slower than a single shard: %.2fx on %d CPUs, want >= 1.0x", speedup, runtime.NumCPU())
	}
}
