package explore_test

// Incremental recheck acceptance suite: revalidating an unchanged
// candidate against its own durable graph must be free (no dirty region,
// no fresh states, base valences reused), and revalidating a genuinely
// modified program must agree — per fingerprint, per edge, per valence —
// with a from-scratch build of the modified candidate while exploring
// only the delta.

import (
	"testing"

	"github.com/ioa-lab/boosting/internal/explore"
	"github.com/ioa-lab/boosting/internal/process"
	"github.com/ioa-lab/boosting/internal/seqtype"
	"github.com/ioa-lab/boosting/internal/service"
	"github.com/ioa-lab/boosting/internal/servicetype"
	"github.com/ioa-lab/boosting/internal/system"
)

// stubbornForward is a shape-identical variant of protocols.Forward with
// different dynamics: it forwards its input like Forward but ignores the
// service's answer and always decides "0" — breaking validity, and with
// it the transition relation and valences of a strict subset of the base
// graph's vertices. Exactly the kind of candidate delta incremental
// recheck exists for: same state encoding, different program.
type stubbornForward struct {
	svc string
}

func (stubbornForward) Start(int) map[string]string { return nil }

func (p stubbornForward) HandleInit(ctx *process.Context, v string) {
	ctx.Invoke(p.svc, seqtype.Init(v))
}

func (p stubbornForward) HandleResponse(ctx *process.Context, svc, resp string) {
	if svc != p.svc {
		return
	}
	if _, ok := seqtype.DecideValue(resp); ok {
		ctx.Decide("0")
	}
}

// buildForwardVariant assembles the forward candidate's shape — n
// processes, one f-resilient binary consensus object, one register —
// around an arbitrary program, so tests can produce shape-compatible
// systems with modified dynamics.
func buildForwardVariant(t testing.TB, n, f int, prog func(i int) process.Program) *system.System {
	t.Helper()
	procs := make([]*process.Process, n)
	eps := make([]int, n)
	for i := 0; i < n; i++ {
		procs[i] = process.New(i, prog(i))
		eps[i] = i
	}
	obj, err := service.New(service.Config{
		Index:      "k0",
		Type:       servicetype.FromSequential(seqtype.BinaryConsensus()),
		Endpoints:  eps,
		Resilience: f,
		Policy:     service.Adversarial,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := service.NewRegister("r0", []string{"", "0", "1"}, "", eps)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := system.New(procs, []*service.Service{obj, reg})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// buildDurable builds the forward base graph into a fresh durable
// directory and reopens it.
func buildDurable(t *testing.T, sys *system.System, roots []system.State) (*explore.Graph, string) {
	t.Helper()
	dir := t.TempDir()
	g, err := explore.BuildGraph(sys, roots, explore.BuildOptions{
		Workers: 1, Store: explore.StoreSpill, GraphDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := explore.CloseGraphStore(g); err != nil {
		t.Fatal(err)
	}
	reopened, err := explore.OpenGraph(sys, dir, explore.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return reopened, dir
}

// TestRecheckIdentity rechecks an unchanged candidate against its own
// reopened graph: empty dirty region, zero fresh states, counts and
// valences carried over from the base.
func TestRecheckIdentity(t *testing.T) {
	sys := mustForward(t, 3, 1, service.Adversarial)
	roots := monotoneRoots(t, sys)
	base, _ := buildDurable(t, sys, roots)

	res, err := explore.Recheck(sys, base, roots, explore.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if res.Dirty != 0 || res.Fresh != 0 {
		t.Fatalf("identity recheck: dirty=%d fresh=%d, want 0/0", res.Dirty, res.Fresh)
	}
	if res.ReachableStates != base.Size() || res.ReachableEdges != base.Edges() {
		t.Fatalf("reachable %d/%d, want %d/%d",
			res.ReachableStates, res.ReachableEdges, base.Size(), base.Edges())
	}
	ref, err := explore.ClassifyInits(sys, explore.BuildOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	if len(res.Valences) != len(ref.Valences) {
		t.Fatalf("valences %v, want %v", res.Valences, ref.Valences)
	}
	for i := range ref.Valences {
		if res.Valences[i] != ref.Valences[i] {
			t.Errorf("root %d: valence %v, want %v", i, res.Valences[i], ref.Valences[i])
		}
	}
	if res.BivalentIndex != ref.BivalentIndex {
		t.Errorf("bivalent index %d, want %d", res.BivalentIndex, ref.BivalentIndex)
	}
}

// TestRecheckProgramDelta is the dirty-region acceptance test: recheck
// the stubbornForward variant against the unmodified forward base graph
// and require exact agreement — per fingerprint, per successor edge, per
// valence — with a from-scratch build of the variant, while exploring
// strictly fewer fresh states than the full build.
func TestRecheckProgramDelta(t *testing.T) {
	const n, f = 3, 1
	sys := mustForward(t, n, f, service.Adversarial)
	roots := monotoneRoots(t, sys)
	base, _ := buildDurable(t, sys, roots)

	variant := buildForwardVariant(t, n, f, func(int) process.Program {
		return stubbornForward{svc: "k0"}
	})
	varRoots := monotoneRoots(t, variant)

	res, err := explore.Recheck(variant, base, varRoots, explore.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if res.Dirty == 0 {
		t.Fatal("program delta produced an empty dirty region")
	}

	ref, err := explore.BuildGraph(variant, varRoots, explore.BuildOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer explore.CloseGraphStore(ref)

	if res.Fresh >= ref.Size() {
		t.Errorf("recheck explored %d fresh states, full build explores %d — no incremental win",
			res.Fresh, ref.Size())
	}
	if res.ReachableStates != ref.Size() || res.ReachableEdges != ref.Edges() {
		t.Fatalf("reachable %d/%d, want %d/%d",
			res.ReachableStates, res.ReachableEdges, ref.Size(), ref.Edges())
	}

	// Per-vertex agreement, keyed by fingerprint (the spliced ID space is
	// the base's, not the fresh build's): every reference vertex must
	// exist in the rechecked graph with the identical successor sequence
	// (targets compared by fingerprint) and identical valence.
	g := res.Graph
	for id := 0; id < ref.Size(); id++ {
		rid := explore.StateID(id)
		fp := ref.Fingerprint(rid)
		gid, ok := g.Lookup(fp)
		if !ok {
			t.Fatalf("reference state %d missing from rechecked graph", id)
		}
		re, ge := ref.Succs(rid), g.Succs(gid)
		if len(re) != len(ge) {
			t.Fatalf("state %d: %d succs, want %d", id, len(ge), len(re))
		}
		for j := range re {
			if re[j].Task != ge[j].Task || re[j].Action != ge[j].Action {
				t.Fatalf("state %d edge %d: got %+v, want %+v", id, j, ge[j], re[j])
			}
			if ref.Fingerprint(re[j].To) != g.Fingerprint(ge[j].To) {
				t.Fatalf("state %d edge %d: target fingerprint mismatch", id, j)
			}
		}
		if rv, gv := ref.Valence(rid), g.Valence(gid); rv != gv {
			t.Fatalf("state %d: valence %v, want %v", id, gv, rv)
		}
	}

	// Root verdicts match the from-scratch classification.
	for i := range ref.Roots() {
		if want, got := ref.Valence(ref.Roots()[i]), res.Valences[i]; want != got {
			t.Errorf("root %d: valence %v, want %v", i, got, want)
		}
	}
}

// TestRecheckBaseUnreachableRetained pins the layering contract: base
// vertices that become unreachable under the modified candidate stay
// addressable in the rechecked graph (sound, vacuous valences), and the
// reachable counts — not Graph.Size — are what a fresh build reports.
func TestRecheckBaseUnreachableRetained(t *testing.T) {
	const n, f = 2, 1
	sys := mustForward(t, n, f, service.Adversarial)
	roots := monotoneRoots(t, sys)
	base, _ := buildDurable(t, sys, roots)
	baseN := base.Size()

	variant := buildForwardVariant(t, n, f, func(int) process.Program {
		return stubbornForward{svc: "k0"}
	})
	res, err := explore.Recheck(variant, base, monotoneRoots(t, variant), explore.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if res.BaseStates != baseN {
		t.Errorf("BaseStates = %d, want %d", res.BaseStates, baseN)
	}
	if res.Graph.Size() != baseN+res.Fresh {
		t.Errorf("Size = %d, want base %d + fresh %d", res.Graph.Size(), baseN, res.Fresh)
	}
	for id := 0; id < baseN; id++ {
		if fp := res.Graph.Fingerprint(explore.StateID(id)); fp == "" {
			t.Fatalf("base state %d unaddressable after recheck", id)
		}
	}
}
