package explore

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/ioa-lab/boosting/internal/intern"
	"github.com/ioa-lab/boosting/internal/system"
)

// This file is the sharded exploration engine: hash-partitioned intern
// shards that own disjoint fingerprint ranges, so workers intern freshly
// discovered states immediately — under a shard-local lock — instead of
// queueing them for the coordinator's serial pass at the level barrier
// (the single-machine bottleneck of buildGraphParallel).
//
// The engine runs in two phases:
//
//  1. BFS with provisional IDs. Every state routes to the shard selected
//     by its first fingerprint hash (fpHash h1 mod shard count — the same
//     two 64-bit hashes the hash/spill backends key their dedup on, so the
//     routing key is free). A shard is a complete StateStore of the
//     configured backend behind an RWMutex: lookups of already-interned
//     states take the read lock, a miss re-checks and interns under the
//     write lock. A state's provisional ID packs (shard-local ID, shard
//     index); edges recorded during the BFS carry provisional targets.
//     Discovery order — and therefore shard-local ID order — depends on
//     scheduling, which is exactly what phase 2 erases.
//
//  2. Post-hoc deterministic renumbering. Within each BFS level (a graph
//     property, independent of scheduling), vertices sort by their two
//     fingerprint hashes — ties, which require a true 128-bit collision,
//     break on the full canonical fingerprint — and the sorted level-major
//     order becomes the final dense StateID space. The graph is then
//     replayed level by level into a fresh store of the configured
//     backend: vertices intern in final order, edges remap through the
//     (shard, local) → final table, and BFS-tree predecessor links are
//     recomputed canonically (first in-edge in final-ID × task order), so
//     witness paths are as deterministic as everything else.
//
// The result: one canonical graph per (system, symmetry, MaxStates) —
// identical IDs, edges, valences, predecessors and reports for ANY worker
// count, shard count and store backend. It is isomorphic to the legacy
// engines' graph (same states, edge relation, valences and counts) but not
// ID-identical to it, which is why sharding is opt-in via
// BuildOptions.Shards rather than the default.

// maxShards bounds the shard count: 6 bits of every provisional ID address
// the shard, leaving 26 bits (~67M states per shard) for shard-local IDs —
// far beyond the 32-bit StateID budget any single build can reach anyway.
const maxShards = 64

// effectiveShards resolves the Shards knob: values below 1 leave sharding
// off (the legacy engines), larger values clamp to maxShards.
func effectiveShards(s int) int {
	if s < 1 {
		return 0
	}
	return min(s, maxShards)
}

// shardBitsFor is the number of low provisional-ID bits needed to address
// n shards.
func shardBitsFor(n int) uint {
	b := uint(0)
	for 1<<b < n {
		b++
	}
	return b
}

// shard is one fingerprint partition: a full StateStore of the configured
// backend (its own spill files on StoreSpill) behind a read-write lock,
// plus the per-local-vertex sidecars the renumber pass needs — the two
// fingerprint hashes (sort keys) and the intern-time decision mask. Shard
// stores are scaffolding: they are built without witnesses (predecessor
// links are recomputed canonically during renumbering) and are released as
// soon as the final store is rebuilt.
type shard struct {
	mu    sync.RWMutex
	store StateStore
	// h1s/h2s mirror fpHash of every interned fingerprint in local-ID
	// order; masks holds the intern-time decision masks (see
	// Graph.ownMasks). All appended under mu's write lock.
	h1s   []uint64
	h2s   []uint64
	masks []uint8
	// maxLocal caps shard-local IDs so that every provisional ID stays
	// below intern.NoState.
	maxLocal uint64
}

// lookup resolves a fingerprint against the shard under the read lock —
// the fast path for the overwhelmingly common rediscovery of an
// already-interned state.
func (sh *shard) lookup(fp []byte) (StateID, bool) {
	sh.mu.RLock()
	id, ok := sh.store.Lookup(fp)
	sh.mu.RUnlock()
	return id, ok
}

// state reads a vertex's representative state under the read lock (spill
// shards may decode it from their fingerprint file; slice growth on other
// shards makes lock-free reads racy either way).
func (sh *shard) state(id StateID) system.State {
	sh.mu.RLock()
	st, _ := sh.store.State(id)
	sh.mu.RUnlock()
	return st
}

// intern stores a routed state under the write lock, re-checking the dedup
// index first (another worker may have interned the same state between the
// caller's read-locked lookup and here). total is the global vertex budget
// shared by all shards — a CAS reservation keeps the explored count from
// ever exceeding maxStates, so the overflow error is deterministic; nil
// exempts the caller (root interning, like the legacy engines). The store
// takes ownership of fp.
func (sh *shard) intern(fp string, st system.State, h1, h2 uint64, mask uint8, total *atomic.Int64, maxStates int) (StateID, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if id, ok := sh.store.Lookup(stringBytes(fp)); ok {
		return id, nil
	}
	if uint64(len(sh.h1s)) >= sh.maxLocal {
		return 0, fmt.Errorf("explore: sharded engine: provisional ID space exhausted (%d states in one shard)", len(sh.h1s))
	}
	if total != nil {
		for {
			cur := total.Load()
			if cur >= int64(maxStates) {
				return 0, &LimitError{Limit: maxStates, Explored: int(cur)}
			}
			if total.CompareAndSwap(cur, cur+1) {
				break
			}
		}
	}
	id, _ := sh.store.Intern(fp, st, pred{})
	sh.h1s = append(sh.h1s, h1)
	sh.h2s = append(sh.h2s, h2)
	sh.masks = append(sh.masks, mask)
	return id, nil
}

// shardExpansion is the result of expanding one frontier vertex on the
// sharded engine: the out-edges with provisional successor IDs. Unlike the
// legacy parallel engine there is no "fresh" side channel — workers intern
// discoveries directly into the owning shard and get real IDs back.
type shardExpansion struct {
	edges []Edge
	err   error
}

// shardedBuild is the in-flight state of one sharded graph construction.
type shardedBuild struct {
	sys    *system.System
	shards []*shard
	// bits is the provisional-ID split: prov = local<<bits | shard.
	bits uint
	// levelLens[L][s] is shard s's vertex count once level L was fully
	// discovered (levelLens[0] records the roots). Level L's shard-local
	// IDs are the range levelLens[L-1][s] … levelLens[L][s]-1: interning
	// is dense, so the level structure needs no per-vertex bookkeeping.
	levelLens [][]int
	// rootProvs are the root vertices, in input order, as provisional IDs.
	rootProvs []StateID
	edges     int
}

func newShardedBuild(sys *system.System, nshards int, opt BuildOptions) (*shardedBuild, error) {
	b := &shardedBuild{sys: sys, bits: shardBitsFor(nshards)}
	maxLocal := uint64(intern.NoState) >> b.bits
	for i := 0; i < nshards; i++ {
		// Shard stores are always ephemeral — the durable mode covers only
		// the final renumbered store, and GraphDir is rejected before the
		// sharded engine is selected (see validateDurable).
		store, err := newStore(opt.Store, sys, opt.SpillDir, "", false)
		if err != nil {
			b.close()
			return nil, err
		}
		b.shards = append(b.shards, &shard{store: store, maxLocal: maxLocal})
	}
	return b, nil
}

// close releases the shard stores' external resources (the spill backends'
// file descriptors). Deferred unconditionally by buildGraphSharded: by the
// time the build returns — a finished graph, an error, or a spill-write
// panic unwinding toward recoverSpillWrite — the shard stores are always
// dead scaffolding.
func (b *shardedBuild) close() {
	for _, sh := range b.shards {
		if s, ok := sh.store.(*spillStore); ok {
			_ = s.Close()
		}
	}
}

// prov packs a (shard, local) pair into a provisional StateID.
func (b *shardedBuild) prov(shardIdx int, local StateID) StateID {
	return local<<b.bits | StateID(shardIdx)
}

// split unpacks a provisional StateID.
func (b *shardedBuild) split(prov StateID) (shardIdx int, local StateID) {
	return int(prov & (1<<b.bits - 1)), prov >> b.bits
}

// route selects the owning shard of a fingerprint from its first hash.
func (b *shardedBuild) route(h1 uint64) int {
	return int(h1 % uint64(len(b.shards)))
}

// lens snapshots the current vertex count of every shard. Only called
// while the shards are quiescent (root interning, level barriers).
func (b *shardedBuild) lens() []int {
	lens := make([]int, len(b.shards))
	for i, sh := range b.shards {
		lens[i] = len(sh.h1s)
	}
	return lens
}

// frontierBetween lists the vertices interned between two shard-length
// snapshots as provisional IDs, shard-major in ascending local order — the
// one frontier order that keeps each shard's SetSuccs calls strictly
// increasing, as the adjacency contract requires.
func (b *shardedBuild) frontierBetween(prev, cur []int) []StateID {
	n := 0
	for s := range cur {
		n += cur[s] - prev[s]
	}
	frontier := make([]StateID, 0, n)
	for s := range b.shards {
		for local := prev[s]; local < cur[s]; local++ {
			frontier = append(frontier, b.prov(s, StateID(local)))
		}
	}
	return frontier
}

// expand applies every applicable task to one frontier vertex, routing
// each canonicalized successor to its owning shard: a read-locked lookup
// resolves rediscoveries, a miss interns immediately under the shard's
// write lock. buf is the worker's fingerprint scratch, returned for reuse.
func (b *shardedBuild) expand(provID StateID, out *shardExpansion, total *atomic.Int64, maxStates int, opt BuildOptions, buf []byte) []byte {
	// Shard interning runs on worker goroutines, where a spill-file write
	// failure (disk full) must not crash the process: convert the panic to
	// this item's error, as recoverSpillWrite does at the engine boundary.
	// Read-corruption panics stay fatal, as on the legacy engines.
	defer func() {
		switch r := recover().(type) {
		case nil:
		case spillWriteError:
			out.err = r.err
		default:
			panic(r)
		}
	}()
	if err := ctxErr(opt.Ctx); err != nil {
		out.err = err
		return buf
	}
	sys := b.sys
	s, local := b.split(provID)
	st := b.shards[s].state(local)
	for _, task := range sys.Tasks() {
		if !sys.Applicable(st, task) {
			continue
		}
		succ, act, err := sys.Apply(st, task)
		if err != nil {
			out.err = fmt.Errorf("explore: apply %v: %w", task, err)
			return buf
		}
		succ = canonical(opt.Symmetry, succ)
		buf = sys.AppendFingerprint(buf[:0], succ)
		h1, h2 := fpHash(buf)
		ts := b.route(h1)
		tl, ok := b.shards[ts].lookup(buf)
		if !ok {
			// The one owned copy of the fingerprint, made outside the
			// write lock; the shard store takes ownership.
			tl, err = b.shards[ts].intern(string(buf), succ, h1, h2, ownMask(sys, succ), total, maxStates)
			if err != nil {
				out.err = err
				return buf
			}
		}
		out.edges = append(out.edges, Edge{Task: task, Action: act, To: b.prov(ts, tl)})
	}
	return buf
}

// buildGraphSharded is the sharded engine behind BuildGraph (Shards >= 1):
// a level-synchronous BFS whose workers intern discoveries immediately
// into fingerprint-partitioned shards, followed by the deterministic
// renumber pass that rebuilds the final store. Progress reports aggregate
// across shards and are the exact sequence the legacy engines emit — level
// membership and cumulative counts are graph properties.
func buildGraphSharded(sys *system.System, roots []system.State, maxStates, workers, nshards int, opt BuildOptions) (*Graph, error) {
	b, err := newShardedBuild(sys, nshards, opt)
	if err != nil {
		return nil, err
	}
	defer b.close()
	// Roots: interned serially through the shards, exempt from the vertex
	// budget, like the legacy engines.
	buf := make([]byte, 0, 256)
	for _, r := range roots {
		r = canonical(opt.Symmetry, r)
		buf = sys.AppendFingerprint(buf[:0], r)
		h1, h2 := fpHash(buf)
		s := b.route(h1)
		local, err := b.shards[s].intern(string(buf), r, h1, h2, ownMask(sys, r), nil, 0)
		if err != nil {
			return nil, err
		}
		b.rootProvs = append(b.rootProvs, b.prov(s, local))
	}
	b.levelLens = append(b.levelLens, b.lens())
	// The budget counter starts at the root count, so the first discovery
	// past maxStates — and only that one — trips the limit, matching the
	// legacy engines' overflow point and Explored count exactly.
	var total atomic.Int64
	for _, n := range b.levelLens[0] {
		total.Add(int64(n))
	}
	frontier := b.frontierBetween(make([]int, nshards), b.levelLens[0])
	level := 0
	for len(frontier) > 0 {
		results := make([]shardExpansion, len(frontier))
		parallelForBuf(workers, len(frontier), func(i int, wbuf []byte) []byte {
			return b.expand(frontier[i], &results[i], &total, maxStates, opt, wbuf)
		})
		// Which worker observes a full budget first is scheduling; the
		// error itself is not — the CAS reservation pins Explored. Apply
		// and cancellation errors take precedence in frontier order, so a
		// deterministic failure beats the budget race.
		var firstErr, limitErr error
		for i := range results {
			e := results[i].err
			if e == nil {
				continue
			}
			var le *LimitError
			if errors.As(e, &le) {
				if limitErr == nil {
					limitErr = e
				}
			} else if firstErr == nil {
				firstErr = e
			}
		}
		if firstErr != nil {
			return nil, firstErr
		}
		if limitErr != nil {
			return nil, limitErr
		}
		// Level barrier: hand the buffered expansions to the shard
		// adjacency faces. The frontier is shard-major in ascending local
		// order, so each shard sees strictly increasing SetSuccs IDs; the
		// per-shard seal then lets spill shards move the level's edge
		// blocks out of RAM.
		for i, provID := range frontier {
			s, local := b.split(provID)
			b.shards[s].store.SetSuccs(local, results[i].edges)
			b.edges += len(results[i].edges)
		}
		for _, sh := range b.shards {
			sh.store.SealLevel()
		}
		prev := b.levelLens[len(b.levelLens)-1]
		b.levelLens = append(b.levelLens, b.lens())
		next := b.frontierBetween(prev, b.levelLens[len(b.levelLens)-1])
		if opt.Progress != nil {
			states := 0
			for _, n := range b.levelLens[len(b.levelLens)-1] {
				states += n
			}
			opt.Progress(Progress{Level: level, States: states, Edges: b.edges, Frontier: len(next)})
		}
		level++
		frontier = next
	}
	if err := ctxErr(opt.Ctx); err != nil {
		return nil, err
	}
	g, err := b.renumber(opt)
	if err != nil {
		return nil, err
	}
	g.computeMasksParallel(workers)
	return g, nil
}

// vref locates one vertex of the provisional graph and carries its sort
// keys resident, so renumbering never touches the spill file except on a
// true 128-bit hash collision.
type vref struct {
	h1, h2       uint64
	shard, local uint32
}

// renumber is phase 2: sort each BFS level by (h1, h2, fingerprint),
// making the concatenated level-major order the final dense StateID space,
// then replay the provisional graph into a fresh store of the configured
// backend — vertices intern in final order, edge targets remap through the
// (shard, local) → final table, predecessor links are recomputed
// canonically, and intern-time masks permute along. Every input to this
// pass is content-derived (level membership, fingerprint hashes, task
// order), so the output graph is identical for any shard and worker count.
func (b *shardedBuild) renumber(opt BuildOptions) (*Graph, error) {
	nshards := len(b.shards)
	finalLens := b.levelLens[len(b.levelLens)-1]
	n := 0
	for _, ln := range finalLens {
		n += ln
	}
	order := make([]vref, 0, n)
	levelStarts := make([]int, 0, len(b.levelLens)+1)
	prev := make([]int, nshards)
	for _, lens := range b.levelLens {
		levelStarts = append(levelStarts, len(order))
		start := len(order)
		for s := 0; s < nshards; s++ {
			sh := b.shards[s]
			for local := prev[s]; local < lens[s]; local++ {
				order = append(order, vref{sh.h1s[local], sh.h2s[local], uint32(s), uint32(local)})
			}
			prev[s] = lens[s]
		}
		lvl := order[start:]
		sort.Slice(lvl, func(i, j int) bool {
			x, y := lvl[i], lvl[j]
			if x.h1 != y.h1 {
				return x.h1 < y.h1
			}
			if x.h2 != y.h2 {
				return x.h2 < y.h2
			}
			// A true 128-bit collision: break the tie on the canonical
			// fingerprint itself. Distinct vertices never compare equal,
			// so the order is total and the sort needs no stability.
			return b.shards[x.shard].store.Fingerprint(StateID(x.local)) <
				b.shards[y.shard].store.Fingerprint(StateID(y.local))
		})
	}
	levelStarts = append(levelStarts, len(order))
	localToFinal := make([][]StateID, nshards)
	for s := range localToFinal {
		localToFinal[s] = make([]StateID, finalLens[s])
	}
	for i, r := range order {
		localToFinal[r.shard][r.local] = StateID(i)
	}
	// The shards' dedup phase is over — from here they only serve reads by
	// local ID. Drop the sort keys and every shard's dedup index before
	// the final store builds its own, so peak residency holds one index,
	// not two.
	for _, sh := range b.shards {
		sh.h1s, sh.h2s = nil, nil
		releaseDedup(sh.store)
	}
	g, err := newGraph(b.sys, opt)
	if err != nil {
		return nil, err
	}
	witnesses := !opt.NoWitnesses
	// preds[i] is the canonical BFS-tree link of final vertex i: the first
	// in-edge in final-ID × task order, computed while sweeping the edges
	// of the level above. Deterministic by construction, unlike the
	// first-discoverer links a concurrent intern would record.
	var preds []pred
	if witnesses {
		preds = make([]pred, n)
	}
	g.ownMasks = make([]uint8, 0, n)
	for L := 0; L+1 < len(levelStarts); L++ {
		lo, hi := levelStarts[L], levelStarts[L+1]
		for i := lo; i < hi; i++ {
			r := order[i]
			sh := b.shards[r.shard]
			var p pred
			if witnesses {
				p = preds[i]
			}
			// Dense shards hand back their interned key, so the final
			// store retains the same string without copying.
			st, _ := sh.store.State(StateID(r.local))
			g.store.Intern(sh.store.Fingerprint(StateID(r.local)), st, p)
			g.ownMasks = append(g.ownMasks, sh.masks[r.local])
		}
		for i := lo; i < hi; i++ {
			r := order[i]
			var edges []Edge
			for e := range b.shards[r.shard].store.EdgesFrom(StateID(r.local)) {
				ts, tl := b.split(e.To)
				to := localToFinal[ts][tl]
				// BFS edges reach at most one level down; a target past
				// this level's end is a first-discovery candidate.
				if witnesses && int(to) >= hi && !preds[to].has {
					preds[to] = pred{from: StateID(i), task: e.Task, act: e.Action, has: true}
				}
				edges = append(edges, Edge{Task: e.Task, Action: e.Action, To: to})
			}
			g.store.SetSuccs(StateID(i), edges)
			g.edges += len(edges)
		}
		g.store.SealLevel()
	}
	g.roots = make([]StateID, len(b.rootProvs))
	for i, p := range b.rootProvs {
		s, local := b.split(p)
		g.roots[i] = localToFinal[s][local]
	}
	return g, nil
}
