package explore_test

// Allocation pins for the similarity predicates: JSimilar/KSimilar run
// inside refutation inner loops, so they must compare component
// fingerprints through reused buffers — zero heap allocations per call
// once the buffer pool is warm.

import (
	"testing"

	"github.com/ioa-lab/boosting/internal/allocpin"
	"github.com/ioa-lab/boosting/internal/explore"
	"github.com/ioa-lab/boosting/internal/protocols"
	"github.com/ioa-lab/boosting/internal/service"
	"github.com/ioa-lab/boosting/internal/system"
)

// similarStates builds a pair of distinct reachable states to compare.
func similarStates(t testing.TB) (*system.System, system.State, system.State) {
	t.Helper()
	sys, err := protocols.BuildForward(3, 1, service.Adversarial)
	if err != nil {
		t.Fatal(err)
	}
	c, err := explore.ClassifyInits(sys, explore.BuildOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	hs, err := explore.FindHook(c.Graph, c.Roots[c.BivalentIndex])
	if err != nil || hs.Hook == nil {
		t.Fatalf("hook: %v", err)
	}
	s0, _ := c.Graph.State(hs.Hook.Alpha0)
	s1, _ := c.Graph.State(hs.Hook.Alpha1)
	return sys, s0, s1
}

func TestSimilarityZeroAllocs(t *testing.T) {
	sys, s0, s1 := similarStates(t)
	opt := explore.SimilarityOptions{}
	j := sys.ProcessIDs()[0]
	k := sys.ServiceIDs()[0]
	// Warm the buffer pool so the measured runs reuse pooled buffers.
	explore.JSimilar(sys, s0, s1, j, opt)
	explore.KSimilar(sys, s0, s1, k, opt)
	allocpin.Check(t, "JSimilar", 100, 0, func() {
		explore.JSimilar(sys, s0, s1, j, opt)
	})
	allocpin.Check(t, "KSimilar", 100, 0, func() {
		explore.KSimilar(sys, s0, s1, k, opt)
	})
}

// BenchmarkSimilarAllocs reports the per-comparison cost of the similarity
// predicates (the -benchmem columns pin the zero-allocation contract).
func BenchmarkSimilarAllocs(b *testing.B) {
	sys, s0, s1 := similarStates(b)
	opt := explore.SimilarityOptions{}
	j := sys.ProcessIDs()[0]
	k := sys.ServiceIDs()[0]
	b.Run("JSimilar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			explore.JSimilar(sys, s0, s1, j, opt)
		}
	})
	b.Run("KSimilar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			explore.KSimilar(sys, s0, s1, k, opt)
		}
	})
}
