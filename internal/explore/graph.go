package explore

import (
	"fmt"

	"github.com/ioa-lab/boosting/internal/ioa"
	"github.com/ioa-lab/boosting/internal/system"
)

// Valence classifies a finite failure-free input-first execution by the
// decisions reachable in its failure-free extensions (Section 3.2). The
// paper's Lemma 3 says every such execution of a correct system is bivalent
// or univalent; Unvalent (no decision reachable) certifies a broken
// candidate.
type Valence int

// Valence values.
const (
	Unvalent Valence = iota
	ZeroValent
	OneValent
	Bivalent
)

// String renders the valence.
func (v Valence) String() string {
	switch v {
	case Unvalent:
		return "unvalent"
	case ZeroValent:
		return "0-valent"
	case OneValent:
		return "1-valent"
	case Bivalent:
		return "bivalent"
	default:
		return fmt.Sprintf("valence(%d)", int(v))
	}
}

// decision mask bits.
const (
	maskZero uint8 = 1 << iota
	maskOne
)

func valenceOfMask(m uint8) Valence {
	switch m {
	case maskZero:
		return ZeroValent
	case maskOne:
		return OneValent
	case maskZero | maskOne:
		return Bivalent
	default:
		return Unvalent
	}
}

// Edge is one labelled transition of G(C): scheduling Task from the source
// vertex leads to the vertex with fingerprint To, performing Action.
type Edge struct {
	Task   ioa.Task
	Action ioa.Action
	To     string
}

// pred records how a vertex was first reached (BFS tree), for witness
// reconstruction.
type pred struct {
	from string
	task ioa.Task
	act  ioa.Action
}

// Graph is (a finite fragment of) the graph G(C) of Section 3.3: vertices
// are fingerprints of failure-free reachable states, edges are applicable
// tasks. Because processes and services are deterministic, each vertex has
// at most one outgoing edge per task.
type Graph struct {
	sys    *system.System
	states map[string]system.State
	succs  map[string][]Edge
	preds  map[string]pred
	roots  []string
	masks  map[string]uint8
}

// BuildOptions bounds graph construction.
type BuildOptions struct {
	// MaxStates caps the number of distinct vertices (0 = default 200000).
	MaxStates int
	// Workers is the number of goroutines expanding the frontier and
	// back-propagating valences: 0 means one per CPU (runtime.NumCPU()),
	// 1 forces the serial engine. The produced graph is identical either
	// way — same vertices, edges and valences.
	Workers int
}

const defaultMaxStates = 200_000

// BuildGraph explores the failure-free closure of the given root states
// under all applicable tasks and computes the valence of every vertex by
// backward fixpoint over reachable decisions. With more than one worker the
// exploration runs on the parallel engine (see parallel.go).
func BuildGraph(sys *system.System, roots []system.State, opt BuildOptions) (*Graph, error) {
	maxStates := opt.MaxStates
	if maxStates <= 0 {
		maxStates = defaultMaxStates
	}
	if workers := effectiveWorkers(opt.Workers); workers > 1 {
		return buildGraphParallel(sys, roots, maxStates, workers)
	}
	g := &Graph{
		sys:    sys,
		states: map[string]system.State{},
		succs:  map[string][]Edge{},
		preds:  map[string]pred{},
		masks:  map[string]uint8{},
	}
	queue := make([]string, 0, len(roots))
	for _, r := range roots {
		fp := sys.Fingerprint(r)
		g.roots = append(g.roots, fp)
		if _, ok := g.states[fp]; !ok {
			g.states[fp] = r
			queue = append(queue, fp)
		}
	}
	for len(queue) > 0 {
		fp := queue[0]
		queue = queue[1:]
		st := g.states[fp]
		var edges []Edge
		for _, task := range sys.Tasks() {
			if !sys.Applicable(st, task) {
				continue
			}
			next, act, err := sys.Apply(st, task)
			if err != nil {
				return nil, fmt.Errorf("explore: apply %v: %w", task, err)
			}
			nfp := sys.Fingerprint(next)
			edges = append(edges, Edge{Task: task, Action: act, To: nfp})
			if _, ok := g.states[nfp]; !ok {
				if len(g.states) >= maxStates {
					return nil, fmt.Errorf("%w: > %d states", ErrStateExplosion, maxStates)
				}
				g.states[nfp] = next
				g.preds[nfp] = pred{from: fp, task: task, act: act}
				queue = append(queue, nfp)
			}
		}
		g.succs[fp] = edges
	}
	g.computeMasks()
	return g, nil
}

// computeMasks propagates decision bits backwards to a fixpoint:
// mask(s) = decided(s) ∪ ⋃_{s→t} mask(t).
func (g *Graph) computeMasks() {
	// Seed with each state's own recorded decisions.
	for fp, st := range g.states {
		g.masks[fp] = ownMask(g.sys, st)
	}
	// Chaotic iteration to fixpoint. The mask lattice has height 2, so this
	// terminates quickly even without a topological order.
	changed := true
	for changed {
		changed = false
		for fp, edges := range g.succs {
			m := g.masks[fp]
			for _, e := range edges {
				m |= g.masks[e.To]
			}
			if m != g.masks[fp] {
				g.masks[fp] = m
				changed = true
			}
		}
	}
}

func ownMask(sys *system.System, st system.State) uint8 {
	var m uint8
	for _, v := range sys.Decisions(st) {
		switch v {
		case "0":
			m |= maskZero
		case "1":
			m |= maskOne
		}
	}
	return m
}

// Size returns the number of vertices.
func (g *Graph) Size() int { return len(g.states) }

// Roots returns the root fingerprints in insertion order.
func (g *Graph) Roots() []string { return g.roots }

// State returns the representative state of a vertex.
func (g *Graph) State(fp string) (system.State, bool) {
	st, ok := g.states[fp]
	return st, ok
}

// Succs returns the outgoing edges of a vertex.
func (g *Graph) Succs(fp string) []Edge { return g.succs[fp] }

// Succ returns the e-successor of a vertex, if task e is applicable there.
func (g *Graph) Succ(fp string, task ioa.Task) (Edge, bool) {
	for _, e := range g.succs[fp] {
		if e.Task == task {
			return e, true
		}
	}
	return Edge{}, false
}

// Valence returns the valence of a vertex.
func (g *Graph) Valence(fp string) Valence {
	return valenceOfMask(g.masks[fp])
}

// WitnessPath reconstructs the BFS-tree path of edges from a root to the
// given vertex.
func (g *Graph) WitnessPath(fp string) []Edge {
	var rev []Edge
	cur := fp
	for {
		p, ok := g.preds[cur]
		if !ok {
			break
		}
		rev = append(rev, Edge{Task: p.task, Action: p.act, To: cur})
		cur = p.from
	}
	// Reverse.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// FindState returns the first vertex (in BFS order from the given start)
// satisfying the predicate, searching only edges allowed by the filter
// (nil filter = all edges). The returned path is the sequence of edges from
// start to the found vertex.
func (g *Graph) FindState(start string, allow func(Edge) bool, want func(system.State) bool) (string, []Edge, bool) {
	type qitem struct {
		fp   string
		path []Edge
	}
	visited := map[string]bool{start: true}
	queue := []qitem{{fp: start}}
	for len(queue) > 0 {
		item := queue[0]
		queue = queue[1:]
		if st, ok := g.states[item.fp]; ok && want(st) {
			return item.fp, item.path, true
		}
		for _, e := range g.succs[item.fp] {
			if allow != nil && !allow(e) {
				continue
			}
			if visited[e.To] {
				continue
			}
			visited[e.To] = true
			path := make([]Edge, len(item.path), len(item.path)+1)
			copy(path, item.path)
			queue = append(queue, qitem{fp: e.To, path: append(path, e)})
		}
	}
	return "", nil, false
}
