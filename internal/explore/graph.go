package explore

import (
	"context"
	"fmt"
	"iter"

	"github.com/ioa-lab/boosting/internal/intern"
	"github.com/ioa-lab/boosting/internal/ioa"
	"github.com/ioa-lab/boosting/internal/system"
)

// StateID is the dense index of a vertex of G(C): the i-th distinct state
// discovered (in BFS order) gets ID i. Both exploration engines assign IDs
// identically for any worker count and any store backend, so IDs are stable
// coordinates of the graph, not artifacts of scheduling. The canonical
// string fingerprint remains available per vertex via Graph.Fingerprint, as
// the stable external format for reports and witness output.
type StateID = intern.StateID

// Valence classifies a finite failure-free input-first execution by the
// decisions reachable in its failure-free extensions (Section 3.2). The
// paper's Lemma 3 says every such execution of a correct system is bivalent
// or univalent; Unvalent (no decision reachable) certifies a broken
// candidate.
type Valence int

// Valence values.
const (
	Unvalent Valence = iota
	ZeroValent
	OneValent
	Bivalent
)

// String renders the valence.
func (v Valence) String() string {
	switch v {
	case Unvalent:
		return "unvalent"
	case ZeroValent:
		return "0-valent"
	case OneValent:
		return "1-valent"
	case Bivalent:
		return "bivalent"
	default:
		return fmt.Sprintf("valence(%d)", int(v))
	}
}

// decision mask bits.
const (
	maskZero uint8 = 1 << iota
	maskOne
)

func valenceOfMask(m uint8) Valence {
	switch m {
	case maskZero:
		return ZeroValent
	case maskOne:
		return OneValent
	case maskZero | maskOne:
		return Bivalent
	default:
		return Unvalent
	}
}

// Edge is one labelled transition of G(C): scheduling Task from the source
// vertex leads to the vertex To, performing Action.
type Edge struct {
	Task   ioa.Task
	Action ioa.Action
	To     StateID
}

// pred records how a vertex was first reached (BFS tree), for witness
// reconstruction. Roots have has == false.
type pred struct {
	from StateID
	task ioa.Task
	act  ioa.Action
	has  bool
}

// Graph is (a finite fragment of) the graph G(C) of Section 3.3: vertices
// are failure-free reachable states, identified by dense StateIDs assigned
// in discovery (BFS) order, and edges are applicable tasks. Because
// processes and services are deterministic, each vertex has at most one
// outgoing edge per task.
//
// Vertex storage — the dedup index, representative states, adjacency and
// predecessor links — lives behind the StateStore seam; the graph itself
// keeps only the roots and the valence masks.
type Graph struct {
	sys   *system.System
	store StateStore
	roots []StateID
	edges int
	masks []uint8
	// ownMasks records each vertex's own decision mask at intern time, so
	// the valence fixpoint seeds from one resident byte per vertex instead
	// of re-reading every state — on the spill backend that would be a full
	// extra pread + decode pass over the spill file after exploration.
	ownMasks []uint8
	// manifest and graphDir are set on durable graphs only: a build with
	// GraphDir records them at commit, OpenGraph at reattach. See
	// GraphManifest / GraphDirOf.
	manifest *Manifest
	graphDir string
	// keepOwn makes the valence fixpoint retain ownMasks instead of
	// freeing them: durable graphs persist the fixpoint seeds so
	// incremental recheck can prove "own decisions unchanged" cheaply.
	keepOwn bool
}

// Progress is one streaming exploration report, emitted after each BFS
// level completes: States and Edges are cumulative totals, Frontier is the
// number of newly discovered vertices awaiting expansion in the next level.
// Both engines emit identical sequences for the same build.
type Progress struct {
	Level    int
	States   int
	Edges    int
	Frontier int
}

// ProgressFunc receives streaming Progress reports during graph
// construction. Calls are serialized (made from the coordinating
// goroutine); a callback that needs to stop the build should cancel the
// build's context rather than block.
type ProgressFunc func(Progress)

// Canonicalizer maps states to canonical orbit representatives under the
// system's declared process-renaming symmetry (see internal/symmetry). It
// must be a pure function, constant on orbits and safe for concurrent use.
type Canonicalizer interface {
	Canonical(st system.State) system.State
}

// BuildOptions bounds and instruments graph construction.
type BuildOptions struct {
	// MaxStates caps the number of distinct vertices (0 = default 200000).
	MaxStates int
	// Workers is the number of goroutines expanding the frontier and
	// back-propagating valences: 0 means one per CPU (runtime.NumCPU()),
	// 1 forces the serial engine. The produced graph is identical either
	// way — same StateIDs, edges, predecessors and valences.
	Workers int
	// Shards, when >= 1 (clamped to 64), selects the sharded engine:
	// workers intern freshly discovered states immediately into
	// hash-partitioned shards — no serial intern pass at the level
	// barriers — and a post-hoc renumber pass sorts each BFS level by
	// fingerprint hash into the final dense StateID space (see
	// sharded.go). The produced graph is identical for every shard count,
	// worker count and store backend, and isomorphic to the legacy
	// engines' graph (same states, edges, valences, counts and verdicts)
	// but numbered differently, which is why 0 (the default) keeps the
	// legacy engines and their byte-stable output.
	Shards int
	// Store selects the vertex storage backend (default StoreDense). Every
	// backend produces the identical graph; they differ in memory per
	// vertex and dedup cost.
	Store StoreKind
	// SpillDir is where StoreSpill creates its spill file ("" = the OS temp
	// directory). Ignored by the in-memory backends.
	SpillDir string
	// GraphDir, when non-empty, makes the build durable: it forces
	// StoreSpill semantics on the spill files, creates them as named files
	// under this directory, and commits an index plus a versioned,
	// checksummed manifest after the valence fixpoint. A committed
	// directory reopens via OpenGraph without exploring a state. Requires
	// Store == StoreSpill and conflicts with the sharded engine (whose
	// per-shard stores are renumbered, not persisted).
	GraphDir string
	// GraphID is the caller-supplied full identity recorded in a durable
	// build's manifest (the façade passes the candidate's canonical
	// fingerprint plus the root set). Optional; only read when GraphDir is
	// set.
	GraphID []byte
	// Symmetry, when non-nil, canonicalizes every state — roots and
	// discovered successors — before the fingerprint/intern step at the
	// StateStore boundary, so the engines build the quotient graph modulo
	// process renaming. Both engines and every store backend apply it at
	// the same point and stay graph-identical to each other.
	Symmetry Canonicalizer
	// NoWitnesses drops the BFS-tree predecessor links: the store records
	// nothing at intern time and WitnessPath returns nil for every vertex.
	// Counts, valences and edges are unaffected. Analyses that reconstruct
	// witness executions (hook search, the refuter's certificates) need the
	// links and reject graphs built without them.
	NoWitnesses bool
	// Progress, when non-nil, receives one report per completed BFS level.
	Progress ProgressFunc
	// Ctx, when non-nil, cancels the build: exploration checks it
	// mid-level and returns ctx.Err() promptly.
	Ctx context.Context
}

const defaultMaxStates = 200_000

// ctxErr returns the context's error, tolerating a nil context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

func newGraph(sys *system.System, opt BuildOptions) (*Graph, error) {
	store, err := newStore(opt.Store, sys, opt.SpillDir, opt.GraphDir, !opt.NoWitnesses)
	if err != nil {
		return nil, err
	}
	return &Graph{sys: sys, store: store, keepOwn: opt.GraphDir != ""}, nil
}

// validateDurable rejects build-option combinations the durable mode
// cannot honor: the manifest describes the spill backend's file pair, so
// GraphDir requires StoreSpill, and the sharded engine's per-shard stores
// are renumbered into a fresh final store, which the commit protocol does
// not cover.
func validateDurable(opt BuildOptions) error {
	if opt.GraphDir == "" {
		return nil
	}
	if opt.Store != StoreSpill {
		return fmt.Errorf("explore: GraphDir requires the spill store (got %v)", opt.Store)
	}
	if effectiveShards(opt.Shards) > 0 {
		return fmt.Errorf("explore: GraphDir conflicts with the sharded engine")
	}
	return nil
}

// canonical resolves the optional symmetry reduction: the identity when no
// Canonicalizer is configured.
func canonical(canon Canonicalizer, st system.State) system.State {
	if canon == nil {
		return st
	}
	return canon.Canonical(st)
}

// intern stores a vertex and, when fresh, records its own decision mask
// (see Graph.ownMasks). The serial engine and internRoots intern through
// here; the parallel barrier appends worker-computed masks itself.
func (g *Graph) intern(fp string, st system.State, p pred) (StateID, bool) {
	id, fresh := g.store.Intern(fp, st, p)
	if fresh {
		g.ownMasks = append(g.ownMasks, ownMask(g.sys, st))
	}
	return id, fresh
}

// internRoots seeds the graph with the root states (canonicalized when
// symmetry reduction is on). Roots are exempt from the vertex budget and
// always get the smallest IDs, in input order.
func (g *Graph) internRoots(roots []system.State, canon Canonicalizer, buf []byte) []byte {
	for _, r := range roots {
		r = canonical(canon, r)
		buf = g.sys.AppendFingerprint(buf[:0], r)
		id, _ := g.intern(string(buf), r, pred{})
		g.roots = append(g.roots, id)
	}
	return buf
}

// BuildGraph explores the failure-free closure of the given root states
// under all applicable tasks and computes the valence of every vertex by
// backward fixpoint over reachable decisions. With Shards >= 1 the
// exploration runs on the sharded engine (see sharded.go); otherwise, with
// more than one worker, on the parallel engine (see parallel.go).
func BuildGraph(sys *system.System, roots []system.State, opt BuildOptions) (g *Graph, err error) {
	// Spill-file write failures (disk full) surface here as ordinary build
	// errors; see recoverSpillWrite.
	defer recoverSpillWrite(&g, &err)
	if err := validateDurable(opt); err != nil {
		return nil, err
	}
	maxStates := opt.MaxStates
	if maxStates <= 0 {
		maxStates = defaultMaxStates
	}
	if shards := effectiveShards(opt.Shards); shards > 0 {
		return buildGraphSharded(sys, roots, maxStates, effectiveWorkers(opt.Workers), shards, opt)
	}
	if workers := effectiveWorkers(opt.Workers); workers > 1 {
		return buildGraphParallel(sys, roots, maxStates, workers, opt)
	}
	g, err = newGraph(sys, opt)
	if err != nil {
		return nil, err
	}
	// On ordinary error returns (budget overflow, cancellation, Apply
	// failure) the partial graph is dropped; release its backend resources
	// — the spill store's descriptors — and the intern-time mask recording
	// instead of waiting for a finalizer. `built` pins the graph because
	// the named return is nil on error.
	built := g
	defer func() {
		if err != nil {
			built.ownMasks = nil
			_ = CloseGraphStore(built)
		}
	}()
	buf := g.internRoots(roots, opt.Symmetry, nil)
	// IDs are dense in discovery order, so the BFS queue is implicit: the
	// next vertex to expand is simply the next ID. Nothing is pinned or
	// copied as the frontier advances. Level boundaries are tracked only
	// for progress reporting: the current level ends where the store stood
	// when it began.
	level := 0
	levelEnd := g.store.Len()
	for next := 0; next < g.store.Len(); next++ {
		if next&63 == 0 {
			if err := ctxErr(opt.Ctx); err != nil {
				return nil, err
			}
		}
		st, _ := g.store.State(StateID(next))
		var edges []Edge
		for _, task := range sys.Tasks() {
			if !sys.Applicable(st, task) {
				continue
			}
			succ, act, err := sys.Apply(st, task)
			if err != nil {
				return nil, fmt.Errorf("explore: apply %v: %w", task, err)
			}
			succ = canonical(opt.Symmetry, succ)
			buf = sys.AppendFingerprint(buf[:0], succ)
			id, ok := g.store.Lookup(buf)
			if !ok {
				if g.store.Len() >= maxStates {
					return nil, &LimitError{Limit: maxStates, Explored: g.store.Len()}
				}
				id, _ = g.intern(string(buf), succ, pred{from: StateID(next), task: task, act: act, has: true})
			}
			edges = append(edges, Edge{Task: task, Action: act, To: id})
		}
		g.store.SetSuccs(StateID(next), edges)
		g.edges += len(edges)
		if next+1 == levelEnd {
			// Level barrier: the level's edges become immutable, so the
			// spill backend may move them out of RAM. Fires for every
			// level, including the last.
			g.store.SealLevel()
			if opt.Progress != nil {
				opt.Progress(Progress{Level: level, States: g.store.Len(), Edges: g.edges, Frontier: g.store.Len() - levelEnd})
			}
			level++
			levelEnd = g.store.Len()
		}
	}
	if err := ctxErr(opt.Ctx); err != nil {
		return nil, err
	}
	g.computeMasks()
	if err := commitDurable(g, opt); err != nil {
		return nil, err
	}
	return g, nil
}

// computeMasks propagates decision bits backwards to a fixpoint:
// mask(s) = decided(s) ∪ ⋃_{s→t} mask(t).
func (g *Graph) computeMasks() {
	// Seed with each state's own decisions, recorded at intern time. The
	// recording is only needed for this seeding, so release it after —
	// except on durable builds, which persist the seeds for incremental
	// recheck (see keepOwn).
	n := g.store.Len()
	g.masks = make([]uint8, n)
	copy(g.masks, g.ownMasks)
	if !g.keepOwn {
		g.ownMasks = nil
	}
	// Chaotic iteration to fixpoint; the least fixpoint is unique, so the
	// sweep order only affects how many rounds it takes. Masks flow
	// backwards along edges and BFS edges point mostly at equal-or-larger
	// IDs, so a descending-ID sweep propagates most of a chain in one pass
	// and typically converges in two or three rounds instead of one per
	// BFS level — which matters on the spill backend, where every round
	// streams the whole edge file back in.
	changed := true
	for changed {
		changed = false
		for i := n - 1; i >= 0; i-- {
			m := g.masks[i]
			for e := range g.store.EdgesFrom(StateID(i)) {
				m |= g.masks[e.To]
			}
			if m != g.masks[i] {
				g.masks[i] = m
				changed = true
			}
		}
	}
}

func ownMask(sys *system.System, st system.State) uint8 {
	var m uint8
	for _, v := range sys.Decisions(st) {
		switch v {
		case "0":
			m |= maskZero
		case "1":
			m |= maskOne
		}
	}
	return m
}

// Size returns the number of vertices. Valid StateIDs are 0 … Size()−1.
func (g *Graph) Size() int { return g.store.Len() }

// Edges returns the total number of edges of the explored graph.
func (g *Graph) Edges() int { return g.edges }

// Roots returns the root vertices in insertion order.
func (g *Graph) Roots() []StateID { return g.roots }

// Store returns the vertex storage backend of the graph.
func (g *Graph) Store() StateStore { return g.store }

// State returns the representative state of a vertex.
func (g *Graph) State(id StateID) (system.State, bool) {
	return g.store.State(id)
}

// Fingerprint returns the canonical string encoding of a vertex — the
// stable external format for reports and witness output.
func (g *Graph) Fingerprint(id StateID) string { return g.store.Fingerprint(id) }

// Lookup resolves a canonical fingerprint to its vertex, if the state was
// discovered.
func (g *Graph) Lookup(fp string) (StateID, bool) { return g.store.Lookup(stringBytes(fp)) }

// EdgesFrom streams the outgoing edges of a vertex in recorded order —
// the allocation-free access path: in-memory backends yield straight from
// their slices, the spill backend decodes one block. Breaking out early is
// allowed and cheap.
func (g *Graph) EdgesFrom(id StateID) iter.Seq[Edge] { return g.store.EdgesFrom(id) }

// Succs returns the outgoing edges of a vertex as a slice (nil for a sink
// or an out-of-range ID). On in-memory backends this is the stored slice;
// on the spill backend it materializes a fresh slice per call, so bulk
// walks should prefer EdgesFrom.
func (g *Graph) Succs(id StateID) []Edge {
	if s, ok := g.store.(edgeSlices); ok {
		return s.edgeSlice(id)
	}
	var edges []Edge
	for e := range g.store.EdgesFrom(id) {
		edges = append(edges, e)
	}
	return edges
}

// Succ returns the e-successor of a vertex, if task e is applicable there.
func (g *Graph) Succ(id StateID, task ioa.Task) (Edge, bool) {
	for e := range g.store.EdgesFrom(id) {
		if e.Task == task {
			return e, true
		}
	}
	return Edge{}, false
}

// Valence returns the valence of a vertex.
func (g *Graph) Valence(id StateID) Valence {
	// uint comparison so IDs past the 32-bit int range stay out-of-range
	// instead of wrapping negative on 32-bit platforms.
	if uint(id) >= uint(len(g.masks)) {
		return Unvalent
	}
	return valenceOfMask(g.masks[id])
}

// WitnessPath reconstructs the BFS-tree path of edges from a root to the
// given vertex. On graphs built with NoWitnesses the predecessor links were
// never recorded and the path is nil for every vertex.
func (g *Graph) WitnessPath(id StateID) []Edge {
	var rev []Edge
	cur := id
	for int(cur) < g.store.Len() {
		p := g.store.Pred(cur)
		if !p.has {
			break
		}
		rev = append(rev, Edge{Task: p.task, Action: p.act, To: cur})
		cur = p.from
	}
	// Reverse.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// bfsTree records, per visited vertex, the edge it was first reached by in a
// filtered BFS: parent[v] is the predecessor and pedge[v] the index of the
// edge in succs(parent[v]). Storing one link per vertex and reconstructing
// the path once at the end replaces the old per-enqueue prefix copying,
// which was quadratic in path depth.
//
// Visited marks are epoch stamps, so one tree can be reused across many
// searches (the Fig. 3 construction runs one BFS per step): begin() bumps
// the epoch instead of re-zeroing the full-graph-size arrays.
type bfsTree struct {
	epoch  uint32
	mark   []uint32
	parent []StateID
	pedge  []int32
}

func newBFSTree(n int) *bfsTree {
	return &bfsTree{
		mark:   make([]uint32, n),
		parent: make([]StateID, n),
		pedge:  make([]int32, n),
	}
}

// begin starts a fresh search rooted at start: all vertices read as
// unvisited except start.
func (t *bfsTree) begin(start StateID) {
	if t.epoch == ^uint32(0) {
		// Epoch wrapped: clear the stale stamps once.
		clear(t.mark)
		t.epoch = 0
	}
	t.epoch++
	t.mark[start] = t.epoch
}

func (t *bfsTree) seen(v StateID) bool { return t.mark[v] == t.epoch }

func (t *bfsTree) visit(from StateID, edgeIdx int, to StateID) {
	t.mark[to] = t.epoch
	t.parent[to] = from
	t.pedge[to] = int32(edgeIdx)
}

// path reconstructs the edges from start to v, in order.
func (t *bfsTree) path(g *Graph, start, v StateID) []Edge {
	var rev []Edge
	for v != start {
		from := t.parent[v]
		rev = append(rev, edgeAt(g.store, from, t.pedge[v]))
		v = from
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// edgeAt returns the idx-th outgoing edge of a vertex. The bfsTree
// addresses its parent edges by index; with adjacency behind an iterator,
// resolving one means counting back into the block. Panics out of range,
// mirroring the slice indexing it replaces.
func edgeAt(store StateStore, id StateID, idx int32) Edge {
	i := int32(0)
	for e := range store.EdgesFrom(id) {
		if i == idx {
			return e
		}
		i++
	}
	panic(fmt.Sprintf("explore: edge index %d out of range for state %d", idx, id))
}

// FindState returns the first vertex (in BFS order from the given start)
// satisfying the predicate, searching only edges allowed by the filter
// (nil filter = all edges). The returned path is the sequence of edges from
// start to the found vertex.
func (g *Graph) FindState(start StateID, allow func(Edge) bool, want func(system.State) bool) (StateID, []Edge, bool) {
	tree := newBFSTree(g.store.Len())
	tree.begin(start)
	queue := []StateID{start}
	for head := 0; head < len(queue); head++ {
		id := queue[head]
		if st, ok := g.State(id); ok && want(st) {
			return id, tree.path(g, start, id), true
		}
		i := -1
		for e := range g.store.EdgesFrom(id) {
			i++
			if allow != nil && !allow(e) {
				continue
			}
			if tree.seen(e.To) {
				continue
			}
			tree.visit(id, i, e.To)
			queue = append(queue, e.To)
		}
	}
	return 0, nil, false
}
