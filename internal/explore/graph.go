package explore

import (
	"fmt"

	"github.com/ioa-lab/boosting/internal/intern"
	"github.com/ioa-lab/boosting/internal/ioa"
	"github.com/ioa-lab/boosting/internal/system"
)

// StateID is the dense index of a vertex of G(C): the i-th distinct state
// discovered (in BFS order) gets ID i. Both exploration engines assign IDs
// identically for any worker count, so IDs are stable coordinates of the
// graph, not artifacts of scheduling. The canonical string fingerprint
// remains available per vertex via Graph.Fingerprint, as the stable external
// format for reports and witness output.
type StateID = intern.StateID

// Valence classifies a finite failure-free input-first execution by the
// decisions reachable in its failure-free extensions (Section 3.2). The
// paper's Lemma 3 says every such execution of a correct system is bivalent
// or univalent; Unvalent (no decision reachable) certifies a broken
// candidate.
type Valence int

// Valence values.
const (
	Unvalent Valence = iota
	ZeroValent
	OneValent
	Bivalent
)

// String renders the valence.
func (v Valence) String() string {
	switch v {
	case Unvalent:
		return "unvalent"
	case ZeroValent:
		return "0-valent"
	case OneValent:
		return "1-valent"
	case Bivalent:
		return "bivalent"
	default:
		return fmt.Sprintf("valence(%d)", int(v))
	}
}

// decision mask bits.
const (
	maskZero uint8 = 1 << iota
	maskOne
)

func valenceOfMask(m uint8) Valence {
	switch m {
	case maskZero:
		return ZeroValent
	case maskOne:
		return OneValent
	case maskZero | maskOne:
		return Bivalent
	default:
		return Unvalent
	}
}

// Edge is one labelled transition of G(C): scheduling Task from the source
// vertex leads to the vertex To, performing Action.
type Edge struct {
	Task   ioa.Task
	Action ioa.Action
	To     StateID
}

// pred records how a vertex was first reached (BFS tree), for witness
// reconstruction. Roots have has == false.
type pred struct {
	from StateID
	task ioa.Task
	act  ioa.Action
	has  bool
}

// Graph is (a finite fragment of) the graph G(C) of Section 3.3: vertices
// are failure-free reachable states, identified by dense StateIDs assigned
// in discovery (BFS) order, and edges are applicable tasks. Because
// processes and services are deterministic, each vertex has at most one
// outgoing edge per task.
//
// Everything is slice-backed and indexed by StateID; the interner is the
// only string-keyed table, holding each canonical fingerprint exactly once.
type Graph struct {
	sys    *system.System
	tab    *intern.Table
	states []system.State
	succs  [][]Edge
	preds  []pred
	roots  []StateID
	masks  []uint8
}

// BuildOptions bounds graph construction.
type BuildOptions struct {
	// MaxStates caps the number of distinct vertices (0 = default 200000).
	MaxStates int
	// Workers is the number of goroutines expanding the frontier and
	// back-propagating valences: 0 means one per CPU (runtime.NumCPU()),
	// 1 forces the serial engine. The produced graph is identical either
	// way — same StateIDs, edges, predecessors and valences.
	Workers int
}

const defaultMaxStates = 200_000

func newGraph(sys *system.System) *Graph {
	return &Graph{sys: sys, tab: intern.NewTable(1024)}
}

// addState interns a new vertex: fp must not be present in the table yet.
func (g *Graph) addState(fp string, st system.State, p pred) StateID {
	id, fresh := g.tab.Intern(fp)
	if !fresh {
		panic("explore: addState on an interned fingerprint")
	}
	g.states = append(g.states, st)
	g.succs = append(g.succs, nil)
	g.preds = append(g.preds, p)
	return id
}

// internRoots seeds the graph with the root states. Roots are exempt from
// the vertex budget and always get the smallest IDs, in input order.
func (g *Graph) internRoots(roots []system.State, buf []byte) []byte {
	for _, r := range roots {
		buf = g.sys.AppendFingerprint(buf[:0], r)
		id, ok := g.tab.LookupBytes(buf)
		if !ok {
			id = g.addState(string(buf), r, pred{})
		}
		g.roots = append(g.roots, id)
	}
	return buf
}

// BuildGraph explores the failure-free closure of the given root states
// under all applicable tasks and computes the valence of every vertex by
// backward fixpoint over reachable decisions. With more than one worker the
// exploration runs on the parallel engine (see parallel.go).
func BuildGraph(sys *system.System, roots []system.State, opt BuildOptions) (*Graph, error) {
	maxStates := opt.MaxStates
	if maxStates <= 0 {
		maxStates = defaultMaxStates
	}
	if workers := effectiveWorkers(opt.Workers); workers > 1 {
		return buildGraphParallel(sys, roots, maxStates, workers)
	}
	g := newGraph(sys)
	buf := g.internRoots(roots, nil)
	// IDs are dense in discovery order, so the BFS queue is implicit: the
	// next vertex to expand is simply the next ID. Nothing is pinned or
	// copied as the frontier advances.
	for next := 0; next < len(g.states); next++ {
		st := g.states[next]
		var edges []Edge
		for _, task := range sys.Tasks() {
			if !sys.Applicable(st, task) {
				continue
			}
			succ, act, err := sys.Apply(st, task)
			if err != nil {
				return nil, fmt.Errorf("explore: apply %v: %w", task, err)
			}
			buf = sys.AppendFingerprint(buf[:0], succ)
			id, ok := g.tab.LookupBytes(buf)
			if !ok {
				if len(g.states) >= maxStates {
					return nil, fmt.Errorf("%w: > %d states", ErrStateExplosion, maxStates)
				}
				id = g.addState(string(buf), succ, pred{from: StateID(next), task: task, act: act, has: true})
			}
			edges = append(edges, Edge{Task: task, Action: act, To: id})
		}
		g.succs[next] = edges
	}
	g.computeMasks()
	return g, nil
}

// computeMasks propagates decision bits backwards to a fixpoint:
// mask(s) = decided(s) ∪ ⋃_{s→t} mask(t).
func (g *Graph) computeMasks() {
	// Seed with each state's own recorded decisions.
	g.masks = make([]uint8, len(g.states))
	for i := range g.states {
		g.masks[i] = ownMask(g.sys, g.states[i])
	}
	// Chaotic iteration to fixpoint. The mask lattice has height 2, so this
	// terminates quickly even without a topological order.
	changed := true
	for changed {
		changed = false
		for i, edges := range g.succs {
			m := g.masks[i]
			for _, e := range edges {
				m |= g.masks[e.To]
			}
			if m != g.masks[i] {
				g.masks[i] = m
				changed = true
			}
		}
	}
}

func ownMask(sys *system.System, st system.State) uint8 {
	var m uint8
	for _, v := range sys.Decisions(st) {
		switch v {
		case "0":
			m |= maskZero
		case "1":
			m |= maskOne
		}
	}
	return m
}

// Size returns the number of vertices. Valid StateIDs are 0 … Size()−1.
func (g *Graph) Size() int { return len(g.states) }

// Roots returns the root vertices in insertion order.
func (g *Graph) Roots() []StateID { return g.roots }

// State returns the representative state of a vertex.
func (g *Graph) State(id StateID) (system.State, bool) {
	if int(id) >= len(g.states) {
		return system.State{}, false
	}
	return g.states[id], true
}

// Fingerprint returns the canonical string encoding of a vertex — the
// stable external format for reports and witness output.
func (g *Graph) Fingerprint(id StateID) string { return g.tab.Key(id) }

// Lookup resolves a canonical fingerprint to its vertex, if the state was
// discovered.
func (g *Graph) Lookup(fp string) (StateID, bool) { return g.tab.Lookup(fp) }

// Succs returns the outgoing edges of a vertex.
func (g *Graph) Succs(id StateID) []Edge {
	if int(id) >= len(g.succs) {
		return nil
	}
	return g.succs[id]
}

// Succ returns the e-successor of a vertex, if task e is applicable there.
func (g *Graph) Succ(id StateID, task ioa.Task) (Edge, bool) {
	for _, e := range g.Succs(id) {
		if e.Task == task {
			return e, true
		}
	}
	return Edge{}, false
}

// Valence returns the valence of a vertex.
func (g *Graph) Valence(id StateID) Valence {
	if int(id) >= len(g.masks) {
		return Unvalent
	}
	return valenceOfMask(g.masks[id])
}

// WitnessPath reconstructs the BFS-tree path of edges from a root to the
// given vertex.
func (g *Graph) WitnessPath(id StateID) []Edge {
	var rev []Edge
	cur := id
	for int(cur) < len(g.preds) && g.preds[cur].has {
		p := g.preds[cur]
		rev = append(rev, Edge{Task: p.task, Action: p.act, To: cur})
		cur = p.from
	}
	// Reverse.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// bfsTree records, per visited vertex, the edge it was first reached by in a
// filtered BFS: parent[v] is the predecessor and pedge[v] the index of the
// edge in succs(parent[v]). Storing one link per vertex and reconstructing
// the path once at the end replaces the old per-enqueue prefix copying,
// which was quadratic in path depth.
//
// Visited marks are epoch stamps, so one tree can be reused across many
// searches (the Fig. 3 construction runs one BFS per step): begin() bumps
// the epoch instead of re-zeroing the full-graph-size arrays.
type bfsTree struct {
	epoch  uint32
	mark   []uint32
	parent []StateID
	pedge  []int32
}

func newBFSTree(n int) *bfsTree {
	return &bfsTree{
		mark:   make([]uint32, n),
		parent: make([]StateID, n),
		pedge:  make([]int32, n),
	}
}

// begin starts a fresh search rooted at start: all vertices read as
// unvisited except start.
func (t *bfsTree) begin(start StateID) {
	if t.epoch == ^uint32(0) {
		// Epoch wrapped: clear the stale stamps once.
		clear(t.mark)
		t.epoch = 0
	}
	t.epoch++
	t.mark[start] = t.epoch
}

func (t *bfsTree) seen(v StateID) bool { return t.mark[v] == t.epoch }

func (t *bfsTree) visit(from StateID, edgeIdx int, to StateID) {
	t.mark[to] = t.epoch
	t.parent[to] = from
	t.pedge[to] = int32(edgeIdx)
}

// path reconstructs the edges from start to v, in order.
func (t *bfsTree) path(g *Graph, start, v StateID) []Edge {
	var rev []Edge
	for v != start {
		from := t.parent[v]
		rev = append(rev, g.succs[from][t.pedge[v]])
		v = from
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// FindState returns the first vertex (in BFS order from the given start)
// satisfying the predicate, searching only edges allowed by the filter
// (nil filter = all edges). The returned path is the sequence of edges from
// start to the found vertex.
func (g *Graph) FindState(start StateID, allow func(Edge) bool, want func(system.State) bool) (StateID, []Edge, bool) {
	tree := newBFSTree(len(g.states))
	tree.begin(start)
	queue := []StateID{start}
	for head := 0; head < len(queue); head++ {
		id := queue[head]
		if st, ok := g.State(id); ok && want(st) {
			return id, tree.path(g, start, id), true
		}
		for i, e := range g.succs[id] {
			if allow != nil && !allow(e) {
				continue
			}
			if tree.seen(e.To) {
				continue
			}
			tree.visit(id, i, e.To)
			queue = append(queue, e.To)
		}
	}
	return 0, nil, false
}
