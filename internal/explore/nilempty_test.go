package explore_test

// End-to-end nil-vs-empty regression: two system states that differ only in
// nil-vs-empty component containers must produce identical fingerprints —
// and therefore intern to the same StateID in every store backend — and
// must be j-similar at every process (the buffer comparisons treat a nil
// queue and an empty queue as equal).

import (
	"bytes"
	"testing"

	"github.com/ioa-lab/boosting/internal/explore"
	"github.com/ioa-lab/boosting/internal/process"
	"github.com/ioa-lab/boosting/internal/protocols"
	"github.com/ioa-lab/boosting/internal/service"
	"github.com/ioa-lab/boosting/internal/system"
)

func TestNilVsEmptyStatesInternIdentically(t *testing.T) {
	sys, err := protocols.BuildForward(2, 0, service.Adversarial)
	if err != nil {
		t.Fatal(err)
	}
	st := sys.InitialState()
	procs, svcs := sys.ComponentStates(st)

	// Rebuild the same state with aggressively "empty but allocated"
	// containers in every component.
	procs2 := make([]process.State, len(procs))
	for i, ps := range procs {
		ps.Outbox = []process.Outgoing{}
		if ps.Vars == nil {
			ps.Vars = map[string]string{}
		}
		procs2[i] = ps
	}
	svcs2 := make([]service.State, len(svcs))
	for i, ss := range svcs {
		ss.Inv = map[int][]string{0: {}, 1: nil}
		ss.Resp = nil
		svcs2[i] = ss
	}
	st2, err := sys.StateOf(procs2, svcs2)
	if err != nil {
		t.Fatal(err)
	}

	fp1 := sys.AppendFingerprint(nil, st)
	fp2 := sys.AppendFingerprint(nil, st2)
	if !bytes.Equal(fp1, fp2) {
		t.Fatalf("fingerprints differ:\n%q\n%q", fp1, fp2)
	}

	// Interning through a graph build: both variants resolve to the same
	// vertex in every backend.
	for _, kind := range []explore.StoreKind{explore.StoreDense, explore.StoreHash64, explore.StoreHash128} {
		g, err := explore.BuildGraph(sys, []system.State{st}, explore.BuildOptions{Workers: 1, Store: kind})
		if err != nil {
			t.Fatal(err)
		}
		id1, ok1 := g.Lookup(string(fp1))
		id2, ok2 := g.Lookup(string(fp2))
		if !ok1 || !ok2 || id1 != id2 {
			t.Errorf("%v: variants intern to %v/%v (found %v/%v), want one vertex", kind, id1, id2, ok1, ok2)
		}
	}

	// Similarity: nil-vs-empty differences are invisible to the Section 3.5
	// buffer comparisons.
	for _, j := range sys.ProcessIDs() {
		if !explore.JSimilar(sys, st, st2, j, explore.SimilarityOptions{}) {
			t.Errorf("states not %d-similar despite identical encodings", j)
		}
	}
}
