package explore_test

import (
	"strings"
	"testing"

	"github.com/ioa-lab/boosting/internal/explore"
	"github.com/ioa-lab/boosting/internal/ioa"
	"github.com/ioa-lab/boosting/internal/service"
	"github.com/ioa-lab/boosting/internal/system"
)

func TestValenceStrings(t *testing.T) {
	cases := map[explore.Valence]string{
		explore.Unvalent:   "unvalent",
		explore.ZeroValent: "0-valent",
		explore.OneValent:  "1-valent",
		explore.Bivalent:   "bivalent",
	}
	for v, want := range cases {
		if v.String() != want {
			t.Errorf("%d: %q", int(v), v.String())
		}
	}
}

func TestViolationKindStrings(t *testing.T) {
	cases := map[explore.ViolationKind]string{
		explore.KindNone:        "none",
		explore.KindAgreement:   "agreement",
		explore.KindValidity:    "validity",
		explore.KindTermination: "termination",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d: %q", int(k), k.String())
		}
	}
}

func TestWitnessPathReplaysToVertex(t *testing.T) {
	sys := mustForward(t, 2, 0, service.Adversarial)
	c, err := explore.ClassifyInits(sys, explore.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	g := c.Graph
	// Pick some non-root vertex and replay its witness path from its root.
	var target explore.StateID
	found := false
	for _, root := range c.Roots {
		for _, e := range g.Succs(root) {
			for _, e2 := range g.Succs(e.To) {
				target = e2.To
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no deep vertex found")
	}
	path := g.WitnessPath(target)
	if len(path) == 0 {
		t.Fatal("empty witness path for non-root vertex")
	}
	// Replay from the corresponding root: climb to the path's origin.
	// The witness path starts at a root; find it by walking backwards is
	// implicit — we just apply from each root and accept the one that works.
	replayed := false
	for i := range c.Roots {
		st, _ := g.State(c.Roots[i])
		cur := st
		ok := true
		for _, e := range path {
			next, _, err := sys.Apply(cur, e.Task)
			if err != nil {
				ok = false
				break
			}
			cur = next
		}
		if ok && sys.Fingerprint(cur) == g.Fingerprint(target) {
			replayed = true
			break
		}
	}
	if !replayed {
		t.Error("witness path did not replay to its vertex from any root")
	}
}

func TestFindStateRespectsFilter(t *testing.T) {
	sys := mustForward(t, 2, 0, service.Adversarial)
	c, err := explore.ClassifyInits(sys, explore.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	g := c.Graph
	root := c.Roots[c.BivalentIndex]
	// Without filter: a decided state is reachable.
	_, _, found := g.FindState(root, nil, func(st system.State) bool {
		return len(sys.Decisions(st)) > 0
	})
	if !found {
		t.Fatal("no decided state reachable without filter")
	}
	// Forbidding both perform tasks of the consensus object: no decision
	// can ever be reached.
	deny := func(e explore.Edge) bool {
		return !(e.Task.Kind == ioa.TaskPerform && e.Task.Service == "k0")
	}
	_, _, found = g.FindState(root, deny, func(st system.State) bool {
		return len(sys.Decisions(st)) > 0
	})
	if found {
		t.Error("decided state reachable despite forbidding the object's perform tasks")
	}
}

func TestInitClassificationString(t *testing.T) {
	sys := mustForward(t, 2, 0, service.Adversarial)
	c, err := explore.ClassifyInits(sys, explore.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := c.String()
	for _, want := range []string{"α_0", "bivalent initialization", "0-valent"} {
		if !strings.Contains(s, want) {
			t.Errorf("classification string missing %q:\n%s", want, s)
		}
	}
}

func TestAllAssignmentsCount(t *testing.T) {
	sys := mustForward(t, 3, 1, service.Adversarial)
	got := explore.AllAssignments(sys)
	if len(got) != 8 {
		t.Fatalf("assignments: %d, want 8", len(got))
	}
	seen := map[string]bool{}
	for _, a := range got {
		key := a[0] + a[1] + a[2]
		if seen[key] {
			t.Errorf("duplicate assignment %v", a)
		}
		seen[key] = true
	}
}

func TestRoundRobinMaxRoundsBound(t *testing.T) {
	sys := mustForward(t, 2, 0, service.Adversarial)
	res, err := explore.RoundRobin(sys, explore.RunConfig{
		Inputs:    map[int]string{0: "0", 1: "1"},
		Failures:  []explore.FailureEvent{{Round: 0, Proc: 0}},
		MaxRounds: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds > 3 {
		t.Errorf("rounds: %d > 3", res.Rounds)
	}
}

func TestRoundRobinFairnessAudit(t *testing.T) {
	// The round-robin scheduler's executions pass the fairness audit at
	// window = |tasks|.
	sys := mustForward(t, 2, 1, service.Adversarial)
	res, err := explore.RoundRobin(sys, explore.RunConfig{Inputs: map[int]string{0: "0", 1: "1"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := explore.AuditFairness(sys, res.Exec, 0); err != nil {
		t.Errorf("round-robin execution failed fairness audit: %v", err)
	}
}

func TestFairnessAuditDetectsStarvation(t *testing.T) {
	// Hand-build an unfair execution: P0 invokes, then the perform task is
	// never scheduled while P1's dummy steps run far beyond the window.
	sys := mustForward(t, 2, 1, service.Adversarial)
	st := sys.InitialState()
	var exec ioa.Execution
	st, act, err := sys.Init(st, 0, "0")
	if err != nil {
		t.Fatal(err)
	}
	exec = exec.Append(ioa.Step{Action: act, After: sys.Fingerprint(st)})
	st, act, err = sys.Apply(st, ioa.ProcessTask(0)) // invoke lands at k0
	if err != nil {
		t.Fatal(err)
	}
	exec = exec.Append(ioa.Step{HasTask: true, Task: ioa.ProcessTask(0), Action: act, After: sys.Fingerprint(st)})
	for i := 0; i < 3*len(sys.Tasks()); i++ {
		st, act, err = sys.Apply(st, ioa.ProcessTask(1)) // dummy steps only
		if err != nil {
			t.Fatal(err)
		}
		exec = exec.Append(ioa.Step{HasTask: true, Task: ioa.ProcessTask(1), Action: act, After: sys.Fingerprint(st)})
	}
	err = explore.AuditFairness(sys, exec, len(sys.Tasks()))
	if err == nil {
		t.Fatal("starved perform task not detected")
	}
	var fv explore.FairnessViolation
	if !asFairnessViolation(err, &fv) {
		t.Fatalf("unexpected error type: %v", err)
	}
	// Both P0's (always-enabled) process task and the object's perform task
	// are genuinely starved here; the audit reports whichever window
	// expires first.
	starvedPerform := fv.Task.Kind == ioa.TaskPerform && fv.Task.Service == "k0"
	starvedP0 := fv.Task == ioa.ProcessTask(0)
	if !starvedPerform && !starvedP0 {
		t.Errorf("starved task: %v", fv.Task)
	}
}

func asFairnessViolation(err error, out *explore.FairnessViolation) bool {
	v, ok := err.(explore.FairnessViolation)
	if ok {
		*out = v
	}
	return ok
}

func TestRandomRunInjectsFailures(t *testing.T) {
	sys := mustForward(t, 2, 1, service.Adversarial)
	sawFailure := false
	for seed := int64(0); seed < 10 && !sawFailure; seed++ {
		res, err := explore.Random(sys, explore.RunConfig{
			Inputs:   map[int]string{0: "0", 1: "1"},
			Failures: []explore.FailureEvent{{Proc: 1}},
		}, seed, 2000)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Exec.FailureFree() {
			sawFailure = true
		}
	}
	if !sawFailure {
		t.Error("random scheduler never injected the configured failure")
	}
}
