package explore

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/ioa-lab/boosting/internal/intern"
	"github.com/ioa-lab/boosting/internal/system"
)

// effectiveWorkers resolves a Workers knob: 0 means one worker per CPU,
// anything below 1 means serial.
func effectiveWorkers(w int) int {
	if w == 0 {
		return runtime.NumCPU()
	}
	if w < 1 {
		return 1
	}
	return w
}

// parallelFor runs f(0) … f(n-1) over the given number of workers, splitting
// the index space into contiguous chunks. It degenerates to a plain loop when
// workers <= 1 or the index space is trivial.
func parallelFor(workers, n int, f func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				f(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// parallelForBuf is parallelFor with a worker-local scratch buffer threaded
// through f: each chunk goroutine passes its buffer from one iteration to
// the next, so per-iteration encoding work reuses one allocation per worker
// instead of one per index.
func parallelForBuf(workers, n int, f func(i int, buf []byte) []byte) {
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		var buf []byte
		for i := 0; i < n; i++ {
			buf = f(i, buf)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var buf []byte
			for i := lo; i < hi; i++ {
				buf = f(i, buf)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// fresh is a successor discovered during frontier expansion that was not in
// the intern table when its level started: the fingerprint (an owned copy),
// the state, and the index of the edge whose target awaits its ID.
type fresh struct {
	edgeIdx int
	fp      string
	st      system.State
}

// expansion is the result of expanding one frontier vertex.
type expansion struct {
	edges []Edge
	fresh []fresh
	err   error
}

// expandFrontier applies every applicable task to st, resolving successor
// IDs through the frozen intern table. Successors not yet interned are
// returned as fresh candidates with their edge targets left at
// intern.NoState, to be patched at the level barrier. buf is the calling
// worker's fingerprint scratch, returned (possibly grown) for reuse.
func expandFrontier(sys *system.System, tab *intern.Table, st system.State, buf []byte) (expansion, []byte) {
	var out expansion
	for _, task := range sys.Tasks() {
		if !sys.Applicable(st, task) {
			continue
		}
		next, act, err := sys.Apply(st, task)
		if err != nil {
			out.err = fmt.Errorf("explore: apply %v: %w", task, err)
			return out, buf
		}
		buf = sys.AppendFingerprint(buf[:0], next)
		id, ok := tab.LookupBytes(buf)
		if !ok {
			id = intern.NoState
			out.fresh = append(out.fresh, fresh{edgeIdx: len(out.edges), fp: string(buf), st: next})
		}
		out.edges = append(out.edges, Edge{Task: task, Action: act, To: id})
	}
	return out, buf
}

// buildGraphParallel is the worker-pool engine behind BuildGraph: a
// level-synchronous BFS over the interned ID space. Each frontier level is
// expanded across workers against the *frozen* intern table (concurrent
// lookups, no writes); at the level barrier the coordinator walks the
// expansions in frontier order and interns the level's discoveries serially.
// Serial interning at the barrier is what makes the engine deterministic:
// IDs, edges, predecessors and the overflow point are assigned in exactly
// the order the serial engine would assign them, for any worker count — the
// parallel graph is not merely isomorphic to the serial one, it is
// identical.
func buildGraphParallel(sys *system.System, roots []system.State, maxStates, workers int) (*Graph, error) {
	g := newGraph(sys)
	g.internRoots(roots, nil)
	frontier := make([]StateID, len(g.states))
	for i := range frontier {
		frontier[i] = StateID(i)
	}
	for len(frontier) > 0 {
		results := make([]expansion, len(frontier))
		parallelForBuf(workers, len(frontier), func(i int, buf []byte) []byte {
			results[i], buf = expandFrontier(sys, g.tab, g.states[frontier[i]], buf)
			return buf
		})
		// Level barrier: resolve the level's discoveries in frontier order ×
		// task order — the serial engine's discovery order.
		var next []StateID
		for i := range results {
			res := &results[i]
			if res.err != nil {
				return nil, res.err
			}
			for _, f := range res.fresh {
				id, ok := g.tab.Lookup(f.fp)
				if !ok {
					if len(g.states) >= maxStates {
						return nil, fmt.Errorf("%w: > %d states", ErrStateExplosion, maxStates)
					}
					e := res.edges[f.edgeIdx]
					id = g.addState(f.fp, f.st, pred{from: frontier[i], task: e.Task, act: e.Action, has: true})
					next = append(next, id)
				}
				res.edges[f.edgeIdx].To = id
			}
			g.succs[frontier[i]] = res.edges
		}
		frontier = next
	}
	g.computeMasksParallel(workers)
	return g, nil
}

// computeMasksParallel is the parallel counterpart of computeMasks: the same
// backward fixpoint mask(s) = decided(s) ∪ ⋃_{s→t} mask(t), computed as a
// chaotic iteration directly over the slice-backed adjacency. Masks only grow
// under ∪, so concurrent sweeps converge to the same least fixpoint as the
// serial iteration; each vertex is written by exactly one worker per sweep
// and successor masks are read atomically.
func (g *Graph) computeMasksParallel(workers int) {
	n := len(g.states)
	masks := make([]uint32, n)
	parallelFor(workers, n, func(i int) {
		masks[i] = uint32(ownMask(g.sys, g.states[i]))
	})
	for {
		var changed atomic.Bool
		parallelFor(workers, n, func(i int) {
			m := atomic.LoadUint32(&masks[i])
			next := m
			for _, e := range g.succs[i] {
				next |= atomic.LoadUint32(&masks[e.To])
			}
			if next != m {
				atomic.StoreUint32(&masks[i], next)
				changed.Store(true)
			}
		})
		if !changed.Load() {
			break
		}
	}
	g.masks = make([]uint8, n)
	for i := range masks {
		g.masks[i] = uint8(masks[i])
	}
}
