package explore

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/ioa-lab/boosting/internal/intern"
	"github.com/ioa-lab/boosting/internal/system"
)

// effectiveWorkers resolves a Workers knob: 0 means one worker per CPU,
// anything below 1 means serial.
func effectiveWorkers(w int) int {
	if w == 0 {
		return runtime.NumCPU()
	}
	if w < 1 {
		return 1
	}
	return w
}

// parallelFor runs f(0) … f(n-1) over the given number of workers, splitting
// the index space into contiguous chunks. It degenerates to a plain loop when
// workers <= 1 or the index space is trivial.
func parallelFor(workers, n int, f func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				f(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// parallelForBuf is parallelFor with a worker-local scratch buffer threaded
// through f: each chunk goroutine passes its buffer from one iteration to
// the next, so per-iteration encoding work reuses one allocation per worker
// instead of one per index.
func parallelForBuf(workers, n int, f func(i int, buf []byte) []byte) {
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		var buf []byte
		for i := 0; i < n; i++ {
			buf = f(i, buf)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var buf []byte
			for i := lo; i < hi; i++ {
				buf = f(i, buf)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// fresh is a successor discovered during frontier expansion that was not in
// the state store when its level started: the fingerprint (an owned copy),
// the state, the index of the edge whose target awaits its ID, and the
// state's own decision mask — computed here by the worker so the serial
// level barrier does not pay a sys.Decisions call per intern.
type fresh struct {
	edgeIdx int
	fp      string
	st      system.State
	mask    uint8
}

// expansion is the result of expanding one frontier vertex.
type expansion struct {
	edges []Edge
	fresh []fresh
	err   error
}

// expandFrontier applies every applicable task to st, resolving successor
// IDs through the frozen state store. Successors are canonicalized (when
// symmetry reduction is on) before the fingerprint lookup, exactly as in
// the serial engine. Successors not yet stored are returned as fresh
// candidates with their edge targets left at intern.NoState, to be patched
// at the level barrier. buf is the calling worker's fingerprint scratch,
// returned (possibly grown) for reuse.
func expandFrontier(sys *system.System, store StateStore, canon Canonicalizer, st system.State, buf []byte) (expansion, []byte) {
	var out expansion
	for _, task := range sys.Tasks() {
		if !sys.Applicable(st, task) {
			continue
		}
		next, act, err := sys.Apply(st, task)
		if err != nil {
			out.err = fmt.Errorf("explore: apply %v: %w", task, err)
			return out, buf
		}
		next = canonical(canon, next)
		buf = sys.AppendFingerprint(buf[:0], next)
		id, ok := store.Lookup(buf)
		if !ok {
			id = intern.NoState
			// The one owned copy of the fingerprint: the store takes
			// ownership at the barrier, so dense interning retains this
			// string without copying again.
			out.fresh = append(out.fresh, fresh{edgeIdx: len(out.edges), fp: string(buf), st: next, mask: ownMask(sys, next)})
		}
		out.edges = append(out.edges, Edge{Task: task, Action: act, To: id})
	}
	return out, buf
}

// buildGraphParallel is the worker-pool engine behind BuildGraph: a
// level-synchronous BFS over the interned ID space. Each frontier level is
// expanded across workers against the *frozen* state store (concurrent
// lookups, no writes); at the level barrier the coordinator walks the
// expansions in frontier order and interns the level's discoveries serially.
// Serial interning at the barrier is what makes the engine deterministic:
// IDs, edges, predecessors and the overflow point are assigned in exactly
// the order the serial engine would assign them, for any worker count — the
// parallel graph is not merely isomorphic to the serial one, it is
// identical. Progress reports and context cancellation mirror the serial
// engine: one report per level barrier, cancellation observed mid-level by
// the expanding workers.
func buildGraphParallel(sys *system.System, roots []system.State, maxStates, workers int, opt BuildOptions) (_ *Graph, err error) {
	g, err := newGraph(sys, opt)
	if err != nil {
		return nil, err
	}
	// On error returns the partial graph is dropped; release its backend
	// resources (the spill store's descriptors) and the intern-time mask
	// recording instead of waiting for a finalizer. Write-failure panics
	// close theirs in recoverSpillWrite.
	defer func() {
		if err != nil {
			g.ownMasks = nil
			_ = CloseGraphStore(g)
		}
	}()
	g.internRoots(roots, opt.Symmetry, nil)
	frontier := make([]StateID, g.store.Len())
	for i := range frontier {
		frontier[i] = StateID(i)
	}
	level := 0
	for len(frontier) > 0 {
		results := make([]expansion, len(frontier))
		parallelForBuf(workers, len(frontier), func(i int, buf []byte) []byte {
			if err := ctxErr(opt.Ctx); err != nil {
				results[i].err = err
				return buf
			}
			st, _ := g.store.State(frontier[i])
			results[i], buf = expandFrontier(sys, g.store, opt.Symmetry, st, buf)
			return buf
		})
		// Level barrier: resolve the level's discoveries in frontier order ×
		// task order — the serial engine's discovery order.
		var next []StateID
		for i := range results {
			res := &results[i]
			if res.err != nil {
				return nil, res.err
			}
			for _, f := range res.fresh {
				id, ok := g.store.Lookup(stringBytes(f.fp))
				if !ok {
					if g.store.Len() >= maxStates {
						return nil, &LimitError{Limit: maxStates, Explored: g.store.Len()}
					}
					e := res.edges[f.edgeIdx]
					// The worker already computed this vertex's decision
					// mask; record it directly instead of re-deriving it
					// on the coordinator (see Graph.ownMasks).
					var fr bool
					id, fr = g.store.Intern(f.fp, f.st, pred{from: frontier[i], task: e.Task, act: e.Action, has: true})
					if fr {
						g.ownMasks = append(g.ownMasks, f.mask)
					}
					next = append(next, id)
				}
				res.edges[f.edgeIdx].To = id
			}
			g.store.SetSuccs(frontier[i], res.edges)
			g.edges += len(res.edges)
		}
		// The barrier still holds the store exclusively: seal the level's
		// edges so the spill backend moves them out of RAM before the next
		// level's workers start reading.
		g.store.SealLevel()
		if opt.Progress != nil {
			opt.Progress(Progress{Level: level, States: g.store.Len(), Edges: g.edges, Frontier: len(next)})
		}
		level++
		frontier = next
	}
	if err := ctxErr(opt.Ctx); err != nil {
		return nil, err
	}
	g.computeMasksParallel(workers)
	if err = commitDurable(g, opt); err != nil {
		return nil, err
	}
	return g, nil
}

// computeMasksParallel is the parallel counterpart of computeMasks: the same
// backward fixpoint mask(s) = decided(s) ∪ ⋃_{s→t} mask(t), computed as a
// chaotic iteration directly over the store-backed adjacency. Masks only grow
// under ∪, so concurrent sweeps converge to the same least fixpoint as the
// serial iteration; each vertex is written by exactly one worker per sweep
// and successor masks are read atomically.
func (g *Graph) computeMasksParallel(workers int) {
	n := g.store.Len()
	masks := make([]uint32, n)
	// Seed with each state's own decisions, recorded at intern time. The
	// recording is only needed for this seeding, so release it after —
	// except on durable builds, which persist the seeds for incremental
	// recheck (see keepOwn).
	for i, m := range g.ownMasks {
		masks[i] = uint32(m)
	}
	if !g.keepOwn {
		g.ownMasks = nil
	}
	for {
		var changed atomic.Bool
		parallelFor(workers, n, func(i int) {
			m := atomic.LoadUint32(&masks[i])
			next := m
			for e := range g.store.EdgesFrom(StateID(i)) {
				next |= atomic.LoadUint32(&masks[e.To])
			}
			if next != m {
				atomic.StoreUint32(&masks[i], next)
				changed.Store(true)
			}
		})
		if !changed.Load() {
			break
		}
	}
	g.masks = make([]uint8, n)
	for i := range masks {
		g.masks[i] = uint8(masks[i])
	}
}
