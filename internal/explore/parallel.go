package explore

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/ioa-lab/boosting/internal/system"
)

// effectiveWorkers resolves a Workers knob: 0 means one worker per CPU,
// anything below 1 means serial.
func effectiveWorkers(w int) int {
	if w == 0 {
		return runtime.NumCPU()
	}
	if w < 1 {
		return 1
	}
	return w
}

// parallelFor runs f(0) … f(n-1) over the given number of workers, splitting
// the index space into contiguous chunks. It degenerates to a plain loop when
// workers <= 1 or the index space is trivial.
func parallelFor(workers, n int, f func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				f(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// fpShards is the number of lock stripes of the concurrent fingerprint
// store. Power of two so the shard index is a mask.
const fpShards = 64

// fpShard is one stripe of the deduplication store: the states first
// discovered under this stripe's fingerprints, plus their BFS-tree
// predecessors.
type fpShard struct {
	mu     sync.Mutex
	states map[string]system.State
	preds  map[string]pred
}

func shardIndex(fp string) int {
	// FNV-1a.
	h := uint32(2166136261)
	for i := 0; i < len(fp); i++ {
		h ^= uint32(fp[i])
		h *= 16777619
	}
	return int(h & (fpShards - 1))
}

// graphBuilder is the shared state of the parallel BFS: the sharded
// fingerprint store and the global vertex budget.
type graphBuilder struct {
	sys       *system.System
	maxStates int64
	shards    [fpShards]fpShard
	count     atomic.Int64
}

func newGraphBuilder(sys *system.System, maxStates int) *graphBuilder {
	b := &graphBuilder{sys: sys, maxStates: int64(maxStates)}
	for i := range b.shards {
		b.shards[i].states = map[string]system.State{}
		b.shards[i].preds = map[string]pred{}
	}
	return b
}

// tryInsert records fp → st (with predecessor p) if fp is new. The first
// inserter wins; later discoveries of the same fingerprint are dropped, so
// every vertex enters the frontier exactly once. Roots are exempt from the
// vertex budget, matching the serial engine.
func (b *graphBuilder) tryInsert(fp string, st system.State, p pred, isRoot bool) (inserted, overflow bool) {
	sh := &b.shards[shardIndex(fp)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.states[fp]; ok {
		return false, false
	}
	// Claim a budget slot atomically: concurrent inserts into different
	// shards must not conspire to exceed MaxStates.
	if b.count.Add(1) > b.maxStates && !isRoot {
		b.count.Add(-1)
		return false, true
	}
	sh.states[fp] = st
	if !isRoot {
		sh.preds[fp] = p
	}
	return true, false
}

func (b *graphBuilder) state(fp string) system.State {
	sh := &b.shards[shardIndex(fp)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.states[fp]
}

// expansion is the result of expanding one frontier vertex: its outgoing
// edges and the fingerprints of states it discovered first.
type expansion struct {
	edges []Edge
	fresh []string
	err   error
}

// expand applies every applicable task to the state of fp, inserting newly
// discovered successors into the sharded store.
func (b *graphBuilder) expand(fp string) expansion {
	st := b.state(fp)
	var out expansion
	for _, task := range b.sys.Tasks() {
		if !b.sys.Applicable(st, task) {
			continue
		}
		next, act, err := b.sys.Apply(st, task)
		if err != nil {
			out.err = fmt.Errorf("explore: apply %v: %w", task, err)
			return out
		}
		nfp := b.sys.Fingerprint(next)
		out.edges = append(out.edges, Edge{Task: task, Action: act, To: nfp})
		inserted, overflow := b.tryInsert(nfp, next, pred{from: fp, task: task, act: act}, false)
		if overflow {
			out.err = fmt.Errorf("%w: > %d states", ErrStateExplosion, b.maxStates)
			return out
		}
		if inserted {
			out.fresh = append(out.fresh, nfp)
		}
	}
	return out
}

// buildGraphParallel is the worker-pool engine behind BuildGraph: a
// level-synchronous BFS in which each frontier level is split across workers,
// deduplicated through the lock-striped fingerprint store, followed by a
// parallel reverse valence sweep. The produced graph has exactly the same
// vertex set, edge set and valences as the serial engine (exploration order
// only affects which BFS-tree predecessor each vertex records).
func buildGraphParallel(sys *system.System, roots []system.State, maxStates, workers int) (*Graph, error) {
	b := newGraphBuilder(sys, maxStates)
	g := &Graph{
		sys:    sys,
		states: make(map[string]system.State),
		succs:  make(map[string][]Edge),
		preds:  make(map[string]pred),
		masks:  make(map[string]uint8),
	}
	var frontier []string
	for _, r := range roots {
		fp := sys.Fingerprint(r)
		g.roots = append(g.roots, fp)
		if inserted, _ := b.tryInsert(fp, r, pred{}, true); inserted {
			frontier = append(frontier, fp)
		}
	}
	for len(frontier) > 0 {
		results := make([]expansion, len(frontier))
		parallelFor(workers, len(frontier), func(i int) {
			results[i] = b.expand(frontier[i])
		})
		var next []string
		for i := range results {
			if results[i].err != nil {
				return nil, results[i].err
			}
			g.succs[frontier[i]] = results[i].edges
			next = append(next, results[i].fresh...)
		}
		frontier = next
	}
	for i := range b.shards {
		sh := &b.shards[i]
		for fp, st := range sh.states {
			g.states[fp] = st
		}
		for fp, p := range sh.preds {
			g.preds[fp] = p
		}
	}
	g.computeMasksParallel(workers)
	return g, nil
}

// computeMasksParallel is the parallel counterpart of computeMasks: the same
// backward fixpoint mask(s) = decided(s) ∪ ⋃_{s→t} mask(t), computed as a
// chaotic iteration over an indexed adjacency representation. Masks only grow
// under ∪, so concurrent sweeps converge to the same least fixpoint as the
// serial iteration; each vertex is written by exactly one worker per sweep
// and successor masks are read atomically.
func (g *Graph) computeMasksParallel(workers int) {
	n := len(g.states)
	fps := make([]string, 0, n)
	for fp := range g.states {
		fps = append(fps, fp)
	}
	idx := make(map[string]int32, n)
	for i, fp := range fps {
		idx[fp] = int32(i)
	}
	masks := make([]uint32, n)
	adj := make([][]int32, n)
	parallelFor(workers, n, func(i int) {
		fp := fps[i]
		masks[i] = uint32(ownMask(g.sys, g.states[fp]))
		edges := g.succs[fp]
		if len(edges) == 0 {
			return
		}
		out := make([]int32, len(edges))
		for j, e := range edges {
			out[j] = idx[e.To]
		}
		adj[i] = out
	})
	for {
		var changed atomic.Bool
		parallelFor(workers, n, func(i int) {
			m := atomic.LoadUint32(&masks[i])
			next := m
			for _, j := range adj[i] {
				next |= atomic.LoadUint32(&masks[j])
			}
			if next != m {
				atomic.StoreUint32(&masks[i], next)
				changed.Store(true)
			}
		})
		if !changed.Load() {
			break
		}
	}
	for i, fp := range fps {
		g.masks[fp] = uint8(masks[i])
	}
}
