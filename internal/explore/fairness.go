package explore

import (
	"fmt"

	"github.com/ioa-lab/boosting/internal/ioa"
	"github.com/ioa-lab/boosting/internal/system"
)

// FairnessViolation describes a task that stayed applicable for longer than
// the audit window without being scheduled.
type FairnessViolation struct {
	Task ioa.Task
	// From is the step index at which the starvation window began.
	From int
}

// Error renders the violation.
func (v FairnessViolation) Error() string {
	return fmt.Sprintf("explore: task %v applicable from step %d, starved past the window", v.Task, v.From)
}

// AuditFairness replays an execution from the initial state of sys and
// checks a finite-window strengthening of the I/O-automata fairness
// condition (Section 2.1.1): every task that is continuously applicable for
// `window` consecutive locally-controlled steps must be scheduled within the
// window. The round-robin scheduler satisfies window = number of tasks; any
// recorded execution can be audited post hoc.
//
// The execution must start at sys.InitialState() and contain the inputs it
// was produced with (as recorded by RoundRobin/Random).
func AuditFairness(sys *system.System, exec ioa.Execution, window int) error {
	if window <= 0 {
		window = len(sys.Tasks())
	}
	st := sys.InitialState()
	// applicableSince[task] = step index since which the task has been
	// continuously applicable and unscheduled; -1 = not applicable.
	applicableSince := map[ioa.Task]int{}
	for _, task := range sys.Tasks() {
		applicableSince[task] = -1
	}
	steps := 0
	for _, step := range exec.Steps {
		// Replay the step.
		var next system.State
		var err error
		switch {
		case step.HasTask:
			next, _, err = sys.Apply(st, step.Task)
		case step.Action.Type == ioa.ActInit:
			next, _, err = sys.Init(st, step.Action.Proc, step.Action.Payload)
		case step.Action.Type == ioa.ActFail:
			next, _, err = sys.Fail(st, step.Action.Proc)
		default:
			return fmt.Errorf("explore: cannot replay step %v", step.Action)
		}
		if err != nil {
			return fmt.Errorf("explore: replay: %w", err)
		}
		if step.HasTask {
			steps++
			applicableSince[step.Task] = -1 // scheduled: reset
		}
		st = next
		// Update applicability windows against the new state.
		for _, task := range sys.Tasks() {
			if !sys.Applicable(st, task) {
				applicableSince[task] = -1
				continue
			}
			if applicableSince[task] < 0 {
				applicableSince[task] = steps
				continue
			}
			if steps-applicableSince[task] >= window {
				return FairnessViolation{Task: task, From: applicableSince[task]}
			}
		}
	}
	return nil
}
