package explore

import (
	"context"
	"fmt"

	"github.com/ioa-lab/boosting/internal/ioa"
)

// Hook is the Fig. 2 pattern: from vertex Alpha, task E leads to the
// 0-valent Alpha0, while task EPrime leads to AlphaPrime from which E leads
// to the 1-valent Alpha1. (Valences may be swapped; Valence0 records the
// valence of Alpha0.)
type Hook struct {
	Alpha      StateID
	E          ioa.Task
	EPrime     ioa.Task
	AlphaPrime StateID
	Alpha0     StateID
	Alpha1     StateID
	// Valence0 is the valence of Alpha0 (ZeroValent or OneValent); Alpha1
	// has the opposite valence.
	Valence0 Valence
}

// String renders the hook in the paper's notation.
func (h Hook) String() string {
	v1 := OneValent
	if h.Valence0 == OneValent {
		v1 = ZeroValent
	}
	return fmt.Sprintf("hook: α —%v→ α0 (%v); α —%v→ α' —%v→ α1 (%v)",
		h.E, h.Valence0, h.EPrime, h.E, v1)
}

// Divergence certifies an infinite fair failure-free input-first execution
// through bivalent vertices only: the Fig. 3 construction revisited a
// (vertex, round-robin position) pair, so the deterministic fair schedule
// cycles forever and no process ever decides (every vertex on the cycle is
// bivalent, hence decision-free).
type Divergence struct {
	// CycleVertex is the repeated vertex.
	CycleVertex StateID
	// Steps is the number of construction steps taken before the repeat.
	Steps int
}

// HookSearchResult is the outcome of the Fig. 3 construction: exactly one of
// Hook and Divergence is non-nil.
type HookSearchResult struct {
	Hook       *Hook
	Divergence *Divergence
	// PathLen is the number of edges on the constructed bivalent path.
	PathLen int
}

// FindHook runs the Fig. 3 construction from a bivalent root vertex of g.
//
// Starting from the root it builds a path through bivalent vertices,
// considering tasks in round-robin order: for the next applicable task e it
// searches the descendants reachable without scheduling e for a vertex α′
// with e(α′) bivalent, and moves there. If no such vertex exists the
// construction terminates and the hook is located on the path from the
// current vertex to a vertex deciding the opposite value (Lemma 5's case
// analysis). If the construction revisits a configuration, the system
// diverges: an infinite fair bivalent path exists.
func FindHook(g *Graph, root StateID) (HookSearchResult, error) {
	return FindHookCtx(nil, g, root, 1)
}

// FindHookWorkers is FindHook with a concurrency knob: the bivalent-extension
// searches of the Fig. 3 construction scan each BFS level across the given
// number of workers (0 = runtime.NumCPU(), 1 = serial). The outcome is
// identical to the serial search.
func FindHookWorkers(g *Graph, root StateID, workers int) (HookSearchResult, error) {
	return FindHookCtx(nil, g, root, workers)
}

// FindHookCtx is FindHookWorkers with cancellation: the construction checks
// ctx at every step and inside every per-step BFS (each scanned level), so
// a cancelled context stops a long hook search mid-scan with ctx.Err().
// A nil context never cancels.
func FindHookCtx(ctx context.Context, g *Graph, root StateID, workers int) (HookSearchResult, error) {
	if g.Valence(root) != Bivalent {
		return HookSearchResult{}, fmt.Errorf("%w: %s", ErrNotBivalent, g.Valence(root))
	}
	workers = effectiveWorkers(workers)
	tasks := g.sys.Tasks()
	// One BFS tree reused across every construction step: begin() bumps an
	// epoch instead of reallocating graph-size arrays per step.
	tree := newBFSTree(g.store.Len())
	alpha := root
	rr := 0
	pathLen := 0
	type cfg struct {
		id StateID
		rr int
	}
	seen := map[cfg]bool{}
	for {
		if err := ctxErr(ctx); err != nil {
			return HookSearchResult{}, err
		}
		if seen[cfg{alpha, rr}] {
			return HookSearchResult{
				Divergence: &Divergence{CycleVertex: alpha, Steps: pathLen},
				PathLen:    pathLen,
			}, nil
		}
		seen[cfg{alpha, rr}] = true

		// Next round-robin task applicable to alpha. A process task is
		// always applicable, so this terminates.
		var e ioa.Task
		found := false
		for probe := 0; probe < len(tasks); probe++ {
			cand := tasks[(rr+probe)%len(tasks)]
			if _, ok := g.Succ(alpha, cand); ok {
				e = cand
				rr = (rr + probe + 1) % len(tasks)
				found = true
				break
			}
		}
		if !found {
			return HookSearchResult{}, fmt.Errorf("explore: no applicable task at %q", g.Fingerprint(alpha))
		}

		// Search for α′ reachable from alpha without e-edges such that
		// e(α′) is bivalent.
		target, path, ok, err := g.findBivalentExtension(ctx, alpha, e, workers, tree)
		if err != nil {
			return HookSearchResult{}, err
		}
		if !ok {
			// Construction terminates: for every α′ reachable without e,
			// e(α′) is univalent. Locate the hook.
			h, err := g.locateHook(ctx, alpha, e)
			if err != nil {
				return HookSearchResult{}, err
			}
			return HookSearchResult{Hook: h, PathLen: pathLen}, nil
		}
		pathLen += len(path) + 1
		edge, _ := g.Succ(target, e)
		alpha = edge.To
	}
}

// findBivalentExtension searches (level-synchronous BFS, avoiding e-labelled
// edges) for a vertex α′ with e(α′) bivalent, returning α′ and the path to
// it. The per-level predicate checks run across the given number of workers;
// levels are expanded in queue order, so the vertex found is the first one in
// serial BFS order regardless of the worker count. The context is checked at
// every level boundary.
func (g *Graph) findBivalentExtension(ctx context.Context, alpha StateID, e ioa.Task, workers int, tree *bfsTree) (StateID, []Edge, bool, error) {
	tree.begin(alpha)
	level := []StateID{alpha}
	// The per-vertex predicate is a few slice lookups, so fanning a level out
	// only pays for itself once the level is large; below the threshold the
	// goroutine spawn would cost more than the scan.
	const minParallelLevel = 256
	for len(level) > 0 {
		if err := ctxErr(ctx); err != nil {
			return 0, nil, false, err
		}
		w := workers
		if len(level) < minParallelLevel {
			w = 1
		}
		hits := make([]bool, len(level))
		parallelFor(w, len(level), func(i int) {
			if edge, ok := g.Succ(level[i], e); ok && g.Valence(edge.To) == Bivalent {
				hits[i] = true
			}
		})
		for i, id := range level {
			if hits[i] {
				return id, tree.path(g, alpha, id), true, nil
			}
		}
		var next []StateID
		for _, id := range level {
			j := -1
			for edge := range g.store.EdgesFrom(id) {
				j++
				if edge.Task == e || tree.seen(edge.To) {
					continue
				}
				tree.visit(id, j, edge.To)
				next = append(next, edge.To)
			}
		}
		level = next
	}
	return 0, nil, false, nil
}

// locateHook implements the case analysis at the end of Lemma 5's proof:
// alpha is bivalent, e(alpha) is univalent (say v-valent), and e(α′) is
// univalent for every α′ reachable from alpha without e-edges. Walk a path
// from alpha towards a vertex deciding the opposite value and find the flip.
func (g *Graph) locateHook(ctx context.Context, alpha StateID, e ioa.Task) (*Hook, error) {
	first, ok := g.Succ(alpha, e)
	if !ok {
		return nil, fmt.Errorf("explore: task %v not applicable at hook base", e)
	}
	v0 := g.Valence(first.To)
	if v0 != ZeroValent && v0 != OneValent {
		return nil, fmt.Errorf("explore: e(α) has valence %v at hook base", v0)
	}
	opposite := OneValent
	oppositeMask := maskOne
	if v0 == OneValent {
		opposite = ZeroValent
		oppositeMask = maskZero
	}
	// Find a descendant of alpha in which some process decides the opposite
	// value (it exists: alpha is bivalent).
	decPath, err := g.findDecidingPath(ctx, alpha, oppositeMask)
	if err != nil {
		return nil, err
	}
	// σ_0 = alpha, σ_{j+1} = target of decPath[j]. Let T be the index of the
	// first e-labelled edge on the path (Lemma 5's case 2), or len(decPath)
	// if e does not occur (case 1). For every j ≤ T, task e is applicable at
	// σ_j (Lemma 1: no e-edge occurs before σ_j), and the sequence of
	// valences of e(σ_j) starts v0-valent at j = 0 and reaches the opposite
	// valence by j = T: in case 1, e(σ_T) extends the vertex that already
	// decided the opposite value; in case 2, e(σ_T) = σ_{T+1} is an ancestor
	// of that vertex. Find the flip between consecutive entries.
	limit := len(decPath)
	for j, edge := range decPath {
		if edge.Task == e {
			limit = j
			break
		}
	}
	sigma := make([]StateID, 0, limit+1)
	sigma = append(sigma, alpha)
	for j := 0; j < limit; j++ {
		sigma = append(sigma, decPath[j].To)
	}
	prev := v0
	for j := 1; j <= limit; j++ {
		edge, ok := g.Succ(sigma[j], e)
		if !ok {
			return nil, fmt.Errorf("explore: e not applicable at σ_%d (Lemma 1 violated?)", j)
		}
		cur := g.Valence(edge.To)
		if cur == Bivalent {
			return nil, fmt.Errorf("explore: e(σ_%d) bivalent after construction terminated", j)
		}
		if prev == v0 && cur == opposite {
			// Hook found between σ_{j-1} and σ_j.
			e0, _ := g.Succ(sigma[j-1], e)
			return &Hook{
				Alpha:      sigma[j-1],
				E:          e,
				EPrime:     decPath[j-1].Task,
				AlphaPrime: sigma[j],
				Alpha0:     e0.To,
				Alpha1:     edge.To,
				Valence0:   v0,
			}, nil
		}
		prev = cur
	}
	return nil, fmt.Errorf("explore: no valence flip found along deciding path (len %d)", len(decPath))
}

// findDecidingPath returns a path (BFS tree) from start to a vertex whose
// state records a decision matching wantMask. Like FindState, it stores one
// predecessor link per visited vertex and reconstructs the path once. The
// context is polled every 64 dequeues, mirroring the serial build loop.
func (g *Graph) findDecidingPath(ctx context.Context, start StateID, wantMask uint8) ([]Edge, error) {
	tree := newBFSTree(g.store.Len())
	tree.begin(start)
	queue := []StateID{start}
	for head := 0; head < len(queue); head++ {
		if head&63 == 0 {
			if err := ctxErr(ctx); err != nil {
				return nil, err
			}
		}
		id := queue[head]
		st, _ := g.store.State(id)
		if ownMask(g.sys, st)&wantMask != 0 {
			return tree.path(g, start, id), nil
		}
		i := -1
		for edge := range g.store.EdgesFrom(id) {
			i++
			if tree.seen(edge.To) {
				continue
			}
			tree.visit(id, i, edge.To)
			queue = append(queue, edge.To)
		}
	}
	return nil, fmt.Errorf("%w from %q", ErrNoDecision, g.Fingerprint(start))
}
