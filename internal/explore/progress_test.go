package explore_test

import (
	"context"
	"errors"
	"testing"

	"github.com/ioa-lab/boosting/internal/explore"
	"github.com/ioa-lab/boosting/internal/protocols"
	"github.com/ioa-lab/boosting/internal/service"
	"github.com/ioa-lab/boosting/internal/system"
)

func forwardRoot(t *testing.T, n, f int) (*system.System, system.State) {
	t.Helper()
	sys, err := protocols.BuildForward(n, f, service.Adversarial)
	if err != nil {
		t.Fatal(err)
	}
	root, _, err := initAll(sys)
	if err != nil {
		t.Fatal(err)
	}
	return sys, root
}

// TestProgressStreaming checks the per-level Progress contract: one report
// per BFS level, cumulative totals matching the finished graph, a final
// empty frontier, and the exact same sequence from the serial engine, the
// parallel engine, and every store backend.
func TestProgressStreaming(t *testing.T) {
	sys, root := forwardRoot(t, 3, 0)
	var want []explore.Progress
	collect := func(dst *[]explore.Progress) explore.ProgressFunc {
		return func(p explore.Progress) { *dst = append(*dst, p) }
	}
	g, err := explore.BuildGraph(sys, []system.State{root}, explore.BuildOptions{Workers: 1, Progress: collect(&want)})
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("no progress reports from serial build")
	}
	last := want[len(want)-1]
	if last.Frontier != 0 {
		t.Errorf("final frontier %d, want 0", last.Frontier)
	}
	if last.States != g.Size() || last.Edges != g.Edges() {
		t.Errorf("final totals (%d states, %d edges) != graph (%d, %d)",
			last.States, last.Edges, g.Size(), g.Edges())
	}
	for i := 1; i < len(want); i++ {
		if want[i].Level != i || want[i].States < want[i-1].States || want[i].Edges < want[i-1].Edges {
			t.Fatalf("non-monotone progress at %d: %+v after %+v", i, want[i], want[i-1])
		}
	}
	for _, tc := range []struct {
		name string
		opt  explore.BuildOptions
	}{
		{"parallel", explore.BuildOptions{Workers: 4}},
		{"hash64", explore.BuildOptions{Workers: 1, Store: explore.StoreHash64}},
		{"hash128-parallel", explore.BuildOptions{Workers: 4, Store: explore.StoreHash128}},
	} {
		var got []explore.Progress
		tc.opt.Progress = collect(&got)
		if _, err := explore.BuildGraph(sys, []system.State{root}, tc.opt); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d reports, want %d", tc.name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("%s: report %d = %+v, want %+v", tc.name, i, got[i], want[i])
			}
		}
	}
}

// TestBuildGraphCancellation cancels a build from inside a progress
// callback — i.e. while later levels are still pending — and expects
// ctx.Err() promptly from both engines, with the exploration cut short.
func TestBuildGraphCancellation(t *testing.T) {
	sys, root := forwardRoot(t, 3, 0)
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		levels := 0
		_, err := explore.BuildGraph(sys, []system.State{root}, explore.BuildOptions{
			Workers: workers,
			Ctx:     ctx,
			Progress: func(explore.Progress) {
				levels++
				if levels == 2 {
					cancel()
				}
			},
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if levels >= 10 {
			t.Errorf("workers=%d: %d levels ran after cancellation", workers, levels)
		}
	}
}

// TestCancelledBeforeStart: an already-cancelled context stops every entry
// point before real work happens.
func TestCancelledBeforeStart(t *testing.T) {
	sys, root := forwardRoot(t, 2, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := explore.BuildGraph(sys, []system.State{root}, explore.BuildOptions{Workers: 1, Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Errorf("BuildGraph: %v", err)
	}
	if _, err := explore.Refute(sys, 1, explore.RefuteOptions{Build: explore.BuildOptions{Workers: 1, Ctx: ctx}}); !errors.Is(err, context.Canceled) {
		t.Errorf("Refute: %v", err)
	}
	cfgs := []explore.RunConfig{{Inputs: map[int]string{0: "0", 1: "1"}}}
	if _, err := explore.RunBatchCtx(ctx, sys, cfgs, 2); !errors.Is(err, context.Canceled) {
		t.Errorf("RunBatchCtx: %v", err)
	}
	// nil context: never cancels.
	if _, err := explore.RunBatchCtx(nil, sys, cfgs, 1); err != nil {
		t.Errorf("RunBatchCtx(nil): %v", err)
	}
}

// TestLimitErrorTyped: the vertex budget surfaces as *LimitError carrying
// the partial count, still matching the ErrStateExplosion sentinel and the
// historical message, on every engine × store combination.
func TestLimitErrorTyped(t *testing.T) {
	sys, root := forwardRoot(t, 2, 0)
	for _, workers := range []int{1, 4} {
		for _, store := range []explore.StoreKind{explore.StoreDense, explore.StoreHash64, explore.StoreHash128} {
			_, err := explore.BuildGraph(sys, []system.State{root},
				explore.BuildOptions{MaxStates: 3, Workers: workers, Store: store})
			if !errors.Is(err, explore.ErrStateExplosion) {
				t.Fatalf("workers=%d store=%v: not ErrStateExplosion: %v", workers, store, err)
			}
			var le *explore.LimitError
			if !errors.As(err, &le) {
				t.Fatalf("workers=%d store=%v: not a *LimitError: %v", workers, store, err)
			}
			if le.Limit != 3 || le.Explored != 3 {
				t.Errorf("workers=%d store=%v: LimitError{Limit:%d, Explored:%d}, want 3/3",
					workers, store, le.Limit, le.Explored)
			}
			if want := "explore: state limit exceeded: > 3 states"; err.Error() != want {
				t.Errorf("message %q, want %q", err.Error(), want)
			}
		}
	}
}
