package linearize

import (
	"errors"
	"testing"

	"github.com/ioa-lab/boosting/internal/ioa"
	"github.com/ioa-lab/boosting/internal/seqtype"
)

// mkOp builds a completed operation.
func mkOp(proc int, inv, resp string, invAt, respAt int) Op {
	return Op{Proc: proc, Inv: inv, Resp: resp, HasResp: true, InvAt: invAt, RespAt: respAt}
}

func TestCheckSequentialRegisterHistory(t *testing.T) {
	ty := seqtype.ReadWrite([]string{"", "x", "y"}, "")
	h := History{Service: "r", Ops: []Op{
		mkOp(0, seqtype.Write("x"), seqtype.Ack, 0, 1),
		mkOp(1, seqtype.Read, "x", 2, 3),
		mkOp(0, seqtype.Write("y"), seqtype.Ack, 4, 5),
		mkOp(1, seqtype.Read, "y", 6, 7),
	}}
	order, err := Check(h, ty)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 4 {
		t.Errorf("linearization: %v", order)
	}
}

func TestCheckConcurrentOverlapAllowsReordering(t *testing.T) {
	// write(x) overlaps a read that returns "" — legal: the read may
	// linearize before the write.
	ty := seqtype.ReadWrite([]string{"", "x"}, "")
	h := History{Service: "r", Ops: []Op{
		mkOp(0, seqtype.Write("x"), seqtype.Ack, 0, 5),
		mkOp(1, seqtype.Read, "", 1, 2),
	}}
	if _, err := Check(h, ty); err != nil {
		t.Fatalf("overlapping read-before-write rejected: %v", err)
	}
}

func TestCheckRejectsStaleRead(t *testing.T) {
	// A read strictly after write(x) completed must not return "".
	ty := seqtype.ReadWrite([]string{"", "x"}, "")
	h := History{Service: "r", Ops: []Op{
		mkOp(0, seqtype.Write("x"), seqtype.Ack, 0, 1),
		mkOp(1, seqtype.Read, "", 2, 3),
	}}
	if _, err := Check(h, ty); !errors.Is(err, ErrNotLinearizable) {
		t.Fatalf("stale read accepted: %v", err)
	}
}

func TestCheckRejectsConsensusDisagreement(t *testing.T) {
	ty := seqtype.BinaryConsensus()
	h := History{Service: "k", Ops: []Op{
		mkOp(0, seqtype.Init("0"), seqtype.Decide("0"), 0, 1),
		mkOp(1, seqtype.Init("1"), seqtype.Decide("1"), 2, 3),
	}}
	if _, err := Check(h, ty); !errors.Is(err, ErrNotLinearizable) {
		t.Fatalf("disagreeing consensus history accepted: %v", err)
	}
}

func TestCheckConsensusAgreementAccepted(t *testing.T) {
	ty := seqtype.BinaryConsensus()
	h := History{Service: "k", Ops: []Op{
		mkOp(0, seqtype.Init("0"), seqtype.Decide("0"), 0, 1),
		mkOp(1, seqtype.Init("1"), seqtype.Decide("0"), 2, 3),
	}}
	if _, err := Check(h, ty); err != nil {
		t.Fatalf("agreeing consensus history rejected: %v", err)
	}
}

func TestCheckPendingOperationMayTakeEffect(t *testing.T) {
	// A pending write (no response) whose value a later read returns: the
	// linearization must be allowed to include the pending op.
	ty := seqtype.ReadWrite([]string{"", "x"}, "")
	h := History{Service: "r", Ops: []Op{
		{Proc: 0, Inv: seqtype.Write("x"), InvAt: 0}, // pending
		mkOp(1, seqtype.Read, "x", 1, 2),
	}}
	if _, err := Check(h, ty); err != nil {
		t.Fatalf("pending-write-then-read rejected: %v", err)
	}
}

func TestCheckPendingOperationMayBeDropped(t *testing.T) {
	ty := seqtype.ReadWrite([]string{"", "x"}, "")
	h := History{Service: "r", Ops: []Op{
		{Proc: 0, Inv: seqtype.Write("x"), InvAt: 0}, // pending, no effect
		mkOp(1, seqtype.Read, "", 1, 2),
	}}
	if _, err := Check(h, ty); err != nil {
		t.Fatalf("dropped pending write rejected: %v", err)
	}
}

func TestCheckNondeterministicType(t *testing.T) {
	// k-set-consensus: two ops deciding different values is fine for k = 2.
	ty := seqtype.KSetConsensus(2, 3)
	h := History{Service: "k", Ops: []Op{
		mkOp(0, seqtype.Init("0"), seqtype.Decide("0"), 0, 1),
		mkOp(1, seqtype.Init("1"), seqtype.Decide("1"), 2, 3),
	}}
	if _, err := Check(h, ty); err != nil {
		t.Fatalf("2 distinct decisions rejected for 2-set type: %v", err)
	}
	// Three distinct decisions exceed k = 2.
	h.Ops = append(h.Ops, mkOp(2, seqtype.Init("2"), seqtype.Decide("2"), 4, 5))
	if _, err := Check(h, ty); !errors.Is(err, ErrNotLinearizable) {
		t.Fatalf("3 distinct decisions accepted for 2-set type: %v", err)
	}
}

func TestExtractMatchesFIFO(t *testing.T) {
	exec := ioa.Execution{Steps: []ioa.Step{
		{Action: ioa.Action{Type: ioa.ActInvoke, Proc: 0, Service: "r", Payload: seqtype.Write("x")}},
		{Action: ioa.Action{Type: ioa.ActInvoke, Proc: 0, Service: "r", Payload: seqtype.Read}},
		{Action: ioa.Action{Type: ioa.ActRespond, Proc: 0, Service: "r", Payload: seqtype.Ack}},
		{Action: ioa.Action{Type: ioa.ActRespond, Proc: 0, Service: "r", Payload: "x"}},
		{Action: ioa.Action{Type: ioa.ActInvoke, Proc: 1, Service: "other", Payload: seqtype.Read}},
	}}
	h := Extract(exec, "r")
	if len(h.Ops) != 2 {
		t.Fatalf("ops: %v", h.Ops)
	}
	if h.Ops[0].Resp != seqtype.Ack || h.Ops[1].Resp != "x" {
		t.Errorf("FIFO matching broken: %v", h.Ops)
	}
	if !h.Ops[0].HasResp || !h.Ops[1].HasResp {
		t.Error("responses not attached")
	}
}

func TestRealTimeOrderRespected(t *testing.T) {
	// Completed op A strictly before completed op B: B cannot linearize
	// before A. test&set: first tas must return 0.
	ty := seqtype.TestAndSet()
	h := History{Service: "t", Ops: []Op{
		mkOp(0, "tas", "1", 0, 1), // claims the bit was already set — but it is first!
		mkOp(1, "tas", "0", 2, 3),
	}}
	if _, err := Check(h, ty); !errors.Is(err, ErrNotLinearizable) {
		t.Fatalf("impossible tas order accepted: %v", err)
	}
}

func TestCheckExecutionMultipleServices(t *testing.T) {
	exec := ioa.Execution{Steps: []ioa.Step{
		{Action: ioa.Action{Type: ioa.ActInvoke, Proc: 0, Service: "a", Payload: seqtype.Write("x")}},
		{Action: ioa.Action{Type: ioa.ActRespond, Proc: 0, Service: "a", Payload: seqtype.Ack}},
		{Action: ioa.Action{Type: ioa.ActInvoke, Proc: 0, Service: "b", Payload: "tas"}},
		{Action: ioa.Action{Type: ioa.ActRespond, Proc: 0, Service: "b", Payload: "0"}},
	}}
	err := CheckExecution(exec, map[string]*seqtype.Type{
		"a": seqtype.ReadWrite([]string{"", "x"}, ""),
		"b": seqtype.TestAndSet(),
	})
	if err != nil {
		t.Fatal(err)
	}
}
