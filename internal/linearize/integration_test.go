package linearize_test

import (
	"strconv"
	"testing"

	"github.com/ioa-lab/boosting/internal/explore"
	"github.com/ioa-lab/boosting/internal/linearize"
	"github.com/ioa-lab/boosting/internal/process"
	"github.com/ioa-lab/boosting/internal/seqtype"
	"github.com/ioa-lab/boosting/internal/service"
	"github.com/ioa-lab/boosting/internal/servicetype"
	"github.com/ioa-lab/boosting/internal/system"
)

// hammer is a workload program: on init, each process fires a pipeline of
// operations at the shared counter and register, then decides when all
// responses are in.
type hammer struct{ ops int }

func (h hammer) Start(int) map[string]string { return map[string]string{"got": "0"} }

func (h hammer) HandleInit(ctx *process.Context, v string) {
	for i := 0; i < h.ops; i++ {
		ctx.Invoke("cnt", "inc")
		ctx.Invoke("reg", seqtype.Write(strconv.Itoa(ctx.ID())))
		ctx.Invoke("reg", seqtype.Read)
	}
}

func (h hammer) HandleResponse(ctx *process.Context, svc, resp string) {
	n := ctx.GetInt("got") + 1
	ctx.SetInt("got", n)
	if n >= 3*h.ops && !ctx.Decided() {
		ctx.Decide("done")
	}
}

func buildHammerSystem(t testing.TB, procs, opsPerProc int) *system.System {
	t.Helper()
	eps := make([]int, procs)
	ps := make([]*process.Process, procs)
	for i := 0; i < procs; i++ {
		eps[i] = i
		ps[i] = process.New(i, hammer{ops: opsPerProc})
	}
	cnt, err := service.NewWaitFree("cnt",
		servicetype.FromSequential(seqtype.Counter()), eps, service.Adversarial)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]string, 0, procs+1)
	vals = append(vals, "")
	for i := 0; i < procs; i++ {
		vals = append(vals, strconv.Itoa(i))
	}
	reg, err := service.NewRegister("reg", vals, "", eps)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := system.New(ps, []*service.Service{cnt, reg})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestCanonicalObjectsLinearizableUnderRandomSchedules(t *testing.T) {
	// Clause 2 of the implements relation (Section 2.1.4), checked
	// empirically: every history the canonical objects produce under
	// adversarial random scheduling is linearizable w.r.t. their sequential
	// types.
	sys := buildHammerSystem(t, 3, 2)
	inputs := map[int]string{0: "x", 1: "x", 2: "x"}
	types := map[string]*seqtype.Type{
		"cnt": seqtype.Counter(),
		"reg": seqtype.ReadWrite([]string{"", "0", "1", "2"}, ""),
	}
	for seed := int64(1); seed <= 25; seed++ {
		res, err := explore.Random(sys, explore.RunConfig{Inputs: inputs}, seed, 5000)
		if err != nil {
			t.Fatal(err)
		}
		if err := linearize.CheckExecution(res.Exec, types); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestCanonicalObjectsLinearizableUnderFailures(t *testing.T) {
	sys := buildHammerSystem(t, 3, 2)
	inputs := map[int]string{0: "x", 1: "x", 2: "x"}
	types := map[string]*seqtype.Type{
		"cnt": seqtype.Counter(),
		"reg": seqtype.ReadWrite([]string{"", "0", "1", "2"}, ""),
	}
	for seed := int64(1); seed <= 15; seed++ {
		res, err := explore.Random(sys, explore.RunConfig{
			Inputs:   inputs,
			Failures: []explore.FailureEvent{{Proc: 1}},
		}, seed, 5000)
		if err != nil {
			t.Fatal(err)
		}
		if err := linearize.CheckExecution(res.Exec, types); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestCounterIncrementsAreUnique(t *testing.T) {
	// Each fetch-and-increment returns a distinct value — the canonical
	// counter serializes concurrent increments.
	sys := buildHammerSystem(t, 3, 2)
	inputs := map[int]string{0: "x", 1: "x", 2: "x"}
	res, err := explore.RoundRobin(sys, explore.RunConfig{Inputs: inputs})
	if err != nil {
		t.Fatal(err)
	}
	h := linearize.Extract(res.Exec, "cnt")
	seen := map[string]bool{}
	for _, op := range h.Ops {
		if op.Inv != "inc" || !op.HasResp {
			continue
		}
		if seen[op.Resp] {
			t.Fatalf("duplicate increment ticket %q", op.Resp)
		}
		seen[op.Resp] = true
	}
	if len(seen) != 6 {
		t.Errorf("tickets issued: %d, want 6", len(seen))
	}
}
