// Package linearize checks histories of atomic objects for linearizability
// (Herlihy–Wing), the safety half of the paper's "implements" relation for
// atomic objects (Section 2.1.4, clause 2: every trace of the implementation
// is a trace of the canonical object — i.e. responses are consistent with
// some linearization of the operations by the sequential type).
//
// Histories are extracted from executions of the composed system: an
// operation on service k by process i is an ActInvoke step matched with the
// ActRespond step that answers it. Because canonical services serve each
// endpoint's invocations in FIFO order, the j-th response to endpoint i
// answers the j-th invocation by endpoint i.
//
// The checker implements the classic Wing–Gong search: repeatedly pick a
// minimal operation — one whose invocation precedes every unlinearized
// operation's response — apply the sequential type's δ, and backtrack on
// mismatch. Memoization on (linearized set, value) keeps the search feasible
// on the history sizes our explorations produce.
package linearize

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/ioa-lab/boosting/internal/ioa"
	"github.com/ioa-lab/boosting/internal/seqtype"
)

// ErrNotLinearizable is returned when no linearization explains a history.
var ErrNotLinearizable = errors.New("linearize: history is not linearizable")

// Op is one operation of a history: an invocation with its (possibly
// pending) response, positioned by the step indices of the source execution.
type Op struct {
	Proc    int
	Inv     string
	Resp    string
	HasResp bool
	// InvAt and RespAt are step indices in the source execution; RespAt is
	// meaningful only when HasResp.
	InvAt  int
	RespAt int
}

// String renders the operation.
func (o Op) String() string {
	resp := "?"
	if o.HasResp {
		resp = o.Resp
	}
	return fmt.Sprintf("P%d: %s → %s", o.Proc, o.Inv, resp)
}

// History is the per-service projection of an execution: a set of
// operations with real-time order induced by step indices.
type History struct {
	Service string
	Ops     []Op
}

// Extract projects the history of one service out of an execution.
func Extract(exec ioa.Execution, service string) History {
	h := History{Service: service}
	// Pending invocation op-indices per endpoint: a FIFO advanced by a head
	// index, so dequeuing never re-slices the backing array.
	pending := map[int][]int{}
	heads := map[int]int{}
	for idx, step := range exec.Steps {
		a := step.Action
		if a.Service != service {
			continue
		}
		switch a.Type {
		case ioa.ActInvoke:
			h.Ops = append(h.Ops, Op{Proc: a.Proc, Inv: a.Payload, InvAt: idx})
			pending[a.Proc] = append(pending[a.Proc], len(h.Ops)-1)
		case ioa.ActRespond:
			queue, head := pending[a.Proc], heads[a.Proc]
			if head >= len(queue) {
				continue // response with no matching invocation: ignore
			}
			opIdx := queue[head]
			heads[a.Proc] = head + 1
			h.Ops[opIdx].Resp = a.Payload
			h.Ops[opIdx].HasResp = true
			h.Ops[opIdx].RespAt = idx
		}
	}
	return h
}

// precedes reports whether a returned strictly before b was invoked
// (the Herlihy–Wing real-time order).
func precedes(a, b Op) bool {
	return a.HasResp && a.RespAt < b.InvAt
}

// Check searches for a linearization of the history against the sequential
// type: a total order of the completed operations (pending operations may be
// included or dropped) that respects real-time precedence and in which every
// response matches δ applied in order from some initial value.
//
// It returns the linearization (as indices into h.Ops) on success.
func Check(h History, typ *seqtype.Type) ([]int, error) {
	// Pending operations without responses may have taken effect or not;
	// the search may schedule them (with any δ-permitted response) or leave
	// them out. To bound the search we only consider completed ops as
	// mandatory.
	n := len(h.Ops)
	if n > 63 {
		return nil, fmt.Errorf("linearize: history too large (%d ops)", n)
	}
	type key struct {
		done uint64
		val  string
	}
	visited := map[key]bool{}

	var order []int
	var search func(done uint64, val string) bool
	search = func(done uint64, val string) bool {
		k := key{done, val}
		if visited[k] {
			return false
		}
		visited[k] = true

		allComplete := true
		for i, op := range h.Ops {
			if done&(1<<uint(i)) != 0 {
				continue
			}
			if op.HasResp {
				allComplete = false
			}
		}
		if allComplete {
			return true // every completed op linearized; pending ones dropped
		}
		for i, op := range h.Ops {
			if done&(1<<uint(i)) != 0 {
				continue
			}
			// op is minimal iff no other unlinearized operation precedes it.
			minimal := true
			for j, other := range h.Ops {
				if i == j || done&(1<<uint(j)) != 0 {
					continue
				}
				if precedes(other, op) {
					minimal = false
					break
				}
			}
			if !minimal {
				continue
			}
			for _, r := range typ.Apply(op.Inv, val) {
				if op.HasResp && r.Resp != op.Resp {
					continue
				}
				order = append(order, i)
				if search(done|1<<uint(i), r.NewVal) {
					return true
				}
				order = order[:len(order)-1]
			}
			if !op.HasResp {
				// A pending operation may also not have taken effect yet;
				// trying other minimal ops first covers that, so nothing
				// extra here.
				continue
			}
		}
		return false
	}

	for _, initial := range typ.Initials {
		visited = map[key]bool{}
		order = order[:0]
		if search(0, initial) {
			out := make([]int, len(order))
			copy(out, order)
			return out, nil
		}
	}
	return nil, fmt.Errorf("%w: %s over %s", ErrNotLinearizable, describe(h), typ.Name)
}

// CheckExecution extracts and checks the history of every listed service.
func CheckExecution(exec ioa.Execution, services map[string]*seqtype.Type) error {
	names := make([]string, 0, len(services))
	for name := range services {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := Extract(exec, name)
		if _, err := Check(h, services[name]); err != nil {
			return err
		}
	}
	return nil
}

func describe(h History) string {
	parts := make([]string, 0, len(h.Ops))
	for _, op := range h.Ops {
		parts = append(parts, op.String())
	}
	const max = 6
	if len(parts) > max {
		parts = append(parts[:max], "… +"+strconv.Itoa(len(h.Ops)-max))
	}
	return h.Service + " [" + strings.Join(parts, "; ") + "]"
}
