// Package cliflags is the shared flag block of the cmd/* binaries: every
// tool takes the same exploration knobs (-workers, -shards, -maxstates,
// -store, -spilldir, -nowitness, -symmetry), and every tool surfaces partial
// exploration counts when a state budget overflows. Before the boosting
// façade each binary carried its own copy of this block; now there is one.
package cliflags

import (
	"errors"
	"flag"
	"fmt"
	"time"

	"github.com/ioa-lab/boosting"
)

// Common holds the flag values shared by all binaries.
type Common struct {
	Workers   int
	Shards    int
	MaxStates int
	Store     string
	SpillDir  string
	GraphDir  string
	NoWitness bool
	Symmetry  bool
}

// Register installs the shared flags on a flag set and returns the value
// holder to read after parsing.
func Register(fs *flag.FlagSet) *Common {
	c := &Common{}
	fs.IntVar(&c.Workers, "workers", 0, "exploration workers (0 = one per CPU, 1 = serial)")
	fs.IntVar(&c.Shards, "shards", 0, "fingerprint-partitioned intern shards (0 = off; >= 1 selects the sharded engine with deterministic renumbering)")
	fs.IntVar(&c.MaxStates, "maxstates", 0, "explored-state budget per graph build (0 = engine default)")
	// The empty sentinel default (rendered as dense by ParseStore) lets
	// Options distinguish an explicit -store dense from the default, so
	// -spilldir can reject every explicit conflicting backend.
	fs.StringVar(&c.Store, "store", "", "state store backend: dense | hash64 | hash128 | spill (default dense)")
	fs.StringVar(&c.SpillDir, "spilldir", "", "directory for spill files (implies -store spill; default: OS temp dir)")
	// Same empty-sentinel discipline as -store/-spilldir: "" means "not
	// requested", so the conflict matrix in Options can name exactly the
	// flags the user actually set.
	fs.StringVar(&c.GraphDir, "graphdir", "", "durable graph directory: commit the built graph for later reopening and incremental recheck (implies -store spill; conflicts with -spilldir and -shards)")
	fs.BoolVar(&c.NoWitness, "nowitness", false, "drop witness predecessor links (counts and valences only; conflicts with witness-producing analyses)")
	fs.BoolVar(&c.Symmetry, "symmetry", false, "canonicalize states modulo process renaming (quotient graph; symmetric families only)")
	return c
}

// Server holds the boostd-specific flag values next to the shared engine
// block: the engine flags become the server's *default* job options, so a
// boostd started with -store spill -symmetry applies them to every job
// whose JSON option block leaves those fields unset.
type Server struct {
	Addr  string
	Pool  int
	Cache int
	Drain time.Duration
	// Common is the shared engine block, registered alongside.
	Common *Common
}

// RegisterServer installs the boostd flags (-addr, -pool, -cache, -drain)
// plus the shared engine block on a flag set.
func RegisterServer(fs *flag.FlagSet) *Server {
	s := &Server{Common: Register(fs)}
	fs.StringVar(&s.Addr, "addr", ":8080", "HTTP listen address")
	fs.IntVar(&s.Pool, "pool", 0, "concurrently running checking jobs (0 = one per CPU; jobs default to the serial engine, so the pool is the parallelism)")
	fs.IntVar(&s.Cache, "cache", 0, "result-cache capacity in entries (0 = default 1024)")
	fs.DurationVar(&s.Drain, "drain", 10*time.Second, "graceful-shutdown deadline: in-flight jobs drain this long before their contexts are cancelled")
	return s
}

// ParseStore resolves a -store flag value.
func ParseStore(name string) (boosting.Store, error) {
	switch name {
	case "", "dense":
		return boosting.DenseStore, nil
	case "hash64":
		return boosting.HashStore64, nil
	case "hash128":
		return boosting.HashStore128, nil
	case "spill":
		return boosting.SpillStore, nil
	default:
		return boosting.DenseStore, fmt.Errorf("unknown store backend %q (have: dense, hash64, hash128, spill)", name)
	}
}

// Options lowers the parsed flags to façade options. -spilldir implies
// -store spill when the store is left at its default; combining it with an
// explicitly different backend is a contradiction and errors rather than
// silently overriding the request.
func (c *Common) Options() ([]boosting.Option, error) {
	store, err := ParseStore(c.Store)
	if err != nil {
		return nil, err
	}
	if c.SpillDir != "" && store != boosting.SpillStore {
		if c.Store != "" {
			return nil, fmt.Errorf("-spilldir requires -store spill (got -store %s)", c.Store)
		}
		store = boosting.SpillStore
	}
	if c.GraphDir != "" {
		// Mirror the façade's WithGraphDir conflict matrix at the flag
		// layer, so errors name the flags the user typed rather than the
		// options they lower to.
		if c.SpillDir != "" {
			return nil, fmt.Errorf("-graphdir conflicts with -spilldir (the durable graph owns its directory; ephemeral spill files go elsewhere automatically)")
		}
		if c.Store != "" && store != boosting.SpillStore {
			return nil, fmt.Errorf("-graphdir requires -store spill (got -store %s)", c.Store)
		}
		if c.Shards > 0 {
			return nil, fmt.Errorf("-graphdir conflicts with -shards (the sharded engine renumbers into a dense store, which is not durable)")
		}
		store = boosting.SpillStore
	}
	opts := []boosting.Option{
		boosting.WithWorkers(c.Workers),
		boosting.WithShards(c.Shards),
		boosting.WithMaxStates(c.MaxStates),
		boosting.WithStore(store),
	}
	if c.GraphDir != "" {
		opts = append(opts, boosting.WithGraphDir(c.GraphDir))
	} else if store == boosting.SpillStore {
		opts = append(opts, boosting.WithSpillDir(c.SpillDir))
	}
	if c.NoWitness {
		opts = append(opts, boosting.WithoutWitnesses())
	}
	if c.Symmetry {
		opts = append(opts, boosting.WithSymmetry())
	}
	return opts, nil
}

// Describe renders an error for CLI display, surfacing the partial
// exploration count when a graph build overflowed its state budget and the
// fix when an option combination conflicts.
func Describe(err error) string {
	var le *boosting.LimitError
	if errors.As(err, &le) {
		return fmt.Sprintf("%v (explored %d states before the limit; raise -maxstates)", err, le.Explored)
	}
	var ce *boosting.ConflictError
	if errors.As(err, &ce) {
		return fmt.Sprintf("%v (drop -nowitness for this analysis)", err)
	}
	return err.Error()
}
