// Package cliflags is the shared flag block of the cmd/* binaries: every
// tool takes the same exploration knobs (-workers, -maxstates, -store,
// -symmetry), and every tool surfaces partial exploration counts when a
// state budget overflows. Before the boosting façade each binary carried its own copy of
// this block; now there is one.
package cliflags

import (
	"errors"
	"flag"
	"fmt"

	"github.com/ioa-lab/boosting"
)

// Common holds the flag values shared by all binaries.
type Common struct {
	Workers   int
	MaxStates int
	Store     string
	Symmetry  bool
}

// Register installs the shared flags on a flag set and returns the value
// holder to read after parsing.
func Register(fs *flag.FlagSet) *Common {
	c := &Common{}
	fs.IntVar(&c.Workers, "workers", 0, "exploration workers (0 = one per CPU, 1 = serial)")
	fs.IntVar(&c.MaxStates, "maxstates", 0, "explored-state budget per graph build (0 = engine default)")
	fs.StringVar(&c.Store, "store", "dense", "state store backend: dense | hash64 | hash128")
	fs.BoolVar(&c.Symmetry, "symmetry", false, "canonicalize states modulo process renaming (quotient graph; symmetric families only)")
	return c
}

// ParseStore resolves a -store flag value.
func ParseStore(name string) (boosting.Store, error) {
	switch name {
	case "", "dense":
		return boosting.DenseStore, nil
	case "hash64":
		return boosting.HashStore64, nil
	case "hash128":
		return boosting.HashStore128, nil
	default:
		return boosting.DenseStore, fmt.Errorf("unknown store backend %q (have: dense, hash64, hash128)", name)
	}
}

// Options lowers the parsed flags to façade options.
func (c *Common) Options() ([]boosting.Option, error) {
	store, err := ParseStore(c.Store)
	if err != nil {
		return nil, err
	}
	opts := []boosting.Option{
		boosting.WithWorkers(c.Workers),
		boosting.WithMaxStates(c.MaxStates),
		boosting.WithStore(store),
	}
	if c.Symmetry {
		opts = append(opts, boosting.WithSymmetry())
	}
	return opts, nil
}

// Describe renders an error for CLI display, surfacing the partial
// exploration count when a graph build overflowed its state budget.
func Describe(err error) string {
	var le *boosting.LimitError
	if errors.As(err, &le) {
		return fmt.Sprintf("%v (explored %d states before the limit; raise -maxstates)", err, le.Explored)
	}
	return err.Error()
}
