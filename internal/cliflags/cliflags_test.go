package cliflags

import (
	"flag"
	"strings"
	"testing"
	"time"

	"github.com/ioa-lab/boosting"
)

func TestParseStore(t *testing.T) {
	cases := []struct {
		name string
		want boosting.Store
	}{
		{"", boosting.DenseStore},
		{"dense", boosting.DenseStore},
		{"hash64", boosting.HashStore64},
		{"hash128", boosting.HashStore128},
		{"spill", boosting.SpillStore},
	}
	for _, c := range cases {
		got, err := ParseStore(c.name)
		if err != nil || got != c.want {
			t.Errorf("ParseStore(%q) = %v, %v; want %v", c.name, got, err, c.want)
		}
	}
	if _, err := ParseStore("mmap"); err == nil {
		t.Error("ParseStore accepted an unknown backend")
	}
}

// TestOptionsSpill: the parsed -store spill / -spilldir flags lower to
// façade options that actually route a build through the spill backend.
func TestOptionsSpill(t *testing.T) {
	for _, args := range [][]string{
		{"-store", "spill"},
		{"-spilldir", t.TempDir()}, // implies -store spill
	} {
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		c := Register(fs)
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		opts, err := c.Options()
		if err != nil {
			t.Fatal(err)
		}
		chk, err := boosting.New("forward", 2, 0, opts...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := chk.ClassifyInits()
		if err != nil {
			t.Fatalf("args %v: %v", args, err)
		}
		if _, ok := boosting.GraphSpillStats(res.Graph); !ok {
			t.Errorf("args %v: build did not use the spill backend", args)
		}
	}
}

// TestOptionsShards: the parsed -shards flag lowers to WithShards and
// routes a build through the sharded engine; the produced graph matches
// the default engine's counts and classification (the full identity /
// isomorphism contract is pinned by the shard parity suites).
func TestOptionsShards(t *testing.T) {
	ref, err := boosting.New("forward", 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.ClassifyInits()
	if err != nil {
		t.Fatal(err)
	}
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := Register(fs)
	if err := fs.Parse([]string{"-shards", "4"}); err != nil {
		t.Fatal(err)
	}
	if c.Shards != 4 {
		t.Fatalf("Shards = %d after -shards 4", c.Shards)
	}
	opts, err := c.Options()
	if err != nil {
		t.Fatal(err)
	}
	chk, err := boosting.New("forward", 2, 0, opts...)
	if err != nil {
		t.Fatal(err)
	}
	got, err := chk.ClassifyInits()
	if err != nil {
		t.Fatal(err)
	}
	if got.Graph.Size() != want.Graph.Size() || got.Graph.Edges() != want.Graph.Edges() ||
		got.BivalentIndex != want.BivalentIndex {
		t.Errorf("-shards 4: %d states / %d edges / bivalent %d, want %d / %d / %d",
			got.Graph.Size(), got.Graph.Edges(), got.BivalentIndex,
			want.Graph.Size(), want.Graph.Edges(), want.BivalentIndex)
	}
}

// TestRegisterServer: the boostd flag block parses next to the shared
// engine block, and the engine flags it carries still lower to façade
// options (they become the server's default job options).
func TestRegisterServer(t *testing.T) {
	fs := flag.NewFlagSet("boostd", flag.ContinueOnError)
	s := RegisterServer(fs)
	args := []string{"-addr", ":9999", "-pool", "2", "-cache", "16", "-drain", "3s", "-store", "spill", "-symmetry"}
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	if s.Addr != ":9999" || s.Pool != 2 || s.Cache != 16 || s.Drain != 3*time.Second {
		t.Errorf("server flags = %+v, want addr=:9999 pool=2 cache=16 drain=3s", s)
	}
	if s.Common == nil || s.Common.Store != "spill" || !s.Common.Symmetry {
		t.Errorf("engine block not registered alongside: %+v", s.Common)
	}
	if _, err := s.Common.Options(); err != nil {
		t.Errorf("engine block failed to lower: %v", err)
	}

	// Defaults without arguments.
	fs = flag.NewFlagSet("boostd", flag.ContinueOnError)
	s = RegisterServer(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if s.Addr != ":8080" || s.Pool != 0 || s.Cache != 0 || s.Drain != 10*time.Second {
		t.Errorf("server flag defaults = %+v, want addr=:8080 pool=0 cache=0 drain=10s", s)
	}
}

// TestOptionsSpillDirConflict: -spilldir with any explicitly different
// -store backend — including an explicit dense — is a contradiction and
// must error, not silently override.
func TestOptionsSpillDirConflict(t *testing.T) {
	for _, store := range []string{"hash64", "hash128", "dense"} {
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		c := Register(fs)
		if err := fs.Parse([]string{"-store", store, "-spilldir", t.TempDir()}); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Options(); err == nil {
			t.Errorf("Options accepted -store %s with -spilldir", store)
		}
	}
	// -store spill -spilldir together remain valid.
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := Register(fs)
	if err := fs.Parse([]string{"-store", "spill", "-spilldir", t.TempDir()}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Options(); err != nil {
		t.Errorf("Options rejected -store spill with -spilldir: %v", err)
	}
}

// TestOptionsGraphDirConflicts: the -graphdir conflict matrix. Every
// combination the durable store cannot honor errors at the flag layer
// with a message naming both flags; the valid combinations lower to a
// WithGraphDir build that actually commits a reopenable graph.
func TestOptionsGraphDirConflicts(t *testing.T) {
	conflicts := []struct {
		name  string
		args  []string
		wants []string // substrings the error must carry (both flag names)
	}{
		{
			name:  "spilldir",
			args:  []string{"-graphdir", t.TempDir(), "-spilldir", t.TempDir()},
			wants: []string{"-graphdir", "-spilldir"},
		},
		{
			name:  "explicit dense store",
			args:  []string{"-graphdir", t.TempDir(), "-store", "dense"},
			wants: []string{"-graphdir", "-store"},
		},
		{
			name:  "explicit hash64 store",
			args:  []string{"-graphdir", t.TempDir(), "-store", "hash64"},
			wants: []string{"-graphdir", "-store"},
		},
		{
			name:  "explicit hash128 store",
			args:  []string{"-graphdir", t.TempDir(), "-store", "hash128"},
			wants: []string{"-graphdir", "-store"},
		},
		{
			name:  "shards",
			args:  []string{"-graphdir", t.TempDir(), "-shards", "2"},
			wants: []string{"-graphdir", "-shards"},
		},
	}
	for _, tc := range conflicts {
		t.Run(tc.name, func(t *testing.T) {
			fs := flag.NewFlagSet("test", flag.ContinueOnError)
			c := Register(fs)
			if err := fs.Parse(tc.args); err != nil {
				t.Fatal(err)
			}
			_, err := c.Options()
			if err == nil {
				t.Fatalf("Options accepted %v", tc.args)
			}
			for _, want := range tc.wants {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q does not name %s", err, want)
				}
			}
		})
	}

	// Valid combinations: bare -graphdir (implies -store spill) and the
	// explicit -store spill -graphdir pair both commit a durable graph.
	for _, args := range [][]string{
		{"-graphdir", ""}, // placeholder, replaced per iteration below
		{"-store", "spill", "-graphdir", ""},
	} {
		dir := t.TempDir()
		args[len(args)-1] = dir
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		c := Register(fs)
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		opts, err := c.Options()
		if err != nil {
			t.Fatalf("Options rejected %v: %v", args, err)
		}
		chk, err := boosting.New("forward", 2, 0, opts...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := chk.ClassifyInits()
		if err != nil {
			t.Fatalf("args %v: %v", args, err)
		}
		if _, ok := boosting.GraphManifest(res.Graph); !ok {
			t.Errorf("args %v: build committed no durable manifest", args)
		}
		if err := res.Close(); err != nil {
			t.Fatal(err)
		}
		if !boosting.HasGraph(dir) {
			t.Errorf("args %v: no manifest in %s after the build", args, dir)
		}
	}
}
