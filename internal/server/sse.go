package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	"github.com/ioa-lab/boosting"
)

// progressJSON is the wire form of one per-level Progress report. The field
// order and encoding are part of the API: the event stream for a build is
// exactly the WithProgress callback sequence, rendered through this one
// encoder (pinned byte-for-byte by the SSE golden test).
type progressJSON struct {
	Level    int `json:"level"`
	States   int `json:"states"`
	Edges    int `json:"edges"`
	Frontier int `json:"frontier"`
}

// MarshalProgress renders one Progress report in the SSE wire encoding.
func MarshalProgress(p boosting.Progress) []byte {
	b, _ := json.Marshal(progressJSON{p.Level, p.States, p.Edges, p.Frontier})
	return b
}

// handleEvents streams a job's per-level progress as Server-Sent Events,
// then one terminal event named after the final status whose data is the
// result (done) or the structured error (failed, cancelled).
//
// The stream replays from the job's append-only history: a late subscriber
// — including one tailing a cache hit — receives the full sequence, and a
// stalled client stalls only its own handler goroutine on the ResponseWriter;
// the exploration appends to history and never touches client connections
// (backpressure by replay, not by blocking the producer).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, map[string]*ErrorPayload{
			"error": {Kind: "internal", Message: "response writer does not support streaming"},
		})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	sent := 0
	for {
		items, status, result, jobErr, next := j.snapshot(sent)
		for _, p := range items {
			if _, err := fmt.Fprintf(w, "event: progress\ndata: %s\n\n", MarshalProgress(p)); err != nil {
				return
			}
		}
		sent += len(items)
		if len(items) > 0 {
			flusher.Flush()
		}
		if terminal(status) {
			var data []byte
			switch status {
			case StatusDone:
				data, _ = json.Marshal(result)
			default:
				data, _ = json.Marshal(jobErr)
			}
			_, _ = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", status, data)
			flusher.Flush()
			return
		}
		select {
		case <-next:
		case <-r.Context().Done():
			return
		}
	}
}
