package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/ioa-lab/boosting"
	"github.com/ioa-lab/boosting/internal/cliflags"
	"github.com/ioa-lab/boosting/internal/server"
)

// newTestServer builds a server plus an httptest front end and arranges
// for both to stop at test end.
func newTestServer(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	srv := server.New(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv, ts
}

// postJob submits a request body and decodes the acknowledgement.
func postJob(t *testing.T, ts *httptest.Server, body string) (server.SubmitResponse, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ack server.SubmitResponse
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &ack); err != nil {
			t.Fatalf("decode ack %q: %v", raw, err)
		}
	}
	return ack, resp.StatusCode
}

// getJob fetches a job view.
func getJob(t *testing.T, ts *httptest.Server, id string) server.JobView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view server.JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	return view
}

// waitTerminal polls a job until it reaches a terminal state.
func waitTerminal(t *testing.T, ts *httptest.Server, id string) server.JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		view := getJob(t, ts, id)
		switch view.Status {
		case server.StatusDone, server.StatusFailed, server.StatusCancelled:
			return view
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, view.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

const classifyForward3 = `{"protocol": "forward", "n": 3, "f": 0, "analysis": "classify"}`

// TestSubmitValidation: malformed and contradictory submissions are
// rejected at submit time with the right status, never queued.
func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Pool: 1})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed json", `{"protocol": `, http.StatusBadRequest},
		{"unknown field", `{"protocol": "forward", "n": 3, "f": 0, "analysis": "classify", "frobnicate": 1}`, http.StatusBadRequest},
		{"unknown protocol", `{"protocol": "paxos", "n": 3, "f": 0, "analysis": "classify"}`, http.StatusBadRequest},
		{"unknown analysis", `{"protocol": "forward", "n": 3, "f": 0, "analysis": "prove"}`, http.StatusBadRequest},
		{"bad n", `{"protocol": "forward", "n": 0, "f": 0, "analysis": "classify"}`, http.StatusBadRequest},
		{"refute without claim", `{"protocol": "forward", "n": 3, "f": 0, "analysis": "refute"}`, http.StatusBadRequest},
		{"refutekset without k", `{"protocol": "forward", "n": 3, "f": 0, "analysis": "refutekset", "claimed": 1}`, http.StatusBadRequest},
		{"bad store", `{"protocol": "forward", "n": 3, "f": 0, "analysis": "classify", "options": {"store": "mmap"}}`, http.StatusBadRequest},
		{"bad policy", `{"protocol": "forward", "n": 3, "f": 0, "analysis": "classify", "options": {"policy": "optimistic"}}`, http.StatusBadRequest},
		{"bad input key", `{"protocol": "forward", "n": 3, "f": 0, "analysis": "explore", "inputs": {"p0": "1"}}`, http.StatusBadRequest},
		{"unknown input process", `{"protocol": "forward", "n": 3, "f": 0, "analysis": "explore", "inputs": {"99": "1"}}`, http.StatusBadRequest},
		{"nowitness x refute", `{"protocol": "forward", "n": 3, "f": 0, "analysis": "refute", "claimed": 1, "options": {"nowitness": true}}`, http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		if _, code := postJob(t, ts, c.body); code != c.want {
			t.Errorf("%s: status %d, want %d", c.name, code, c.want)
		}
	}
	// The conflict is resolvable: nograph skips the witness-consuming phases.
	ack, code := postJob(t, ts, `{"protocol": "forward", "n": 3, "f": 0, "analysis": "refute", "claimed": 1, "options": {"nowitness": true, "nograph": true}}`)
	if code != http.StatusAccepted {
		t.Fatalf("nowitness+nograph refute: status %d, want 202", code)
	}
	if view := waitTerminal(t, ts, ack.ID); view.Status != server.StatusDone {
		t.Errorf("nowitness+nograph refute: %s (%v)", view.Status, view.Error)
	}
}

// TestClassifyGoldenAndCacheHit: a classify job reproduces the engine's
// golden forward n=3 counts; resubmitting the identical request is served
// from cache — same job id, hit counter up, zero new explorations.
func TestClassifyGoldenAndCacheHit(t *testing.T) {
	srv, ts := newTestServer(t, server.Config{Pool: 2})
	ack, code := postJob(t, ts, classifyForward3)
	if code != http.StatusAccepted || ack.Cached != server.CacheMiss {
		t.Fatalf("first submission: status %d, cached %q; want 202 miss", code, ack.Cached)
	}
	view := waitTerminal(t, ts, ack.ID)
	if view.Status != server.StatusDone || view.Result == nil {
		t.Fatalf("job failed: %s (%v)", view.Status, view.Error)
	}
	if view.Result.States != 410 || view.Result.Edges != 1734 {
		t.Errorf("forward n=3 classify: %d states / %d edges, want 410 / 1734",
			view.Result.States, view.Result.Edges)
	}
	// Anchor the rest of the typed result against a direct façade run.
	chk, err := boosting.New("forward", 3, 0, boosting.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := chk.ClassifyInits()
	if err != nil {
		t.Fatal(err)
	}
	if view.Result.BivalentIndex == nil || *view.Result.BivalentIndex != ref.BivalentIndex {
		t.Errorf("BivalentIndex = %v, want %d", view.Result.BivalentIndex, ref.BivalentIndex)
	}
	if len(view.Result.Valences) != len(ref.Valences) {
		t.Errorf("classify returned %d valences, want %d", len(view.Result.Valences), len(ref.Valences))
	}
	for i, v := range ref.Valences {
		if i < len(view.Result.Valences) && view.Result.Valences[i] != v.String() {
			t.Errorf("valence[%d] = %q, want %q", i, view.Result.Valences[i], v)
		}
	}

	ack2, code := postJob(t, ts, classifyForward3)
	if code != http.StatusOK || ack2.Cached != server.CacheHit {
		t.Fatalf("resubmission: status %d, cached %q; want 200 hit", code, ack2.Cached)
	}
	if ack2.ID != ack.ID {
		t.Errorf("cache hit returned job %s, want the original %s", ack2.ID, ack.ID)
	}
	if got := srv.Explorations(); got != 1 {
		t.Errorf("explorations = %d after a cache hit, want 1", got)
	}
	if stats := srv.CacheStats(); stats.Hits != 1 || stats.Misses != 1 {
		t.Errorf("cache stats = %+v, want hits=1 misses=1", stats)
	}

	// A different engine configuration of the same check shares the entry:
	// workers/shards/store never enter the cache key.
	ack3, code := postJob(t, ts, `{"protocol": "forward", "n": 3, "f": 0, "analysis": "classify", "options": {"workers": 2, "shards": 4, "store": "hash64"}}`)
	if code != http.StatusOK || ack3.Cached != server.CacheHit || ack3.ID != ack.ID {
		t.Errorf("engine-variant resubmission: status %d, cached %q, id %s; want 200 hit %s",
			code, ack3.Cached, ack3.ID, ack.ID)
	}
	// A verdict-affecting variation does not: maxStates enters the key.
	ack4, _ := postJob(t, ts, `{"protocol": "forward", "n": 3, "f": 0, "analysis": "classify", "options": {"maxStates": 100000}}`)
	if ack4.Cached != server.CacheMiss {
		t.Errorf("maxStates variant: cached %q, want miss", ack4.Cached)
	}
}

// TestSingleFlight: concurrent identical submissions share one job — one
// exploration, one miss, everyone else joins or hits.
func TestSingleFlight(t *testing.T) {
	srv, ts := newTestServer(t, server.Config{Pool: 2})
	const clients = 8
	ids := make([]string, clients)
	var wg sync.WaitGroup
	wg.Add(clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			defer wg.Done()
			ack, code := postJob(t, ts, classifyForward3)
			if code != http.StatusAccepted && code != http.StatusOK {
				t.Errorf("client %d: status %d", i, code)
				return
			}
			ids[i] = ack.ID
		}(i)
	}
	wg.Wait()
	for i := 1; i < clients; i++ {
		if ids[i] != ids[0] {
			t.Fatalf("client %d got job %s, client 0 got %s — single-flight broken", i, ids[i], ids[0])
		}
	}
	waitTerminal(t, ts, ids[0])
	if got := srv.Explorations(); got != 1 {
		t.Errorf("explorations = %d for %d identical submissions, want 1", got, clients)
	}
	if stats := srv.CacheStats(); stats.Misses != 1 {
		t.Errorf("cache stats = %+v, want exactly one miss", stats)
	}
}

// TestIsomorphicExploreHit is the acceptance scenario: a process-renamed
// (isomorphic) variant of an already-explored initialization is served
// from cache — the canonical root fingerprint collides, the hit counter
// increments, and no new states are explored.
func TestIsomorphicExploreHit(t *testing.T) {
	srv, ts := newTestServer(t, server.Config{Pool: 1})
	submit := func(inputs string) (server.SubmitResponse, int) {
		return postJob(t, ts, fmt.Sprintf(
			`{"protocol": "forward", "n": 3, "f": 0, "analysis": "explore", "inputs": %s, "options": {"symmetry": true}}`,
			inputs))
	}
	ack, code := postJob(t, ts, `{"protocol": "forward", "n": 3, "f": 0, "analysis": "explore", "inputs": {"0": "1", "1": "0", "2": "0"}, "options": {"symmetry": true}}`)
	if code != http.StatusAccepted || ack.Cached != server.CacheMiss {
		t.Fatalf("first exploration: status %d, cached %q", code, ack.Cached)
	}
	first := waitTerminal(t, ts, ack.ID)
	if first.Status != server.StatusDone || first.Result == nil {
		t.Fatalf("first exploration failed: %s (%v)", first.Status, first.Error)
	}

	// The same one-hot assignment under two different process renamings.
	for _, renamed := range []string{
		`{"0": "0", "1": "1", "2": "0"}`,
		`{"0": "0", "1": "0", "2": "1"}`,
	} {
		ack2, code := submit(renamed)
		if code != http.StatusOK || ack2.Cached != server.CacheHit {
			t.Errorf("renamed %s: status %d, cached %q; want 200 hit", renamed, code, ack2.Cached)
			continue
		}
		if ack2.ID != ack.ID {
			t.Errorf("renamed %s: job %s, want the original %s", renamed, ack2.ID, ack.ID)
		}
		got := getJob(t, ts, ack2.ID)
		if got.Result == nil || got.Result.States != first.Result.States || got.Result.Edges != first.Result.Edges {
			t.Errorf("renamed %s: result %+v differs from original %+v", renamed, got.Result, first.Result)
		}
	}
	if got := srv.Explorations(); got != 1 {
		t.Errorf("explorations = %d after isomorphic resubmissions, want 1 (zero new states)", got)
	}
	if stats := srv.CacheStats(); stats.Hits != 2 || stats.Misses != 1 {
		t.Errorf("cache stats = %+v, want hits=2 misses=1", stats)
	}

	// A genuinely different assignment (two ones) is a miss.
	ack3, _ := submit(`{"0": "1", "1": "1", "2": "0"}`)
	if ack3.Cached != server.CacheMiss {
		t.Errorf("two-hot assignment: cached %q, want miss", ack3.Cached)
	}
}

// TestCancel: DELETE cancels a queued job immediately and a running job at
// the engine's next cancellation check; cancelled entries leave the cache
// so a resubmission retries.
func TestCancel(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Pool: 1})
	// registervote n=3 is far beyond this test's patience: it pins the one
	// pool worker for the whole test, making the next submission's queued
	// state deterministic.
	slow := `{"protocol": "registervote", "n": 3, "f": 0, "analysis": "classify"}`
	slowAck, code := postJob(t, ts, slow)
	if code != http.StatusAccepted {
		t.Fatalf("slow job: status %d", code)
	}
	queuedAck, code := postJob(t, ts, classifyForward3)
	if code != http.StatusAccepted || queuedAck.Cached != server.CacheMiss {
		t.Fatalf("queued job: status %d, cached %q", code, queuedAck.Cached)
	}

	del := func(id string) {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("DELETE %s: status %d", id, resp.StatusCode)
		}
	}
	del(queuedAck.ID)
	view := waitTerminal(t, ts, queuedAck.ID)
	if view.Status != server.StatusCancelled || view.Error == nil || view.Error.Kind != "cancelled" {
		t.Errorf("queued job after DELETE: %s (%v), want cancelled", view.Status, view.Error)
	}

	del(slowAck.ID)
	view = waitTerminal(t, ts, slowAck.ID)
	if view.Status != server.StatusCancelled || view.Error == nil || view.Error.Kind != "cancelled" {
		t.Errorf("running job after DELETE: %s (%v), want cancelled", view.Status, view.Error)
	}

	// Cancelled runs are not cached: resubmission starts fresh.
	ack, _ := postJob(t, ts, classifyForward3)
	if ack.Cached != server.CacheMiss {
		t.Errorf("resubmission after cancel: cached %q, want miss", ack.Cached)
	}
	if ack.ID == queuedAck.ID {
		t.Error("resubmission after cancel reused the cancelled job")
	}
	if view := waitTerminal(t, ts, ack.ID); view.Status != server.StatusDone {
		t.Errorf("retry after cancel: %s (%v)", view.Status, view.Error)
	}
}

// TestLimitError: a state-budget overflow surfaces as a failed job with
// the structured limit payload — and, being deterministic, is cached.
func TestLimitError(t *testing.T) {
	srv, ts := newTestServer(t, server.Config{Pool: 1})
	body := `{"protocol": "floodset-p", "n": 3, "f": 0, "analysis": "explore", "inputs": {"0": "0", "1": "1", "2": "1"}, "options": {"rounds": 2, "maxStates": 3000}}`
	ack, code := postJob(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	view := waitTerminal(t, ts, ack.ID)
	if view.Status != server.StatusFailed || view.Error == nil {
		t.Fatalf("overflow job: %s (%v), want failed with payload", view.Status, view.Error)
	}
	if view.Error.Kind != "limit" || view.Error.Limit != 3000 || view.Error.Explored != 3000 {
		t.Errorf("limit payload = %+v, want kind=limit limit=3000 explored=3000", view.Error)
	}
	ack2, code := postJob(t, ts, body)
	if code != http.StatusOK || ack2.Cached != server.CacheHit || ack2.ID != ack.ID {
		t.Errorf("overflow resubmission: status %d, cached %q, id %s; want 200 hit %s",
			code, ack2.Cached, ack2.ID, ack.ID)
	}
	if got := srv.Explorations(); got != 1 {
		t.Errorf("explorations = %d, want 1 (overflow verdicts are cached)", got)
	}
}

// TestShutdownDrain: Shutdown stops accepting submissions immediately but
// drains in-flight jobs to completion before returning.
func TestShutdownDrain(t *testing.T) {
	srv := server.New(server.Config{Pool: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	ack, code := postJob(t, ts, classifyForward3)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()

	// Submissions during the drain are rejected with 503.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, code := postJob(t, ts, `{"protocol": "tob", "n": 2, "f": 0, "analysis": "classify"}`)
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("submissions still accepted during drain")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := <-done; err != nil && err != context.DeadlineExceeded {
		t.Fatalf("Shutdown: %v", err)
	}
	if view := getJob(t, ts, ack.ID); view.Status != server.StatusDone {
		t.Errorf("in-flight job after drain: %s (%v), want done", view.Status, view.Error)
	}
}

// TestProtocolsAndStats: the discovery endpoints answer.
func TestProtocolsAndStats(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Pool: 1})
	resp, err := http.Get(ts.URL + "/v1/protocols")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(raw, []byte(`"forward"`)) {
		t.Errorf("GET /v1/protocols: %d %s", resp.StatusCode, raw)
	}
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(raw, []byte(`"explorations"`)) {
		t.Errorf("GET /v1/stats: %d %s", resp.StatusCode, raw)
	}
	if _, code := postJob(t, ts, classifyForward3); code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	resp, err = http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(raw, []byte(`"j1"`)) {
		t.Errorf("GET /v1/jobs: %d %s", resp.StatusCode, raw)
	}
	if resp, err := http.Get(ts.URL + "/v1/jobs/j999"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET unknown job: %d, want 404", resp.StatusCode)
		}
	}
}

// TestDefaultsFromFlags: the boostd engine flag block lowers into the
// default job option block field-for-field.
func TestDefaultsFromFlags(t *testing.T) {
	c := &cliflags.Common{
		Workers: 2, Shards: 4, MaxStates: 500,
		Store: "spill", SpillDir: "/tmp/x", NoWitness: true, Symmetry: true,
	}
	got := server.DefaultsFromFlags(c)
	want := server.Options{
		Workers: 2, Shards: 4, MaxStates: 500,
		Store: "spill", SpillDir: "/tmp/x", NoWitness: true, Symmetry: true,
	}
	if got != want {
		t.Errorf("DefaultsFromFlags = %+v, want %+v", got, want)
	}
}

// TestServerDefaultsApply: a server started with default options applies
// them to jobs whose option block leaves the fields unset — and the
// verdict-neutral ones stay out of the cache key.
func TestServerDefaultsApply(t *testing.T) {
	srv, ts := newTestServer(t, server.Config{
		Pool:     1,
		Defaults: server.Options{Store: "hash64"},
	})
	ack, code := postJob(t, ts, classifyForward3)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	view := waitTerminal(t, ts, ack.ID)
	if view.Status != server.StatusDone || view.Result == nil || view.Result.States != 410 {
		t.Fatalf("defaulted job: %s (%v)", view.Status, view.Error)
	}
	// An explicit dense request is the same check: hit.
	ack2, _ := postJob(t, ts, `{"protocol": "forward", "n": 3, "f": 0, "analysis": "classify", "options": {"store": "dense"}}`)
	if ack2.Cached != server.CacheHit || ack2.ID != ack.ID {
		t.Errorf("store-variant: cached %q id %s, want hit %s", ack2.Cached, ack2.ID, ack.ID)
	}
	if got := srv.Explorations(); got != 1 {
		t.Errorf("explorations = %d, want 1", got)
	}
}

// TestDeltaCacheTier is the delta-match acceptance scenario: a classify
// job on a GraphRoot server commits its graph durably; the benign-policy
// variant of the same candidate — an exact-key miss — is acknowledged as
// a "delta" submission, served by reopening the committed graph and
// rechecking the dirty region (empty here: silence never fires in the
// failure-free graph, so the benign variant is provably unchanged), and
// reports the full verdict having re-expanded zero states.
func TestDeltaCacheTier(t *testing.T) {
	srv, ts := newTestServer(t, server.Config{Pool: 1, GraphRoot: t.TempDir()})
	ack, code := postJob(t, ts, classifyForward3)
	if code != http.StatusAccepted || ack.Cached != server.CacheMiss {
		t.Fatalf("first submission: status %d, cached %q; want 202 miss", code, ack.Cached)
	}
	full := waitTerminal(t, ts, ack.ID)
	if full.Status != server.StatusDone || full.Result == nil {
		t.Fatalf("full build failed: %s (%v)", full.Status, full.Error)
	}
	if full.Result.Explored == nil || *full.Result.Explored != full.Result.States {
		t.Errorf("full durable build Explored = %v, want %d", full.Result.Explored, full.Result.States)
	}

	benign := `{"protocol": "forward", "n": 3, "f": 0, "analysis": "classify", "options": {"policy": "benign"}}`
	ack2, code := postJob(t, ts, benign)
	if code != http.StatusAccepted || ack2.Cached != server.CacheDelta {
		t.Fatalf("benign variant: status %d, cached %q; want 202 delta", code, ack2.Cached)
	}
	if ack2.ID == ack.ID {
		t.Fatal("delta submission reused the original job")
	}
	view := waitTerminal(t, ts, ack2.ID)
	if view.Status != server.StatusDone || view.Result == nil {
		t.Fatalf("delta job failed: %s (%v)", view.Status, view.Error)
	}
	if view.Result.States != full.Result.States || view.Result.Edges != full.Result.Edges {
		t.Errorf("delta verdict %d/%d, want %d/%d",
			view.Result.States, view.Result.Edges, full.Result.States, full.Result.Edges)
	}
	if view.Result.BivalentIndex == nil || full.Result.BivalentIndex == nil ||
		*view.Result.BivalentIndex != *full.Result.BivalentIndex {
		t.Errorf("delta BivalentIndex = %v, want %v", view.Result.BivalentIndex, full.Result.BivalentIndex)
	}
	if len(view.Result.Valences) != len(full.Result.Valences) {
		t.Fatalf("delta returned %d valences, want %d", len(view.Result.Valences), len(full.Result.Valences))
	}
	for i := range full.Result.Valences {
		if view.Result.Valences[i] != full.Result.Valences[i] {
			t.Errorf("valence[%d] = %q, want %q", i, view.Result.Valences[i], full.Result.Valences[i])
		}
	}
	if view.Result.Explored == nil || *view.Result.Explored != 0 {
		t.Errorf("benign delta Explored = %v, want 0 (provably unchanged graph)", view.Result.Explored)
	}
	if stats := srv.CacheStats(); stats.DeltaHits != 1 || stats.Misses != 2 {
		t.Errorf("cache stats = %+v, want deltaHits=1 misses=2", stats)
	}
	// The stats endpoint surfaces the tier.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(raw, []byte(`"deltaHits": 1`)) {
		t.Errorf("GET /v1/stats does not report the delta hit: %s", raw)
	}

	// Resubmitting the benign variant is now an exact hit.
	ack3, code := postJob(t, ts, benign)
	if code != http.StatusOK || ack3.Cached != server.CacheHit || ack3.ID != ack2.ID {
		t.Errorf("benign resubmission: status %d, cached %q, id %s; want 200 hit %s",
			code, ack3.Cached, ack3.ID, ack2.ID)
	}
}

// TestDeltaIneligible: submissions the durable tier cannot serve — no
// GraphRoot, an explicit non-spill store, a caller-owned spill dir — stay
// plain misses with no Explored accounting.
func TestDeltaIneligible(t *testing.T) {
	// No GraphRoot: the tier is off entirely.
	_, ts := newTestServer(t, server.Config{Pool: 1})
	ack, _ := postJob(t, ts, classifyForward3)
	view := waitTerminal(t, ts, ack.ID)
	if view.Result == nil || view.Result.Explored != nil {
		t.Errorf("tier-off classify has Explored = %v, want absent", view.Result)
	}
	ack2, _ := postJob(t, ts, `{"protocol": "forward", "n": 3, "f": 0, "analysis": "classify", "options": {"policy": "benign"}}`)
	if ack2.Cached != server.CacheMiss {
		t.Errorf("tier-off benign variant: cached %q, want miss", ack2.Cached)
	}
	waitTerminal(t, ts, ack2.ID)

	// GraphRoot set, but the job pins a conflicting backend.
	_, ts2 := newTestServer(t, server.Config{Pool: 1, GraphRoot: t.TempDir()})
	ack3, _ := postJob(t, ts2, `{"protocol": "forward", "n": 2, "f": 0, "analysis": "classify", "options": {"store": "dense"}}`)
	view3 := waitTerminal(t, ts2, ack3.ID)
	if view3.Result == nil || view3.Result.Explored != nil {
		t.Errorf("dense-store classify has Explored = %v, want absent", view3.Result)
	}
	ack4, _ := postJob(t, ts2, `{"protocol": "forward", "n": 2, "f": 0, "analysis": "classify", "options": {"store": "dense", "policy": "benign"}}`)
	if ack4.Cached != server.CacheMiss {
		t.Errorf("dense-store benign variant: cached %q, want miss", ack4.Cached)
	}
	waitTerminal(t, ts2, ack4.ID)
}

// TestDeltaDamagedGraphRecovery: when the committed directory behind a
// delta match has been damaged, the job falls back to a full build — the
// verdict is unaffected, and the damaged entry is replaced by the fresh
// commit.
func TestDeltaDamagedGraphRecovery(t *testing.T) {
	root := t.TempDir()
	srv, ts := newTestServer(t, server.Config{Pool: 1, GraphRoot: root})
	ack, _ := postJob(t, ts, classifyForward3)
	full := waitTerminal(t, ts, ack.ID)
	if full.Status != server.StatusDone {
		t.Fatalf("full build failed: %s (%v)", full.Status, full.Error)
	}
	// Damage the committed graph: remove every manifest under the root.
	matches, err := filepath.Glob(filepath.Join(root, "*", "manifest.json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("committed manifests under root = %v (%v), want exactly 1", matches, err)
	}
	if err := os.Remove(matches[0]); err != nil {
		t.Fatal(err)
	}

	benign := `{"protocol": "forward", "n": 3, "f": 0, "analysis": "classify", "options": {"policy": "benign"}}`
	ack2, _ := postJob(t, ts, benign)
	if ack2.Cached != server.CacheDelta {
		t.Fatalf("benign variant: cached %q, want delta (the index entry is still live)", ack2.Cached)
	}
	view := waitTerminal(t, ts, ack2.ID)
	if view.Status != server.StatusDone || view.Result == nil {
		t.Fatalf("fallback job failed: %s (%v)", view.Status, view.Error)
	}
	if view.Result.States != full.Result.States || view.Result.Edges != full.Result.Edges {
		t.Errorf("fallback verdict %d/%d, want %d/%d",
			view.Result.States, view.Result.Edges, full.Result.States, full.Result.Edges)
	}
	// The fallback rebuilt in full (and durably: Explored equals the
	// full state count, not a dirty region).
	if view.Result.Explored == nil || *view.Result.Explored != full.Result.States {
		t.Errorf("fallback Explored = %v, want %d", view.Result.Explored, full.Result.States)
	}
	if stats := srv.CacheStats(); stats.DeltaHits != 1 {
		t.Errorf("cache stats = %+v, want deltaHits=1 (the probe matched before the damage surfaced)", stats)
	}
}
