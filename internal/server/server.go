package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/ioa-lab/boosting"
)

// errCancelled marks a job terminated by DELETE or server shutdown.
var errCancelled = errors.New("job cancelled")

// Config sizes the server.
type Config struct {
	// Pool is the number of concurrently running jobs (0 = one per CPU).
	// Jobs default to the serial engine, so pool × serial builds is the
	// CPU-fair saturation point; submissions asking for their own worker
	// fan-out trade against pool width.
	Pool int
	// CacheSize bounds the result cache in entries (0 = 1024).
	CacheSize int
	// Defaults are the option values jobs inherit when their JSON option
	// block leaves a field zero — boostd lowers its shared engine flag
	// block (-store, -shards, -symmetry, …) into this.
	Defaults Options
	// GraphRoot, when set, enables the delta-match cache tier: classify
	// jobs commit their graphs durably under this directory, and an
	// exact-key miss whose candidate differs from a committed graph only
	// in silence policy reopens that graph and rechecks the dirty region
	// instead of rebuilding. "" disables the tier.
	GraphRoot string
}

// Server is the checking service: an http.Handler over a job store, a
// bounded worker pool and the canonical-fingerprint result cache. Create
// with New, serve with any http.Server, stop with Shutdown.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	jobs     *jobStore
	cache    *resultCache
	queue    chan *Job
	queueMu  sync.Mutex
	closed   bool
	draining atomic.Bool
	wg       sync.WaitGroup
	// explorations counts jobs that actually ran an analysis — the
	// denominator that proves cache hits explore zero new states.
	explorations atomic.Int64
	// graphs is the delta tier's index of committed durable graphs;
	// deltaHits counts submissions it served incrementally.
	graphs    *graphIndex
	deltaHits atomic.Int64
}

// defaultCacheSize bounds the result cache when -cache is unset.
const defaultCacheSize = 1024

// queueCap bounds the submission queue; submissions beyond it are rejected
// with 503 rather than blocking the HTTP handler.
const queueCap = 1024

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.Pool <= 0 {
		cfg.Pool = runtime.NumCPU()
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = defaultCacheSize
	}
	s := &Server{
		cfg:    cfg,
		jobs:   newJobStore(),
		cache:  newResultCache(cfg.CacheSize),
		queue:  make(chan *Job, queueCap),
		graphs: newGraphIndex(graphIndexCap),
	}
	s.mux = s.routes()
	s.wg.Add(cfg.Pool)
	for i := 0; i < cfg.Pool; i++ {
		go s.worker()
	}
	return s
}

// worker drains the queue until Shutdown closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.run(j)
	}
}

// enqueue hands a job to the pool. It reports false when the server is
// draining or the queue is full.
func (s *Server) enqueue(j *Job) bool {
	s.queueMu.Lock()
	defer s.queueMu.Unlock()
	if s.closed {
		return false
	}
	select {
	case s.queue <- j:
		return true
	default:
		return false
	}
}

// submit validates a request, resolves it against the result cache and, on
// a miss, queues a fresh job. The returned job is shared on hits and
// single-flight joins.
func (s *Server) submit(req Request) (*Job, CacheState, error) {
	if s.draining.Load() {
		return nil, "", errDraining
	}
	chk, err := req.validate(s.cfg.Defaults)
	if err != nil {
		return nil, "", err
	}
	key, err := req.cacheKey(chk)
	if err != nil {
		return nil, "", &badRequestError{err.Error()}
	}
	var fresh *Job
	j, state := s.cache.submit(key, func() *Job {
		fresh = s.jobs.add(req)
		fresh.cacheKey = key
		if s.deltaEligible(&req) {
			// Durable tier: the job commits (or reopens) its graph under
			// the root, and a committed policy-variant — same delta key,
			// different exact key — is rechecked incrementally. All fields
			// are set here, before the job is visible to any worker.
			fresh.graphDir = s.graphDirFor(key)
			fresh.deltaKey = req.deltaKey()
			if e, ok := s.graphs.lookup(fresh.deltaKey); ok && e.exactKey != key {
				fresh.deltaDir = e.dir
			}
		}
		return fresh
	})
	if state == CacheMiss && fresh != nil && fresh.deltaDir != "" {
		state = CacheDelta
		s.deltaHits.Add(1)
	}
	if state == CacheMiss || state == CacheDelta {
		if !s.enqueue(fresh) {
			fresh.finish(StatusCancelled, nil, errorPayload(fmt.Errorf("%w: server draining or queue full", errCancelled)))
			s.cache.settle(key, StatusCancelled, nil)
			return nil, "", errDraining
		}
	}
	return j, state, nil
}

// errDraining maps to HTTP 503.
var errDraining = errors.New("server is draining; not accepting jobs")

// run executes one job on a pool worker: bridge progress into the job's
// history, run the analysis under the job's context, close every graph the
// analysis returned on every exit path, and settle the cache entry.
func (s *Server) run(j *Job) {
	if !j.setRunning() {
		// Cancelled while queued: never explored, never cacheable.
		s.cache.settle(j.cacheKey, StatusCancelled, nil)
		return
	}
	if err := j.ctx.Err(); err != nil {
		j.finish(StatusCancelled, nil, errorPayload(fmt.Errorf("%w before start", errCancelled)))
		s.cache.settle(j.cacheKey, StatusCancelled, nil)
		return
	}
	s.explorations.Add(1)
	res, err := s.analyze(j)
	var status JobStatus
	var payload *ErrorPayload
	switch {
	case err == nil:
		status = StatusDone
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		status = StatusCancelled
		payload = errorPayload(fmt.Errorf("%w: %v", errCancelled, err))
	default:
		status = StatusFailed
		payload = errorPayload(err)
	}
	j.finish(status, res, payload)
	s.cache.settle(j.cacheKey, status, payload)
}

// analyze dispatches the job's analysis through a checker rebuilt with the
// job's progress bridge and cancellation context layered on top of its
// validated options.
func (s *Server) analyze(j *Job) (*Result, error) {
	opts, err := j.Req.Options.lower()
	if err != nil {
		return nil, err
	}
	opts = append(opts, boosting.WithProgress(j.appendProgress), boosting.WithContext(j.ctx))
	chk, err := boosting.New(j.Req.Protocol, j.Req.N, j.Req.F, opts...)
	if err != nil {
		return nil, err
	}
	switch j.Req.Analysis {
	case AnalysisExplore:
		inputs, err := j.Req.inputMap()
		if err != nil {
			return nil, err
		}
		g, err := chk.Explore(inputs)
		if err != nil {
			return nil, err
		}
		defer closeGraph(g)
		valences := make([]boosting.Valence, 0, len(g.Roots()))
		for _, r := range g.Roots() {
			valences = append(valences, g.Valence(r))
		}
		return &Result{
			Analysis: j.Req.Analysis,
			States:   g.Size(),
			Edges:    g.Edges(),
			Valences: valenceStrings(valences),
		}, nil
	case AnalysisClassify:
		if j.deltaDir != "" {
			res, rerr := s.recheckClassify(j, chk)
			if rerr == nil {
				return res, nil
			}
			if j.ctx.Err() != nil {
				return nil, rerr
			}
			// The committed variant failed to reopen or recheck: fall
			// back to a full build (recheckClassify already dropped a
			// damaged index entry).
		}
		if j.graphDir != "" {
			// Durable tier: commit this build under the graph root so
			// future policy variants of the same candidate recheck
			// incrementally. The store override mirrors WithGraphDir's
			// spill requirement; eligibility already excluded explicit
			// conflicting backends.
			durable, derr := boosting.New(j.Req.Protocol, j.Req.N, j.Req.F,
				append(opts, boosting.WithStore(boosting.SpillStore), boosting.WithGraphDir(j.graphDir))...)
			if derr == nil {
				chk = durable
			}
		}
		res, err := chk.ClassifyInits()
		if err != nil {
			return nil, err
		}
		defer closeGraph(res.Graph)
		idx := res.BivalentIndex
		out := &Result{
			Analysis:      j.Req.Analysis,
			States:        res.Graph.Size(),
			Edges:         res.Graph.Edges(),
			Valences:      valenceStrings(res.Valences),
			BivalentIndex: &idx,
		}
		if _, ok := boosting.GraphManifest(res.Graph); ok && j.graphDir != "" {
			explored := res.Graph.Size()
			out.Explored = &explored
			s.graphs.put(graphEntry{
				deltaKey: j.deltaKey,
				exactKey: j.cacheKey,
				dir:      j.graphDir,
				states:   res.Graph.Size(),
			})
		}
		return out, nil
	case AnalysisRefute, AnalysisRefuteKSet:
		var report *boosting.Report
		if j.Req.Analysis == AnalysisRefute {
			report, err = chk.Refute(j.Req.Claimed)
		} else {
			report, err = chk.RefuteKSet(j.Req.K, j.Req.Claimed)
		}
		if err != nil {
			return nil, err
		}
		res := &Result{Analysis: j.Req.Analysis, Text: report.String()}
		claimed := report.Claimed
		res.Claimed = &claimed
		if j.Req.Analysis == AnalysisRefuteKSet {
			k := j.Req.K
			res.K = &k
		}
		violated := report.Violated()
		res.Violated = &violated
		for _, c := range report.Certificates {
			c.Failed = sortedInts(c.Failed)
			res.Certificates = append(res.Certificates, certJSON(c))
		}
		if report.Inits != nil {
			defer closeGraph(report.Inits.Graph)
			res.States = report.Inits.Graph.Size()
			res.Edges = report.Inits.Graph.Edges()
			res.Valences = valenceStrings(report.Inits.Valences)
			idx := report.Inits.BivalentIndex
			res.BivalentIndex = &idx
		}
		return res, nil
	default:
		return nil, fmt.Errorf("unknown analysis %q", j.Req.Analysis)
	}
}

// recheckClassify serves a classify job from the delta tier: reopen the
// policy-variant's committed graph and re-derive only the dirty region —
// vertices whose enabled-action sets changed under the new candidate —
// plus whatever fresh states they reach. Any failure is reported to the
// caller, which falls back to a full build; a directory that cannot even
// reopen is dropped from the index so the root stays clean.
func (s *Server) recheckClassify(j *Job, chk *boosting.Checker) (*Result, error) {
	prev, err := chk.OpenGraph(j.deltaDir)
	if err != nil {
		s.graphs.drop(j.deltaKey, j.deltaDir)
		return nil, err
	}
	res, err := chk.Recheck(prev)
	if err != nil {
		closeGraph(prev)
		return nil, err
	}
	defer res.Close()
	idx := res.BivalentIndex
	// Explored counts the states whose successor sets were actually
	// recomputed — the dirty base vertices plus the fresh splice — the
	// number the full-rebuild comparison in /v1/stats consumers care
	// about.
	explored := res.Dirty + res.Fresh
	return &Result{
		Analysis:      j.Req.Analysis,
		States:        res.ReachableStates,
		Edges:         res.ReachableEdges,
		Valences:      valenceStrings(res.Valences),
		BivalentIndex: &idx,
		Explored:      &explored,
	}, nil
}

// closeGraph releases a graph's backend resources (spill descriptors),
// tolerating nil.
func closeGraph(g *boosting.Graph) {
	if g != nil {
		_ = boosting.CloseGraph(g)
	}
}

// cancel cancels a job's context. Queued jobs terminate without running;
// running jobs unwind at the engine's next cancellation check.
func (s *Server) cancelJob(j *Job) {
	j.cancel()
	// A queued job has no worker to observe the context: finish it here.
	// Running jobs are finished by their worker (finish is idempotent).
	j.mu.Lock()
	queued := j.status == StatusQueued
	j.mu.Unlock()
	if queued {
		j.finish(StatusCancelled, nil, errorPayload(fmt.Errorf("%w while queued", errCancelled)))
		s.cache.settle(j.cacheKey, StatusCancelled, nil)
	}
}

// Explorations reports how many jobs actually ran an analysis (cache hits
// and single-flight joins never increment it).
func (s *Server) Explorations() int64 { return s.explorations.Load() }

// CacheStats snapshots the result-cache counters, folding in the delta
// tier's hit count.
func (s *Server) CacheStats() CacheStats {
	st := s.cache.stats()
	st.DeltaHits = s.deltaHits.Load()
	return st
}

// Shutdown gracefully stops the server: new submissions are rejected
// immediately, queued and running jobs drain until ctx expires, then every
// remaining job context is cancelled and the pool is awaited — spill-backed
// graphs are closed by the job runner on every exit path, including this
// one. Call after (or instead of) http.Server.Shutdown.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.queueMu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.queueMu.Unlock()

	stopped := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			for _, j := range s.jobs.all() {
				s.cancelJob(j)
			}
		case <-stopped:
		}
	}()
	s.wg.Wait()
	close(stopped)
	return ctx.Err()
}
