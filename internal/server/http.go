package server

import (
	"encoding/json"
	"errors"
	"net/http"

	"github.com/ioa-lab/boosting"
)

// routes builds the v1 API mux, once, at New.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/protocols", s.handleProtocols)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
	})
	return mux
}

// ServeHTTP serves the v1 API.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// writeJSON writes a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError maps a submit-path error to its HTTP status and payload.
func writeError(w http.ResponseWriter, err error) {
	var bad *badRequestError
	if errors.As(err, &bad) {
		writeJSON(w, http.StatusBadRequest, map[string]*ErrorPayload{
			"error": {Kind: "bad-request", Message: bad.msg},
		})
		return
	}
	var conflict *conflictRequestError
	if errors.As(err, &conflict) {
		writeJSON(w, http.StatusUnprocessableEntity, map[string]*ErrorPayload{
			"error": {Kind: "conflict", Message: conflict.err.Error()},
		})
		return
	}
	if errors.Is(err, errDraining) {
		writeJSON(w, http.StatusServiceUnavailable, map[string]*ErrorPayload{
			"error": {Kind: "draining", Message: err.Error()},
		})
		return
	}
	writeJSON(w, http.StatusInternalServerError, map[string]*ErrorPayload{
		"error": {Kind: "internal", Message: err.Error()},
	})
}

// SubmitResponse acknowledges a POST /v1/jobs.
type SubmitResponse struct {
	ID     string     `json:"id"`
	Status JobStatus  `json:"status"`
	Cached CacheState `json:"cached"`
}

// handleSubmit validates and enqueues (or cache-resolves) a job.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		writeError(w, &badRequestError{"malformed request: " + err.Error()})
		return
	}
	j, state, err := s.submit(req)
	if err != nil {
		writeError(w, err)
		return
	}
	status := http.StatusAccepted
	if state == CacheHit {
		status = http.StatusOK
	}
	writeJSON(w, status, SubmitResponse{ID: j.ID, Status: j.Status(), Cached: state})
}

// JobView is the GET /v1/jobs/{id} body.
type JobView struct {
	ID       string        `json:"id"`
	Protocol string        `json:"protocol"`
	N        int           `json:"n"`
	F        int           `json:"f"`
	Analysis string        `json:"analysis"`
	Status   JobStatus     `json:"status"`
	Levels   int           `json:"levels"`
	Result   *Result       `json:"result,omitempty"`
	Error    *ErrorPayload `json:"error,omitempty"`
}

func jobView(j *Job) JobView {
	progress, status, result, jobErr, _ := j.snapshot(0)
	return JobView{
		ID:       j.ID,
		Protocol: j.Req.Protocol,
		N:        j.Req.N,
		F:        j.Req.F,
		Analysis: j.Req.Analysis,
		Status:   status,
		Levels:   len(progress),
		Result:   result,
		Error:    jobErr,
	}
}

func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]*ErrorPayload{
			"error": {Kind: "not-found", Message: "unknown job " + r.PathValue("id")},
		})
		return nil, false
	}
	return j, true
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, jobView(j))
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	jobs := s.jobs.all()
	out := make([]JobView, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, jobView(j))
	}
	writeJSON(w, http.StatusOK, map[string][]JobView{"jobs": out})
}

// handleCancel cancels a queued or running job. Cancelling an already
// terminal job is a no-op acknowledgement. Note that single-flight shares
// one job among identical submissions: cancelling it cancels for everyone
// tailing it.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	s.cancelJob(j)
	writeJSON(w, http.StatusAccepted, map[string]string{"id": j.ID, "status": string(j.Status())})
}

func (s *Server) handleProtocols(w http.ResponseWriter, _ *http.Request) {
	type protoView struct {
		Name               string `json:"name"`
		Description        string `json:"description"`
		SkipsGraphAnalysis bool   `json:"skipsGraphAnalysis,omitempty"`
	}
	var out []protoView
	for _, p := range boosting.Protocols() {
		out = append(out, protoView{p.Name, p.Description, p.SkipsGraphAnalysis})
	}
	writeJSON(w, http.StatusOK, map[string][]protoView{"protocols": out})
}

// StatsResponse is the GET /v1/stats body.
type StatsResponse struct {
	Cache        CacheStats        `json:"cache"`
	Explorations int64             `json:"explorations"`
	Jobs         map[JobStatus]int `json:"jobs"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	counts := make(map[JobStatus]int)
	for _, j := range s.jobs.all() {
		counts[j.Status()]++
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		Cache:        s.CacheStats(),
		Explorations: s.Explorations(),
		Jobs:         counts,
	})
}
