package server

import (
	"context"
	"fmt"
	"sync"

	"github.com/ioa-lab/boosting"
)

// JobStatus is the lifecycle state of a checking job. Transitions are
// queued → running → one of the terminal states (done, failed, cancelled);
// a job cancelled while still queued skips running.
type JobStatus string

// Job lifecycle states.
const (
	StatusQueued    JobStatus = "queued"
	StatusRunning   JobStatus = "running"
	StatusDone      JobStatus = "done"
	StatusFailed    JobStatus = "failed"
	StatusCancelled JobStatus = "cancelled"
)

// terminal reports whether a status is final.
func terminal(s JobStatus) bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// Job is one submitted checking run. All mutable fields are guarded by mu;
// progress is append-only history, so SSE subscribers replay it by index
// and the exploration goroutine never waits for a slow client — appending
// takes the mutex briefly and signals subscribers without blocking.
type Job struct {
	ID  string `json:"id"`
	Req Request

	cancel context.CancelFunc
	ctx    context.Context
	// cacheKey is the result-cache key this job computes for; set once at
	// submission, before the job is visible to any other goroutine.
	cacheKey string
	// Delta-tier routing, set next to cacheKey under the same visibility
	// rule: graphDir is where a durable classify build commits its graph;
	// deltaKey its policy-blind index key; deltaDir, when non-empty, a
	// committed policy-variant graph to reopen and recheck incrementally
	// instead of building from scratch.
	graphDir string
	deltaKey string
	deltaDir string

	mu       sync.Mutex
	status   JobStatus
	progress []boosting.Progress
	result   *Result
	jobErr   *ErrorPayload
	// updated is closed and replaced on every mutation — a broadcast that
	// costs the writer one channel allocation and never blocks.
	updated chan struct{}
	// done is closed once, at the terminal transition, for drain waits.
	done chan struct{}
}

func newJob(id string, req Request) *Job {
	// Deliberately detached from the submitting request's context: a job
	// outlives the HTTP POST that created it and is cancelled through its
	// own handle (DELETE /v1/jobs/{id}, server drain), never by the
	// submitter hanging up.
	ctx, cancel := context.WithCancel(context.Background()) //lint:boostvet-ignore ctxflow — job lifetime is owned by the server, not the submitting request
	return &Job{
		ID:      id,
		Req:     req,
		ctx:     ctx,
		cancel:  cancel,
		status:  StatusQueued,
		updated: make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// notify wakes every subscriber. Callers hold mu.
func (j *Job) notify() {
	close(j.updated)
	j.updated = make(chan struct{})
}

// appendProgress records one per-level exploration report. It is the
// WithProgress bridge: called serially by the engine's coordinating
// goroutine, it appends under the mutex and returns — slow SSE readers
// catch up from the history and can never stall the build.
func (j *Job) appendProgress(p boosting.Progress) {
	j.mu.Lock()
	j.progress = append(j.progress, p)
	j.notify()
	j.mu.Unlock()
}

// setRunning moves a queued job to running; it reports false when the job
// already reached a terminal state (cancelled while queued).
func (j *Job) setRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if terminal(j.status) {
		return false
	}
	j.status = StatusRunning
	j.notify()
	return true
}

// finish records the terminal outcome exactly once.
func (j *Job) finish(status JobStatus, res *Result, jobErr *ErrorPayload) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if terminal(j.status) {
		return
	}
	j.status = status
	j.result = res
	j.jobErr = jobErr
	j.notify()
	close(j.done)
}

// Status returns the current lifecycle state.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// snapshot returns the progress history from index `from` on, the current
// status/result/error, and the channel that signals the next mutation. The
// returned slice aliases append-only history and is safe to read unlocked.
func (j *Job) snapshot(from int) ([]boosting.Progress, JobStatus, *Result, *ErrorPayload, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var items []boosting.Progress
	if from < len(j.progress) {
		items = j.progress[from:len(j.progress):len(j.progress)]
	}
	return items, j.status, j.result, j.jobErr, j.updated
}

// jobStore is the in-memory job registry. Jobs are kept for the lifetime of
// the process: terminal records are the cache's backing store and the audit
// trail of what the server computed.
type jobStore struct {
	mu   sync.RWMutex
	next int
	jobs map[string]*Job
	ids  []string // insertion order, for listing
}

func newJobStore() *jobStore {
	return &jobStore{jobs: make(map[string]*Job)}
}

// add registers a new job under a fresh sequential id.
func (s *jobStore) add(req Request) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.next++
	id := fmt.Sprintf("j%d", s.next)
	j := newJob(id, req)
	s.jobs[id] = j
	s.ids = append(s.ids, id)
	return j
}

// get looks a job up by id.
func (s *jobStore) get(id string) (*Job, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	j, ok := s.jobs[id]
	return j, ok
}

// all returns the jobs in submission order.
func (s *jobStore) all() []*Job {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Job, 0, len(s.ids))
	for _, id := range s.ids {
		out = append(out, s.jobs[id])
	}
	return out
}
