package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// The delta-match cache tier. On an exact-key miss of a classify job the
// server probes a second index keyed by everything EXCEPT the silence
// policy: a hit means a durable graph for a policy-variant of the same
// candidate is already committed under the graph root, and the job can
// reopen it and run an incremental recheck of the dirty region instead of
// a full rebuild. The exact result cache stays the source of truth for
// verdicts — the delta tier only decides HOW a missed verdict gets
// computed, so a wrong or stale delta entry costs time, never soundness:
// the recheck re-derives every transition it keeps.

// graphIndexCap bounds the delta index; evicted entries take their
// committed graph directories with them.
const graphIndexCap = 256

// graphEntry records one committed durable graph under the graph root.
type graphEntry struct {
	// deltaKey is the policy-blind index key.
	deltaKey string
	// exactKey is the result-cache key of the job that built the graph.
	exactKey string
	// dir is the committed graph directory (derived from exactKey).
	dir string
	// states is the committed graph's vertex count, for observability.
	states int
}

// graphIndex is the LRU of committed durable graphs, keyed by the
// policy-blind delta key. Evicting an entry removes its directory: the
// index is the single owner of everything under the graph root.
type graphIndex struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element // deltaKey -> *graphEntry
	lru     *list.List
}

func newGraphIndex(max int) *graphIndex {
	return &graphIndex{
		max:     max,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

// lookup returns the committed graph for a delta key, refreshing its LRU
// position.
func (gi *graphIndex) lookup(deltaKey string) (graphEntry, bool) {
	gi.mu.Lock()
	defer gi.mu.Unlock()
	el, ok := gi.entries[deltaKey]
	if !ok {
		return graphEntry{}, false
	}
	gi.lru.MoveToFront(el)
	return *el.Value.(*graphEntry), true
}

// put registers a freshly committed graph, displacing any previous entry
// under the same delta key (its directory is removed unless it is the
// same directory being re-registered).
func (gi *graphIndex) put(e graphEntry) {
	gi.mu.Lock()
	defer gi.mu.Unlock()
	if el, ok := gi.entries[e.deltaKey]; ok {
		old := el.Value.(*graphEntry)
		if old.dir != e.dir {
			_ = os.RemoveAll(old.dir)
		}
		*old = e
		gi.lru.MoveToFront(el)
		return
	}
	gi.entries[e.deltaKey] = gi.lru.PushFront(&e)
	for gi.max > 0 && len(gi.entries) > gi.max {
		el := gi.lru.Back()
		old := el.Value.(*graphEntry)
		gi.lru.Remove(el)
		delete(gi.entries, old.deltaKey)
		_ = os.RemoveAll(old.dir)
	}
}

// drop forgets an entry whose directory failed to reopen, removing the
// damaged directory so the next build starts clean. The dir guard keeps
// a concurrent re-registration under the same delta key alive.
func (gi *graphIndex) drop(deltaKey, dir string) {
	gi.mu.Lock()
	defer gi.mu.Unlock()
	if el, ok := gi.entries[deltaKey]; ok {
		old := el.Value.(*graphEntry)
		if old.dir != dir {
			return
		}
		gi.lru.Remove(el)
		delete(gi.entries, deltaKey)
		_ = os.RemoveAll(old.dir)
	}
}

// deltaKey is the policy-blind sibling of cacheKey: protocol, sizes,
// analysis and every verdict-affecting option EXCEPT the silence policy.
// Two submissions with equal delta keys and unequal exact keys differ
// only in policy — exactly the relation the incremental recheck is sound
// for, because policy variants share the candidate's state encoding and
// action alphabet (the "same shape" precondition of OpenGraph).
func (r *Request) deltaKey() string {
	return fmt.Sprintf("delta|%s|n=%d|f=%d|a=%s|sym=%t|ms=%d|mr=%d|ng=%t|r=%d",
		r.Protocol, r.N, r.F, r.Analysis,
		r.Options.Symmetry, r.Options.MaxStates, r.Options.MaxRounds,
		r.Options.NoGraph, r.Options.Rounds)
}

// deltaEligible reports whether a validated request may use the durable
// graph tier at all: the server has a graph root, the analysis is the
// Lemma 4 sweep (one graph per verdict — refutations build several), and
// the option block does not pin a conflicting backend. The store check
// mirrors WithGraphDir's conflict matrix: an explicit non-spill store or
// a caller-owned spill directory wins over durability.
func (s *Server) deltaEligible(r *Request) bool {
	if s.cfg.GraphRoot == "" || r.Analysis != AnalysisClassify {
		return false
	}
	o := r.Options
	return (o.Store == "" || o.Store == "spill") && o.SpillDir == "" && o.Shards == 0 && !o.NoGraph
}

// graphDirFor maps an exact cache key to its directory under the graph
// root. The hash keeps option tuples and fingerprints out of path names.
func (s *Server) graphDirFor(exactKey string) string {
	sum := sha256.Sum256([]byte(exactKey))
	return filepath.Join(s.cfg.GraphRoot, hex.EncodeToString(sum[:16]))
}

// DeltaHits reports how many submissions were served by reopening a
// policy-variant's committed graph and rechecking only the dirty region.
func (s *Server) DeltaHits() int64 { return s.deltaHits.Load() }
