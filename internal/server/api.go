// Package server implements boostd's checking-as-a-service core: an
// HTTP/JSON API over the boosting façade with a bounded worker pool, a
// result cache keyed by canonical system fingerprint (so renamed-but-
// isomorphic submissions share one entry), and per-job Server-Sent-Event
// progress streams bridged from the façade's WithProgress callback.
package server

import (
	"errors"
	"fmt"
	"sort"
	"strconv"

	"github.com/ioa-lab/boosting"
	"github.com/ioa-lab/boosting/internal/cliflags"
)

// Analysis names accepted by Request.Analysis.
const (
	AnalysisExplore    = "explore"
	AnalysisClassify   = "classify"
	AnalysisRefute     = "refute"
	AnalysisRefuteKSet = "refutekset"
)

// Options is the JSON option block of a job submission. Zero values inherit
// the server's defaults (the boostd flag block); the zero Workers then
// defaults to 1 — serial jobs — because the worker pool, not the single
// build, is what keeps the box saturated. Engine options (workers, shards,
// store, spilldir, nowitness) never enter the result-cache key: every
// combination produces the same verdict.
type Options struct {
	Workers   int    `json:"workers,omitempty"`
	Shards    int    `json:"shards,omitempty"`
	MaxStates int    `json:"maxStates,omitempty"`
	Store     string `json:"store,omitempty"`
	SpillDir  string `json:"spilldir,omitempty"`
	NoWitness bool   `json:"nowitness,omitempty"`
	Symmetry  bool   `json:"symmetry,omitempty"`
	NoGraph   bool   `json:"nograph,omitempty"`
	Rounds    int    `json:"rounds,omitempty"`
	MaxRounds int    `json:"maxRounds,omitempty"`
	// Policy is the silence policy: "" or "adversarial" (default), "benign".
	Policy string `json:"policy,omitempty"`
}

// merge fills o's zero-valued fields from the server defaults. Boolean
// options are sticky: a server-level default cannot be switched back off
// per job (submit an explicit option block to a server without defaults
// for the unreduced run).
func (o Options) merge(def Options) Options {
	if o.Workers == 0 {
		o.Workers = def.Workers
	}
	if o.Shards == 0 {
		o.Shards = def.Shards
	}
	if o.MaxStates == 0 {
		o.MaxStates = def.MaxStates
	}
	if o.Store == "" {
		o.Store = def.Store
	}
	if o.SpillDir == "" {
		o.SpillDir = def.SpillDir
	}
	o.NoWitness = o.NoWitness || def.NoWitness
	o.Symmetry = o.Symmetry || def.Symmetry
	o.NoGraph = o.NoGraph || def.NoGraph
	if o.Rounds == 0 {
		o.Rounds = def.Rounds
	}
	if o.MaxRounds == 0 {
		o.MaxRounds = def.MaxRounds
	}
	if o.Policy == "" {
		o.Policy = def.Policy
	}
	return o
}

// DefaultsFromFlags lowers the shared engine flag block into the server's
// default job options (Config.Defaults): a boostd started with
// -store spill -symmetry applies them to every job whose JSON option block
// leaves those fields unset.
func DefaultsFromFlags(c *cliflags.Common) Options {
	return Options{
		Workers:   c.Workers,
		Shards:    c.Shards,
		MaxStates: c.MaxStates,
		Store:     c.Store,
		SpillDir:  c.SpillDir,
		NoWitness: c.NoWitness,
		Symmetry:  c.Symmetry,
	}
}

// lower resolves the option block to façade options. A zero worker count
// becomes the serial engine: job-level parallelism is the pool's business.
func (o Options) lower() ([]boosting.Option, error) {
	store, err := cliflags.ParseStore(o.Store)
	if err != nil {
		return nil, err
	}
	if o.SpillDir != "" && o.Store != "" && store != boosting.SpillStore {
		return nil, fmt.Errorf("spilldir requires the spill store (got %q)", o.Store)
	}
	workers := o.Workers
	if workers == 0 {
		workers = 1
	}
	opts := []boosting.Option{
		boosting.WithWorkers(workers),
		boosting.WithShards(o.Shards),
		boosting.WithMaxStates(o.MaxStates),
		boosting.WithStore(store),
	}
	if o.SpillDir != "" || store == boosting.SpillStore {
		opts = append(opts, boosting.WithSpillDir(o.SpillDir))
	}
	if o.NoWitness {
		opts = append(opts, boosting.WithoutWitnesses())
	}
	if o.Symmetry {
		opts = append(opts, boosting.WithSymmetry())
	}
	if o.NoGraph {
		opts = append(opts, boosting.WithoutGraphAnalysis())
	}
	if o.Rounds > 0 {
		opts = append(opts, boosting.WithRounds(o.Rounds))
	}
	if o.MaxRounds > 0 {
		opts = append(opts, boosting.WithMaxRounds(o.MaxRounds))
	}
	switch o.Policy {
	case "", "adversarial":
	case "benign":
		opts = append(opts, boosting.WithSilencePolicy(boosting.Benign))
	default:
		return nil, fmt.Errorf("unknown policy %q (have: adversarial, benign)", o.Policy)
	}
	return opts, nil
}

// Request is one job submission.
type Request struct {
	// Protocol is a registry name (see boosting.Protocols).
	Protocol string `json:"protocol"`
	// N is the process count (group size for setboost), F the service
	// resilience.
	N int `json:"n"`
	F int `json:"f"`
	// Analysis selects the check: explore | classify | refute | refutekset.
	Analysis string `json:"analysis"`
	// Claimed is the claimed failure tolerance (refute, refutekset).
	Claimed int `json:"claimed,omitempty"`
	// K is the set-consensus parameter (refutekset).
	K int `json:"k,omitempty"`
	// Inputs is the explore initialization, keyed by decimal process id;
	// omitted means the all-zero assignment.
	Inputs map[string]string `json:"inputs,omitempty"`
	// Options are the engine and construction knobs.
	Options Options `json:"options"`
}

// inputMap converts the JSON string-keyed inputs to process ids.
func (r *Request) inputMap() (map[int]string, error) {
	out := make(map[int]string, len(r.Inputs))
	for k, v := range r.Inputs {
		id, err := strconv.Atoi(k)
		if err != nil {
			return nil, fmt.Errorf("inputs key %q is not a process id", k)
		}
		out[id] = v
	}
	return out, nil
}

// validate checks the request against the registry and builds its checker.
// A *boosting.ConflictError — witness-free options against a witness-
// producing analysis — is detected here, at submit time, never after
// queueing.
func (r *Request) validate(defaults Options) (*boosting.Checker, error) {
	info, ok := protocolInfo(r.Protocol)
	if !ok {
		return nil, &badRequestError{fmt.Sprintf("unknown protocol %q (see GET /v1/protocols)", r.Protocol)}
	}
	if r.N < 1 {
		return nil, &badRequestError{"n must be >= 1"}
	}
	if r.F < 0 {
		return nil, &badRequestError{"f must be >= 0"}
	}
	switch r.Analysis {
	case AnalysisExplore, AnalysisClassify:
	case AnalysisRefute:
		if r.Claimed < 1 {
			return nil, &badRequestError{"refute requires claimed >= 1"}
		}
	case AnalysisRefuteKSet:
		if r.Claimed < 1 || r.K < 1 {
			return nil, &badRequestError{"refutekset requires claimed >= 1 and k >= 1"}
		}
	default:
		return nil, &badRequestError{fmt.Sprintf("unknown analysis %q (have: explore, classify, refute, refutekset)", r.Analysis)}
	}
	r.Options = r.Options.merge(defaults)
	opts, err := r.Options.lower()
	if err != nil {
		return nil, &badRequestError{err.Error()}
	}
	if r.Options.NoWitness && !r.Options.NoGraph && !info.SkipsGraphAnalysis &&
		(r.Analysis == AnalysisRefute || r.Analysis == AnalysisRefuteKSet) {
		return nil, &conflictRequestError{&boosting.ConflictError{
			Option: "nowitness",
			With:   r.Analysis,
			Reason: "refutation certificates reconstruct witness executions from the dropped predecessor links (set nograph to skip the graph phases)",
		}}
	}
	chk, err := boosting.New(r.Protocol, r.N, r.F, opts...)
	if err != nil {
		return nil, &badRequestError{err.Error()}
	}
	if r.Analysis == AnalysisExplore {
		inputs, err := r.inputMap()
		if err != nil {
			return nil, &badRequestError{err.Error()}
		}
		if _, err := chk.CanonicalRootFingerprint(inputs); err != nil {
			return nil, &badRequestError{err.Error()}
		}
	}
	return chk, nil
}

// cacheKey derives the result-cache key: the candidate's canonical
// fingerprint (structure + canonicalized monotone roots — covers protocol,
// n, f, policy and rounds), the verdict-affecting option tuple (symmetry,
// state budget, round cap, graph-phase skip) and the analysis parameters.
// Explore jobs add the canonicalized root of their input assignment, so
// process-renamed initializations of symmetric families share an entry.
// Engine options — workers, shards, store backend, witness links — are
// deliberately absent: every combination returns the same verdict.
func (r *Request) cacheKey(chk *boosting.Checker) (string, error) {
	key := fmt.Sprintf("%x|a=%s|sym=%t|ms=%d|mr=%d|ng=%t",
		chk.CanonicalFingerprint(), r.Analysis,
		r.Options.Symmetry, r.Options.MaxStates, r.Options.MaxRounds, r.Options.NoGraph)
	switch r.Analysis {
	case AnalysisExplore:
		inputs, err := r.inputMap()
		if err != nil {
			return "", err
		}
		root, err := chk.CanonicalRootFingerprint(inputs)
		if err != nil {
			return "", err
		}
		key += fmt.Sprintf("|root=%x", root)
	case AnalysisRefute:
		key += fmt.Sprintf("|c=%d", r.Claimed)
	case AnalysisRefuteKSet:
		key += fmt.Sprintf("|c=%d|k=%d", r.Claimed, r.K)
	}
	return key, nil
}

// protocolInfo resolves a registry name.
func protocolInfo(name string) (boosting.ProtocolInfo, bool) {
	for _, p := range boosting.Protocols() {
		if p.Name == name {
			return p, true
		}
	}
	return boosting.ProtocolInfo{}, false
}

// badRequestError maps to HTTP 400.
type badRequestError struct{ msg string }

func (e *badRequestError) Error() string { return e.msg }

// conflictRequestError maps to HTTP 422: the request is well-formed but the
// option combination cannot produce the requested analysis.
type conflictRequestError struct{ err *boosting.ConflictError }

func (e *conflictRequestError) Error() string { return e.err.Error() }

// ErrorPayload is the structured error of a failed job (and of submit-time
// rejections): a stable kind plus the kind-specific fields.
type ErrorPayload struct {
	// Kind is one of "limit", "conflict", "cancelled", "bad-request",
	// "internal".
	Kind    string `json:"kind"`
	Message string `json:"message"`
	// Limit/Explored are set for kind "limit": the state budget and the
	// partial exploration count when it overflowed.
	Limit    int `json:"limit,omitempty"`
	Explored int `json:"explored,omitempty"`
}

// errorPayload classifies a job error into its structured payload.
func errorPayload(err error) *ErrorPayload {
	var le *boosting.LimitError
	if errors.As(err, &le) {
		return &ErrorPayload{Kind: "limit", Message: err.Error(), Limit: le.Limit, Explored: le.Explored}
	}
	var ce *boosting.ConflictError
	if errors.As(err, &ce) {
		return &ErrorPayload{Kind: "conflict", Message: err.Error()}
	}
	if errors.Is(err, errCancelled) {
		return &ErrorPayload{Kind: "cancelled", Message: err.Error()}
	}
	return &ErrorPayload{Kind: "internal", Message: err.Error()}
}

// Certificate is the JSON rendering of one refutation counterexample.
type Certificate struct {
	Kind        string            `json:"kind"`
	Description string            `json:"description"`
	Inputs      map[string]string `json:"inputs,omitempty"`
	Failed      []int             `json:"failed,omitempty"`
	Decisions   map[string]string `json:"decisions,omitempty"`
	Diverged    bool              `json:"diverged,omitempty"`
}

// Result is the typed outcome of a finished job. Exactly the fields of the
// requested analysis are set; Text carries the engine's human rendering
// byte-for-byte for refutations.
type Result struct {
	Analysis string `json:"analysis"`
	// States/Edges are the built graph's totals (explore, classify, and
	// refutations whose graph phases ran).
	States int `json:"states,omitempty"`
	Edges  int `json:"edges,omitempty"`
	// Valences lists the root valences (explore: the single input root;
	// classify: the n+1 monotone initializations).
	Valences []string `json:"valences,omitempty"`
	// BivalentIndex is classify's first bivalent initialization, or -1.
	BivalentIndex *int `json:"bivalentIndex,omitempty"`
	// Explored, for durable-tier classify jobs, is the number of states
	// whose successor sets this job actually computed: the full state
	// count for a fresh committed build, the dirty-plus-fresh region for
	// a delta recheck (0 when the variant's graph was provably
	// unchanged). Absent outside the durable tier.
	Explored *int `json:"explored,omitempty"`
	// Refutation fields.
	Claimed      *int          `json:"claimed,omitempty"`
	K            *int          `json:"k,omitempty"`
	Violated     *bool         `json:"violated,omitempty"`
	Certificates []Certificate `json:"certificates,omitempty"`
	Text         string        `json:"text,omitempty"`
}

// certJSON converts a façade certificate.
func certJSON(c boosting.Certificate) Certificate {
	out := Certificate{
		Kind:        c.Kind.String(),
		Description: c.Description,
		Failed:      c.Failed,
		Diverged:    c.Diverged,
	}
	if len(c.Inputs) > 0 {
		out.Inputs = stringKeyed(c.Inputs)
	}
	if len(c.Decisions) > 0 {
		out.Decisions = stringKeyed(c.Decisions)
	}
	return out
}

// stringKeyed converts process-id keys to their decimal JSON form.
func stringKeyed(m map[int]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[strconv.Itoa(k)] = v
	}
	return out
}

// valenceStrings renders root valences in root order.
func valenceStrings(vs []boosting.Valence) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.String()
	}
	return out
}

// sortedInts returns a sorted copy (stable JSON for set-valued fields).
func sortedInts(in []int) []int {
	out := append([]int(nil), in...)
	sort.Ints(out)
	return out
}
