package server

import (
	"container/list"
	"sync"
)

// CacheState classifies a submission against the result cache.
type CacheState string

// Submission outcomes.
const (
	// CacheMiss: no entry — the submission starts a fresh exploration.
	CacheMiss CacheState = "miss"
	// CacheHit: a finished entry — the cached verdict is returned without
	// exploring.
	CacheHit CacheState = "hit"
	// CacheInflight: an identical exploration is already queued or running —
	// the submission joins it (single-flight dedup).
	CacheInflight CacheState = "inflight"
	// CacheDelta: no exact entry, but a committed durable graph differing
	// only in silence policy — the job reopens it and rechecks the dirty
	// region instead of rebuilding (see Config.GraphRoot).
	CacheDelta CacheState = "delta"
)

// CacheStats is the observability face of the result cache.
type CacheStats struct {
	// Hits counts submissions served from a finished entry.
	Hits int64 `json:"hits"`
	// InflightHits counts submissions deduplicated onto a queued or running
	// identical job.
	InflightHits int64 `json:"inflightHits"`
	// Misses counts submissions that started a fresh exploration
	// (delta-tier submissions are counted here AND in DeltaHits: they
	// missed the exact cache but avoided a full rebuild).
	Misses int64 `json:"misses"`
	// DeltaHits counts submissions served by reopening a policy-variant's
	// committed graph and rechecking only the dirty region.
	DeltaHits int64 `json:"deltaHits"`
	// Inflight is the number of entries whose job has not finished yet.
	Inflight int `json:"inflight"`
	// Entries is the current entry count (bounded by the -cache flag).
	Entries int `json:"entries"`
}

// resultCache maps canonical-fingerprint cache keys to the job holding (or
// computing) the verdict. One mutex covers lookup, single-flight insertion
// and LRU maintenance: the critical sections are map operations, never
// exploration. Entries whose job is still running are exempt from eviction,
// so the single-flight guarantee survives a full cache.
type resultCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element // -> *cacheEntry
	lru     *list.List               // front = most recent
	hits    int64
	joined  int64
	misses  int64
}

type cacheEntry struct {
	key string
	job *Job
}

func newResultCache(max int) *resultCache {
	return &resultCache{
		max:     max,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

// submit resolves a cache key under single-flight: an existing entry
// returns its job (hit when finished, inflight otherwise); a miss runs mk
// to create the job and inserts it before releasing the lock, so N
// concurrent identical submissions produce exactly one exploration.
func (c *resultCache) submit(key string, mk func() *Job) (*Job, CacheState) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		c.lru.MoveToFront(el)
		if terminal(e.job.Status()) {
			c.hits++
			return e.job, CacheHit
		}
		c.joined++
		return e.job, CacheInflight
	}
	c.misses++
	j := mk()
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, job: j})
	c.evictLocked()
	return j, CacheMiss
}

// evictLocked drops least-recently-used finished entries beyond the bound.
// The jobs themselves stay in the job store; only cache reachability ends.
func (c *resultCache) evictLocked() {
	if c.max <= 0 {
		return
	}
	for el := c.lru.Back(); el != nil && len(c.entries) > c.max; {
		prev := el.Prev()
		if e := el.Value.(*cacheEntry); terminal(e.job.Status()) {
			c.lru.Remove(el)
			delete(c.entries, e.key)
		}
		el = prev
	}
}

// settle is called when a job reaches a terminal state: cancelled and
// internally-failed runs are dropped so a resubmission retries, while done
// verdicts and deterministic limit overflows stay cached.
func (c *resultCache) settle(key string, status JobStatus, jobErr *ErrorPayload) {
	cacheable := status == StatusDone || (status == StatusFailed && jobErr != nil && jobErr.Kind == "limit")
	if cacheable {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.lru.Remove(el)
		delete(c.entries, key)
	}
}

// stats snapshots the counters.
func (c *resultCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	inflight := 0
	for el := c.lru.Front(); el != nil; el = el.Next() {
		if !terminal(el.Value.(*cacheEntry).job.Status()) {
			inflight++
		}
	}
	return CacheStats{
		Hits:         c.hits,
		InflightHits: c.joined,
		Misses:       c.misses,
		Inflight:     inflight,
		Entries:      len(c.entries),
	}
}
