package server_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/ioa-lab/boosting"
	"github.com/ioa-lab/boosting/internal/server"
)

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	name string
	data []byte
}

// readEvents consumes a text/event-stream until the handler closes it (the
// stream ends with the job's terminal event).
func readEvents(t *testing.T, ts *httptest.Server, id string) []sseEvent {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET events: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "":
			if cur.name != "" {
				events = append(events, cur)
				cur = sseEvent{}
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading event stream: %v", err)
	}
	return events
}

// TestSSEGolden is the acceptance contract of the progress bridge: the SSE
// event stream of a cache miss is the serial engine's WithProgress callback
// sequence, byte-for-byte under the one wire encoder, terminated by a done
// event carrying the typed result.
func TestSSEGolden(t *testing.T) {
	// Reference sequence: the same build run directly, serially, with the
	// callback collected.
	var want []boosting.Progress
	chk, err := boosting.New("forward", 3, 0,
		boosting.WithWorkers(1),
		boosting.WithProgress(func(p boosting.Progress) { want = append(want, p) }))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := chk.ClassifyInits()
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("reference run produced no progress callbacks")
	}

	_, ts := newTestServer(t, server.Config{Pool: 1})
	ack, code := postJob(t, ts, classifyForward3)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	// Subscribe while the job runs; replay semantics make the full history
	// arrive regardless of how the subscription races the build.
	events := readEvents(t, ts, ack.ID)
	if len(events) == 0 {
		t.Fatal("empty event stream")
	}
	last := events[len(events)-1]
	progress := events[:len(events)-1]

	if len(progress) != len(want) {
		t.Fatalf("stream carried %d progress events, want %d", len(progress), len(want))
	}
	for i, ev := range progress {
		if ev.name != "progress" {
			t.Fatalf("event %d named %q, want progress", i, ev.name)
		}
		if wire := server.MarshalProgress(want[i]); !bytes.Equal(ev.data, wire) {
			t.Errorf("progress event %d = %s, want %s (byte-for-byte)", i, ev.data, wire)
		}
	}
	if last.name != string(server.StatusDone) {
		t.Fatalf("terminal event named %q, want done", last.name)
	}
	var res server.Result
	if err := json.Unmarshal(last.data, &res); err != nil {
		t.Fatalf("terminal event data %s: %v", last.data, err)
	}
	if res.States != ref.Graph.Size() || res.Edges != ref.Graph.Edges() {
		t.Errorf("terminal result %d/%d, want %d/%d",
			res.States, res.Edges, ref.Graph.Size(), ref.Graph.Edges())
	}

	// A second subscription after completion replays the identical stream.
	replay := readEvents(t, ts, ack.ID)
	if len(replay) != len(events) {
		t.Fatalf("replay carried %d events, want %d", len(replay), len(events))
	}
	for i := range events {
		if replay[i].name != events[i].name || !bytes.Equal(replay[i].data, events[i].data) {
			t.Errorf("replay event %d = (%s, %s), want (%s, %s)",
				i, replay[i].name, replay[i].data, events[i].name, events[i].data)
		}
	}
}

// TestSSEFailedEvent: a job that overflows its budget terminates its stream
// with a failed event carrying the structured limit payload.
func TestSSEFailedEvent(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Pool: 1})
	ack, code := postJob(t, ts, `{"protocol": "floodset-p", "n": 3, "f": 0, "analysis": "explore", "inputs": {"0": "0", "1": "1", "2": "1"}, "options": {"rounds": 2, "maxStates": 3000}}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	events := readEvents(t, ts, ack.ID)
	if len(events) == 0 {
		t.Fatal("empty event stream")
	}
	last := events[len(events)-1]
	if last.name != string(server.StatusFailed) {
		t.Fatalf("terminal event named %q, want failed", last.name)
	}
	var payload server.ErrorPayload
	if err := json.Unmarshal(last.data, &payload); err != nil {
		t.Fatal(err)
	}
	if payload.Kind != "limit" || payload.Limit != 3000 || payload.Explored != 3000 {
		t.Errorf("terminal payload = %+v, want kind=limit 3000/3000", payload)
	}
}

// TestSSESlowReader: a subscriber that never reads stalls only its own
// connection — the exploration appends to the job's history and completes;
// backpressure is by replay, never by blocking the producer.
func TestSSESlowReader(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Pool: 1})
	ack, code := postJob(t, ts, classifyForward3)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	// A raw connection that sends the subscription and then goes silent:
	// nothing ever reads the response bytes.
	conn, err := net.Dial("tcp", ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET /v1/jobs/%s/events HTTP/1.1\r\nHost: stalled\r\nAccept: text/event-stream\r\n\r\n", ack.ID)

	view := waitTerminal(t, ts, ack.ID)
	if view.Status != server.StatusDone || view.Result == nil || view.Result.States != 410 {
		t.Fatalf("job behind a stalled subscriber: %s (%v)", view.Status, view.Error)
	}
	// And a live subscriber still gets the whole stream.
	events := readEvents(t, ts, ack.ID)
	if len(events) == 0 || events[len(events)-1].name != string(server.StatusDone) {
		t.Errorf("live subscriber after stalled one: %d events", len(events))
	}
}
