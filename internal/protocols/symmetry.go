package protocols

import (
	"fmt"
	"strconv"

	"github.com/ioa-lab/boosting/internal/codec"
	"github.com/ioa-lab/boosting/internal/servicetype"
	"github.com/ioa-lab/boosting/internal/symmetry"
)

// Symmetry specs of the registry protocols: each declares which process ids
// are interchangeable in the corresponding Build* system and how the ids
// embedded in that protocol's state transform under a renaming. The
// quotient-parity test suite asserts, for every spec, that reduced and
// unreduced analyses agree on every verdict.
//
// The failure-detector families (floodset-p, fdboost, evperfect,
// suspectcollector) declare no spec: their process states accumulate
// suspect-id sets and their detector services report id sets, and their
// failure-free graph phases are skipped by the refuter anyway — no
// reduction is always sound.

// allProcs returns [0, …, n−1], the id set every registry builder uses.
func allProcs(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// ForwardSymmetry declares the symmetry of BuildForward: all n processes
// run the identical Forward program against the shared consensus object k0
// and register r0, and no payload or value embeds a process id, so the
// full symmetric group acts by buffer re-keying alone.
func ForwardSymmetry(n int) symmetry.Spec {
	return symmetry.Spec{Orbits: [][]int{allProcs(n)}}
}

// TOBSymmetry declares the symmetry of BuildTOBConsensus: all n processes
// are interchangeable, but the broadcast service's value is a queue of
// (message, sender) pairs and its buffered rcv responses name senders, so
// a renaming must relabel those sender ids.
func TOBSymmetry(n int) symmetry.Spec {
	return symmetry.Spec{
		Orbits: [][]int{allProcs(n)},
		// The hooks panic on malformed encodings: every value they see is
		// engine-generated, so a parse failure is a broken invariant, and
		// permuting the rest of the state while leaving an id in place
		// would silently corrupt the quotient. Fail loudly instead.
		RewriteVal: func(svc, val string, perm func(int) int) string {
			msgs, err := codec.ParseList(val)
			if err != nil {
				panic(fmt.Sprintf("protocols: tob symmetry: malformed %s value %q: %v", svc, val, err))
			}
			out := make([]string, len(msgs))
			for i, entry := range msgs {
				m, sender, perr := codec.ParsePair(entry)
				if perr != nil {
					panic(fmt.Sprintf("protocols: tob symmetry: malformed %s queue entry %q: %v", svc, entry, perr))
				}
				s, aerr := strconv.Atoi(sender)
				if aerr != nil {
					panic(fmt.Sprintf("protocols: tob symmetry: non-integer sender in %q", entry))
				}
				out[i] = codec.Pair(m, strconv.Itoa(perm(s)))
			}
			return codec.List(out)
		},
		RewriteResponse: func(svc, item string, perm func(int) int) string {
			m, sender, ok := servicetype.RcvParts(item)
			if !ok {
				panic(fmt.Sprintf("protocols: tob symmetry: malformed %s response %q", svc, item))
			}
			return servicetype.Rcv(m, perm(sender))
		},
	}
}

// RegisterVoteSymmetry declares the symmetry of BuildRegisterVote: the n
// processes are interchangeable together with their single-writer vote
// registers, so a renaming maps register V_i to V_π(i) (relabelling the
// pending invocations in process outboxes along the way — the engine does
// that through the rename hook). Register values and read/write payloads
// are vote values, never ids.
func RegisterVoteSymmetry(n int) symmetry.Spec {
	return symmetry.Spec{
		Orbits: [][]int{allProcs(n)},
		RenameService: func(svc string, perm func(int) int) string {
			if len(svc) < 2 || svc[0] != 'V' {
				return svc
			}
			i, err := strconv.Atoi(svc[1:])
			if err != nil {
				return svc
			}
			return voteRegister(perm(i))
		},
	}
}

// GroupedBoostSymmetry declares the symmetry of BuildGroupedBoost: within
// each group of n processes sharing one consensus service the ids are
// interchangeable (the group map and service wiring are invariant), while
// processes of different groups are not — their services differ.
func GroupedBoostSymmetry(g, n int) symmetry.Spec {
	orbits := make([][]int, g)
	for grp := 0; grp < g; grp++ {
		ids := make([]int, n)
		for j := 0; j < n; j++ {
			ids[j] = grp*n + j
		}
		orbits[grp] = ids
	}
	return symmetry.Spec{Orbits: orbits}
}

// SetBoostSymmetry is GroupedBoostSymmetry for the two-group Section 4
// construction built by BuildSetBoost.
func SetBoostSymmetry(n int) symmetry.Spec {
	return GroupedBoostSymmetry(2, n)
}
