package protocols_test

import (
	"testing"

	"github.com/ioa-lab/boosting/internal/codec"
	"github.com/ioa-lab/boosting/internal/explore"
	"github.com/ioa-lab/boosting/internal/ioa"
	"github.com/ioa-lab/boosting/internal/process"
	"github.com/ioa-lab/boosting/internal/service"
	"github.com/ioa-lab/boosting/internal/servicetype"
	"github.com/ioa-lab/boosting/internal/system"
)

// latestTracker records the most recent suspect report (◇P consumers must
// track the latest report, not the union: early reports may be arbitrary)
// and whether any received report was inaccurate at delivery time.
type latestTracker struct{}

func (latestTracker) Start(int) map[string]string {
	return map[string]string{"latest": codec.NewIntSet().Fingerprint(), "sawAnything": "0"}
}

func (latestTracker) HandleInit(*process.Context, string) {}

func (latestTracker) HandleResponse(ctx *process.Context, svc, resp string) {
	if s, ok := servicetype.SuspectSet(resp); ok {
		ctx.Set("latest", s.Fingerprint())
		ctx.Set("sawAnything", "1")
	}
}

func TestEventuallyPerfectFDStabilizesInSystem(t *testing.T) {
	// Figs. 10–11 end to end: before the background task g flips the mode,
	// ◇P reports are arbitrary (our deterministic restriction: "suspect
	// everyone else"); after stabilization, reports equal the failed set.
	// Consumers tracking the latest report converge to the truth.
	const n = 3
	eps := []int{0, 1, 2}
	procs := make([]*process.Process, n)
	for i := 0; i < n; i++ {
		procs[i] = process.New(i, latestTracker{})
	}
	fd, err := service.NewWaitFree("evp", servicetype.EventuallyPerfectFD(eps), eps, service.Adversarial)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := system.New(procs, []*service.Service{fd})
	if err != nil {
		t.Fatal(err)
	}
	res, err := explore.RoundRobin(sys, explore.RunConfig{
		Inputs:    map[int]string{0: "x", 1: "x", 2: "x"},
		Failures:  []explore.FailureEvent{{Round: 0, Proc: 2}},
		MaxRounds: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := codec.NewIntSet(2)
	for _, i := range []int{0, 1} {
		if sys.ProcState(res.Final, i).Get("sawAnything") != "1" {
			t.Fatalf("P%d received no reports", i)
		}
		got, perr := codec.ParseIntSet(sys.ProcState(res.Final, i).Get("latest"))
		if perr != nil {
			t.Fatal(perr)
		}
		if !got.Equal(want) {
			t.Errorf("P%d latest suspicion %v, want %v (stabilization failed)", i, got, want)
		}
	}
	// The imperfect phase was observable: some delivered report named a
	// live process (accuracy violated before stabilization, as ◇P allows).
	sawWrong := false
	for _, step := range res.Exec.Steps {
		a := step.Action
		if a.Type != ioa.ActRespond {
			continue
		}
		if s, ok := servicetype.SuspectSet(a.Payload); ok {
			if s.Has(0) || s.Has(1) {
				sawWrong = true
			}
		}
	}
	if !sawWrong {
		t.Log("note: schedule stabilized ◇P before any imperfect report was delivered")
	}
}
