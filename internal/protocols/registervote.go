package protocols

import (
	"fmt"
	"sort"
	"strconv"

	"github.com/ioa-lab/boosting/internal/process"
	"github.com/ioa-lab/boosting/internal/seqtype"
	"github.com/ioa-lab/boosting/internal/service"
	"github.com/ioa-lab/boosting/internal/system"
)

// RegisterVote is a naive register-only consensus attempt: each process
// writes its input to its own register, reads everyone else's once, and
// decides the minimum value it saw (treating unwritten registers as absent).
//
// It is the textbook broken candidate: with only registers (and no failure
// information), a process that reads before a slow peer's write lands sees a
// different vote set than one that reads after, and the two decide
// differently. Theorem 2 (generalizing FLP) says no fix exists; this
// protocol makes the *safety* failure reachable in the failure-free graph,
// exercising the refuter's exhaustive sweep.
type RegisterVote struct {
	// Procs is the full process id set.
	Procs []int
}

var _ process.Program = RegisterVote{}

// voteRegister names process i's vote register.
func voteRegister(i int) string { return "V" + strconv.Itoa(i) }

// Start implements process.Program.
func (RegisterVote) Start(int) map[string]string {
	return map[string]string{"seen": "", "pending": "0"}
}

// HandleInit writes the vote and starts the single read sweep.
func (rv RegisterVote) HandleInit(ctx *process.Context, v string) {
	ctx.Set("own", v)
	ctx.Invoke(voteRegister(ctx.ID()), seqtype.Write(v))
	pending := 0
	for _, j := range rv.Procs {
		if j == ctx.ID() {
			continue
		}
		ctx.Invoke(voteRegister(j), seqtype.Read)
		pending++
	}
	ctx.SetInt("pending", pending)
	if pending == 0 {
		ctx.Decide(v)
	}
}

// HandleResponse collects reads and decides the minimum seen.
func (rv RegisterVote) HandleResponse(ctx *process.Context, svc, resp string) {
	if resp == seqtype.Ack || ctx.Decided() {
		return
	}
	if resp != "" {
		ctx.Set("seen", ctx.Get("seen")+resp)
	}
	pending := ctx.GetInt("pending") - 1
	ctx.SetInt("pending", pending)
	if pending > 0 {
		return
	}
	votes := []string{ctx.Get("own")}
	for _, c := range ctx.Get("seen") {
		votes = append(votes, string(c))
	}
	sort.Strings(votes)
	ctx.Decide(votes[0])
}

// BuildRegisterVote assembles the register-only candidate: n processes and
// n single-writer registers (readable by all). With no resilient services at
// all, Theorem 2 degenerates to the FLP-style statement that registers alone
// cannot give even 1-resilient consensus; this naive protocol additionally
// loses safety, which the refuter's exhaustive sweep exposes.
func BuildRegisterVote(n int) (*system.System, error) {
	if n < 2 {
		return nil, fmt.Errorf("protocols: register vote needs n ≥ 2, got %d", n)
	}
	procIDs := make([]int, n)
	for i := range procIDs {
		procIDs[i] = i
	}
	prog := RegisterVote{Procs: procIDs}
	procs := make([]*process.Process, n)
	for i := 0; i < n; i++ {
		procs[i] = process.New(i, prog)
	}
	var svcs []*service.Service
	for _, i := range procIDs {
		reg, err := service.NewRegister(voteRegister(i), []string{"", "0", "1"}, "", procIDs)
		if err != nil {
			return nil, err
		}
		svcs = append(svcs, reg)
	}
	return system.New(procs, svcs)
}
