package protocols

import (
	"fmt"

	"github.com/ioa-lab/boosting/internal/process"
	"github.com/ioa-lab/boosting/internal/service"
	"github.com/ioa-lab/boosting/internal/servicetype"
	"github.com/ioa-lab/boosting/internal/system"
)

// BinaryProposals is the proposal domain of the binary consensus builders.
var BinaryProposals = []string{"0", "1"}

// floodRegisters builds the n × rounds flooding registers, each a reliable
// (wait-free) register connected to all processes, with value domain
// "" (unwritten) plus every subset of the proposal space.
func floodRegisters(procs []int, rounds int, proposals []string) ([]*service.Service, error) {
	values := append([]string{""}, subsetsOf(proposals)...)
	var out []*service.Service
	for _, i := range procs {
		for t := 1; t <= rounds; t++ {
			reg, err := service.NewRegister(RegisterName(i, t), values, "", procs)
			if err != nil {
				return nil, fmt.Errorf("register %s: %w", RegisterName(i, t), err)
			}
			out = append(out, reg)
		}
	}
	return out, nil
}

// BuildFloodSetWithP assembles FloodSet over registers with a single
// n-process perfect failure detector P of resilience fFD connected to all
// processes. With fFD ≥ n−1 this solves wait-free consensus; with
// fFD < rounds−1 it is exactly the Theorem 10 candidate: all general
// services are connected to all processes, so fFD+1 failures can silence
// them, and the claimed tolerance rounds−1 > fFD cannot be met.
func BuildFloodSetWithP(n, fFD, rounds int, policy service.SilencePolicy) (*system.System, error) {
	if n < 1 || rounds < 1 {
		return nil, fmt.Errorf("protocols: bad FloodSet shape n=%d rounds=%d", n, rounds)
	}
	procIDs := make([]int, n)
	for i := range procIDs {
		procIDs[i] = i
	}
	prog := FloodSet{Procs: procIDs, Rounds: rounds}
	procs := make([]*process.Process, n)
	for i := 0; i < n; i++ {
		procs[i] = process.New(i, prog)
	}
	svcs, err := floodRegisters(procIDs, rounds, BinaryProposals)
	if err != nil {
		return nil, err
	}
	fd, err := service.New(service.Config{
		Index:      "P",
		Type:       servicetype.PerfectFD(procIDs),
		Endpoints:  procIDs,
		Resilience: fFD,
		Policy:     policy,
	})
	if err != nil {
		return nil, err
	}
	svcs = append(svcs, fd)
	return system.New(procs, svcs)
}

// BuildFloodSetWithEvP assembles FloodSet over registers guided by a single
// wait-free n-process *eventually* perfect failure detector (Figs. 10–11).
// FloodSet's round advancement relies on accuracy — a suspected process is
// skipped as crashed — so ◇P's arbitrary pre-stabilization suspicions break
// the synchronous-round simulation even though the detector never falls
// silent: the candidate illustrates that Section 6.3's boost needs P, not
// just any failure detector. Like every detector-bearing system, its
// failure-free reachable graph is infinite (suspicion responses are pushed
// unconditionally), so graph analyses must be bounded or skipped.
func BuildFloodSetWithEvP(n, rounds int) (*system.System, error) {
	if n < 1 || rounds < 1 {
		return nil, fmt.Errorf("protocols: bad FloodSet shape n=%d rounds=%d", n, rounds)
	}
	procIDs := make([]int, n)
	for i := range procIDs {
		procIDs[i] = i
	}
	prog := FloodSet{Procs: procIDs, Rounds: rounds}
	procs := make([]*process.Process, n)
	for i := 0; i < n; i++ {
		procs[i] = process.New(i, prog)
	}
	svcs, err := floodRegisters(procIDs, rounds, BinaryProposals)
	if err != nil {
		return nil, err
	}
	fd, err := service.NewWaitFree("P", servicetype.EventuallyPerfectFD(procIDs), procIDs, service.Adversarial)
	if err != nil {
		return nil, err
	}
	svcs = append(svcs, fd)
	return system.New(procs, svcs)
}

// BuildFDBoost assembles the Section 6.3 positive construction: FloodSet
// over registers with a 1-resilient (hence wait-free) 2-process perfect
// failure detector on every pair of processes. Because the detectors'
// connection pattern is not "all processes", Theorem 10 does not apply —
// and indeed the system solves consensus for any number of failures when
// rounds = n.
func BuildFDBoost(n, rounds int) (*system.System, error) {
	if n < 2 || rounds < 1 {
		return nil, fmt.Errorf("protocols: bad FD-boost shape n=%d rounds=%d (procs %s)", n, rounds, fmtProcs(nil))
	}
	procIDs := make([]int, n)
	for i := range procIDs {
		procIDs[i] = i
	}
	prog := FloodSet{Procs: procIDs, Rounds: rounds}
	procs := make([]*process.Process, n)
	for i := 0; i < n; i++ {
		procs[i] = process.New(i, prog)
	}
	svcs, err := floodRegisters(procIDs, rounds, BinaryProposals)
	if err != nil {
		return nil, err
	}
	pairFDs, err := buildPairFDs(procIDs)
	if err != nil {
		return nil, err
	}
	svcs = append(svcs, pairFDs...)
	return system.New(procs, svcs)
}

// buildPairFDs builds a 1-resilient 2-process perfect failure detector for
// every pair of processes.
func buildPairFDs(procIDs []int) ([]*service.Service, error) {
	var out []*service.Service
	for a := 0; a < len(procIDs); a++ {
		for b := a + 1; b < len(procIDs); b++ {
			i, j := procIDs[a], procIDs[b]
			fd, err := service.New(service.Config{
				Index:      PairFDName(i, j),
				Type:       servicetype.PerfectFD([]int{i, j}),
				Endpoints:  []int{i, j},
				Resilience: 1, // wait-free for the pair
				Policy:     service.Adversarial,
			})
			if err != nil {
				return nil, err
			}
			out = append(out, fd)
		}
	}
	return out, nil
}

// BuildSuspectCollector assembles the Section 6.3 union construction in
// isolation: n collector processes, each listening to its n−1 pairwise
// 1-resilient perfect failure detectors. Each live process's accumulated
// suspect set converges to the true failed set — a wait-free n-process
// perfect failure detector boosted from 1-resilient parts.
func BuildSuspectCollector(n int) (*system.System, error) {
	if n < 2 {
		return nil, fmt.Errorf("protocols: collector needs n ≥ 2, got %d", n)
	}
	procIDs := make([]int, n)
	for i := range procIDs {
		procIDs[i] = i
	}
	detectors := make(map[int][]string, n)
	for _, i := range procIDs {
		for _, j := range procIDs {
			if i != j {
				detectors[i] = append(detectors[i], PairFDName(i, j))
			}
		}
	}
	prog := SuspectCollector{Detectors: detectors}
	procs := make([]*process.Process, n)
	for i := 0; i < n; i++ {
		procs[i] = process.New(i, prog)
	}
	svcs, err := buildPairFDs(procIDs)
	if err != nil {
		return nil, err
	}
	return system.New(procs, svcs)
}
