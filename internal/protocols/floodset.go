package protocols

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/ioa-lab/boosting/internal/codec"
	"github.com/ioa-lab/boosting/internal/process"
	"github.com/ioa-lab/boosting/internal/seqtype"
	"github.com/ioa-lab/boosting/internal/servicetype"
)

// RegisterName returns the index of the round-t flooding register of
// process i ("R<i>_<t>").
func RegisterName(i, t int) string {
	return "R" + strconv.Itoa(i) + "_" + strconv.Itoa(t)
}

// ParseRegisterName inverts RegisterName.
func ParseRegisterName(name string) (i, t int, ok bool) {
	if !strings.HasPrefix(name, "R") {
		return 0, 0, false
	}
	parts := strings.SplitN(name[1:], "_", 2)
	if len(parts) != 2 {
		return 0, 0, false
	}
	i, err1 := strconv.Atoi(parts[0])
	t, err2 := strconv.Atoi(parts[1])
	return i, t, err1 == nil && err2 == nil
}

// PairFDName returns the index of the 2-process perfect failure detector
// shared by processes i and j ("fd<min>_<max>").
func PairFDName(i, j int) string {
	if j < i {
		i, j = j, i
	}
	return "fd" + strconv.Itoa(i) + "_" + strconv.Itoa(j)
}

// FloodSet is the consensus protocol of the Section 6.3 discussion: a
// FloodSet synchronous-round simulation over shared registers, with round
// advancement guarded by perfect-failure-detector reports.
//
// In round t (1 ≤ t ≤ Rounds), process i writes its known value set W to
// register R<i>_<t> and then, for every other process j, polls R<j>_<t>
// until it is written (merge it) or j is suspected (skip it — accuracy of P
// makes skipping safe: suspected means crashed). After round Rounds the
// process decides min(W).
//
// With Rounds = f+1 the protocol tolerates f crashes: some round is free of
// crashes, after which all survivors hold identical W (the classic FloodSet
// argument; the perfect detector turns the asynchronous system into a
// synchronous-round simulation with crash-round message loss). Suspicions
// may arrive from one n-process detector or from the pairwise 2-process
// detectors of the Section 6.3 boost — the program only parses suspect
// responses, wherever they come from.
type FloodSet struct {
	// Procs is the full process id set I.
	Procs []int
	// Rounds is the number of flooding rounds (tolerated failures + 1).
	Rounds int
}

var _ process.Program = FloodSet{}

// Variable names of the FloodSet state machine.
const (
	varPhase    = "phase"
	varRound    = "t"
	varKnown    = "W"
	varWaiting  = "waiting"
	varSuspects = "suspects"

	phaseRun  = "run"
	phaseDone = "done"
)

// Start implements process.Program.
func (FloodSet) Start(int) map[string]string {
	return map[string]string{
		varPhase:    "",
		varKnown:    codec.Set(nil),
		varWaiting:  codec.Set(nil),
		varSuspects: codec.NewIntSet().Fingerprint(),
	}
}

// HandleInit begins round 1 with W = {v}.
func (p FloodSet) HandleInit(ctx *process.Context, v string) {
	if ctx.Get(varPhase) != "" {
		return
	}
	ctx.Set(varPhase, phaseRun)
	ctx.SetInt(varRound, 1)
	ctx.Set(varKnown, codec.Set([]string{v}))
	p.startRound(ctx)
}

// startRound writes W to the process's round register and begins polling
// everyone else's.
func (p FloodSet) startRound(ctx *process.Context) {
	t := ctx.GetInt(varRound)
	ctx.Invoke(RegisterName(ctx.ID(), t), seqtype.Write(ctx.Get(varKnown)))
	var waiting []string
	for _, j := range p.Procs {
		if j == ctx.ID() {
			continue
		}
		waiting = append(waiting, strconv.Itoa(j))
		ctx.Invoke(RegisterName(j, t), seqtype.Read)
	}
	ctx.Set(varWaiting, codec.Set(waiting))
	if len(waiting) == 0 {
		p.finishRound(ctx)
	}
}

// finishRound advances to the next round or decides min(W).
func (p FloodSet) finishRound(ctx *process.Context) {
	t := ctx.GetInt(varRound)
	if t >= p.Rounds {
		ctx.Set(varPhase, phaseDone)
		members, err := codec.ParseSet(ctx.Get(varKnown))
		if err != nil || len(members) == 0 {
			return
		}
		sort.Strings(members)
		ctx.Decide(members[0])
		return
	}
	ctx.SetInt(varRound, t+1)
	p.startRound(ctx)
}

// HandleResponse drives the polling state machine.
func (p FloodSet) HandleResponse(ctx *process.Context, svc, resp string) {
	if ctx.Get(varPhase) != phaseRun {
		return
	}
	// Failure-detector report (from any detector service).
	if s, ok := servicetype.SuspectSet(resp); ok {
		cur, err := codec.ParseIntSet(ctx.Get(varSuspects))
		if err != nil {
			cur = codec.NewIntSet()
		}
		ctx.Set(varSuspects, cur.Union(s).Fingerprint())
		return
	}
	j, tr, ok := ParseRegisterName(svc)
	if !ok || resp == seqtype.Ack {
		return
	}
	if tr != ctx.GetInt(varRound) {
		return // stale read from an earlier round
	}
	waiting, err := codec.ParseSet(ctx.Get(varWaiting))
	if err != nil || !containsString(waiting, strconv.Itoa(j)) {
		return
	}
	if resp == "" {
		// Register unwritten: skip j if it crashed (accuracy makes this
		// safe), otherwise keep polling.
		suspects, serr := codec.ParseIntSet(ctx.Get(varSuspects))
		if serr == nil && suspects.Has(j) {
			p.resolve(ctx, waiting, j)
			return
		}
		ctx.Invoke(svc, seqtype.Read)
		return
	}
	// Written: merge j's value set.
	theirs, perr := codec.ParseSet(resp)
	if perr != nil {
		return
	}
	mine, merr := codec.ParseSet(ctx.Get(varKnown))
	if merr != nil {
		return
	}
	ctx.Set(varKnown, codec.Set(append(mine, theirs...)))
	p.resolve(ctx, waiting, j)
}

// resolve removes j from the waiting set and finishes the round when it
// empties.
func (p FloodSet) resolve(ctx *process.Context, waiting []string, j int) {
	next := make([]string, 0, len(waiting))
	id := strconv.Itoa(j)
	for _, w := range waiting {
		if w != id {
			next = append(next, w)
		}
	}
	ctx.Set(varWaiting, codec.Set(next))
	if len(next) == 0 {
		p.finishRound(ctx)
	}
}

func containsString(items []string, want string) bool {
	for _, it := range items {
		if it == want {
			return true
		}
	}
	return false
}

// SuspectCollector is the Section 6.3 union construction in isolation: the
// process accumulates the union of the suspect reports of every failure
// detector it is connected to, and "decides" the accumulated fingerprint
// once every detector has reported at least once. With 1-resilient
// 2-process perfect detectors on every pair, the accumulated set converges
// to the true failed set — a wait-free n-process perfect failure detector
// built from 1-resilient parts.
type SuspectCollector struct {
	// Detectors maps each process to the detector services it listens to.
	Detectors map[int][]string
}

var _ process.Program = SuspectCollector{}

// Collector variable names.
const (
	VarSuspects = "suspects"
	varHeard    = "heard"
)

// Start implements process.Program.
func (SuspectCollector) Start(int) map[string]string {
	return map[string]string{
		VarSuspects: codec.NewIntSet().Fingerprint(),
		varHeard:    codec.Set(nil),
	}
}

// HandleInit is a no-op: collectors are driven purely by detector reports.
func (SuspectCollector) HandleInit(*process.Context, string) {}

// HandleResponse unions the report into the accumulated suspect set.
func (c SuspectCollector) HandleResponse(ctx *process.Context, svc, resp string) {
	s, ok := servicetype.SuspectSet(resp)
	if !ok {
		return
	}
	cur, err := codec.ParseIntSet(ctx.Get(VarSuspects))
	if err != nil {
		cur = codec.NewIntSet()
	}
	ctx.Set(VarSuspects, cur.Union(s).Fingerprint())
	heard, err := codec.ParseSet(ctx.Get(varHeard))
	if err != nil {
		heard = nil
	}
	heard = append(heard, svc)
	ctx.Set(varHeard, codec.Set(heard))
	if ctx.Decided() {
		return
	}
	mine := c.Detectors[ctx.ID()]
	parsed, _ := codec.ParseSet(ctx.Get(varHeard))
	if len(mine) > 0 && len(parsed) >= len(mine) {
		ctx.Decide(ctx.Get(VarSuspects))
	}
}

// subsetsOf enumerates the codec.Set encodings of all subsets of the given
// proposals (register value domains for FloodSet).
func subsetsOf(proposals []string) []string {
	n := len(proposals)
	out := make([]string, 0, 1<<n)
	for bits := 0; bits < 1<<n; bits++ {
		var members []string
		for idx := 0; idx < n; idx++ {
			if bits&(1<<idx) != 0 {
				members = append(members, proposals[idx])
			}
		}
		out = append(out, codec.Set(members))
	}
	return out
}

// fmtProcs renders a process list for error messages.
func fmtProcs(procs []int) string {
	parts := make([]string, len(procs))
	for i, p := range procs {
		parts[i] = strconv.Itoa(p)
	}
	return fmt.Sprintf("{%s}", strings.Join(parts, ","))
}
