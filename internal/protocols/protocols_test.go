package protocols_test

import (
	"testing"

	"github.com/ioa-lab/boosting/internal/codec"
	"github.com/ioa-lab/boosting/internal/explore"
	"github.com/ioa-lab/boosting/internal/protocols"
	"github.com/ioa-lab/boosting/internal/service"
)

func TestRegisterNameRoundTrip(t *testing.T) {
	for _, c := range []struct{ i, t int }{{0, 1}, {3, 2}, {12, 10}} {
		name := protocols.RegisterName(c.i, c.t)
		i, tr, ok := protocols.ParseRegisterName(name)
		if !ok || i != c.i || tr != c.t {
			t.Errorf("round trip %q: %d %d %v", name, i, tr, ok)
		}
	}
	for _, bad := range []string{"", "R", "R1", "X1_2", "Rx_y"} {
		if _, _, ok := protocols.ParseRegisterName(bad); ok {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestPairFDNameSymmetric(t *testing.T) {
	if protocols.PairFDName(2, 5) != protocols.PairFDName(5, 2) {
		t.Error("pair FD name must not depend on argument order")
	}
}

func TestSetBoostAllFailurePatterns(t *testing.T) {
	// Section 4, concrete instance n = 2: 4 processes, wait-free 2-process
	// consensus services k0 (procs 0,1) and k1 (procs 2,3). The composition
	// solves wait-free 2-set consensus: under EVERY failure pattern of up to
	// 3 processes, every live process decides, decisions are inputs, and at
	// most 2 distinct values are decided.
	sys, err := protocols.BuildSetBoost(2)
	if err != nil {
		t.Fatal(err)
	}
	inputs := map[int]string{0: "0", 1: "1", 2: "1", 3: "0"}
	ids := sys.ProcessIDs()
	for bits := 0; bits < 1<<len(ids); bits++ {
		var J []int
		for idx, id := range ids {
			if bits&(1<<idx) != 0 {
				J = append(J, id)
			}
		}
		if len(J) == len(ids) {
			continue // all failed: nothing to check
		}
		failures := make([]explore.FailureEvent, len(J))
		for i, p := range J {
			failures[i] = explore.FailureEvent{Round: 0, Proc: p}
		}
		res, err := explore.RoundRobin(sys, explore.RunConfig{Inputs: inputs, Failures: failures})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Done {
			t.Fatalf("failure set %v: live processes did not all decide: %v", J, res.Decisions)
		}
		distinct := map[string]bool{}
		for p, v := range res.Decisions {
			if v != inputs[p] && v != "0" && v != "1" {
				t.Fatalf("failure set %v: invalid decision %q", J, v)
			}
			distinct[v] = true
		}
		if len(distinct) > 2 {
			t.Fatalf("failure set %v: %d distinct decisions (k = 2 exceeded): %v", J, len(distinct), res.Decisions)
		}
	}
}

func TestSetBoostGroupAgreement(t *testing.T) {
	// Within each group, decisions must agree (each group shares one
	// consensus service).
	sys, err := protocols.BuildSetBoost(2)
	if err != nil {
		t.Fatal(err)
	}
	inputs := map[int]string{0: "0", 1: "1", 2: "1", 3: "0"}
	res, err := explore.RoundRobin(sys, explore.RunConfig{Inputs: inputs})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatal("did not terminate")
	}
	if res.Decisions[0] != res.Decisions[1] {
		t.Errorf("group 0 disagrees: %v", res.Decisions)
	}
	if res.Decisions[2] != res.Decisions[3] {
		t.Errorf("group 1 disagrees: %v", res.Decisions)
	}
}

func TestFloodSetWithWaitFreePDecides(t *testing.T) {
	// FloodSet with a wait-free perfect detector: consensus for any number
	// of failures (rounds = n tolerates n−1).
	const n = 3
	sys, err := protocols.BuildFloodSetWithP(n, n-1, n, service.Adversarial)
	if err != nil {
		t.Fatal(err)
	}
	inputs := map[int]string{0: "1", 1: "0", 2: "1"}
	res, err := explore.RoundRobin(sys, explore.RunConfig{Inputs: inputs})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatalf("failure-free run did not decide: rounds=%d decisions=%v diverged=%v",
			res.Rounds, res.Decisions, res.Diverged)
	}
	assertConsensus(t, inputs, res.Decisions, nil)
}

func TestFDBoostConsensusForAnyF(t *testing.T) {
	// Section 6.3's positive result: consensus for ANY number of failures
	// from 1-resilient 2-process perfect FDs and reliable registers. For
	// n = 3 and every failure set of size 0, 1 or 2, all live processes
	// decide one common input value.
	const n = 3
	sys, err := protocols.BuildFDBoost(n, n)
	if err != nil {
		t.Fatal(err)
	}
	inputs := map[int]string{0: "1", 1: "0", 2: "1"}
	for bits := 0; bits < 1<<n; bits++ {
		var J []int
		for idx := 0; idx < n; idx++ {
			if bits&(1<<idx) != 0 {
				J = append(J, idx)
			}
		}
		if len(J) == n {
			continue
		}
		failures := make([]explore.FailureEvent, len(J))
		for i, p := range J {
			failures[i] = explore.FailureEvent{Round: 0, Proc: p}
		}
		res, err := explore.RoundRobin(sys, explore.RunConfig{Inputs: inputs, Failures: failures})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Done {
			t.Fatalf("J=%v: live processes did not decide (rounds=%d, diverged=%v, decisions=%v)",
				J, res.Rounds, res.Diverged, res.Decisions)
		}
		assertConsensus(t, inputs, res.Decisions, J)
	}
}

func TestFDBoostStaggeredFailures(t *testing.T) {
	// Failures landing mid-protocol (different rounds) must not break
	// agreement or termination.
	const n = 3
	sys, err := protocols.BuildFDBoost(n, n)
	if err != nil {
		t.Fatal(err)
	}
	inputs := map[int]string{0: "0", 1: "1", 2: "0"}
	for r1 := 0; r1 <= 4; r1 += 2 {
		for r2 := r1; r2 <= 6; r2 += 3 {
			res, err := explore.RoundRobin(sys, explore.RunConfig{
				Inputs: inputs,
				Failures: []explore.FailureEvent{
					{Round: r1, Proc: 1},
					{Round: r2, Proc: 2},
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Done {
				t.Fatalf("r1=%d r2=%d: no termination: %v", r1, r2, res.Decisions)
			}
			assertConsensus(t, inputs, res.Decisions, []int{1, 2})
		}
	}
}

func TestSuspectCollectorAccuracyAndCompleteness(t *testing.T) {
	// Section 6.3's union construction: after failing J, every live
	// collector's accumulated suspect set equals J exactly (accuracy:
	// ⊆ failed; completeness: ⊇ failed once every pair detector reported).
	const n = 3
	sys, err := protocols.BuildSuspectCollector(n)
	if err != nil {
		t.Fatal(err)
	}
	inputs := map[int]string{0: "x", 1: "x", 2: "x"}
	J := []int{1}
	res, err := explore.RoundRobin(sys, explore.RunConfig{
		Inputs:   inputs,
		Failures: []explore.FailureEvent{{Round: 0, Proc: 1}},
		// Collectors decide after hearing each detector once; give a few
		// rounds so detectors push reports.
		MaxRounds: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := codec.NewIntSet(J...)
	for _, i := range []int{0, 2} {
		got, perr := codec.ParseIntSet(sys.ProcState(res.Final, i).Get(protocols.VarSuspects))
		if perr != nil {
			t.Fatalf("P%d suspects: %v", i, perr)
		}
		if !got.SubsetOf(want) {
			t.Errorf("P%d accuracy violated: suspects %v ⊄ failed %v", i, got, want)
		}
		if !want.SubsetOf(got) {
			t.Errorf("P%d completeness violated: failed %v ⊄ suspects %v", i, want, got)
		}
	}
}

func TestFloodSetValidityUnanimous(t *testing.T) {
	// Unanimous inputs decide that input, under failures too.
	const n = 3
	sys, err := protocols.BuildFDBoost(n, n)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"0", "1"} {
		inputs := map[int]string{0: v, 1: v, 2: v}
		res, err := explore.RoundRobin(sys, explore.RunConfig{
			Inputs:   inputs,
			Failures: []explore.FailureEvent{{Round: 1, Proc: 0}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Done {
			t.Fatalf("no termination for unanimous %q", v)
		}
		for p, d := range res.Decisions {
			if d != v {
				t.Errorf("P%d decided %q on unanimous %q", p, d, v)
			}
		}
	}
}

func TestBuildersRejectBadShapes(t *testing.T) {
	if _, err := protocols.BuildSetBoost(0); err == nil {
		t.Error("BuildSetBoost(0) should fail")
	}
	if _, err := protocols.BuildFloodSetWithP(0, 0, 1, service.Adversarial); err == nil {
		t.Error("BuildFloodSetWithP(0,...) should fail")
	}
	if _, err := protocols.BuildFDBoost(1, 1); err == nil {
		t.Error("BuildFDBoost(1,...) should fail")
	}
	if _, err := protocols.BuildSuspectCollector(1); err == nil {
		t.Error("BuildSuspectCollector(1) should fail")
	}
}

// assertConsensus checks agreement + validity among live decisions, and that
// every live inited process decided.
func assertConsensus(t *testing.T, inputs map[int]string, decisions map[int]string, failed []int) {
	t.Helper()
	failedSet := map[int]bool{}
	for _, p := range failed {
		failedSet[p] = true
	}
	valid := map[string]bool{}
	for _, v := range inputs {
		valid[v] = true
	}
	var first string
	haveFirst := false
	for p := range inputs {
		if failedSet[p] {
			continue
		}
		v, ok := decisions[p]
		if !ok {
			t.Fatalf("live process %d undecided: %v", p, decisions)
		}
		if !valid[v] {
			t.Fatalf("P%d decided non-input %q", p, v)
		}
		if haveFirst && v != first {
			t.Fatalf("agreement violated: %v", decisions)
		}
		first, haveFirst = v, true
	}
}

func TestGroupedBoostGeneralForm(t *testing.T) {
	// The general Section 4 shape (k′ = 1): g groups of n give wait-free
	// g-set consensus for g·n processes. Check g = 3, n = 2 under a sample
	// of failure patterns including whole-group wipeouts.
	sys, err := protocols.BuildGroupedBoost(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	inputs := map[int]string{0: "0", 1: "1", 2: "1", 3: "0", 4: "0", 5: "1"}
	scenarios := [][]int{
		nil,
		{5},
		{0, 1},          // group 0 gone
		{1, 3, 5},       // one per group
		{0, 1, 2, 3, 4}, // gn−1 failures: wait-freedom
	}
	for _, J := range scenarios {
		failures := make([]explore.FailureEvent, len(J))
		for i, p := range J {
			failures[i] = explore.FailureEvent{Round: 0, Proc: p}
		}
		res, err := explore.RoundRobin(sys, explore.RunConfig{Inputs: inputs, Failures: failures})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Done {
			t.Fatalf("J=%v: live processes undecided: %v", J, res.Decisions)
		}
		distinct := map[string]bool{}
		for _, v := range res.Decisions {
			distinct[v] = true
		}
		if len(distinct) > 3 {
			t.Fatalf("J=%v: %d distinct decisions > g = 3", J, len(distinct))
		}
	}
}
