// Package protocols implements concrete process programs and system
// builders for the paper's constructions and counter-candidates:
//
//   - Forward: solve consensus by forwarding to a consensus service — the
//     candidate family refuted by Theorem 2 whenever the service's
//     resilience is below the claimed tolerance;
//   - GroupedForward: the Section 4 construction boosting resilience for
//     k-set-consensus (wait-free 2n-process 2-set consensus from wait-free
//     n-process consensus services);
//   - TOBConsensus: decide the first totally-ordered-broadcast delivery —
//     the failure-oblivious candidate family refuted by Theorem 9;
//   - SuspectCollector: the Section 6.3 union construction accumulating
//     pairwise perfect-failure-detector reports;
//   - FloodSet: synchronous-round flooding over registers guided by perfect
//     failure detectors — with 1-resilient 2-process detectors it realizes
//     the Section 6.3 positive result (consensus for any number of
//     failures); with a single f-resilient all-connected detector it is the
//     candidate family refuted by Theorem 10.
package protocols

import (
	"fmt"

	"github.com/ioa-lab/boosting/internal/process"
	"github.com/ioa-lab/boosting/internal/seqtype"
	"github.com/ioa-lab/boosting/internal/service"
	"github.com/ioa-lab/boosting/internal/servicetype"
	"github.com/ioa-lab/boosting/internal/system"
)

// Forward forwards the process's input to one consensus service and decides
// whatever the service responds.
type Forward struct {
	// Service is the index of the consensus service to use.
	Service string
}

var _ process.Program = Forward{}

// Start implements process.Program.
func (Forward) Start(int) map[string]string { return nil }

// HandleInit forwards the input.
func (f Forward) HandleInit(ctx *process.Context, v string) {
	ctx.Invoke(f.Service, seqtype.Init(v))
}

// HandleResponse decides the service's answer.
func (f Forward) HandleResponse(ctx *process.Context, svc, resp string) {
	if svc != f.Service {
		return
	}
	if v, ok := seqtype.DecideValue(resp); ok {
		ctx.Decide(v)
	}
}

// GroupedForward is the Section 4 set-consensus construction: process i
// forwards its input to the consensus service of its group and decides the
// response. With g = k/k′ disjoint groups, at most k distinct values are
// decided overall.
type GroupedForward struct {
	// Groups maps each process to its group's consensus service index.
	Groups map[int]string
}

var _ process.Program = GroupedForward{}

// Start implements process.Program.
func (GroupedForward) Start(int) map[string]string { return nil }

// HandleInit forwards the input to the group service.
func (g GroupedForward) HandleInit(ctx *process.Context, v string) {
	svc, ok := g.Groups[ctx.ID()]
	if !ok {
		return
	}
	ctx.Invoke(svc, seqtype.Init(v))
}

// HandleResponse decides the group service's answer.
func (g GroupedForward) HandleResponse(ctx *process.Context, svc, resp string) {
	if svc != g.Groups[ctx.ID()] {
		return
	}
	if v, ok := seqtype.DecideValue(resp); ok {
		ctx.Decide(v)
	}
}

// BuildForward assembles the Theorem 2 candidate: n processes forwarding to
// a single f-resilient binary consensus object (plus a reliable register,
// which the protocol does not use but the theorem statement allows).
func BuildForward(n, f int, policy service.SilencePolicy) (*system.System, error) {
	procs := make([]*process.Process, n)
	eps := make([]int, n)
	for i := 0; i < n; i++ {
		procs[i] = process.New(i, Forward{Service: "k0"})
		eps[i] = i
	}
	obj, err := service.New(service.Config{
		Index:      "k0",
		Type:       servicetype.FromSequential(seqtype.BinaryConsensus()),
		Endpoints:  eps,
		Resilience: f,
		Policy:     policy,
	})
	if err != nil {
		return nil, err
	}
	reg, err := service.NewRegister("r0", []string{"", "0", "1"}, "", eps)
	if err != nil {
		return nil, err
	}
	return system.New(procs, []*service.Service{obj, reg})
}

// BuildSetBoost assembles the Section 4 construction for k = 2, k′ = 1:
// 2n processes split into two groups of n, each group sharing one wait-free
// n-process binary consensus service. The result solves wait-free
// (i.e. (2n−1)-resilient) 2-set-consensus — resilience boosted from n−1 to
// 2n−1, which Theorem 2 shows is impossible for consensus itself.
func BuildSetBoost(n int) (*system.System, error) {
	return BuildGroupedBoost(2, n)
}

// BuildGroupedBoost assembles the Section 4 construction in its general
// k′ = 1 form: g·n processes in g disjoint groups of n, each group sharing
// one wait-free n-process binary consensus service. Since the g services
// return at most g distinct values overall, the composition solves
// wait-free g-set-consensus for g·n processes: (n−1)-resilient parts,
// (gn−1)-resilient whole.
func BuildGroupedBoost(g, n int) (*system.System, error) {
	if g < 1 || n < 1 {
		return nil, fmt.Errorf("protocols: bad boost shape groups=%d size=%d", g, n)
	}
	total := g * n
	groups := make(map[int]string, total)
	groupEps := make([][]int, g)
	for i := 0; i < total; i++ {
		grp := i / n
		groups[i] = fmt.Sprintf("k%d", grp)
		groupEps[grp] = append(groupEps[grp], i)
	}
	procs := make([]*process.Process, total)
	for i := 0; i < total; i++ {
		procs[i] = process.New(i, GroupedForward{Groups: groups})
	}
	var svcs []*service.Service
	for grp := 0; grp < g; grp++ {
		obj, err := service.NewWaitFree(
			fmt.Sprintf("k%d", grp),
			servicetype.FromSequential(seqtype.BinaryConsensus()),
			groupEps[grp],
			service.Adversarial,
		)
		if err != nil {
			return nil, err
		}
		svcs = append(svcs, obj)
	}
	return system.New(procs, svcs)
}

// TOBConsensus broadcasts the process's input on a totally-ordered-broadcast
// service and decides the first delivered value: agreement follows from
// total order, validity from the broadcast contents. It is a correct
// consensus protocol exactly while the TOB service stays live — the
// Theorem 9 candidate family.
type TOBConsensus struct {
	// Service is the TOB service index.
	Service string
}

var _ process.Program = TOBConsensus{}

// Start implements process.Program.
func (TOBConsensus) Start(int) map[string]string { return nil }

// HandleInit broadcasts the input.
func (t TOBConsensus) HandleInit(ctx *process.Context, v string) {
	ctx.Invoke(t.Service, servicetype.Bcast(v))
}

// HandleResponse decides the first delivery.
func (t TOBConsensus) HandleResponse(ctx *process.Context, svc, resp string) {
	if svc != t.Service || ctx.Decided() {
		return
	}
	if m, _, ok := servicetype.RcvParts(resp); ok {
		ctx.Decide(m)
	}
}

// BuildTOBConsensus assembles the Theorem 9 candidate: n processes deciding
// via an f-resilient totally ordered broadcast service.
func BuildTOBConsensus(n, f int, policy service.SilencePolicy) (*system.System, error) {
	procs := make([]*process.Process, n)
	eps := make([]int, n)
	for i := 0; i < n; i++ {
		procs[i] = process.New(i, TOBConsensus{Service: "b0"})
		eps[i] = i
	}
	tob, err := service.New(service.Config{
		Index:      "b0",
		Type:       servicetype.TotallyOrderedBroadcast(eps),
		Endpoints:  eps,
		Resilience: f,
		Policy:     policy,
	})
	if err != nil {
		return nil, err
	}
	return system.New(procs, []*service.Service{tob})
}
