// Package check provides property checkers for the correctness conditions
// the paper states for consensus and its relatives (Section 2.2.4 and
// Appendix B), plus trace-level checkers for totally ordered broadcast and
// failure detectors.
//
// Checkers work on the outputs of explore runs (decision maps, execution
// traces) and return typed errors, so tests, benchmarks and CLIs can assert
// or report uniformly.
package check

import (
	"errors"
	"fmt"
	"sort"

	"github.com/ioa-lab/boosting/internal/codec"
	"github.com/ioa-lab/boosting/internal/ioa"
	"github.com/ioa-lab/boosting/internal/servicetype"
)

// Property violation errors.
var (
	ErrAgreement   = errors.New("check: agreement violated")
	ErrValidity    = errors.New("check: validity violated")
	ErrTermination = errors.New("check: termination violated")
	ErrKAgreement  = errors.New("check: k-agreement violated")
	ErrTotalOrder  = errors.New("check: total order violated")
	ErrAccuracy    = errors.New("check: failure-detector accuracy violated")
	ErrDoubleDecir = errors.New("check: process decided more than once")
)

// ConsensusRun bundles what the consensus conditions quantify over: the
// inputs received, the failure pattern, and the decisions made.
type ConsensusRun struct {
	Inputs    map[int]string
	Failed    []int
	Decisions map[int]string
	// Done reports that the run reached a fair verdict (every live inited
	// process decided, or a provable divergence).
	Done bool
}

// Agreement checks that no two processes decided differently.
func Agreement(decisions map[int]string) error {
	var first string
	have := false
	for _, p := range sortedKeys(decisions) {
		v := decisions[p]
		if have && v != first {
			return fmt.Errorf("%w: %v", ErrAgreement, decisions)
		}
		first, have = v, true
	}
	return nil
}

// Validity checks that every decision is some process's input.
func Validity(inputs, decisions map[int]string) error {
	valid := make(map[string]bool, len(inputs))
	for _, v := range inputs {
		valid[v] = true
	}
	for _, p := range sortedKeys(decisions) {
		if !valid[decisions[p]] {
			return fmt.Errorf("%w: P%d decided %q, inputs %v", ErrValidity, p, decisions[p], inputs)
		}
	}
	return nil
}

// ModifiedTermination checks the paper's modified termination condition: in
// a fair run with the given failure pattern, every live process that
// received an input decided (Section 2.2.4).
func ModifiedTermination(run ConsensusRun) error {
	failed := make(map[int]bool, len(run.Failed))
	for _, p := range run.Failed {
		failed[p] = true
	}
	for _, p := range sortedKeys(run.Inputs) {
		if failed[p] {
			continue
		}
		if _, ok := run.Decisions[p]; !ok {
			return fmt.Errorf("%w: live inited P%d undecided (decisions %v)", ErrTermination, p, run.Decisions)
		}
	}
	return nil
}

// Consensus checks agreement, validity and modified termination together.
func Consensus(run ConsensusRun) error {
	if err := Agreement(run.Decisions); err != nil {
		return err
	}
	if err := Validity(run.Inputs, run.Decisions); err != nil {
		return err
	}
	return ModifiedTermination(run)
}

// KSetConsensus checks the k-set-consensus conditions: validity, modified
// termination, and at most k distinct decisions.
func KSetConsensus(run ConsensusRun, k int) error {
	if err := Validity(run.Inputs, run.Decisions); err != nil {
		return err
	}
	if err := ModifiedTermination(run); err != nil {
		return err
	}
	distinct := map[string]bool{}
	for _, v := range run.Decisions {
		distinct[v] = true
	}
	if len(distinct) > k {
		return fmt.Errorf("%w: %d distinct decisions > k = %d (%v)", ErrKAgreement, len(distinct), k, run.Decisions)
	}
	return nil
}

// DecideOnce checks that no process emitted more than one decide action in
// the execution.
func DecideOnce(exec ioa.Execution) error {
	seen := map[int]bool{}
	for _, act := range exec.Decisions() {
		if seen[act.Proc] {
			return fmt.Errorf("%w: P%d", ErrDoubleDecir, act.Proc)
		}
		seen[act.Proc] = true
	}
	return nil
}

// TOBDeliveries projects the per-process delivery sequences of a totally
// ordered broadcast service out of an execution: for each process, the
// sequence of (message, sender) receipts delivered to it.
func TOBDeliveries(exec ioa.Execution, svc string) map[int][]string {
	out := map[int][]string{}
	for _, step := range exec.Steps {
		a := step.Action
		if a.Type != ioa.ActRespond || a.Service != svc {
			continue
		}
		if m, sender, ok := servicetype.RcvParts(a.Payload); ok {
			out[a.Proc] = append(out[a.Proc], codec.Pair(m, fmt.Sprint(sender)))
		}
	}
	return out
}

// TotalOrder checks that the per-process delivery sequences are prefixes of
// one common total order (gap-free, same order everywhere) — the defining
// property of totally ordered broadcast.
func TotalOrder(deliveries map[int][]string) error {
	// The longest sequence is the candidate common order.
	var longest []string
	for _, seq := range deliveries {
		if len(seq) > len(longest) {
			longest = seq
		}
	}
	for _, p := range sortedKeys(deliveries) {
		seq := deliveries[p]
		for i, d := range seq {
			if i >= len(longest) || longest[i] != d {
				return fmt.Errorf("%w: P%d delivery %d is %q, common order has %q",
					ErrTotalOrder, p, i, d, at(longest, i))
			}
		}
	}
	return nil
}

// FDAccuracy checks perfect-failure-detector accuracy on an execution: no
// suspect report delivered at any point names a process that had not failed
// by that point.
func FDAccuracy(exec ioa.Execution) error {
	failed := codec.NewIntSet()
	for _, step := range exec.Steps {
		a := step.Action
		if a.Type == ioa.ActFail {
			failed = failed.With(a.Proc)
			continue
		}
		if a.Type != ioa.ActRespond {
			continue
		}
		if s, ok := servicetype.SuspectSet(a.Payload); ok {
			if !s.SubsetOf(failed) {
				return fmt.Errorf("%w: suspected %v, failed %v", ErrAccuracy, s, failed)
			}
		}
	}
	return nil
}

func sortedKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func at(items []string, i int) string {
	if i < len(items) {
		return items[i]
	}
	return "<nothing>"
}
