package check

import (
	"errors"
	"testing"
	"testing/quick"

	"github.com/ioa-lab/boosting/internal/codec"
	"github.com/ioa-lab/boosting/internal/ioa"
	"github.com/ioa-lab/boosting/internal/servicetype"
)

func TestAgreement(t *testing.T) {
	if err := Agreement(map[int]string{0: "1", 1: "1"}); err != nil {
		t.Errorf("agreeing decisions rejected: %v", err)
	}
	if err := Agreement(map[int]string{0: "1", 1: "0"}); !errors.Is(err, ErrAgreement) {
		t.Errorf("disagreement accepted: %v", err)
	}
	if err := Agreement(nil); err != nil {
		t.Errorf("empty decisions rejected: %v", err)
	}
}

func TestValidity(t *testing.T) {
	inputs := map[int]string{0: "0", 1: "1"}
	if err := Validity(inputs, map[int]string{0: "1"}); err != nil {
		t.Errorf("valid decision rejected: %v", err)
	}
	if err := Validity(inputs, map[int]string{0: "7"}); !errors.Is(err, ErrValidity) {
		t.Errorf("invalid decision accepted: %v", err)
	}
}

func TestModifiedTermination(t *testing.T) {
	run := ConsensusRun{
		Inputs:    map[int]string{0: "0", 1: "1", 2: "0"},
		Failed:    []int{1},
		Decisions: map[int]string{0: "0", 2: "0"},
	}
	if err := ModifiedTermination(run); err != nil {
		t.Errorf("failed process excused, but: %v", err)
	}
	run.Decisions = map[int]string{0: "0"}
	if err := ModifiedTermination(run); !errors.Is(err, ErrTermination) {
		t.Errorf("undecided live process accepted: %v", err)
	}
}

func TestConsensusComposite(t *testing.T) {
	run := ConsensusRun{
		Inputs:    map[int]string{0: "0", 1: "1"},
		Decisions: map[int]string{0: "1", 1: "1"},
	}
	if err := Consensus(run); err != nil {
		t.Errorf("correct run rejected: %v", err)
	}
}

func TestKSetConsensus(t *testing.T) {
	run := ConsensusRun{
		Inputs:    map[int]string{0: "0", 1: "1", 2: "1", 3: "0"},
		Decisions: map[int]string{0: "0", 1: "0", 2: "1", 3: "1"},
	}
	if err := KSetConsensus(run, 2); err != nil {
		t.Errorf("2 distinct decisions rejected for k=2: %v", err)
	}
	if err := KSetConsensus(run, 1); !errors.Is(err, ErrKAgreement) {
		t.Errorf("2 distinct decisions accepted for k=1: %v", err)
	}
}

func TestDecideOnce(t *testing.T) {
	exec := ioa.Execution{Steps: []ioa.Step{
		{Action: ioa.Action{Type: ioa.ActDecide, Proc: 0, Payload: "1"}},
		{Action: ioa.Action{Type: ioa.ActDecide, Proc: 1, Payload: "1"}},
	}}
	if err := DecideOnce(exec); err != nil {
		t.Errorf("single decides rejected: %v", err)
	}
	exec.Steps = append(exec.Steps, ioa.Step{Action: ioa.Action{Type: ioa.ActDecide, Proc: 0, Payload: "1"}})
	if err := DecideOnce(exec); !errors.Is(err, ErrDoubleDecir) {
		t.Errorf("double decide accepted: %v", err)
	}
}

func TestTotalOrder(t *testing.T) {
	good := map[int][]string{
		0: {"a", "b", "c"},
		1: {"a", "b"},
		2: {},
	}
	if err := TotalOrder(good); err != nil {
		t.Errorf("prefix-consistent deliveries rejected: %v", err)
	}
	bad := map[int][]string{
		0: {"a", "b"},
		1: {"b", "a"},
	}
	if err := TotalOrder(bad); !errors.Is(err, ErrTotalOrder) {
		t.Errorf("reordered deliveries accepted: %v", err)
	}
}

func TestTOBDeliveriesProjection(t *testing.T) {
	exec := ioa.Execution{Steps: []ioa.Step{
		{Action: ioa.Action{Type: ioa.ActRespond, Proc: 0, Service: "b0", Payload: servicetype.Rcv("m1", 1)}},
		{Action: ioa.Action{Type: ioa.ActRespond, Proc: 1, Service: "b0", Payload: servicetype.Rcv("m1", 1)}},
		{Action: ioa.Action{Type: ioa.ActRespond, Proc: 0, Service: "other", Payload: servicetype.Rcv("x", 0)}},
		{Action: ioa.Action{Type: ioa.ActRespond, Proc: 0, Service: "b0", Payload: "not-a-rcv"}},
	}}
	del := TOBDeliveries(exec, "b0")
	if len(del[0]) != 1 || len(del[1]) != 1 {
		t.Errorf("projection: %v", del)
	}
	if err := TotalOrder(del); err != nil {
		t.Errorf("projected deliveries: %v", err)
	}
}

func TestFDAccuracy(t *testing.T) {
	suspect1 := servicetype.Suspect(intSet(1))
	okExec := ioa.Execution{Steps: []ioa.Step{
		{Action: ioa.Action{Type: ioa.ActFail, Proc: 1}},
		{Action: ioa.Action{Type: ioa.ActRespond, Proc: 0, Service: "fd", Payload: suspect1}},
	}}
	if err := FDAccuracy(okExec); err != nil {
		t.Errorf("accurate report rejected: %v", err)
	}
	badExec := ioa.Execution{Steps: []ioa.Step{
		{Action: ioa.Action{Type: ioa.ActRespond, Proc: 0, Service: "fd", Payload: suspect1}},
		{Action: ioa.Action{Type: ioa.ActFail, Proc: 1}},
	}}
	if err := FDAccuracy(badExec); !errors.Is(err, ErrAccuracy) {
		t.Errorf("premature suspicion accepted: %v", err)
	}
}

func intSet(members ...int) codec.IntSet {
	return codec.NewIntSet(members...)
}

func TestAgreementProperty(t *testing.T) {
	// Property: Agreement accepts iff all values in the map are equal.
	f := func(vals []bool) bool {
		decisions := map[int]string{}
		allSame := true
		for i, v := range vals {
			s := "0"
			if v {
				s = "1"
			}
			decisions[i] = s
			if s != decisions[0] {
				allSame = false
			}
		}
		err := Agreement(decisions)
		return (err == nil) == allSame
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValidityProperty(t *testing.T) {
	// Property: Validity accepts iff every decision appears among inputs.
	f := func(inputBits, decisionBits []bool) bool {
		inputs := map[int]string{}
		for i, b := range inputBits {
			if b {
				inputs[i] = "1"
			} else {
				inputs[i] = "0"
			}
		}
		decisions := map[int]string{}
		valid := map[string]bool{}
		for _, v := range inputs {
			valid[v] = true
		}
		allValid := true
		for i, b := range decisionBits {
			v := "0"
			if b {
				v = "1"
			}
			decisions[i] = v
			if !valid[v] {
				allValid = false
			}
		}
		err := Validity(inputs, decisions)
		return (err == nil) == allValid
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestTotalOrderPrefixProperty(t *testing.T) {
	// Property: any family of prefixes of one sequence passes TotalOrder.
	f := func(seq []byte, cuts []uint8) bool {
		base := make([]string, len(seq))
		for i, b := range seq {
			base[i] = string(rune('a' + b%26))
		}
		deliveries := map[int][]string{}
		for i, c := range cuts {
			n := int(c)
			if n > len(base) {
				n = len(base)
			}
			deliveries[i] = base[:n]
		}
		return TotalOrder(deliveries) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
