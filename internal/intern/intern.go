// Package intern maps canonical state encodings to dense numeric IDs.
//
// Explicit-state exploration lives or dies on how vertices of the execution
// graph G(C) are keyed: a multi-hundred-byte canonical string per vertex in
// every table multiplies memory and hashing cost by the fingerprint length.
// The standard model-checking move (SPIN, TLC) is to intern each canonical
// encoding exactly once, hand out a dense uint32 index, and key every other
// table — successor lists, predecessor links, valence masks — by that index,
// so the per-vertex cost of the surrounding tables drops to a few words and
// array indexing replaces string hashing on every edge.
//
// IDs are assigned in interning order, so a breadth-first exploration that
// interns states in discovery order gets BFS-numbered vertices for free:
// roots first, then each level contiguously.
package intern

import "math"

// StateID is a dense index of an interned state: the i-th distinct encoding
// interned into a Table gets ID i. IDs are stable for the lifetime of their
// Table and are meaningless across tables.
type StateID uint32

// NoState is a sentinel that is never a valid StateID of any table that
// holds fewer than 2^32 − 1 states (the Table's hard capacity).
const NoState = StateID(math.MaxUint32)

// Table interns canonical encodings into dense StateIDs.
//
// Concurrency contract: Table is as safe as a Go map. Any number of
// goroutines may call Lookup/LookupBytes/Key/Len concurrently as long as no
// Intern call overlaps them; Intern requires exclusive access. The parallel
// exploration engine gets this for free from its level-synchronous shape —
// the table is frozen while a frontier level expands across workers and is
// extended only at the level barrier, which also keeps ID assignment
// deterministic (identical for any worker count).
type Table struct {
	idx  map[string]StateID
	keys []string
}

// NewTable returns an empty table with room hinted for n states.
func NewTable(n int) *Table {
	return &Table{
		idx:  make(map[string]StateID, n),
		keys: make([]string, 0, n),
	}
}

// Len returns the number of interned states.
func (t *Table) Len() int { return len(t.keys) }

// Lookup returns the ID of an already-interned encoding.
func (t *Table) Lookup(key string) (StateID, bool) {
	id, ok := t.idx[key]
	return id, ok
}

// LookupBytes is Lookup for a byte-slice key. It does not allocate: the
// string conversion in the map index expression is free.
func (t *Table) LookupBytes(key []byte) (StateID, bool) {
	id, ok := t.idx[string(key)]
	return id, ok
}

// Intern returns the ID of key, assigning the next dense ID if the encoding
// is new. fresh reports a new assignment. See the Table doc comment for the
// concurrency contract.
func (t *Table) Intern(key string) (id StateID, fresh bool) {
	if id, ok := t.idx[key]; ok {
		return id, false
	}
	id = StateID(len(t.keys))
	t.idx[key] = id
	t.keys = append(t.keys, key)
	return id, true
}

// InternBytes is Intern for a byte-slice key. The key bytes are copied into
// an owned string only when the encoding is new.
func (t *Table) InternBytes(key []byte) (id StateID, fresh bool) {
	if id, ok := t.idx[string(key)]; ok {
		return id, false
	}
	return t.Intern(string(key))
}

// Key returns the canonical encoding interned as id. It panics if id was
// never assigned, mirroring slice indexing.
func (t *Table) Key(id StateID) string { return t.keys[id] }

// DropIndex releases the dedup map while keeping the interned keys
// readable by ID. For tables whose dedup phase is over but whose keys
// still serve reads — after it, Lookup/LookupBytes miss everything and
// Intern must not be called again.
func (t *Table) DropIndex() { t.idx = nil }
