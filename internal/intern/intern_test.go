package intern

import (
	"strconv"
	"testing"

	"github.com/ioa-lab/boosting/internal/allocpin"
)

func TestInternAssignsDenseIDs(t *testing.T) {
	tab := NewTable(4)
	keys := []string{"alpha", "beta", "gamma"}
	for i, k := range keys {
		id, fresh := tab.Intern(k)
		if !fresh || id != StateID(i) {
			t.Fatalf("Intern(%q) = %d, fresh=%v; want %d, true", k, id, fresh, i)
		}
	}
	if tab.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", tab.Len(), len(keys))
	}
	// Re-interning returns the original IDs without growth.
	for i, k := range keys {
		id, fresh := tab.Intern(k)
		if fresh || id != StateID(i) {
			t.Fatalf("re-Intern(%q) = %d, fresh=%v", k, id, fresh)
		}
	}
	for i, k := range keys {
		if got := tab.Key(StateID(i)); got != k {
			t.Fatalf("Key(%d) = %q, want %q", i, got, k)
		}
		id, ok := tab.Lookup(k)
		if !ok || id != StateID(i) {
			t.Fatalf("Lookup(%q) = %d, %v", k, id, ok)
		}
	}
	if _, ok := tab.Lookup("missing"); ok {
		t.Fatal("Lookup of a never-interned key succeeded")
	}
}

func TestInternBytesMatchesString(t *testing.T) {
	tab := NewTable(0)
	id1, fresh := tab.InternBytes([]byte("state-1"))
	if !fresh || id1 != 0 {
		t.Fatalf("InternBytes: %d, %v", id1, fresh)
	}
	if id, ok := tab.LookupBytes([]byte("state-1")); !ok || id != id1 {
		t.Fatalf("LookupBytes: %d, %v", id, ok)
	}
	if id, fresh := tab.Intern("state-1"); fresh || id != id1 {
		t.Fatalf("Intern after InternBytes: %d, %v", id, fresh)
	}
	// The stored key must be an owned copy, immune to buffer reuse.
	buf := []byte("state-2")
	id2, _ := tab.InternBytes(buf)
	copy(buf, "CLOBBER")
	if got := tab.Key(id2); got != "state-2" {
		t.Fatalf("Key(%d) = %q after clobbering the input buffer", id2, got)
	}
}

func TestLookupBytesDoesNotAllocate(t *testing.T) {
	tab := NewTable(1024)
	for i := 0; i < 1024; i++ {
		tab.Intern("key-" + strconv.Itoa(i))
	}
	probe := []byte("key-512")
	allocpin.Check(t, "LookupBytes", 200, 0, func() {
		if _, ok := tab.LookupBytes(probe); !ok {
			t.Fatal("probe missing")
		}
	})
}
